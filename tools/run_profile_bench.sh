#!/usr/bin/env bash
# Runs a profiled external sort and records the observability artifacts:
#   BENCH_profile.json  hierarchical SortProfile (rowsort.profile.v1)
#   BENCH_trace.json    Chrome/Perfetto trace of the same sort
# Transient spill-I/O failpoints are armed so the profile's retry/backoff
# nodes carry real data (requires a -DROWSORT_FAILPOINTS=ON build; without
# it the failpoints are compiled out and the sort just runs clean).
# Both files are validated: they must parse as JSON and the profile must
# contain the sink / run_sort / merge phase nodes.
#
# Usage: tools/run_profile_bench.sh [build-dir] [output-dir]
#   build-dir   defaults to ./build (configured+built if missing)
#   output-dir  defaults to the repo root
#
# Knobs (environment):
#   ROWSORT_PROFILE_ROWS     workload rows (default 10000000)
#   ROWSORT_PROFILE_THREADS  worker threads (default: nproc, capped at 8)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_dir="${2:-${repo_root}}"
cli="${build_dir}/tools/rowsort_cli"
rows="${ROWSORT_PROFILE_ROWS:-10000000}"
threads="${ROWSORT_PROFILE_THREADS:-$(($(nproc) < 8 ? $(nproc) : 8))}"
profile_json="${out_dir}/BENCH_profile.json"
trace_json="${out_dir}/BENCH_trace.json"

if [[ ! -x "${cli}" ]]; then
  echo "== ${cli} not found; configuring and building =="
  cmake -B "${build_dir}" -S "${repo_root}" >/dev/null
  cmake --build "${build_dir}" -j --target rowsort_cli
fi

spill_dir="$(mktemp -d)"
trap 'rm -rf "${spill_dir}"' EXIT

# Probabilistic transient I/O faults with deterministic seeds: the retry
# layer absorbs them and the profile's spill/retry_backoff node records the
# recovery cost.
export ROWSORT_FAILPOINTS="external_run_read_eintr=p0.05:7,external_run_write_short=p0.05:9"

echo "== profiled external sort: ${rows} rows, ${threads} threads =="
echo "ROWSORT_FAILPOINTS=${ROWSORT_FAILPOINTS}"
"${cli}" --workload=integers --rows="${rows}" --threads="${threads}" \
  --spill="${spill_dir}" --memory-limit=64m --quiet \
  --profile="${profile_json}" --trace="${trace_json}" --metrics

echo "== validating ${profile_json} and ${trace_json} =="
python3 -m json.tool "${profile_json}" >/dev/null
python3 -m json.tool "${trace_json}" >/dev/null
python3 - "${profile_json}" "${trace_json}" <<'EOF'
import json, sys
profile = json.load(open(sys.argv[1]))
assert profile["schema"] == "rowsort.profile.v1", profile.get("schema")
phases = {c["name"] for c in profile["profile"]["children"]}
for want in ("sink", "run_sort", "merge"):
    assert want in phases, f"missing phase node: {want} (have {phases})"
trace = json.load(open(sys.argv[2]))
names = {e.get("name") for e in trace["traceEvents"]}
for want in ("sink.chunk", "run.sort", "merge.phase"):
    assert want in names, f"missing trace span: {want}"
print(f"profile phases: {sorted(phases)}")
print(f"trace events: {len(trace['traceEvents'])}")
EOF
echo "== done: ${profile_json}, ${trace_json} =="
