#!/usr/bin/env bash
# Exercises the multi-tenant SortService (docs/service.md) two ways:
#
#   1. Repeats the SortServiceTest suite — admission shedding, wait budgets,
#      queued deadlines, victim spilling, and the 24-query overload stress —
#      with transient spill-I/O failpoints armed from the environment, to
#      shake out races and leaks a single pass can miss (TSan CI runs this).
#   2. Runs bench_service (the 1000-small-sorts-vs-spilling-giants mix) and
#      validates the BENCH_service.json it emits: parses as JSON, carries
#      the expected top-level sections, and the request ledger balances.
#
# Usage: tools/run_service_stress.sh [build-dir] [rounds]
#   build-dir  cmake build directory with tests + benches built (default:
#              build)
#   rounds     repetitions of the test suite (default: 3)
#
# Requires a build with -DROWSORT_FAILPOINTS=ON (the default) for the
# fault-injection slices; without it those paths run fault-free.
set -euo pipefail

BUILD_DIR="${1:-build}"
ROUNDS="${2:-3}"

if [[ ! -d "${BUILD_DIR}" ]]; then
  echo "error: build directory '${BUILD_DIR}' not found" >&2
  echo "       configure with: cmake -B ${BUILD_DIR} -DROWSORT_FAILPOINTS=ON" >&2
  exit 2
fi

# Transient spill-I/O flakes for every sort the suite runs, on top of the
# probabilistic failpoints the stress test arms itself. Deterministic seeds:
# a failing round replays verbatim.
export ROWSORT_FAILPOINTS="external_run_read_eintr=p0.05:21,external_run_write_short=p0.05:23"

echo "service stress: ${ROUNDS} rounds of SortServiceTest"
echo "ROWSORT_FAILPOINTS=${ROWSORT_FAILPOINTS}"
for ((round = 1; round <= ROUNDS; ++round)); do
  echo "--- round ${round}/${ROUNDS}"
  ctest --test-dir "${BUILD_DIR}" -R 'SortServiceTest' -j "$(nproc)" \
    --output-on-failure
done
echo "service stress: all ${ROUNDS} rounds passed"

BENCH="${BUILD_DIR}/bench/bench_service"
if [[ ! -x "${BENCH}" ]]; then
  echo "note: ${BENCH} not built; skipping the bench/JSON-schema leg"
  exit 0
fi

echo "--- bench_service production mix"
JSON="$(mktemp --suffix=.json)"
trap 'rm -f "${JSON}"' EXIT
ROWSORT_BENCH_JSON="${JSON}" "${BENCH}"

echo "--- validating BENCH_service.json schema"
python3 - "${JSON}" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

for section in ("classes", "service", "pool"):
    assert section in doc, f"missing section: {section}"
for cls in ("small", "giant"):
    c = doc["classes"][cls]
    for key in ("ok", "shed", "killed", "io_error", "p50_ms", "p99_ms"):
        assert key in c, f"classes.{cls} missing {key}"
svc = doc["service"]
for key in ("requests", "admitted", "completed", "failed", "cancelled",
            "shed_queue_full", "shed_wait_budget", "shed_queued_cancel",
            "victim_spills", "max_queue_depth", "max_running",
            "queue_wait_p99_ms", "throughput_per_s"):
    assert key in svc, f"service missing {key}"
# The request ledger must balance: every request was admitted or shed, and
# every admitted request completed, failed, or was cancelled.
sheds = (svc["shed_queue_full"] + svc["shed_wait_budget"]
         + svc["shed_queued_cancel"])
assert svc["requests"] == svc["admitted"] + sheds, "admission ledger skew"
assert svc["admitted"] == (svc["completed"] + svc["failed"]
                           + svc["cancelled"]), "outcome ledger skew"
assert svc["completed"] > 0, "nothing completed"
print(f"BENCH_service.json ok: {svc['requests']} requests, "
      f"{svc['completed']} completed, {sheds} shed, "
      f"{svc['victim_spills']} victim spills")
EOF
echo "service stress: bench + schema validation passed"
