#!/usr/bin/env bash
# Exercises the multi-tenant SortService (docs/service.md) two ways:
#
#   1. Repeats the SortServiceTest suite — admission shedding, wait budgets,
#      queued deadlines, victim spilling, and the mixed-operator overload
#      stress — with transient spill-I/O failpoints armed from the
#      environment, to shake out races and leaks a single pass can miss
#      (TSan CI runs this).
#   2. Runs bench_service (express Top-Ns + small sorts + window/join
#      mid-tier vs. spilling sort giants) and validates the
#      BENCH_service.json it emits: parses as JSON, carries the expected
#      sections incl. per-operator-class latencies and the per-operator
#      admission ledger, and every ledger balances.
#
# Usage: tools/run_service_stress.sh [build-dir] [rounds]
#   build-dir  cmake build directory with tests + benches built (default:
#              build)
#   rounds     repetitions of the test suite (default: 3)
#
# Requires a build with -DROWSORT_FAILPOINTS=ON (the default) for the
# fault-injection slices; without it those paths run fault-free.
set -euo pipefail

BUILD_DIR="${1:-build}"
ROUNDS="${2:-3}"

if [[ ! -d "${BUILD_DIR}" ]]; then
  echo "error: build directory '${BUILD_DIR}' not found" >&2
  echo "       configure with: cmake -B ${BUILD_DIR} -DROWSORT_FAILPOINTS=ON" >&2
  exit 2
fi

# Transient spill-I/O flakes for every sort the suite runs, on top of the
# probabilistic failpoints the stress test arms itself. Deterministic seeds:
# a failing round replays verbatim.
export ROWSORT_FAILPOINTS="external_run_read_eintr=p0.05:21,external_run_write_short=p0.05:23"

echo "service stress: ${ROUNDS} rounds of SortServiceTest"
echo "ROWSORT_FAILPOINTS=${ROWSORT_FAILPOINTS}"
for ((round = 1; round <= ROUNDS; ++round)); do
  echo "--- round ${round}/${ROUNDS}"
  ctest --test-dir "${BUILD_DIR}" -R 'SortServiceTest' -j "$(nproc)" \
    --output-on-failure
done
echo "service stress: all ${ROUNDS} rounds passed"

BENCH="${BUILD_DIR}/bench/bench_service"
if [[ ! -x "${BENCH}" ]]; then
  echo "note: ${BENCH} not built; skipping the bench/JSON-schema leg"
  exit 0
fi

echo "--- bench_service production mix"
JSON="$(mktemp --suffix=.json)"
trap 'rm -f "${JSON}"' EXIT
ROWSORT_BENCH_JSON="${JSON}" "${BENCH}"

echo "--- validating BENCH_service.json schema"
python3 - "${JSON}" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

for section in ("classes", "operators", "service", "pool"):
    assert section in doc, f"missing section: {section}"
for cls in ("small", "topn", "window", "join", "giant"):
    c = doc["classes"][cls]
    for key in ("ok", "shed", "killed", "io_error", "p50_ms", "p99_ms"):
        assert key in c, f"classes.{cls} missing {key}"
    assert c["ok"] > 0 or cls == "giant", f"classes.{cls} never completed"
svc = doc["service"]
for key in ("requests", "admitted", "completed", "failed", "cancelled",
            "shed_queue_full", "shed_wait_budget", "shed_queued_cancel",
            "victim_spills", "max_queue_depth", "max_running",
            "express_admitted", "max_express_running",
            "queue_wait_p99_ms", "throughput_per_s"):
    assert key in svc, f"service missing {key}"
# The request ledger must balance: every request was admitted or shed, and
# every admitted request completed, failed, or was cancelled.
sheds = (svc["shed_queue_full"] + svc["shed_wait_budget"]
         + svc["shed_queued_cancel"])
assert svc["requests"] == svc["admitted"] + sheds, "admission ledger skew"
assert svc["admitted"] == (svc["completed"] + svc["failed"]
                           + svc["cancelled"]), "outcome ledger skew"
assert svc["completed"] > 0, "nothing completed"
# Per-operator ledgers balance individually and sum to the global ledger.
ops = doc["operators"]
for field, total in (("requests", svc["requests"]),
                     ("shed", sheds),
                     ("completed", svc["completed"]),
                     ("failed", svc["failed"]),
                     ("cancelled", svc["cancelled"])):
    s = sum(op[field] for op in ops.values())
    assert s == total, f"operator {field} sum {s} != service {total}"
for name, op in ops.items():
    assert op["requests"] == op["admitted"] + op["shed"], \
        f"operators.{name} admission ledger skew"
    assert op["admitted"] == (op["completed"] + op["failed"]
                              + op["cancelled"]), \
        f"operators.{name} outcome ledger skew"
assert ops["top_n"]["completed"] > 0, "no Top-N completed"
assert svc["express_admitted"] > 0, "express lane never admitted anything"
print(f"BENCH_service.json ok: {svc['requests']} requests, "
      f"{svc['completed']} completed, {sheds} shed, "
      f"{svc['express_admitted']} express admissions, "
      f"{svc['victim_spills']} victim spills")
EOF
echo "service stress: bench + schema validation passed"
