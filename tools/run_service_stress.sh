#!/usr/bin/env bash
# Exercises the multi-tenant SortService (docs/service.md) two ways:
#
#   1. Repeats the SortServiceTest suite — admission shedding, wait budgets,
#      queued deadlines, victim spilling, and the mixed-operator overload
#      stress — with transient spill-I/O failpoints armed from the
#      environment, to shake out races and leaks a single pass can miss
#      (TSan CI runs this).
#   2. Runs bench_service (express Top-Ns + small sorts + window/join
#      mid-tier vs. spilling sort giants) and validates the
#      BENCH_service.json it emits: parses as JSON, carries the expected
#      sections incl. per-operator-class latencies, the per-operator
#      admission ledger, and the telemetry section (in-bench 10 Hz scraper
#      + flight-recorder reconstruction), and every ledger balances. The
#      final ExportMetricsText() dump is linted with check_prometheus.py.
#   3. Re-runs the bench with ROWSORT_SERVICE_TELEMETRY=0 and compares the
#      small-sort p50 against the telemetry-on run (informational <2%
#      overhead check; warns rather than fails, bench noise dominates at
#      these latencies).
#
# Usage: tools/run_service_stress.sh [build-dir] [rounds]
#   build-dir  cmake build directory with tests + benches built (default:
#              build)
#   rounds     repetitions of the test suite (default: 3)
#
# Requires a build with -DROWSORT_FAILPOINTS=ON (the default) for the
# fault-injection slices; without it those paths run fault-free.
set -euo pipefail

BUILD_DIR="${1:-build}"
ROUNDS="${2:-3}"

if [[ ! -d "${BUILD_DIR}" ]]; then
  echo "error: build directory '${BUILD_DIR}' not found" >&2
  echo "       configure with: cmake -B ${BUILD_DIR} -DROWSORT_FAILPOINTS=ON" >&2
  exit 2
fi

# Transient spill-I/O flakes for every sort the suite runs, on top of the
# probabilistic failpoints the stress test arms itself. Deterministic seeds:
# a failing round replays verbatim.
export ROWSORT_FAILPOINTS="external_run_read_eintr=p0.05:21,external_run_write_short=p0.05:23"

echo "service stress: ${ROUNDS} rounds of SortServiceTest"
echo "ROWSORT_FAILPOINTS=${ROWSORT_FAILPOINTS}"
for ((round = 1; round <= ROUNDS; ++round)); do
  echo "--- round ${round}/${ROUNDS}"
  ctest --test-dir "${BUILD_DIR}" \
    -R 'SortServiceTest|TelemetryServiceTest|FlightRecorderTest' \
    -j "$(nproc)" --output-on-failure
done
echo "service stress: all ${ROUNDS} rounds passed"

BENCH="${BUILD_DIR}/bench/bench_service"
if [[ ! -x "${BENCH}" ]]; then
  echo "note: ${BENCH} not built; skipping the bench/JSON-schema leg"
  exit 0
fi

echo "--- bench_service production mix (telemetry on, scraper armed)"
JSON="$(mktemp --suffix=.json)"
JSON_OFF="$(mktemp --suffix=.json)"
METRICS="$(mktemp --suffix=.prom)"
trap 'rm -f "${JSON}" "${JSON_OFF}" "${METRICS}"' EXIT
ROWSORT_BENCH_JSON="${JSON}" ROWSORT_METRICS_TEXT="${METRICS}" "${BENCH}"

echo "--- linting final Prometheus exposition dump"
python3 "$(dirname "$0")/check_prometheus.py" "${METRICS}"

echo "--- validating BENCH_service.json schema"
python3 - "${JSON}" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

for section in ("classes", "operators", "service", "telemetry", "pool"):
    assert section in doc, f"missing section: {section}"
for cls in ("small", "topn", "window", "join", "giant"):
    c = doc["classes"][cls]
    for key in ("ok", "shed", "killed", "io_error", "p50_ms", "p99_ms"):
        assert key in c, f"classes.{cls} missing {key}"
    assert c["ok"] > 0 or cls == "giant", f"classes.{cls} never completed"
svc = doc["service"]
for key in ("requests", "admitted", "completed", "failed", "cancelled",
            "shed_queue_full", "shed_wait_budget", "shed_queued_cancel",
            "victim_spills", "max_queue_depth", "max_running",
            "express_admitted", "max_express_running",
            "queue_wait_p99_ms", "throughput_per_s"):
    assert key in svc, f"service missing {key}"
# The request ledger must balance: every request was admitted or shed, and
# every admitted request completed, failed, or was cancelled.
sheds = (svc["shed_queue_full"] + svc["shed_wait_budget"]
         + svc["shed_queued_cancel"])
assert svc["requests"] == svc["admitted"] + sheds, "admission ledger skew"
assert svc["admitted"] == (svc["completed"] + svc["failed"]
                           + svc["cancelled"]), "outcome ledger skew"
assert svc["completed"] > 0, "nothing completed"
# Per-operator ledgers balance individually and sum to the global ledger.
ops = doc["operators"]
for field, total in (("requests", svc["requests"]),
                     ("shed", sheds),
                     ("completed", svc["completed"]),
                     ("failed", svc["failed"]),
                     ("cancelled", svc["cancelled"])):
    s = sum(op[field] for op in ops.values())
    assert s == total, f"operator {field} sum {s} != service {total}"
for name, op in ops.items():
    assert op["requests"] == op["admitted"] + op["shed"], \
        f"operators.{name} admission ledger skew"
    assert op["admitted"] == (op["completed"] + op["failed"]
                              + op["cancelled"]), \
        f"operators.{name} outcome ledger skew"
assert ops["top_n"]["completed"] > 0, "no Top-N completed"
assert svc["express_admitted"] > 0, "express lane never admitted anything"
# Telemetry: the concurrent scraper saw only consistent ledgers, and the
# flight recorder reconstructs the bench's shed/victim/admit decisions.
tel = doc["telemetry"]
for key in ("enabled", "scrapes", "scrape_violations", "collector_samples",
            "flight_recorded", "flight_dropped", "flight_sheds",
            "flight_victim_spills", "flight_victim_bytes", "flight_admits",
            "flight_consistent"):
    assert key in tel, f"telemetry missing {key}"
assert tel["enabled"], "telemetry was disabled in the primary run"
assert tel["scrapes"] > 0, "scraper thread never ran"
assert tel["scrape_violations"] == 0, \
    f"scraper saw {tel['scrape_violations']} inconsistent snapshots"
assert tel["collector_samples"] > 0, "background collector never sampled"
assert tel["flight_dropped"] == 0, "flight recorder overflowed"
assert tel["flight_consistent"], \
    "flight recorder does not reconstruct the service ledger"
assert tel["flight_sheds"] == sheds, "flight shed count != ledger sheds"
assert tel["flight_victim_spills"] == svc["victim_spills"], \
    "flight victim-spill count != ledger victim spills"
# Victim events carry the freed byte count; their sum must reconcile with
# the admission ledger even though the giants spill compressed (format v3)
# runs — freed bytes are tracked at the MemoryTracker, not the spill file.
assert tel["flight_victim_bytes"] == svc["victim_bytes_freed"], \
    (f"flight victim bytes {tel['flight_victim_bytes']} != ledger "
     f"victim_bytes_freed {svc['victim_bytes_freed']}")
if svc["victim_spills"] > 0:
    assert svc["victim_bytes_freed"] > 0, "victim spills freed no bytes"
assert tel["flight_admits"] == svc["admitted"], \
    "flight admit count != ledger admissions"
print(f"BENCH_service.json ok: {svc['requests']} requests, "
      f"{svc['completed']} completed, {sheds} shed, "
      f"{svc['express_admitted']} express admissions, "
      f"{svc['victim_spills']} victim spills "
      f"({svc['victim_bytes_freed']} bytes freed, reconciled); telemetry "
      f"{tel['scrapes']} scrapes / {tel['flight_recorded']} flight events, "
      f"all consistent")
EOF

echo "--- bench_service with telemetry disabled (overhead comparison)"
ROWSORT_BENCH_JSON="${JSON_OFF}" ROWSORT_SERVICE_TELEMETRY=0 "${BENCH}"
python3 - "${JSON}" "${JSON_OFF}" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    on = json.load(f)
with open(sys.argv[2]) as f:
    off = json.load(f)
assert not off["telemetry"]["enabled"], "telemetry-off run had telemetry on"
assert off["service"]["completed"] > 0, "telemetry-off run completed nothing"
p50_on = on["classes"]["small"]["p50_ms"]
p50_off = off["classes"]["small"]["p50_ms"]
overhead = (p50_on - p50_off) / p50_off * 100 if p50_off > 0 else 0.0
print(f"small-sort p50: telemetry on {p50_on:.3f} ms, "
      f"off {p50_off:.3f} ms ({overhead:+.1f}%)")
if overhead > 2.0:
    # Informational: queue-dominated latencies make this noisy, and the
    # admission mix can differ between runs. The real overhead budget is
    # the disabled path (a null-pointer check per event).
    print(f"warning: telemetry-on p50 exceeds off by {overhead:.1f}% "
          "(>2% target); likely bench noise, not a gate", file=sys.stderr)
EOF
echo "service stress: bench + schema validation passed"
