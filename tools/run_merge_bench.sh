#!/usr/bin/env bash
# Runs the merge-strategy x offset-value-coding ablation and records the
# results as BENCH_merge.json, so the comparison-count reduction can be
# tracked across changes (see bench/bench_ablation_merge_strategy.cc and
# docs/merge_phase.md).
#
# Usage: tools/run_merge_bench.sh [build-dir] [output-json]
#   build-dir    defaults to ./build (configured+built if missing)
#   output-json  defaults to ./BENCH_merge.json
#
# Knobs (environment):
#   ROWSORT_BENCH_REPS       repetitions per cell (median reported; default 3)
#   ROWSORT_MERGE_ABL_ROWS   unique-int32 workload rows (default 2000000)
#   ROWSORT_MERGE_DUP_ROWS   dup-heavy 3-col workload rows (default 1000000)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_json="${2:-${repo_root}/BENCH_merge.json}"
bench="${build_dir}/bench/bench_ablation_merge_strategy"

if [[ ! -x "${bench}" ]]; then
  echo "== ${bench} not found; configuring and building =="
  cmake -B "${build_dir}" -S "${repo_root}" >/dev/null
  cmake --build "${build_dir}" -j --target bench_ablation_merge_strategy
fi

echo "== running merge ablation (JSON -> ${out_json}) =="
ROWSORT_BENCH_JSON="${out_json}" "${bench}"

echo "== done: ${out_json} =="
