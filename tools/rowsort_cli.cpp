// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// rowsort_cli — command-line driver for the sorting engine.
//
// Examples:
//   rowsort_cli --workload=integers --rows=1000000
//   rowsort_cli --workload=catalog_sales --rows=500000 --keys=4 --threads=4
//   rowsort_cli --workload=customer --rows=200000 --string-keys
//   rowsort_cli --workload=floats --rows=500000 --algorithm=pdq --desc
//   rowsort_cli --workload=integers --rows=2000000 --topn=10
//   rowsort_cli --workload=integers --rows=1000000 --spill=/tmp/rowsort
//   rowsort_cli --workload=integers --rows=1000000 --threads=4
//       --profile=profile.json --trace=trace.json --metrics
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "common/string_util.h"
#include "common/timer.h"
#include "common/trace.h"
#include "engine/profile.h"
#include "engine/sort_engine.h"
#include "engine/top_n.h"
#include "service/sort_service.h"
#include "workload/tables.h"
#include "workload/tpcds.h"

using namespace rowsort;

namespace {

struct Options {
  std::string workload = "integers";
  uint64_t rows = 1'000'000;
  uint64_t keys = 1;
  uint64_t threads = 1;
  std::string algorithm = "auto";
  bool descending = false;
  bool string_keys = false;
  uint64_t topn = 0;
  std::string spill;
  bool spill_compression = true;
  uint64_t memory_limit = 0;
  uint64_t timeout_ms = 0;
  uint64_t seed = 42;
  bool show_rows = true;
  std::string profile_path;  ///< write SortProfile JSON here
  std::string trace_path;    ///< write Chrome/Perfetto trace JSON here
  bool show_metrics = false;
  bool service_stats = false;  ///< route through SortService, dump telemetry
};

void PrintUsage() {
  std::printf(
      "usage: rowsort_cli [options]\n"
      "  --workload=integers|floats|catalog_sales|customer\n"
      "  --rows=N              input size (default 1,000,000)\n"
      "  --keys=1..4           key columns for catalog_sales (default 1)\n"
      "  --string-keys         sort customer by names instead of birth date\n"
      "  --threads=N           worker threads (default 1)\n"
      "  --algorithm=auto|radix|pdq|heuristic\n"
      "  --desc                sort descending\n"
      "  --topn=N              use the Top-N operator instead of a full sort\n"
      "  --spill=DIR           spill sorted runs to DIR (out-of-core merge)\n"
      "  --spill-compression=on|off\n"
      "                        compress spill blocks (run format v3, default\n"
      "                        on; off = byte-identical v2 spill files)\n"
      "  --memory-limit=N[kmg] bound the working set; runs spill adaptively\n"
      "  --timeout-ms=N        abort with DeadlineExceeded after N ms\n"
      "  --seed=N              workload seed (default 42)\n"
      "  --quiet               do not print sample rows\n"
      "  --profile=FILE        write the hierarchical sort profile as JSON\n"
      "  --trace=FILE          write a Chrome/Perfetto trace of the sort\n"
      "  --metrics             print the profile tree and counters\n"
      "  --service-stats       route through the multi-tenant SortService\n"
      "                        and dump its telemetry: Prometheus metrics\n"
      "                        and the flight recorder (docs/observability"
      ".md)\n");
}

bool ParseArg(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

bool ParseOptions(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseArg(argv[i], "--workload", &value)) {
      opt->workload = value;
    } else if (ParseArg(argv[i], "--rows", &value)) {
      opt->rows = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseArg(argv[i], "--keys", &value)) {
      opt->keys = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseArg(argv[i], "--threads", &value)) {
      opt->threads = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseArg(argv[i], "--algorithm", &value)) {
      opt->algorithm = value;
    } else if (ParseArg(argv[i], "--topn", &value)) {
      opt->topn = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseArg(argv[i], "--spill", &value)) {
      opt->spill = value;
    } else if (ParseArg(argv[i], "--spill-compression", &value)) {
      if (value == "on") {
        opt->spill_compression = true;
      } else if (value == "off") {
        opt->spill_compression = false;
      } else {
        std::fprintf(stderr, "bad --spill-compression value: %s\n",
                     value.c_str());
        return false;
      }
    } else if (ParseArg(argv[i], "--memory-limit", &value)) {
      char* end = nullptr;
      opt->memory_limit = std::strtoull(value.c_str(), &end, 10);
      if (end && *end) {
        switch (*end) {
          case 'k': case 'K': opt->memory_limit <<= 10; break;
          case 'm': case 'M': opt->memory_limit <<= 20; break;
          case 'g': case 'G': opt->memory_limit <<= 30; break;
          default:
            std::fprintf(stderr, "bad --memory-limit suffix: %s\n", end);
            return false;
        }
      }
    } else if (ParseArg(argv[i], "--timeout-ms", &value)) {
      opt->timeout_ms = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseArg(argv[i], "--seed", &value)) {
      opt->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseArg(argv[i], "--profile", &value)) {
      opt->profile_path = value;
    } else if (ParseArg(argv[i], "--trace", &value)) {
      opt->trace_path = value;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      opt->show_metrics = true;
    } else if (std::strcmp(argv[i], "--service-stats") == 0) {
      opt->service_stats = true;
    } else if (std::strcmp(argv[i], "--desc") == 0) {
      opt->descending = true;
    } else if (std::strcmp(argv[i], "--string-keys") == 0) {
      opt->string_keys = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      opt->show_rows = false;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      return false;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseOptions(argc, argv, &opt)) {
    PrintUsage();
    return 1;
  }

  // Build the workload.
  Timer gen_timer;
  Table input;
  std::vector<SortColumn> sort_columns;
  OrderType order =
      opt.descending ? OrderType::kDescending : OrderType::kAscending;
  if (opt.workload == "integers") {
    input = MakeShuffledIntegerTable(opt.rows, opt.seed);
    sort_columns.emplace_back(0, TypeId::kInt32, order);
  } else if (opt.workload == "floats") {
    input = MakeUniformFloatTable(opt.rows, opt.seed);
    sort_columns.emplace_back(0, TypeId::kFloat, order);
  } else if (opt.workload == "catalog_sales") {
    TpcdsScale scale;
    scale.scale_factor = 10;
    scale.seed = opt.seed;
    scale.scale_divisor = std::max<uint64_t>(
        scale.CatalogSalesRows() / std::max<uint64_t>(opt.rows, 1), 1);
    input = MakeCatalogSales(scale);
    uint64_t keys = std::min<uint64_t>(std::max<uint64_t>(opt.keys, 1), 4);
    for (uint64_t k = 0; k < keys; ++k) {
      sort_columns.emplace_back(k, TypeId::kInt32, order);
    }
  } else if (opt.workload == "customer") {
    TpcdsScale scale;
    scale.scale_factor = 100;
    scale.seed = opt.seed;
    scale.scale_divisor = std::max<uint64_t>(
        scale.CustomerRows() / std::max<uint64_t>(opt.rows, 1), 1);
    input = MakeCustomer(scale);
    if (opt.string_keys) {
      sort_columns.emplace_back(4, TypeId::kVarchar, order);
      sort_columns.emplace_back(5, TypeId::kVarchar, order);
    } else {
      sort_columns.emplace_back(1, TypeId::kInt32, order);
      sort_columns.emplace_back(2, TypeId::kInt32, order);
      sort_columns.emplace_back(3, TypeId::kInt32, order);
    }
  } else {
    std::fprintf(stderr, "unknown workload: %s\n", opt.workload.c_str());
    PrintUsage();
    return 1;
  }
  SortSpec spec(sort_columns);
  std::printf("workload %s: %s rows generated in %s\n", opt.workload.c_str(),
              FormatCount(input.row_count()).c_str(),
              FormatDuration(gen_timer.ElapsedSeconds()).c_str());
  std::printf("ORDER BY %s\n", spec.ToString().c_str());

  SortEngineConfig config;
  config.threads = std::max<uint64_t>(opt.threads, 1);
  config.spill_directory = opt.spill;
  config.spill_compression = opt.spill_compression;
  config.memory_limit_bytes = opt.memory_limit;
  if (opt.algorithm == "radix") {
    config.algorithm = RunSortAlgorithm::kRadix;
  } else if (opt.algorithm == "pdq") {
    config.algorithm = RunSortAlgorithm::kPdq;
  } else if (opt.algorithm == "heuristic") {
    config.algorithm = RunSortAlgorithm::kHeuristic;
  } else {
    config.algorithm = RunSortAlgorithm::kAuto;
  }
  config.run_size_rows = std::max<uint64_t>(
      input.row_count() / config.threads + 1, kVectorSize);
  if (!opt.spill.empty() || opt.memory_limit > 0) {
    config.run_size_rows =
        std::min<uint64_t>(config.run_size_rows, 1 << 18);
  }
  // Deadline-bounded execution: the source must outlive the sort; the token
  // it hands out is polled cooperatively by every pipeline loop.
  CancellationSource deadline_source(
      opt.timeout_ms > 0 ? Deadline::AfterMillis(opt.timeout_ms)
                         : Deadline::Infinite());
  if (opt.timeout_ms > 0) {
    config.cancellation = deadline_source.token();
  }

  // Observability: attach a tracer when a trace file was requested, and ask
  // SortTable for the hierarchical profile when either --profile or
  // --metrics needs one. Both are filled even when the sort fails, so a
  // cancelled or erroring run still leaves its partial profile behind.
  Tracer tracer;
  if (!opt.trace_path.empty()) config.trace = &tracer;
  const bool want_profile = !opt.profile_path.empty() || opt.show_metrics;
  SortProfile profile;
  auto export_observability = [&](const SortProfile* prof) {
    if (prof != nullptr && !opt.profile_path.empty()) {
      Status st = prof->WriteJson(opt.profile_path);
      if (!st.ok()) {
        std::fprintf(stderr, "profile export failed: %s\n",
                     st.ToString().c_str());
      } else {
        std::printf("profile written to %s\n", opt.profile_path.c_str());
      }
    }
    if (prof != nullptr && opt.show_metrics) {
      std::printf("%s", prof->ToString().c_str());
    }
    if (!opt.trace_path.empty()) {
      Status st = tracer.WriteChromeTrace(opt.trace_path);
      if (!st.ok()) {
        std::fprintf(stderr, "trace export failed: %s\n",
                     st.ToString().c_str());
      } else {
        std::printf(
            "trace written to %s (%llu threads, %llu events dropped) — open "
            "in ui.perfetto.dev\n",
            opt.trace_path.c_str(), (unsigned long long)tracer.thread_count(),
            (unsigned long long)tracer.dropped_events());
      }
    }
  };

  Timer sort_timer;
  Table result;
  if (opt.service_stats) {
    // Route the request through the multi-tenant service so its governance
    // and telemetry (docs/observability.md, "Service telemetry") surface:
    // Prometheus exposition, the flight recorder, and — with --trace — the
    // stitched per-query trace scopes.
    SortServiceConfig service_config;
    service_config.threads = config.threads;
    service_config.memory_limit_bytes = opt.memory_limit;
    if (!opt.trace_path.empty()) service_config.trace = &tracer;
    SortService service(service_config);

    OperatorRequest request;
    request.op = opt.topn > 0 ? OperatorKind::kTopN : OperatorKind::kSort;
    request.spec = spec;
    request.limit = opt.topn;
    request.engine = config;
    if (opt.timeout_ms > 0) {
      request.deadline = Deadline::AfterMillis(opt.timeout_ms);
    }

    SortMetrics metrics;
    StatusOr<Table> sorted = service.Submit(input, request, &metrics);
    const bool ok = sorted.ok();
    if (ok) {
      result = std::move(sorted).ValueOrDie();
      std::printf("service %s completed in %s\n",
                  opt.topn > 0 ? "top-n" : "sort",
                  FormatDuration(sort_timer.ElapsedSeconds()).c_str());
    } else {
      std::fprintf(stderr, "service request failed: %s\n",
                   sorted.status().ToString().c_str());
    }
    // The telemetry is the point of this mode: dump it even on failure —
    // the flight recorder explains *why* a request died.
    std::printf("\n--- service metrics (Prometheus exposition) ---\n%s",
                service.ExportMetricsText().c_str());
    std::printf("\n--- flight recorder ---\n%s\n",
                service.DumpFlightRecorder().c_str());
    if (!opt.trace_path.empty()) {
      Status st = tracer.WriteChromeTrace(opt.trace_path);
      if (st.ok()) {
        std::printf("stitched trace written to %s — open in ui.perfetto.dev\n",
                    opt.trace_path.c_str());
      } else {
        std::fprintf(stderr, "trace export failed: %s\n",
                     st.ToString().c_str());
      }
    }
    if (!ok) return 1;
  } else if (opt.topn > 0) {
    TopN top_n(spec, input.types(), opt.topn, config);
    Status topn_status;
    for (uint64_t c = 0; topn_status.ok() && c < input.ChunkCount(); ++c) {
      topn_status = top_n.Sink(input.chunk(c));
    }
    if (topn_status.ok()) {
      StatusOr<Table> top = top_n.Finalize();
      if (top.ok()) {
        result = std::move(top).ValueOrDie();
      } else {
        topn_status = top.status();
      }
    }
    if (!topn_status.ok()) {
      std::fprintf(stderr, "top-n failed: %s\n",
                   topn_status.ToString().c_str());
      return 1;
    }
    std::printf("top-%s computed in %s\n", FormatCount(opt.topn).c_str(),
                FormatDuration(sort_timer.ElapsedSeconds()).c_str());
  } else {
    SortMetrics metrics;
    StatusOr<Table> sorted = RelationalSort::SortTable(
        input, spec, config, &metrics, want_profile ? &profile : nullptr);
    if (!sorted.ok()) {
      std::fprintf(stderr, "sort failed: %s\n",
                   sorted.status().ToString().c_str());
      if (sorted.status().IsCancellation()) {
        std::fprintf(stderr,
                     "cancellation observed after %llu checks, %.2fms from "
                     "the deadline firing\n",
                     (unsigned long long)metrics.cancel_checks,
                     metrics.time_to_cancel_us / 1000.0);
      }
      // Partial observability: the profile records the phase the sort died
      // in plus everything folded up to that point.
      export_observability(want_profile ? &profile : nullptr);
      return 1;
    }
    result = std::move(sorted).ValueOrDie();
    std::printf(
        "sorted in %s (%llu runs; sink %s, run sort %s, merge %s)\n",
        FormatDuration(sort_timer.ElapsedSeconds()).c_str(),
        (unsigned long long)metrics.runs_generated,
        FormatDuration(metrics.sink_seconds).c_str(),
        FormatDuration(metrics.run_sort_seconds).c_str(),
        FormatDuration(metrics.merge_seconds).c_str());
    if (metrics.runs_spilled > 0 || config.memory_limit_bytes > 0) {
      std::printf("spilled %llu runs; peak tracked memory %.1f MiB\n",
                  (unsigned long long)metrics.runs_spilled,
                  metrics.peak_memory_bytes / (1024.0 * 1024.0));
    }
    if (metrics.spill_bytes_raw > 0) {
      std::printf(
          "spill bytes: %llu raw -> %llu compressed (%.2fx; sections "
          "raw/prefix/rle/lz %llu/%llu/%llu/%llu)\n",
          (unsigned long long)metrics.spill_bytes_raw,
          (unsigned long long)metrics.spill_bytes_compressed,
          metrics.spill_bytes_compressed > 0
              ? (double)metrics.spill_bytes_raw /
                    (double)metrics.spill_bytes_compressed
              : 0.0,
          (unsigned long long)metrics.spill_sections_raw,
          (unsigned long long)metrics.spill_sections_prefix,
          (unsigned long long)metrics.spill_sections_rle,
          (unsigned long long)metrics.spill_sections_lz);
    }
    if (metrics.io_retries > 0) {
      std::printf("transient spill-I/O errors retried: %llu\n",
                  (unsigned long long)metrics.io_retries);
    }
    export_observability(want_profile ? &profile : nullptr);
  }

  if (opt.show_rows && result.row_count() > 0) {
    std::printf("\nfirst rows:\n%s", result.chunk(0).ToString(5).c_str());
  }
  return 0;
}
