#!/usr/bin/env python3
"""Lints a Prometheus text-exposition dump (format 0.0.4).

Used by tools/run_service_stress.sh against the exposition bench_service
dumps via ROWSORT_METRICS_TEXT, and handy against any ExportMetricsText()
output:

    python3 tools/check_prometheus.py metrics.txt
    some_producer | python3 tools/check_prometheus.py -

Checks:
  - every sample line parses: name, optional {labels}, numeric value
  - metric and label names are legal ([a-zA-Z_:][a-zA-Z0-9_:]*)
  - label values use only the legal escapes (\\\\, \\", \\n)
  - every sampled family carries # HELP and # TYPE lines (declared before
    its first sample) with a known type
  - no duplicate (name, labelset) series
  - counter family names end in _total
  - histograms: each series has its _bucket/_sum/_count triple, le bounds
    strictly increase, bucket counts are cumulative (non-decreasing), the
    +Inf bucket exists and equals _count

Exit status: 0 clean, 1 violations found, 2 usage/IO error.
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# A quoted label value with only the legal escapes.
LABEL_VALUE = re.compile(r'^(?:[^"\\\n]|\\\\|\\"|\\n)*$')
SAMPLE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)$")
KNOWN_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def parse_labels(raw, errors, lineno):
    """Returns [(key, value), ...] from '{k="v",...}' or records errors."""
    body = raw[1:-1]
    labels = []
    pos = 0
    while pos < len(body):
        eq = body.find("=", pos)
        if eq < 0 or len(body) <= eq + 1 or body[eq + 1] != '"':
            errors.append(f"line {lineno}: malformed label set {raw!r}")
            return labels
        key = body[pos:eq]
        if not LABEL_NAME.match(key):
            errors.append(f"line {lineno}: bad label name {key!r}")
        end = eq + 2
        while end < len(body):
            if body[end] == "\\":
                end += 2
            elif body[end] == '"':
                break
            else:
                end += 1
        if end >= len(body):
            errors.append(f"line {lineno}: unterminated label value in {raw!r}")
            return labels
        value = body[eq + 2:end]
        if not LABEL_VALUE.match(value):
            errors.append(f"line {lineno}: illegal escape in value {value!r}")
        labels.append((key, value))
        pos = end + 1
        if pos < len(body):
            if body[pos] != ",":
                errors.append(f"line {lineno}: expected ',' in {raw!r}")
                return labels
            pos += 1
    return labels


def parse_value(raw):
    if raw in ("+Inf", "-Inf", "Inf", "NaN"):
        return float("nan") if raw == "NaN" else float(raw.replace("Inf", "inf"))
    return float(raw)


def base_family(name):
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        text = (sys.stdin.read() if sys.argv[1] == "-"
                else open(sys.argv[1]).read())
    except OSError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    errors = []
    helps = {}
    types = {}
    seen_series = set()
    samples = []  # (name, labels tuple, value, lineno)

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "HELP":
                helps[parts[2]] = parts[3] if len(parts) > 3 else ""
            elif len(parts) >= 4 and parts[1] == "TYPE":
                if parts[2] in types:
                    errors.append(f"line {lineno}: duplicate TYPE for {parts[2]}")
                if parts[3] not in KNOWN_TYPES:
                    errors.append(
                        f"line {lineno}: unknown type {parts[3]!r} for {parts[2]}")
                types[parts[2]] = parts[3]
            continue
        m = SAMPLE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name, raw_labels, raw_value = m.groups()
        if not METRIC_NAME.match(name):
            errors.append(f"line {lineno}: bad metric name {name!r}")
        labels = parse_labels(raw_labels, errors, lineno) if raw_labels else []
        try:
            value = parse_value(raw_value)
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value {raw_value!r}")
            continue
        series_key = (name, tuple(sorted(labels)))
        if series_key in seen_series:
            errors.append(f"line {lineno}: duplicate series {line!r}")
        seen_series.add(series_key)
        family = base_family(name)
        if family not in types and name not in types:
            errors.append(f"line {lineno}: sample for {name} precedes its TYPE")
        if family not in helps and name not in helps:
            errors.append(f"line {lineno}: sample for {name} has no HELP")
        samples.append((name, labels, value, lineno))

    # Naming convention: counters end in _total.
    for family, kind in types.items():
        if kind == "counter" and not family.endswith("_total"):
            errors.append(f"counter family {family} does not end in _total")

    # Histogram structure: group _bucket samples per (family, labels-sans-le).
    buckets = {}
    scalars = {}
    for name, labels, value, lineno in samples:
        family = base_family(name)
        if types.get(family) != "histogram":
            continue
        key_labels = tuple(sorted(l for l in labels if l[0] != "le"))
        if name.endswith("_bucket"):
            le = [v for k, v in labels if k == "le"]
            if len(le) != 1:
                errors.append(f"line {lineno}: bucket without exactly one le")
                continue
            buckets.setdefault((family, key_labels), []).append(
                (parse_value(le[0]), value, lineno))
        else:
            scalars[(name, key_labels)] = value
    for (family, key_labels), rows in buckets.items():
        series = f"{family}{dict(key_labels)}"
        les = [r[0] for r in rows]
        if les != sorted(les) or len(set(les)) != len(les):
            errors.append(f"{series}: le bounds not strictly increasing")
        counts = [r[1] for r in rows]
        if any(b > a for a, b in zip(counts[1:], counts)):
            errors.append(f"{series}: bucket counts not cumulative")
        if not les or les[-1] != float("inf"):
            errors.append(f"{series}: missing le=\"+Inf\" bucket")
        count = scalars.get((family + "_count", key_labels))
        if count is None:
            errors.append(f"{series}: missing _count")
        elif les and les[-1] == float("inf") and counts[-1] != count:
            errors.append(f"{series}: +Inf bucket {counts[-1]} != _count {count}")
        if (family + "_sum", key_labels) not in scalars:
            errors.append(f"{series}: missing _sum")

    if errors:
        for e in errors:
            print(f"check_prometheus: {e}", file=sys.stderr)
        print(f"check_prometheus: {len(errors)} violation(s) in "
              f"{len(samples)} samples", file=sys.stderr)
        return 1
    print(f"check_prometheus: ok ({len(samples)} samples, "
          f"{len(types)} families, {len(buckets)} histogram series)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
