#!/usr/bin/env bash
# Runs the data-movement microbench (kernels vs. the scalar reference path)
# plus the pipeline phase breakdown it feeds into, and records the results
# as BENCH_movement.json so the scatter/gather win can be tracked across
# changes (see bench/bench_data_movement.cc and docs/architecture.md,
# "Data movement").
#
# The emitted JSON is validated: it must parse, cover every (op, variant)
# cell, and carry positive timings. No perf gating — CI runs this as a
# smoke job at small sizes where speedup numbers are noise.
#
# Usage: tools/run_movement_bench.sh [build-dir] [output-json]
#   build-dir    defaults to ./build (configured+built if missing)
#   output-json  defaults to ./BENCH_movement.json
#
# Knobs (environment):
#   ROWSORT_MOVEMENT_ROWS  microbench table rows (default 2000000)
#   ROWSORT_FIG11_ROWS     phase-breakdown sort rows (default 4000000)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_json="${2:-${repo_root}/BENCH_movement.json}"
movement="${build_dir}/bench/bench_data_movement"
fig11="${build_dir}/bench/bench_fig11_pipeline_phases"

for target in bench_data_movement bench_fig11_pipeline_phases; do
  if [[ ! -x "${build_dir}/bench/${target}" ]]; then
    echo "== ${build_dir}/bench/${target} not found; configuring and building =="
    cmake -B "${build_dir}" -S "${repo_root}" >/dev/null
    cmake --build "${build_dir}" -j --target "${target}"
  fi
done

echo "== data-movement kernels vs scalar baseline (JSON -> ${out_json}) =="
ROWSORT_BENCH_JSON="${out_json}" "${movement}"

echo
echo "== pipeline phase breakdown (sink / run sort / merge) =="
"${fig11}"

echo
echo "== validating ${out_json} =="
python3 -m json.tool "${out_json}" >/dev/null
python3 - "${out_json}" <<'EOF'
import json, sys
records = json.load(open(sys.argv[1]))
cells = {(r["op"], r["variant"]) for r in records}
ops = ("scatter", "gather_seq", "gather_random")
variants = ("all-valid", "sparse-nulls", "half-nulls", "all-null")
for op in ops:
    for variant in variants:
        assert (op, variant) in cells, f"missing cell: {op}/{variant}"
for r in records:
    assert r["rows"] > 0 and r["scalar_seconds"] > 0 and r["kernel_seconds"] > 0, r
best = max(records, key=lambda r: r["speedup"])
print(f"{len(records)} cells; best speedup {best['speedup']:.2f}x "
      f"({best['op']}/{best['variant']})")
EOF
echo "== done: ${out_json} =="
