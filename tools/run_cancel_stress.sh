#!/usr/bin/env bash
# Runs the cancellation / transient-I/O robustness suite in a loop, with
# probabilistic failpoints armed from the environment, to shake out races
# and leaks that a single pass can miss. Intended for the sanitizer CI jobs
# (TSan especially) and for local soak testing.
#
# Usage: tools/run_cancel_stress.sh [build-dir] [rounds]
#   build-dir  cmake build directory with the tests built (default: build)
#   rounds     repetitions of the suite (default: 5)
#
# Requires a build with -DROWSORT_FAILPOINTS=ON for the fault-injection
# cases; without it those tests skip and only the cancellation cases run.
set -euo pipefail

BUILD_DIR="${1:-build}"
ROUNDS="${2:-5}"

if [[ ! -d "${BUILD_DIR}" ]]; then
  echo "error: build directory '${BUILD_DIR}' not found" >&2
  echo "       configure with: cmake -B ${BUILD_DIR} -DROWSORT_FAILPOINTS=ON" >&2
  exit 2
fi

# The tests that exercise cancellation, deadlines, batch-skip semantics,
# and the spill-I/O retry layer.
FILTER='EngineCancelTest|EngineRetryTest|ExternalRunRetryTest|StressTest|ThreadPoolErrorTest|CancellationTest|CancelCheckerTest|RetryTest'

# Arm transient spill-I/O flakes at 10% probability for every sort the
# suite runs. Deterministic seeds: a failing round is replayable verbatim.
export ROWSORT_FAILPOINTS="external_run_read_eintr=p0.1:11,external_run_write_short=p0.1:13"

echo "cancel stress: ${ROUNDS} rounds of {${FILTER}}"
echo "ROWSORT_FAILPOINTS=${ROWSORT_FAILPOINTS}"
for ((round = 1; round <= ROUNDS; ++round)); do
  echo "--- round ${round}/${ROUNDS}"
  ctest --test-dir "${BUILD_DIR}" -R "${FILTER}" -j "$(nproc)" \
    --output-on-failure
done
echo "cancel stress: all ${ROUNDS} rounds passed"

# Partial-profile check: a deadline-killed sort must still leave a usable
# profile behind (active phase + whatever was folded before the cut). The
# CLI exits non-zero on DeadlineExceeded — that is the expected outcome.
CLI="${BUILD_DIR}/tools/rowsort_cli"
if [[ -x "${CLI}" ]]; then
  echo "--- partial profile from a deadline-cancelled sort"
  PROFILE="$(mktemp)"
  trap 'rm -f "${PROFILE}"' EXIT
  if "${CLI}" --workload=integers --rows=20000000 --threads=2 \
      --timeout-ms=20 --quiet --profile="${PROFILE}"; then
    echo "warning: sort finished before the deadline; profile is complete," \
         "not partial"
  fi
  python3 -m json.tool "${PROFILE}" >/dev/null
  echo "partial profile parses: $(head -c 120 "${PROFILE}")..."
fi
