#!/usr/bin/env bash
# Runs the sort-for-compression workload bench (bench_compression_order) and
# records the results as BENCH_compression.json: post-sort RLE and
# frame-of-reference sizes of the TPC-DS-like catalog_sales columns under
# three orderings (unsorted baseline, the paper's given key order, and
# low-cardinality-first).
#
# The emitted JSON is validated: it must parse, contain exactly the three
# orderings with per-column stats, and show the §II claim quantitatively —
# every sorted ordering must beat the unsorted baseline on total RLE bytes
# (>= 1.5x smaller) and on total FOR bytes, and low-cardinality-first must
# not lose to the given order on total RLE bytes (the whole point of the
# column-ordering heuristic).
#
# Usage: tools/run_compression_bench.sh [build-dir] [output-json]
#   build-dir    defaults to ./build (configured+built if missing)
#   output-json  defaults to ./BENCH_compression.json
#
# Knobs (environment):
#   ROWSORT_COMPRESSION_DIVISOR  divide SF-10 row counts by this (default 20)
#   ROWSORT_BENCH_REPS           repetitions per sort, median kept (default 3)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_json="${2:-${repo_root}/BENCH_compression.json}"
bench="${build_dir}/bench/bench_compression_order"

if [[ ! -x "${bench}" ]]; then
  echo "== ${bench} not found; configuring and building =="
  cmake -B "${build_dir}" -S "${repo_root}" >/dev/null
  cmake --build "${build_dir}" -j --target bench_compression_order
fi

echo "== sort-for-compression workload (JSON -> ${out_json}) =="
ROWSORT_BENCH_JSON="${out_json}" "${bench}"

echo
echo "== validating ${out_json} =="
python3 -m json.tool "${out_json}" >/dev/null
python3 - "${out_json}" <<'EOF'
import json, sys
records = json.load(open(sys.argv[1]))
by_ordering = {r["ordering"]: r for r in records}
assert set(by_ordering) == {"baseline", "given-order", "low-card-first"}, \
    f"unexpected orderings {sorted(by_ordering)}"
for r in records:
    assert r["rows"] > 0 and r["raw_bytes"] > 0, r
    assert len(r["columns"]) == 5, r["ordering"]
    assert r["rle_bytes_total"] == sum(c["rle_bytes"] for c in r["columns"])
    assert r["for_bytes_total"] == sum(c["for_bytes"] for c in r["columns"])
    for c in r["columns"]:
        assert 0 < c["runs"] <= r["rows"], c
        assert c["distinct"] <= c["runs"], c  # sorted or not, runs >= distinct
    if r["ordering"] == "baseline":
        assert r["key_order"] == [] and r["sort_seconds"] == 0, r["ordering"]
    else:
        assert len(r["key_order"]) == 4 and r["sort_seconds"] > 0, r["ordering"]

base = by_ordering["baseline"]
for name in ("given-order", "low-card-first"):
    r = by_ordering[name]
    rle = base["rle_bytes_total"] / r["rle_bytes_total"]
    fr = base["for_bytes_total"] / r["for_bytes_total"]
    print(f"{name}: rle {base['rle_bytes_total']} -> {r['rle_bytes_total']} "
          f"({rle:.2f}x smaller), for {fr:.2f}x smaller, "
          f"sort {r['sort_seconds']:.3f}s")
    assert rle >= 1.5, f"{name}: sorting only cut RLE bytes {rle:.2f}x"
    assert fr > 1.0, f"{name}: sorting did not help FOR ({fr:.2f}x)"

low = by_ordering["low-card-first"]
given = by_ordering["given-order"]
assert low["rle_bytes_total"] <= given["rle_bytes_total"], \
    "low-cardinality-first lost to the given order on RLE bytes"
print(f"low-card-first vs given-order: "
      f"{given['rle_bytes_total'] / low['rle_bytes_total']:.2f}x better RLE")
EOF
echo "== done: ${out_json} =="
