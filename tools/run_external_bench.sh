#!/usr/bin/env bash
# Runs the external-sort overlap bench (write-behind runs + prefetching merge
# readers vs. fully synchronous spill I/O) and records the results as
# BENCH_external.json so the overlap win can be tracked across changes (see
# bench/bench_external_sort.cc and docs/external_sort.md).
#
# The emitted JSON is an object with two record arrays and both are
# validated. "overlap" must parse, cover every variant at every memory limit,
# spill where a spill was forced, and show the overlapped variant cutting the
# compute thread's spill I/O wait — >= 50% in aggregate across limits,
# >= 30% at each individual limit (the tightest limit gates merge readahead
# to stay inside the budget, so only the write half overlaps there). Wall
# time is not perf-gated — on tmpfs-backed CI the inline I/O is a few percent
# of the sort, so wall deltas are noise — but a regression beyond 25% at any
# limit fails, which would indicate overlap overhead, not noise.
#
# "compression" covers spill format v3: the duplicate-heavy workload must cut
# spill bytes at least 2x, and the fully random workload (where every codec
# probe declines and all sections stay raw) must not regress wall time beyond
# 15% — the target is <= 5% and the script warns past it, but single-run
# medians on shared CI wobble ~10% so only a clear regression hard-fails.
#
# Usage: tools/run_external_bench.sh [build-dir] [output-json]
#   build-dir    defaults to ./build (configured+built if missing)
#   output-json  defaults to ./BENCH_external.json
#
# Knobs (environment):
#   ROWSORT_EXTERNAL_ROWS  sorted table rows (default 400000)
#   ROWSORT_BENCH_REPS     repetitions per cell, median kept (default 3)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_json="${2:-${repo_root}/BENCH_external.json}"
external="${build_dir}/bench/bench_external_sort"

if [[ ! -x "${external}" ]]; then
  echo "== ${external} not found; configuring and building =="
  cmake -B "${build_dir}" -S "${repo_root}" >/dev/null
  cmake --build "${build_dir}" -j --target bench_external_sort
fi

echo "== external sort: overlapped vs sync spill I/O (JSON -> ${out_json}) =="
ROWSORT_BENCH_JSON="${out_json}" "${external}"

echo
echo "== validating ${out_json} =="
python3 -m json.tool "${out_json}" >/dev/null
python3 - "${out_json}" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
records = data["overlap"]
by_cell = {(r["variant"], r["limit_bytes"]): r for r in records}
limits = sorted({r["limit_bytes"] for r in records if r["limit_bytes"] > 0},
                reverse=True)
assert ("in-memory", 0) in by_cell, "missing in-memory baseline"
assert len(limits) >= 2, f"expected >= 2 memory limits, got {limits}"
for r in records:
    assert r["rows"] > 0 and r["seconds"] > 0, r
assert by_cell[("in-memory", 0)]["runs_spilled"] == 0

sync_wait_total = overlap_wait_total = 0
for limit in limits:
    sync = by_cell[("sync-spill", limit)]
    over = by_cell[("overlapped-spill", limit)]
    for r in (sync, over):
        assert r["runs_spilled"] > 0, f"limit {limit}: no spill in {r}"
    assert sync["blocks_prefetched"] == 0 and sync["write_behind_stalls"] == 0
    # One extra pass: every spilled run feeds the final k-way merge directly
    # whenever the budget admits it (widest limit must be single-pass).
    if limit == limits[0]:
        assert over["merge_fan_in"] >= over["runs_spilled"], over
    assert sync["io_wait_us"] > 0, f"limit {limit}: sync counted no I/O wait"
    ratio = over["io_wait_us"] / sync["io_wait_us"]
    wall = over["seconds"] / sync["seconds"]
    print(f"limit {limit:>12}: io_wait {sync['io_wait_us']:>8} -> "
          f"{over['io_wait_us']:>8} us ({(1 - ratio) * 100:5.1f}% lower), "
          f"wall {wall:.2f}x, fan-in {over['merge_fan_in']}")
    assert ratio <= 0.7, f"limit {limit}: io_wait only {ratio:.2f}x of sync"
    assert wall <= 1.25, f"limit {limit}: wall regressed {wall:.2f}x"
    sync_wait_total += sync["io_wait_us"]
    overlap_wait_total += over["io_wait_us"]

agg = overlap_wait_total / sync_wait_total
assert agg <= 0.5, f"aggregate io_wait {agg:.2f}x of sync, need <= 0.5"
print(f"aggregate: io_wait {(1 - agg) * 100:.1f}% lower with overlap "
      f"({overlap_wait_total} vs {sync_wait_total} us)")

comp = data["compression"]
by_comp = {(r["workload"], r["compression"]): r for r in comp}
assert len(by_comp) == len(comp), "duplicate compression cells"
for workload in ("dup-heavy", "random"):
    for on in (False, True):
        assert (workload, on) in by_comp, f"missing compression cell {workload}/{on}"
for r in comp:
    assert r["rows"] > 0 and r["seconds"] > 0, r
    assert r["runs_spilled"] > 0, f"compression cell did not spill: {r}"
    if not r["compression"]:
        # Compression off is the v2 path: no codec runs, so no raw/compressed
        # byte accounting either.
        assert r["spill_bytes_raw"] == 0 and r["spill_bytes_compressed"] == 0, r
    else:
        assert r["spill_bytes_raw"] > 0, r
        assert 0 < r["spill_bytes_compressed"] <= r["spill_bytes_raw"], r

dup = by_comp[("dup-heavy", True)]
ratio = dup["spill_bytes_raw"] / dup["spill_bytes_compressed"]
sections = dup["sections_prefix"] + dup["sections_rle"] + dup["sections_lz"]
print(f"dup-heavy: spill {dup['spill_bytes_raw']} -> "
      f"{dup['spill_bytes_compressed']} bytes ({ratio:.2f}x), "
      f"{sections} compressed sections")
assert ratio >= 2.0, f"dup-heavy spill only shrank {ratio:.2f}x, need >= 2x"
assert sections > 0, "dup-heavy compressed no sections"

rnd_on = by_comp[("random", True)]
rnd_off = by_comp[("random", False)]
wall = rnd_on["seconds"] / rnd_off["seconds"]
print(f"random: wall {rnd_off['seconds']:.4f}s -> {rnd_on['seconds']:.4f}s "
      f"({wall:.2f}x with compression on), "
      f"{rnd_on['sections_raw']} sections stayed raw")
assert rnd_on["sections_raw"] > 0, "random workload should leave sections raw"
if wall > 1.05:
    print(f"warning: random wall {wall:.2f}x exceeds the 1.05x target "
          f"(bench noise headroom allows up to 1.15x)")
assert wall <= 1.15, f"random wall regressed {wall:.2f}x with compression on"
EOF
echo "== done: ${out_json} =="
