// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Collation support (§VI-A), statistics-driven prefix tuning (§VII), and
// RLE run statistics (§II).
#include <gtest/gtest.h>

#include "common/random.h"
#include "engine/analyze.h"
#include "engine/sort_engine.h"
#include "sortkey/key_encoder.h"
#include "workload/rle.h"
#include "workload/tables.h"

namespace rowsort {
namespace {

Table StringTable(std::vector<const char*> values) {
  Table table({TypeId::kVarchar});
  DataChunk chunk = table.NewChunk();
  uint64_t n = 0;
  for (const char* v : values) {
    if (v == nullptr) {
      chunk.SetValue(0, n, Value::Null(TypeId::kVarchar));
    } else {
      chunk.SetValue(0, n, Value::Varchar(v));
    }
    ++n;
  }
  chunk.SetSize(n);
  table.Append(std::move(chunk));
  return table;
}

TEST(CollationTest, CaseInsensitiveEncodingFoldsCase) {
  SortColumn nocase(0, TypeId::kVarchar);
  nocase.collation = Collation::kCaseInsensitive;
  std::vector<uint8_t> a(nocase.EncodedWidth()), b(nocase.EncodedWidth());
  NormalizedKeyEncoder::EncodeValue(Value::Varchar("ABC"), nocase, a.data());
  NormalizedKeyEncoder::EncodeValue(Value::Varchar("abc"), nocase, b.data());
  EXPECT_EQ(a, b);  // fold to the same key

  NormalizedKeyEncoder::EncodeValue(Value::Varchar("abd"), nocase, b.data());
  EXPECT_LT(std::memcmp(a.data(), b.data(), a.size()), 0);
}

TEST(CollationTest, EngineSortsCaseInsensitively) {
  Table input = StringTable({"banana", "Apple", "cherry", "APRICOT", "apple"});
  SortColumn col(0, TypeId::kVarchar);
  col.collation = Collation::kCaseInsensitive;
  Table sorted = RelationalSort::SortTable(input, SortSpec({col})).ValueOrDie();
  // Case-insensitive order: apple-group, APRICOT, banana, cherry.
  std::vector<std::string> got;
  for (uint64_t r = 0; r < sorted.chunk(0).size(); ++r) {
    got.push_back(sorted.chunk(0).GetValue(0, r).varchar_value());
  }
  // "Apple" and "apple" are collation-equal; both orders acceptable.
  EXPECT_TRUE((got[0] == "Apple" && got[1] == "apple") ||
              (got[0] == "apple" && got[1] == "Apple"));
  EXPECT_EQ(got[2], "APRICOT");
  EXPECT_EQ(got[3], "banana");
  EXPECT_EQ(got[4], "cherry");
}

TEST(CollationTest, TieResolutionBeyondPrefixIsCollationAware) {
  // Shared 12+ byte prefix differing only in case after the prefix.
  Table input = StringTable({"shared-prefix-xyzB", "SHARED-PREFIX-xyza"});
  SortColumn col(0, TypeId::kVarchar);
  col.collation = Collation::kCaseInsensitive;
  Table sorted = RelationalSort::SortTable(input, SortSpec({col})).ValueOrDie();
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 0),
            Value::Varchar("SHARED-PREFIX-xyza"));
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 1),
            Value::Varchar("shared-prefix-xyzB"));
}

TEST(BinaryCollationTest, CaseMatters) {
  Table input = StringTable({"b", "A", "a", "B"});
  Table sorted =
      RelationalSort::SortTable(input, SortSpec({SortColumn(0, TypeId::kVarchar)})).ValueOrDie();
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 0), Value::Varchar("A"));
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 1), Value::Varchar("B"));
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 2), Value::Varchar("a"));
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 3), Value::Varchar("b"));
}

TEST(PrefixStatsTest, MaxStringLength) {
  Table input = StringTable({"ab", "abcd", nullptr, "x"});
  EXPECT_EQ(MaxStringLength(input, 0), 4u);
}

TEST(PrefixStatsTest, TuneShrinksToObservedMax) {
  Table input = StringTable({"ab", "abcd", "x"});
  SortSpec spec({SortColumn(0, TypeId::kVarchar)});
  ASSERT_EQ(spec.columns()[0].string_prefix_length, 12u);
  TuneStringPrefixes(input, &spec);
  EXPECT_EQ(spec.columns()[0].string_prefix_length, 4u);
}

TEST(PrefixStatsTest, TuneNeverGrowsBeyondCap) {
  Table input = StringTable({"a string much longer than twelve bytes"});
  SortSpec spec({SortColumn(0, TypeId::kVarchar)});
  TuneStringPrefixes(input, &spec);
  EXPECT_EQ(spec.columns()[0].string_prefix_length, 12u);
}

TEST(PrefixStatsTest, AllNullOrEmptyFloorsAtOne) {
  Table input = StringTable({nullptr, "", nullptr});
  SortSpec spec({SortColumn(0, TypeId::kVarchar)});
  TuneStringPrefixes(input, &spec);
  EXPECT_EQ(spec.columns()[0].string_prefix_length, 1u);
}

TEST(PrefixStatsTest, TunedSortStillCorrect) {
  Table input = StringTable(
      {"pear", "fig", nullptr, "apple", "plum", "fig", "kiwi"});
  SortSpec spec({SortColumn(0, TypeId::kVarchar, OrderType::kAscending,
                            NullOrder::kNullsFirst)});
  TuneStringPrefixes(input, &spec);
  EXPECT_EQ(spec.columns()[0].string_prefix_length, 5u);
  Table sorted = RelationalSort::SortTable(input, spec).ValueOrDie();
  EXPECT_TRUE(sorted.chunk(0).GetValue(0, 0).is_null());
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 1), Value::Varchar("apple"));
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 6), Value::Varchar("plum"));
}

TEST(PrefixStatsTest, CoverageFlagSetWhenAllStringsFit) {
  Table input = StringTable({"short", "names", "only"});
  SortSpec spec({SortColumn(0, TypeId::kVarchar)});
  EXPECT_TRUE(spec.NeedsTieResolution());
  TuneStringPrefixes(input, &spec);
  EXPECT_TRUE(spec.columns()[0].prefix_covers_full_string);
  // Proven-covered prefixes make memcmp exact: radix becomes legal.
  EXPECT_FALSE(spec.NeedsTieResolution());
}

TEST(PrefixStatsTest, CoverageFlagClearedForLongStrings) {
  Table input = StringTable({"a string definitely longer than twelve"});
  SortSpec spec({SortColumn(0, TypeId::kVarchar)});
  TuneStringPrefixes(input, &spec);
  EXPECT_FALSE(spec.columns()[0].prefix_covers_full_string);
  EXPECT_TRUE(spec.NeedsTieResolution());
}

TEST(PrefixStatsTest, CoverageFlagClearedForEmbeddedNul) {
  // "ab\0" would collide with "ab" under zero padding: coverage unsafe.
  Table input({TypeId::kVarchar});
  DataChunk chunk = input.NewChunk();
  chunk.SetValue(0, 0, Value::Varchar(std::string("ab\0", 3)));
  chunk.SetValue(0, 1, Value::Varchar("ab"));
  chunk.SetSize(2);
  input.Append(std::move(chunk));
  SortSpec spec({SortColumn(0, TypeId::kVarchar)});
  TuneStringPrefixes(input, &spec);
  EXPECT_FALSE(spec.columns()[0].prefix_covers_full_string);
}

TEST(PrefixStatsTest, RadixPathOnCoveredStringsSortsCorrectly) {
  Table input = StringTable({"pear", "fig", "apple", "plum", "fig", "kiwi",
                             nullptr, "date"});
  SortSpec spec({SortColumn(0, TypeId::kVarchar, OrderType::kAscending,
                            NullOrder::kNullsLast)});
  TuneStringPrefixes(input, &spec);
  ASSERT_FALSE(spec.NeedsTieResolution());
  SortEngineConfig config;
  config.algorithm = RunSortAlgorithm::kRadix;  // legal thanks to the flag
  Table sorted = RelationalSort::SortTable(input, spec, config).ValueOrDie();
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 0), Value::Varchar("apple"));
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 1), Value::Varchar("date"));
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 2), Value::Varchar("fig"));
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 3), Value::Varchar("fig"));
  EXPECT_TRUE(sorted.chunk(0).GetValue(0, 7).is_null());
}

TEST(PrefixStatsTest, TunedAndUntunedAgreeOnCustomerNames) {
  // End-to-end: sorting with tuned (radix-eligible) spec must produce the
  // same key sequence as the untuned (pdqsort + tie resolution) spec.
  Table input = StringTable({"Smith", "Johnson", "Williams", "Smith",
                             "Brown", nullptr, "Jones", "Johnson", "Davis",
                             "Miller", "Wilson", "Moore", "Taylor"});
  SortSpec untuned({SortColumn(0, TypeId::kVarchar)});
  SortSpec tuned = untuned;
  TuneStringPrefixes(input, &tuned);
  ASSERT_TRUE(tuned.columns()[0].prefix_covers_full_string);

  Table a = RelationalSort::SortTable(input, untuned).ValueOrDie();
  Table b = RelationalSort::SortTable(input, tuned).ValueOrDie();
  ASSERT_EQ(a.row_count(), b.row_count());
  for (uint64_t r = 0; r < a.chunk(0).size(); ++r) {
    EXPECT_EQ(a.chunk(0).GetValue(0, r).ToString(),
              b.chunk(0).GetValue(0, r).ToString())
        << r;
  }
}

TEST(RleTest, CountRunsBasics) {
  Table t({TypeId::kInt32});
  DataChunk chunk = t.NewChunk();
  int32_t vals[] = {1, 1, 2, 2, 2, 1, 3, 3};
  for (uint64_t r = 0; r < 8; ++r) chunk.SetValue(0, r, Value::Int32(vals[r]));
  chunk.SetSize(8);
  t.Append(std::move(chunk));
  EXPECT_EQ(CountRuns(t, 0), 4u);
  EXPECT_EQ(RleBytes(t, 0), 4u * (4 + 4));
}

TEST(RleTest, NullsFormRuns) {
  Table t({TypeId::kInt32});
  DataChunk chunk = t.NewChunk();
  chunk.SetValue(0, 0, Value::Null(TypeId::kInt32));
  chunk.SetValue(0, 1, Value::Null(TypeId::kInt32));
  chunk.SetValue(0, 2, Value::Int32(1));
  chunk.SetSize(3);
  t.Append(std::move(chunk));
  EXPECT_EQ(CountRuns(t, 0), 2u);
}

TEST(RleTest, SortingReducesRuns) {
  // §II: sorting improves run-length encoding compression.
  rowsort::Random rng(5);
  Table t({TypeId::kInt32});
  DataChunk chunk = t.NewChunk();
  for (uint64_t r = 0; r < 2000; ++r) {
    chunk.SetValue(0, r, Value::Int32(static_cast<int32_t>(rng.Uniform(16))));
  }
  chunk.SetSize(2000);
  t.Append(std::move(chunk));

  uint64_t before = CountRuns(t, 0);
  Table sorted =
      RelationalSort::SortTable(t, SortSpec({SortColumn(0, TypeId::kInt32)})).ValueOrDie();
  uint64_t after = CountRuns(sorted, 0);
  EXPECT_EQ(after, 16u);          // one run per distinct value
  EXPECT_GT(before, 50 * after);  // dramatic compression win
}

}  // namespace
}  // namespace rowsort
