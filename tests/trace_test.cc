// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// The span tracer (common/trace.h): nesting depth, thread attribution,
// ring-buffer wraparound, the disabled path, and the Chrome trace-event
// JSON export the acceptance pipeline loads into Perfetto.
#include "common/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace rowsort {
namespace {

std::vector<TraceEvent> SpansOnly(const std::vector<TraceEvent>& events) {
  std::vector<TraceEvent> spans;
  for (const auto& e : events) {
    if (e.kind == TraceEvent::Kind::kSpan) spans.push_back(e);
  }
  return spans;
}

TEST(TraceTest, RecordsSpanWithDuration) {
  Tracer tracer;
  {
    TraceSpan span(&tracer, "outer", "test");
  }
  auto spans = SpansOnly(tracer.Snapshot());
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_STREQ(spans[0].category, "test");
  EXPECT_GE(spans[0].duration_ns, 0);
  EXPECT_EQ(spans[0].depth, 0u);
}

TEST(TraceTest, NestedSpansRecordDepth) {
  Tracer tracer;
  {
    TraceSpan outer(&tracer, "outer", "test");
    {
      TraceSpan middle(&tracer, "middle", "test");
      TraceSpan inner(&tracer, "inner", "test");
    }
  }
  // Spans are recorded at destruction, so innermost lands first.
  auto spans = SpansOnly(tracer.Snapshot());
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 2u);
  EXPECT_STREQ(spans[1].name, "middle");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_STREQ(spans[2].name, "outer");
  EXPECT_EQ(spans[2].depth, 0u);
  // Nesting is temporal containment: outer starts no later and ends no
  // earlier than inner.
  EXPECT_LE(spans[2].start_ns, spans[0].start_ns);
  EXPECT_GE(spans[2].start_ns + spans[2].duration_ns,
            spans[0].start_ns + spans[0].duration_ns);
}

TEST(TraceTest, NullTracerAndDisabledTracerRecordNothing) {
  {
    // Null tracer: the constructor must short-circuit (no crash, no-op).
    TraceSpan span(nullptr, "ghost", "test");
    EXPECT_EQ(span.ElapsedNanos(), 0);
  }

  Tracer tracer;
  tracer.set_enabled(false);
  {
    TraceSpan span(&tracer, "ghost", "test");
    tracer.RecordInstant("ghost-instant", "test");
    tracer.RecordCounter("ghost-counter", 7);
  }
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.thread_count(), 0u);
}

TEST(TraceTest, AttributesEventsToRecordingThreads) {
  Tracer tracer;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      TraceSpan span(&tracer, "worker", "test");
    });
  }
  for (auto& t : threads) t.join();
  {
    TraceSpan span(&tracer, "main", "test");
  }

  auto events = tracer.Snapshot();
  EXPECT_EQ(tracer.thread_count(), kThreads + 1u);
  ASSERT_EQ(events.size(), kThreads + 1u);
  // Every registered thread ordinal appears exactly once.
  std::vector<int> per_ordinal(kThreads + 1, 0);
  for (const auto& e : events) {
    ASSERT_LT(e.thread_ordinal, kThreads + 1u);
    ++per_ordinal[e.thread_ordinal];
  }
  for (int count : per_ordinal) EXPECT_EQ(count, 1);
}

TEST(TraceTest, RingWraparoundKeepsNewestAndCountsDropped) {
  // Capacity rounds up to a power of two: ask for 8.
  Tracer tracer(8);
  for (int i = 0; i < 100; ++i) {
    TraceSpan span(&tracer, "spin", "test");
  }
  auto events = tracer.Snapshot();
  EXPECT_EQ(events.size(), 8u);
  EXPECT_EQ(tracer.dropped_events(), 92u);
  // Retained events are the newest, oldest-first.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_ns, events[i - 1].start_ns);
  }
}

TEST(TraceTest, InstantAndCounterEvents) {
  Tracer tracer;
  tracer.RecordInstant("marker", "test");
  tracer.RecordCounter("depth", 42);
  auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceEvent::Kind::kInstant);
  EXPECT_EQ(events[1].kind, TraceEvent::Kind::kCounter);
  EXPECT_EQ(events[1].value, 42);
}

TEST(TraceTest, ChromeTraceJsonShape) {
  Tracer tracer;
  {
    TraceSpan span(&tracer, "sink.chunk", "sink");
  }
  tracer.RecordInstant("cancelled", "sort");
  tracer.RecordCounter("pool.queue_depth", 3);

  std::string json = tracer.ToChromeTraceJson();
  // Chrome trace-event envelope and the three event phases.
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // counter
  EXPECT_NE(json.find("\"name\":\"sink.chunk\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"sink\""), std::string::npos);
  // Thread-name metadata so Perfetto labels the tracks.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(TraceTest, WriteChromeTraceRoundTrip) {
  Tracer tracer;
  {
    TraceSpan span(&tracer, "merge.slice", "merge");
  }
  std::string path =
      (std::string(::testing::TempDir()) + "/rowsort_trace_test.json");
  ASSERT_TRUE(tracer.WriteChromeTrace(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents(1 << 16, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(contents, tracer.ToChromeTraceJson());
}

TEST(TraceTest, ManyThreadsRecordConcurrently) {
  // Lock-free recording under contention; run under TSan in CI.
  Tracer tracer(1 << 10);
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span(&tracer, "concurrent", "test");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.thread_count(), kThreads);
  EXPECT_EQ(tracer.Snapshot().size() + tracer.dropped_events(),
            uint64_t{kThreads} * kSpansPerThread);
}

}  // namespace
}  // namespace rowsort
