// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Unit tests for the spill-block codecs behind external-run format v3
// (common/compress.h): varint framing, shared-prefix delta, row RLE, and the
// byte-oriented LZ fallback. Every decompressor must fill exactly the
// declared output while consuming exactly the declared input, so the tests
// exercise both clean round-trips and malformed streams.

#include "common/compress.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <string>
#include <vector>

namespace rowsort {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

// ---------------------------------------------------------------------------
// Varint
// ---------------------------------------------------------------------------

TEST(VarintTest, RoundTripBoundaryValues) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (1ull << 32) - 1,
                             1ull << 32,
                             UINT64_MAX - 1,
                             UINT64_MAX};
  for (uint64_t v : values) {
    std::vector<uint8_t> buf;
    EncodeVarint(v, &buf);
    size_t pos = 0;
    uint64_t decoded = 0;
    ASSERT_TRUE(DecodeVarint(buf.data(), buf.size(), &pos, &decoded)) << v;
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(pos, buf.size()) << "varint must consume exactly its bytes";
  }
}

TEST(VarintTest, SmallValuesAreOneByte) {
  std::vector<uint8_t> buf;
  EncodeVarint(127, &buf);
  EXPECT_EQ(buf.size(), 1u);
  EncodeVarint(128, &buf);
  EXPECT_EQ(buf.size(), 3u);  // 127 took one byte, 128 takes two.
}

TEST(VarintTest, RejectsTruncation) {
  std::vector<uint8_t> buf;
  EncodeVarint(UINT64_MAX, &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    size_t pos = 0;
    uint64_t decoded = 0;
    EXPECT_FALSE(DecodeVarint(buf.data(), cut, &pos, &decoded)) << cut;
  }
}

TEST(VarintTest, RejectsOverlongEncoding) {
  // Eleven continuation bytes: longer than any valid uint64 encoding.
  std::vector<uint8_t> buf(11, 0x80);
  size_t pos = 0;
  uint64_t decoded = 0;
  EXPECT_FALSE(DecodeVarint(buf.data(), buf.size(), &pos, &decoded));
}

// ---------------------------------------------------------------------------
// Prefix (shared-prefix delta over sorted rows)
// ---------------------------------------------------------------------------

std::vector<uint8_t> MakeSortedRows(uint64_t rows, uint64_t width,
                                    uint32_t seed) {
  // Rows that share long prefixes: a big-endian counter padded with a
  // constant, the exact shape of normalized sort keys in a sorted block.
  std::vector<uint8_t> data(rows * width, 0xAB);
  std::mt19937 rng(seed);
  uint64_t counter = rng();
  for (uint64_t r = 0; r < rows; ++r) {
    counter += 1 + (rng() % 3);
    for (uint64_t b = 0; b < 8 && b < width; ++b) {
      data[r * width + b] =
          static_cast<uint8_t>(counter >> (8 * (7 - b)));
    }
  }
  return data;
}

TEST(PrefixCodecTest, RoundTripSortedRows) {
  for (uint64_t width : {1u, 8u, 16u, 40u}) {
    const uint64_t rows = 257;
    std::vector<uint8_t> data = MakeSortedRows(rows, width, 7);
    std::vector<uint8_t> enc;
    PrefixCompress(data.data(), rows, width, &enc);
    // Width-1 rows have no prefix to share beyond the whole byte, so only
    // require shrinkage where a multi-byte prefix exists.
    if (width > 1) {
      EXPECT_LT(enc.size(), data.size()) << "width " << width;
    }
    std::vector<uint8_t> dec(data.size(), 0);
    ASSERT_TRUE(
        PrefixDecompress(enc.data(), enc.size(), rows, width, dec.data()));
    EXPECT_EQ(dec, data) << "width " << width;
  }
}

TEST(PrefixCodecTest, RoundTripSingleRowAndIdenticalRows) {
  const uint64_t width = 12;
  std::vector<uint8_t> one(width, 0x5C);
  std::vector<uint8_t> enc;
  PrefixCompress(one.data(), 1, width, &enc);
  std::vector<uint8_t> dec(width, 0);
  ASSERT_TRUE(PrefixDecompress(enc.data(), enc.size(), 1, width, dec.data()));
  EXPECT_EQ(dec, one);

  // 100 identical rows: each delta row is a one-byte varint (prefix = width).
  std::vector<uint8_t> dup;
  for (int i = 0; i < 100; ++i) dup.insert(dup.end(), one.begin(), one.end());
  enc.clear();
  PrefixCompress(dup.data(), 100, width, &enc);
  EXPECT_EQ(enc.size(), width + 99u);
  dec.assign(dup.size(), 0);
  ASSERT_TRUE(PrefixDecompress(enc.data(), enc.size(), 100, width, dec.data()));
  EXPECT_EQ(dec, dup);
}

TEST(PrefixCodecTest, RejectsMalformedStreams) {
  const uint64_t rows = 16, width = 8;
  std::vector<uint8_t> data = MakeSortedRows(rows, width, 11);
  std::vector<uint8_t> enc;
  PrefixCompress(data.data(), rows, width, &enc);
  std::vector<uint8_t> dec(data.size());

  // Truncation at every point must fail (never a short success).
  for (size_t cut = 0; cut < enc.size(); ++cut) {
    EXPECT_FALSE(
        PrefixDecompress(enc.data(), cut, rows, width, dec.data()))
        << cut;
  }
  // Trailing garbage: input not fully consumed.
  std::vector<uint8_t> padded = enc;
  padded.push_back(0x00);
  EXPECT_FALSE(
      PrefixDecompress(padded.data(), padded.size(), rows, width, dec.data()));
  // A prefix length larger than the row width.
  std::vector<uint8_t> bad(width, 0x22);
  EncodeVarint(width + 1, &bad);  // second row claims prefix > width
  EXPECT_FALSE(PrefixDecompress(bad.data(), bad.size(), 2, width, dec.data()));
}

// ---------------------------------------------------------------------------
// RLE
// ---------------------------------------------------------------------------

TEST(RleCodecTest, RoundTripDuplicateHeavyRows) {
  const uint64_t width = 10;
  std::vector<uint8_t> data;
  std::mt19937 rng(23);
  uint64_t rows = 0;
  for (int run = 0; run < 20; ++run) {
    std::vector<uint8_t> row(width);
    for (auto& b : row) b = static_cast<uint8_t>(rng());
    uint64_t len = 1 + rng() % 300;
    for (uint64_t i = 0; i < len; ++i)
      data.insert(data.end(), row.begin(), row.end());
    rows += len;
  }
  std::vector<uint8_t> enc;
  RleCompress(data.data(), rows, width, &enc);
  EXPECT_LT(enc.size(), data.size() / 10);
  std::vector<uint8_t> dec(data.size(), 0);
  ASSERT_TRUE(RleDecompress(enc.data(), enc.size(), rows, width, dec.data()));
  EXPECT_EQ(dec, data);
}

TEST(RleCodecTest, RoundTripAllDistinctRows) {
  // Worst case: every row its own run — still must round-trip.
  const uint64_t rows = 64, width = 4;
  std::vector<uint8_t> data(rows * width);
  for (size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<uint8_t>(i * 37);
  std::vector<uint8_t> enc;
  RleCompress(data.data(), rows, width, &enc);
  std::vector<uint8_t> dec(data.size(), 0);
  ASSERT_TRUE(RleDecompress(enc.data(), enc.size(), rows, width, dec.data()));
  EXPECT_EQ(dec, data);
}

TEST(RleCodecTest, RejectsMalformedStreams) {
  const uint64_t rows = 50, width = 6;
  std::vector<uint8_t> data(rows * width, 0x3D);
  std::vector<uint8_t> enc;
  RleCompress(data.data(), rows, width, &enc);
  std::vector<uint8_t> dec(data.size());

  for (size_t cut = 0; cut < enc.size(); ++cut) {
    EXPECT_FALSE(RleDecompress(enc.data(), cut, rows, width, dec.data()))
        << cut;
  }
  // A zero-length run can never be valid.
  std::vector<uint8_t> zero;
  EncodeVarint(0, &zero);
  zero.insert(zero.end(), width, 0x11);
  EXPECT_FALSE(RleDecompress(zero.data(), zero.size(), rows, width, dec.data()));
  // A run longer than the remaining rows must be rejected, not clamped.
  std::vector<uint8_t> over;
  EncodeVarint(rows + 1, &over);
  over.insert(over.end(), width, 0x11);
  EXPECT_FALSE(RleDecompress(over.data(), over.size(), rows, width, dec.data()));
  // Trailing bytes after all rows are produced.
  std::vector<uint8_t> padded = enc;
  padded.push_back(0x7F);
  EXPECT_FALSE(
      RleDecompress(padded.data(), padded.size(), rows, width, dec.data()));
}

// ---------------------------------------------------------------------------
// LZ
// ---------------------------------------------------------------------------

void ExpectLzRoundTrip(const std::vector<uint8_t>& data) {
  std::vector<uint8_t> enc;
  LzCompress(data.data(), data.size(), &enc);
  // One spare byte keeps dec.data() non-null for empty inputs.
  std::vector<uint8_t> dec(data.size() + 1, 0xEE);
  ASSERT_TRUE(LzDecompress(enc.data(), enc.size(), dec.data(), data.size()));
  dec.pop_back();
  EXPECT_EQ(dec, data);
}

TEST(LzCodecTest, RoundTripEmptyAndTinyInputs) {
  ExpectLzRoundTrip({});
  ExpectLzRoundTrip(Bytes("a"));
  ExpectLzRoundTrip(Bytes("abcd"));
  ExpectLzRoundTrip(Bytes("aaaaa"));  // shortest possible match territory
}

TEST(LzCodecTest, CompressesRepetitiveInput) {
  std::string s;
  for (int i = 0; i < 500; ++i) s += "the quick brown fox|";
  std::vector<uint8_t> data = Bytes(s);
  std::vector<uint8_t> enc;
  LzCompress(data.data(), data.size(), &enc);
  EXPECT_LT(enc.size(), data.size() / 4);
  std::vector<uint8_t> dec(data.size(), 0);
  ASSERT_TRUE(LzDecompress(enc.data(), enc.size(), dec.data(), dec.size()));
  EXPECT_EQ(dec, data);
}

TEST(LzCodecTest, RoundTripOverlappingMatches) {
  // Runs of a single byte force matches whose source overlaps the output
  // cursor (offset 1) — the classic LZ copy-forward case.
  std::vector<uint8_t> data(10000, 'x');
  ExpectLzRoundTrip(data);
  // And an offset-3 repeat.
  std::vector<uint8_t> tri;
  for (int i = 0; i < 5000; ++i) tri.push_back(static_cast<uint8_t>(i % 3));
  ExpectLzRoundTrip(tri);
}

TEST(LzCodecTest, RoundTripRandomIncompressibleInput) {
  std::mt19937 rng(99);
  std::vector<uint8_t> data(1 << 16);
  for (auto& b : data) b = static_cast<uint8_t>(rng());
  ExpectLzRoundTrip(data);
}

TEST(LzCodecTest, RoundTripLongRangeMatches) {
  // Repeats separated by more than the 64 KiB window compress poorly but
  // must still round-trip; repeats inside the window must match.
  std::mt19937 rng(5);
  std::vector<uint8_t> block(50000);
  for (auto& b : block) b = static_cast<uint8_t>(rng());
  std::vector<uint8_t> data;
  for (int i = 0; i < 4; ++i)
    data.insert(data.end(), block.begin(), block.end());
  std::vector<uint8_t> enc;
  LzCompress(data.data(), data.size(), &enc);
  EXPECT_LT(enc.size(), data.size());
  std::vector<uint8_t> dec(data.size(), 0);
  ASSERT_TRUE(LzDecompress(enc.data(), enc.size(), dec.data(), dec.size()));
  EXPECT_EQ(dec, data);
}

TEST(LzCodecTest, RejectsMalformedStreams) {
  std::string s;
  for (int i = 0; i < 100; ++i) s += "rowsort rowsort ";
  std::vector<uint8_t> data = Bytes(s);
  std::vector<uint8_t> enc;
  LzCompress(data.data(), data.size(), &enc);
  std::vector<uint8_t> dec(data.size());

  // Truncation: a cut stream must either be rejected or (when the cut drops
  // only the redundant final zero-literal token) still decode to exactly the
  // original bytes. A short or garbled success is never acceptable.
  for (size_t cut = 0; cut < enc.size(); ++cut) {
    std::fill(dec.begin(), dec.end(), 0);
    if (LzDecompress(enc.data(), cut, dec.data(), dec.size())) {
      EXPECT_EQ(dec, data) << cut;
    }
  }
  // Wrong declared output sizes.
  EXPECT_FALSE(LzDecompress(enc.data(), enc.size(), dec.data(), dec.size() - 1));
  std::vector<uint8_t> big(data.size() + 1);
  EXPECT_FALSE(LzDecompress(enc.data(), enc.size(), big.data(), big.size()));
  // A match with offset zero (self-referential before any output). Token
  // 0x40 = four literals then a minimum-length match.
  const uint8_t zero_offset[] = {0x40, 'a', 'b', 'c', 'd', 0x00, 0x00};
  std::vector<uint8_t> out(8);
  EXPECT_FALSE(LzDecompress(zero_offset, sizeof(zero_offset), out.data(), 8));
  // A match whose offset reaches before the start of the output.
  const uint8_t far_offset[] = {0x40, 'a', 'b', 'c', 'd', 0xFF, 0x00};
  EXPECT_FALSE(LzDecompress(far_offset, sizeof(far_offset), out.data(), 8));
  // A final sequence that claims a match but provides no offset bytes.
  const uint8_t dangling_match[] = {0x41, 'a', 'b', 'c', 'd'};
  EXPECT_FALSE(LzDecompress(dangling_match, sizeof(dangling_match), out.data(), 4));
}

TEST(LzCodecTest, BitFlipSweepNeverOverreads) {
  // Flipping any single bit must either fail cleanly or produce different
  // bytes of the right size — never crash or hang (ASan/UBSan guard this).
  std::string s;
  for (int i = 0; i < 64; ++i) s += "abcabcabd";
  std::vector<uint8_t> data = Bytes(s);
  std::vector<uint8_t> enc;
  LzCompress(data.data(), data.size(), &enc);
  std::vector<uint8_t> dec(data.size());
  for (size_t byte = 0; byte < enc.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> mut = enc;
      mut[byte] ^= static_cast<uint8_t>(1 << bit);
      LzDecompress(mut.data(), mut.size(), dec.data(), dec.size());
    }
  }
}

TEST(SpillCodecTest, NamesAreStable) {
  EXPECT_STREQ(SpillCodecName(SpillCodec::kRaw), "raw");
  EXPECT_STREQ(SpillCodecName(SpillCodec::kPrefix), "prefix");
  EXPECT_STREQ(SpillCodecName(SpillCodec::kRle), "rle");
  EXPECT_STREQ(SpillCodecName(SpillCodec::kLz), "lz");
}

}  // namespace
}  // namespace rowsort
