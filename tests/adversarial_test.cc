// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Adversarial and randomized stress tests for the sorting algorithms:
// quicksort-killer inputs (pdqsort's raison d'être), randomized radix
// configurations, and Top-N vs full-sort fuzzing.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "common/timer.h"
#include "engine/sort_engine.h"
#include "engine/top_n.h"
#include "sortalgo/intro_sort.h"
#include "sortalgo/merge_sort.h"
#include "sortalgo/pdq_sort.h"
#include "sortalgo/radix_sort.h"
#include "sortalgo/row_ops.h"
#include "workload/tables.h"

namespace rowsort {
namespace {

/// McIlroy's anti-quicksort: builds, online, a worst-case input for any
/// median-of-few quicksort by answering comparisons adversarially.
/// pdqsort must defeat it (heapsort fallback keeps it O(n log n)).
class AntiQuicksort {
 public:
  explicit AntiQuicksort(uint64_t n)
      : values_(n, kGas), order_(n), n_solid_(0), candidate_(0) {
    for (uint64_t i = 0; i < n; ++i) order_[i] = i;
  }

  /// Comparator handed to the sort; freezes values lazily.
  bool Less(uint64_t a, uint64_t b) {
    if (values_[a] == kGas && values_[b] == kGas) {
      if (a == candidate_) {
        Freeze(a);
      } else {
        Freeze(b);
      }
    }
    if (values_[a] == kGas) {
      candidate_ = a;
    } else if (values_[b] == kGas) {
      candidate_ = b;
    }
    return Value(a) < Value(b);
  }

  uint64_t Value(uint64_t i) const {
    return values_[i] == kGas ? n_solid_ + values_.size() : values_[i];
  }

 private:
  static constexpr uint64_t kGas = ~uint64_t(0);
  void Freeze(uint64_t i) { values_[i] = n_solid_++; }

  std::vector<uint64_t> values_;
  std::vector<uint64_t> order_;
  uint64_t n_solid_;
  uint64_t candidate_;
};

TEST(AdversarialTest, PdqSortDefeatsAntiQuicksort) {
  const uint64_t n = 1 << 15;
  // Phase 1: let the adversary construct its killer ordering.
  AntiQuicksort adversary(n);
  std::vector<uint64_t> indices(n);
  for (uint64_t i = 0; i < n; ++i) indices[i] = i;
  PdqSort(indices.begin(), indices.end(), [&](uint64_t a, uint64_t b) {
    return adversary.Less(a, b);
  });
  // The adversary's frozen values must now be fully sorted.
  for (uint64_t i = 1; i < n; ++i) {
    ASSERT_LE(adversary.Value(indices[i - 1]), adversary.Value(indices[i]));
  }

  // Phase 2: replay the frozen values as a plain array; pdqsort must sort
  // it in time comparable to a random input (not quadratic).
  std::vector<uint64_t> killer(n);
  for (uint64_t i = 0; i < n; ++i) killer[i] = adversary.Value(i);
  std::vector<uint64_t> random_input = killer;
  Random rng(17);
  rng.Shuffle(random_input.data(), n);

  Timer t1;
  PdqSortBranchless(killer.begin(), killer.end(),
                    [](uint64_t a, uint64_t b) { return a < b; });
  double killer_time = t1.ElapsedSeconds();
  Timer t2;
  PdqSortBranchless(random_input.begin(), random_input.end(),
                    [](uint64_t a, uint64_t b) { return a < b; });
  double random_time = t2.ElapsedSeconds();

  EXPECT_TRUE(std::is_sorted(killer.begin(), killer.end()));
  // A quadratic blowup would be ~1000x; allow generous scheduling noise.
  EXPECT_LT(killer_time, 30 * random_time + 0.01);
}

TEST(AdversarialTest, IntroSortSurvivesOrganPipeAndManyDuplicates) {
  for (uint64_t n : {1u << 12, 1u << 16}) {
    std::vector<uint32_t> organ(n);
    for (uint64_t i = 0; i < n; ++i) {
      organ[i] = static_cast<uint32_t>(i < n / 2 ? i : n - i);
    }
    IntroSort(organ.begin(), organ.end());
    EXPECT_TRUE(std::is_sorted(organ.begin(), organ.end()));

    std::vector<uint32_t> dups(n, 3);
    for (uint64_t i = 0; i < n; i += 7) dups[i] = 5;
    IntroSort(dups.begin(), dups.end());
    EXPECT_TRUE(std::is_sorted(dups.begin(), dups.end()));
  }
}

TEST(AdversarialTest, RadixFuzzRandomConfigs) {
  Random rng(23);
  for (int trial = 0; trial < 60; ++trial) {
    RadixSortConfig config;
    config.key_width = 1 + rng.Uniform(24);
    config.key_offset = rng.Uniform(8);
    config.row_width =
        ((config.key_offset + config.key_width + 7) / 8) * 8 +
        8 * rng.Uniform(3);
    config.insertion_threshold = 1 + rng.Uniform(64);
    config.lsd_key_width_bound = rng.Uniform(10);
    uint64_t count = rng.Uniform(5000);
    uint64_t value_range = 1 + rng.Uniform(255);

    std::vector<uint8_t> rows(count * config.row_width);
    for (auto& b : rows) b = static_cast<uint8_t>(rng.Uniform(value_range));
    std::vector<uint8_t> aux(rows.size());
    RadixSort(rows.data(), aux.data(), count, config);
    ASSERT_TRUE(RowsAreSorted(rows.data(), count, config.row_width,
                              config.key_offset, config.key_width))
        << "trial " << trial << " count " << count << " rw "
        << config.row_width << " kw " << config.key_width;
  }
}

TEST(AdversarialTest, TopNFuzzAgainstFullSort) {
  Random rng(29);
  for (int trial = 0; trial < 25; ++trial) {
    uint64_t rows = rng.Uniform(4000);
    uint64_t limit = 1 + rng.Uniform(rows + 10);
    double null_prob = rng.NextDouble() * 0.3;

    Table input({TypeId::kInt32, TypeId::kInt32});
    uint64_t produced = 0;
    while (produced < rows) {
      uint64_t n = std::min(kVectorSize, rows - produced);
      DataChunk chunk = input.NewChunk();
      for (uint64_t r = 0; r < n; ++r) {
        chunk.SetValue(0, r,
                       rng.Bernoulli(null_prob)
                           ? Value::Null(TypeId::kInt32)
                           : Value::Int32(static_cast<int32_t>(
                                 rng.Uniform(50))));
        chunk.SetValue(1, r, Value::Int32(static_cast<int32_t>(r)));
      }
      chunk.SetSize(n);
      input.Append(std::move(chunk));
      produced += n;
    }

    SortColumn sc(0, TypeId::kInt32,
                  rng.Bernoulli(0.5) ? OrderType::kAscending
                                     : OrderType::kDescending,
                  rng.Bernoulli(0.5) ? NullOrder::kNullsFirst
                                     : NullOrder::kNullsLast);
    SortSpec spec({sc});

    TopN top_n(spec, input.types(), limit);
    for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
      ASSERT_TRUE(top_n.Sink(input.chunk(c)).ok());
    }
    Table result = top_n.Finalize().ValueOrDie();
    Table full = RelationalSort::SortTable(input, spec).ValueOrDie();

    uint64_t expect = std::min(limit, rows);
    ASSERT_EQ(result.row_count(), expect) << "trial " << trial;
    // Key sequences must match the full sort's prefix.
    uint64_t checked = 0;
    for (uint64_t ci = 0; ci < result.ChunkCount(); ++ci) {
      for (uint64_t r = 0; r < result.chunk(ci).size(); ++r, ++checked) {
        Value got = result.chunk(ci).GetValue(0, r);
        Value want = full.chunk(checked / kVectorSize)
                         .GetValue(0, checked % kVectorSize);
        ASSERT_EQ(got.ToString(), want.ToString())
            << "trial " << trial << " row " << checked;
      }
    }
  }
}

TEST(AdversarialTest, MergeSortStableUnderAllEqualKeys) {
  struct Item {
    uint32_t key;
    uint32_t seq;
  };
  std::vector<Item> data(5000);
  for (uint32_t i = 0; i < data.size(); ++i) data[i] = {1, i};
  StableMergeSort(data.begin(), data.end(),
                  [](const Item& a, const Item& b) { return a.key < b.key; });
  for (uint32_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(data[i].seq, i);
  }
}

}  // namespace
}  // namespace rowsort
