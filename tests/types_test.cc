// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "types/logical_type.h"
#include "types/string_t.h"
#include "types/value.h"

namespace rowsort {
namespace {

TEST(LogicalTypeTest, FixedSizes) {
  EXPECT_EQ(LogicalType(TypeId::kInt8).FixedSize(), 1);
  EXPECT_EQ(LogicalType(TypeId::kInt16).FixedSize(), 2);
  EXPECT_EQ(LogicalType(TypeId::kInt32).FixedSize(), 4);
  EXPECT_EQ(LogicalType(TypeId::kUint32).FixedSize(), 4);
  EXPECT_EQ(LogicalType(TypeId::kInt64).FixedSize(), 8);
  EXPECT_EQ(LogicalType(TypeId::kFloat).FixedSize(), 4);
  EXPECT_EQ(LogicalType(TypeId::kDouble).FixedSize(), 8);
  EXPECT_EQ(LogicalType(TypeId::kDate).FixedSize(), 4);
  EXPECT_EQ(LogicalType(TypeId::kVarchar).FixedSize(), 16);
}

TEST(LogicalTypeTest, Names) {
  EXPECT_EQ(LogicalType(TypeId::kInt32).ToString(), "int32");
  EXPECT_EQ(LogicalType(TypeId::kVarchar).ToString(), "varchar");
}

TEST(LogicalTypeTest, VariableSize) {
  EXPECT_TRUE(LogicalType(TypeId::kVarchar).IsVariableSize());
  EXPECT_FALSE(LogicalType(TypeId::kInt32).IsVariableSize());
}

TEST(StringTTest, InlineShortStrings) {
  string_t s("hello", 5);
  EXPECT_TRUE(s.IsInlined());
  EXPECT_EQ(s.ToString(), "hello");
  EXPECT_EQ(s.size(), 5u);
}

TEST(StringTTest, TwelveByteBoundary) {
  string_t at_limit("abcdefghijkl", 12);
  EXPECT_TRUE(at_limit.IsInlined());
  EXPECT_EQ(at_limit.ToString(), "abcdefghijkl");

  const char* backing = "abcdefghijklm";
  string_t over_limit(backing, 13);
  EXPECT_FALSE(over_limit.IsInlined());
  EXPECT_EQ(over_limit.ToString(), "abcdefghijklm");
  EXPECT_EQ(over_limit.data(), backing);  // points at external storage
}

TEST(StringTTest, EmptyString) {
  string_t empty;
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.IsInlined());
  EXPECT_EQ(empty.ToString(), "");
}

TEST(StringTTest, CompareMatchesLexicographic) {
  EXPECT_LT(string_t("abc").Compare(string_t("abd")), 0);
  EXPECT_GT(string_t("b").Compare(string_t("a")), 0);
  EXPECT_EQ(string_t("same").Compare(string_t("same")), 0);
  // Shorter string with equal prefix sorts first.
  EXPECT_LT(string_t("ab").Compare(string_t("abc")), 0);
  // Comparison crosses the inline boundary correctly.
  const char* long_str = "abcdefghijklmnop";
  EXPECT_LT(string_t("abcdefghijkl").Compare(string_t(long_str, 16)), 0);
}

TEST(ValueTest, NullHandling) {
  Value null_val = Value::Null(TypeId::kInt32);
  EXPECT_TRUE(null_val.is_null());
  Value v = Value::Int32(5);
  EXPECT_FALSE(v.is_null());
  // NULL compares greater than any non-NULL (engine-internal convention).
  EXPECT_GT(null_val.Compare(v), 0);
  EXPECT_LT(v.Compare(null_val), 0);
  EXPECT_EQ(null_val.Compare(Value::Null(TypeId::kInt32)), 0);
}

TEST(ValueTest, IntegerComparison) {
  EXPECT_LT(Value::Int32(-5).Compare(Value::Int32(3)), 0);
  EXPECT_EQ(Value::Int32(7).Compare(Value::Int32(7)), 0);
  EXPECT_GT(Value::Int64(100).Compare(Value::Int64(-100)), 0);
  EXPECT_LT(Value::Uint32(1).Compare(Value::Uint32(0xFFFFFFFFu)), 0);
}

TEST(ValueTest, FloatTotalOrderWithNaN) {
  float nan = std::numeric_limits<float>::quiet_NaN();
  float inf = std::numeric_limits<float>::infinity();
  EXPECT_GT(Value::Float(nan).Compare(Value::Float(inf)), 0);
  EXPECT_EQ(Value::Float(nan).Compare(Value::Float(nan)), 0);
  EXPECT_LT(Value::Float(-inf).Compare(Value::Float(0.0f)), 0);
}

TEST(ValueTest, VarcharComparison) {
  EXPECT_LT(Value::Varchar("GERMANY").Compare(Value::Varchar("NETHERLANDS")),
            0);
  EXPECT_EQ(Value::Varchar("x").Compare(Value::Varchar("x")), 0);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int32(-42).ToString(), "-42");
  EXPECT_EQ(Value::Null(TypeId::kInt32).ToString(), "NULL");
  EXPECT_EQ(Value::Varchar("abc").ToString(), "abc");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
}

TEST(ValueTest, EqualityRequiresSameTypeAndNullness) {
  EXPECT_FALSE(Value::Int32(1) == Value::Int64(1));
  EXPECT_FALSE(Value::Int32(1) == Value::Null(TypeId::kInt32));
  EXPECT_TRUE(Value::Null(TypeId::kInt32) == Value::Null(TypeId::kInt32));
  EXPECT_TRUE(Value::Int32(9) == Value::Int32(9));
}

}  // namespace
}  // namespace rowsort
