// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "sortalgo/radix_sort.h"
#include "sortalgo/row_ops.h"

namespace rowsort {
namespace {

struct RadixCase {
  uint64_t count;
  uint64_t row_width;
  uint64_t key_width;
  uint64_t key_offset;
  uint64_t value_range;  // bytes drawn from [0, value_range)
};

std::vector<uint8_t> MakeRows(const RadixCase& c, uint64_t seed) {
  Random rng(seed);
  std::vector<uint8_t> rows(c.count * c.row_width);
  for (auto& b : rows) b = static_cast<uint8_t>(rng.Uniform(c.value_range));
  return rows;
}

// Oracle: stable sort of row strings by the key byte range.
std::vector<std::string> OracleSort(const std::vector<uint8_t>& rows,
                                    const RadixCase& c) {
  std::vector<std::string> copy(c.count);
  for (uint64_t i = 0; i < c.count; ++i) {
    copy[i].assign(
        reinterpret_cast<const char*>(rows.data() + i * c.row_width),
        c.row_width);
  }
  std::stable_sort(copy.begin(), copy.end(),
                   [&](const std::string& a, const std::string& b) {
                     return std::memcmp(a.data() + c.key_offset,
                                        b.data() + c.key_offset,
                                        c.key_width) < 0;
                   });
  return copy;
}

void ExpectKeysMatch(const std::vector<uint8_t>& rows,
                     const std::vector<std::string>& oracle,
                     const RadixCase& c) {
  for (uint64_t i = 0; i < c.count; ++i) {
    ASSERT_EQ(std::memcmp(rows.data() + i * c.row_width + c.key_offset,
                          oracle[i].data() + c.key_offset, c.key_width),
              0)
        << "row " << i;
  }
}

void ExpectMultisetPreserved(const std::vector<uint8_t>& rows,
                             const std::vector<std::string>& oracle,
                             const RadixCase& c) {
  std::vector<std::string> got(c.count);
  for (uint64_t i = 0; i < c.count; ++i) {
    got[i].assign(
        reinterpret_cast<const char*>(rows.data() + i * c.row_width),
        c.row_width);
  }
  auto sorted_got = got;
  auto sorted_oracle = oracle;
  std::sort(sorted_got.begin(), sorted_got.end());
  std::sort(sorted_oracle.begin(), sorted_oracle.end());
  EXPECT_EQ(sorted_got, sorted_oracle);
}

class RadixSortTest : public ::testing::TestWithParam<RadixCase> {};

TEST_P(RadixSortTest, LsdMatchesOracle) {
  const RadixCase& c = GetParam();
  auto rows = MakeRows(c, 101);
  auto oracle = OracleSort(rows, c);
  std::vector<uint8_t> aux(rows.size());
  RadixSortConfig config{c.row_width, c.key_offset, c.key_width};
  RadixSortLsd(rows.data(), aux.data(), c.count, config);
  ExpectKeysMatch(rows, oracle, c);
  ExpectMultisetPreserved(rows, oracle, c);
}

TEST_P(RadixSortTest, MsdMatchesOracle) {
  const RadixCase& c = GetParam();
  auto rows = MakeRows(c, 102);
  auto oracle = OracleSort(rows, c);
  std::vector<uint8_t> aux(rows.size());
  RadixSortConfig config{c.row_width, c.key_offset, c.key_width};
  RadixSortMsd(rows.data(), aux.data(), c.count, config);
  ExpectKeysMatch(rows, oracle, c);
  ExpectMultisetPreserved(rows, oracle, c);
}

TEST_P(RadixSortTest, MsdWithPdqMatchesOracle) {
  const RadixCase& c = GetParam();
  auto rows = MakeRows(c, 103);
  auto oracle = OracleSort(rows, c);
  std::vector<uint8_t> aux(rows.size());
  RadixSortConfig config{c.row_width, c.key_offset, c.key_width};
  RadixSortMsdWithPdq(rows.data(), aux.data(), c.count, config);
  ExpectKeysMatch(rows, oracle, c);
  ExpectMultisetPreserved(rows, oracle, c);
}

TEST_P(RadixSortTest, DispatchMatchesOracle) {
  const RadixCase& c = GetParam();
  auto rows = MakeRows(c, 104);
  auto oracle = OracleSort(rows, c);
  std::vector<uint8_t> aux(rows.size());
  RadixSortConfig config{c.row_width, c.key_offset, c.key_width};
  RadixSort(rows.data(), aux.data(), c.count, config);
  ExpectKeysMatch(rows, oracle, c);
  ExpectMultisetPreserved(rows, oracle, c);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RadixSortTest,
    ::testing::Values(
        RadixCase{0, 8, 4, 0, 256},        // empty
        RadixCase{1, 8, 4, 0, 256},        // single row
        RadixCase{2, 8, 4, 0, 256},        // pair
        RadixCase{1000, 8, 4, 0, 256},     // short key -> LSD territory
        RadixCase{1000, 8, 4, 0, 2},       // heavy duplicates
        RadixCase{1000, 16, 8, 0, 256},    // 8-byte key
        RadixCase{1000, 16, 8, 0, 1},      // all equal (skip optimization)
        RadixCase{5000, 24, 12, 8, 16},    // key at offset, few uniques
        RadixCase{30000, 32, 20, 0, 256},  // long key -> MSD
        RadixCase{30000, 32, 20, 0, 3},    // long key, many ties
        RadixCase{64, 40, 24, 8, 256},     // below insertion threshold sizes
        RadixCase{100000, 16, 4, 4, 256}), // large single-digit-ish
    [](const ::testing::TestParamInfo<RadixCase>& info) {
      const auto& c = info.param;
      return "n" + std::to_string(c.count) + "_rw" +
             std::to_string(c.row_width) + "_kw" +
             std::to_string(c.key_width) + "_ko" +
             std::to_string(c.key_offset) + "_vr" +
             std::to_string(c.value_range);
    });

TEST(RadixSortStatsTest, LsdSkipsConstantBytePasses) {
  // Key bytes 0..1 constant, bytes 2..3 varying: exactly 2 passes must be
  // skipped by the one-bucket optimization (paper §VI-B).
  const uint64_t n = 4096, width = 8, key_width = 4;
  Random rng(7);
  std::vector<uint8_t> rows(n * width, 0);
  for (uint64_t i = 0; i < n; ++i) {
    rows[i * width + 2] = static_cast<uint8_t>(rng.Next32());
    rows[i * width + 3] = static_cast<uint8_t>(rng.Next32());
  }
  std::vector<uint8_t> aux(rows.size());
  RadixSortStats stats;
  RadixSortConfig config{width, 0, key_width};
  RadixSortLsd(rows.data(), aux.data(), n, config, &stats);
  EXPECT_EQ(stats.skipped_passes, 2u);
  EXPECT_EQ(stats.passes, 2u);
  EXPECT_TRUE(RowsAreSorted(rows.data(), n, width, 0, key_width));
}

TEST(RadixSortStatsTest, MsdDescendsWithoutCopyOnSharedPrefix) {
  // All keys share the first 3 bytes: MSD must skip 3 digits without moving
  // any rows, then bucket on the 4th.
  const uint64_t n = 4096, width = 8, key_width = 4;
  Random rng(8);
  std::vector<uint8_t> rows(n * width);
  for (uint64_t i = 0; i < n; ++i) {
    uint8_t* row = rows.data() + i * width;
    row[0] = 0xAB;
    row[1] = 0xCD;
    row[2] = 0xEF;
    row[3] = static_cast<uint8_t>(rng.Next32());
  }
  std::vector<uint8_t> aux(rows.size());
  RadixSortStats stats;
  RadixSortConfig config{width, 0, key_width};
  RadixSortMsd(rows.data(), aux.data(), n, config, &stats);
  EXPECT_EQ(stats.skipped_passes, 3u);
  EXPECT_TRUE(RowsAreSorted(rows.data(), n, width, 0, key_width));
}

TEST(RadixSortStatsTest, MsdUsesInsertionSortForSmallBuckets) {
  const uint64_t n = 10000, width = 8, key_width = 8;
  Random rng(9);
  std::vector<uint8_t> rows(n * width);
  for (auto& b : rows) b = static_cast<uint8_t>(rng.Next32());
  std::vector<uint8_t> aux(rows.size());
  RadixSortStats stats;
  RadixSortConfig config{width, 0, key_width};
  RadixSortMsd(rows.data(), aux.data(), n, config, &stats);
  // With 256 buckets over 10k rows, buckets average ~39 rows; recursion one
  // level deeper yields tiny buckets finished by insertion sort.
  EXPECT_GT(stats.insertion_sorts, 0u);
  EXPECT_TRUE(RowsAreSorted(rows.data(), n, width, 0, key_width));
}

TEST(RadixSortEdgeTest, KeyWidthZeroIsNoOp) {
  std::vector<uint8_t> rows = {3, 0, 0, 0, 1, 0, 0, 0};
  auto copy = rows;
  std::vector<uint8_t> aux(rows.size());
  RadixSortConfig config{4, 0, 0};
  RadixSort(rows.data(), aux.data(), 2, config);
  EXPECT_EQ(rows, copy);  // nothing to sort by
}

TEST(RadixSortEdgeTest, LsdIsStable) {
  // Two-byte keys with one varying byte: rows with equal keys must keep
  // their original relative order (LSD counting sort is stable).
  const uint64_t n = 1000, width = 8;
  Random rng(10);
  std::vector<uint8_t> rows(n * width, 0);
  for (uint64_t i = 0; i < n; ++i) {
    uint8_t* row = rows.data() + i * width;
    row[0] = static_cast<uint8_t>(rng.Uniform(4));  // key
    // Sequence number in the payload bytes.
    std::memcpy(row + 4, &i, 4);
  }
  std::vector<uint8_t> aux(rows.size());
  RadixSortConfig config{width, 0, 1};
  RadixSortLsd(rows.data(), aux.data(), n, config);
  uint32_t last_seq[4] = {0, 0, 0, 0};
  for (uint64_t i = 0; i < n; ++i) {
    const uint8_t* row = rows.data() + i * width;
    uint8_t key = row[0];
    uint32_t seq;
    std::memcpy(&seq, row + 4, 4);
    if (i > 0 && rows[(i - 1) * width] == key) {
      ASSERT_GT(seq, last_seq[key]) << "stability violated";
    }
    last_seq[key] = seq;
  }
}

}  // namespace
}  // namespace rowsort
