// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Cross-system agreement: all five §VII system stand-ins must produce the
// exact same key-column sequences (payload order within ties may differ —
// none of the architectures promises stability).
#include <gtest/gtest.h>

#include "systems/system.h"
#include "workload/tables.h"
#include "workload/tpcds.h"

namespace rowsort {
namespace {

std::vector<std::string> KeySequence(const Table& t,
                                     const std::vector<uint64_t>& key_cols) {
  std::vector<std::string> keys;
  keys.reserve(t.row_count());
  for (uint64_t ci = 0; ci < t.ChunkCount(); ++ci) {
    for (uint64_t r = 0; r < t.chunk(ci).size(); ++r) {
      std::string key;
      for (uint64_t c : key_cols) {
        key += t.chunk(ci).GetValue(c, r).ToString();
        key += '\x1f';
      }
      keys.push_back(std::move(key));
    }
  }
  return keys;
}

void ExpectAllSystemsAgree(const Table& input, const SortSpec& spec) {
  std::vector<uint64_t> key_cols;
  for (const auto& sc : spec.columns()) key_cols.push_back(sc.column_index);

  auto systems = MakeAllSystems(2);
  std::vector<std::string> reference;
  std::string reference_name;
  for (auto& system : systems) {
    Table output = system->Sort(input, spec);
    auto keys = KeySequence(output, key_cols);
    if (reference.empty() && reference_name.empty()) {
      reference = std::move(keys);
      reference_name = system->name();
      continue;
    }
    ASSERT_EQ(keys.size(), reference.size()) << system->name();
    for (uint64_t i = 0; i < keys.size(); ++i) {
      ASSERT_EQ(keys[i], reference[i])
          << system->name() << " disagrees with " << reference_name
          << " at row " << i;
    }
  }
}

TEST(SystemsAgreementTest, CatalogSalesTwoKeys) {
  TpcdsScale scale;
  scale.scale_factor = 1;
  scale.scale_divisor = 150;
  Table input = MakeCatalogSales(scale);
  SortSpec spec({SortColumn(0, TypeId::kInt32, OrderType::kAscending,
                            NullOrder::kNullsFirst),
                 SortColumn(3, TypeId::kInt32, OrderType::kDescending,
                            NullOrder::kNullsLast)});
  ExpectAllSystemsAgree(input, spec);
}

TEST(SystemsAgreementTest, CustomerNames) {
  TpcdsScale scale;
  scale.scale_factor = 1;
  scale.scale_divisor = 25;
  Table input = MakeCustomer(scale);
  SortSpec spec({SortColumn(4, TypeId::kVarchar),
                 SortColumn(5, TypeId::kVarchar, OrderType::kDescending,
                            NullOrder::kNullsFirst)});
  ExpectAllSystemsAgree(input, spec);
}

TEST(SystemsAgreementTest, FloatsWithFullRange) {
  Table input = MakeUniformFloatTable(8000, 5);
  SortSpec spec({SortColumn(0, TypeId::kFloat, OrderType::kDescending,
                            NullOrder::kNullsLast)});
  ExpectAllSystemsAgree(input, spec);
}

}  // namespace
}  // namespace rowsort
