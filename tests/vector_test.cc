// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include <gtest/gtest.h>

#include "vector/data_chunk.h"
#include "vector/string_heap.h"
#include "vector/validity_mask.h"
#include "vector/vector.h"

namespace rowsort {
namespace {

TEST(ValidityMaskTest, AllValidByDefault) {
  ValidityMask mask(100);
  EXPECT_TRUE(mask.AllValid());
  for (uint64_t i = 0; i < 100; ++i) EXPECT_TRUE(mask.RowIsValid(i));
  EXPECT_EQ(mask.CountInvalid(100), 0u);
}

TEST(ValidityMaskTest, SetInvalidMaterializes) {
  ValidityMask mask(100);
  mask.SetInvalid(42);
  EXPECT_FALSE(mask.AllValid());
  EXPECT_FALSE(mask.RowIsValid(42));
  EXPECT_TRUE(mask.RowIsValid(41));
  EXPECT_TRUE(mask.RowIsValid(43));
  EXPECT_EQ(mask.CountInvalid(100), 1u);
}

TEST(ValidityMaskTest, SetValidRestores) {
  ValidityMask mask(64);
  mask.SetInvalid(7);
  mask.SetValid(7);
  EXPECT_TRUE(mask.RowIsValid(7));
}

TEST(ValidityMaskTest, WordBoundaries) {
  ValidityMask mask(130);
  mask.SetInvalid(63);
  mask.SetInvalid(64);
  mask.SetInvalid(128);
  EXPECT_FALSE(mask.RowIsValid(63));
  EXPECT_FALSE(mask.RowIsValid(64));
  EXPECT_FALSE(mask.RowIsValid(128));
  EXPECT_TRUE(mask.RowIsValid(62));
  EXPECT_TRUE(mask.RowIsValid(65));
  EXPECT_EQ(mask.CountInvalid(130), 3u);
}

TEST(ValidityMaskTest, ResetClearsNulls) {
  ValidityMask mask(10);
  mask.SetInvalid(3);
  mask.Reset();
  EXPECT_TRUE(mask.AllValid());
  EXPECT_TRUE(mask.RowIsValid(3));
}

TEST(StringHeapTest, ShortStringsStayInline) {
  StringHeap heap;
  string_t s = heap.AddString("tiny");
  EXPECT_TRUE(s.IsInlined());
  EXPECT_EQ(heap.SizeBytes(), 0u);
}

TEST(StringHeapTest, LongStringsCopied) {
  StringHeap heap;
  std::string original = "a string that is definitely longer than twelve";
  string_t s = heap.AddString(original);
  EXPECT_FALSE(s.IsInlined());
  EXPECT_EQ(s.ToString(), original);
  EXPECT_NE(s.data(), original.data());  // copied into the heap
}

TEST(StringHeapTest, ManyAllocationsSurviveBlockGrowth) {
  StringHeap heap;
  std::vector<string_t> strings;
  for (int i = 0; i < 50000; ++i) {
    std::string value = "string-value-" + std::to_string(i) + "-padding";
    strings.push_back(heap.AddString(value));
  }
  for (int i = 0; i < 50000; ++i) {
    std::string expect = "string-value-" + std::to_string(i) + "-padding";
    EXPECT_EQ(strings[i].ToString(), expect);
  }
}

TEST(StringHeapTest, MergePreservesDescriptors) {
  StringHeap a, b;
  string_t in_b = b.AddString("payload that lives in heap b, quite long");
  a.AddString("payload that lives in heap a, quite long");
  a.Merge(std::move(b));
  EXPECT_EQ(in_b.ToString(), "payload that lives in heap b, quite long");
  // New allocations in a still work after the merge.
  string_t later = a.AddString("post-merge allocation, also quite long!");
  EXPECT_EQ(later.ToString(), "post-merge allocation, also quite long!");
}

TEST(VectorTest, RoundTripFixedTypes) {
  Vector vec{LogicalType(TypeId::kInt32)};
  vec.SetValue(0, Value::Int32(-7));
  vec.SetValue(1, Value::Null(TypeId::kInt32));
  vec.SetValue(2, Value::Int32(123456));
  EXPECT_EQ(vec.GetValue(0), Value::Int32(-7));
  EXPECT_TRUE(vec.GetValue(1).is_null());
  EXPECT_EQ(vec.GetValue(2), Value::Int32(123456));
}

TEST(VectorTest, RoundTripStrings) {
  Vector vec{LogicalType(TypeId::kVarchar)};
  vec.SetString(0, "short");
  vec.SetString(1, "a very long string that cannot be inlined at all");
  EXPECT_EQ(vec.GetValue(0), Value::Varchar("short"));
  EXPECT_EQ(vec.GetValue(1),
            Value::Varchar("a very long string that cannot be inlined at all"));
}

TEST(VectorTest, TypedDataMatchesSetValue) {
  Vector vec{LogicalType(TypeId::kUint32)};
  vec.SetValue(5, Value::Uint32(0xDEADBEEF));
  EXPECT_EQ(vec.TypedData<uint32_t>()[5], 0xDEADBEEFu);
}

TEST(DataChunkTest, InitializeAndFill) {
  DataChunk chunk;
  chunk.Initialize({TypeId::kInt32, TypeId::kVarchar});
  EXPECT_EQ(chunk.ColumnCount(), 2u);
  EXPECT_EQ(chunk.capacity(), kVectorSize);

  chunk.SetValue(0, 0, Value::Int32(1));
  chunk.SetValue(1, 0, Value::Varchar("row zero"));
  chunk.SetValue(0, 1, Value::Null(TypeId::kInt32));
  chunk.SetValue(1, 1, Value::Varchar("row one"));
  chunk.SetSize(2);

  EXPECT_EQ(chunk.size(), 2u);
  EXPECT_EQ(chunk.GetValue(0, 0), Value::Int32(1));
  EXPECT_TRUE(chunk.GetValue(0, 1).is_null());
  EXPECT_EQ(chunk.GetValue(1, 1), Value::Varchar("row one"));
}

TEST(DataChunkTest, TypesReflectInitialization) {
  DataChunk chunk;
  chunk.Initialize({TypeId::kFloat, TypeId::kInt64});
  auto types = chunk.Types();
  ASSERT_EQ(types.size(), 2u);
  EXPECT_EQ(types[0].id(), TypeId::kFloat);
  EXPECT_EQ(types[1].id(), TypeId::kInt64);
}

TEST(DataChunkTest, ResetClearsCountAndValidity) {
  DataChunk chunk;
  chunk.Initialize({TypeId::kInt32});
  chunk.SetValue(0, 0, Value::Null(TypeId::kInt32));
  chunk.SetSize(1);
  chunk.Reset();
  EXPECT_EQ(chunk.size(), 0u);
  EXPECT_TRUE(chunk.column(0).validity().AllValid());
}

TEST(DataChunkTest, ToStringRendersRows) {
  DataChunk chunk;
  chunk.Initialize({TypeId::kInt32});
  chunk.SetValue(0, 0, Value::Int32(9));
  chunk.SetSize(1);
  std::string text = chunk.ToString();
  EXPECT_NE(text.find("9"), std::string::npos);
}

}  // namespace
}  // namespace rowsort
