// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "engine/aggregate.h"
#include "engine/sort_engine.h"

namespace rowsort {
namespace {

Table MakeInput() {
  // (dept VARCHAR, salary INT32, bonus DOUBLE)
  Table table({TypeId::kVarchar, TypeId::kInt32, TypeId::kDouble});
  DataChunk chunk = table.NewChunk();
  struct Row {
    const char* dept;
    int32_t salary;
    double bonus;
    bool null_salary = false;
  };
  const Row rows[] = {
      {"eng", 100, 1.5},  {"eng", 200, 2.5},          {"sales", 50, 0.5},
      {"eng", 150, 3.0},  {"sales", 70, 1.0},         {nullptr, 10, 0.25},
      {"sales", 0, 2.0, true}, {nullptr, 20, 0.75},
  };
  uint64_t n = 0;
  for (const auto& r : rows) {
    if (r.dept == nullptr) {
      chunk.SetValue(0, n, Value::Null(TypeId::kVarchar));
    } else {
      chunk.SetValue(0, n, Value::Varchar(r.dept));
    }
    chunk.SetValue(1, n,
                   r.null_salary ? Value::Null(TypeId::kInt32)
                                 : Value::Int32(r.salary));
    chunk.SetValue(2, n, Value::Double(r.bonus));
    ++n;
  }
  chunk.SetSize(n);
  table.Append(std::move(chunk));
  return table;
}

/// Sorts the aggregate result by the first group column for deterministic
/// comparison (chaining blocking operators, §IX ¶2).
Table SortedResult(Table result) {
  SortSpec spec({SortColumn(0, result.types()[0], OrderType::kAscending,
                            NullOrder::kNullsFirst)});
  return RelationalSort::SortTable(result, spec).ValueOrDie();
}

TEST(HashAggregateTest, CountSumMinMaxByDept) {
  Table input = MakeInput();
  HashAggregate agg({0},
                    {{AggregateFunction::kCount, 1},
                     {AggregateFunction::kSum, 1},
                     {AggregateFunction::kMin, 1},
                     {AggregateFunction::kMax, 1},
                     {AggregateFunction::kSum, 2}},
                    input.types());
  for (uint64_t c = 0; c < input.ChunkCount(); ++c) agg.Sink(input.chunk(c));
  EXPECT_EQ(agg.group_count(), 3u);  // eng, sales, NULL
  Table result = SortedResult(agg.Finalize());

  ASSERT_EQ(result.row_count(), 3u);
  const DataChunk& chunk = result.chunk(0);
  // Row 0: NULL dept (NULLS FIRST) — salaries 10, 20.
  EXPECT_TRUE(chunk.GetValue(0, 0).is_null());
  EXPECT_EQ(chunk.GetValue(1, 0), Value::Int64(2));    // count
  EXPECT_EQ(chunk.GetValue(2, 0), Value::Int64(30));   // sum
  EXPECT_EQ(chunk.GetValue(3, 0), Value::Int32(10));   // min
  EXPECT_EQ(chunk.GetValue(4, 0), Value::Int32(20));   // max
  EXPECT_EQ(chunk.GetValue(5, 0), Value::Double(1.0)); // sum bonus
  // Row 1: eng — 100, 200, 150.
  EXPECT_EQ(chunk.GetValue(0, 1), Value::Varchar("eng"));
  EXPECT_EQ(chunk.GetValue(1, 1), Value::Int64(3));
  EXPECT_EQ(chunk.GetValue(2, 1), Value::Int64(450));
  EXPECT_EQ(chunk.GetValue(3, 1), Value::Int32(100));
  EXPECT_EQ(chunk.GetValue(4, 1), Value::Int32(200));
  EXPECT_EQ(chunk.GetValue(5, 1), Value::Double(7.0));
  // Row 2: sales — 50, 70, NULL.
  EXPECT_EQ(chunk.GetValue(0, 2), Value::Varchar("sales"));
  EXPECT_EQ(chunk.GetValue(1, 2), Value::Int64(2));    // NULL not counted
  EXPECT_EQ(chunk.GetValue(2, 2), Value::Int64(120));
  EXPECT_EQ(chunk.GetValue(3, 2), Value::Int32(50));
  EXPECT_EQ(chunk.GetValue(4, 2), Value::Int32(70));
  EXPECT_EQ(chunk.GetValue(5, 2), Value::Double(3.5));
}

TEST(HashAggregateTest, AllNullInputsYieldNullSumMinMax) {
  Table input({TypeId::kInt32, TypeId::kInt32});
  DataChunk chunk = input.NewChunk();
  chunk.SetValue(0, 0, Value::Int32(1));
  chunk.SetValue(1, 0, Value::Null(TypeId::kInt32));
  chunk.SetValue(0, 1, Value::Int32(1));
  chunk.SetValue(1, 1, Value::Null(TypeId::kInt32));
  chunk.SetSize(2);
  input.Append(std::move(chunk));

  HashAggregate agg({0},
                    {{AggregateFunction::kCount, 1},
                     {AggregateFunction::kSum, 1},
                     {AggregateFunction::kMin, 1}},
                    input.types());
  agg.Sink(input.chunk(0));
  Table result = agg.Finalize();
  ASSERT_EQ(result.row_count(), 1u);
  EXPECT_EQ(result.chunk(0).GetValue(1, 0), Value::Int64(0));  // COUNT = 0
  EXPECT_TRUE(result.chunk(0).GetValue(2, 0).is_null());       // SUM NULL
  EXPECT_TRUE(result.chunk(0).GetValue(3, 0).is_null());       // MIN NULL
}

TEST(HashAggregateTest, ManyGroupsForceTableGrowth) {
  Random rng(3);
  Table input({TypeId::kInt32, TypeId::kInt32});
  const uint64_t rows = 50000, groups = 5000;
  std::map<int32_t, std::pair<int64_t, int64_t>> oracle;  // count, sum
  uint64_t produced = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = input.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      int32_t g = static_cast<int32_t>(rng.Uniform(groups));
      int32_t v = static_cast<int32_t>(rng.Uniform(100));
      chunk.SetValue(0, r, Value::Int32(g));
      chunk.SetValue(1, r, Value::Int32(v));
      auto& entry = oracle[g];
      ++entry.first;
      entry.second += v;
    }
    chunk.SetSize(n);
    input.Append(std::move(chunk));
    produced += n;
  }

  HashAggregate agg({0},
                    {{AggregateFunction::kCount, 1},
                     {AggregateFunction::kSum, 1}},
                    input.types());
  for (uint64_t c = 0; c < input.ChunkCount(); ++c) agg.Sink(input.chunk(c));
  EXPECT_EQ(agg.group_count(), oracle.size());

  Table result = agg.Finalize();
  for (uint64_t ci = 0; ci < result.ChunkCount(); ++ci) {
    const DataChunk& chunk = result.chunk(ci);
    for (uint64_t r = 0; r < chunk.size(); ++r) {
      int32_t g = chunk.GetValue(0, r).int32_value();
      auto it = oracle.find(g);
      ASSERT_NE(it, oracle.end());
      EXPECT_EQ(chunk.GetValue(1, r).int64_value(), it->second.first);
      EXPECT_EQ(chunk.GetValue(2, r).int64_value(), it->second.second);
      oracle.erase(it);
    }
  }
  EXPECT_TRUE(oracle.empty());
}

TEST(HashAggregateTest, MultiColumnGroupBy) {
  Table input({TypeId::kInt32, TypeId::kVarchar, TypeId::kInt32});
  DataChunk chunk = input.NewChunk();
  struct Row {
    int32_t a;
    const char* b;
    int32_t v;
  };
  const Row rows[] = {{1, "x", 10}, {1, "y", 20}, {1, "x", 30}, {2, "x", 40}};
  uint64_t n = 0;
  for (const auto& r : rows) {
    chunk.SetValue(0, n, Value::Int32(r.a));
    chunk.SetValue(1, n, Value::Varchar(r.b));
    chunk.SetValue(2, n, Value::Int32(r.v));
    ++n;
  }
  chunk.SetSize(n);
  input.Append(std::move(chunk));

  HashAggregate agg({0, 1}, {{AggregateFunction::kSum, 2}}, input.types());
  agg.Sink(input.chunk(0));
  EXPECT_EQ(agg.group_count(), 3u);  // (1,x), (1,y), (2,x)
  Table result = agg.Finalize();
  int64_t total = 0;
  for (uint64_t r = 0; r < result.chunk(0).size(); ++r) {
    total += result.chunk(0).GetValue(2, r).int64_value();
  }
  EXPECT_EQ(total, 100);
}

TEST(HashAggregateTest, MinMaxOverStrings) {
  Table input({TypeId::kInt32, TypeId::kVarchar});
  DataChunk chunk = input.NewChunk();
  const char* names[] = {"delta", "alpha", "charlie", "bravo"};
  for (uint64_t r = 0; r < 4; ++r) {
    chunk.SetValue(0, r, Value::Int32(1));
    chunk.SetValue(1, r, Value::Varchar(names[r]));
  }
  chunk.SetSize(4);
  input.Append(std::move(chunk));

  HashAggregate agg({0},
                    {{AggregateFunction::kMin, 1},
                     {AggregateFunction::kMax, 1}},
                    input.types());
  agg.Sink(input.chunk(0));
  Table result = agg.Finalize();
  EXPECT_EQ(result.chunk(0).GetValue(1, 0), Value::Varchar("alpha"));
  EXPECT_EQ(result.chunk(0).GetValue(2, 0), Value::Varchar("delta"));
}

}  // namespace
}  // namespace rowsort
