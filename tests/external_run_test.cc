// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include <gtest/gtest.h>

#include <cstdio>

#include "common/random.h"
#include "engine/external_run.h"
#include "engine/sort_engine.h"

namespace rowsort {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

SortedRun MakeRun(const RowLayout& layout, uint64_t count, uint64_t seed) {
  Random rng(seed);
  SortedRun run;
  run.count = count;
  run.key_row_width = 16;
  run.key_rows.resize(count * run.key_row_width);
  for (auto& b : run.key_rows) b = static_cast<uint8_t>(rng.Next32());
  run.payload = RowCollection(layout);

  DataChunk chunk;
  chunk.Initialize(layout.types(), count);
  for (uint64_t i = 0; i < count; ++i) {
    chunk.SetValue(0, i, Value::Int32(static_cast<int32_t>(i)));
    if (i % 7 == 0) {
      chunk.SetValue(1, i, Value::Null(TypeId::kVarchar));
    } else if (i % 3 == 0) {
      chunk.SetValue(1, i,
                     Value::Varchar("long string payload number " +
                                    std::to_string(i) + " with extra bytes"));
    } else {
      chunk.SetValue(1, i, Value::Varchar("s" + std::to_string(i % 11)));
    }
  }
  chunk.SetSize(count);
  run.payload.AppendChunk(chunk);
  return run;
}

TEST(ExternalRunTest, RoundTripPreservesEverything) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 500, 42);
  std::string path = TempPath("roundtrip.rsrun");

  ASSERT_TRUE(WriteRunToFile(run, layout, path).ok());
  auto loaded = ReadRunFromFile(layout, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const SortedRun& back = loaded.value();

  ASSERT_EQ(back.count, run.count);
  ASSERT_EQ(back.key_row_width, run.key_row_width);
  EXPECT_EQ(back.key_rows, run.key_rows);
  for (uint64_t i = 0; i < run.count; ++i) {
    EXPECT_EQ(back.payload.GetValue(i, 0), run.payload.GetValue(i, 0)) << i;
    EXPECT_EQ(back.payload.GetValue(i, 1), run.payload.GetValue(i, 1)) << i;
  }
  std::remove(path.c_str());
}

TEST(ExternalRunTest, EmptyRunRoundTrips) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run;
  run.count = 0;
  run.key_row_width = 16;
  run.payload = RowCollection(layout);
  std::string path = TempPath("empty.rsrun");
  ASSERT_TRUE(WriteRunToFile(run, layout, path).ok());
  auto loaded = ReadRunFromFile(layout, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().count, 0u);
  std::remove(path.c_str());
}

TEST(ExternalRunTest, MissingFileReportsIOError) {
  RowLayout layout({TypeId::kInt32});
  auto result = ReadRunFromFile(layout, TempPath("does_not_exist.rsrun"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(ExternalRunTest, WrongMagicRejected) {
  std::string path = TempPath("garbage.rsrun");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char garbage[32] = "not a run file at all, sorry!";
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);
  RowLayout layout({TypeId::kInt32});
  auto result = ReadRunFromFile(layout, path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ExternalRunTest, LayoutMismatchRejected) {
  RowLayout wide({TypeId::kInt32, TypeId::kInt64, TypeId::kDouble});
  RowLayout narrow({TypeId::kInt32});
  SortedRun run;
  run.count = 0;
  run.key_row_width = 8;
  run.payload = RowCollection(wide);
  std::string path = TempPath("mismatch.rsrun");
  ASSERT_TRUE(WriteRunToFile(run, wide, path).ok());
  auto result = ReadRunFromFile(narrow, path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rowsort
