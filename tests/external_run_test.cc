// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include "common/cancellation.h"
#include "common/compress.h"
#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "common/retry.h"
#include "engine/external_run.h"
#include "engine/sort_engine.h"

namespace rowsort {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

SortedRun MakeRun(const RowLayout& layout, uint64_t count, uint64_t seed) {
  Random rng(seed);
  SortedRun run;
  run.count = count;
  run.key_row_width = 16;
  run.key_rows.resize(count * run.key_row_width);
  for (auto& b : run.key_rows) b = static_cast<uint8_t>(rng.Next32());
  run.payload = RowCollection(layout);

  DataChunk chunk;
  chunk.Initialize(layout.types(), count);
  for (uint64_t i = 0; i < count; ++i) {
    chunk.SetValue(0, i, Value::Int32(static_cast<int32_t>(i)));
    if (i % 7 == 0) {
      chunk.SetValue(1, i, Value::Null(TypeId::kVarchar));
    } else if (i % 3 == 0) {
      chunk.SetValue(1, i,
                     Value::Varchar("long string payload number " +
                                    std::to_string(i) + " with extra bytes"));
    } else {
      chunk.SetValue(1, i, Value::Varchar("s" + std::to_string(i % 11)));
    }
  }
  chunk.SetSize(count);
  run.payload.AppendChunk(chunk);
  return run;
}

TEST(ExternalRunTest, RoundTripPreservesEverything) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 500, 42);
  std::string path = TempPath("roundtrip.rsrun");

  ASSERT_TRUE(WriteRunToFile(run, layout, path).ok());
  auto loaded = ReadRunFromFile(layout, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const SortedRun& back = loaded.value();

  ASSERT_EQ(back.count, run.count);
  ASSERT_EQ(back.key_row_width, run.key_row_width);
  EXPECT_EQ(back.key_rows, run.key_rows);
  for (uint64_t i = 0; i < run.count; ++i) {
    EXPECT_EQ(back.payload.GetValue(i, 0), run.payload.GetValue(i, 0)) << i;
    EXPECT_EQ(back.payload.GetValue(i, 1), run.payload.GetValue(i, 1)) << i;
  }
  std::remove(path.c_str());
}

TEST(ExternalRunTest, EmptyRunRoundTrips) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run;
  run.count = 0;
  run.key_row_width = 16;
  run.payload = RowCollection(layout);
  std::string path = TempPath("empty.rsrun");
  ASSERT_TRUE(WriteRunToFile(run, layout, path).ok());
  auto loaded = ReadRunFromFile(layout, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().count, 0u);
  std::remove(path.c_str());
}

TEST(ExternalRunTest, MissingFileReportsIOError) {
  RowLayout layout({TypeId::kInt32});
  auto result = ReadRunFromFile(layout, TempPath("does_not_exist.rsrun"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(ExternalRunTest, WrongMagicRejected) {
  std::string path = TempPath("garbage.rsrun");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char garbage[32] = "not a run file at all, sorry!";
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);
  RowLayout layout({TypeId::kInt32});
  auto result = ReadRunFromFile(layout, path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ExternalRunTest, LayoutMismatchRejected) {
  RowLayout wide({TypeId::kInt32, TypeId::kInt64, TypeId::kDouble});
  RowLayout narrow({TypeId::kInt32});
  SortedRun run;
  run.count = 0;
  run.key_row_width = 8;
  run.payload = RowCollection(wide);
  std::string path = TempPath("mismatch.rsrun");
  ASSERT_TRUE(WriteRunToFile(run, wide, path).ok());
  auto result = ReadRunFromFile(narrow, path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<uint8_t> bytes(static_cast<uint64_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

TEST(ExternalRunCorruptionTest, SingleBitFlipsAreDetected) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 300, 7);
  std::string path = TempPath("bitflip.rsrun");
  ASSERT_TRUE(WriteRunToFile(run, layout, path).ok());
  const std::vector<uint8_t> pristine = ReadFileBytes(path);

  // Flip one bit at a spread of positions across header, key rows, payload
  // rows and the string section; every flip must surface as a non-OK load
  // (never garbage rows, never a crash).
  for (uint64_t pos = 0; pos < pristine.size(); pos += 211) {
    std::vector<uint8_t> corrupt = pristine;
    corrupt[pos] ^= 0x10;
    WriteFileBytes(path, corrupt);
    auto result = ReadRunFromFile(layout, path);
    ASSERT_FALSE(result.ok()) << "flip at byte " << pos << " went undetected";
    // Flips inside the magic/version fields read as "not a run file"; all
    // other corruption is an I/O-level integrity failure.
    if (pos >= 12) {
      EXPECT_EQ(result.status().code(), StatusCode::kIOError) << pos;
    }
  }
  std::remove(path.c_str());
}

TEST(ExternalRunCorruptionTest, TruncationsAreDetected) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 300, 11);
  std::string path = TempPath("truncate.rsrun");
  ASSERT_TRUE(WriteRunToFile(run, layout, path).ok());
  const std::vector<uint8_t> pristine = ReadFileBytes(path);
  ASSERT_GT(pristine.size(), 64u);

  // Cut at the section boundaries and at awkward mid-section points: inside
  // the header, right after it, mid key rows, and one byte short of the end
  // (the final block's CRC).
  const uint64_t cuts[] = {4,  12, 43, 44, 60, pristine.size() / 3,
                           pristine.size() - 1};
  for (uint64_t cut : cuts) {
    WriteFileBytes(path, std::vector<uint8_t>(pristine.begin(),
                                              pristine.begin() + cut));
    auto result = ReadRunFromFile(layout, path);
    ASSERT_FALSE(result.ok()) << "truncation at " << cut << " went undetected";
    EXPECT_EQ(result.status().code(), StatusCode::kIOError) << cut;
  }
  std::remove(path.c_str());
}

TEST(ExternalRunStreamingTest, ReaderYieldsBoundedBlocks) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 2500, 3);
  std::string path = TempPath("streaming.rsrun");

  ExternalRunWriter writer(layout, path);
  ASSERT_TRUE(writer.Open(run.key_row_width).ok());
  // Uneven slices, including an empty one (which must write no block).
  ASSERT_TRUE(writer.WriteSlice(run, 0, 1000).ok());
  ASSERT_TRUE(writer.WriteSlice(run, 1000, 2000).ok());
  ASSERT_TRUE(writer.WriteSlice(run, 2000, 2000).ok());  // empty: no block
  ASSERT_TRUE(writer.WriteSlice(run, 2000, 2500).ok());
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(writer.rows_written(), 2500u);

  ExternalRunReader reader(layout, path);
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.row_count(), 2500u);
  EXPECT_EQ(reader.key_row_width(), run.key_row_width);
  SortedRun block;
  uint64_t seen = 0, blocks = 0;
  while (true) {
    ASSERT_TRUE(reader.ReadBlock(&block).ok());
    if (block.count == 0) break;
    // Spot-check alignment of keys and payload against the source run.
    for (uint64_t i = 0; i < block.count; i += 97) {
      ASSERT_EQ(std::memcmp(block.KeyRow(i), run.KeyRow(seen + i),
                            run.key_row_width),
                0);
      ASSERT_EQ(block.payload.GetValue(i, 1), run.payload.GetValue(seen + i, 1));
    }
    seen += block.count;
    ++blocks;
  }
  EXPECT_EQ(seen, 2500u);
  EXPECT_EQ(blocks, 3u);  // one block per non-empty slice
  std::remove(path.c_str());
}

TEST(ExternalRunStreamingTest, UnfinishedWriterLeavesNoFiles) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 100, 5);
  std::string path = TempPath("abandoned.rsrun");
  {
    ExternalRunWriter writer(layout, path);
    ASSERT_TRUE(writer.Open(run.key_row_width).ok());
    ASSERT_TRUE(writer.WriteSlice(run, 0, 100).ok());
    // The target must not exist while the write is in flight (temp + rename).
    EXPECT_FALSE(std::filesystem::exists(path));
    // No Finish(): destructor must abandon and clean up the temp file.
  }
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(ExternalRunStreamingTest, FailpointDiskFullSurfacesAsIOError) {
  if (!failpoint::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 50, 9);
  std::string path = TempPath("diskfull.rsrun");

  failpoint::Arm("external_run_write", /*skip=*/1, /*fires=*/1);
  Status st = WriteRunToFile(run, layout, path);
  failpoint::DisarmAll();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  // A failed write must leave neither the target nor the temp file behind.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

void ExpectRunsEqual(const SortedRun& a, const SortedRun& b) {
  ASSERT_EQ(a.count, b.count);
  ASSERT_EQ(a.key_row_width, b.key_row_width);
  EXPECT_EQ(a.key_rows, b.key_rows);
  for (uint64_t i = 0; i < a.count; ++i) {
    ASSERT_EQ(a.payload.GetValue(i, 0), b.payload.GetValue(i, 0)) << i;
    ASSERT_EQ(a.payload.GetValue(i, 1), b.payload.GetValue(i, 1)) << i;
  }
}

TEST(ExternalRunRetryTest, ShortWritesAreResumedNotFatal) {
  if (!failpoint::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 400, 33);
  std::string path = TempPath("shortwrite.rsrun");

  // Every write comes back short (the stream takes half the buffer) until
  // the transfer is down to one byte. Before the retry layer this was a
  // hard IOError on the first shortfall; now the stream resumes where it
  // stopped and the file must round-trip bit-exactly.
  RetryStats stats;
  SpillIoOptions io;
  io.retry_stats = &stats;
  failpoint::Arm("external_run_write_short", /*skip=*/0, /*fires=*/0);
  Status st = WriteRunToFile(run, layout, path, io);
  failpoint::DisarmAll();
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_GT(stats.count(), 0u) << "failpoint never fired";

  auto loaded = ReadRunFromFile(layout, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectRunsEqual(run, loaded.value());
  std::remove(path.c_str());
}

TEST(ExternalRunRetryTest, InterruptedReadsAreResumedNotFatal) {
  if (!failpoint::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 400, 35);
  std::string path = TempPath("eintr.rsrun");
  ASSERT_TRUE(WriteRunToFile(run, layout, path).ok());

  // Every block read is interrupted mid-transfer (EINTR-style short read).
  RetryStats stats;
  SpillIoOptions io;
  io.retry_stats = &stats;
  failpoint::Arm("external_run_read_eintr", /*skip=*/0, /*fires=*/0);
  auto loaded = ReadRunFromFile(layout, path, io);
  failpoint::DisarmAll();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_GT(stats.count(), 0u) << "failpoint never fired";
  ExpectRunsEqual(run, loaded.value());
  std::remove(path.c_str());
}

TEST(ExternalRunRetryTest, ProbabilisticFlakesRoundTrip) {
  if (!failpoint::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 600, 37);
  std::string path = TempPath("flaky.rsrun");

  // 30% of transfers come back short, both directions, deterministically
  // seeded: the retry layer must absorb all of it.
  failpoint::ArmProbabilistic("external_run_write_short", 0.3, /*seed=*/39);
  failpoint::ArmProbabilistic("external_run_read_eintr", 0.3, /*seed=*/41);
  Status st = WriteRunToFile(run, layout, path);
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto loaded = ReadRunFromFile(layout, path);
  failpoint::DisarmAll();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectRunsEqual(run, loaded.value());
  std::remove(path.c_str());
}

TEST(ExternalRunOverlapTest, WriteBehindFileIsByteIdenticalToSync) {
  // The overlapped writer moves the fwrite to a background thread but must
  // put the exact same bytes on disk — same framing, same CRCs.
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 9000, 51);  // several blocks
  std::string sync_path = TempPath("overlap_sync.rsrun");
  std::string async_path = TempPath("overlap_async.rsrun");

  ASSERT_TRUE(WriteRunToFile(run, layout, sync_path).ok());

  IoWorker worker;
  SpillOverlapStats stats;
  SpillIoOptions io;
  io.worker = &worker;
  io.overlap_stats = &stats;
  ASSERT_TRUE(WriteRunToFile(run, layout, async_path, io).ok());

  EXPECT_EQ(ReadFileBytes(sync_path), ReadFileBytes(async_path));
  std::remove(sync_path.c_str());
  std::remove(async_path.c_str());
}

TEST(ExternalRunOverlapTest, PrefetchingReaderYieldsIdenticalBlocks) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 9000, 53);
  std::string path = TempPath("overlap_read.rsrun");
  ASSERT_TRUE(WriteRunToFile(run, layout, path).ok());

  // Collect the block stream synchronously and with readahead; the blocks
  // handed out must match row for row.
  auto collect = [&](IoWorker* worker, SpillOverlapStats* stats) {
    SpillIoOptions io;
    io.worker = worker;
    io.overlap_stats = stats;
    ExternalRunReader reader(layout, path);
    reader.SetIoOptions(io);
    EXPECT_TRUE(reader.Open().ok());
    std::vector<std::pair<std::vector<uint8_t>, uint64_t>> blocks;
    SortedRun block;
    for (;;) {
      Status st = reader.ReadBlock(&block);
      EXPECT_TRUE(st.ok()) << st.ToString();
      if (!st.ok() || block.count == 0) break;
      blocks.emplace_back(block.key_rows, block.count);
    }
    EXPECT_EQ(reader.rows_read(), run.count);
    return blocks;
  };
  auto sync_blocks = collect(nullptr, nullptr);

  IoWorker worker;
  SpillOverlapStats stats;
  auto async_blocks = collect(&worker, &stats);
  EXPECT_EQ(sync_blocks, async_blocks);
  // Exactly one readahead is in flight at a time; every block is either a
  // prefetch hit or was waited for — the file has > 1 block, so at least
  // the hit-or-wait machinery must have engaged.
  EXPECT_GT(sync_blocks.size(), 1u);
  EXPECT_LE(stats.blocks_prefetched.load(), sync_blocks.size());
  std::remove(path.c_str());
}

TEST(ExternalRunOverlapTest, WorkerThreadFailpointsStillHealTransients) {
  if (!failpoint::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  // Failpoints are process-global, so arming them here makes them fire on
  // the background I/O thread: the retry/backoff machinery must have moved
  // to the worker along with the fwrite/fread.
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 6000, 57);
  std::string path = TempPath("overlap_flaky.rsrun");

  IoWorker worker;
  RetryStats stats;
  SpillIoOptions io;
  io.worker = &worker;
  io.retry_stats = &stats;
  failpoint::ArmProbabilistic("external_run_write_short", 0.3, /*seed=*/61);
  failpoint::ArmProbabilistic("external_run_read_eintr", 0.3, /*seed=*/63);
  Status st = WriteRunToFile(run, layout, path, io);
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto loaded = ReadRunFromFile(layout, path, io);
  failpoint::DisarmAll();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_GT(stats.count(), 0u) << "failpoints never fired on the worker";
  ExpectRunsEqual(run, loaded.value());
  std::remove(path.c_str());
}

TEST(ExternalRunOverlapTest, BackgroundWriteFailureSurfacesSticky) {
  if (!failpoint::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 4096, 59);
  std::string path = TempPath("overlap_diskfull.rsrun");

  // Skip the header write, then fail permanently (disk full) — on the
  // *worker* thread. The error must come back through the sticky Status on
  // a later WriteSlice/Finish, and no file may be left behind.
  {
    IoWorker worker;
    SpillIoOptions io;
    io.worker = &worker;
    ExternalRunWriter writer(layout, path);
    writer.SetIoOptions(io);
    ASSERT_TRUE(writer.Open(run.key_row_width).ok());
    failpoint::Arm("external_run_write", /*skip=*/0, /*fires=*/1);
    Status st;
    for (int i = 0; i < 4 && st.ok(); ++i) {
      st = writer.WriteSlice(run, 0, run.count);
    }
    if (st.ok()) st = writer.Finish();
    failpoint::DisarmAll();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kIOError);
    // Sticky: every later call reports the same failure.
    EXPECT_FALSE(writer.WriteSlice(run, 0, 1).ok());
    EXPECT_FALSE(writer.Finish().ok());
  }
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(ExternalRunOverlapTest, CancelMidWriteBehindLeavesNoFiles) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 4096, 67);
  std::string path = TempPath("overlap_cancel.rsrun");

  CancellationSource source;
  {
    IoWorker worker;
    SpillIoOptions io;
    io.worker = &worker;
    io.cancellation = source.token();
    ExternalRunWriter writer(layout, path);
    writer.SetIoOptions(io);
    ASSERT_TRUE(writer.Open(run.key_row_width).ok());
    ASSERT_TRUE(writer.WriteSlice(run, 0, run.count).ok());
    // A block is (or was) in flight on the worker; cancelling now must stop
    // the next submission and the abandon must drain + delete the temp.
    source.RequestCancel();
    Status st = writer.WriteSlice(run, 0, run.count);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kCancelled);
  }
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(ExternalRunRetryTest, CancelledTokenAbortsSpillIo) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 200, 43);
  std::string path = TempPath("cancelled.rsrun");

  CancellationSource source;
  source.RequestCancel();
  SpillIoOptions io;
  io.cancellation = source.token();
  Status st = WriteRunToFile(run, layout, path, io);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  // The abandoned write must leave no files.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  // The reader honours the token the same way.
  ASSERT_TRUE(WriteRunToFile(run, layout, path).ok());
  auto loaded = ReadRunFromFile(layout, path, io);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCancelled);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Format v3: compressed blocks
// ---------------------------------------------------------------------------

SpillIoOptions CompressedIo(SpillCompressionStats* stats = nullptr) {
  SpillIoOptions io;
  io.compression = true;
  io.compression_stats = stats;
  return io;
}

/// A run whose keys share long prefixes (big-endian counter, like normalized
/// sort keys in a sorted block) and whose payload repeats a handful of
/// values — the shape spill compression is built for.
SortedRun MakeDupHeavyRun(const RowLayout& layout, uint64_t count) {
  SortedRun run;
  run.count = count;
  run.key_row_width = 16;
  run.key_rows.resize(count * run.key_row_width, 0);
  for (uint64_t i = 0; i < count; ++i) {
    uint8_t* key = run.key_rows.data() + i * run.key_row_width;
    for (int b = 0; b < 8; ++b) {
      key[b] = static_cast<uint8_t>((i / 50) >> (8 * (7 - b)));
    }
    // The trailing 8 bytes mimic the embedded unique row id.
    for (int b = 8; b < 16; ++b) {
      key[b] = static_cast<uint8_t>(i >> (8 * (15 - b)));
    }
  }
  run.payload = RowCollection(layout);
  DataChunk chunk;
  chunk.Initialize(layout.types(), count);
  for (uint64_t i = 0; i < count; ++i) {
    chunk.SetValue(0, i, Value::Int32(static_cast<int32_t>(i / 100)));
    chunk.SetValue(1, i, Value::Varchar("status_" + std::to_string(i % 4) +
                                        "_repeated_payload_marker"));
  }
  chunk.SetSize(count);
  run.payload.AppendChunk(chunk);
  return run;
}

TEST(ExternalRunV3Test, CompressedRoundTripPreservesEverything) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 500, 42);
  std::string path = TempPath("v3_roundtrip.rsrun");

  SpillCompressionStats stats;
  ASSERT_TRUE(WriteRunToFile(run, layout, path, CompressedIo(&stats)).ok());
  EXPECT_GT(stats.bytes_raw.load(), 0u);
  EXPECT_LE(stats.bytes_compressed.load(), stats.bytes_raw.load());

  auto loaded = ReadRunFromFile(layout, path, CompressedIo(&stats));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectRunsEqual(run, loaded.value());
  std::remove(path.c_str());
}

TEST(ExternalRunV3Test, ReaderAutoDetectsVersionWithoutOptIn) {
  // Readers never need the compression flag: the magic decides.
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 200, 44);
  std::string path = TempPath("v3_autodetect.rsrun");
  ASSERT_TRUE(WriteRunToFile(run, layout, path, CompressedIo()).ok());

  ExternalRunReader reader(layout, path);
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.format_version(), 3u);
  auto loaded = ReadRunFromFile(layout, path);  // default (v2-style) options
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectRunsEqual(run, loaded.value());
  std::remove(path.c_str());
}

TEST(ExternalRunV3Test, DuplicateHeavyRunShrinksAtLeastTwofold) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeDupHeavyRun(layout, 4000);
  std::string v2_path = TempPath("v3_dup_v2.rsrun");
  std::string v3_path = TempPath("v3_dup_v3.rsrun");

  ASSERT_TRUE(WriteRunToFile(run, layout, v2_path).ok());
  SpillCompressionStats stats;
  ASSERT_TRUE(WriteRunToFile(run, layout, v3_path, CompressedIo(&stats)).ok());

  const uint64_t v2_size = ReadFileBytes(v2_path).size();
  const uint64_t v3_size = ReadFileBytes(v3_path).size();
  EXPECT_LE(v3_size * 2, v2_size)
      << "dup-heavy spill only shrank " << v2_size << " -> " << v3_size;
  // Compressed sections were actually chosen (not raw passthrough).
  EXPECT_GT(stats.sections_prefix.load() + stats.sections_rle.load() +
                stats.sections_lz.load(),
            0u);

  auto loaded = ReadRunFromFile(layout, v3_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectRunsEqual(run, loaded.value());
  std::remove(v2_path.c_str());
  std::remove(v3_path.c_str());
}

TEST(ExternalRunV3Test, CompressionOffStaysByteIdenticalV2) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 300, 46);
  std::string off_path = TempPath("v3_off.rsrun");
  std::string def_path = TempPath("v3_default.rsrun");

  SpillIoOptions off;
  off.compression = false;
  ASSERT_TRUE(WriteRunToFile(run, layout, off_path, off).ok());
  ASSERT_TRUE(WriteRunToFile(run, layout, def_path).ok());
  EXPECT_EQ(ReadFileBytes(off_path), ReadFileBytes(def_path));

  ExternalRunReader reader(layout, off_path);
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.format_version(), 2u);
  std::remove(off_path.c_str());
  std::remove(def_path.c_str());
}

TEST(ExternalRunV3Test, EmptyAndAllNullRunsRoundTrip) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun empty;
  empty.count = 0;
  empty.key_row_width = 16;
  empty.payload = RowCollection(layout);
  std::string path = TempPath("v3_empty.rsrun");
  ASSERT_TRUE(WriteRunToFile(empty, layout, path, CompressedIo()).ok());
  auto loaded = ReadRunFromFile(layout, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().count, 0u);
  std::remove(path.c_str());

  // Every value NULL: the string section is empty, the payload is
  // validity-dominated — a degenerate but common spill shape.
  SortedRun nulls;
  nulls.count = 600;
  nulls.key_row_width = 8;
  nulls.key_rows.assign(nulls.count * 8, 0);
  nulls.payload = RowCollection(layout);
  DataChunk chunk;
  chunk.Initialize(layout.types(), nulls.count);
  for (uint64_t i = 0; i < nulls.count; ++i) {
    chunk.SetValue(0, i, Value::Null(TypeId::kInt32));
    chunk.SetValue(1, i, Value::Null(TypeId::kVarchar));
  }
  chunk.SetSize(nulls.count);
  nulls.payload.AppendChunk(chunk);
  ASSERT_TRUE(WriteRunToFile(nulls, layout, path, CompressedIo()).ok());
  auto back = ReadRunFromFile(layout, path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().count, nulls.count);
  for (uint64_t i = 0; i < nulls.count; i += 61) {
    EXPECT_TRUE(back.value().payload.GetValue(i, 0).is_null()) << i;
    EXPECT_TRUE(back.value().payload.GetValue(i, 1).is_null()) << i;
  }
  std::remove(path.c_str());
}

// Offsets of the v3 on-disk layout used by the surgical corruption tests:
// 44-byte file header, then per block 20 bytes of framing
// ([magic u32][rows u64][body u64]) followed by three sections, each led by
// a 17-byte header ([codec u8][raw u64][stored u64]).
constexpr size_t kV3FirstBlockOffset = 44;
constexpr size_t kV3FirstSectionOffset = kV3FirstBlockOffset + 20;

struct V3Section {
  size_t header_offset;
  uint8_t codec;
  uint64_t raw_size;
  uint64_t stored_size;
};

std::vector<V3Section> ParseV3Sections(const std::vector<uint8_t>& bytes) {
  std::vector<V3Section> sections;
  size_t off = kV3FirstSectionOffset;
  for (int i = 0; i < 3; ++i) {
    V3Section s;
    s.header_offset = off;
    s.codec = bytes[off];
    std::memcpy(&s.raw_size, bytes.data() + off + 1, sizeof(uint64_t));
    std::memcpy(&s.stored_size, bytes.data() + off + 9, sizeof(uint64_t));
    off += 17 + s.stored_size;
    sections.push_back(s);
  }
  return sections;
}

/// Recomputes the single-block file's trailing CRC after a surgical edit,
/// so the corruption must be caught by structural validation, not the CRC.
void RepatchBlockCrc(std::vector<uint8_t>* bytes) {
  uint32_t crc = Crc32(0, bytes->data() + kV3FirstBlockOffset,
                       bytes->size() - kV3FirstBlockOffset - sizeof(uint32_t));
  std::memcpy(bytes->data() + bytes->size() - sizeof(uint32_t), &crc,
              sizeof(crc));
}

TEST(ExternalRunV3CorruptionTest, SingleBitFlipsAreDetected) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 300, 7);
  std::string path = TempPath("v3_bitflip.rsrun");
  ASSERT_TRUE(WriteRunToFile(run, layout, path, CompressedIo()).ok());
  const std::vector<uint8_t> pristine = ReadFileBytes(path);

  for (uint64_t pos = 0; pos < pristine.size(); pos += 97) {
    std::vector<uint8_t> corrupt = pristine;
    corrupt[pos] ^= 0x10;
    WriteFileBytes(path, corrupt);
    auto result = ReadRunFromFile(layout, path);
    ASSERT_FALSE(result.ok()) << "flip at byte " << pos << " went undetected";
    if (pos >= 12) {
      EXPECT_EQ(result.status().code(), StatusCode::kIOError) << pos;
    }
  }
  std::remove(path.c_str());
}

TEST(ExternalRunV3CorruptionTest, FlippedCodecTagFailsEvenWithValidCrc) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeDupHeavyRun(layout, 1000);  // single block
  std::string path = TempPath("v3_codec_tag.rsrun");
  ASSERT_TRUE(WriteRunToFile(run, layout, path, CompressedIo()).ok());
  const std::vector<uint8_t> pristine = ReadFileBytes(path);
  const auto sections = ParseV3Sections(pristine);

  for (const V3Section& s : sections) {
    // An unknown tag, and every *wrong but valid* codec: the stored bytes
    // will not decode to the declared raw size under a different codec (or
    // fail the raw stored==raw check), and the re-patched CRC proves the
    // rejection comes from decode validation, not the checksum.
    for (uint8_t tag : {uint8_t{7}, uint8_t{0}, uint8_t{1}, uint8_t{2},
                        uint8_t{3}}) {
      if (tag == s.codec) continue;
      std::vector<uint8_t> corrupt = pristine;
      corrupt[s.header_offset] = tag;
      RepatchBlockCrc(&corrupt);
      WriteFileBytes(path, corrupt);
      auto result = ReadRunFromFile(layout, path);
      ASSERT_FALSE(result.ok())
          << "codec tag " << int(tag) << " at offset " << s.header_offset
          << " went undetected";
      EXPECT_EQ(result.status().code(), StatusCode::kIOError);
    }
  }
  std::remove(path.c_str());
}

TEST(ExternalRunV3CorruptionTest, LyingSectionSizesFailEvenWithValidCrc) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeDupHeavyRun(layout, 1000);
  std::string path = TempPath("v3_size_lie.rsrun");
  ASSERT_TRUE(WriteRunToFile(run, layout, path, CompressedIo()).ok());
  const std::vector<uint8_t> pristine = ReadFileBytes(path);
  const auto sections = ParseV3Sections(pristine);

  auto expect_rejected = [&](std::vector<uint8_t> corrupt, const char* what) {
    RepatchBlockCrc(&corrupt);
    WriteFileBytes(path, corrupt);
    auto result = ReadRunFromFile(layout, path);
    ASSERT_FALSE(result.ok()) << what << " went undetected";
    EXPECT_EQ(result.status().code(), StatusCode::kIOError) << what;
  };

  for (const V3Section& s : sections) {
    // raw_size inflated by one: geometry mismatch for fixed sections, decode
    // shortfall for the string section.
    std::vector<uint8_t> corrupt = pristine;
    uint64_t raw = s.raw_size + 1;
    std::memcpy(corrupt.data() + s.header_offset + 1, &raw, sizeof(raw));
    expect_rejected(std::move(corrupt), "inflated raw size");
  }
  // stored_size of the first section shrunk by one: the following sections
  // shift and the block no longer parses to its declared body length.
  {
    std::vector<uint8_t> corrupt = pristine;
    uint64_t stored = sections[0].stored_size - 1;
    std::memcpy(corrupt.data() + sections[0].header_offset + 9, &stored,
                sizeof(stored));
    expect_rejected(std::move(corrupt), "shrunk stored size");
  }
}

TEST(ExternalRunV3CorruptionTest, HugeBodySizeIsTruncationNotAllocation) {
  // A corrupt body length must surface as a truncation IOError — the reader
  // fetches in bounded chunks, so a lying 1 TiB length cannot drive a giant
  // allocation.
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 100, 13);
  std::string path = TempPath("v3_huge_body.rsrun");
  ASSERT_TRUE(WriteRunToFile(run, layout, path, CompressedIo()).ok());
  std::vector<uint8_t> corrupt = ReadFileBytes(path);
  uint64_t body = 1ull << 40;
  std::memcpy(corrupt.data() + kV3FirstBlockOffset + 12, &body, sizeof(body));
  WriteFileBytes(path, corrupt);
  auto result = ReadRunFromFile(layout, path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(ExternalRunV3CorruptionTest, TruncationsAreDetected) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 300, 11);
  std::string path = TempPath("v3_truncate.rsrun");
  ASSERT_TRUE(WriteRunToFile(run, layout, path, CompressedIo()).ok());
  const std::vector<uint8_t> pristine = ReadFileBytes(path);

  const uint64_t cuts[] = {4,
                           12,
                           43,
                           44,
                           kV3FirstSectionOffset + 5,
                           pristine.size() / 3,
                           pristine.size() - 1};
  for (uint64_t cut : cuts) {
    WriteFileBytes(path, std::vector<uint8_t>(pristine.begin(),
                                              pristine.begin() + cut));
    auto result = ReadRunFromFile(layout, path);
    ASSERT_FALSE(result.ok()) << "truncation at " << cut << " went undetected";
    EXPECT_EQ(result.status().code(), StatusCode::kIOError) << cut;
  }
  std::remove(path.c_str());
}

TEST(ExternalRunV3CorruptionTest, ErrorsNameFileAndFormatVersion) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 200, 17);

  // v3 corruption names the path and "run format v3" ...
  std::string v3_path = TempPath("v3_named.rsrun");
  ASSERT_TRUE(WriteRunToFile(run, layout, v3_path, CompressedIo()).ok());
  std::vector<uint8_t> corrupt = ReadFileBytes(v3_path);
  corrupt[corrupt.size() / 2] ^= 0xFF;
  WriteFileBytes(v3_path, corrupt);
  auto v3_result = ReadRunFromFile(layout, v3_path);
  ASSERT_FALSE(v3_result.ok());
  EXPECT_NE(v3_result.status().message().find(v3_path), std::string::npos)
      << v3_result.status().ToString();
  EXPECT_NE(v3_result.status().message().find("run format v3"),
            std::string::npos)
      << v3_result.status().ToString();
  std::remove(v3_path.c_str());

  // ... and v2 corruption names "run format v2".
  std::string v2_path = TempPath("v2_named.rsrun");
  ASSERT_TRUE(WriteRunToFile(run, layout, v2_path).ok());
  corrupt = ReadFileBytes(v2_path);
  corrupt[corrupt.size() / 2] ^= 0xFF;
  WriteFileBytes(v2_path, corrupt);
  auto v2_result = ReadRunFromFile(layout, v2_path);
  ASSERT_FALSE(v2_result.ok());
  EXPECT_NE(v2_result.status().message().find(v2_path), std::string::npos)
      << v2_result.status().ToString();
  EXPECT_NE(v2_result.status().message().find("run format v2"),
            std::string::npos)
      << v2_result.status().ToString();
  std::remove(v2_path.c_str());
}

TEST(ExternalRunV3RetryTest, ProbabilisticFlakesRoundTripCompressed) {
  if (!failpoint::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 600, 71);
  std::string path = TempPath("v3_flaky.rsrun");

  failpoint::ArmProbabilistic("external_run_write_short", 0.3, /*seed=*/73);
  failpoint::ArmProbabilistic("external_run_read_eintr", 0.3, /*seed=*/79);
  Status st = WriteRunToFile(run, layout, path, CompressedIo());
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto loaded = ReadRunFromFile(layout, path);
  failpoint::DisarmAll();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectRunsEqual(run, loaded.value());
  std::remove(path.c_str());
}

TEST(ExternalRunOverlapTest, CompressedWriteBehindIsByteIdenticalToSync) {
  // Write-behind moves the fwrite (not the encode) to the worker, so the v3
  // bytes on disk must match the synchronous compressed path exactly.
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 9000, 81);
  std::string sync_path = TempPath("v3_overlap_sync.rsrun");
  std::string async_path = TempPath("v3_overlap_async.rsrun");

  ASSERT_TRUE(WriteRunToFile(run, layout, sync_path, CompressedIo()).ok());

  IoWorker worker;
  SpillOverlapStats overlap;
  SpillCompressionStats stats;
  SpillIoOptions io = CompressedIo(&stats);
  io.worker = &worker;
  io.overlap_stats = &overlap;
  ASSERT_TRUE(WriteRunToFile(run, layout, async_path, io).ok());

  EXPECT_EQ(ReadFileBytes(sync_path), ReadFileBytes(async_path));
  std::remove(sync_path.c_str());
  std::remove(async_path.c_str());
}

TEST(ExternalRunOverlapTest, CompressedPrefetchingReaderYieldsIdenticalBlocks) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 9000, 83);
  std::string path = TempPath("v3_overlap_read.rsrun");
  ASSERT_TRUE(WriteRunToFile(run, layout, path, CompressedIo()).ok());

  auto collect = [&](IoWorker* worker) {
    SpillIoOptions io;
    io.worker = worker;
    ExternalRunReader reader(layout, path);
    reader.SetIoOptions(io);
    EXPECT_TRUE(reader.Open().ok());
    EXPECT_EQ(reader.format_version(), 3u);
    std::vector<std::pair<std::vector<uint8_t>, uint64_t>> blocks;
    SortedRun block;
    for (;;) {
      Status st = reader.ReadBlock(&block);
      EXPECT_TRUE(st.ok()) << st.ToString();
      if (!st.ok() || block.count == 0) break;
      blocks.emplace_back(block.key_rows, block.count);
    }
    EXPECT_EQ(reader.rows_read(), run.count);
    return blocks;
  };
  auto sync_blocks = collect(nullptr);
  IoWorker worker;
  auto async_blocks = collect(&worker);
  EXPECT_EQ(sync_blocks, async_blocks);
  EXPECT_GT(sync_blocks.size(), 1u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// v2 golden-file compatibility
// ---------------------------------------------------------------------------

/// The run frozen into tests/data/golden_v2.rsrun (written by a pre-v3 build
/// of WriteRunToFile). Pure arithmetic — no RNG — so the expectation can
/// never drift from the checked-in bytes.
SortedRun GoldenRun(const RowLayout& layout) {
  const uint64_t count = 97;
  SortedRun run;
  run.count = count;
  run.key_row_width = 12;
  run.key_rows.resize(count * run.key_row_width);
  for (uint64_t i = 0; i < run.key_rows.size(); ++i) {
    run.key_rows[i] = static_cast<uint8_t>((i * 131 + 7) & 0xFF);
  }
  run.payload = RowCollection(layout);
  DataChunk chunk;
  chunk.Initialize(layout.types(), count);
  for (uint64_t i = 0; i < count; ++i) {
    chunk.SetValue(0, i, Value::Int32(static_cast<int32_t>(i * 3 - 40)));
    if (i % 5 == 0) {
      chunk.SetValue(1, i, Value::Null(TypeId::kVarchar));
    } else {
      chunk.SetValue(1, i, Value::Varchar("golden value number " +
                                          std::to_string(i * i)));
    }
  }
  chunk.SetSize(count);
  run.payload.AppendChunk(chunk);
  return run;
}

TEST(ExternalRunCompatTest, GoldenV2FileReadsBack) {
  // Guards the promise that v2 files stay readable forever: the golden file
  // was written before format v3 existed and is checked into the repo.
  const std::string path = std::string(ROWSORT_TEST_DATA_DIR) +
                           "/golden_v2.rsrun";
  ASSERT_TRUE(std::filesystem::exists(path))
      << path << " missing — was tests/data/ checked out?";
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});

  ExternalRunReader reader(layout, path);
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.format_version(), 2u);

  auto loaded = ReadRunFromFile(layout, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectRunsEqual(GoldenRun(layout), loaded.value());
}

TEST(ExternalRunCompatTest, GoldenV2RewritesAsV3AndBack) {
  // Cross-version path: a pre-v3 file can be read, respilled in the
  // compressed format, and read again without losing a byte of content.
  // (Whole *files* are not byte-comparable across processes — v2 payload
  // rows carry string heap pointers that the reader re-targets — so
  // compatibility is defined at the row level.)
  const std::string golden = std::string(ROWSORT_TEST_DATA_DIR) +
                             "/golden_v2.rsrun";
  ASSERT_TRUE(std::filesystem::exists(golden));
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  auto loaded = ReadRunFromFile(layout, golden);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  std::string path = TempPath("golden_rewrite_v3.rsrun");
  ASSERT_TRUE(WriteRunToFile(loaded.value(), layout, path,
                             CompressedIo()).ok());
  auto back = ReadRunFromFile(layout, path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectRunsEqual(GoldenRun(layout), back.value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rowsort
