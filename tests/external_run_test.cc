// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include "common/cancellation.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "common/retry.h"
#include "engine/external_run.h"
#include "engine/sort_engine.h"

namespace rowsort {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

SortedRun MakeRun(const RowLayout& layout, uint64_t count, uint64_t seed) {
  Random rng(seed);
  SortedRun run;
  run.count = count;
  run.key_row_width = 16;
  run.key_rows.resize(count * run.key_row_width);
  for (auto& b : run.key_rows) b = static_cast<uint8_t>(rng.Next32());
  run.payload = RowCollection(layout);

  DataChunk chunk;
  chunk.Initialize(layout.types(), count);
  for (uint64_t i = 0; i < count; ++i) {
    chunk.SetValue(0, i, Value::Int32(static_cast<int32_t>(i)));
    if (i % 7 == 0) {
      chunk.SetValue(1, i, Value::Null(TypeId::kVarchar));
    } else if (i % 3 == 0) {
      chunk.SetValue(1, i,
                     Value::Varchar("long string payload number " +
                                    std::to_string(i) + " with extra bytes"));
    } else {
      chunk.SetValue(1, i, Value::Varchar("s" + std::to_string(i % 11)));
    }
  }
  chunk.SetSize(count);
  run.payload.AppendChunk(chunk);
  return run;
}

TEST(ExternalRunTest, RoundTripPreservesEverything) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 500, 42);
  std::string path = TempPath("roundtrip.rsrun");

  ASSERT_TRUE(WriteRunToFile(run, layout, path).ok());
  auto loaded = ReadRunFromFile(layout, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const SortedRun& back = loaded.value();

  ASSERT_EQ(back.count, run.count);
  ASSERT_EQ(back.key_row_width, run.key_row_width);
  EXPECT_EQ(back.key_rows, run.key_rows);
  for (uint64_t i = 0; i < run.count; ++i) {
    EXPECT_EQ(back.payload.GetValue(i, 0), run.payload.GetValue(i, 0)) << i;
    EXPECT_EQ(back.payload.GetValue(i, 1), run.payload.GetValue(i, 1)) << i;
  }
  std::remove(path.c_str());
}

TEST(ExternalRunTest, EmptyRunRoundTrips) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run;
  run.count = 0;
  run.key_row_width = 16;
  run.payload = RowCollection(layout);
  std::string path = TempPath("empty.rsrun");
  ASSERT_TRUE(WriteRunToFile(run, layout, path).ok());
  auto loaded = ReadRunFromFile(layout, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().count, 0u);
  std::remove(path.c_str());
}

TEST(ExternalRunTest, MissingFileReportsIOError) {
  RowLayout layout({TypeId::kInt32});
  auto result = ReadRunFromFile(layout, TempPath("does_not_exist.rsrun"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(ExternalRunTest, WrongMagicRejected) {
  std::string path = TempPath("garbage.rsrun");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char garbage[32] = "not a run file at all, sorry!";
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);
  RowLayout layout({TypeId::kInt32});
  auto result = ReadRunFromFile(layout, path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ExternalRunTest, LayoutMismatchRejected) {
  RowLayout wide({TypeId::kInt32, TypeId::kInt64, TypeId::kDouble});
  RowLayout narrow({TypeId::kInt32});
  SortedRun run;
  run.count = 0;
  run.key_row_width = 8;
  run.payload = RowCollection(wide);
  std::string path = TempPath("mismatch.rsrun");
  ASSERT_TRUE(WriteRunToFile(run, wide, path).ok());
  auto result = ReadRunFromFile(narrow, path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<uint8_t> bytes(static_cast<uint64_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

TEST(ExternalRunCorruptionTest, SingleBitFlipsAreDetected) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 300, 7);
  std::string path = TempPath("bitflip.rsrun");
  ASSERT_TRUE(WriteRunToFile(run, layout, path).ok());
  const std::vector<uint8_t> pristine = ReadFileBytes(path);

  // Flip one bit at a spread of positions across header, key rows, payload
  // rows and the string section; every flip must surface as a non-OK load
  // (never garbage rows, never a crash).
  for (uint64_t pos = 0; pos < pristine.size(); pos += 211) {
    std::vector<uint8_t> corrupt = pristine;
    corrupt[pos] ^= 0x10;
    WriteFileBytes(path, corrupt);
    auto result = ReadRunFromFile(layout, path);
    ASSERT_FALSE(result.ok()) << "flip at byte " << pos << " went undetected";
    // Flips inside the magic/version fields read as "not a run file"; all
    // other corruption is an I/O-level integrity failure.
    if (pos >= 12) {
      EXPECT_EQ(result.status().code(), StatusCode::kIOError) << pos;
    }
  }
  std::remove(path.c_str());
}

TEST(ExternalRunCorruptionTest, TruncationsAreDetected) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 300, 11);
  std::string path = TempPath("truncate.rsrun");
  ASSERT_TRUE(WriteRunToFile(run, layout, path).ok());
  const std::vector<uint8_t> pristine = ReadFileBytes(path);
  ASSERT_GT(pristine.size(), 64u);

  // Cut at the section boundaries and at awkward mid-section points: inside
  // the header, right after it, mid key rows, and one byte short of the end
  // (the final block's CRC).
  const uint64_t cuts[] = {4,  12, 43, 44, 60, pristine.size() / 3,
                           pristine.size() - 1};
  for (uint64_t cut : cuts) {
    WriteFileBytes(path, std::vector<uint8_t>(pristine.begin(),
                                              pristine.begin() + cut));
    auto result = ReadRunFromFile(layout, path);
    ASSERT_FALSE(result.ok()) << "truncation at " << cut << " went undetected";
    EXPECT_EQ(result.status().code(), StatusCode::kIOError) << cut;
  }
  std::remove(path.c_str());
}

TEST(ExternalRunStreamingTest, ReaderYieldsBoundedBlocks) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 2500, 3);
  std::string path = TempPath("streaming.rsrun");

  ExternalRunWriter writer(layout, path);
  ASSERT_TRUE(writer.Open(run.key_row_width).ok());
  // Uneven slices, including an empty one (which must write no block).
  ASSERT_TRUE(writer.WriteSlice(run, 0, 1000).ok());
  ASSERT_TRUE(writer.WriteSlice(run, 1000, 2000).ok());
  ASSERT_TRUE(writer.WriteSlice(run, 2000, 2000).ok());  // empty: no block
  ASSERT_TRUE(writer.WriteSlice(run, 2000, 2500).ok());
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(writer.rows_written(), 2500u);

  ExternalRunReader reader(layout, path);
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.row_count(), 2500u);
  EXPECT_EQ(reader.key_row_width(), run.key_row_width);
  SortedRun block;
  uint64_t seen = 0, blocks = 0;
  while (true) {
    ASSERT_TRUE(reader.ReadBlock(&block).ok());
    if (block.count == 0) break;
    // Spot-check alignment of keys and payload against the source run.
    for (uint64_t i = 0; i < block.count; i += 97) {
      ASSERT_EQ(std::memcmp(block.KeyRow(i), run.KeyRow(seen + i),
                            run.key_row_width),
                0);
      ASSERT_EQ(block.payload.GetValue(i, 1), run.payload.GetValue(seen + i, 1));
    }
    seen += block.count;
    ++blocks;
  }
  EXPECT_EQ(seen, 2500u);
  EXPECT_EQ(blocks, 3u);  // one block per non-empty slice
  std::remove(path.c_str());
}

TEST(ExternalRunStreamingTest, UnfinishedWriterLeavesNoFiles) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 100, 5);
  std::string path = TempPath("abandoned.rsrun");
  {
    ExternalRunWriter writer(layout, path);
    ASSERT_TRUE(writer.Open(run.key_row_width).ok());
    ASSERT_TRUE(writer.WriteSlice(run, 0, 100).ok());
    // The target must not exist while the write is in flight (temp + rename).
    EXPECT_FALSE(std::filesystem::exists(path));
    // No Finish(): destructor must abandon and clean up the temp file.
  }
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(ExternalRunStreamingTest, FailpointDiskFullSurfacesAsIOError) {
  if (!failpoint::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 50, 9);
  std::string path = TempPath("diskfull.rsrun");

  failpoint::Arm("external_run_write", /*skip=*/1, /*fires=*/1);
  Status st = WriteRunToFile(run, layout, path);
  failpoint::DisarmAll();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  // A failed write must leave neither the target nor the temp file behind.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

void ExpectRunsEqual(const SortedRun& a, const SortedRun& b) {
  ASSERT_EQ(a.count, b.count);
  ASSERT_EQ(a.key_row_width, b.key_row_width);
  EXPECT_EQ(a.key_rows, b.key_rows);
  for (uint64_t i = 0; i < a.count; ++i) {
    ASSERT_EQ(a.payload.GetValue(i, 0), b.payload.GetValue(i, 0)) << i;
    ASSERT_EQ(a.payload.GetValue(i, 1), b.payload.GetValue(i, 1)) << i;
  }
}

TEST(ExternalRunRetryTest, ShortWritesAreResumedNotFatal) {
  if (!failpoint::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 400, 33);
  std::string path = TempPath("shortwrite.rsrun");

  // Every write comes back short (the stream takes half the buffer) until
  // the transfer is down to one byte. Before the retry layer this was a
  // hard IOError on the first shortfall; now the stream resumes where it
  // stopped and the file must round-trip bit-exactly.
  RetryStats stats;
  SpillIoOptions io;
  io.retry_stats = &stats;
  failpoint::Arm("external_run_write_short", /*skip=*/0, /*fires=*/0);
  Status st = WriteRunToFile(run, layout, path, io);
  failpoint::DisarmAll();
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_GT(stats.count(), 0u) << "failpoint never fired";

  auto loaded = ReadRunFromFile(layout, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectRunsEqual(run, loaded.value());
  std::remove(path.c_str());
}

TEST(ExternalRunRetryTest, InterruptedReadsAreResumedNotFatal) {
  if (!failpoint::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 400, 35);
  std::string path = TempPath("eintr.rsrun");
  ASSERT_TRUE(WriteRunToFile(run, layout, path).ok());

  // Every block read is interrupted mid-transfer (EINTR-style short read).
  RetryStats stats;
  SpillIoOptions io;
  io.retry_stats = &stats;
  failpoint::Arm("external_run_read_eintr", /*skip=*/0, /*fires=*/0);
  auto loaded = ReadRunFromFile(layout, path, io);
  failpoint::DisarmAll();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_GT(stats.count(), 0u) << "failpoint never fired";
  ExpectRunsEqual(run, loaded.value());
  std::remove(path.c_str());
}

TEST(ExternalRunRetryTest, ProbabilisticFlakesRoundTrip) {
  if (!failpoint::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 600, 37);
  std::string path = TempPath("flaky.rsrun");

  // 30% of transfers come back short, both directions, deterministically
  // seeded: the retry layer must absorb all of it.
  failpoint::ArmProbabilistic("external_run_write_short", 0.3, /*seed=*/39);
  failpoint::ArmProbabilistic("external_run_read_eintr", 0.3, /*seed=*/41);
  Status st = WriteRunToFile(run, layout, path);
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto loaded = ReadRunFromFile(layout, path);
  failpoint::DisarmAll();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectRunsEqual(run, loaded.value());
  std::remove(path.c_str());
}

TEST(ExternalRunOverlapTest, WriteBehindFileIsByteIdenticalToSync) {
  // The overlapped writer moves the fwrite to a background thread but must
  // put the exact same bytes on disk — same framing, same CRCs.
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 9000, 51);  // several blocks
  std::string sync_path = TempPath("overlap_sync.rsrun");
  std::string async_path = TempPath("overlap_async.rsrun");

  ASSERT_TRUE(WriteRunToFile(run, layout, sync_path).ok());

  IoWorker worker;
  SpillOverlapStats stats;
  SpillIoOptions io;
  io.worker = &worker;
  io.overlap_stats = &stats;
  ASSERT_TRUE(WriteRunToFile(run, layout, async_path, io).ok());

  EXPECT_EQ(ReadFileBytes(sync_path), ReadFileBytes(async_path));
  std::remove(sync_path.c_str());
  std::remove(async_path.c_str());
}

TEST(ExternalRunOverlapTest, PrefetchingReaderYieldsIdenticalBlocks) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 9000, 53);
  std::string path = TempPath("overlap_read.rsrun");
  ASSERT_TRUE(WriteRunToFile(run, layout, path).ok());

  // Collect the block stream synchronously and with readahead; the blocks
  // handed out must match row for row.
  auto collect = [&](IoWorker* worker, SpillOverlapStats* stats) {
    SpillIoOptions io;
    io.worker = worker;
    io.overlap_stats = stats;
    ExternalRunReader reader(layout, path);
    reader.SetIoOptions(io);
    EXPECT_TRUE(reader.Open().ok());
    std::vector<std::pair<std::vector<uint8_t>, uint64_t>> blocks;
    SortedRun block;
    for (;;) {
      Status st = reader.ReadBlock(&block);
      EXPECT_TRUE(st.ok()) << st.ToString();
      if (!st.ok() || block.count == 0) break;
      blocks.emplace_back(block.key_rows, block.count);
    }
    EXPECT_EQ(reader.rows_read(), run.count);
    return blocks;
  };
  auto sync_blocks = collect(nullptr, nullptr);

  IoWorker worker;
  SpillOverlapStats stats;
  auto async_blocks = collect(&worker, &stats);
  EXPECT_EQ(sync_blocks, async_blocks);
  // Exactly one readahead is in flight at a time; every block is either a
  // prefetch hit or was waited for — the file has > 1 block, so at least
  // the hit-or-wait machinery must have engaged.
  EXPECT_GT(sync_blocks.size(), 1u);
  EXPECT_LE(stats.blocks_prefetched.load(), sync_blocks.size());
  std::remove(path.c_str());
}

TEST(ExternalRunOverlapTest, WorkerThreadFailpointsStillHealTransients) {
  if (!failpoint::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  // Failpoints are process-global, so arming them here makes them fire on
  // the background I/O thread: the retry/backoff machinery must have moved
  // to the worker along with the fwrite/fread.
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 6000, 57);
  std::string path = TempPath("overlap_flaky.rsrun");

  IoWorker worker;
  RetryStats stats;
  SpillIoOptions io;
  io.worker = &worker;
  io.retry_stats = &stats;
  failpoint::ArmProbabilistic("external_run_write_short", 0.3, /*seed=*/61);
  failpoint::ArmProbabilistic("external_run_read_eintr", 0.3, /*seed=*/63);
  Status st = WriteRunToFile(run, layout, path, io);
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto loaded = ReadRunFromFile(layout, path, io);
  failpoint::DisarmAll();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_GT(stats.count(), 0u) << "failpoints never fired on the worker";
  ExpectRunsEqual(run, loaded.value());
  std::remove(path.c_str());
}

TEST(ExternalRunOverlapTest, BackgroundWriteFailureSurfacesSticky) {
  if (!failpoint::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 4096, 59);
  std::string path = TempPath("overlap_diskfull.rsrun");

  // Skip the header write, then fail permanently (disk full) — on the
  // *worker* thread. The error must come back through the sticky Status on
  // a later WriteSlice/Finish, and no file may be left behind.
  {
    IoWorker worker;
    SpillIoOptions io;
    io.worker = &worker;
    ExternalRunWriter writer(layout, path);
    writer.SetIoOptions(io);
    ASSERT_TRUE(writer.Open(run.key_row_width).ok());
    failpoint::Arm("external_run_write", /*skip=*/0, /*fires=*/1);
    Status st;
    for (int i = 0; i < 4 && st.ok(); ++i) {
      st = writer.WriteSlice(run, 0, run.count);
    }
    if (st.ok()) st = writer.Finish();
    failpoint::DisarmAll();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kIOError);
    // Sticky: every later call reports the same failure.
    EXPECT_FALSE(writer.WriteSlice(run, 0, 1).ok());
    EXPECT_FALSE(writer.Finish().ok());
  }
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(ExternalRunOverlapTest, CancelMidWriteBehindLeavesNoFiles) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 4096, 67);
  std::string path = TempPath("overlap_cancel.rsrun");

  CancellationSource source;
  {
    IoWorker worker;
    SpillIoOptions io;
    io.worker = &worker;
    io.cancellation = source.token();
    ExternalRunWriter writer(layout, path);
    writer.SetIoOptions(io);
    ASSERT_TRUE(writer.Open(run.key_row_width).ok());
    ASSERT_TRUE(writer.WriteSlice(run, 0, run.count).ok());
    // A block is (or was) in flight on the worker; cancelling now must stop
    // the next submission and the abandon must drain + delete the temp.
    source.RequestCancel();
    Status st = writer.WriteSlice(run, 0, run.count);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kCancelled);
  }
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(ExternalRunRetryTest, CancelledTokenAbortsSpillIo) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  SortedRun run = MakeRun(layout, 200, 43);
  std::string path = TempPath("cancelled.rsrun");

  CancellationSource source;
  source.RequestCancel();
  SpillIoOptions io;
  io.cancellation = source.token();
  Status st = WriteRunToFile(run, layout, path, io);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  // The abandoned write must leave no files.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  // The reader honours the token the same way.
  ASSERT_TRUE(WriteRunToFile(run, layout, path).ok());
  auto loaded = ReadRunFromFile(layout, path, io);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCancelled);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rowsort
