// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Randomized oracle tests for the sort-consuming operators: window ranks
// against a std::stable_sort oracle, merge join against a nested-loop
// oracle, aggregate against a map oracle — random shapes every seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>

#include "common/failpoint.h"
#include "common/random.h"
#include "engine/aggregate.h"
#include "engine/merge_join.h"
#include "engine/top_n.h"
#include "engine/window.h"

namespace rowsort {
namespace {

Table RandomTwoIntTable(uint64_t rows, uint64_t part_range,
                        uint64_t value_range, double null_prob, Random& rng) {
  Table table({TypeId::kInt32, TypeId::kInt32, TypeId::kInt64});
  uint64_t produced = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = table.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      chunk.SetValue(0, r,
                     rng.Bernoulli(null_prob)
                         ? Value::Null(TypeId::kInt32)
                         : Value::Int32(static_cast<int32_t>(
                               rng.Uniform(part_range))));
      chunk.SetValue(1, r,
                     rng.Bernoulli(null_prob)
                         ? Value::Null(TypeId::kInt32)
                         : Value::Int32(static_cast<int32_t>(
                               rng.Uniform(value_range))));
      chunk.SetValue(2, r, Value::Int64(static_cast<int64_t>(produced + r)));
    }
    chunk.SetSize(n);
    table.Append(std::move(chunk));
    produced += n;
  }
  return table;
}

class OperatorFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OperatorFuzzTest, WindowRanksMatchOracle) {
  Random rng(GetParam() * 101 + 7);
  uint64_t rows = rng.Uniform(3000);
  Table input = RandomTwoIntTable(rows, 1 + rng.Uniform(8),
                                  1 + rng.Uniform(20),
                                  rng.NextDouble() * 0.3, rng);

  WindowSpec spec;
  spec.partition_by = {0};
  spec.order_by = {SortColumn(1, TypeId::kInt32, OrderType::kAscending,
                              NullOrder::kNullsLast)};
  Table out = ComputeWindow(input, spec,
                            {WindowFunction::kRowNumber, WindowFunction::kRank,
                             WindowFunction::kDenseRank}).ValueOrDie();
  ASSERT_EQ(out.row_count(), rows);

  // Oracle: group rows by partition string, sort each group's values with
  // NULLS LAST, compute ranks.
  struct OracleRow {
    std::string part;
    std::string value;  // "" for NULL; sorts via pair(is_null, value)
    bool value_null;
    int32_t value_int;
  };
  std::map<std::string, std::vector<OracleRow>> groups;
  for (uint64_t ci = 0; ci < input.ChunkCount(); ++ci) {
    for (uint64_t r = 0; r < input.chunk(ci).size(); ++r) {
      Value p = input.chunk(ci).GetValue(0, r);
      Value v = input.chunk(ci).GetValue(1, r);
      OracleRow row;
      row.part = p.ToString();
      row.value_null = v.is_null();
      row.value_int = v.is_null() ? 0 : v.int32_value();
      groups[row.part].push_back(row);
    }
  }
  // Expected rank sequences per partition.
  std::map<std::string, std::vector<std::array<int64_t, 3>>> expected;
  for (auto& [part, rows_in_group] : groups) {
    std::stable_sort(rows_in_group.begin(), rows_in_group.end(),
                     [](const OracleRow& a, const OracleRow& b) {
                       if (a.value_null != b.value_null) return b.value_null;
                       return a.value_int < b.value_int;
                     });
    int64_t rn = 0, rank = 0, dense = 0;
    bool first = true;
    OracleRow prev{};
    for (const auto& row : rows_in_group) {
      ++rn;
      bool new_peer = first || row.value_null != prev.value_null ||
                      (!row.value_null && row.value_int != prev.value_int);
      if (new_peer) {
        rank = rn;
        ++dense;
      }
      expected[part].push_back({rn, rank, dense});
      prev = row;
      first = false;
    }
  }

  // Walk the operator output per partition and compare rank triples.
  std::map<std::string, uint64_t> cursor;
  for (uint64_t ci = 0; ci < out.ChunkCount(); ++ci) {
    for (uint64_t r = 0; r < out.chunk(ci).size(); ++r) {
      std::string part = out.chunk(ci).GetValue(0, r).ToString();
      uint64_t pos = cursor[part]++;
      ASSERT_LT(pos, expected[part].size()) << "partition " << part;
      const auto& want = expected[part][pos];
      ASSERT_EQ(out.chunk(ci).GetValue(3, r).int64_value(), want[0])
          << "row_number, partition " << part << " pos " << pos;
      ASSERT_EQ(out.chunk(ci).GetValue(4, r).int64_value(), want[1])
          << "rank, partition " << part << " pos " << pos;
      ASSERT_EQ(out.chunk(ci).GetValue(5, r).int64_value(), want[2])
          << "dense_rank, partition " << part << " pos " << pos;
    }
  }
}

TEST_P(OperatorFuzzTest, MergeJoinMatchesNestedLoop) {
  Random rng(GetParam() * 211 + 3);
  Table left = RandomTwoIntTable(rng.Uniform(300), 1 + rng.Uniform(20), 10,
                                 rng.NextDouble() * 0.3, rng);
  Table right = RandomTwoIntTable(rng.Uniform(300), 1 + rng.Uniform(20), 10,
                                  rng.NextDouble() * 0.3, rng);
  Table joined = SortMergeJoin(left, right, {{0, 0}}).ValueOrDie();

  uint64_t expected = 0;
  for (uint64_t lci = 0; lci < left.ChunkCount(); ++lci) {
    for (uint64_t lr = 0; lr < left.chunk(lci).size(); ++lr) {
      Value lv = left.chunk(lci).GetValue(0, lr);
      if (lv.is_null()) continue;
      for (uint64_t rci = 0; rci < right.ChunkCount(); ++rci) {
        for (uint64_t rr = 0; rr < right.chunk(rci).size(); ++rr) {
          Value rv = right.chunk(rci).GetValue(0, rr);
          if (!rv.is_null() && lv == rv) ++expected;
        }
      }
    }
  }
  EXPECT_EQ(joined.row_count(), expected);
}

TEST_P(OperatorFuzzTest, AggregateMatchesMapOracle) {
  Random rng(GetParam() * 307 + 11);
  Table input = RandomTwoIntTable(rng.Uniform(4000), 1 + rng.Uniform(50), 100,
                                  rng.NextDouble() * 0.3, rng);
  HashAggregate agg({0},
                    {{AggregateFunction::kCount, 1},
                     {AggregateFunction::kSum, 1},
                     {AggregateFunction::kMin, 1},
                     {AggregateFunction::kMax, 1}},
                    input.types());
  for (uint64_t c = 0; c < input.ChunkCount(); ++c) agg.Sink(input.chunk(c));
  Table result = agg.Finalize();

  struct OracleState {
    int64_t count = 0;
    int64_t sum = 0;
    int32_t min = INT32_MAX;
    int32_t max = INT32_MIN;
  };
  std::map<std::string, OracleState> oracle;
  for (uint64_t ci = 0; ci < input.ChunkCount(); ++ci) {
    for (uint64_t r = 0; r < input.chunk(ci).size(); ++r) {
      auto& state = oracle[input.chunk(ci).GetValue(0, r).ToString()];
      Value v = input.chunk(ci).GetValue(1, r);
      if (v.is_null()) continue;
      ++state.count;
      state.sum += v.int32_value();
      state.min = std::min(state.min, v.int32_value());
      state.max = std::max(state.max, v.int32_value());
    }
  }
  ASSERT_EQ(result.row_count(), oracle.size());
  for (uint64_t ci = 0; ci < result.ChunkCount(); ++ci) {
    for (uint64_t r = 0; r < result.chunk(ci).size(); ++r) {
      std::string key = result.chunk(ci).GetValue(0, r).ToString();
      auto it = oracle.find(key);
      ASSERT_NE(it, oracle.end()) << key;
      EXPECT_EQ(result.chunk(ci).GetValue(1, r).int64_value(),
                it->second.count);
      if (it->second.count == 0) {
        EXPECT_TRUE(result.chunk(ci).GetValue(2, r).is_null());
        EXPECT_TRUE(result.chunk(ci).GetValue(3, r).is_null());
      } else {
        EXPECT_EQ(result.chunk(ci).GetValue(2, r).int64_value(),
                  it->second.sum);
        EXPECT_EQ(result.chunk(ci).GetValue(3, r).int32_value(),
                  it->second.min);
        EXPECT_EQ(result.chunk(ci).GetValue(4, r).int32_value(),
                  it->second.max);
      }
      oracle.erase(it);
    }
  }
}

// Hostile-environment sweep over the hardened operators: every round runs
// Top-N, window, or merge join under a deadline that fires at a random point
// mid-operation, random explicit cancels between Top-N chunks, and (on odd
// rounds) probabilistic spill-I/O and allocation failpoints with a memory
// limit tight enough to force spilling. Whatever the outcome, the budget
// chain must balance back to zero and no temp file may survive.
TEST_P(OperatorFuzzTest, CancelAndFaultsLeaveNoResidue) {
  Random rng(GetParam() * 401 + 17);
  Table input = RandomTwoIntTable(2000 + rng.Uniform(3000),
                                  1 + rng.Uniform(10), 50,
                                  rng.NextDouble() * 0.2, rng);
  Table right = RandomTwoIntTable(500 + rng.Uniform(1000),
                                  1 + rng.Uniform(10), 50,
                                  rng.NextDouble() * 0.2, rng);

  std::filesystem::path spill_dir =
      std::filesystem::temp_directory_path() /
      ("rowsort_opfuzz_" + std::to_string(GetParam()));
  std::filesystem::create_directories(spill_dir);

  // Column 2 is a unique row id, so both specs are total orders.
  SortSpec spec({SortColumn(1, TypeId::kInt32), SortColumn(2, TypeId::kInt64)});
  WindowSpec wspec;
  wspec.partition_by = {0};
  wspec.order_by = {SortColumn(1, TypeId::kInt32),
                    SortColumn(2, TypeId::kInt64)};

  for (int round = 0; round < 6; ++round) {
    const bool with_faults = round % 2 == 1;
    if (with_faults) {
      failpoint::ArmProbabilistic("external_run_write_short", 0.05,
                                  GetParam() * 13 + round);
      failpoint::ArmProbabilistic("external_run_read_eintr", 0.05,
                                  GetParam() * 29 + round);
      failpoint::Arm("top_n_alloc", rng.Uniform(40), 1);
    }
    CancellationSource source(
        Deadline::AfterMicros(static_cast<int64_t>(rng.Uniform(3000))));
    MemoryTracker parent(0);
    SortEngineConfig config;
    config.parent_tracker = &parent;
    config.cancellation = source.token();
    config.run_size_rows = 1024;
    // Tight on fault rounds so runs actually spill and the I/O failpoints
    // have something to hit.
    config.memory_limit_bytes = with_faults ? 96ull << 10 : 0;
    config.spill_directory = spill_dir.string();

    Status st;
    switch (rng.Uniform(3)) {
      case 0: {
        TopN top_n(spec, input.types(), 1 + rng.Uniform(200), config);
        for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
          if (rng.Bernoulli(0.05)) source.RequestCancel();
          if (!top_n.Sink(input.chunk(c)).ok()) break;
        }
        st = top_n.Finalize().status();
        break;
      }
      case 1:
        st = ComputeWindow(input, wspec, {WindowFunction::kRank}, config)
                 .status();
        break;
      default:
        st = SortMergeJoin(input, right, {{0, 0}}, config).status();
        break;
    }
    if (!st.ok()) {
      EXPECT_TRUE(st.IsCancellation() || st.IsOutOfMemory() ||
                  st.code() == StatusCode::kIOError ||
                  st.IsResourceExhausted())
          << st.ToString();
    }
    failpoint::DisarmAll();
    // The budget chain balances to zero once the operator is gone...
    EXPECT_EQ(parent.reserved(), 0u) << "round " << round;
    // ...and failed or cancelled runs left no temp files behind.
    uint64_t leftover = 0;
    for (auto it = std::filesystem::directory_iterator(spill_dir);
         it != std::filesystem::directory_iterator(); ++it) {
      ++leftover;
    }
    EXPECT_EQ(leftover, 0u) << "round " << round;
  }
  std::filesystem::remove_all(spill_dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperatorFuzzTest,
                         ::testing::Range<uint64_t>(0, 15),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace rowsort
