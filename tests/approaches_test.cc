// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Every micro-benchmark sorting approach (paper §IV-§VI) must produce a
// lexicographically sorted permutation on every distribution the paper
// sweeps, under both base algorithms.
#include <gtest/gtest.h>

#include "approaches/approaches.h"
#include "workload/microbench.h"

namespace rowsort {
namespace {

struct ApproachCase {
  MicroDistribution distribution;
  double correlation;
  uint64_t num_cols;
  uint64_t num_rows;
};

MicroColumns Data(const ApproachCase& c, uint64_t seed = 7) {
  MicroWorkload workload;
  workload.num_rows = c.num_rows;
  workload.num_key_columns = c.num_cols;
  workload.distribution = c.distribution;
  workload.correlation = c.correlation;
  workload.seed = seed;
  return GenerateMicroColumns(workload);
}

class ApproachesTest : public ::testing::TestWithParam<ApproachCase> {};

TEST_P(ApproachesTest, ColumnarTupleAtATime) {
  auto columns = Data(GetParam());
  for (auto algo : {BaseSortAlgo::kIntroSort, BaseSortAlgo::kStableMergeSort}) {
    auto idxs = MakeRowIndices(GetParam().num_rows);
    SortIndicesTupleAtATime(columns, idxs, algo);
    EXPECT_TRUE(IsSortedOrder(columns, ExtractOrder(idxs)));
  }
}

TEST_P(ApproachesTest, ColumnarSubsort) {
  auto columns = Data(GetParam());
  for (auto algo : {BaseSortAlgo::kIntroSort, BaseSortAlgo::kStableMergeSort}) {
    auto idxs = MakeRowIndices(GetParam().num_rows);
    SortIndicesSubsort(columns, idxs, algo);
    EXPECT_TRUE(IsSortedOrder(columns, ExtractOrder(idxs)));
  }
}

TEST_P(ApproachesTest, RowTupleStatic) {
  auto columns = Data(GetParam());
  for (auto algo : {BaseSortAlgo::kIntroSort, BaseSortAlgo::kStableMergeSort}) {
    MicroRows rows = BuildMicroRows(columns);
    SortMicroRowsTupleStatic(rows, algo);
    EXPECT_TRUE(IsSortedOrder(columns, ExtractOrder(rows)));
  }
}

TEST_P(ApproachesTest, RowTupleDynamic) {
  auto columns = Data(GetParam());
  for (auto algo : {BaseSortAlgo::kIntroSort, BaseSortAlgo::kStableMergeSort}) {
    MicroRows rows = BuildMicroRows(columns);
    SortMicroRowsTupleDynamic(rows, algo);
    EXPECT_TRUE(IsSortedOrder(columns, ExtractOrder(rows)));
  }
}

TEST_P(ApproachesTest, RowSubsort) {
  auto columns = Data(GetParam());
  for (auto algo : {BaseSortAlgo::kIntroSort, BaseSortAlgo::kStableMergeSort}) {
    MicroRows rows = BuildMicroRows(columns);
    SortMicroRowsSubsort(rows, algo);
    EXPECT_TRUE(IsSortedOrder(columns, ExtractOrder(rows)));
  }
}

TEST_P(ApproachesTest, NormalizedMemcmp) {
  auto columns = Data(GetParam());
  for (auto algo : {BaseSortAlgo::kIntroSort, BaseSortAlgo::kStableMergeSort}) {
    NormalizedRows rows = BuildNormalizedRows(columns);
    SortNormalizedRowsMemcmp(rows, algo);
    EXPECT_TRUE(IsSortedOrder(columns, ExtractOrder(rows)));
  }
}

TEST_P(ApproachesTest, NormalizedPdq) {
  auto columns = Data(GetParam());
  NormalizedRows rows = BuildNormalizedRows(columns);
  SortNormalizedRowsPdq(rows);
  EXPECT_TRUE(IsSortedOrder(columns, ExtractOrder(rows)));
}

TEST_P(ApproachesTest, NormalizedRadix) {
  auto columns = Data(GetParam());
  NormalizedRows rows = BuildNormalizedRows(columns);
  RadixSortStats stats;
  SortNormalizedRowsRadix(rows, &stats);
  EXPECT_TRUE(IsSortedOrder(columns, ExtractOrder(rows)));
  if (GetParam().num_rows > 1) {
    EXPECT_GT(stats.passes + stats.skipped_passes + stats.insertion_sorts, 0u);
  }
}

std::vector<ApproachCase> AllCases() {
  std::vector<ApproachCase> cases;
  struct Dist {
    MicroDistribution d;
    double p;
  };
  for (Dist dist : {Dist{MicroDistribution::kRandom, 0.0},
                    Dist{MicroDistribution::kCorrelated, 0.0},
                    Dist{MicroDistribution::kCorrelated, 0.5},
                    Dist{MicroDistribution::kCorrelated, 1.0}}) {
    for (uint64_t cols : {1, 2, 3, 4}) {
      for (uint64_t rows : {0ull, 1ull, 100ull, 4096ull}) {
        cases.push_back({dist.d, dist.p, cols, rows});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ApproachesTest, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<ApproachCase>& info) {
      const auto& c = info.param;
      std::string dist =
          c.distribution == MicroDistribution::kRandom
              ? "Random"
              : "Corr" + std::to_string(static_cast<int>(c.correlation * 100));
      return dist + "_c" + std::to_string(c.num_cols) + "_n" +
             std::to_string(c.num_rows);
    });

TEST(ApproachesAgreementTest, StableApproachesAgreeExactly) {
  // With the stable base algorithm, columnar tuple-at-a-time defines the
  // reference permutation; every other stable-sorted approach must match it
  // exactly (including tie order).
  MicroWorkload w;
  w.num_rows = 5000;
  w.num_key_columns = 3;
  w.distribution = MicroDistribution::kCorrelated;
  w.correlation = 0.7;
  auto columns = GenerateMicroColumns(w);

  auto ref = MakeRowIndices(w.num_rows);
  SortIndicesTupleAtATime(columns, ref, BaseSortAlgo::kStableMergeSort);
  auto reference = ExtractOrder(ref);

  {
    MicroRows rows = BuildMicroRows(columns);
    SortMicroRowsTupleStatic(rows, BaseSortAlgo::kStableMergeSort);
    EXPECT_EQ(ExtractOrder(rows), reference) << "row static";
  }
  {
    MicroRows rows = BuildMicroRows(columns);
    SortMicroRowsTupleDynamic(rows, BaseSortAlgo::kStableMergeSort);
    EXPECT_EQ(ExtractOrder(rows), reference) << "row dynamic";
  }
  {
    NormalizedRows rows = BuildNormalizedRows(columns);
    SortNormalizedRowsMemcmp(rows, BaseSortAlgo::kStableMergeSort);
    EXPECT_EQ(ExtractOrder(rows), reference) << "normalized memcmp";
  }
  {
    // LSD radix is stable as well.
    NormalizedRows rows = BuildNormalizedRows(columns);
    std::vector<uint8_t> aux(rows.buffer.size());
    RadixSortConfig config{rows.row_width, 0, rows.key_width};
    RadixSortLsd(rows.buffer.data(), aux.data(), rows.count, config);
    EXPECT_EQ(ExtractOrder(rows), reference) << "LSD radix";
  }
}

TEST(MicroRowsTest, LayoutMatchesPaperStruct) {
  MicroWorkload w;
  w.num_rows = 4;
  w.num_key_columns = 3;
  auto columns = GenerateMicroColumns(w);
  MicroRows rows = BuildMicroRows(columns);
  EXPECT_EQ(rows.row_width, 24u);  // 3x4 keys + pad + 8 row id
  EXPECT_EQ(rows.row_id_offset, 16u);
  for (uint64_t r = 0; r < 4; ++r) {
    EXPECT_EQ(rows.RowId(r), r);
    for (uint64_t k = 0; k < 3; ++k) {
      EXPECT_EQ(rows.Key(r, k), columns[k][r]);
    }
  }
}

TEST(NormalizedRowsTest, KeysAreBigEndian) {
  MicroColumns columns = {{0x01020304u}};
  NormalizedRows rows = BuildNormalizedRows(columns);
  EXPECT_EQ(rows.key_width, 4u);
  EXPECT_EQ(rows.buffer[0], 0x01);
  EXPECT_EQ(rows.buffer[1], 0x02);
  EXPECT_EQ(rows.buffer[2], 0x03);
  EXPECT_EQ(rows.buffer[3], 0x04);
}

TEST(IsSortedOrderTest, RejectsBadPermutations) {
  MicroColumns columns = {{5, 3, 9}};
  EXPECT_TRUE(IsSortedOrder(columns, {1, 0, 2}));
  EXPECT_FALSE(IsSortedOrder(columns, {0, 1, 2}));   // not sorted
  EXPECT_FALSE(IsSortedOrder(columns, {1, 1, 2}));   // duplicate id
  EXPECT_FALSE(IsSortedOrder(columns, {1, 0}));      // wrong size
  EXPECT_FALSE(IsSortedOrder(columns, {1, 0, 99}));  // out of range
}

}  // namespace
}  // namespace rowsort
