// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Randomized property test: generate random schemas, random ORDER BY specs
// (types, directions, NULL orders, collations, prefix lengths), random data
// (with NULLs and prefix-tied strings), random engine configurations — and
// verify the engine output is a sorted permutation every time.
#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "engine/sort_engine.h"
#include "workload/tables.h"

namespace rowsort {
namespace {

const TypeId kKeyableTypes[] = {
    TypeId::kInt8,  TypeId::kInt16,  TypeId::kInt32, TypeId::kInt64,
    TypeId::kUint32, TypeId::kUint64, TypeId::kFloat, TypeId::kDouble,
    TypeId::kDate,  TypeId::kVarchar, TypeId::kBool,
};

Value RandomValue(TypeId type, Random& rng, double null_prob) {
  if (rng.Bernoulli(null_prob)) return Value::Null(type);
  switch (type) {
    case TypeId::kBool:
      return Value::Bool(rng.Bernoulli(0.5));
    case TypeId::kInt8:
      return Value::Int8(static_cast<int8_t>(rng.Uniform(256)));
    case TypeId::kInt16:
      return Value::Int16(static_cast<int16_t>(rng.Next32()));
    case TypeId::kInt32:
      return Value::Int32(static_cast<int32_t>(rng.Uniform(64)) - 32);
    case TypeId::kInt64:
      return Value::Int64(static_cast<int64_t>(rng.Next64() % 1000) - 500);
    case TypeId::kUint32:
      return Value::Uint32(rng.Next32() % 128);
    case TypeId::kUint64:
      return Value::Uint64(rng.Next64() % 256);
    case TypeId::kFloat:
      switch (rng.Uniform(6)) {
        case 0:
          return Value::Float(std::numeric_limits<float>::quiet_NaN());
        case 1:
          return Value::Float(std::numeric_limits<float>::infinity());
        case 2:
          return Value::Float(0.0f);
        default:
          return Value::Float(rng.UniformFloat(-10.0f, 10.0f));
      }
    case TypeId::kDouble:
      return Value::Double((rng.NextDouble() - 0.5) * 100);
    case TypeId::kDate:
      return Value::Date(static_cast<int32_t>(rng.Uniform(1000)) - 500);
    case TypeId::kVarchar:
      switch (rng.Uniform(4)) {
        case 0:
          return Value::Varchar("");
        case 1:
          return Value::Varchar(std::string(1 + rng.Uniform(3), 'a' + rng.Uniform(4)));
        case 2:
          return Value::Varchar("identical-long-prefix-" +
                                std::to_string(rng.Uniform(6)));
        default:
          return Value::Varchar("Mixed" + std::string(rng.Uniform(20), 'x'));
      }
    default:
      return Value::Null(type);
  }
}

int OrderByCompare(const Value& a, const Value& b, const SortColumn& sc) {
  if (a.is_null() || b.is_null()) {
    if (a.is_null() && b.is_null()) return 0;
    bool nulls_first = sc.null_order == NullOrder::kNullsFirst;
    return a.is_null() ? (nulls_first ? -1 : 1) : (nulls_first ? 1 : -1);
  }
  int cmp;
  if (sc.type.id() == TypeId::kVarchar &&
      sc.collation == Collation::kCaseInsensitive) {
    std::string fa = a.varchar_value(), fb = b.varchar_value();
    for (auto& c : fa) c = static_cast<char>(std::tolower(c));
    for (auto& c : fb) c = static_cast<char>(std::tolower(c));
    cmp = fa.compare(fb);
    cmp = (cmp > 0) - (cmp < 0);
  } else {
    cmp = a.Compare(b);
  }
  return sc.order == OrderType::kDescending ? -cmp : cmp;
}

class EngineFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineFuzzTest, RandomSchemaSpecAndConfig) {
  Random rng(GetParam() * 7919 + 13);

  // Random schema: 1-5 columns.
  uint64_t num_cols = 1 + rng.Uniform(5);
  std::vector<LogicalType> types;
  for (uint64_t c = 0; c < num_cols; ++c) {
    types.push_back(LogicalType(
        kKeyableTypes[rng.Uniform(std::size(kKeyableTypes))]));
  }

  // Random spec: 1..num_cols distinct key columns.
  std::vector<uint64_t> cols(num_cols);
  for (uint64_t c = 0; c < num_cols; ++c) cols[c] = c;
  rng.Shuffle(cols.data(), num_cols);
  uint64_t num_keys = 1 + rng.Uniform(num_cols);
  std::vector<SortColumn> sort_columns;
  for (uint64_t k = 0; k < num_keys; ++k) {
    SortColumn sc(cols[k], types[cols[k]],
                  rng.Bernoulli(0.5) ? OrderType::kAscending
                                     : OrderType::kDescending,
                  rng.Bernoulli(0.5) ? NullOrder::kNullsFirst
                                     : NullOrder::kNullsLast);
    if (sc.type.id() == TypeId::kVarchar) {
      sc.string_prefix_length = 1 + rng.Uniform(12);
      if (rng.Bernoulli(0.3)) sc.collation = Collation::kCaseInsensitive;
    }
    sort_columns.push_back(sc);
  }
  SortSpec spec(sort_columns);

  // Random data.
  uint64_t rows = rng.Uniform(6000);
  double null_prob = rng.NextDouble() * 0.4;
  Table input(types);
  uint64_t produced = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = input.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      for (uint64_t c = 0; c < num_cols; ++c) {
        chunk.SetValue(c, r, RandomValue(types[c].id(), rng, null_prob));
      }
    }
    chunk.SetSize(n);
    input.Append(std::move(chunk));
    produced += n;
  }

  // Random config.
  SortEngineConfig config;
  config.threads = 1 + rng.Uniform(3);
  config.run_size_rows = 64 << rng.Uniform(8);
  config.algorithm = spec.NeedsTieResolution()
                         ? RunSortAlgorithm::kAuto
                         : static_cast<RunSortAlgorithm>(rng.Uniform(4));
  config.use_kway_merge = rng.Bernoulli(0.3);

  Table output = RelationalSort::SortTable(input, spec, config).ValueOrDie();

  // Verify: permutation + sortedness.
  ASSERT_EQ(output.row_count(), rows);
  std::map<std::string, int64_t> counts;
  auto fingerprint = [&](const Table& t, uint64_t ci, uint64_t r) {
    std::string fp;
    for (uint64_t c = 0; c < t.types().size(); ++c) {
      fp += t.chunk(ci).GetValue(c, r).ToString();
      fp += '\x1f';
    }
    return fp;
  };
  for (uint64_t ci = 0; ci < input.ChunkCount(); ++ci) {
    for (uint64_t r = 0; r < input.chunk(ci).size(); ++r) {
      ++counts[fingerprint(input, ci, r)];
    }
  }
  for (uint64_t ci = 0; ci < output.ChunkCount(); ++ci) {
    for (uint64_t r = 0; r < output.chunk(ci).size(); ++r) {
      --counts[fingerprint(output, ci, r)];
    }
  }
  for (const auto& [fp, c] : counts) {
    ASSERT_EQ(c, 0) << "multiset mismatch " << fp << " (spec "
                    << spec.ToString() << ")";
  }

  std::vector<Value> prev;
  bool have_prev = false;
  for (uint64_t ci = 0; ci < output.ChunkCount(); ++ci) {
    const DataChunk& chunk = output.chunk(ci);
    for (uint64_t r = 0; r < chunk.size(); ++r) {
      std::vector<Value> cur;
      for (const auto& sc : spec.columns()) {
        cur.push_back(chunk.GetValue(sc.column_index, r));
      }
      if (have_prev) {
        int cmp = 0;
        for (uint64_t k = 0; k < spec.columns().size(); ++k) {
          cmp = OrderByCompare(prev[k], cur[k], spec.columns()[k]);
          if (cmp != 0) break;
        }
        ASSERT_LE(cmp, 0) << "out of order at row " << r << " (spec "
                          << spec.ToString() << ")";
      }
      prev = std::move(cur);
      have_prev = true;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzzTest, ::testing::Range<uint64_t>(0, 40),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace rowsort
