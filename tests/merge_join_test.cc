// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Sort-merge join (paper §V-B's motivating operator) against a hash-join
// oracle.
#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "engine/merge_join.h"

namespace rowsort {
namespace {

std::string Fingerprint(const Table& t, uint64_t ci, uint64_t r) {
  std::string fp;
  for (uint64_t c = 0; c < t.types().size(); ++c) {
    fp += t.chunk(ci).GetValue(c, r).ToString();
    fp += '\x1f';
  }
  return fp;
}

/// Nested-loop oracle join on Value equality (NULLs never match).
std::map<std::string, int64_t> OracleJoin(
    const Table& left, const Table& right, const std::vector<JoinKey>& keys) {
  std::map<std::string, int64_t> rows;
  for (uint64_t lci = 0; lci < left.ChunkCount(); ++lci) {
    for (uint64_t lr = 0; lr < left.chunk(lci).size(); ++lr) {
      for (uint64_t rci = 0; rci < right.ChunkCount(); ++rci) {
        for (uint64_t rr = 0; rr < right.chunk(rci).size(); ++rr) {
          bool match = true;
          for (const auto& key : keys) {
            Value lv = left.chunk(lci).GetValue(key.left_column, lr);
            Value rv = right.chunk(rci).GetValue(key.right_column, rr);
            if (lv.is_null() || rv.is_null() || !(lv == rv)) {
              match = false;
              break;
            }
          }
          if (match) {
            ++rows[Fingerprint(left, lci, lr) + Fingerprint(right, rci, rr)];
          }
        }
      }
    }
  }
  return rows;
}

void ExpectJoinMatchesOracle(const Table& left, const Table& right,
                             const std::vector<JoinKey>& keys) {
  Table joined = SortMergeJoin(left, right, keys).ValueOrDie();
  auto oracle = OracleJoin(left, right, keys);
  uint64_t oracle_count = 0;
  for (const auto& [fp, count] : oracle) oracle_count += count;
  ASSERT_EQ(joined.row_count(), oracle_count);
  for (uint64_t ci = 0; ci < joined.ChunkCount(); ++ci) {
    for (uint64_t r = 0; r < joined.chunk(ci).size(); ++r) {
      --oracle[Fingerprint(joined, ci, r)];
    }
  }
  for (const auto& [fp, count] : oracle) {
    ASSERT_EQ(count, 0) << "mismatch for " << fp;
  }
}

Table MakeSide(uint64_t rows, uint64_t key_range, double null_prob,
               uint64_t seed, bool with_string) {
  Random rng(seed);
  std::vector<LogicalType> types = {TypeId::kInt32, TypeId::kInt64};
  if (with_string) types.push_back(LogicalType(TypeId::kVarchar));
  Table table(types);
  uint64_t produced = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = table.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      if (rng.Bernoulli(null_prob)) {
        chunk.SetValue(0, r, Value::Null(TypeId::kInt32));
      } else {
        chunk.SetValue(
            0, r, Value::Int32(static_cast<int32_t>(rng.Uniform(key_range))));
      }
      chunk.SetValue(1, r, Value::Int64(static_cast<int64_t>(produced + r) +
                                        static_cast<int64_t>(seed * 1000000)));
      if (with_string) {
        chunk.SetValue(2, r,
                       Value::Varchar("shared-long-prefix-string-" +
                                      std::to_string(rng.Uniform(5))));
      }
    }
    chunk.SetSize(n);
    table.Append(std::move(chunk));
    produced += n;
  }
  return table;
}

TEST(MergeJoinTest, SingleIntKey) {
  Table left = MakeSide(500, 100, 0.0, 1, false);
  Table right = MakeSide(300, 100, 0.0, 2, false);
  ExpectJoinMatchesOracle(left, right, {{0, 0}});
}

TEST(MergeJoinTest, NullKeysNeverMatch) {
  Table left = MakeSide(300, 50, 0.3, 3, false);
  Table right = MakeSide(300, 50, 0.3, 4, false);
  ExpectJoinMatchesOracle(left, right, {{0, 0}});
}

TEST(MergeJoinTest, DifferentColumnPositions) {
  // Join left.col0 with right.col1 (types must match: int64 vs int64).
  Table left = MakeSide(200, 40, 0.1, 5, false);
  Table right = MakeSide(200, 40, 0.1, 6, false);
  // left.col1 (int64, unique-ish) joined with right.col1: few matches.
  ExpectJoinMatchesOracle(left, right, {{1, 1}});
}

TEST(MergeJoinTest, StringKeyWithPrefixTies) {
  // Keys share a >12-byte prefix, so the join must resolve ties from full
  // strings across the two (differently laid out) tables.
  Table left = MakeSide(400, 10, 0.0, 7, true);
  Table right = MakeSide(200, 10, 0.0, 8, true);
  ExpectJoinMatchesOracle(left, right, {{2, 2}});
}

TEST(MergeJoinTest, MultiKeyJoin) {
  Table left = MakeSide(400, 8, 0.1, 9, true);
  Table right = MakeSide(400, 8, 0.1, 10, true);
  ExpectJoinMatchesOracle(left, right, {{0, 0}, {2, 2}});
}

TEST(MergeJoinTest, EmptySides) {
  Table left = MakeSide(0, 10, 0.0, 11, false);
  Table right = MakeSide(100, 10, 0.0, 12, false);
  Table joined = SortMergeJoin(left, right, {{0, 0}}).ValueOrDie();
  EXPECT_EQ(joined.row_count(), 0u);
  Table joined2 = SortMergeJoin(right, left, {{0, 0}}).ValueOrDie();
  EXPECT_EQ(joined2.row_count(), 0u);
}

TEST(MergeJoinTest, DuplicateGroupsCrossProduct) {
  // 3 left rows and 4 right rows with the same key -> 12 output rows.
  Table left({TypeId::kInt32});
  Table right({TypeId::kInt32});
  {
    DataChunk chunk = left.NewChunk();
    for (uint64_t r = 0; r < 3; ++r) chunk.SetValue(0, r, Value::Int32(7));
    chunk.SetSize(3);
    left.Append(std::move(chunk));
  }
  {
    DataChunk chunk = right.NewChunk();
    for (uint64_t r = 0; r < 4; ++r) chunk.SetValue(0, r, Value::Int32(7));
    chunk.SetSize(4);
    right.Append(std::move(chunk));
  }
  Table joined = SortMergeJoin(left, right, {{0, 0}}).ValueOrDie();
  EXPECT_EQ(joined.row_count(), 12u);
}

TEST(MergeJoinTest, OutputSchemaConcatenatesSides) {
  Table left({TypeId::kInt32, TypeId::kVarchar}, {"l_key", "l_val"});
  Table right({TypeId::kInt32, TypeId::kDouble}, {"r_key", "r_val"});
  {
    DataChunk chunk = left.NewChunk();
    chunk.SetValue(0, 0, Value::Int32(1));
    chunk.SetValue(1, 0, Value::Varchar("left"));
    chunk.SetSize(1);
    left.Append(std::move(chunk));
  }
  {
    DataChunk chunk = right.NewChunk();
    chunk.SetValue(0, 0, Value::Int32(1));
    chunk.SetValue(1, 0, Value::Double(2.5));
    chunk.SetSize(1);
    right.Append(std::move(chunk));
  }
  Table joined = SortMergeJoin(left, right, {{0, 0}}).ValueOrDie();
  ASSERT_EQ(joined.row_count(), 1u);
  ASSERT_EQ(joined.types().size(), 4u);
  EXPECT_EQ(joined.names()[1], "l_val");
  EXPECT_EQ(joined.names()[3], "r_val");
  EXPECT_EQ(joined.chunk(0).GetValue(1, 0), Value::Varchar("left"));
  EXPECT_EQ(joined.chunk(0).GetValue(3, 0), Value::Double(2.5));
}

}  // namespace
}  // namespace rowsort
