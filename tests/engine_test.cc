// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// End-to-end correctness of the sorting pipeline (paper Fig. 11) against a
// Value-level oracle, across types, NULL orders, directions, thread counts,
// run sizes, and run-sort algorithms.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <thread>

#include "common/cancellation.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "engine/merge_path.h"
#include "engine/sort_engine.h"
#include "row/row_kernels.h"
#include "workload/tables.h"

namespace rowsort {
namespace {

int OrderByCompare(const Value& a, const Value& b, const SortColumn& sc) {
  if (a.is_null() || b.is_null()) {
    if (a.is_null() && b.is_null()) return 0;
    bool nulls_first = sc.null_order == NullOrder::kNullsFirst;
    return a.is_null() ? (nulls_first ? -1 : 1) : (nulls_first ? 1 : -1);
  }
  int cmp = a.Compare(b);
  return sc.order == OrderType::kDescending ? -cmp : cmp;
}

std::string RowFingerprint(const Table& t, uint64_t chunk, uint64_t row) {
  std::string fp;
  for (uint64_t c = 0; c < t.types().size(); ++c) {
    fp += t.chunk(chunk).GetValue(c, row).ToString();
    fp += '\x1f';
  }
  return fp;
}

/// Verifies output is a sorted permutation of input under spec.
void ExpectSortedPermutation(const Table& input, const Table& output,
                             const SortSpec& spec) {
  ASSERT_EQ(output.row_count(), input.row_count());

  // Multiset equality of complete rows.
  std::map<std::string, int64_t> counts;
  for (uint64_t ci = 0; ci < input.ChunkCount(); ++ci) {
    for (uint64_t r = 0; r < input.chunk(ci).size(); ++r) {
      ++counts[RowFingerprint(input, ci, r)];
    }
  }
  for (uint64_t ci = 0; ci < output.ChunkCount(); ++ci) {
    for (uint64_t r = 0; r < output.chunk(ci).size(); ++r) {
      --counts[RowFingerprint(output, ci, r)];
    }
  }
  for (const auto& [fp, count] : counts) {
    ASSERT_EQ(count, 0) << "row multiset mismatch at " << fp;
  }

  // Sortedness by the spec.
  std::vector<Value> prev;
  bool have_prev = false;
  for (uint64_t ci = 0; ci < output.ChunkCount(); ++ci) {
    const DataChunk& chunk = output.chunk(ci);
    for (uint64_t r = 0; r < chunk.size(); ++r) {
      std::vector<Value> cur;
      for (const auto& sc : spec.columns()) {
        cur.push_back(chunk.GetValue(sc.column_index, r));
      }
      if (have_prev) {
        int cmp = 0;
        for (uint64_t k = 0; k < spec.columns().size(); ++k) {
          cmp = OrderByCompare(prev[k], cur[k], spec.columns()[k]);
          if (cmp != 0) break;
        }
        ASSERT_LE(cmp, 0) << "out of order at chunk " << ci << " row " << r;
      }
      prev = std::move(cur);
      have_prev = true;
    }
  }
}

Value RandomValueFor(TypeId type, Random& rng, double null_prob) {
  if (rng.Bernoulli(null_prob)) return Value::Null(type);
  switch (type) {
    case TypeId::kInt32:
      return Value::Int32(static_cast<int32_t>(rng.Uniform(1000)) - 500);
    case TypeId::kInt64:
      return Value::Int64(static_cast<int64_t>(rng.Next64() % 10000) - 5000);
    case TypeId::kFloat:
      return Value::Float(rng.UniformFloat(-100.0f, 100.0f));
    case TypeId::kDouble:
      return Value::Double(rng.NextDouble() * 2000 - 1000);
    case TypeId::kVarchar: {
      // Mix of short strings, shared 12+ byte prefixes (forces tie
      // resolution beyond the normalized-key prefix), and empties.
      switch (rng.Uniform(5)) {
        case 0:
          return Value::Varchar("");
        case 1:
          return Value::Varchar(std::string(1, 'a' + rng.Uniform(26)));
        case 2:
          return Value::Varchar("common-prefix-0123456789-" +
                                std::to_string(rng.Uniform(50)));
        case 3:
          return Value::Varchar("common-prefix-0123456789-" +
                                std::to_string(rng.Uniform(50)) + "-suffix");
        default:
          return Value::Varchar("w" + std::to_string(rng.Uniform(100)));
      }
    }
    default:
      return Value::Null(type);
  }
}

Table MakeRandomTable(const std::vector<LogicalType>& types, uint64_t rows,
                      double null_prob, uint64_t seed) {
  Random rng(seed);
  Table table(types);
  uint64_t produced = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = table.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      for (uint64_t c = 0; c < types.size(); ++c) {
        chunk.SetValue(c, r, RandomValueFor(types[c].id(), rng, null_prob));
      }
    }
    chunk.SetSize(n);
    table.Append(std::move(chunk));
    produced += n;
  }
  return table;
}

struct EngineCase {
  std::string name;
  std::vector<LogicalType> types;
  std::vector<SortColumn> sort_columns;
  double null_prob;
  uint64_t rows;
  uint64_t threads;
  uint64_t run_size;
  RunSortAlgorithm algorithm;
};

class EngineTest : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineTest, SortedPermutation) {
  const auto& c = GetParam();
  Table input = MakeRandomTable(c.types, c.rows, c.null_prob, 99);
  SortSpec spec(c.sort_columns);
  SortEngineConfig config;
  config.threads = c.threads;
  config.run_size_rows = c.run_size;
  config.algorithm = c.algorithm;
  SortMetrics metrics;
  Table output = RelationalSort::SortTable(input, spec, config, &metrics).ValueOrDie();
  ExpectSortedPermutation(input, output, spec);
  EXPECT_EQ(metrics.rows, c.rows);
  if (c.rows > 0) {
    EXPECT_GE(metrics.runs_generated, 1u);
  }
}

std::vector<EngineCase> EngineCases() {
  LogicalType i32(TypeId::kInt32), i64(TypeId::kInt64), f32(TypeId::kFloat),
      f64(TypeId::kDouble), str(TypeId::kVarchar);
  std::vector<EngineCase> cases;

  // Single int key, no NULLs, the radix fast path.
  cases.push_back({"int32_radix", {i32, i64},
                   {SortColumn(0, i32)},
                   0.0, 20000, 1, 1 << 20, RunSortAlgorithm::kRadix});
  // Same with pdqsort.
  cases.push_back({"int32_pdq", {i32, i64},
                   {SortColumn(0, i32)},
                   0.0, 20000, 1, 1 << 20, RunSortAlgorithm::kPdq});
  // Heuristic dispatch.
  cases.push_back({"int32_heuristic", {i32, i64},
                   {SortColumn(0, i32)},
                   0.1, 20000, 1, 1 << 20, RunSortAlgorithm::kHeuristic});
  // NULLs + DESC + NULLS FIRST.
  cases.push_back(
      {"nulls_desc", {i32, f64},
       {SortColumn(0, i32, OrderType::kDescending, NullOrder::kNullsFirst)},
       0.2, 10000, 1, 1 << 20, RunSortAlgorithm::kAuto});
  // Multi-key mixed types and directions.
  cases.push_back(
      {"multikey_mixed", {i32, f32, i64},
       {SortColumn(1, f32, OrderType::kAscending, NullOrder::kNullsLast),
        SortColumn(0, i32, OrderType::kDescending, NullOrder::kNullsFirst),
        SortColumn(2, i64)},
       0.15, 15000, 1, 1 << 20, RunSortAlgorithm::kAuto});
  // Strings with prefix ties (pdqsort + tie resolution path).
  cases.push_back({"strings", {str, i32},
                   {SortColumn(0, str)},
                   0.1, 8000, 1, 1 << 20, RunSortAlgorithm::kAuto});
  cases.push_back(
      {"strings_desc", {str, i32},
       {SortColumn(0, str, OrderType::kDescending, NullOrder::kNullsLast),
        SortColumn(1, i32)},
       0.1, 8000, 1, 1 << 20, RunSortAlgorithm::kAuto});
  // String key then int key: prefix ties must not leak into the int compare.
  cases.push_back({"string_then_int", {str, i32},
                   {SortColumn(0, str), SortColumn(1, i32)},
                   0.05, 8000, 1, 1 << 20, RunSortAlgorithm::kAuto});
  // Many small runs + merge (single-threaded cascade).
  cases.push_back({"many_runs", {i32, i64},
                   {SortColumn(0, i32)},
                   0.1, 30000, 1, 2048, RunSortAlgorithm::kAuto});
  // Multi-threaded morsel-driven with merge path.
  cases.push_back({"parallel", {i32, f64},
                   {SortColumn(0, i32), SortColumn(1, f64)},
                   0.1, 50000, 4, 4096, RunSortAlgorithm::kAuto});
  cases.push_back({"parallel_strings", {str, i32},
                   {SortColumn(0, str)},
                   0.1, 30000, 4, 4096, RunSortAlgorithm::kAuto});
  // Edge sizes.
  cases.push_back({"empty", {i32},
                   {SortColumn(0, i32)},
                   0.0, 0, 1, 1 << 20, RunSortAlgorithm::kAuto});
  cases.push_back({"one_row", {i32},
                   {SortColumn(0, i32)},
                   0.0, 1, 1, 1 << 20, RunSortAlgorithm::kAuto});
  cases.push_back({"all_null", {i32},
                   {SortColumn(0, i32)},
                   1.0, 5000, 1, 2048, RunSortAlgorithm::kAuto});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Cases, EngineTest, ::testing::ValuesIn(EngineCases()),
                         [](const ::testing::TestParamInfo<EngineCase>& info) {
                           return info.param.name;
                         });

TEST(EngineMergeStrategyTest, KWayMatchesCascade) {
  Table input = MakeRandomTable(
      {LogicalType(TypeId::kVarchar), LogicalType(TypeId::kInt32)}, 25000,
      0.1, 64);
  SortSpec spec({SortColumn(0, TypeId::kVarchar), SortColumn(1, TypeId::kInt32)});

  SortEngineConfig cascade;
  cascade.run_size_rows = 2048;
  Table a = RelationalSort::SortTable(input, spec, cascade).ValueOrDie();

  SortEngineConfig kway = cascade;
  kway.use_kway_merge = true;
  Table b = RelationalSort::SortTable(input, spec, kway).ValueOrDie();

  ExpectSortedPermutation(input, b, spec);
  ASSERT_EQ(a.row_count(), b.row_count());
  // Both merges are stable over the same runs: identical row sequences.
  for (uint64_t ci = 0; ci < a.ChunkCount(); ++ci) {
    for (uint64_t r = 0; r < a.chunk(ci).size(); ++r) {
      ASSERT_EQ(RowFingerprint(a, ci, r), RowFingerprint(b, ci, r))
          << "chunk " << ci << " row " << r;
    }
  }
}

TEST(EngineScanTest, ScanChunkPaginates) {
  Table input = MakeRandomTable({LogicalType(TypeId::kInt32)}, 5000, 0.0, 3);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  RelationalSort sort(spec, input.types(), {});
  auto local = sort.MakeLocalState();
  for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
    ROWSORT_CHECK_OK(sort.Sink(*local, input.chunk(c)));
  }
  ROWSORT_CHECK_OK(sort.CombineLocal(*local));
  ROWSORT_CHECK_OK(sort.Finalize());
  EXPECT_EQ(sort.row_count(), 5000u);

  DataChunk out;
  out.Initialize(input.types());
  uint64_t total = 0;
  int32_t prev = INT32_MIN;
  while (true) {
    uint64_t n = sort.ScanChunk(total, &out);
    if (n == 0) break;
    for (uint64_t r = 0; r < n; ++r) {
      int32_t v = out.GetValue(0, r).int32_value();
      EXPECT_LE(prev, v);
      prev = v;
    }
    total += n;
  }
  EXPECT_EQ(total, 5000u);
}

TEST(EngineMetricsTest, ComparisonCountsMatchSection2Analysis) {
  // §II: with k runs of n/k rows, ~n log(n/k) comparisons happen during run
  // generation and ~n log(k) during merging; run generation dominates.
  const uint64_t n = 1 << 16;
  const uint64_t k = 16;
  Table input = MakeRandomTable({LogicalType(TypeId::kInt32)}, n, 0.0, 5);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  SortEngineConfig config;
  config.run_size_rows = n / k;
  config.algorithm = RunSortAlgorithm::kPdq;
  config.count_comparisons = true;
  SortMetrics metrics;
  RelationalSort::SortTable(input, spec, config, &metrics).ValueOrDie();

  EXPECT_EQ(metrics.runs_generated, k);
  EXPECT_GT(metrics.run_generation_compares, 0u);
  EXPECT_GT(metrics.merge_compares, 0u);
  // Run generation must dominate (paper: ~80% for n=1M, k=16; the ratio
  // n·log(n/k) : n·log(k) = 12:4 = 3:1 here).
  EXPECT_GT(metrics.run_generation_compares, metrics.merge_compares);
}

TEST(EngineSpillTest, SpilledSortMatchesInMemory) {
  Table input = MakeRandomTable(
      {LogicalType(TypeId::kVarchar), LogicalType(TypeId::kInt32)}, 20000,
      0.1, 8);
  SortSpec spec({SortColumn(0, TypeId::kVarchar), SortColumn(1, TypeId::kInt32)});

  SortEngineConfig mem_config;
  mem_config.run_size_rows = 3000;
  Table in_memory = RelationalSort::SortTable(input, spec, mem_config).ValueOrDie();

  std::string dir = ::testing::TempDir() + "/rowsort_spill";
  std::string cmd = "mkdir -p " + dir;
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  SortEngineConfig spill_config;
  spill_config.run_size_rows = 3000;
  spill_config.spill_directory = dir;
  Table spilled = RelationalSort::SortTable(input, spec, spill_config).ValueOrDie();

  ASSERT_EQ(in_memory.row_count(), spilled.row_count());
  ExpectSortedPermutation(input, spilled, spec);
  // Exact same sequence as the in-memory result.
  for (uint64_t ci = 0; ci < in_memory.ChunkCount(); ++ci) {
    for (uint64_t r = 0; r < in_memory.chunk(ci).size(); ++r) {
      ASSERT_EQ(RowFingerprint(in_memory, ci, r), RowFingerprint(spilled, ci, r));
    }
  }
}

void ExpectIdenticalSequences(const Table& a, const Table& b) {
  ASSERT_EQ(a.row_count(), b.row_count());
  for (uint64_t ci = 0; ci < a.ChunkCount(); ++ci) {
    for (uint64_t r = 0; r < a.chunk(ci).size(); ++r) {
      ASSERT_EQ(RowFingerprint(a, ci, r), RowFingerprint(b, ci, r))
          << "chunk " << ci << " row " << r;
    }
  }
}

TEST(EngineKernelsTest, MovementKernelsOffIsByteIdentical) {
  // The data-movement kernels (row-layer scatter/gather specialization plus
  // the merge paths' run-length batched copies) are a pure speedup: with
  // both ablation switches thrown the engine must produce the exact same
  // output sequence. Duplicate-heavy keys with NULLs make merge streaks
  // long and tie order observable.
  Table input = MakeRandomTable(
      {LogicalType(TypeId::kVarchar), LogicalType(TypeId::kInt32),
       LogicalType(TypeId::kDouble)},
      20000, 0.1, 21);
  SortSpec spec(
      {SortColumn(0, TypeId::kVarchar), SortColumn(1, TypeId::kInt32)});

  SortEngineConfig with_kernels;
  with_kernels.run_size_rows = 3000;
  SortMetrics kernel_metrics;
  Table fast =
      RelationalSort::SortTable(input, spec, with_kernels, &kernel_metrics)
          .ValueOrDie();

  SortEngineConfig scalar = with_kernels;
  scalar.use_movement_kernels = false;
  SortMetrics scalar_metrics;
  bool prev = SetRowKernelsEnabled(false);
  Table reference =
      RelationalSort::SortTable(input, spec, scalar, &scalar_metrics)
          .ValueOrDie();
  SetRowKernelsEnabled(prev);

  ExpectSortedPermutation(input, fast, spec);
  ExpectIdenticalSequences(fast, reference);

  // The kernel run actually exercised the batched merge copies; the scalar
  // run reports none.
  EXPECT_GT(kernel_metrics.rows_bulk_copied, 0u);
  EXPECT_EQ(scalar_metrics.rows_bulk_copied, 0u);
  EXPECT_EQ(scalar_metrics.gather_fast_path, 0u);
  EXPECT_EQ(scalar_metrics.scatter_fast_path, 0u);
}

TEST(EngineKernelsTest, NullFreeSortTakesFastPathsEndToEnd) {
  // Without NULLs every column's maybe-null bit stays clear, so both the
  // Sink scatter and the result gather must run branchless on every row.
  Table input = MakeShuffledIntegerTable(20000, 17);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  SortEngineConfig config;
  config.run_size_rows = 3000;
  SortMetrics metrics;
  Table output =
      RelationalSort::SortTable(input, spec, config, &metrics).ValueOrDie();
  ExpectSortedPermutation(input, output, spec);
  EXPECT_GE(metrics.scatter_fast_path, input.row_count());
  EXPECT_GE(metrics.gather_fast_path, input.row_count());
}

TEST(EngineMemoryLimitTest, LimitedSortIsByteIdenticalToUnlimited) {
  // Duplicate-heavy VARCHAR keys with NULLs: ties that differ only in the
  // payload are exactly where a different merge tree would show. The
  // governed cascade must reproduce the unlimited result bit for bit.
  Table input = MakeRandomTable(
      {LogicalType(TypeId::kVarchar), LogicalType(TypeId::kInt32)}, 20000,
      0.1, 31);
  SortSpec spec({SortColumn(0, TypeId::kVarchar)});

  SortEngineConfig unlimited;
  unlimited.run_size_rows = 2000;
  SortMetrics unlimited_metrics;
  Table reference =
      RelationalSort::SortTable(input, spec, unlimited, &unlimited_metrics)
          .ValueOrDie();
  EXPECT_EQ(unlimited_metrics.runs_spilled, 0u);

  SortEngineConfig limited = unlimited;
  limited.memory_limit_bytes = 512 * 1024;
  SortMetrics limited_metrics;
  Table governed =
      RelationalSort::SortTable(input, spec, limited, &limited_metrics)
          .ValueOrDie();

  EXPECT_GT(limited_metrics.runs_spilled, 0u) << "limit never bit";
  ExpectSortedPermutation(input, governed, spec);
  ExpectIdenticalSequences(reference, governed);
}

TEST(EngineMemoryLimitTest, PeakStaysNearLimit) {
  // Fixed-width workload several times larger than the limit: adaptive
  // spilling must keep the tracked peak close to the limit instead of
  // materializing everything.
  Table input = MakeRandomTable(
      {LogicalType(TypeId::kInt32), LogicalType(TypeId::kInt64)}, 60000, 0.0,
      77);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});

  SortEngineConfig unlimited;
  unlimited.run_size_rows = 4096;
  SortMetrics unlimited_metrics;
  RelationalSort::SortTable(input, spec, unlimited, &unlimited_metrics)
      .ValueOrDie();

  const uint64_t limit = 1024 * 1024;
  ASSERT_GT(unlimited_metrics.peak_memory_bytes, 2 * limit)
      << "workload too small to exercise the limit";

  SortEngineConfig limited = unlimited;
  limited.memory_limit_bytes = limit;
  SortMetrics limited_metrics;
  Table output =
      RelationalSort::SortTable(input, spec, limited, &limited_metrics)
          .ValueOrDie();
  ExpectSortedPermutation(input, output, spec);
  EXPECT_GT(limited_metrics.runs_spilled, 0u);
  // The limit governs evictable memory; thread-local sink state and the
  // bounded streaming-merge scratch ride on top (docs/robustness.md), so
  // allow half a limit of slack.
  EXPECT_LE(limited_metrics.peak_memory_bytes, limit + limit / 2);
}

TEST(EngineMemoryLimitTest, ParallelLimitedSortIsCorrect) {
  Table input = MakeRandomTable(
      {LogicalType(TypeId::kVarchar), LogicalType(TypeId::kInt32)}, 40000,
      0.05, 13);
  SortSpec spec({SortColumn(0, TypeId::kVarchar), SortColumn(1, TypeId::kInt32)});
  SortEngineConfig config;
  config.threads = 4;
  config.run_size_rows = 3000;
  config.memory_limit_bytes = 768 * 1024;
  SortMetrics metrics;
  Table output =
      RelationalSort::SortTable(input, spec, config, &metrics).ValueOrDie();
  ExpectSortedPermutation(input, output, spec);
  EXPECT_GT(metrics.runs_spilled, 0u);
}

TEST(EngineMemoryLimitTest, ExplicitSpillDirectoryLeftEmpty) {
  // With a configured spill directory, every spill file must be gone once
  // the sort completes (merged inputs deleted eagerly, the rest at scan).
  std::string dir = ::testing::TempDir() + "/rowsort_adaptive_spill";
  std::filesystem::create_directories(dir);
  Table input = MakeRandomTable(
      {LogicalType(TypeId::kInt32), LogicalType(TypeId::kInt64)}, 30000, 0.0,
      5);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  SortEngineConfig config;
  config.run_size_rows = 2048;
  config.memory_limit_bytes = 256 * 1024;
  config.spill_directory = dir;
  SortMetrics metrics;
  Table output =
      RelationalSort::SortTable(input, spec, config, &metrics).ValueOrDie();
  ExpectSortedPermutation(input, output, spec);
  EXPECT_GT(metrics.runs_spilled, 0u);
  EXPECT_TRUE(std::filesystem::is_empty(dir)) << "spill files leaked";
  std::filesystem::remove(dir);
}

TEST(EngineOverlapTest, OverlappedSpillIsByteIdenticalDupHeavy) {
  // Duplicate-heavy VARCHAR keys with NULLs under a limit that forces
  // spilling: the overlapped writer/readers move the I/O to a background
  // thread but must reproduce the synchronous result bit for bit.
  Table input = MakeRandomTable(
      {LogicalType(TypeId::kVarchar), LogicalType(TypeId::kInt32)}, 20000,
      0.1, 131);
  SortSpec spec({SortColumn(0, TypeId::kVarchar)});

  SortEngineConfig sync_config;
  sync_config.run_size_rows = 2000;
  sync_config.memory_limit_bytes = 512 * 1024;
  sync_config.overlap_spill_io = false;
  SortMetrics sync_metrics;
  Table sync_out =
      RelationalSort::SortTable(input, spec, sync_config, &sync_metrics)
          .ValueOrDie();
  EXPECT_GT(sync_metrics.runs_spilled, 0u) << "limit never bit";

  SortEngineConfig overlap_config = sync_config;
  overlap_config.overlap_spill_io = true;
  SortMetrics overlap_metrics;
  Table overlap_out =
      RelationalSort::SortTable(input, spec, overlap_config, &overlap_metrics)
          .ValueOrDie();
  EXPECT_GT(overlap_metrics.runs_spilled, 0u);
  ExpectSortedPermutation(input, overlap_out, spec);
  ExpectIdenticalSequences(sync_out, overlap_out);
}

TEST(EngineOverlapTest, OverlappedSpillIsByteIdenticalRandomNumeric) {
  Table input = MakeRandomTable(
      {LogicalType(TypeId::kInt32), LogicalType(TypeId::kInt64)}, 60000, 0.0,
      137);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});

  SortEngineConfig sync_config;
  sync_config.run_size_rows = 4096;
  sync_config.memory_limit_bytes = 1024 * 1024;
  sync_config.overlap_spill_io = false;
  SortMetrics sync_metrics;
  Table sync_out =
      RelationalSort::SortTable(input, spec, sync_config, &sync_metrics)
          .ValueOrDie();
  EXPECT_GT(sync_metrics.runs_spilled, 0u) << "limit never bit";

  SortEngineConfig overlap_config = sync_config;
  overlap_config.overlap_spill_io = true;
  SortMetrics overlap_metrics;
  Table overlap_out =
      RelationalSort::SortTable(input, spec, overlap_config, &overlap_metrics)
          .ValueOrDie();
  EXPECT_GT(overlap_metrics.runs_spilled, 0u);
  ExpectIdenticalSequences(sync_out, overlap_out);
}

/// Sorts \p input twice under \p base_config — compressed v3 spill vs the
/// uncompressed v2 path — and requires bit-identical output sequences.
/// Returns the compressed run's metrics for workload-specific assertions.
SortMetrics ExpectCompressedSpillByteIdentical(const Table& input,
                                               const SortSpec& spec,
                                               SortEngineConfig base_config) {
  SortEngineConfig v2_config = base_config;
  v2_config.spill_compression = false;
  SortMetrics v2_metrics;
  Table v2_out =
      RelationalSort::SortTable(input, spec, v2_config, &v2_metrics)
          .ValueOrDie();
  EXPECT_GT(v2_metrics.runs_spilled, 0u) << "limit never bit";
  EXPECT_EQ(v2_metrics.spill_bytes_raw, 0u)
      << "v2 path must not touch the compression pipeline";

  SortEngineConfig v3_config = base_config;
  v3_config.spill_compression = true;
  SortMetrics v3_metrics;
  Table v3_out =
      RelationalSort::SortTable(input, spec, v3_config, &v3_metrics)
          .ValueOrDie();
  EXPECT_GT(v3_metrics.runs_spilled, 0u);
  EXPECT_GT(v3_metrics.spill_bytes_raw, 0u);
  ExpectSortedPermutation(input, v3_out, spec);
  ExpectIdenticalSequences(v2_out, v3_out);
  return v3_metrics;
}

TEST(EngineCompressionTest, CompressedSpillIsByteIdenticalDupHeavy) {
  // A handful of distinct VARCHAR keys over many rows: sorted spill blocks
  // are runs of identical rows, the best case for the v3 codecs — and ties
  // everywhere, so any merge-order difference would be visible.
  std::vector<LogicalType> types = {LogicalType(TypeId::kVarchar),
                                    LogicalType(TypeId::kInt32)};
  Table input(types);
  Random rng(211);
  uint64_t produced = 0;
  const uint64_t rows = 20000;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = input.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      chunk.SetValue(0, r,
                     Value::Varchar("dup_key_with_some_length_" +
                                    std::to_string(rng.Next32() % 8)));
      chunk.SetValue(1, r, Value::Int32(static_cast<int32_t>(rng.Next32() % 4)));
    }
    chunk.SetSize(n);
    input.Append(std::move(chunk));
    produced += n;
  }
  SortSpec spec({SortColumn(0, TypeId::kVarchar)});

  SortEngineConfig config;
  config.run_size_rows = 2000;
  config.memory_limit_bytes = 512 * 1024;
  SortMetrics metrics = ExpectCompressedSpillByteIdentical(input, spec, config);
  // Dup-heavy spill must shrink at least 2x (the ISSUE's acceptance bar).
  EXPECT_LE(metrics.spill_bytes_compressed * 2, metrics.spill_bytes_raw)
      << metrics.spill_bytes_raw << " -> " << metrics.spill_bytes_compressed;
  EXPECT_GT(metrics.spill_sections_rle + metrics.spill_sections_lz +
                metrics.spill_sections_prefix,
            0u);
}

TEST(EngineCompressionTest, CompressedSpillIsByteIdenticalRandom) {
  // Random numeric rows: little for the codecs to find — most sections
  // degrade to raw passthrough, and the output must still be identical.
  Table input = MakeRandomTable(
      {LogicalType(TypeId::kInt32), LogicalType(TypeId::kInt64)}, 60000, 0.0,
      223);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});

  SortEngineConfig config;
  config.run_size_rows = 4096;
  config.memory_limit_bytes = 1024 * 1024;
  SortMetrics metrics = ExpectCompressedSpillByteIdentical(input, spec, config);
  // Raw fallback means stored never exceeds raw by more than the framing.
  EXPECT_LE(metrics.spill_bytes_compressed,
            metrics.spill_bytes_raw + metrics.spill_sections_raw * 17);
  EXPECT_GT(metrics.spill_sections_raw, 0u)
      << "random payloads should degrade to raw sections";
}

TEST(EngineCompressionTest, CompressedSpillIsByteIdenticalAllNull) {
  // Every sort key and payload value NULL: degenerate blocks (empty string
  // sections, validity-only payloads) that historically shake out
  // fencepost bugs in format code.
  Table input = MakeRandomTable(
      {LogicalType(TypeId::kVarchar), LogicalType(TypeId::kInt32)}, 20000,
      1.0, 227);
  SortSpec spec({SortColumn(0, TypeId::kVarchar)});

  SortEngineConfig config;
  config.run_size_rows = 2000;
  config.memory_limit_bytes = 256 * 1024;
  SortMetrics metrics = ExpectCompressedSpillByteIdentical(input, spec, config);
  // All-NULL rows are identical, so RLE collapses them dramatically.
  EXPECT_LE(metrics.spill_bytes_compressed * 2, metrics.spill_bytes_raw);
}

TEST(EngineCompressionTest, CompressedOverlappedSpillIsByteIdentical) {
  // Compression and overlapped I/O together: encode on the sort thread,
  // fwrite on the worker — same bytes, same rows as the plain sync v2 sort.
  Table input = MakeRandomTable(
      {LogicalType(TypeId::kVarchar), LogicalType(TypeId::kInt32)}, 20000,
      0.1, 229);
  SortSpec spec({SortColumn(0, TypeId::kVarchar)});

  SortEngineConfig config;
  config.run_size_rows = 2000;
  config.memory_limit_bytes = 512 * 1024;
  config.overlap_spill_io = true;
  SortMetrics metrics = ExpectCompressedSpillByteIdentical(input, spec, config);
  EXPECT_GT(metrics.spill_bytes_raw, 0u);
}

TEST(EngineOverlapTest, SpilledRunsMergeInOneExtraPass) {
  // All-spill mode (spill directory, no limit): the fan-in planner has an
  // unlimited budget and must merge every spilled run in a single k-way
  // pass — each spilled row is read back exactly once (the one extra pass),
  // never rewritten through a pairwise cascade.
  std::string dir = ::testing::TempDir() + "/rowsort_fanin";
  std::filesystem::create_directories(dir);
  Table input = MakeRandomTable(
      {LogicalType(TypeId::kInt32), LogicalType(TypeId::kInt64)}, 40000, 0.0,
      139);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  SortEngineConfig config;
  config.run_size_rows = 2048;
  config.spill_directory = dir;
  SortMetrics metrics;
  SortProfile profile;
  Table output =
      RelationalSort::SortTable(input, spec, config, &metrics, &profile)
          .ValueOrDie();
  ExpectSortedPermutation(input, output, spec);
  EXPECT_GT(metrics.runs_generated, 2u);
  EXPECT_EQ(metrics.runs_spilled, metrics.runs_generated);
  // The headline planner property: fan-in of the final merge equals the run
  // count, i.e. one extra pass and no intermediate rewrite.
  EXPECT_EQ(metrics.merge_fan_in, metrics.runs_generated);
  // Overlap was on (default): the background worker really executed the
  // spill jobs, and its stats landed in the profile.
  const ProfileNode* spill = profile.root().FindChild("spill");
  ASSERT_NE(spill, nullptr);
  const ProfileNode* worker = spill->FindChild("io_worker");
  ASSERT_NE(worker, nullptr);
  EXPECT_GT(worker->invocations, 0u);
  EXPECT_TRUE(std::filesystem::is_empty(dir)) << "spill files leaked";
  std::filesystem::remove(dir);
}

TEST(EngineOverlapTest, PlannedFanInRespectsTightLimit) {
  // A tight limit cannot afford an all-at-once merge: the planner must
  // choose a smaller fan-in, take intermediate passes, and still produce
  // the exact sequence of the unlimited sort.
  Table input = MakeRandomTable(
      {LogicalType(TypeId::kInt32), LogicalType(TypeId::kInt64)}, 60000, 0.0,
      149);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});

  SortEngineConfig unlimited;
  unlimited.run_size_rows = 2048;
  Table reference =
      RelationalSort::SortTable(input, spec, unlimited).ValueOrDie();

  SortEngineConfig limited = unlimited;
  limited.memory_limit_bytes = 1024 * 1024;
  SortMetrics metrics;
  Table governed =
      RelationalSort::SortTable(input, spec, limited, &metrics).ValueOrDie();
  EXPECT_GT(metrics.runs_spilled, 0u) << "limit never bit";
  EXPECT_GE(metrics.merge_fan_in, 2u);
  EXPECT_LT(metrics.merge_fan_in, metrics.runs_generated)
      << "tight limit should have forced a narrower plan";
  ExpectIdenticalSequences(reference, governed);
}

TEST(EngineFailureTest, AllocationFailureInSinkSurfacesAsOutOfMemory) {
  if (!failpoint::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  Table input = MakeRandomTable(
      {LogicalType(TypeId::kInt32), LogicalType(TypeId::kInt64)}, 20000, 0.0,
      17);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  SortEngineConfig config;
  config.run_size_rows = 2048;
  failpoint::Arm("sink_alloc", /*skip=*/3, /*fires=*/1);
  auto result = RelationalSort::SortTable(input, spec, config);
  failpoint::DisarmAll();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfMemory);
}

TEST(EngineFailureTest, ParallelAllocationFailureSurfacesAsOutOfMemory) {
  if (!failpoint::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  Table input = MakeRandomTable(
      {LogicalType(TypeId::kInt32), LogicalType(TypeId::kInt64)}, 40000, 0.0,
      19);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  SortEngineConfig config;
  config.threads = 4;
  config.run_size_rows = 2048;
  failpoint::Arm("sink_alloc", /*skip=*/5, /*fires=*/1);
  auto result = RelationalSort::SortTable(input, spec, config);
  failpoint::DisarmAll();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfMemory);
}

TEST(EngineFailureTest, SpillWriteFailureIsIOErrorAndLeakFree) {
  if (!failpoint::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  std::string dir = ::testing::TempDir() + "/rowsort_diskfull_spill";
  std::filesystem::create_directories(dir);
  Table input = MakeRandomTable(
      {LogicalType(TypeId::kInt32), LogicalType(TypeId::kInt64)}, 30000, 0.0,
      23);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  SortEngineConfig config;
  config.run_size_rows = 2048;
  config.memory_limit_bytes = 128 * 1024;
  config.spill_directory = dir;
  // Let a few block writes through, then simulate a full disk.
  failpoint::Arm("external_run_write", /*skip=*/6, /*fires=*/1);
  auto result = RelationalSort::SortTable(input, spec, config);
  failpoint::DisarmAll();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  // Every spill file — finished or in flight — must have been removed.
  EXPECT_TRUE(std::filesystem::is_empty(dir)) << "spill files leaked";
  std::filesystem::remove(dir);
}

TEST(EngineFailureTest, FirstErrorIsStickyAcrossEntryPoints) {
  if (!failpoint::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  Table input = MakeRandomTable({LogicalType(TypeId::kInt32)}, 8192, 0.0, 29);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  SortEngineConfig config;
  config.run_size_rows = 1024;
  RelationalSort sort(spec, input.types(), config);
  auto local = sort.MakeLocalState();

  failpoint::Arm("sink_alloc", /*skip=*/2, /*fires=*/1);
  Status first;
  for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
    first = sort.Sink(*local, input.chunk(c));
    if (!first.ok()) break;
  }
  failpoint::DisarmAll();
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.code(), StatusCode::kOutOfMemory);

  // Every later entry point reports the recorded error and does no work.
  Status again = sort.Sink(*local, input.chunk(0));
  EXPECT_EQ(again.code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(sort.CombineLocal(*local).code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(sort.Finalize().code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(sort.status().code(), StatusCode::kOutOfMemory);
}

TEST(EngineCancelTest, PreCancelledTokenFailsFast) {
  Table input = MakeRandomTable({LogicalType(TypeId::kInt32)}, 20000, 0.0, 41);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  SortEngineConfig config;
  config.run_size_rows = 2048;
  CancellationSource source;
  source.RequestCancel();
  config.cancellation = source.token();
  SortMetrics metrics;
  auto result = RelationalSort::SortTable(input, spec, config, &metrics);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_GT(metrics.cancel_checks, 0u);
}

TEST(EngineCancelTest, ExpiredDeadlineSurfacesAsDeadlineExceeded) {
  Table input = MakeRandomTable({LogicalType(TypeId::kInt32)}, 20000, 0.0, 43);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  SortEngineConfig config;
  config.run_size_rows = 2048;
  CancellationSource source(Deadline::AfterMicros(0));
  config.cancellation = source.token();
  auto result = RelationalSort::SortTable(input, spec, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(result.status().IsCancellation());
}

TEST(EngineCancelTest, CancelMidFinalizeIsPromptAndLeavesCleanState) {
  // Acceptance criterion: a sort of >= 10M rows cancelled mid-Finalize must
  // return Status::Cancelled with the request->observation latency under
  // 50ms (SortMetrics::time_to_cancel_us), and the process must stay fully
  // usable afterwards.
  const uint64_t rows = 10'000'000;
  Table input = MakeShuffledIntegerTable(rows, 47);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  SortEngineConfig config;
  config.threads = 4;
  config.run_size_rows = 1 << 16;  // long merge cascade to cancel into
  CancellationSource source;
  config.cancellation = source.token();

  RelationalSort sort(spec, input.types(), config);
  auto local = sort.MakeLocalState();
  for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
    ASSERT_TRUE(sort.Sink(*local, input.chunk(c)).ok());
  }
  ASSERT_TRUE(sort.CombineLocal(*local).ok());

  // Fire the cancel ~15ms into the merge phase; merging 10M rows through a
  // ~150-run cascade takes far longer than that, so the request lands while
  // Finalize is in flight.
  std::thread canceller([&source] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    source.RequestCancel();
  });
  Status st = sort.Finalize();
  canceller.join();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_GT(sort.metrics().cancel_checks, 0u);
  EXPECT_LT(sort.metrics().time_to_cancel_us, 50'000u)
      << "cancellation took too long to observe";

  // No global poisoning: a fresh, un-cancelled sort of the same input
  // completes (its own pool, its own engine state).
  SortEngineConfig clean = config;
  clean.cancellation = CancellationToken();
  Table output = RelationalSort::SortTable(input, spec, clean).ValueOrDie();
  EXPECT_EQ(output.row_count(), rows);
}

TEST(EngineCancelTest, CancelDuringSpilledSortLeavesNoFiles) {
  std::string dir = ::testing::TempDir() + "/rowsort_cancel_spill";
  std::filesystem::create_directories(dir);
  Table input = MakeRandomTable(
      {LogicalType(TypeId::kInt32), LogicalType(TypeId::kInt64)}, 60000, 0.0,
      53);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  SortEngineConfig config;
  config.run_size_rows = 2048;
  config.memory_limit_bytes = 128 * 1024;  // force spilling early
  config.spill_directory = dir;
  CancellationSource source;
  config.cancellation = source.token();

  std::thread canceller([&source] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    source.RequestCancel();
  });
  auto result = RelationalSort::SortTable(input, spec, config);
  canceller.join();
  // Timing-dependent: the sort either finished before the cancel landed or
  // was cancelled. Both outcomes must leave the spill directory empty.
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
  EXPECT_TRUE(std::filesystem::is_empty(dir)) << "spill files leaked";
  std::filesystem::remove(dir);
}

TEST(EngineCancelTest, RandomizedCancelPointNeverCorruptsOrLeaks) {
  // Fire the cancel at a random point of the pipeline, repeatedly: whatever
  // the timing, the sort must either complete correctly or fail with
  // Status::Cancelled — never crash, never return a partial table, never
  // leak a spill file.
  Table input = MakeRandomTable(
      {LogicalType(TypeId::kVarchar), LogicalType(TypeId::kInt32)}, 40000,
      0.05, 59);
  SortSpec spec({SortColumn(0, TypeId::kVarchar)});
  Table reference = RelationalSort::SortTable(input, spec).ValueOrDie();

  Random rng(61);
  for (int round = 0; round < 8; ++round) {
    std::string dir = ::testing::TempDir() + "/rowsort_rand_cancel";
    std::filesystem::create_directories(dir);
    SortEngineConfig config;
    config.threads = 1 + round % 4;
    config.run_size_rows = 2048;
    config.memory_limit_bytes = 256 * 1024;
    config.spill_directory = dir;
    CancellationSource source;
    config.cancellation = source.token();
    uint64_t delay_us = rng.Uniform(30'000);
    std::thread canceller([&source, delay_us] {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
      source.RequestCancel();
    });
    auto result = RelationalSort::SortTable(input, spec, config);
    canceller.join();
    if (result.ok()) {
      Table output = std::move(result).ValueOrDie();
      ASSERT_EQ(output.row_count(), input.row_count()) << "partial table";
      ExpectIdenticalSequences(reference, output);
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
          << result.status().ToString();
    }
    EXPECT_TRUE(std::filesystem::is_empty(dir))
        << "spill files leaked in round " << round;
    std::filesystem::remove(dir);
  }
}

TEST(EngineRetryTest, TransientFaultsAreRetriedToByteIdenticalResult) {
  if (!failpoint::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  // Acceptance criterion: with transient-I/O failpoints armed at 10%
  // probability, an external sort completes byte-identically to the
  // unfaulted run (the retry layer absorbs every injected flake).
  std::string dir = ::testing::TempDir() + "/rowsort_flaky_spill";
  std::filesystem::create_directories(dir);
  Table input = MakeRandomTable(
      {LogicalType(TypeId::kVarchar), LogicalType(TypeId::kInt32)}, 30000,
      0.1, 67);
  SortSpec spec({SortColumn(0, TypeId::kVarchar), SortColumn(1, TypeId::kInt32)});
  SortEngineConfig config;
  config.run_size_rows = 2048;
  config.spill_directory = dir;
  Table reference = RelationalSort::SortTable(input, spec, config).ValueOrDie();
  ASSERT_TRUE(std::filesystem::is_empty(dir));

  failpoint::ArmProbabilistic("external_run_read_eintr", 0.1, 71);
  failpoint::ArmProbabilistic("external_run_write_short", 0.1, 73);
  SortMetrics metrics;
  auto result = RelationalSort::SortTable(input, spec, config, &metrics);
  failpoint::DisarmAll();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  Table faulted = std::move(result).ValueOrDie();
  EXPECT_GT(metrics.io_retries, 0u) << "failpoints never fired";
  ExpectIdenticalSequences(reference, faulted);
  EXPECT_TRUE(std::filesystem::is_empty(dir)) << "spill files leaked";
  std::filesystem::remove(dir);
}

TEST(MergePathTest, SplitsAreMonotoneAndExact) {
  // Build two sorted runs of int32 keys directly through the engine, then
  // check MergePathSearch invariants on every diagonal.
  Table input = MakeRandomTable({LogicalType(TypeId::kInt32)}, 8192, 0.0, 21);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  SortEngineConfig config;
  config.run_size_rows = 4096;
  RelationalSort sort(spec, input.types(), config);
  auto local = sort.MakeLocalState();
  for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
    ROWSORT_CHECK_OK(sort.Sink(*local, input.chunk(c)));
  }
  ROWSORT_CHECK_OK(sort.CombineLocal(*local));
  // Do not finalize: we want the individual runs. Instead rebuild runs by
  // sorting two halves separately.
  RelationalSort left_sort(spec, input.types(), {});
  RelationalSort right_sort(spec, input.types(), {});
  auto ll = left_sort.MakeLocalState();
  auto rl = right_sort.MakeLocalState();
  for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
    if (c % 2 == 0) {
      ROWSORT_CHECK_OK(left_sort.Sink(*ll, input.chunk(c)));
    } else {
      ROWSORT_CHECK_OK(right_sort.Sink(*rl, input.chunk(c)));
    }
  }
  ROWSORT_CHECK_OK(left_sort.CombineLocal(*ll));
  ROWSORT_CHECK_OK(right_sort.CombineLocal(*rl));
  ROWSORT_CHECK_OK(left_sort.Finalize());
  ROWSORT_CHECK_OK(right_sort.Finalize());

  const SortedRun& left = left_sort.result();
  const SortedRun& right = right_sort.result();
  const TupleComparator& cmp = left_sort.comparator();
  uint64_t total = left.count + right.count;
  uint64_t prev_i = 0;
  for (uint64_t d = 0; d <= total; d += 97) {
    uint64_t i = MergePathSearch(left, right, cmp, d);
    uint64_t j = d - i;
    ASSERT_LE(i, left.count);
    ASSERT_LE(j, right.count);
    ASSERT_GE(i, prev_i) << "split must be monotone in the diagonal";
    prev_i = i;
    // Validity: everything taken from left <= everything remaining in right,
    // and everything taken from right < everything remaining in left.
    if (i > 0 && j < right.count) {
      ASSERT_LE(cmp.Compare(left.KeyRow(i - 1), left.PayloadRow(i - 1),
                            right.KeyRow(j), right.PayloadRow(j)),
                0);
    }
    if (j > 0 && i < left.count) {
      ASSERT_LT(cmp.Compare(right.KeyRow(j - 1), right.PayloadRow(j - 1),
                            left.KeyRow(i), left.PayloadRow(i)),
                0);
    }
  }
}

TEST(TupleComparatorTest, StringPrefixTieDoesNotLeakIntoLaterColumns) {
  // ORDER BY s ASC, i ASC where the 12-byte prefixes of s tie but the full
  // strings differ: the string must decide, not the int.
  std::vector<LogicalType> types = {TypeId::kVarchar, TypeId::kInt32};
  SortSpec spec({SortColumn(0, TypeId::kVarchar), SortColumn(1, TypeId::kInt32)});
  Table input(types);
  DataChunk chunk = input.NewChunk();
  chunk.SetValue(0, 0, Value::Varchar("commonprefix-ZZZ"));
  chunk.SetValue(1, 0, Value::Int32(1));
  chunk.SetValue(0, 1, Value::Varchar("commonprefix-AAA"));
  chunk.SetValue(1, 1, Value::Int32(2));
  chunk.SetSize(2);
  input.Append(std::move(chunk));

  Table output = RelationalSort::SortTable(input, spec).ValueOrDie();
  EXPECT_EQ(output.chunk(0).GetValue(0, 0),
            Value::Varchar("commonprefix-AAA"));
  EXPECT_EQ(output.chunk(0).GetValue(1, 0), Value::Int32(2));
  EXPECT_EQ(output.chunk(0).GetValue(0, 1),
            Value::Varchar("commonprefix-ZZZ"));
}

}  // namespace
}  // namespace rowsort
