// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Concurrency stress: many threads, tiny runs, spilling, strings — the
// combinations most likely to expose races or lifetime bugs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "common/cancellation.h"
#include "common/random.h"
#include "engine/sort_engine.h"
#include "workload/tables.h"
#include "workload/tpcds.h"

namespace rowsort {
namespace {

bool KeyColumnSorted(const Table& t, uint64_t col) {
  Value prev;
  bool have_prev = false;
  for (uint64_t ci = 0; ci < t.ChunkCount(); ++ci) {
    for (uint64_t r = 0; r < t.chunk(ci).size(); ++r) {
      Value cur = t.chunk(ci).GetValue(col, r);
      if (have_prev && !prev.is_null() && !cur.is_null() &&
          prev.Compare(cur) > 0) {
        return false;
      }
      // NULLS LAST: once NULL appears, everything after must be NULL.
      if (have_prev && prev.is_null() && !cur.is_null()) return false;
      prev = std::move(cur);
      have_prev = true;
    }
  }
  return true;
}

TEST(StressTest, EightThreadsTinyRunsStrings) {
  TpcdsScale scale;
  scale.scale_factor = 1;
  scale.scale_divisor = 2;  // 50k customers
  Table input = MakeCustomer(scale);
  SortSpec spec({SortColumn(4, TypeId::kVarchar, OrderType::kAscending,
                            NullOrder::kNullsLast),
                 SortColumn(1, TypeId::kInt32, OrderType::kAscending,
                            NullOrder::kNullsLast)});
  SortEngineConfig config;
  config.threads = 8;
  config.run_size_rows = kVectorSize;  // one run per chunk
  SortMetrics metrics;
  Table output = RelationalSort::SortTable(input, spec, config, &metrics).ValueOrDie();
  EXPECT_EQ(output.row_count(), input.row_count());
  EXPECT_GT(metrics.runs_generated, 10u);
  EXPECT_TRUE(KeyColumnSorted(output, 4));
}

TEST(StressTest, ParallelSinkWithSpilling) {
  std::string dir = ::testing::TempDir() + "/rowsort_parallel_spill";
  std::string cmd = "mkdir -p " + dir;
  ASSERT_EQ(std::system(cmd.c_str()), 0);

  Table input = MakeShuffledIntegerTable(120000, 9);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  SortEngineConfig config;
  config.threads = 4;
  config.run_size_rows = 8192;  // many spilled runs from multiple threads
  config.spill_directory = dir;
  SortMetrics metrics;
  Table output = RelationalSort::SortTable(input, spec, config, &metrics).ValueOrDie();
  EXPECT_EQ(output.row_count(), 120000u);
  EXPECT_GT(metrics.runs_generated, 8u);
  EXPECT_TRUE(KeyColumnSorted(output, 0));
  // Exactly sorted: shuffled 0..n-1 must come back as the identity.
  EXPECT_EQ(output.chunk(0).GetValue(0, 0), Value::Int32(0));
  EXPECT_EQ(output.chunk(0).GetValue(0, 1), Value::Int32(1));
}

TEST(StressTest, RepeatedSortsReuseNoState) {
  // The same RelationalSort object is single-use, but SortTable must be
  // callable back-to-back with identical results (no global state).
  Table input = MakeShuffledIntegerTable(30000, 12);
  SortSpec spec({SortColumn(0, TypeId::kInt32, OrderType::kDescending,
                            NullOrder::kNullsLast)});
  Table first = RelationalSort::SortTable(input, spec).ValueOrDie();
  for (int round = 0; round < 3; ++round) {
    Table again = RelationalSort::SortTable(input, spec).ValueOrDie();
    ASSERT_EQ(again.row_count(), first.row_count());
    for (uint64_t ci = 0; ci < first.ChunkCount(); ++ci) {
      for (uint64_t r = 0; r < first.chunk(ci).size(); r += 997) {
        ASSERT_EQ(again.chunk(ci).GetValue(0, r),
                  first.chunk(ci).GetValue(0, r));
      }
    }
  }
}

TEST(StressTest, ManyConcurrentSortTables) {
  // Several sorts sharing the process (each with its own pool) must not
  // interfere.
  ThreadPool outer(3);
  std::atomic<int> failures{0};
  outer.ParallelFor(3, [&failures](uint64_t i) {
    Table input = MakeShuffledIntegerTable(20000, 100 + i);
    SortSpec spec({SortColumn(0, TypeId::kInt32)});
    SortEngineConfig config;
    config.threads = 2;
    config.run_size_rows = 4096;
    Table output = RelationalSort::SortTable(input, spec, config).ValueOrDie();
    if (output.row_count() != 20000 ||
        !(output.chunk(0).GetValue(0, 0) == Value::Int32(0))) {
      failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(StressTest, ConcurrentCancelUnderContention) {
  // TSan target: many rounds of a multi-threaded spilling sort racing an
  // external canceller thread. Whatever interleaving the scheduler picks,
  // each round must end in a full result or Status::Cancelled (no deadlock,
  // no crash, no partial table) and leave the spill directory empty.
  std::string dir = ::testing::TempDir() + "/rowsort_concurrent_cancel";
  std::filesystem::create_directories(dir);
  Table input = MakeShuffledIntegerTable(60000, 21);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});

  Random rng(23);
  for (int round = 0; round < 6; ++round) {
    SortEngineConfig config;
    config.threads = 4;
    config.run_size_rows = 4096;
    config.memory_limit_bytes = 256 * 1024;
    config.spill_directory = dir;
    CancellationSource source;
    config.cancellation = source.token();

    // Several canceller threads race each other and the sort: cancellation
    // must be idempotent (first cause wins) and data-race free.
    uint64_t delay_us = rng.Uniform(20'000);
    std::vector<std::thread> cancellers;
    for (int t = 0; t < 3; ++t) {
      cancellers.emplace_back([&source, delay_us, t] {
        std::this_thread::sleep_for(
            std::chrono::microseconds(delay_us + 100 * t));
        source.RequestCancel();
      });
    }
    auto result = RelationalSort::SortTable(input, spec, config);
    for (auto& t : cancellers) t.join();
    if (result.ok()) {
      Table output = std::move(result).ValueOrDie();
      ASSERT_EQ(output.row_count(), input.row_count());
      EXPECT_TRUE(KeyColumnSorted(output, 0));
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
          << result.status().ToString();
    }
    ASSERT_TRUE(std::filesystem::is_empty(dir))
        << "spill files leaked in round " << round;
  }
  std::filesystem::remove(dir);
}

TEST(StressTest, DeadlineRacesCompletion) {
  // Deadline expiry racing natural completion: both outcomes are legal,
  // neither may crash, deadlock, or leak. Exercises the latched deadline
  // check (IsCancelled marks kDeadline on first observation) from many
  // worker threads at once.
  Table input = MakeShuffledIntegerTable(40000, 27);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  for (int round = 0; round < 6; ++round) {
    SortEngineConfig config;
    config.threads = 4;
    config.run_size_rows = 2048;
    CancellationSource source(Deadline::AfterMicros(500 * (round + 1)));
    config.cancellation = source.token();
    SortMetrics metrics;
    auto result = RelationalSort::SortTable(input, spec, config, &metrics);
    if (result.ok()) {
      EXPECT_EQ(std::move(result).ValueOrDie().row_count(),
                input.row_count());
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
          << result.status().ToString();
      EXPECT_GT(metrics.cancel_checks, 0u);
    }
  }
}

}  // namespace
}  // namespace rowsort
