// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Concurrency stress: many threads, tiny runs, spilling, strings — the
// combinations most likely to expose races or lifetime bugs.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "common/cancellation.h"
#include "common/random.h"
#include "common/timer.h"
#include "common/trace.h"
#include "engine/external_run.h"
#include "engine/profile.h"
#include "engine/sort_engine.h"
#include "workload/tables.h"
#include "workload/tpcds.h"

namespace rowsort {
namespace {

bool KeyColumnSorted(const Table& t, uint64_t col) {
  Value prev;
  bool have_prev = false;
  for (uint64_t ci = 0; ci < t.ChunkCount(); ++ci) {
    for (uint64_t r = 0; r < t.chunk(ci).size(); ++r) {
      Value cur = t.chunk(ci).GetValue(col, r);
      if (have_prev && !prev.is_null() && !cur.is_null() &&
          prev.Compare(cur) > 0) {
        return false;
      }
      // NULLS LAST: once NULL appears, everything after must be NULL.
      if (have_prev && prev.is_null() && !cur.is_null()) return false;
      prev = std::move(cur);
      have_prev = true;
    }
  }
  return true;
}

TEST(StressTest, EightThreadsTinyRunsStrings) {
  TpcdsScale scale;
  scale.scale_factor = 1;
  scale.scale_divisor = 2;  // 50k customers
  Table input = MakeCustomer(scale);
  SortSpec spec({SortColumn(4, TypeId::kVarchar, OrderType::kAscending,
                            NullOrder::kNullsLast),
                 SortColumn(1, TypeId::kInt32, OrderType::kAscending,
                            NullOrder::kNullsLast)});
  SortEngineConfig config;
  config.threads = 8;
  config.run_size_rows = kVectorSize;  // one run per chunk
  SortMetrics metrics;
  Table output = RelationalSort::SortTable(input, spec, config, &metrics).ValueOrDie();
  EXPECT_EQ(output.row_count(), input.row_count());
  EXPECT_GT(metrics.runs_generated, 10u);
  EXPECT_TRUE(KeyColumnSorted(output, 4));
}

TEST(StressTest, ParallelSinkWithSpilling) {
  std::string dir = ::testing::TempDir() + "/rowsort_parallel_spill";
  std::string cmd = "mkdir -p " + dir;
  ASSERT_EQ(std::system(cmd.c_str()), 0);

  Table input = MakeShuffledIntegerTable(120000, 9);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  SortEngineConfig config;
  config.threads = 4;
  config.run_size_rows = 8192;  // many spilled runs from multiple threads
  config.spill_directory = dir;
  SortMetrics metrics;
  Table output = RelationalSort::SortTable(input, spec, config, &metrics).ValueOrDie();
  EXPECT_EQ(output.row_count(), 120000u);
  EXPECT_GT(metrics.runs_generated, 8u);
  EXPECT_TRUE(KeyColumnSorted(output, 0));
  // Exactly sorted: shuffled 0..n-1 must come back as the identity.
  EXPECT_EQ(output.chunk(0).GetValue(0, 0), Value::Int32(0));
  EXPECT_EQ(output.chunk(0).GetValue(0, 1), Value::Int32(1));
}

TEST(StressTest, RepeatedSortsReuseNoState) {
  // The same RelationalSort object is single-use, but SortTable must be
  // callable back-to-back with identical results (no global state).
  Table input = MakeShuffledIntegerTable(30000, 12);
  SortSpec spec({SortColumn(0, TypeId::kInt32, OrderType::kDescending,
                            NullOrder::kNullsLast)});
  Table first = RelationalSort::SortTable(input, spec).ValueOrDie();
  for (int round = 0; round < 3; ++round) {
    Table again = RelationalSort::SortTable(input, spec).ValueOrDie();
    ASSERT_EQ(again.row_count(), first.row_count());
    for (uint64_t ci = 0; ci < first.ChunkCount(); ++ci) {
      for (uint64_t r = 0; r < first.chunk(ci).size(); r += 997) {
        ASSERT_EQ(again.chunk(ci).GetValue(0, r),
                  first.chunk(ci).GetValue(0, r));
      }
    }
  }
}

TEST(StressTest, ManyConcurrentSortTables) {
  // Several sorts sharing the process (each with its own pool) must not
  // interfere.
  ThreadPool outer(3);
  std::atomic<int> failures{0};
  outer.ParallelFor(3, [&failures](uint64_t i) {
    Table input = MakeShuffledIntegerTable(20000, 100 + i);
    SortSpec spec({SortColumn(0, TypeId::kInt32)});
    SortEngineConfig config;
    config.threads = 2;
    config.run_size_rows = 4096;
    Table output = RelationalSort::SortTable(input, spec, config).ValueOrDie();
    if (output.row_count() != 20000 ||
        !(output.chunk(0).GetValue(0, 0) == Value::Int32(0))) {
      failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(StressTest, OverlappedSpillSharedWorkerContention) {
  // TSan target for the write-behind / readahead handoff: four threads
  // each stream several runs through ONE shared background I/O worker —
  // writer and reader of each thread interleave their jobs on the worker's
  // queue with everyone else's, so the double-buffer swap, the ticket
  // wait/consume, and the shared overlap counters all race-test at once.
  std::string dir = ::testing::TempDir() + "/rowsort_overlap_stress";
  std::filesystem::create_directories(dir);
  RowLayout layout({TypeId::kInt32, TypeId::kInt64});
  IoWorker worker;
  SpillOverlapStats overlap;
  SpillIoProfile io_profile;
  std::atomic<int> failures{0};

  auto stream_runs = [&](uint64_t thread_id) {
    Random rng(1000 + thread_id);
    for (int round = 0; round < 3; ++round) {
      SortedRun run;
      run.count = 10000;
      run.key_row_width = 16;
      run.key_rows.resize(run.count * run.key_row_width);
      for (auto& b : run.key_rows) b = static_cast<uint8_t>(rng.Next32());
      run.payload = RowCollection(layout);
      DataChunk chunk;
      chunk.Initialize(layout.types(), kVectorSize);
      uint64_t produced = 0;
      while (produced < run.count) {
        uint64_t n = std::min(kVectorSize, run.count - produced);
        for (uint64_t i = 0; i < n; ++i) {
          chunk.SetValue(0, i, Value::Int32(static_cast<int32_t>(i)));
          chunk.SetValue(1, i, Value::Int64(static_cast<int64_t>(produced)));
        }
        chunk.SetSize(n);
        run.payload.AppendChunk(chunk);
        produced += n;
      }

      SpillIoOptions io;
      io.worker = &worker;
      io.overlap_stats = &overlap;
      io.io_profile = &io_profile;
      std::string path = dir + "/t" + std::to_string(thread_id) + "_r" +
                         std::to_string(round) + ".rsrun";
      if (!WriteRunToFile(run, layout, path, io).ok()) {
        failures.fetch_add(1);
        continue;
      }
      auto loaded = ReadRunFromFile(layout, path, io);
      if (!loaded.ok() || loaded.value().count != run.count ||
          loaded.value().key_rows != run.key_rows) {
        failures.fetch_add(1);
      }
      std::remove(path.c_str());
    }
  };
  std::vector<std::thread> threads;
  for (uint64_t t = 0; t < 4; ++t) threads.emplace_back(stream_runs, t);
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  std::filesystem::remove_all(dir);
}

TEST(StressTest, OverlappedSpillingSortsRaceEachOther) {
  // Whole-pipeline TSan target: concurrent memory-limited sorts, each with
  // its own background I/O worker, write-behind spills and prefetching
  // merge readers all active at once.
  ThreadPool outer(3);
  std::atomic<int> failures{0};
  outer.ParallelFor(3, [&failures](uint64_t i) {
    Table input = MakeShuffledIntegerTable(60000, 200 + i);
    SortSpec spec({SortColumn(0, TypeId::kInt32)});
    SortEngineConfig config;
    config.threads = 2;
    config.run_size_rows = 4096;
    config.memory_limit_bytes = 512 * 1024;
    SortMetrics metrics;
    auto result = RelationalSort::SortTable(input, spec, config, &metrics);
    if (!result.ok() || result.value().row_count() != 60000 ||
        metrics.runs_spilled == 0 ||
        !(result.value().chunk(0).GetValue(0, 0) == Value::Int32(0))) {
      failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(StressTest, ConcurrentCancelUnderContention) {
  // TSan target: many rounds of a multi-threaded spilling sort racing an
  // external canceller thread. Whatever interleaving the scheduler picks,
  // each round must end in a full result or Status::Cancelled (no deadlock,
  // no crash, no partial table) and leave the spill directory empty.
  std::string dir = ::testing::TempDir() + "/rowsort_concurrent_cancel";
  std::filesystem::create_directories(dir);
  Table input = MakeShuffledIntegerTable(60000, 21);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});

  Random rng(23);
  for (int round = 0; round < 6; ++round) {
    SortEngineConfig config;
    config.threads = 4;
    config.run_size_rows = 4096;
    config.memory_limit_bytes = 256 * 1024;
    config.spill_directory = dir;
    CancellationSource source;
    config.cancellation = source.token();

    // Several canceller threads race each other and the sort: cancellation
    // must be idempotent (first cause wins) and data-race free.
    uint64_t delay_us = rng.Uniform(20'000);
    std::vector<std::thread> cancellers;
    for (int t = 0; t < 3; ++t) {
      cancellers.emplace_back([&source, delay_us, t] {
        std::this_thread::sleep_for(
            std::chrono::microseconds(delay_us + 100 * t));
        source.RequestCancel();
      });
    }
    auto result = RelationalSort::SortTable(input, spec, config);
    for (auto& t : cancellers) t.join();
    if (result.ok()) {
      Table output = std::move(result).ValueOrDie();
      ASSERT_EQ(output.row_count(), input.row_count());
      EXPECT_TRUE(KeyColumnSorted(output, 0));
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
          << result.status().ToString();
    }
    ASSERT_TRUE(std::filesystem::is_empty(dir))
        << "spill files leaked in round " << round;
  }
  std::filesystem::remove(dir);
}

TEST(StressTest, DeadlineRacesCompletion) {
  // Deadline expiry racing natural completion: both outcomes are legal,
  // neither may crash, deadlock, or leak. Exercises the latched deadline
  // check (IsCancelled marks kDeadline on first observation) from many
  // worker threads at once.
  Table input = MakeShuffledIntegerTable(40000, 27);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  for (int round = 0; round < 6; ++round) {
    SortEngineConfig config;
    config.threads = 4;
    config.run_size_rows = 2048;
    CancellationSource source(Deadline::AfterMicros(500 * (round + 1)));
    config.cancellation = source.token();
    SortMetrics metrics;
    auto result = RelationalSort::SortTable(input, spec, config, &metrics);
    if (result.ok()) {
      EXPECT_EQ(std::move(result).ValueOrDie().row_count(),
                input.row_count());
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
          << result.status().ToString();
      EXPECT_GT(metrics.cancel_checks, 0u);
    }
  }
}

TEST(StressTest, ConcurrentSinkTimingAggregation) {
  // Eight threads sink and sort concurrently while the profile and a live
  // tracer record everything. All per-thread timing flows through exactly
  // one aggregation path (LocalState::profile_ folded at CombineLocal), so
  // this must be race-free under TSan. Repeated so scheduling varies.
  Table input = MakeShuffledIntegerTable(120000, 31);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  for (int round = 0; round < 4; ++round) {
    SortEngineConfig config;
    config.threads = 8;
    config.run_size_rows = 4096;
    Tracer tracer(1 << 12);
    config.trace = &tracer;
    SortMetrics metrics;
    SortProfile profile;
    Table output =
        RelationalSort::SortTable(input, spec, config, &metrics, &profile)
            .ValueOrDie();
    EXPECT_EQ(output.row_count(), input.row_count());

    // Every sunk chunk and generated run was attributed to some thread.
    const ProfileNode* sink = profile.root().FindChild("sink");
    ASSERT_NE(sink, nullptr);
    uint64_t rows = 0;
    for (const auto& child : sink->children) rows += child->rows;
    EXPECT_EQ(rows, input.row_count());
    const ProfileNode* run_sort = profile.root().FindChild("run_sort");
    ASSERT_NE(run_sort, nullptr);
    uint64_t runs = 0;
    for (const auto& child : run_sort->children) {
      runs += child->latencies.count();
    }
    EXPECT_EQ(runs, metrics.runs_generated);
  }
}

TEST(StressTest, DisabledTracingOverheadIsBounded) {
  // The observability bargain: an attached-but-disabled tracer costs one
  // relaxed load per call site. Compare best-of-3 sorts with no tracer
  // against best-of-3 with a disabled tracer attached; the ratio must stay
  // small. Deliberately loose (CI machines are noisy) — this catches "the
  // disabled path accidentally reads the clock", not a 2% regression
  // (bench_fig11_pipeline_phases tracks that).
  Table input = MakeShuffledIntegerTable(1000000, 17);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  auto best_of = [&](Tracer* tracer) {
    double best = 1e30;
    for (int i = 0; i < 3; ++i) {
      SortEngineConfig config;
      config.threads = 2;
      config.run_size_rows = 256 * 1024;
      config.trace = tracer;
      Timer timer;
      RelationalSort::SortTable(input, spec, config).ValueOrDie();
      best = std::min(best, timer.ElapsedSeconds());
    }
    return best;
  };
  double without = best_of(nullptr);
  Tracer disabled;
  disabled.set_enabled(false);
  double with_disabled = best_of(&disabled);
  EXPECT_EQ(disabled.Snapshot().size(), 0u);
  EXPECT_LT(with_disabled, without * 1.5 + 0.05)
      << "disabled tracing cost " << with_disabled << "s vs " << without
      << "s untraced";
}

}  // namespace
}  // namespace rowsort
