// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Hierarchical sort profiles (engine/profile.h): the duration histograms,
// the profile tree, JSON/pretty export, reconciliation of the profile's
// phase timings with SortMetrics, spill accounting, partial profiles after
// cancellation, and SortMetrics::Reset() on engine reuse.
#include "engine/profile.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "common/cancellation.h"
#include "common/histogram.h"
#include "engine/sort_engine.h"
#include "workload/tables.h"

namespace rowsort {
namespace {

// ---------------------------------------------------------------- histogram

TEST(DurationHistogramTest, BucketsAreLog2) {
  EXPECT_EQ(DurationBucketIndex(0), 0u);
  EXPECT_EQ(DurationBucketIndex(1), 1u);
  EXPECT_EQ(DurationBucketIndex(2), 2u);
  EXPECT_EQ(DurationBucketIndex(3), 2u);  // [2, 4)
  EXPECT_EQ(DurationBucketIndex(4), 3u);  // [4, 8)
  EXPECT_EQ(DurationBucketIndex(1023), 10u);
  EXPECT_EQ(DurationBucketIndex(1024), 11u);
  // The tail bucket absorbs everything.
  EXPECT_EQ(DurationBucketIndex(~uint64_t{0}), kDurationHistogramBuckets - 1);
  EXPECT_EQ(DurationBucketLowerNs(0), 0u);
  EXPECT_EQ(DurationBucketLowerNs(1), 1u);
  EXPECT_EQ(DurationBucketLowerNs(11), 1024u);
}

TEST(DurationHistogramTest, RecordAndStats) {
  DurationHistogram h;
  h.Record(100);
  h.Record(200);
  h.Record(3000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.total_ns(), 3300u);
  EXPECT_EQ(h.max_ns(), 3000u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 1100.0);
  // All three in distinct buckets; the p99 upper bound covers the max.
  EXPECT_GE(h.QuantileUpperNs(0.99), 3000u);
  // The median's bucket upper edge covers 200 but not 3000.
  EXPECT_GE(h.QuantileUpperNs(0.5), 200u);
  EXPECT_LT(h.QuantileUpperNs(0.5), 3000u);
}

TEST(DurationHistogramTest, MergeAddsCountsAndKeepsMax) {
  DurationHistogram a, b;
  a.Record(10);
  b.Record(1000);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.total_ns(), 2010u);
  EXPECT_EQ(a.max_ns(), 1000u);
}

TEST(DurationHistogramTest, SparseJson) {
  DurationHistogram h;
  h.Record(5);  // bucket [4, 8)
  std::string json = h.ToJson();
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"total_ns\":5"), std::string::npos);
  EXPECT_NE(json.find("\"4\":1"), std::string::npos);
  // Sparse: empty buckets do not appear.
  EXPECT_EQ(json.find("\"1\":"), std::string::npos);
}

TEST(DurationHistogramTest, AtomicSnapshotMatchesPlainRecording) {
  AtomicDurationHistogram atomic;
  DurationHistogram plain;
  for (uint64_t ns : {7u, 300u, 300u, 90000u}) {
    atomic.Record(ns);
    plain.Record(ns);
  }
  DurationHistogram snap = atomic.Snapshot();
  EXPECT_EQ(snap.count(), plain.count());
  EXPECT_EQ(snap.total_ns(), plain.total_ns());
  EXPECT_EQ(snap.max_ns(), plain.max_ns());
  for (uint64_t i = 0; i < kDurationHistogramBuckets; ++i) {
    EXPECT_EQ(snap.bucket(i), plain.bucket(i)) << "bucket " << i;
  }
}

// ------------------------------------------------------------ profile tree

TEST(ProfileNodeTest, ChildFindOrCreateAndCounters) {
  ProfileNode root("sort");
  ProfileNode* sink = root.Child("sink");
  EXPECT_EQ(root.Child("sink"), sink);  // find, not re-create
  EXPECT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.FindChild("merge"), nullptr);

  sink->SetCounter("bytes", 10);
  sink->SetCounter("bytes", 42);  // assignment-style, not additive
  EXPECT_EQ(sink->counter("bytes"), 42u);
  EXPECT_EQ(sink->counter("missing"), 0u);
}

TEST(SortProfileTest, FoldThreadIsIdempotentPerOrdinal) {
  SortProfile profile;
  ThreadProfile thread;
  thread.chunks = 4;
  thread.rows = 1000;
  thread.sink_seconds = 0.5;
  profile.FoldThread(0, thread);
  profile.FoldThread(0, thread);  // re-fold replaces, never double-counts
  const ProfileNode* sink = profile.root().FindChild("sink");
  ASSERT_NE(sink, nullptr);
  const ProfileNode* t0 = sink->FindChild("thread-0");
  ASSERT_NE(t0, nullptr);
  EXPECT_EQ(t0->invocations, 4u);
  EXPECT_EQ(t0->rows, 1000u);
  EXPECT_DOUBLE_EQ(t0->seconds, 0.5);
}

TEST(SortProfileTest, PhaseAndMergeRoundNodes) {
  SortProfile profile;
  EXPECT_EQ(profile.active_phase(), SortPhase::kIdle);
  profile.EnterPhase(SortPhase::kMerge);
  EXPECT_EQ(profile.active_phase(), SortPhase::kMerge);
  EXPECT_STREQ(SortPhaseName(profile.active_phase()), "merge");

  profile.SetPhaseSeconds(1.0, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(profile.PhaseSeconds("sink"), 1.0);
  EXPECT_DOUBLE_EQ(profile.PhaseSeconds("run_sort"), 2.0);
  EXPECT_DOUBLE_EQ(profile.PhaseSeconds("merge"), 3.0);
  EXPECT_DOUBLE_EQ(profile.root().seconds, 6.0);

  profile.SetMergeRound(1, 8, 4000, 0.25);
  const ProfileNode* merge = profile.root().FindChild("merge");
  ASSERT_NE(merge, nullptr);
  const ProfileNode* round = merge->FindChild("round-1");
  ASSERT_NE(round, nullptr);
  EXPECT_EQ(round->invocations, 8u);
  EXPECT_EQ(round->rows, 4000u);
  EXPECT_DOUBLE_EQ(round->seconds, 0.25);
}

TEST(SortProfileTest, JsonGolden) {
  SortProfile profile;
  profile.EnterPhase(SortPhase::kDone);
  profile.SetRows(123);
  profile.SetPhaseSeconds(0.5, 1.5, 0.25);
  profile.SetRootCounter("runs_generated", 4);
  ThreadProfile thread;
  thread.chunks = 2;
  thread.sink_chunk_ns.Record(1000);
  thread.sink_chunk_ns.Record(2000);
  profile.FoldThread(0, thread);

  std::string json = profile.ToJson();
  EXPECT_NE(json.find("\"schema\":\"rowsort.profile.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"active_phase\":\"done\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sort\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\":123"), std::string::npos);
  EXPECT_NE(json.find("\"runs_generated\":4"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sink\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"thread-0\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_ns\""), std::string::npos);

  std::string pretty = profile.ToString();
  EXPECT_NE(pretty.find("sort profile (phase: done)"), std::string::npos);
  EXPECT_NE(pretty.find("thread-0"), std::string::npos);
}

TEST(SortProfileTest, WriteJsonRoundTrip) {
  SortProfile profile;
  profile.SetRows(7);
  std::string path =
      std::string(::testing::TempDir()) + "/rowsort_profile_test.json";
  ASSERT_TRUE(profile.WriteJson(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents(1 << 16, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(contents, profile.ToJson() + "\n");  // file gets a newline
}

// ---------------------------------------------------- end-to-end profiling

SortSpec IntSpec() { return SortSpec({SortColumn(0, TypeId::kInt32)}); }

TEST(SortProfileEndToEndTest, PhaseSecondsReconcileWithMetrics) {
  Table input = MakeShuffledIntegerTable(200'000, 7);
  SortEngineConfig config;
  config.threads = 4;
  config.run_size_rows = 32 * 1024;
  SortMetrics metrics;
  SortProfile profile;
  auto sorted =
      RelationalSort::SortTable(input, IntSpec(), config, &metrics, &profile);
  ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();

  EXPECT_EQ(profile.active_phase(), SortPhase::kDone);
  EXPECT_EQ(profile.root().rows, 200'000u);
  // The acceptance criterion: the profile's phase seconds must reconcile
  // with SortMetrics within 5%. They are assigned from the same values, so
  // here they must match exactly.
  EXPECT_DOUBLE_EQ(profile.PhaseSeconds("sink"), metrics.sink_seconds);
  EXPECT_DOUBLE_EQ(profile.PhaseSeconds("run_sort"),
                   metrics.run_sort_seconds);
  EXPECT_DOUBLE_EQ(profile.PhaseSeconds("merge"), metrics.merge_seconds);
  EXPECT_EQ(profile.root().counter("runs_generated"),
            metrics.runs_generated);

  // Per-thread folds must reconcile with the phase totals: the sink node's
  // children sum to the sink phase (same numbers, different grouping).
  const ProfileNode* sink = profile.root().FindChild("sink");
  ASSERT_NE(sink, nullptr);
  EXPECT_NEAR(sink->ChildSeconds(), metrics.sink_seconds,
              metrics.sink_seconds * 0.05 + 1e-9);
  uint64_t sink_rows = 0;
  for (const auto& child : sink->children) sink_rows += child->rows;
  EXPECT_EQ(sink_rows, 200'000u);

  // The run_sort children carry one block-sort latency per generated run.
  const ProfileNode* run_sort = profile.root().FindChild("run_sort");
  ASSERT_NE(run_sort, nullptr);
  uint64_t block_sorts = 0;
  for (const auto& child : run_sort->children) {
    block_sorts += child->latencies.count();
  }
  EXPECT_EQ(block_sorts, metrics.runs_generated);

  // Pool stats were folded for the internal pool.
  const ProfileNode* parallel = profile.root().FindChild("parallel");
  ASSERT_NE(parallel, nullptr);
  EXPECT_GT(parallel->counter("batches"), 0u);
}

TEST(SortProfileEndToEndTest, SpillNodeAppearsUnderMemoryLimit) {
  std::string dir =
      std::string(::testing::TempDir()) + "/rowsort_profile_spill";
  std::filesystem::create_directories(dir);
  Table input = MakeShuffledIntegerTable(100'000, 11);
  SortEngineConfig config;
  config.run_size_rows = 8 * 1024;
  config.memory_limit_bytes = 256 * 1024;
  config.spill_directory = dir;
  SortMetrics metrics;
  SortProfile profile;
  auto sorted =
      RelationalSort::SortTable(input, IntSpec(), config, &metrics, &profile);
  ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
  ASSERT_GT(metrics.runs_spilled, 0u);

  const ProfileNode* spill = profile.root().FindChild("spill");
  ASSERT_NE(spill, nullptr);
  const ProfileNode* write = spill->FindChild("write");
  const ProfileNode* read = spill->FindChild("read");
  ASSERT_NE(write, nullptr);
  ASSERT_NE(read, nullptr);
  EXPECT_GT(write->invocations, 0u);
  EXPECT_GT(write->counter("bytes"), 0u);
  EXPECT_GT(read->invocations, 0u);
  // Every spilled row is read back (the final run is loaded from disk too).
  EXPECT_GT(write->rows, 0u);
  EXPECT_GE(read->rows, write->rows);
  std::filesystem::remove_all(dir);
}

TEST(SortProfileEndToEndTest, PartialProfileAfterCancellation) {
  Table input = MakeShuffledIntegerTable(400'000, 13);
  SortEngineConfig config;
  config.threads = 2;
  config.run_size_rows = 16 * 1024;
  CancellationSource source;
  source.RequestCancel();  // cancelled before the sort even starts
  config.cancellation = source.token();
  SortMetrics metrics;
  SortProfile profile;
  auto sorted =
      RelationalSort::SortTable(input, IntSpec(), config, &metrics, &profile);
  ASSERT_FALSE(sorted.ok());
  EXPECT_TRUE(sorted.status().IsCancellation())
      << sorted.status().ToString();

  // The partial profile still exports and records where the pipeline was.
  EXPECT_NE(profile.active_phase(), SortPhase::kDone);
  std::string json = profile.ToJson();
  EXPECT_NE(json.find("\"schema\":\"rowsort.profile.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"active_phase\":"), std::string::npos);
}

TEST(SortProfileEndToEndTest, MetricsResetOnReuse) {
  Table input = MakeShuffledIntegerTable(50'000, 3);
  SortEngineConfig config;
  config.run_size_rows = 8 * 1024;
  SortMetrics metrics;
  ASSERT_TRUE(
      RelationalSort::SortTable(input, IntSpec(), config, &metrics).ok());
  uint64_t first_runs = metrics.runs_generated;
  ASSERT_GT(first_runs, 0u);
  ASSERT_EQ(metrics.rows, 50'000u);

  // Reusing the same struct must not accumulate: SortTable Reset()s it, so
  // the second sort reports 50k rows again, not 100k.
  ASSERT_TRUE(
      RelationalSort::SortTable(input, IntSpec(), config, &metrics).ok());
  EXPECT_EQ(metrics.runs_generated, first_runs);
  EXPECT_EQ(metrics.rows, 50'000u);

  // And Reset() itself zeroes everything.
  metrics.Reset();
  EXPECT_EQ(metrics.runs_generated, 0u);
  EXPECT_EQ(metrics.rows, 0u);
  EXPECT_DOUBLE_EQ(metrics.sink_seconds, 0.0);
  EXPECT_DOUBLE_EQ(metrics.merge_seconds, 0.0);
}

TEST(SortProfileEndToEndTest, TraceSpansCoverThePipeline) {
  Table input = MakeShuffledIntegerTable(100'000, 5);
  SortEngineConfig config;
  config.threads = 2;
  config.run_size_rows = 16 * 1024;
  Tracer tracer;
  config.trace = &tracer;
  ASSERT_TRUE(RelationalSort::SortTable(input, IntSpec(), config).ok());

  bool saw_sink = false, saw_run_sort = false, saw_merge = false;
  for (const auto& e : tracer.Snapshot()) {
    if (e.kind != TraceEvent::Kind::kSpan) continue;
    std::string name = e.name;
    saw_sink |= name == "sink.chunk";
    saw_run_sort |= name == "run.sort";
    saw_merge |= name == "merge.slice" || name == "merge.kway" ||
                 name == "merge.phase";
  }
  EXPECT_TRUE(saw_sink);
  EXPECT_TRUE(saw_run_sort);
  EXPECT_TRUE(saw_merge);
}

}  // namespace
}  // namespace rowsort
