// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include <gtest/gtest.h>

#include "common/random.h"
#include "perfmodel/branch_sim.h"
#include "perfmodel/cache_sim.h"
#include "perfmodel/counters.h"
#include "workload/microbench.h"

namespace rowsort {
namespace {

TEST(CacheSimTest, SequentialAccessHitsWithinLines) {
  CacheSim cache(32 * 1024, 64, 8);
  std::vector<uint8_t> data(4096);
  for (uint64_t i = 0; i < data.size(); ++i) {
    cache.Access(data.data() + i, 1);
  }
  // One miss per 64-byte line.
  EXPECT_EQ(cache.misses(), 4096u / 64);
  EXPECT_EQ(cache.accesses(), 4096u);
}

TEST(CacheSimTest, RepeatedAccessToResidentSetAllHits) {
  CacheSim cache(32 * 1024, 64, 8);
  std::vector<uint8_t> data(16 * 1024);  // fits in the cache
  for (int pass = 0; pass < 3; ++pass) {
    for (uint64_t i = 0; i < data.size(); i += 64) {
      cache.Access(data.data() + i, 1);
    }
  }
  // Misses only on the first pass.
  EXPECT_EQ(cache.misses(), 16u * 1024 / 64);
}

TEST(CacheSimTest, WorkingSetLargerThanCacheThrashes) {
  CacheSim cache(32 * 1024, 64, 8);
  std::vector<uint8_t> data(1024 * 1024);  // 32x the cache
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t i = 0; i < data.size(); i += 64) {
      cache.Access(data.data() + i, 1);
    }
  }
  // LRU + sequential sweep of 32x capacity: everything misses.
  EXPECT_EQ(cache.misses(), cache.accesses());
}

TEST(CacheSimTest, MultiByteAccessSpanningLinesTouchesBoth) {
  CacheSim cache;
  alignas(64) static uint8_t buffer[256];
  cache.Access(buffer + 60, 8);  // straddles a 64-byte boundary
  EXPECT_EQ(cache.accesses(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(BranchSimTest, AlwaysTakenIsLearned) {
  BranchSim sim;
  for (int i = 0; i < 1000; ++i) sim.Record(1, true);
  // After warm-up, no mispredictions.
  EXPECT_LT(sim.mispredictions(), 20u);
  EXPECT_EQ(sim.branches(), 1000u);
}

TEST(BranchSimTest, AlternatingPatternIsLearnedViaHistory) {
  BranchSim sim;
  for (int i = 0; i < 4000; ++i) sim.Record(1, i % 2 == 0);
  // gshare history captures strict alternation after warm-up.
  EXPECT_LT(sim.mispredictions(), 500u);
}

TEST(BranchSimTest, RandomOutcomesMispredictHalfTheTime) {
  BranchSim sim;
  Random rng(4);
  for (int i = 0; i < 20000; ++i) sim.Record(1, rng.Bernoulli(0.5));
  double rate = double(sim.mispredictions()) / double(sim.branches());
  EXPECT_GT(rate, 0.40);
  EXPECT_LT(rate, 0.60);
}

MicroColumns Corr05(uint64_t rows, uint64_t cols) {
  MicroWorkload w;
  w.num_rows = rows;
  w.num_key_columns = cols;
  w.distribution = MicroDistribution::kCorrelated;
  w.correlation = 0.5;
  return GenerateMicroColumns(w);
}

// Qualitative reproduction of the paper's counter findings at a size where
// the data is far larger than the simulated 32 KiB L1.
TEST(CounterExperimentsTest, ColumnarIncursFarMoreMissesThanRow) {
  // Paper: "sorting the row data format incurs an order of magnitude fewer
  // cache misses than sorting columnar format data" (§IV-B, Tables II/III).
  auto columns = Corr05(1 << 15, 4);
  PerfCounters columnar = CountColumnarTupleAtATime(columns);
  PerfCounters row = CountRowTupleAtATime(columns);
  EXPECT_GT(columnar.cache_misses, 4 * row.cache_misses);
}

TEST(CounterExperimentsTest, SubsortHasFewerBranchMissesThanTuple) {
  // Paper Table II: subsort's branch-free single-column comparator
  // mispredicts less than the tuple-at-a-time comparator.
  auto columns = Corr05(1 << 14, 4);
  PerfCounters tuple = CountColumnarTupleAtATime(columns);
  PerfCounters subsort = CountColumnarSubsort(columns);
  EXPECT_LT(subsort.branch_misses, tuple.branch_misses);
}

TEST(CounterExperimentsTest, RowSubsortFewerBranchMissesMoreMisses) {
  // Paper Table III: on rows, subsort has fewer branch mispredictions but
  // slightly more cache misses (tie re-scans) than tuple-at-a-time.
  auto columns = Corr05(1 << 14, 4);
  PerfCounters tuple = CountRowTupleAtATime(columns);
  PerfCounters subsort = CountRowSubsort(columns);
  EXPECT_LT(subsort.branch_misses, tuple.branch_misses);
  EXPECT_GT(subsort.cache_misses, tuple.cache_misses / 2);
}

TEST(CounterExperimentsTest, RadixFewerBranchMissesThanComparisonSort) {
  // Paper Fig. 10: "Radix sort performs better than pdqsort when it comes to
  // branch mispredictions: It is a mostly branchless algorithm."
  auto columns = Corr05(1 << 14, 4);
  PerfCounters comparison = CountNormalizedComparisonSort(columns);
  PerfCounters radix = CountNormalizedRadixSort(columns);
  EXPECT_LT(radix.branch_misses, comparison.branch_misses / 4);
}

TEST(CounterExperimentsTest, RadixWorseCachePerformance) {
  // Paper Fig. 10: "As expected, radix sort has a worse cache performance
  // than pdqsort."
  auto columns = Corr05(1 << 15, 4);
  PerfCounters comparison = CountNormalizedComparisonSort(columns);
  PerfCounters radix = CountNormalizedRadixSort(columns);
  EXPECT_GT(radix.cache_misses, comparison.cache_misses);
}

TEST(CounterExperimentsTest, RandomDistributionTupleAndSubsortSimilar) {
  // Paper Table II discussion: with (virtually) no duplicates both columnar
  // approaches "operate almost exactly the same".
  MicroWorkload w;
  w.num_rows = 1 << 14;
  w.num_key_columns = 4;
  w.distribution = MicroDistribution::kRandom;
  auto columns = GenerateMicroColumns(w);
  PerfCounters tuple = CountColumnarTupleAtATime(columns);
  PerfCounters subsort = CountColumnarSubsort(columns);
  double miss_ratio =
      double(std::max(tuple.cache_misses, subsort.cache_misses)) /
      double(std::max<uint64_t>(
          std::min(tuple.cache_misses, subsort.cache_misses), 1));
  EXPECT_LT(miss_ratio, 1.5);
}

TEST(CounterExperimentsTest, CountersScaleWithInput) {
  auto small = Corr05(1 << 10, 2);
  auto large = Corr05(1 << 14, 2);
  PerfCounters cs = CountRowTupleAtATime(small);
  PerfCounters cl = CountRowTupleAtATime(large);
  EXPECT_GT(cl.branches, cs.branches);
  EXPECT_GT(cl.cache_accesses, cs.cache_accesses);
}

}  // namespace
}  // namespace rowsort
