// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Boundary-condition tests: vector-size edges, run-size edges, empty and
// single-element inputs, strings with embedded NULs and non-ASCII bytes.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/random.h"
#include "engine/sort_engine.h"
#include "sortkey/key_encoder.h"
#include "workload/tables.h"

namespace rowsort {
namespace {

Table IntTable(uint64_t rows, uint64_t seed) {
  Random rng(seed);
  Table table({TypeId::kInt32});
  uint64_t produced = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = table.NewChunk();
    auto* data = chunk.column(0).TypedData<int32_t>();
    for (uint64_t r = 0; r < n; ++r) {
      data[r] = static_cast<int32_t>(rng.Next32());
    }
    chunk.SetSize(n);
    table.Append(std::move(chunk));
    produced += n;
  }
  return table;
}

bool IsSortedAscending(const Table& t) {
  bool first = true;
  int32_t prev = 0;
  for (uint64_t ci = 0; ci < t.ChunkCount(); ++ci) {
    for (uint64_t r = 0; r < t.chunk(ci).size(); ++r) {
      int32_t v = t.chunk(ci).GetValue(0, r).int32_value();
      if (!first && v < prev) return false;
      prev = v;
      first = false;
    }
  }
  return true;
}

class VectorSizeBoundaryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VectorSizeBoundaryTest, SortsExactlyAroundChunkEdges) {
  uint64_t rows = GetParam();
  Table input = IntTable(rows, rows + 1);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  Table output = RelationalSort::SortTable(input, spec).ValueOrDie();
  EXPECT_EQ(output.row_count(), rows);
  EXPECT_TRUE(IsSortedAscending(output));
}

INSTANTIATE_TEST_SUITE_P(Edges, VectorSizeBoundaryTest,
                         ::testing::Values(kVectorSize - 1, kVectorSize,
                                           kVectorSize + 1, 2 * kVectorSize,
                                           2 * kVectorSize + 1),
                         ::testing::PrintToStringParamName());

class RunSizeBoundaryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RunSizeBoundaryTest, RunThresholdEdgesProduceCorrectMerges) {
  const uint64_t rows = 10000;
  Table input = IntTable(rows, 77);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  SortEngineConfig config;
  config.run_size_rows = GetParam();
  SortMetrics metrics;
  Table output = RelationalSort::SortTable(input, spec, config, &metrics).ValueOrDie();
  EXPECT_EQ(output.row_count(), rows);
  EXPECT_TRUE(IsSortedAscending(output));
  EXPECT_GE(metrics.runs_generated, 1u);
}

INSTANTIATE_TEST_SUITE_P(Edges, RunSizeBoundaryTest,
                         ::testing::Values(kVectorSize, kVectorSize + 1,
                                           9999, 10000, 10001, 1 << 20),
                         ::testing::PrintToStringParamName());

TEST(StringEdgeTest, EmbeddedNulBytesSortCorrectly) {
  // "ab\0" vs "ab" collide in the zero-padded key prefix; tie resolution on
  // the full strings (which know their length) must separate them.
  Table input({TypeId::kVarchar});
  DataChunk chunk = input.NewChunk();
  chunk.SetValue(0, 0, Value::Varchar(std::string("ab\0x", 4)));
  chunk.SetValue(0, 1, Value::Varchar("ab"));
  chunk.SetValue(0, 2, Value::Varchar(std::string("ab\0", 3)));
  chunk.SetSize(3);
  input.Append(std::move(chunk));

  SortSpec spec({SortColumn(0, TypeId::kVarchar)});
  Table sorted = RelationalSort::SortTable(input, spec).ValueOrDie();
  // memcmp order: "ab" < "ab\0" < "ab\0x".
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 0).varchar_value().size(), 2u);
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 1).varchar_value().size(), 3u);
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 2).varchar_value().size(), 4u);
}

TEST(StringEdgeTest, HighBitBytesSortAsUnsigned) {
  // Bytes >= 0x80 must compare as unsigned (UTF-8 continuation bytes etc.).
  Table input({TypeId::kVarchar});
  DataChunk chunk = input.NewChunk();
  chunk.SetValue(0, 0, Value::Varchar("\xC3\xA9"));  // é in UTF-8
  chunk.SetValue(0, 1, Value::Varchar("z"));
  chunk.SetValue(0, 2, Value::Varchar("\x7F"));
  chunk.SetSize(3);
  input.Append(std::move(chunk));

  SortSpec spec({SortColumn(0, TypeId::kVarchar)});
  Table sorted = RelationalSort::SortTable(input, spec).ValueOrDie();
  // Unsigned byte order: 'z' (0x7A) < 0x7F < 0xC3 (signed-char comparison
  // would wrongly put the UTF-8 bytes first).
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 0), Value::Varchar("z"));
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 1), Value::Varchar("\x7F"));
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 2), Value::Varchar("\xC3\xA9"));
}

TEST(StringEdgeTest, ExactlyPrefixLengthStrings) {
  // Strings of exactly prefix length must order against longer ones
  // correctly ("abcdefghijkl" < "abcdefghijklm").
  Table input({TypeId::kVarchar});
  DataChunk chunk = input.NewChunk();
  chunk.SetValue(0, 0, Value::Varchar("abcdefghijklm"));
  chunk.SetValue(0, 1, Value::Varchar("abcdefghijkl"));
  chunk.SetSize(2);
  input.Append(std::move(chunk));
  SortSpec spec({SortColumn(0, TypeId::kVarchar)});
  Table sorted = RelationalSort::SortTable(input, spec).ValueOrDie();
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 0), Value::Varchar("abcdefghijkl"));
}

TEST(KeyWidthBoundaryTest, ManyColumnsProduceWideKeys) {
  // 8 int64 DESC columns: 8 * 9 = 72 key bytes -> key row width 80, which
  // exercises a wider PdqSortRows instantiation and MSD radix.
  std::vector<LogicalType> types(8, LogicalType(TypeId::kInt64));
  Random rng(3);
  Table input(types);
  DataChunk chunk = input.NewChunk();
  for (uint64_t r = 0; r < 1000; ++r) {
    for (uint64_t c = 0; c < 8; ++c) {
      chunk.SetValue(c, r,
                     Value::Int64(static_cast<int64_t>(rng.Uniform(4))));
    }
  }
  chunk.SetSize(1000);
  input.Append(std::move(chunk));

  std::vector<SortColumn> cols;
  for (uint64_t c = 0; c < 8; ++c) {
    cols.emplace_back(c, TypeId::kInt64, OrderType::kDescending,
                      NullOrder::kNullsLast);
  }
  SortSpec spec(cols);
  EXPECT_EQ(spec.KeyWidth(), 72u);
  for (auto algo : {RunSortAlgorithm::kRadix, RunSortAlgorithm::kPdq}) {
    SortEngineConfig config;
    config.algorithm = algo;
    Table sorted = RelationalSort::SortTable(input, spec, config).ValueOrDie();
    // Verify lexicographic descending across all 8 columns.
    for (uint64_t r = 1; r < sorted.chunk(0).size(); ++r) {
      int cmp = 0;
      for (uint64_t c = 0; c < 8 && cmp == 0; ++c) {
        cmp = sorted.chunk(0).GetValue(c, r - 1).Compare(
            sorted.chunk(0).GetValue(c, r));
      }
      ASSERT_GE(cmp, 0) << "row " << r;
    }
  }
}

TEST(ExtremeValueTest, IntegerLimitsEncodeCorrectly) {
  Table input({TypeId::kInt64});
  DataChunk chunk = input.NewChunk();
  chunk.SetValue(0, 0, Value::Int64(0));
  chunk.SetValue(0, 1, Value::Int64(INT64_MAX));
  chunk.SetValue(0, 2, Value::Int64(INT64_MIN));
  chunk.SetValue(0, 3, Value::Int64(-1));
  chunk.SetValue(0, 4, Value::Int64(1));
  chunk.SetSize(5);
  input.Append(std::move(chunk));
  SortSpec spec({SortColumn(0, TypeId::kInt64)});
  Table sorted = RelationalSort::SortTable(input, spec).ValueOrDie();
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 0), Value::Int64(INT64_MIN));
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 1), Value::Int64(-1));
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 2), Value::Int64(0));
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 3), Value::Int64(1));
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 4), Value::Int64(INT64_MAX));
}

TEST(ExtremeValueTest, FloatSpecialsOrderTotally) {
  float inf = std::numeric_limits<float>::infinity();
  float nan = std::numeric_limits<float>::quiet_NaN();
  float denormal = std::numeric_limits<float>::denorm_min();
  Table input({TypeId::kFloat});
  DataChunk chunk = input.NewChunk();
  float values[] = {nan, inf, -inf, 0.0f, -0.0f, denormal, -denormal, 1.0f};
  for (uint64_t r = 0; r < 8; ++r) {
    chunk.SetValue(0, r, Value::Float(values[r]));
  }
  chunk.SetSize(8);
  input.Append(std::move(chunk));
  SortSpec spec({SortColumn(0, TypeId::kFloat)});
  Table sorted = RelationalSort::SortTable(input, spec).ValueOrDie();

  // -inf < -denorm < -0/0 (tie) < denorm < 1 < inf < NaN.
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 0), Value::Float(-inf));
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 1), Value::Float(-denormal));
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 2).float_value(), 0.0f);
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 3).float_value(), 0.0f);
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 4), Value::Float(denormal));
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 5), Value::Float(1.0f));
  EXPECT_EQ(sorted.chunk(0).GetValue(0, 6), Value::Float(inf));
  EXPECT_TRUE(std::isnan(sorted.chunk(0).GetValue(0, 7).float_value()));
}

}  // namespace
}  // namespace rowsort
