// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/cancellation.h"
#include "parallel/thread_pool.h"

namespace rowsort {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&counter] { counter.fetch_add(1); });
  }
  pool.RunBatch(std::move(tasks));
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.ParallelFor(50, [&counter](uint64_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ParallelForPassesEveryIndexOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](uint64_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SequentialBatchesReuseWorkers) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(10, [&counter](uint64_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, EmptyBatchIsNoOp) {
  ThreadPool pool(2);
  pool.RunBatch({});
  pool.ParallelFor(0, [](uint64_t) { FAIL(); });
}

TEST(ThreadPoolTest, TasksActuallyRunConcurrentlyWhenPossible) {
  // Not a strict guarantee on a 1-core box, but RunBatch must at least not
  // deadlock when tasks block on each other's side effects being visible.
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(64, [&sum](uint64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 64ull * 63 / 2);
}

TEST(ThreadPoolTest, ParallelForLargeRangeCoversEveryIndexOnce) {
  // A large index space must still hit every index exactly once even though
  // the blocked-range scheduling creates far fewer tasks than indices.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100000);
  pool.ParallelFor(100000, [&hits](uint64_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForExplicitGrainCoversEveryIndexOnce) {
  ThreadPool pool(3);
  for (uint64_t grain : {1u, 7u, 64u, 5000u}) {
    std::vector<std::atomic<int>> hits(1000);
    pool.ParallelFor(
        1000, [&hits](uint64_t i) { hits[i].fetch_add(1); }, grain);
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1) << "grain " << grain;
  }
}

TEST(ThreadPoolTest, ParallelForGrainLargerThanCount) {
  ThreadPool pool(2);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(
      10, [&sum](uint64_t i) { sum.fetch_add(i); }, 1 << 20);
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeWithGrainIsNoOp) {
  ThreadPool pool(2);
  pool.ParallelFor(
      0, [](uint64_t) { FAIL(); }, 128);
}

TEST(ThreadPoolTest, ThreadCountReported) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.thread_count(), 5u);
}

TEST(ThreadPoolTest, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPoolErrorTest, TaskExceptionRethrownOnSubmitter) {
  ThreadPool pool(4);
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] { throw std::runtime_error("worker blew up"); });
  try {
    pool.RunBatch(std::move(tasks));
    FAIL() << "expected the task's exception on the submitting thread";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker blew up");
  }
}

TEST(ThreadPoolErrorTest, RemainingTasksSkippedAfterFailure) {
  ThreadPool pool(2);
  std::atomic<uint64_t> ran{0};
  std::vector<std::function<void()>> tasks;
  // The throwing task sits first in the queue; once its exception is
  // captured, not-yet-started tasks are drained without executing (the
  // barrier still releases, so RunBatch returns after every slot resolves).
  // Each follower sleeps so the two workers cannot race through the whole
  // queue before the failure is recorded.
  tasks.push_back([] { throw std::runtime_error("first"); });
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([&ran] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ran.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.RunBatch(std::move(tasks)), std::runtime_error);
  EXPECT_LT(ran.load(), 64u);
}

TEST(ThreadPoolErrorTest, PreCancelledTokenSkipsWholeBatch) {
  ThreadPool pool(4);
  CancellationSource source;
  source.RequestCancel();
  std::atomic<uint64_t> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 32; ++i) {
    tasks.push_back([&ran] { ran.fetch_add(1); });
  }
  // Cancellation is not an error: RunBatch returns normally, zero tasks
  // execute, and the pool stays usable. The *caller* is responsible for
  // checking the token afterwards.
  pool.RunBatch(std::move(tasks), source.token());
  EXPECT_EQ(ran.load(), 0u);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(100, [&sum](uint64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolErrorTest, CancelMidBatchSkipsRemainder) {
  ThreadPool pool(2);
  CancellationSource source;
  std::atomic<uint64_t> ran{0};
  std::vector<std::function<void()>> tasks;
  // The first task requests cancellation; followers sleep so the workers
  // cannot finish the queue before the request lands.
  tasks.push_back([&source] { source.RequestCancel(); });
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([&ran] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ran.fetch_add(1);
    });
  }
  pool.RunBatch(std::move(tasks), source.token());
  EXPECT_LT(ran.load(), 64u);
  EXPECT_TRUE(source.token().IsCancelled());
}

TEST(ThreadPoolErrorTest, ParallelForWithCancelledTokenRunsNothing) {
  ThreadPool pool(4);
  CancellationSource source(Deadline::AfterMicros(0));
  std::atomic<uint64_t> ran{0};
  pool.ParallelFor(
      1000, [&ran](uint64_t) { ran.fetch_add(1); }, /*grain=*/1,
      source.token());
  EXPECT_EQ(ran.load(), 0u);
}

TEST(ThreadPoolErrorTest, OnlyOneExceptionPropagates) {
  ThreadPool pool(4);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back(
        [i] { throw std::runtime_error("task " + std::to_string(i)); });
  }
  // All eight tasks throw; exactly one exception (whichever was captured
  // first) reaches the submitter, the rest are dropped with the batch.
  try {
    pool.RunBatch(std::move(tasks));
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("task ", 0), 0u) << e.what();
  }
  std::atomic<int> ran{0};
  pool.ParallelFor(10, [&ran](uint64_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPoolErrorTest, PoolUsableAfterFailedBatch) {
  ThreadPool pool(4);
  std::vector<std::function<void()>> bad;
  bad.push_back([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.RunBatch(std::move(bad)), std::runtime_error);
  // A failed batch must not poison the pool: the next batch runs cleanly
  // and reports no stale exception.
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(100, [&sum](uint64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolErrorTest, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(1000,
                                [](uint64_t i) {
                                  if (i == 537) throw std::out_of_range("537");
                                },
                                1),
               std::out_of_range);
}

TEST(ThreadPoolStatsTest, DisabledByDefault) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> tasks(10, [] {});
  pool.RunBatch(std::move(tasks));
  ThreadPoolStatsSnapshot stats = pool.StatsSnapshot();
  EXPECT_EQ(stats.tasks_executed, 0u);
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_EQ(stats.queue_wait_ns.count(), 0u);
}

TEST(ThreadPoolStatsTest, CountsTasksWaitAndRunTime) {
  ThreadPool pool(3);
  pool.EnableStats(true);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.push_back([&counter] {
      counter.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    });
  }
  pool.RunBatch(std::move(tasks));
  pool.ParallelFor(10, [&counter](uint64_t) { counter.fetch_add(1); });

  ThreadPoolStatsSnapshot stats = pool.StatsSnapshot();
  EXPECT_EQ(stats.tasks_executed, 30u);
  EXPECT_EQ(stats.tasks_skipped, 0u);
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_GE(stats.max_queue_depth, 1u);
  // Every executed task recorded one queue-wait and one run duration.
  EXPECT_EQ(stats.queue_wait_ns.count(), 30u);
  EXPECT_EQ(stats.run_ns.count(), 30u);
  // The 20 sleeping tasks each ran >= 100us.
  EXPECT_GE(stats.run_ns.total_ns(), 20u * 100'000u);
  // workers + the submitter slot; total busy time covers the run time.
  ASSERT_EQ(stats.thread_busy_seconds.size(), 4u);
  double busy = 0;
  for (double s : stats.thread_busy_seconds) busy += s;
  EXPECT_GE(busy, stats.run_ns.total_ns() * 1e-9 * 0.99);
}

TEST(ThreadPoolStatsTest, SkippedTasksAreCounted) {
  ThreadPool pool(2);
  pool.EnableStats(true);
  CancellationSource source;
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&] {
    // Cancel from inside the first task so later queued tasks are skipped.
    source.RequestCancel();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ran.fetch_add(1);
  });
  for (int i = 0; i < 50; ++i) {
    tasks.push_back([&ran] { ran.fetch_add(1); });
  }
  try {
    pool.RunBatch(std::move(tasks), source.token());
  } catch (const CancelledError&) {
    // RunBatch may surface the skip as an unwind; either way stats must add
    // up below.
  }
  ThreadPoolStatsSnapshot stats = pool.StatsSnapshot();
  EXPECT_EQ(stats.tasks_executed + stats.tasks_skipped, 51u);
  EXPECT_EQ(stats.tasks_executed, static_cast<uint64_t>(ran.load()));
}

TEST(ThreadPoolConcurrencyTest, ManySubmittersShareOnePool) {
  // The service layer submits batches from many client threads at once;
  // every batch must see exactly its own tasks complete, even with far more
  // submitters than workers (submitters help drain, so nobody starves).
  ThreadPool pool(2);
  constexpr int kSubmitters = 8;
  constexpr int kRounds = 10;
  constexpr int kTasksPerBatch = 32;
  std::vector<std::atomic<int>> counts(kSubmitters);
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &counts, s] {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<std::function<void()>> tasks;
        for (int i = 0; i < kTasksPerBatch; ++i) {
          tasks.push_back([&counts, s] { counts[s].fetch_add(1); });
        }
        pool.RunBatch(std::move(tasks));
      }
    });
  }
  for (auto& t : submitters) t.join();
  for (int s = 0; s < kSubmitters; ++s) {
    EXPECT_EQ(counts[s].load(), kRounds * kTasksPerBatch) << "submitter " << s;
  }
}

TEST(ThreadPoolConcurrencyTest, ErrorInOneBatchDoesNotPoisonAnother) {
  ThreadPool pool(2);
  std::atomic<int> good_ran{0};
  std::thread bad([&pool] {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 16; ++i) {
      tasks.push_back([] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        throw std::runtime_error("bad batch");
      });
    }
    EXPECT_THROW(pool.RunBatch(std::move(tasks)), std::runtime_error);
  });
  std::thread good([&pool, &good_ran] {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 16; ++i) {
      tasks.push_back([&good_ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        good_ran.fetch_add(1);
      });
    }
    pool.RunBatch(std::move(tasks));  // must not see the other batch's error
  });
  bad.join();
  good.join();
  EXPECT_EQ(good_ran.load(), 16);
}

TEST(ThreadPoolConcurrencyTest, CancellingOneBatchLeavesOthersRunning) {
  ThreadPool pool(2);
  CancellationSource source;
  source.RequestCancel();
  std::atomic<int> cancelled_ran{0};
  std::atomic<int> live_ran{0};
  std::thread cancelled([&] {
    std::vector<std::function<void()>> tasks(
        32, std::function<void()>([&cancelled_ran] { cancelled_ran.fetch_add(1); }));
    pool.RunBatch(std::move(tasks), source.token());
  });
  std::thread live([&] {
    std::vector<std::function<void()>> tasks(
        32, std::function<void()>([&live_ran] { live_ran.fetch_add(1); }));
    pool.RunBatch(std::move(tasks));
  });
  cancelled.join();
  live.join();
  EXPECT_EQ(cancelled_ran.load(), 0);
  EXPECT_EQ(live_ran.load(), 32);
}

TEST(ThreadPoolStatsTest, PerPriorityTaskCounts) {
  ThreadPool pool(2);
  pool.EnableStats(true);
  auto batch_of = [](int n, std::atomic<int>* counter) {
    return std::vector<std::function<void()>>(
        n, std::function<void()>([counter] { counter->fetch_add(1); }));
  };
  std::atomic<int> ran{0};
  pool.RunBatch(batch_of(5, &ran), {}, TaskPriority::kHigh);
  pool.RunBatch(batch_of(7, &ran), {}, TaskPriority::kNormal);
  pool.RunBatch(batch_of(9, &ran), {}, TaskPriority::kLow);
  pool.RunBatch(batch_of(3, &ran));  // default class is kNormal
  EXPECT_EQ(ran.load(), 24);

  ThreadPoolStatsSnapshot stats = pool.StatsSnapshot();
  EXPECT_EQ(stats.tasks_per_priority[size_t(TaskPriority::kHigh)], 5u);
  EXPECT_EQ(stats.tasks_per_priority[size_t(TaskPriority::kNormal)], 10u);
  EXPECT_EQ(stats.tasks_per_priority[size_t(TaskPriority::kLow)], 9u);
  EXPECT_EQ(stats.tasks_executed, 24u);
  EXPECT_GE(stats.max_queue_depth, 1u);
  EXPECT_STREQ(TaskPriorityName(TaskPriority::kHigh), "high");
  EXPECT_STREQ(TaskPriorityName(TaskPriority::kNormal), "normal");
  EXPECT_STREQ(TaskPriorityName(TaskPriority::kLow), "low");
}

TEST(ThreadPoolStatsTest, TracerRecordsPoolTaskSpans) {
  Tracer tracer;
  ThreadPool pool(2);
  pool.SetTracer(&tracer);
  std::vector<std::function<void()>> tasks(8, [] {});
  pool.RunBatch(std::move(tasks));
  uint64_t task_spans = 0;
  bool saw_queue_depth = false;
  for (const auto& e : tracer.Snapshot()) {
    if (e.kind == TraceEvent::Kind::kSpan &&
        std::string(e.name) == "pool.task") {
      ++task_spans;
    }
    if (e.kind == TraceEvent::Kind::kCounter &&
        std::string(e.name) == "pool.queue_depth") {
      saw_queue_depth = true;
    }
  }
  EXPECT_EQ(task_spans, 8u);
  EXPECT_TRUE(saw_queue_depth);
}

}  // namespace
}  // namespace rowsort
