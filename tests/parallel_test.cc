// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "parallel/thread_pool.h"

namespace rowsort {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&counter] { counter.fetch_add(1); });
  }
  pool.RunBatch(std::move(tasks));
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.ParallelFor(50, [&counter](uint64_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ParallelForPassesEveryIndexOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](uint64_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SequentialBatchesReuseWorkers) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(10, [&counter](uint64_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, EmptyBatchIsNoOp) {
  ThreadPool pool(2);
  pool.RunBatch({});
  pool.ParallelFor(0, [](uint64_t) { FAIL(); });
}

TEST(ThreadPoolTest, TasksActuallyRunConcurrentlyWhenPossible) {
  // Not a strict guarantee on a 1-core box, but RunBatch must at least not
  // deadlock when tasks block on each other's side effects being visible.
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(64, [&sum](uint64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 64ull * 63 / 2);
}

TEST(ThreadPoolTest, ParallelForLargeRangeCoversEveryIndexOnce) {
  // A large index space must still hit every index exactly once even though
  // the blocked-range scheduling creates far fewer tasks than indices.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100000);
  pool.ParallelFor(100000, [&hits](uint64_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForExplicitGrainCoversEveryIndexOnce) {
  ThreadPool pool(3);
  for (uint64_t grain : {1u, 7u, 64u, 5000u}) {
    std::vector<std::atomic<int>> hits(1000);
    pool.ParallelFor(
        1000, [&hits](uint64_t i) { hits[i].fetch_add(1); }, grain);
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1) << "grain " << grain;
  }
}

TEST(ThreadPoolTest, ParallelForGrainLargerThanCount) {
  ThreadPool pool(2);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(
      10, [&sum](uint64_t i) { sum.fetch_add(i); }, 1 << 20);
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeWithGrainIsNoOp) {
  ThreadPool pool(2);
  pool.ParallelFor(
      0, [](uint64_t) { FAIL(); }, 128);
}

TEST(ThreadPoolTest, ThreadCountReported) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.thread_count(), 5u);
}

TEST(ThreadPoolTest, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

}  // namespace
}  // namespace rowsort
