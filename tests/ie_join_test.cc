// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "engine/ie_join.h"

namespace rowsort {
namespace {

bool OpHolds(const Value& l, const Value& r, InequalityOp op) {
  if (l.is_null() || r.is_null()) return false;
  int cmp = l.Compare(r);
  switch (op) {
    case InequalityOp::kLess:
      return cmp < 0;
    case InequalityOp::kLessEqual:
      return cmp <= 0;
    case InequalityOp::kGreater:
      return cmp > 0;
    case InequalityOp::kGreaterEqual:
      return cmp >= 0;
  }
  return false;
}

std::string Fingerprint(const Table& t, uint64_t ci, uint64_t r) {
  std::string fp;
  for (uint64_t c = 0; c < t.types().size(); ++c) {
    fp += t.chunk(ci).GetValue(c, r).ToString();
    fp += '\x1f';
  }
  return fp;
}

void ExpectMatchesOracle(const Table& left, const Table& right, uint64_t lcol,
                         uint64_t rcol, InequalityOp op) {
  Table joined = InequalityJoin(left, right, lcol, rcol, op).ValueOrDie();

  std::map<std::string, int64_t> oracle;
  uint64_t expected = 0;
  for (uint64_t lci = 0; lci < left.ChunkCount(); ++lci) {
    for (uint64_t lr = 0; lr < left.chunk(lci).size(); ++lr) {
      for (uint64_t rci = 0; rci < right.ChunkCount(); ++rci) {
        for (uint64_t rr = 0; rr < right.chunk(rci).size(); ++rr) {
          if (OpHolds(left.chunk(lci).GetValue(lcol, lr),
                      right.chunk(rci).GetValue(rcol, rr), op)) {
            ++oracle[Fingerprint(left, lci, lr) +
                     Fingerprint(right, rci, rr)];
            ++expected;
          }
        }
      }
    }
  }
  ASSERT_EQ(joined.row_count(), expected);
  for (uint64_t ci = 0; ci < joined.ChunkCount(); ++ci) {
    for (uint64_t r = 0; r < joined.chunk(ci).size(); ++r) {
      --oracle[Fingerprint(joined, ci, r)];
    }
  }
  for (const auto& [fp, count] : oracle) {
    ASSERT_EQ(count, 0) << fp;
  }
}

Table MakeSide(uint64_t rows, uint64_t range, double null_prob,
               uint64_t seed) {
  Random rng(seed);
  Table table({TypeId::kInt32, TypeId::kInt64});
  DataChunk chunk = table.NewChunk();
  for (uint64_t r = 0; r < rows; ++r) {
    if (rng.Bernoulli(null_prob)) {
      chunk.SetValue(0, r, Value::Null(TypeId::kInt32));
    } else {
      chunk.SetValue(
          0, r, Value::Int32(static_cast<int32_t>(rng.Uniform(range)) -
                             static_cast<int32_t>(range / 2)));
    }
    chunk.SetValue(1, r, Value::Int64(static_cast<int64_t>(seed * 1000 + r)));
  }
  chunk.SetSize(rows);
  table.Append(std::move(chunk));
  return table;
}

class IeJoinTest : public ::testing::TestWithParam<InequalityOp> {};

TEST_P(IeJoinTest, MatchesOracleIntKeys) {
  Table left = MakeSide(80, 30, 0.1, 1);
  Table right = MakeSide(60, 30, 0.1, 2);
  ExpectMatchesOracle(left, right, 0, 0, GetParam());
}

TEST_P(IeJoinTest, DuplicateHeavyKeys) {
  Table left = MakeSide(100, 4, 0.0, 3);
  Table right = MakeSide(100, 4, 0.0, 4);
  ExpectMatchesOracle(left, right, 0, 0, GetParam());
}

TEST_P(IeJoinTest, EmptySidesYieldEmptyResult) {
  Table left = MakeSide(0, 10, 0.0, 5);
  Table right = MakeSide(50, 10, 0.0, 6);
  Table joined = InequalityJoin(left, right, 0, 0, GetParam()).ValueOrDie();
  EXPECT_EQ(joined.row_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, IeJoinTest,
    ::testing::Values(InequalityOp::kLess, InequalityOp::kLessEqual,
                      InequalityOp::kGreater, InequalityOp::kGreaterEqual),
    [](const ::testing::TestParamInfo<InequalityOp>& info) {
      switch (info.param) {
        case InequalityOp::kLess: return std::string("Less");
        case InequalityOp::kLessEqual: return std::string("LessEqual");
        case InequalityOp::kGreater: return std::string("Greater");
        case InequalityOp::kGreaterEqual: return std::string("GreaterEqual");
      }
      return std::string("?");
    });

// ------------------- two-predicate IEJoin -------------------

std::string OpName(InequalityOp op) {
  switch (op) {
    case InequalityOp::kLess: return "Lt";
    case InequalityOp::kLessEqual: return "Le";
    case InequalityOp::kGreater: return "Gt";
    case InequalityOp::kGreaterEqual: return "Ge";
  }
  return "?";
}

class IeJoin2Test
    : public ::testing::TestWithParam<std::pair<InequalityOp, InequalityOp>> {
};

TEST_P(IeJoin2Test, MatchesNestedLoopOracle) {
  auto [op1, op2] = GetParam();
  // Left/right with two int32 key columns (cols 0 and 1 via the int64
  // payload? MakeSide has int32 col0 and int64 col1 — need two comparable
  // columns; build dedicated tables).
  Random rng(static_cast<uint64_t>(op1) * 17 + static_cast<uint64_t>(op2));
  auto make = [&](uint64_t rows, uint64_t seed) {
    Random local(seed);
    Table t({TypeId::kInt32, TypeId::kInt32, TypeId::kInt64});
    DataChunk chunk = t.NewChunk();
    for (uint64_t r = 0; r < rows; ++r) {
      chunk.SetValue(0, r,
                     local.Bernoulli(0.1)
                         ? Value::Null(TypeId::kInt32)
                         : Value::Int32(static_cast<int32_t>(
                               local.Uniform(20)) - 10));
      chunk.SetValue(1, r,
                     local.Bernoulli(0.1)
                         ? Value::Null(TypeId::kInt32)
                         : Value::Int32(static_cast<int32_t>(
                               local.Uniform(20)) - 10));
      chunk.SetValue(2, r, Value::Int64(static_cast<int64_t>(seed * 1000 + r)));
    }
    chunk.SetSize(rows);
    t.Append(std::move(chunk));
    return t;
  };
  Table left = make(70, 1 + rng.Uniform(100));
  Table right = make(60, 200 + rng.Uniform(100));

  InequalityPredicate p1{0, 0, op1};
  InequalityPredicate p2{1, 1, op2};
  Table joined = IEJoin(left, right, p1, p2).ValueOrDie();

  // Nested-loop oracle.
  std::map<std::string, int64_t> oracle;
  uint64_t expected = 0;
  for (uint64_t lr = 0; lr < left.chunk(0).size(); ++lr) {
    for (uint64_t rr = 0; rr < right.chunk(0).size(); ++rr) {
      if (OpHolds(left.chunk(0).GetValue(0, lr),
                  right.chunk(0).GetValue(0, rr), op1) &&
          OpHolds(left.chunk(0).GetValue(1, lr),
                  right.chunk(0).GetValue(1, rr), op2)) {
        ++oracle[Fingerprint(left, 0, lr) + Fingerprint(right, 0, rr)];
        ++expected;
      }
    }
  }
  ASSERT_EQ(joined.row_count(), expected);
  for (uint64_t ci = 0; ci < joined.ChunkCount(); ++ci) {
    for (uint64_t r = 0; r < joined.chunk(ci).size(); ++r) {
      --oracle[Fingerprint(joined, ci, r)];
    }
  }
  for (const auto& [fp, count] : oracle) {
    ASSERT_EQ(count, 0) << fp;
  }
}

std::vector<std::pair<InequalityOp, InequalityOp>> AllOpPairs() {
  std::vector<std::pair<InequalityOp, InequalityOp>> pairs;
  const InequalityOp ops[] = {InequalityOp::kLess, InequalityOp::kLessEqual,
                              InequalityOp::kGreater,
                              InequalityOp::kGreaterEqual};
  for (auto a : ops) {
    for (auto b : ops) pairs.emplace_back(a, b);
  }
  return pairs;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, IeJoin2Test, ::testing::ValuesIn(AllOpPairs()),
    [](const ::testing::TestParamInfo<std::pair<InequalityOp, InequalityOp>>&
           info) {
      return OpName(info.param.first) + OpName(info.param.second);
    });

TEST(IeJoin2Test, ClassicSelfJoinShape) {
  // The IEJoin paper's canonical example shape: pairs (i, j) with
  // l.start < r.start AND l.end > r.end (interval containment-ish).
  Table t({TypeId::kInt32, TypeId::kInt32});
  DataChunk chunk = t.NewChunk();
  const int32_t rows[][2] = {{1, 10}, {2, 8}, {3, 9}, {4, 5}, {0, 3}};
  for (uint64_t r = 0; r < 5; ++r) {
    chunk.SetValue(0, r, Value::Int32(rows[r][0]));
    chunk.SetValue(1, r, Value::Int32(rows[r][1]));
  }
  chunk.SetSize(5);
  t.Append(std::move(chunk));
  Table t2 = t.Project({0, 1});

  Table joined = IEJoin(t, t2, {0, 0, InequalityOp::kLess},
                        {1, 1, InequalityOp::kGreater}).ValueOrDie();
  // Oracle count: pairs with start_l < start_r and end_l > end_r:
  // (1,10)->(2,8),(3,9),(4,5); (2,8)->(4,5); (3,9)->(4,5); (0,3) none as
  // left except... (0,3)->none (end 3 must be > r.end; (4,5) no). Total 5.
  EXPECT_EQ(joined.row_count(), 5u);
}

TEST(IeJoinTest, NegativeAndFloatKeys) {
  // Order-preserving float encoding must make the bound search correct for
  // negative floats too.
  Table left({TypeId::kFloat});
  Table right({TypeId::kFloat});
  {
    DataChunk chunk = left.NewChunk();
    float values[] = {-5.5f, 0.0f, 3.25f};
    for (uint64_t r = 0; r < 3; ++r) {
      chunk.SetValue(0, r, Value::Float(values[r]));
    }
    chunk.SetSize(3);
    left.Append(std::move(chunk));
  }
  {
    DataChunk chunk = right.NewChunk();
    float values[] = {-10.0f, -5.5f, 1.0f, 7.0f};
    for (uint64_t r = 0; r < 4; ++r) {
      chunk.SetValue(0, r, Value::Float(values[r]));
    }
    chunk.SetSize(4);
    right.Append(std::move(chunk));
  }
  ExpectMatchesOracle(left, right, 0, 0, InequalityOp::kLess);
  ExpectMatchesOracle(left, right, 0, 0, InequalityOp::kGreaterEqual);
}

}  // namespace
}  // namespace rowsort
