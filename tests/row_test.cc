// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "common/random.h"
#include "row/row_collection.h"
#include "row/row_kernels.h"
#include "row/row_layout.h"

namespace rowsort {
namespace {

TEST(RowLayoutTest, OffsetsAndWidth) {
  RowLayout layout({TypeId::kInt32, TypeId::kInt64, TypeId::kInt16});
  // 1 validity byte for 3 columns, then 4 + 8 + 2 bytes of data = 15, padded
  // to a multiple of 8 -> 16.
  EXPECT_EQ(layout.ValidityBytes(), 1u);
  EXPECT_EQ(layout.ColumnOffset(0), 1u);
  EXPECT_EQ(layout.ColumnOffset(1), 5u);
  EXPECT_EQ(layout.ColumnOffset(2), 13u);
  EXPECT_EQ(layout.row_width(), 16u);
  EXPECT_FALSE(layout.HasVariableSize());
}

TEST(RowLayoutTest, EightByteAlignment) {
  // Paper §VII: row formats use 8-byte alignment.
  RowLayout one_byte({TypeId::kInt8});
  EXPECT_EQ(one_byte.row_width() % 8, 0u);
  RowLayout many({TypeId::kInt8, TypeId::kVarchar, TypeId::kInt32});
  EXPECT_EQ(many.row_width() % 8, 0u);
}

TEST(RowLayoutTest, NineColumnsNeedTwoValidityBytes) {
  std::vector<LogicalType> types(9, LogicalType(TypeId::kInt32));
  RowLayout layout(types);
  EXPECT_EQ(layout.ValidityBytes(), 2u);
}

TEST(RowLayoutTest, ValidityBitAccess) {
  uint8_t row[2] = {0xFF, 0xFF};
  RowLayout::SetValid(row, 3, false);
  EXPECT_FALSE(RowLayout::IsValid(row, 3));
  EXPECT_TRUE(RowLayout::IsValid(row, 2));
  RowLayout::SetValid(row, 3, true);
  EXPECT_TRUE(RowLayout::IsValid(row, 3));
  RowLayout::SetValid(row, 9, false);
  EXPECT_FALSE(RowLayout::IsValid(row, 9));
}

TEST(RowCollectionTest, ScatterGatherRoundTripFixed) {
  RowLayout layout({TypeId::kInt32, TypeId::kDouble});
  RowCollection rows(layout);

  DataChunk chunk;
  chunk.Initialize(layout.types());
  for (uint64_t i = 0; i < 100; ++i) {
    chunk.SetValue(0, i, Value::Int32(static_cast<int32_t>(i) - 50));
    chunk.SetValue(1, i, Value::Double(i * 1.5));
  }
  chunk.SetSize(100);
  rows.AppendChunk(chunk);
  EXPECT_EQ(rows.row_count(), 100u);

  DataChunk out;
  out.Initialize(layout.types());
  rows.GatherChunk(0, 100, &out);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(out.GetValue(0, i), Value::Int32(static_cast<int32_t>(i) - 50));
    EXPECT_EQ(out.GetValue(1, i), Value::Double(i * 1.5));
  }
}

TEST(RowCollectionTest, RoundTripNulls) {
  RowLayout layout({TypeId::kInt32});
  RowCollection rows(layout);

  DataChunk chunk;
  chunk.Initialize(layout.types());
  for (uint64_t i = 0; i < 10; ++i) {
    chunk.SetValue(0, i,
                   i % 3 == 0 ? Value::Null(TypeId::kInt32)
                              : Value::Int32(static_cast<int32_t>(i)));
  }
  chunk.SetSize(10);
  rows.AppendChunk(chunk);

  DataChunk out;
  out.Initialize(layout.types());
  rows.GatherChunk(0, 10, &out);
  for (uint64_t i = 0; i < 10; ++i) {
    if (i % 3 == 0) {
      EXPECT_TRUE(out.GetValue(0, i).is_null()) << i;
    } else {
      EXPECT_EQ(out.GetValue(0, i), Value::Int32(static_cast<int32_t>(i)));
    }
  }
}

TEST(RowCollectionTest, RoundTripStringsOwnedByCollection) {
  RowLayout layout({TypeId::kVarchar});
  RowCollection rows(layout);
  {
    // The source chunk dies before we gather: the collection must have
    // copied string payloads into its own heap.
    DataChunk chunk;
    chunk.Initialize(layout.types());
    chunk.SetValue(0, 0, Value::Varchar("short"));
    chunk.SetValue(0, 1,
                   Value::Varchar("a long string that lives in the heap"));
    chunk.SetValue(0, 2, Value::Null(TypeId::kVarchar));
    chunk.SetSize(3);
    rows.AppendChunk(chunk);
  }
  DataChunk out;
  out.Initialize(layout.types());
  rows.GatherChunk(0, 3, &out);
  EXPECT_EQ(out.GetValue(0, 0), Value::Varchar("short"));
  EXPECT_EQ(out.GetValue(0, 1),
            Value::Varchar("a long string that lives in the heap"));
  EXPECT_TRUE(out.GetValue(0, 2).is_null());
}

TEST(RowCollectionTest, GatherByIndicesReorders) {
  RowLayout layout({TypeId::kInt32});
  RowCollection rows(layout);
  DataChunk chunk;
  chunk.Initialize(layout.types());
  for (uint64_t i = 0; i < 5; ++i) {
    chunk.SetValue(0, i, Value::Int32(static_cast<int32_t>(i * 10)));
  }
  chunk.SetSize(5);
  rows.AppendChunk(chunk);

  uint64_t indices[] = {4, 2, 0};
  DataChunk out;
  out.Initialize(layout.types());
  rows.GatherRows(indices, 3, &out);
  EXPECT_EQ(out.GetValue(0, 0), Value::Int32(40));
  EXPECT_EQ(out.GetValue(0, 1), Value::Int32(20));
  EXPECT_EQ(out.GetValue(0, 2), Value::Int32(0));
}

TEST(RowCollectionTest, MultipleChunksAccumulate) {
  RowLayout layout({TypeId::kInt64});
  RowCollection rows(layout);
  for (int c = 0; c < 5; ++c) {
    DataChunk chunk;
    chunk.Initialize(layout.types());
    for (uint64_t i = 0; i < kVectorSize; ++i) {
      chunk.SetValue(0, i, Value::Int64(c * 10000 + static_cast<int64_t>(i)));
    }
    chunk.SetSize(kVectorSize);
    rows.AppendChunk(chunk);
  }
  EXPECT_EQ(rows.row_count(), 5 * kVectorSize);
  EXPECT_EQ(rows.GetValue(3 * kVectorSize + 7, 0), Value::Int64(30007));
}

TEST(RowCollectionTest, AppendRowSelectsSingleRows) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  RowCollection rows(layout);
  DataChunk chunk;
  chunk.Initialize(layout.types());
  chunk.SetValue(0, 0, Value::Int32(10));
  chunk.SetValue(1, 0, Value::Varchar("skipped row zero"));
  chunk.SetValue(0, 1, Value::Null(TypeId::kInt32));
  chunk.SetValue(1, 1, Value::Varchar("a long string that is not inlined"));
  chunk.SetValue(0, 2, Value::Int32(30));
  chunk.SetValue(1, 2, Value::Varchar("short"));
  chunk.SetSize(3);

  // Append only rows 2 and 1 (in that order), as a selective operator would.
  EXPECT_EQ(rows.AppendRow(chunk, 2), 0u);
  EXPECT_EQ(rows.AppendRow(chunk, 1), 1u);
  EXPECT_EQ(rows.row_count(), 2u);
  EXPECT_EQ(rows.GetValue(0, 0), Value::Int32(30));
  EXPECT_EQ(rows.GetValue(0, 1), Value::Varchar("short"));
  EXPECT_TRUE(rows.GetValue(1, 0).is_null());
  EXPECT_EQ(rows.GetValue(1, 1),
            Value::Varchar("a long string that is not inlined"));
}

TEST(RowCollectionTest, AppendRowOwnsStringPayload) {
  RowLayout layout({TypeId::kVarchar});
  RowCollection rows(layout);
  {
    DataChunk chunk;
    chunk.Initialize(layout.types());
    chunk.SetValue(0, 0, Value::Varchar("heap payload must be copied here"));
    chunk.SetSize(1);
    rows.AppendRow(chunk, 0);
    // chunk (and its heap) dies here.
  }
  EXPECT_EQ(rows.GetValue(0, 0),
            Value::Varchar("heap payload must be copied here"));
}

TEST(RowCollectionTest, GetValueMatchesAppended) {
  RowLayout layout({TypeId::kFloat, TypeId::kVarchar, TypeId::kInt16});
  RowCollection rows(layout);
  DataChunk chunk;
  chunk.Initialize(layout.types());
  chunk.SetValue(0, 0, Value::Float(2.5f));
  chunk.SetValue(1, 0, Value::Varchar("abc"));
  chunk.SetValue(2, 0, Value::Int16(-3));
  chunk.SetSize(1);
  rows.AppendChunk(chunk);
  EXPECT_EQ(rows.GetValue(0, 0), Value::Float(2.5f));
  EXPECT_EQ(rows.GetValue(0, 1), Value::Varchar("abc"));
  EXPECT_EQ(rows.GetValue(0, 2), Value::Int16(-3));
}

// ---------------------------------------------------------------------------
// Specialized data-movement kernels vs. the scalar reference path
// ---------------------------------------------------------------------------

/// RAII toggle for the process-wide kernel flag so a failing assertion can't
/// leak a disabled state into later tests.
class ScopedRowKernels {
 public:
  explicit ScopedRowKernels(bool enabled)
      : previous_(SetRowKernelsEnabled(enabled)) {}
  ~ScopedRowKernels() { SetRowKernelsEnabled(previous_); }

 private:
  bool previous_;
};

enum class ValidityPattern { kAllValid, kSparse, kAlternating, kAllNull };

const char* PatternName(ValidityPattern p) {
  switch (p) {
    case ValidityPattern::kAllValid:
      return "all-valid";
    case ValidityPattern::kSparse:
      return "sparse";
    case ValidityPattern::kAlternating:
      return "alternating";
    case ValidityPattern::kAllNull:
      return "all-null";
  }
  return "?";
}

bool RowIsNull(ValidityPattern p, uint64_t i) {
  switch (p) {
    case ValidityPattern::kAllValid:
      return false;
    case ValidityPattern::kSparse:
      return i % 97 == 0;  // ~1% NULLs: most 64-row words stay fully valid
    case ValidityPattern::kAlternating:
      return i % 2 == 0;  // no 64-row word is ever fully valid
    case ValidityPattern::kAllNull:
      return true;
  }
  return false;
}

Value DeterministicValue(TypeId type, uint64_t i) {
  switch (type) {
    case TypeId::kBool:
      return Value::Bool(i % 3 == 0);
    case TypeId::kInt8:
      return Value::Int8(static_cast<int8_t>(i * 7));
    case TypeId::kInt16:
      return Value::Int16(static_cast<int16_t>(i * 131 - 900));
    case TypeId::kInt32:
      return Value::Int32(static_cast<int32_t>(i * 2654435761u));
    case TypeId::kInt64:
      return Value::Int64(static_cast<int64_t>(i * 0x9E3779B97F4A7C15ull));
    case TypeId::kUint32:
      return Value::Uint32(static_cast<uint32_t>(i * 40503u + 1));
    case TypeId::kUint64:
      return Value::Uint64(i * 0xC2B2AE3D27D4EB4Full);
    case TypeId::kFloat:
      return Value::Float(static_cast<float>(i) * 0.25f - 100.0f);
    case TypeId::kDouble:
      return Value::Double(static_cast<double>(i) * 1.75 - 1000.0);
    case TypeId::kDate:
      return Value::Date(static_cast<int32_t>(i) - 365);
    case TypeId::kVarchar:
      // Mix inlined and heap-resident payloads.
      return i % 4 == 0
                 ? Value::Varchar("row-" + std::to_string(i) +
                                  "-long-enough-to-live-in-the-string-heap")
                 : Value::Varchar("r" + std::to_string(i));
    default:
      return Value::Null(type);
  }
}

DataChunk MakePatternChunk(TypeId type, ValidityPattern pattern,
                           uint64_t count) {
  DataChunk chunk;
  chunk.Initialize({LogicalType(type)});
  for (uint64_t i = 0; i < count; ++i) {
    chunk.SetValue(0, i,
                   RowIsNull(pattern, i) ? Value::Null(type)
                                         : DeterministicValue(type, i));
  }
  chunk.SetSize(count);
  return chunk;
}

const TypeId kAllFixedWidthTypes[] = {
    TypeId::kBool,   TypeId::kInt8,  TypeId::kInt16,  TypeId::kInt32,
    TypeId::kInt64,  TypeId::kUint32, TypeId::kUint64, TypeId::kFloat,
    TypeId::kDouble, TypeId::kDate};

const ValidityPattern kAllPatterns[] = {
    ValidityPattern::kAllValid, ValidityPattern::kSparse,
    ValidityPattern::kAlternating, ValidityPattern::kAllNull};

// 1000 rows: crosses several 64-row validity words and ends mid-word, so the
// word-at-a-time fast path exercises both full and partial spans.
constexpr uint64_t kKernelTestRows = 1000;

TEST(RowKernelsTest, ScatterMatchesScalarBytesForEveryFixedWidthType) {
  for (TypeId type : kAllFixedWidthTypes) {
    for (ValidityPattern pattern : kAllPatterns) {
      SCOPED_TRACE(std::string(LogicalType(type).ToString()) + "/" +
                   PatternName(pattern));
      DataChunk chunk = MakePatternChunk(type, pattern, kKernelTestRows);

      RowCollection with_kernels{RowLayout({LogicalType(type)})};
      {
        ScopedRowKernels on(true);
        with_kernels.AppendChunk(chunk);
      }
      RowCollection scalar{RowLayout({LogicalType(type)})};
      {
        ScopedRowKernels off(false);
        scalar.AppendChunk(chunk);
      }

      ASSERT_EQ(with_kernels.RowBytes(), scalar.RowBytes());
      EXPECT_EQ(std::memcmp(with_kernels.data(), scalar.data(),
                            scalar.RowBytes()),
                0)
          << "kernel scatter produced different row bytes";
      EXPECT_EQ(with_kernels.maybe_null_mask(), scalar.maybe_null_mask());
    }
  }
}

TEST(RowKernelsTest, GatherMatchesScalarValuesForEveryFixedWidthType) {
  for (TypeId type : kAllFixedWidthTypes) {
    for (ValidityPattern pattern : kAllPatterns) {
      SCOPED_TRACE(std::string(LogicalType(type).ToString()) + "/" +
                   PatternName(pattern));
      DataChunk chunk = MakePatternChunk(type, pattern, kKernelTestRows);
      RowCollection rows{RowLayout({LogicalType(type)})};
      rows.AppendChunk(chunk);

      // Sequential gather (GatherChunk) and an index-driven gather over a
      // reversed permutation (GatherRows, hits the prefetching loop).
      std::vector<uint64_t> reversed(kKernelTestRows);
      std::iota(reversed.begin(), reversed.end(), 0);
      std::reverse(reversed.begin(), reversed.end());

      DataChunk seq_fast, seq_ref, idx_fast, idx_ref;
      for (DataChunk* c : {&seq_fast, &seq_ref, &idx_fast, &idx_ref}) {
        c->Initialize({LogicalType(type)});
      }
      {
        ScopedRowKernels on(true);
        rows.GatherChunk(0, kKernelTestRows, &seq_fast);
        rows.GatherRows(reversed.data(), kKernelTestRows, &idx_fast);
      }
      {
        ScopedRowKernels off(false);
        rows.GatherChunk(0, kKernelTestRows, &seq_ref);
        rows.GatherRows(reversed.data(), kKernelTestRows, &idx_ref);
      }

      for (uint64_t i = 0; i < kKernelTestRows; ++i) {
        ASSERT_EQ(seq_fast.GetValue(0, i), seq_ref.GetValue(0, i)) << i;
        ASSERT_EQ(idx_fast.GetValue(0, i), idx_ref.GetValue(0, i)) << i;
        // Both must agree with the source chunk too, not just each other.
        ASSERT_EQ(seq_fast.GetValue(0, i), chunk.GetValue(0, i)) << i;
        ASSERT_EQ(idx_fast.GetValue(0, i),
                  chunk.GetValue(0, kKernelTestRows - 1 - i))
            << i;
      }
    }
  }
}

TEST(RowKernelsTest, VarcharRoundTripMatchesScalarForEveryPattern) {
  for (ValidityPattern pattern : kAllPatterns) {
    SCOPED_TRACE(PatternName(pattern));
    DataChunk chunk =
        MakePatternChunk(TypeId::kVarchar, pattern, kKernelTestRows);

    RowCollection with_kernels{RowLayout({LogicalType(TypeId::kVarchar)})};
    {
      ScopedRowKernels on(true);
      with_kernels.AppendChunk(chunk);
    }
    RowCollection scalar{RowLayout({LogicalType(TypeId::kVarchar)})};
    {
      ScopedRowKernels off(false);
      scalar.AppendChunk(chunk);
    }

    // Row bytes hold heap pointers, so compare through the gather instead:
    // every (validity, payload) pair must match the scalar path and the
    // source values.
    DataChunk out_fast, out_ref;
    out_fast.Initialize({LogicalType(TypeId::kVarchar)});
    out_ref.Initialize({LogicalType(TypeId::kVarchar)});
    {
      ScopedRowKernels on(true);
      with_kernels.GatherChunk(0, kKernelTestRows, &out_fast);
    }
    {
      ScopedRowKernels off(false);
      scalar.GatherChunk(0, kKernelTestRows, &out_ref);
    }
    for (uint64_t i = 0; i < kKernelTestRows; ++i) {
      ASSERT_EQ(out_fast.GetValue(0, i), out_ref.GetValue(0, i)) << i;
      ASSERT_EQ(out_fast.GetValue(0, i), chunk.GetValue(0, i)) << i;
    }
  }
}

TEST(RowKernelsTest, MixedLayoutScatterBytesMatchScalar) {
  // A multi-column layout (the bench's 4-column table plus bool + date)
  // with per-column validity differing: fast-path columns and fallback
  // columns must coexist within one AppendChunk.
  std::vector<LogicalType> types = {
      LogicalType(TypeId::kInt32), LogicalType(TypeId::kInt64),
      LogicalType(TypeId::kInt16), LogicalType(TypeId::kBool),
      LogicalType(TypeId::kDate),  LogicalType(TypeId::kDouble)};
  DataChunk chunk;
  chunk.Initialize(types);
  for (uint64_t i = 0; i < kKernelTestRows; ++i) {
    for (uint64_t col = 0; col < types.size(); ++col) {
      // Column c uses pattern c % 4, so every pattern appears.
      ValidityPattern pattern = kAllPatterns[col % 4];
      chunk.SetValue(col, i,
                     RowIsNull(pattern, i)
                         ? Value::Null(types[col].id())
                         : DeterministicValue(types[col].id(), i + col));
    }
  }
  chunk.SetSize(kKernelTestRows);

  RowCollection with_kernels{RowLayout(types)};
  {
    ScopedRowKernels on(true);
    with_kernels.AppendChunk(chunk);
  }
  RowCollection scalar{RowLayout(types)};
  {
    ScopedRowKernels off(false);
    scalar.AppendChunk(chunk);
  }
  ASSERT_EQ(with_kernels.RowBytes(), scalar.RowBytes());
  EXPECT_EQ(
      std::memcmp(with_kernels.data(), scalar.data(), scalar.RowBytes()), 0);
}

TEST(RowKernelsTest, StatsCountFastPathRows) {
  ScopedRowKernels on(true);
  RowLayout layout({TypeId::kInt32, TypeId::kInt64});
  // Two-column chunk, both all-valid.
  DataChunk chunk;
  chunk.Initialize(layout.types());
  for (uint64_t i = 0; i < kKernelTestRows; ++i) {
    chunk.SetValue(0, i, DeterministicValue(TypeId::kInt32, i));
    chunk.SetValue(1, i, DeterministicValue(TypeId::kInt64, i));
  }
  chunk.SetSize(kKernelTestRows);

  RowCollection rows(layout);
  RowKernelStats stats;
  rows.AppendChunk(chunk, &stats);
  // Counted per column visit: 2 columns * rows.
  EXPECT_EQ(stats.scatter_fast_path.load(), 2 * kKernelTestRows);

  DataChunk out;
  out.Initialize(layout.types());
  rows.GatherChunk(0, kKernelTestRows, &out, &stats);
  EXPECT_EQ(stats.gather_fast_path.load(), 2 * kKernelTestRows);

  // An all-null chunk never takes the fast path on scatter, and poisons the
  // maybe-null mask so later gathers take the branchy path too.
  RowCollection null_rows(layout);
  RowKernelStats null_stats;
  DataChunk nulls;
  nulls.Initialize(layout.types());
  for (uint64_t i = 0; i < kKernelTestRows; ++i) {
    nulls.SetValue(0, i, Value::Null(TypeId::kInt32));
    nulls.SetValue(1, i, Value::Null(TypeId::kInt64));
  }
  nulls.SetSize(kKernelTestRows);
  null_rows.AppendChunk(nulls, &null_stats);
  EXPECT_EQ(null_stats.scatter_fast_path.load(), 0u);
  null_rows.GatherChunk(0, kKernelTestRows, &out, &null_stats);
  EXPECT_EQ(null_stats.gather_fast_path.load(), 0u);
}

TEST(RowKernelsTest, SparsePatternStillUsesFastPathForFullWords) {
  // 1000 rows with a NULL at every multiple of 97: the NULLs land in words
  // {0,1,3,4,6,7,9,10,12,13,15}, leaving full words {2,5,8,11,14} — 5 words
  // of 64 rows each — to go through the branchless kernel.
  ScopedRowKernels on(true);
  RowLayout layout({TypeId::kInt64});
  DataChunk chunk = MakePatternChunk(TypeId::kInt64, ValidityPattern::kSparse,
                                     kKernelTestRows);
  RowCollection rows(layout);
  RowKernelStats stats;
  rows.AppendChunk(chunk, &stats);
  EXPECT_EQ(stats.scatter_fast_path.load(), 5 * 64u);
}

}  // namespace
}  // namespace rowsort
