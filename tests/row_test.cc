// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include <gtest/gtest.h>

#include "common/random.h"
#include "row/row_collection.h"
#include "row/row_layout.h"

namespace rowsort {
namespace {

TEST(RowLayoutTest, OffsetsAndWidth) {
  RowLayout layout({TypeId::kInt32, TypeId::kInt64, TypeId::kInt16});
  // 1 validity byte for 3 columns, then 4 + 8 + 2 bytes of data = 15, padded
  // to a multiple of 8 -> 16.
  EXPECT_EQ(layout.ValidityBytes(), 1u);
  EXPECT_EQ(layout.ColumnOffset(0), 1u);
  EXPECT_EQ(layout.ColumnOffset(1), 5u);
  EXPECT_EQ(layout.ColumnOffset(2), 13u);
  EXPECT_EQ(layout.row_width(), 16u);
  EXPECT_FALSE(layout.HasVariableSize());
}

TEST(RowLayoutTest, EightByteAlignment) {
  // Paper §VII: row formats use 8-byte alignment.
  RowLayout one_byte({TypeId::kInt8});
  EXPECT_EQ(one_byte.row_width() % 8, 0u);
  RowLayout many({TypeId::kInt8, TypeId::kVarchar, TypeId::kInt32});
  EXPECT_EQ(many.row_width() % 8, 0u);
}

TEST(RowLayoutTest, NineColumnsNeedTwoValidityBytes) {
  std::vector<LogicalType> types(9, LogicalType(TypeId::kInt32));
  RowLayout layout(types);
  EXPECT_EQ(layout.ValidityBytes(), 2u);
}

TEST(RowLayoutTest, ValidityBitAccess) {
  uint8_t row[2] = {0xFF, 0xFF};
  RowLayout::SetValid(row, 3, false);
  EXPECT_FALSE(RowLayout::IsValid(row, 3));
  EXPECT_TRUE(RowLayout::IsValid(row, 2));
  RowLayout::SetValid(row, 3, true);
  EXPECT_TRUE(RowLayout::IsValid(row, 3));
  RowLayout::SetValid(row, 9, false);
  EXPECT_FALSE(RowLayout::IsValid(row, 9));
}

TEST(RowCollectionTest, ScatterGatherRoundTripFixed) {
  RowLayout layout({TypeId::kInt32, TypeId::kDouble});
  RowCollection rows(layout);

  DataChunk chunk;
  chunk.Initialize(layout.types());
  for (uint64_t i = 0; i < 100; ++i) {
    chunk.SetValue(0, i, Value::Int32(static_cast<int32_t>(i) - 50));
    chunk.SetValue(1, i, Value::Double(i * 1.5));
  }
  chunk.SetSize(100);
  rows.AppendChunk(chunk);
  EXPECT_EQ(rows.row_count(), 100u);

  DataChunk out;
  out.Initialize(layout.types());
  rows.GatherChunk(0, 100, &out);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(out.GetValue(0, i), Value::Int32(static_cast<int32_t>(i) - 50));
    EXPECT_EQ(out.GetValue(1, i), Value::Double(i * 1.5));
  }
}

TEST(RowCollectionTest, RoundTripNulls) {
  RowLayout layout({TypeId::kInt32});
  RowCollection rows(layout);

  DataChunk chunk;
  chunk.Initialize(layout.types());
  for (uint64_t i = 0; i < 10; ++i) {
    chunk.SetValue(0, i,
                   i % 3 == 0 ? Value::Null(TypeId::kInt32)
                              : Value::Int32(static_cast<int32_t>(i)));
  }
  chunk.SetSize(10);
  rows.AppendChunk(chunk);

  DataChunk out;
  out.Initialize(layout.types());
  rows.GatherChunk(0, 10, &out);
  for (uint64_t i = 0; i < 10; ++i) {
    if (i % 3 == 0) {
      EXPECT_TRUE(out.GetValue(0, i).is_null()) << i;
    } else {
      EXPECT_EQ(out.GetValue(0, i), Value::Int32(static_cast<int32_t>(i)));
    }
  }
}

TEST(RowCollectionTest, RoundTripStringsOwnedByCollection) {
  RowLayout layout({TypeId::kVarchar});
  RowCollection rows(layout);
  {
    // The source chunk dies before we gather: the collection must have
    // copied string payloads into its own heap.
    DataChunk chunk;
    chunk.Initialize(layout.types());
    chunk.SetValue(0, 0, Value::Varchar("short"));
    chunk.SetValue(0, 1,
                   Value::Varchar("a long string that lives in the heap"));
    chunk.SetValue(0, 2, Value::Null(TypeId::kVarchar));
    chunk.SetSize(3);
    rows.AppendChunk(chunk);
  }
  DataChunk out;
  out.Initialize(layout.types());
  rows.GatherChunk(0, 3, &out);
  EXPECT_EQ(out.GetValue(0, 0), Value::Varchar("short"));
  EXPECT_EQ(out.GetValue(0, 1),
            Value::Varchar("a long string that lives in the heap"));
  EXPECT_TRUE(out.GetValue(0, 2).is_null());
}

TEST(RowCollectionTest, GatherByIndicesReorders) {
  RowLayout layout({TypeId::kInt32});
  RowCollection rows(layout);
  DataChunk chunk;
  chunk.Initialize(layout.types());
  for (uint64_t i = 0; i < 5; ++i) {
    chunk.SetValue(0, i, Value::Int32(static_cast<int32_t>(i * 10)));
  }
  chunk.SetSize(5);
  rows.AppendChunk(chunk);

  uint64_t indices[] = {4, 2, 0};
  DataChunk out;
  out.Initialize(layout.types());
  rows.GatherRows(indices, 3, &out);
  EXPECT_EQ(out.GetValue(0, 0), Value::Int32(40));
  EXPECT_EQ(out.GetValue(0, 1), Value::Int32(20));
  EXPECT_EQ(out.GetValue(0, 2), Value::Int32(0));
}

TEST(RowCollectionTest, MultipleChunksAccumulate) {
  RowLayout layout({TypeId::kInt64});
  RowCollection rows(layout);
  for (int c = 0; c < 5; ++c) {
    DataChunk chunk;
    chunk.Initialize(layout.types());
    for (uint64_t i = 0; i < kVectorSize; ++i) {
      chunk.SetValue(0, i, Value::Int64(c * 10000 + static_cast<int64_t>(i)));
    }
    chunk.SetSize(kVectorSize);
    rows.AppendChunk(chunk);
  }
  EXPECT_EQ(rows.row_count(), 5 * kVectorSize);
  EXPECT_EQ(rows.GetValue(3 * kVectorSize + 7, 0), Value::Int64(30007));
}

TEST(RowCollectionTest, AppendRowSelectsSingleRows) {
  RowLayout layout({TypeId::kInt32, TypeId::kVarchar});
  RowCollection rows(layout);
  DataChunk chunk;
  chunk.Initialize(layout.types());
  chunk.SetValue(0, 0, Value::Int32(10));
  chunk.SetValue(1, 0, Value::Varchar("skipped row zero"));
  chunk.SetValue(0, 1, Value::Null(TypeId::kInt32));
  chunk.SetValue(1, 1, Value::Varchar("a long string that is not inlined"));
  chunk.SetValue(0, 2, Value::Int32(30));
  chunk.SetValue(1, 2, Value::Varchar("short"));
  chunk.SetSize(3);

  // Append only rows 2 and 1 (in that order), as a selective operator would.
  EXPECT_EQ(rows.AppendRow(chunk, 2), 0u);
  EXPECT_EQ(rows.AppendRow(chunk, 1), 1u);
  EXPECT_EQ(rows.row_count(), 2u);
  EXPECT_EQ(rows.GetValue(0, 0), Value::Int32(30));
  EXPECT_EQ(rows.GetValue(0, 1), Value::Varchar("short"));
  EXPECT_TRUE(rows.GetValue(1, 0).is_null());
  EXPECT_EQ(rows.GetValue(1, 1),
            Value::Varchar("a long string that is not inlined"));
}

TEST(RowCollectionTest, AppendRowOwnsStringPayload) {
  RowLayout layout({TypeId::kVarchar});
  RowCollection rows(layout);
  {
    DataChunk chunk;
    chunk.Initialize(layout.types());
    chunk.SetValue(0, 0, Value::Varchar("heap payload must be copied here"));
    chunk.SetSize(1);
    rows.AppendRow(chunk, 0);
    // chunk (and its heap) dies here.
  }
  EXPECT_EQ(rows.GetValue(0, 0),
            Value::Varchar("heap payload must be copied here"));
}

TEST(RowCollectionTest, GetValueMatchesAppended) {
  RowLayout layout({TypeId::kFloat, TypeId::kVarchar, TypeId::kInt16});
  RowCollection rows(layout);
  DataChunk chunk;
  chunk.Initialize(layout.types());
  chunk.SetValue(0, 0, Value::Float(2.5f));
  chunk.SetValue(1, 0, Value::Varchar("abc"));
  chunk.SetValue(2, 0, Value::Int16(-3));
  chunk.SetSize(1);
  rows.AppendChunk(chunk);
  EXPECT_EQ(rows.GetValue(0, 0), Value::Float(2.5f));
  EXPECT_EQ(rows.GetValue(0, 1), Value::Varchar("abc"));
  EXPECT_EQ(rows.GetValue(0, 2), Value::Int16(-3));
}

}  // namespace
}  // namespace rowsort
