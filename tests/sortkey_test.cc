// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Property tests for key normalization (paper §VI-A, Fig. 7): for any two
// values a, b and any (ASC/DESC, NULLS FIRST/LAST) combination,
// memcmp(encode(a), encode(b)) must have the same sign as the ORDER BY
// comparison of a and b.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/random.h"
#include "sortkey/key_encoder.h"
#include "sortkey/sort_spec.h"

namespace rowsort {
namespace {

Value RandomValue(TypeId type, Random& rng, double null_probability = 0.15) {
  if (rng.Bernoulli(null_probability)) return Value::Null(type);
  switch (type) {
    case TypeId::kBool:
      return Value::Bool(rng.Bernoulli(0.5));
    case TypeId::kInt8:
      return Value::Int8(static_cast<int8_t>(rng.Next32()));
    case TypeId::kInt16:
      return Value::Int16(static_cast<int16_t>(rng.Next32()));
    case TypeId::kInt32:
      return Value::Int32(static_cast<int32_t>(rng.Next32()));
    case TypeId::kInt64:
      return Value::Int64(static_cast<int64_t>(rng.Next64()));
    case TypeId::kUint32:
      return Value::Uint32(rng.Next32());
    case TypeId::kUint64:
      return Value::Uint64(rng.Next64());
    case TypeId::kFloat: {
      switch (rng.Uniform(8)) {
        case 0:
          return Value::Float(0.0f);
        case 1:
          return Value::Float(-0.0f + -1.0f * 0.0f);  // negative zero-ish
        case 2:
          return Value::Float(std::numeric_limits<float>::infinity());
        case 3:
          return Value::Float(-std::numeric_limits<float>::infinity());
        case 4:
          return Value::Float(std::numeric_limits<float>::quiet_NaN());
        default:
          return Value::Float(rng.UniformFloat(-1e9f, 1e9f));
      }
    }
    case TypeId::kDouble:
      return Value::Double((rng.NextDouble() - 0.5) * 2e12);
    case TypeId::kDate:
      return Value::Date(static_cast<int32_t>(rng.Uniform(40000)) - 20000);
    case TypeId::kVarchar: {
      static const char* kWords[] = {"",        "a",       "ab",
                                     "abc",     "abd",     "GERMANY",
                                     "NETHERLANDS", "zebra", "Zebra",
                                     "exactly12by", "this one is definitely "
                                                    "longer than the prefix"};
      return Value::Varchar(kWords[rng.Uniform(11)]);
    }
    default:
      return Value::Null(type);
  }
}

/// ORDER BY comparison of a, b under the column spec (ignoring the
/// VARCHAR-prefix caveat, handled separately below).
int OrderByCompare(const Value& a, const Value& b, const SortColumn& spec) {
  if (a.is_null() || b.is_null()) {
    if (a.is_null() && b.is_null()) return 0;
    bool nulls_first = spec.null_order == NullOrder::kNullsFirst;
    if (a.is_null()) return nulls_first ? -1 : 1;
    return nulls_first ? 1 : -1;
  }
  int cmp = a.Compare(b);
  if (spec.order == OrderType::kDescending) cmp = -cmp;
  return cmp;
}

int Sign(int x) { return (x > 0) - (x < 0); }

struct SpecCase {
  TypeId type;
  OrderType order;
  NullOrder null_order;
};

class KeyEncodingProperty : public ::testing::TestWithParam<SpecCase> {};

TEST_P(KeyEncodingProperty, MemcmpMatchesOrderByComparison) {
  const auto& param = GetParam();
  SortColumn spec(0, param.type, param.order, param.null_order);
  // Long enough that every test string fits: no prefix-tie ambiguity.
  spec.string_prefix_length = 64;
  const uint64_t width = spec.EncodedWidth();

  Random rng(static_cast<uint64_t>(param.type) * 100 +
             static_cast<uint64_t>(param.order) * 10 +
             static_cast<uint64_t>(param.null_order));
  std::vector<uint8_t> key_a(width), key_b(width);
  for (int trial = 0; trial < 3000; ++trial) {
    Value a = RandomValue(param.type, rng);
    Value b = RandomValue(param.type, rng);
    NormalizedKeyEncoder::EncodeValue(a, spec, key_a.data());
    NormalizedKeyEncoder::EncodeValue(b, spec, key_b.data());
    int key_cmp = Sign(std::memcmp(key_a.data(), key_b.data(), width));
    int expected = Sign(OrderByCompare(a, b, spec));
    ASSERT_EQ(key_cmp, expected)
        << "a=" << a.ToString() << " b=" << b.ToString() << " spec "
        << SortSpec({spec}).ToString();
  }
}

std::vector<SpecCase> AllSpecs() {
  std::vector<SpecCase> cases;
  for (TypeId type : {TypeId::kBool, TypeId::kInt8, TypeId::kInt16,
                      TypeId::kInt32, TypeId::kInt64, TypeId::kUint32,
                      TypeId::kUint64, TypeId::kFloat, TypeId::kDouble,
                      TypeId::kDate, TypeId::kVarchar}) {
    for (OrderType order : {OrderType::kAscending, OrderType::kDescending}) {
      for (NullOrder null_order :
           {NullOrder::kNullsFirst, NullOrder::kNullsLast}) {
        cases.push_back({type, order, null_order});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllTypeOrderCombos, KeyEncodingProperty, ::testing::ValuesIn(AllSpecs()),
    [](const ::testing::TestParamInfo<SpecCase>& info) {
      std::string name = LogicalType(info.param.type).ToString();
      name += info.param.order == OrderType::kAscending ? "_asc" : "_desc";
      name += info.param.null_order == NullOrder::kNullsFirst ? "_nf" : "_nl";
      return name;
    });

TEST(KeyEncodingTest, PaperFigure7Example) {
  // ORDER BY c_birth_country DESC, c_birth_year ASC (paper §II / Fig. 7):
  // 'NETHERLANDS' must sort before 'GERMANY' (DESC), and within equal
  // countries, smaller years first.
  SortColumn country(0, TypeId::kVarchar, OrderType::kDescending,
                     NullOrder::kNullsLast);
  country.string_prefix_length = 11;  // len("NETHERLANDS")
  SortColumn year(1, TypeId::kInt32, OrderType::kAscending,
                  NullOrder::kNullsFirst);

  auto encode = [&](const char* c, const Value& y) {
    std::vector<uint8_t> key(country.EncodedWidth() + year.EncodedWidth());
    NormalizedKeyEncoder::EncodeValue(Value::Varchar(c), country, key.data());
    NormalizedKeyEncoder::EncodeValue(y, year,
                                      key.data() + country.EncodedWidth());
    return key;
  };

  auto nl_1992 = encode("NETHERLANDS", Value::Int32(1992));
  auto de_1992 = encode("GERMANY", Value::Int32(1992));
  auto nl_1924 = encode("NETHERLANDS", Value::Int32(1924));
  auto nl_null = encode("NETHERLANDS", Value::Null(TypeId::kInt32));

  auto less = [&](const std::vector<uint8_t>& a,
                  const std::vector<uint8_t>& b) {
    return std::memcmp(a.data(), b.data(), a.size()) < 0;
  };
  EXPECT_TRUE(less(nl_1992, de_1992));  // DESC: NETHERLANDS before GERMANY
  EXPECT_TRUE(less(nl_1924, nl_1992));  // ASC year within equal country
  EXPECT_TRUE(less(nl_null, nl_1924));  // NULLS FIRST on year
}

TEST(KeyEncodingTest, ChunkEncodingMatchesValueEncoding) {
  SortSpec spec({SortColumn(0, TypeId::kInt32, OrderType::kDescending,
                            NullOrder::kNullsFirst),
                 SortColumn(1, TypeId::kUint32)});
  NormalizedKeyEncoder encoder(spec);
  ASSERT_EQ(encoder.key_width(), 10u);

  DataChunk chunk;
  chunk.Initialize({TypeId::kInt32, TypeId::kUint32});
  Random rng(42);
  const uint64_t n = 500;
  for (uint64_t i = 0; i < n; ++i) {
    chunk.SetValue(0, i, RandomValue(TypeId::kInt32, rng));
    chunk.SetValue(1, i, RandomValue(TypeId::kUint32, rng));
  }
  chunk.SetSize(n);

  const uint64_t stride = 16;
  std::vector<uint8_t> keys(n * stride, 0xCC);
  encoder.EncodeChunk(chunk, n, keys.data(), stride);

  std::vector<uint8_t> expected(10);
  for (uint64_t i = 0; i < n; ++i) {
    NormalizedKeyEncoder::EncodeValue(chunk.GetValue(0, i), spec.columns()[0],
                                      expected.data());
    NormalizedKeyEncoder::EncodeValue(chunk.GetValue(1, i), spec.columns()[1],
                                      expected.data() + 5);
    ASSERT_EQ(std::memcmp(keys.data() + i * stride, expected.data(), 10), 0)
        << "row " << i;
  }
  // Bytes outside the key must be untouched.
  EXPECT_EQ(keys[10], 0xCC);
}

TEST(KeyEncodingTest, SortingEncodedKeysSortsValues) {
  // End-to-end property: sort encoded keys bytewise, decode positions via an
  // attached index, and verify the value order honors the spec.
  SortColumn spec_col(0, TypeId::kFloat, OrderType::kAscending,
                      NullOrder::kNullsLast);
  SortSpec spec({spec_col});
  NormalizedKeyEncoder encoder(spec);
  const uint64_t n = 2000;
  Random rng(9);

  std::vector<Value> values;
  values.reserve(n);
  DataChunk chunk;
  chunk.Initialize({TypeId::kFloat}, n);
  for (uint64_t i = 0; i < n; ++i) {
    values.push_back(RandomValue(TypeId::kFloat, rng));
    chunk.SetValue(0, i, values.back());
  }
  chunk.SetSize(n);

  const uint64_t width = encoder.key_width();
  struct Keyed {
    std::vector<uint8_t> key;
    uint64_t idx;
  };
  std::vector<uint8_t> keys(n * width);
  encoder.EncodeChunk(chunk, n, keys.data(), width);
  std::vector<Keyed> keyed(n);
  for (uint64_t i = 0; i < n; ++i) {
    keyed[i].key.assign(keys.begin() + i * width,
                        keys.begin() + (i + 1) * width);
    keyed[i].idx = i;
  }
  std::sort(keyed.begin(), keyed.end(), [&](const Keyed& a, const Keyed& b) {
    return std::memcmp(a.key.data(), b.key.data(), width) < 0;
  });
  for (uint64_t i = 1; i < n; ++i) {
    const Value& prev = values[keyed[i - 1].idx];
    const Value& cur = values[keyed[i].idx];
    ASSERT_LE(OrderByCompare(prev, cur, spec_col), 0)
        << prev.ToString() << " !<= " << cur.ToString();
  }
}

TEST(KeyEncodingTest, VarcharPrefixTiesNeedResolution) {
  SortSpec with_strings({SortColumn(0, TypeId::kVarchar)});
  EXPECT_TRUE(with_strings.NeedsTieResolution());
  SortSpec ints_only({SortColumn(0, TypeId::kInt32)});
  EXPECT_FALSE(ints_only.NeedsTieResolution());
}

TEST(KeyEncodingTest, PrefixTruncationCollidesExactlyBeyondPrefix) {
  SortColumn spec(0, TypeId::kVarchar);
  spec.string_prefix_length = 4;
  std::vector<uint8_t> a(spec.EncodedWidth()), b(spec.EncodedWidth());
  NormalizedKeyEncoder::EncodeValue(Value::Varchar("abcdX"), spec, a.data());
  NormalizedKeyEncoder::EncodeValue(Value::Varchar("abcdY"), spec, b.data());
  // Same 4-byte prefix: encoded keys tie; the engine must resolve by
  // comparing full strings.
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0);
  NormalizedKeyEncoder::EncodeValue(Value::Varchar("abce"), spec, b.data());
  EXPECT_LT(std::memcmp(a.data(), b.data(), a.size()), 0);
}

TEST(KeyEncodingTest, SortSpecToString) {
  SortSpec spec({SortColumn(1, TypeId::kVarchar, OrderType::kDescending,
                            NullOrder::kNullsLast),
                 SortColumn(0, TypeId::kInt32, OrderType::kAscending,
                            NullOrder::kNullsFirst)});
  EXPECT_EQ(spec.ToString(),
            "col1 DESC NULLS LAST, col0 ASC NULLS FIRST");
}

}  // namespace
}  // namespace rowsort
