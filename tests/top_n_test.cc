// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Top-N operator (paper §VII-A): must return exactly the first N rows of
// the full sort order with bounded memory.
#include <gtest/gtest.h>

#include "common/random.h"
#include "engine/sort_engine.h"
#include "engine/top_n.h"
#include "workload/tables.h"

namespace rowsort {
namespace {

Table RandomInts(uint64_t rows, double null_prob, uint64_t seed) {
  Random rng(seed);
  Table table({TypeId::kInt32, TypeId::kInt64});
  uint64_t produced = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = table.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      if (rng.Bernoulli(null_prob)) {
        chunk.SetValue(0, r, Value::Null(TypeId::kInt32));
      } else {
        chunk.SetValue(0, r,
                       Value::Int32(static_cast<int32_t>(rng.Uniform(10000))));
      }
      chunk.SetValue(1, r, Value::Int64(static_cast<int64_t>(produced + r)));
    }
    chunk.SetSize(n);
    table.Append(std::move(chunk));
    produced += n;
  }
  return table;
}

/// Key-column sequence of the first \p n rows of \p t.
std::vector<std::string> KeyPrefix(const Table& t, uint64_t col, uint64_t n) {
  std::vector<std::string> keys;
  for (uint64_t ci = 0; ci < t.ChunkCount() && keys.size() < n; ++ci) {
    for (uint64_t r = 0; r < t.chunk(ci).size() && keys.size() < n; ++r) {
      keys.push_back(t.chunk(ci).GetValue(col, r).ToString());
    }
  }
  return keys;
}

class TopNTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TopNTest, MatchesFullSortPrefix) {
  const uint64_t limit = GetParam();
  Table input = RandomInts(30000, 0.1, 7);
  SortSpec spec({SortColumn(0, TypeId::kInt32, OrderType::kAscending,
                            NullOrder::kNullsLast)});

  TopN top_n(spec, input.types(), limit);
  for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
    top_n.Sink(input.chunk(c));
  }
  Table result = top_n.Finalize();

  Table full = RelationalSort::SortTable(input, spec).ValueOrDie();
  uint64_t expect_rows = std::min<uint64_t>(limit, input.row_count());
  ASSERT_EQ(result.row_count(), expect_rows);
  // Key sequences must match exactly (payload may permute within ties).
  EXPECT_EQ(KeyPrefix(result, 0, expect_rows),
            KeyPrefix(full, 0, expect_rows));
  EXPECT_EQ(top_n.rows_seen(), input.row_count());
}

INSTANTIATE_TEST_SUITE_P(Limits, TopNTest,
                         ::testing::Values(1, 2, 10, 100, 2048, 50000),
                         ::testing::PrintToStringParamName());

TEST(TopNTest, DescendingWithNullsFirst) {
  Table input = RandomInts(5000, 0.2, 11);
  SortSpec spec({SortColumn(0, TypeId::kInt32, OrderType::kDescending,
                            NullOrder::kNullsFirst)});
  TopN top_n(spec, input.types(), 50);
  for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
    top_n.Sink(input.chunk(c));
  }
  Table result = top_n.Finalize();
  Table full = RelationalSort::SortTable(input, spec).ValueOrDie();
  EXPECT_EQ(KeyPrefix(result, 0, 50), KeyPrefix(full, 0, 50));
  // NULLS FIRST + 20% nulls: the entire top 50 should be NULL.
  EXPECT_EQ(result.chunk(0).GetValue(0, 0).ToString(), "NULL");
}

TEST(TopNTest, StringsWithTieResolution) {
  Table input({TypeId::kVarchar});
  DataChunk chunk = input.NewChunk();
  const char* values[] = {"common-prefix-long-string-B",
                          "common-prefix-long-string-A", "zz",
                          "common-prefix-long-string-C", "aa"};
  for (uint64_t r = 0; r < 5; ++r) {
    chunk.SetValue(0, r, Value::Varchar(values[r]));
  }
  chunk.SetSize(5);
  input.Append(std::move(chunk));

  SortSpec spec({SortColumn(0, TypeId::kVarchar)});
  TopN top_n(spec, input.types(), 3);
  top_n.Sink(input.chunk(0));
  Table result = top_n.Finalize();
  ASSERT_EQ(result.row_count(), 3u);
  EXPECT_EQ(result.chunk(0).GetValue(0, 0), Value::Varchar("aa"));
  EXPECT_EQ(result.chunk(0).GetValue(0, 1),
            Value::Varchar("common-prefix-long-string-A"));
  EXPECT_EQ(result.chunk(0).GetValue(0, 2),
            Value::Varchar("common-prefix-long-string-B"));
}

TEST(TopNTest, EarlyRejectionKicksIn) {
  // Sorted ascending input with limit 10: after the first 10 rows, every
  // row is rejected with a single comparison.
  Table input({TypeId::kInt32});
  uint64_t rows = 10000;
  uint64_t produced = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = input.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      chunk.SetValue(0, r, Value::Int32(static_cast<int32_t>(produced + r)));
    }
    chunk.SetSize(n);
    input.Append(std::move(chunk));
    produced += n;
  }
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  TopN top_n(spec, input.types(), 10);
  for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
    top_n.Sink(input.chunk(c));
  }
  Table result = top_n.Finalize();
  EXPECT_EQ(result.row_count(), 10u);
  EXPECT_EQ(top_n.rows_rejected_early(), rows - 10);
  EXPECT_EQ(result.chunk(0).GetValue(0, 9), Value::Int32(9));
}

TEST(TopNTest, CompactionPreservesStrings) {
  // Enough rows (with heap-resident strings) to trigger several compactions.
  Table input({TypeId::kVarchar});
  Random rng(13);
  uint64_t rows = 50000;
  uint64_t produced = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = input.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      chunk.SetValue(0, r,
                     Value::Varchar("payload-string-that-is-not-inlined-" +
                                    std::to_string(rng.Uniform(100000))));
    }
    chunk.SetSize(n);
    input.Append(std::move(chunk));
    produced += n;
  }
  SortSpec spec({SortColumn(0, TypeId::kVarchar)});
  TopN top_n(spec, input.types(), 25);
  for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
    top_n.Sink(input.chunk(c));
  }
  Table result = top_n.Finalize();
  Table full = RelationalSort::SortTable(input, spec).ValueOrDie();
  EXPECT_EQ(KeyPrefix(result, 0, 25), KeyPrefix(full, 0, 25));
}

}  // namespace
}  // namespace rowsort
