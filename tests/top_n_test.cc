// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Top-N operator (paper §VII-A): must return exactly the first N rows of
// the full sort order with bounded memory.
#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/random.h"
#include "engine/sort_engine.h"
#include "engine/top_n.h"
#include "workload/tables.h"

namespace rowsort {
namespace {

Table RandomInts(uint64_t rows, double null_prob, uint64_t seed) {
  Random rng(seed);
  Table table({TypeId::kInt32, TypeId::kInt64});
  uint64_t produced = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = table.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      if (rng.Bernoulli(null_prob)) {
        chunk.SetValue(0, r, Value::Null(TypeId::kInt32));
      } else {
        chunk.SetValue(0, r,
                       Value::Int32(static_cast<int32_t>(rng.Uniform(10000))));
      }
      chunk.SetValue(1, r, Value::Int64(static_cast<int64_t>(produced + r)));
    }
    chunk.SetSize(n);
    table.Append(std::move(chunk));
    produced += n;
  }
  return table;
}

/// Key-column sequence of the first \p n rows of \p t.
std::vector<std::string> KeyPrefix(const Table& t, uint64_t col, uint64_t n) {
  std::vector<std::string> keys;
  for (uint64_t ci = 0; ci < t.ChunkCount() && keys.size() < n; ++ci) {
    for (uint64_t r = 0; r < t.chunk(ci).size() && keys.size() < n; ++r) {
      keys.push_back(t.chunk(ci).GetValue(col, r).ToString());
    }
  }
  return keys;
}

class TopNTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TopNTest, MatchesFullSortPrefix) {
  const uint64_t limit = GetParam();
  Table input = RandomInts(30000, 0.1, 7);
  SortSpec spec({SortColumn(0, TypeId::kInt32, OrderType::kAscending,
                            NullOrder::kNullsLast)});

  TopN top_n(spec, input.types(), limit);
  for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
    ASSERT_TRUE(top_n.Sink(input.chunk(c)).ok());
  }
  Table result = top_n.Finalize().ValueOrDie();

  Table full = RelationalSort::SortTable(input, spec).ValueOrDie();
  uint64_t expect_rows = std::min<uint64_t>(limit, input.row_count());
  ASSERT_EQ(result.row_count(), expect_rows);
  // Key sequences must match exactly (payload may permute within ties).
  EXPECT_EQ(KeyPrefix(result, 0, expect_rows),
            KeyPrefix(full, 0, expect_rows));
  EXPECT_EQ(top_n.rows_seen(), input.row_count());
}

INSTANTIATE_TEST_SUITE_P(Limits, TopNTest,
                         ::testing::Values(1, 2, 10, 100, 2048, 50000),
                         ::testing::PrintToStringParamName());

TEST(TopNTest, DescendingWithNullsFirst) {
  Table input = RandomInts(5000, 0.2, 11);
  SortSpec spec({SortColumn(0, TypeId::kInt32, OrderType::kDescending,
                            NullOrder::kNullsFirst)});
  TopN top_n(spec, input.types(), 50);
  for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
    ASSERT_TRUE(top_n.Sink(input.chunk(c)).ok());
  }
  Table result = top_n.Finalize().ValueOrDie();
  Table full = RelationalSort::SortTable(input, spec).ValueOrDie();
  EXPECT_EQ(KeyPrefix(result, 0, 50), KeyPrefix(full, 0, 50));
  // NULLS FIRST + 20% nulls: the entire top 50 should be NULL.
  EXPECT_EQ(result.chunk(0).GetValue(0, 0).ToString(), "NULL");
}

TEST(TopNTest, StringsWithTieResolution) {
  Table input({TypeId::kVarchar});
  DataChunk chunk = input.NewChunk();
  const char* values[] = {"common-prefix-long-string-B",
                          "common-prefix-long-string-A", "zz",
                          "common-prefix-long-string-C", "aa"};
  for (uint64_t r = 0; r < 5; ++r) {
    chunk.SetValue(0, r, Value::Varchar(values[r]));
  }
  chunk.SetSize(5);
  input.Append(std::move(chunk));

  SortSpec spec({SortColumn(0, TypeId::kVarchar)});
  TopN top_n(spec, input.types(), 3);
  ASSERT_TRUE(top_n.Sink(input.chunk(0)).ok());
  Table result = top_n.Finalize().ValueOrDie();
  ASSERT_EQ(result.row_count(), 3u);
  EXPECT_EQ(result.chunk(0).GetValue(0, 0), Value::Varchar("aa"));
  EXPECT_EQ(result.chunk(0).GetValue(0, 1),
            Value::Varchar("common-prefix-long-string-A"));
  EXPECT_EQ(result.chunk(0).GetValue(0, 2),
            Value::Varchar("common-prefix-long-string-B"));
}

TEST(TopNTest, EarlyRejectionKicksIn) {
  // Sorted ascending input with limit 10: after the first 10 rows, every
  // row is rejected with a single comparison.
  Table input({TypeId::kInt32});
  uint64_t rows = 10000;
  uint64_t produced = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = input.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      chunk.SetValue(0, r, Value::Int32(static_cast<int32_t>(produced + r)));
    }
    chunk.SetSize(n);
    input.Append(std::move(chunk));
    produced += n;
  }
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  TopN top_n(spec, input.types(), 10);
  for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
    ASSERT_TRUE(top_n.Sink(input.chunk(c)).ok());
  }
  Table result = top_n.Finalize().ValueOrDie();
  EXPECT_EQ(result.row_count(), 10u);
  EXPECT_EQ(top_n.rows_rejected_early(), rows - 10);
  EXPECT_EQ(result.chunk(0).GetValue(0, 9), Value::Int32(9));
}

TEST(TopNTest, CompactionPreservesStrings) {
  // Enough rows (with heap-resident strings) to trigger several compactions.
  Table input({TypeId::kVarchar});
  Random rng(13);
  uint64_t rows = 50000;
  uint64_t produced = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = input.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      chunk.SetValue(0, r,
                     Value::Varchar("payload-string-that-is-not-inlined-" +
                                    std::to_string(rng.Uniform(100000))));
    }
    chunk.SetSize(n);
    input.Append(std::move(chunk));
    produced += n;
  }
  SortSpec spec({SortColumn(0, TypeId::kVarchar)});
  TopN top_n(spec, input.types(), 25);
  for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
    ASSERT_TRUE(top_n.Sink(input.chunk(c)).ok());
  }
  Table result = top_n.Finalize().ValueOrDie();
  Table full = RelationalSort::SortTable(input, spec).ValueOrDie();
  EXPECT_EQ(KeyPrefix(result, 0, 25), KeyPrefix(full, 0, 25));
}

TEST(TopNTest, FinalizeTwiceIsInvalidArgument) {
  Table input = RandomInts(100, 0.0, 3);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  TopN top_n(spec, input.types(), 5);
  ASSERT_TRUE(top_n.Sink(input.chunk(0)).ok());
  ASSERT_TRUE(top_n.Finalize().ok());
  StatusOr<Table> again = top_n.Finalize();
  ASSERT_FALSE(again.ok());
  EXPECT_TRUE(again.status().IsInvalidArgument())
      << again.status().ToString();
}

TEST(TopNTest, SinkAfterFinalizeIsInvalidArgument) {
  Table input = RandomInts(100, 0.0, 4);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  TopN top_n(spec, input.types(), 5);
  ASSERT_TRUE(top_n.Sink(input.chunk(0)).ok());
  ASSERT_TRUE(top_n.Finalize().ok());
  Status late = top_n.Sink(input.chunk(0));
  ASSERT_FALSE(late.ok());
  EXPECT_TRUE(late.IsInvalidArgument()) << late.ToString();
}

TEST(TopNTest, CancellationSurfacesAndSticks) {
  Table input = RandomInts(5000, 0.0, 5);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  CancellationSource source;
  SortEngineConfig config;
  config.cancellation = source.token();
  TopN top_n(spec, input.types(), 10, config);
  ASSERT_TRUE(top_n.Sink(input.chunk(0)).ok());
  source.RequestCancel();
  Status st = top_n.Sink(input.chunk(1));
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCancellation()) << st.ToString();
  EXPECT_GT(top_n.cancel_checks(), 0u);
  // Sticky: Finalize reports the same terminal cause.
  StatusOr<Table> result = top_n.Finalize();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancellation());
}

TEST(TopNTest, TrackedMemoryBalancesToZero) {
  MemoryTracker parent;
  Table input = RandomInts(20000, 0.0, 6);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  {
    SortEngineConfig config;
    config.parent_tracker = &parent;
    TopN top_n(spec, input.types(), 100, config);
    for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
      ASSERT_TRUE(top_n.Sink(input.chunk(c)).ok());
    }
    // Candidate storage (keys + heap + payload) is visible to the parent.
    EXPECT_GT(parent.reserved(), 0u);
    EXPECT_EQ(parent.reserved(), top_n.memory_tracker().reserved());
    Table result = top_n.Finalize().ValueOrDie();
    EXPECT_EQ(result.row_count(), 100u);
  }
  // Every reservation is released on destruction: ledger balances to zero.
  EXPECT_EQ(parent.reserved(), 0u);
  EXPECT_GT(parent.peak(), 0u);
}

TEST(TopNTest, HostileLimitReturnsOutOfMemory) {
  // A limit far below the O(N) candidate working set: compaction cannot
  // save it, and Top-N has nothing to spill — a named hard failure.
  MemoryTracker parent;
  Table input = RandomInts(20000, 0.0, 8);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  SortEngineConfig config;
  config.parent_tracker = &parent;
  config.memory_limit_bytes = 512;
  {
    TopN top_n(spec, input.types(), 10000, config);
    Status st;
    for (uint64_t c = 0; st.ok() && c < input.ChunkCount(); ++c) {
      st = top_n.Sink(input.chunk(c));
    }
    ASSERT_FALSE(st.ok());
    EXPECT_TRUE(st.IsOutOfMemory()) << st.ToString();
    EXPECT_NE(st.ToString().find("memory_limit_bytes"), std::string::npos)
        << st.ToString();
  }
  EXPECT_EQ(parent.reserved(), 0u);
}

TEST(TopNTest, AllocFailpointSurfacesAsOutOfMemoryAndSticks) {
  failpoint::DisarmAll();
  failpoint::Arm("top_n_alloc", /*skip=*/2);
  Table input = RandomInts(20000, 0.0, 9);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  MemoryTracker parent;
  SortEngineConfig config;
  config.parent_tracker = &parent;
  {
    TopN top_n(spec, input.types(), 50, config);
    Status st;
    for (uint64_t c = 0; st.ok() && c < input.ChunkCount(); ++c) {
      st = top_n.Sink(input.chunk(c));
    }
    ASSERT_FALSE(st.ok());
    EXPECT_TRUE(st.IsOutOfMemory()) << st.ToString();
    // Sticky across both remaining Sinks and Finalize.
    EXPECT_TRUE(top_n.Sink(input.chunk(0)).IsOutOfMemory());
    EXPECT_TRUE(top_n.Finalize().status().IsOutOfMemory());
  }
  EXPECT_EQ(parent.reserved(), 0u);
  failpoint::DisarmAll();
}

}  // namespace
}  // namespace rowsort
