// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include <gtest/gtest.h>

#include "common/random.h"
#include "engine/window.h"

namespace rowsort {
namespace {

Table MakeSales() {
  // (region VARCHAR, amount INT32)
  Table table({TypeId::kVarchar, TypeId::kInt32}, {"region", "amount"});
  DataChunk chunk = table.NewChunk();
  struct Row {
    const char* region;
    int32_t amount;
  };
  const Row rows[] = {
      {"east", 30}, {"west", 10}, {"east", 10}, {"west", 20},
      {"east", 20}, {"east", 20}, {"west", 10}, {"east", 40},
  };
  uint64_t n = 0;
  for (const auto& r : rows) {
    chunk.SetValue(0, n, Value::Varchar(r.region));
    chunk.SetValue(1, n, Value::Int32(r.amount));
    ++n;
  }
  chunk.SetSize(n);
  table.Append(std::move(chunk));
  return table;
}

TEST(WindowTest, RowNumberRankDenseRank) {
  // ROW_NUMBER/RANK/DENSE_RANK OVER (PARTITION BY region ORDER BY amount).
  Table input = MakeSales();
  WindowSpec spec;
  spec.partition_by = {0};
  spec.order_by = {SortColumn(1, TypeId::kInt32)};
  Table out = ComputeWindow(input, spec,
                            {WindowFunction::kRowNumber, WindowFunction::kRank,
                             WindowFunction::kDenseRank}).ValueOrDie();

  ASSERT_EQ(out.row_count(), 8u);
  ASSERT_EQ(out.types().size(), 5u);
  // east partition sorted by amount: 10, 20, 20, 30, 40
  struct Expect {
    const char* region;
    int32_t amount;
    int64_t row_number, rank, dense;
  };
  const Expect expected[] = {
      {"east", 10, 1, 1, 1}, {"east", 20, 2, 2, 2}, {"east", 20, 3, 2, 2},
      {"east", 30, 4, 4, 3}, {"east", 40, 5, 5, 4}, {"west", 10, 1, 1, 1},
      {"west", 10, 2, 1, 1}, {"west", 20, 3, 3, 2},
  };
  const DataChunk& chunk = out.chunk(0);
  for (uint64_t r = 0; r < 8; ++r) {
    EXPECT_EQ(chunk.GetValue(0, r), Value::Varchar(expected[r].region)) << r;
    EXPECT_EQ(chunk.GetValue(1, r), Value::Int32(expected[r].amount)) << r;
    EXPECT_EQ(chunk.GetValue(2, r), Value::Int64(expected[r].row_number)) << r;
    EXPECT_EQ(chunk.GetValue(3, r), Value::Int64(expected[r].rank)) << r;
    EXPECT_EQ(chunk.GetValue(4, r), Value::Int64(expected[r].dense)) << r;
  }
  EXPECT_EQ(out.names().back(), "dense_rank");
}

TEST(WindowTest, NoPartitionGlobalRanking) {
  Table input = MakeSales();
  WindowSpec spec;
  spec.order_by = {SortColumn(1, TypeId::kInt32, OrderType::kDescending,
                              NullOrder::kNullsLast)};
  Table out = ComputeWindow(input, spec, {WindowFunction::kRowNumber}).ValueOrDie();
  ASSERT_EQ(out.row_count(), 8u);
  // Global DESC by amount: first row is the max (40), row_number 1..8.
  EXPECT_EQ(out.chunk(0).GetValue(1, 0), Value::Int32(40));
  for (uint64_t r = 0; r < 8; ++r) {
    EXPECT_EQ(out.chunk(0).GetValue(2, r),
              Value::Int64(static_cast<int64_t>(r) + 1));
  }
}

TEST(WindowTest, NullPartitionsGroupTogether) {
  Table input({TypeId::kInt32, TypeId::kInt32});
  DataChunk chunk = input.NewChunk();
  // partition keys: NULL, 1, NULL, 1
  chunk.SetValue(0, 0, Value::Null(TypeId::kInt32));
  chunk.SetValue(1, 0, Value::Int32(5));
  chunk.SetValue(0, 1, Value::Int32(1));
  chunk.SetValue(1, 1, Value::Int32(6));
  chunk.SetValue(0, 2, Value::Null(TypeId::kInt32));
  chunk.SetValue(1, 2, Value::Int32(7));
  chunk.SetValue(0, 3, Value::Int32(1));
  chunk.SetValue(1, 3, Value::Int32(8));
  chunk.SetSize(4);
  input.Append(std::move(chunk));

  WindowSpec spec;
  spec.partition_by = {0};
  spec.order_by = {SortColumn(1, TypeId::kInt32)};
  Table out = ComputeWindow(input, spec, {WindowFunction::kRowNumber}).ValueOrDie();
  // NULL partition first (NULLS FIRST), with row numbers 1..2, then 1..2.
  EXPECT_TRUE(out.chunk(0).GetValue(0, 0).is_null());
  EXPECT_EQ(out.chunk(0).GetValue(2, 0), Value::Int64(1));
  EXPECT_EQ(out.chunk(0).GetValue(2, 1), Value::Int64(2));
  EXPECT_EQ(out.chunk(0).GetValue(2, 2), Value::Int64(1));
  EXPECT_EQ(out.chunk(0).GetValue(2, 3), Value::Int64(2));
}

TEST(WindowTest, StringPartitionsWithSharedPrefixes) {
  // Partition keys share a 12+ byte prefix: boundary detection must resolve
  // ties from the full strings, not just the normalized-key prefix.
  Table input({TypeId::kVarchar, TypeId::kInt32});
  DataChunk chunk = input.NewChunk();
  const char* parts[] = {"shared-prefix-part-A", "shared-prefix-part-B",
                         "shared-prefix-part-A", "shared-prefix-part-B"};
  for (uint64_t r = 0; r < 4; ++r) {
    chunk.SetValue(0, r, Value::Varchar(parts[r]));
    chunk.SetValue(1, r, Value::Int32(static_cast<int32_t>(r)));
  }
  chunk.SetSize(4);
  input.Append(std::move(chunk));

  WindowSpec spec;
  spec.partition_by = {0};
  spec.order_by = {SortColumn(1, TypeId::kInt32)};
  Table out = ComputeWindow(input, spec, {WindowFunction::kRowNumber}).ValueOrDie();
  // Two partitions of two rows each: row numbers 1,2,1,2.
  EXPECT_EQ(out.chunk(0).GetValue(2, 0), Value::Int64(1));
  EXPECT_EQ(out.chunk(0).GetValue(2, 1), Value::Int64(2));
  EXPECT_EQ(out.chunk(0).GetValue(2, 2), Value::Int64(1));
  EXPECT_EQ(out.chunk(0).GetValue(2, 3), Value::Int64(2));
}

TEST(WindowTest, LargeInputRanksAreConsistent) {
  Random rng(31);
  Table input({TypeId::kInt32, TypeId::kInt32});
  uint64_t rows = 20000;
  uint64_t produced = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = input.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      chunk.SetValue(0, r, Value::Int32(static_cast<int32_t>(rng.Uniform(7))));
      chunk.SetValue(1, r,
                     Value::Int32(static_cast<int32_t>(rng.Uniform(100))));
    }
    chunk.SetSize(n);
    input.Append(std::move(chunk));
    produced += n;
  }
  WindowSpec spec;
  spec.partition_by = {0};
  spec.order_by = {SortColumn(1, TypeId::kInt32)};
  Table out = ComputeWindow(
      input, spec, {WindowFunction::kRowNumber, WindowFunction::kRank,
                    WindowFunction::kDenseRank}).ValueOrDie();

  // Invariants per partition: row_number strictly increments; rank <=
  // row_number; dense_rank <= rank; rank changes exactly when amount does.
  Value prev_part, prev_amount;
  int64_t prev_rn = 0, prev_rank = 0, prev_dense = 0;
  bool first = true;
  for (uint64_t ci = 0; ci < out.ChunkCount(); ++ci) {
    const DataChunk& chunk = out.chunk(ci);
    for (uint64_t r = 0; r < chunk.size(); ++r) {
      Value part = chunk.GetValue(0, r);
      Value amount = chunk.GetValue(1, r);
      int64_t rn = chunk.GetValue(2, r).int64_value();
      int64_t rank = chunk.GetValue(3, r).int64_value();
      int64_t dense = chunk.GetValue(4, r).int64_value();
      ASSERT_LE(rank, rn);
      ASSERT_LE(dense, rank);
      if (!first && part == prev_part) {
        ASSERT_EQ(rn, prev_rn + 1);
        if (amount == prev_amount) {
          ASSERT_EQ(rank, prev_rank);
          ASSERT_EQ(dense, prev_dense);
        } else {
          ASSERT_EQ(rank, rn);
          ASSERT_EQ(dense, prev_dense + 1);
        }
      } else {
        ASSERT_EQ(rn, 1);
        ASSERT_EQ(rank, 1);
        ASSERT_EQ(dense, 1);
      }
      prev_part = part;
      prev_amount = amount;
      prev_rn = rn;
      prev_rank = rank;
      prev_dense = dense;
      first = false;
    }
  }
}

}  // namespace
}  // namespace rowsort
