// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Service telemetry (docs/observability.md, "Service telemetry"): the
// metrics registry's Prometheus/JSON exposition (golden escaping and
// cumulative-bucket checks), the lock-free flight recorder (wraparound,
// concurrent writers, time filtering), the contention-free StatsSnapshot
// ledger under a concurrent scraper, flight-recorder reconstruction of
// every shed/victim-spill decision, and stitched cross-query traces.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"
#include "common/random.h"
#include "common/trace.h"
#include "engine/sort_engine.h"
#include "service/flight_recorder.h"
#include "service/sort_service.h"
#include "workload/tables.h"

namespace rowsort {
namespace {

Table MakeRandomTable(uint64_t rows, uint64_t seed) {
  Random rng(seed);
  std::vector<LogicalType> types = {LogicalType(TypeId::kInt32),
                                    LogicalType(TypeId::kInt64)};
  Table table(types);
  uint64_t produced = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = table.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      chunk.SetValue(0, r,
                     Value::Int32(static_cast<int32_t>(rng.Uniform(100000))));
      chunk.SetValue(1, r, Value::Int64(static_cast<int64_t>(rng.Next64())));
    }
    chunk.SetSize(n);
    table.Append(std::move(chunk));
    produced += n;
  }
  return table;
}

SortSpec IntSpec() {
  SortColumn key;
  key.column_index = 0;
  key.type = LogicalType(TypeId::kInt32);
  SortColumn tiebreak;
  tiebreak.column_index = 1;
  tiebreak.type = LogicalType(TypeId::kInt64);
  return SortSpec({key, tiebreak});
}

/// All exposition lines of \p metric (samples only, not HELP/TYPE).
std::vector<std::string> SampleLines(const std::string& text,
                                     const std::string& metric) {
  std::vector<std::string> out;
  uint64_t pos = 0;
  while (pos < text.size()) {
    uint64_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(pos, end - pos);
    if (line.rfind(metric, 0) == 0 && line.rfind("# ", 0) != 0) {
      out.push_back(line);
    }
    pos = end + 1;
  }
  return out;
}

/// The numeric value at the end of one exposition line.
double LineValue(const std::string& line) {
  const uint64_t space = line.rfind(' ');
  return std::stod(line.substr(space + 1));
}

uint64_t CountOccurrences(const std::string& haystack,
                          const std::string& needle) {
  uint64_t count = 0;
  for (uint64_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// ---------------------------------------------------------------------------
// MetricsRegistry: handles, dedupe, exposition goldens, sampling rings.
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, HandlesAreStableAndDeduped) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("t_total", "help", {{"k", "v"}});
  // Same (name, labels) -> same handle; label order must not matter (the
  // registry sorts by key before building the dedupe signature).
  Counter* b = registry.GetCounter(
      "t_total", "ignored second help",
      {{"k", "v"}});
  EXPECT_EQ(a, b);
  Counter* two_labels = registry.GetCounter(
      "t_total", "help", {{"z", "1"}, {"a", "2"}});
  Counter* two_labels_swapped = registry.GetCounter(
      "t_total", "help", {{"a", "2"}, {"z", "1"}});
  EXPECT_EQ(two_labels, two_labels_swapped);
  EXPECT_NE(a, two_labels);

  a->Increment();
  a->Increment(4);
  EXPECT_EQ(a->value(), 5u);

  Gauge* g = registry.GetGauge("depth", "help");
  g->Set(7);
  g->Add(-9);
  EXPECT_EQ(g->value(), -2);

  HistogramMetric* h = registry.GetHistogram("lat_seconds", "help");
  h->RecordNs(1000);
  h->RecordNs(2000);
  EXPECT_EQ(h->count(), 2u);
}

TEST(MetricsRegistryTest, PrometheusGoldenWithEscapedLabels) {
  MetricsRegistry registry;
  registry
      .GetCounter("rowsort_t_total", "Counts \\ things\nover lines",
                  {{"tenant", "a\"b\\c\nd"}})
      ->Increment(3);
  registry.GetGauge("rowsort_depth", "A depth")->Set(-2);
  // Golden: family order = registration order, HELP escapes backslash and
  // newline, label values additionally escape double quotes.
  EXPECT_EQ(registry.ExportPrometheusText(),
            "# HELP rowsort_t_total Counts \\\\ things\\nover lines\n"
            "# TYPE rowsort_t_total counter\n"
            "rowsort_t_total{tenant=\"a\\\"b\\\\c\\nd\"} 3\n"
            "# HELP rowsort_depth A depth\n"
            "# TYPE rowsort_depth gauge\n"
            "rowsort_depth -2\n");
}

TEST(MetricsRegistryTest, PrometheusHistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  HistogramMetric* h =
      registry.GetHistogram("rowsort_lat_seconds", "Latency", {{"t", "x"}});
  // Spread across several log2 buckets, plus repeats in one bucket.
  for (uint64_t ns : {100, 100, 3000, 3000000, 50000000, 50000001}) {
    h->RecordNs(ns);
  }
  const std::string text = registry.ExportPrometheusText();

  const std::vector<std::string> buckets =
      SampleLines(text, "rowsort_lat_seconds_bucket");
  ASSERT_EQ(buckets.size(), kDurationHistogramBuckets + 1);  // + le="+Inf"
  double previous = 0;
  for (const std::string& line : buckets) {
    const double value = LineValue(line);
    EXPECT_GE(value, previous) << line;  // cumulative: never decreases
    previous = value;
  }
  // +Inf bucket == _count == the number of observations.
  EXPECT_NE(buckets.back().find("le=\"+Inf\""), std::string::npos);
  EXPECT_EQ(LineValue(buckets.back()), 6);
  const std::vector<std::string> count =
      SampleLines(text, "rowsort_lat_seconds_count");
  ASSERT_EQ(count.size(), 1u);
  EXPECT_EQ(LineValue(count[0]), 6);
  // _sum is in seconds.
  const std::vector<std::string> sum =
      SampleLines(text, "rowsort_lat_seconds_sum");
  ASSERT_EQ(sum.size(), 1u);
  EXPECT_NEAR(LineValue(sum[0]), (100 + 100 + 3000 + 3000000 + 50000000 +
                                  50000001) * 1e-9, 1e-9);
  // Every bucket line carries the series labels plus its le.
  EXPECT_NE(buckets[0].find("{t=\"x\",le=\""), std::string::npos);
}

TEST(MetricsRegistryTest, CallbackGaugeEvaluatesAtExport) {
  MetricsRegistry registry;
  std::atomic<int64_t> live{11};
  registry.RegisterCallbackGauge("rowsort_live", "Live value", {},
                                 [&live] { return live.load(); });
  EXPECT_NE(registry.ExportPrometheusText().find("rowsort_live 11"),
            std::string::npos);
  live.store(42);
  EXPECT_NE(registry.ExportPrometheusText().find("rowsort_live 42"),
            std::string::npos);
}

TEST(MetricsRegistryTest, SampleRingsRetainBoundedHistory) {
  MetricsRegistry registry(/*ring_capacity=*/4);
  Counter* c = registry.GetCounter("rowsort_c_total", "help");
  for (uint64_t i = 0; i < 10; ++i) {
    c->Increment();
    registry.SampleNow();
  }
  EXPECT_EQ(registry.samples_taken(), 10u);
  const std::string json = registry.ExportJson();
  // Ring capacity 4: only the last four samples (values 7..10) survive.
  EXPECT_NE(json.find("\"value\":10"), std::string::npos);
  EXPECT_NE(json.find(",7],"), std::string::npos);
  EXPECT_EQ(json.find(",6],"), std::string::npos);
}

TEST(MetricsRegistryTest, CollectorSamplesInBackground) {
  MetricsRegistry registry;
  registry.GetCounter("rowsort_c_total", "help")->Increment();
  EXPECT_FALSE(registry.collector_running());
  registry.StartCollector(1);
  EXPECT_TRUE(registry.collector_running());
  for (int i = 0; i < 20000 && registry.samples_taken() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(registry.samples_taken(), 3u);
  registry.StopCollector();
  EXPECT_FALSE(registry.collector_running());
  const uint64_t frozen = registry.samples_taken();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(registry.samples_taken(), frozen);
}

// ---------------------------------------------------------------------------
// FlightRecorder: ring semantics, wraparound, concurrent writers.
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, RecordsStructuredEvents) {
  FlightRecorder recorder(16);
  const char* tenant = recorder.InternTenant("acme");
  recorder.Record(FlightEventKind::kShed, 7, tenant, "sort", "normal",
                  "queue_full", 123);
  const std::vector<FlightEventView> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kShed);
  EXPECT_EQ(events[0].query_id, 7u);
  EXPECT_STREQ(events[0].tenant, "acme");
  EXPECT_STREQ(events[0].cause, "queue_full");
  EXPECT_EQ(events[0].bytes, 123u);
  EXPECT_EQ(recorder.recorded(), 1u);
  EXPECT_EQ(recorder.dropped(), 0u);

  const std::string json = recorder.DumpJson();
  EXPECT_NE(json.find("\"kind\":\"shed\""), std::string::npos);
  EXPECT_NE(json.find("\"tenant\":\"acme\""), std::string::npos);
  EXPECT_NE(json.find("\"cause\":\"queue_full\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":123"), std::string::npos);
}

TEST(FlightRecorderTest, WraparoundKeepsNewestEvents) {
  FlightRecorder recorder(8);
  EXPECT_EQ(recorder.capacity(), 8u);
  for (uint64_t i = 0; i < 20; ++i) {
    recorder.Record(FlightEventKind::kEnqueue, /*query_id=*/i, "", "sort",
                    "normal", "", 0);
  }
  EXPECT_EQ(recorder.recorded(), 20u);
  EXPECT_EQ(recorder.dropped(), 12u);
  const std::vector<FlightEventView> events = recorder.Snapshot();
  // Single-threaded: exactly the newest `capacity` events, oldest first.
  ASSERT_EQ(events.size(), 8u);
  for (uint64_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].query_id, 12 + i);
  }
}

TEST(FlightRecorderTest, LastNsFilterKeepsRecentOnly) {
  FlightRecorder recorder(16);
  recorder.Record(FlightEventKind::kEnqueue, 1, "", "sort", "normal", "", 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  recorder.Record(FlightEventKind::kAdmit, 2, "", "sort", "normal", "", 0);
  const std::vector<FlightEventView> recent =
      recorder.Snapshot(/*last_ns=*/50 * 1000 * 1000);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].query_id, 2u);
  EXPECT_EQ(recorder.Snapshot().size(), 2u);  // unfiltered keeps both
}

TEST(FlightRecorderTest, ConcurrentWritersNeverTearSlots) {
  FlightRecorder recorder(1 << 10);
  const char* tenants[2] = {recorder.InternTenant("a"),
                            recorder.InternTenant("b")};
  constexpr uint64_t kWriters = 4;
  constexpr uint64_t kPerWriter = 20000;
  std::atomic<bool> stop{false};
  // A reader hammers Snapshot() while writers race: every returned view
  // must be internally consistent (the seq-validated copy skips torn
  // slots rather than returning garbage pointers).
  std::thread reader([&] {
    while (!stop.load()) {
      for (const FlightEventView& event : recorder.Snapshot()) {
        ASSERT_TRUE(event.tenant == tenants[0] || event.tenant == tenants[1]);
        ASSERT_TRUE(event.kind == FlightEventKind::kEnqueue ||
                    event.kind == FlightEventKind::kComplete);
        ASSERT_EQ(event.bytes, event.query_id * 2);
      }
    }
  });
  std::vector<std::thread> writers;
  for (uint64_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        recorder.Record(i % 2 == 0 ? FlightEventKind::kEnqueue
                                   : FlightEventKind::kComplete,
                        i, tenants[w % 2], "sort", "normal", "", i * 2);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(recorder.recorded(), kWriters * kPerWriter);
  EXPECT_EQ(recorder.Snapshot().size(), recorder.capacity());
}

// ---------------------------------------------------------------------------
// SortService integration: exports, ledger under a concurrent scraper,
// flight-recorder reconstruction, stitched traces, telemetry-off.
// ---------------------------------------------------------------------------

TEST(TelemetryServiceTest, ExportsCoverServiceCounters) {
  SortServiceConfig config;
  config.threads = 2;
  config.telemetry_sample_interval_ms = 0;  // no collector in this test
  SortService service(config);

  Table input = MakeRandomTable(5000, 3);
  SortRequest request;
  request.tenant = "acme";
  ASSERT_TRUE(service.Sort(input, IntSpec(), request).ok());

  const std::string text = service.ExportMetricsText();
  // Labels render sorted by key: op_class, priority, tenant.
  EXPECT_NE(
      text.find("rowsort_service_requests_total{op_class=\"sort\","
                "priority=\"normal\",tenant=\"acme\"} 1"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find("rowsort_service_completed_total{op_class=\"sort\","
                "priority=\"normal\",tenant=\"acme\"} 1"),
      std::string::npos);
  // The end-to-end histogram recorded exactly this query.
  EXPECT_NE(
      text.find("rowsort_service_end_to_end_seconds_count{op_class=\"sort\","
                "priority=\"normal\",tenant=\"acme\"} 1"),
      std::string::npos);
  // Callback gauges are present and quiescent after the query finished.
  EXPECT_NE(text.find("rowsort_service_queue_depth 0"), std::string::npos);
  EXPECT_NE(text.find("rowsort_service_running 0"), std::string::npos);

  // The JSON telemetry document embeds service counters, registry metrics,
  // and the flight-recorder summary.
  const std::string json = service.ExportTelemetryJson();
  EXPECT_NE(json.find("\"requests\":1"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
  EXPECT_NE(json.find("\"flight_recorder\":"), std::string::npos);

  // The flight recorder saw the whole request lifecycle.
  const std::vector<FlightEventView> events =
      service.flight_recorder()->Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kEnqueue);
  EXPECT_EQ(events[1].kind, FlightEventKind::kAdmit);
  EXPECT_EQ(events[2].kind, FlightEventKind::kComplete);
  EXPECT_STREQ(events[0].tenant, "acme");
  EXPECT_EQ(events[0].query_id, events[2].query_id);
  EXPECT_NE(events[0].query_id, 0u);
}

TEST(TelemetryServiceTest, TelemetryOffCostsNothingAndCountersSurvive) {
  SortServiceConfig config;
  config.threads = 2;
  config.telemetry = false;
  SortService service(config);
  EXPECT_EQ(service.metrics_registry(), nullptr);
  EXPECT_EQ(service.flight_recorder(), nullptr);

  Table input = MakeRandomTable(5000, 4);
  ASSERT_TRUE(service.Sort(input, IntSpec()).ok());

  EXPECT_EQ(service.ExportMetricsText(), "");
  EXPECT_EQ(service.DumpFlightRecorder(), "{}");
  // The atomic service counters still work (they are not telemetry).
  SortServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.completed, 1u);
  // The JSON document degrades to counters only.
  const std::string json = service.ExportTelemetryJson();
  EXPECT_NE(json.find("\"requests\":1"), std::string::npos);
  EXPECT_EQ(json.find("\"metrics\":"), std::string::npos);
  EXPECT_EQ(json.find("\"flight_recorder\":"), std::string::npos);
}

// The acceptance gate for the contention-free snapshot: a 10 Hz (in fact
// much faster) scraper runs during an overload storm. Every snapshot must
// show monotone counters and balanced ledgers; the Prometheus export must
// stay serviceable throughout. Afterwards, the flight recorder must
// reconstruct every admission decision, one event per counted outcome.
TEST(TelemetryServiceTest, ScraperUnderOverloadSeesConsistentLedgers) {
  const uint64_t kQueries = 48;
  const uint64_t kClients = 8;
  Table input = MakeRandomTable(30000, 5);
  SortSpec spec = IntSpec();

  SortServiceConfig config;
  config.threads = 4;
  config.max_running = 2;
  config.max_queued = 3;
  config.queue_wait_limit_ms = 50;
  config.express_slots = 1;
  config.telemetry_sample_interval_ms = 5;  // a fast collector, too
  config.flight_recorder_capacity = 1 << 12;
  SortService service(config);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> scrapes{0};
  std::atomic<uint64_t> violations{0};
  std::thread scraper([&] {
    SortServiceStats last;
    // Keep scraping past storm end until a minimum sample count — a fast
    // machine can drain the storm in a handful of scrape intervals, and the
    // invariants hold on a quiesced service too.
    while (!done.load() || scrapes.load() <= 16) {
      SortServiceStats now = service.StatsSnapshot();
      const uint64_t shed = now.shed_queue_full + now.shed_wait_budget +
                            now.shed_queued_cancel;
      const uint64_t outcomes = now.completed + now.failed + now.cancelled;
      // Ledger invariants, valid in ANY concurrent snapshot.
      if (now.requests < now.admitted + shed) violations.fetch_add(1);
      if (now.admitted < outcomes) violations.fetch_add(1);
      // Monotonicity against the previous scrape.
      if (now.requests < last.requests || now.admitted < last.admitted ||
          now.completed < last.completed) {
        violations.fetch_add(1);
      }
      last = now;
      // The text exposition stays serviceable mid-storm.
      if (scrapes.load() % 16 == 0) {
        if (service.ExportMetricsText().empty()) violations.fetch_add(1);
        if (service.ExportTelemetryJson().empty()) violations.fetch_add(1);
      }
      scrapes.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::atomic<uint64_t> next{0};
  std::vector<std::thread> clients;
  for (uint64_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&] {
      while (true) {
        uint64_t q = next.fetch_add(1);
        if (q >= kQueries) break;
        SortRequest request;
        request.tenant = "tenant-" + std::to_string(q % 3);
        request.priority = static_cast<TaskPriority>(q % 3);
        if (q % 7 == 6) request.deadline = Deadline::AfterMillis(1);
        (void)service.Sort(input, spec, request);
      }
    });
  }
  for (auto& c : clients) c.join();
  done.store(true);
  scraper.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(scrapes.load(), 10u);

  // Final ledger balances exactly once the storm has drained.
  SortServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.requests, kQueries);
  const uint64_t shed = stats.shed_queue_full + stats.shed_wait_budget +
                        stats.shed_queued_cancel;
  EXPECT_EQ(stats.requests, stats.admitted + shed);
  EXPECT_EQ(stats.admitted,
            stats.completed + stats.failed + stats.cancelled);

  // Flight-recorder reconstruction: one enqueue per request, one admit per
  // admission, one shed event per shed, one terminal event per outcome —
  // the ring was sized to drop nothing.
  ASSERT_EQ(service.flight_recorder()->dropped(), 0u);
  uint64_t enqueues = 0, admits = 0, sheds = 0, completes = 0, fails = 0,
           cancels = 0, deadlines = 0;
  std::set<uint64_t> query_ids;
  for (const FlightEventView& event : service.flight_recorder()->Snapshot()) {
    query_ids.insert(event.query_id);
    switch (event.kind) {
      case FlightEventKind::kEnqueue: ++enqueues; break;
      case FlightEventKind::kAdmit: ++admits; break;
      case FlightEventKind::kShed: ++sheds; break;
      case FlightEventKind::kComplete: ++completes; break;
      case FlightEventKind::kFail: ++fails; break;
      case FlightEventKind::kCancel: ++cancels; break;
      case FlightEventKind::kDeadline: ++deadlines; break;
      case FlightEventKind::kVictimSpill: break;
    }
  }
  EXPECT_EQ(enqueues, stats.requests);
  EXPECT_EQ(admits, stats.admitted);
  EXPECT_EQ(sheds, shed);
  EXPECT_EQ(completes, stats.completed);
  EXPECT_EQ(fails, stats.failed);
  EXPECT_EQ(cancels + deadlines, stats.cancelled);
  // Every request had a process-unique query id.
  EXPECT_EQ(query_ids.size(), kQueries);
}

// Victim spills appear in the flight recorder with the victim's identity
// and freed bytes, cross-checked against the aggregate counters.
TEST(TelemetryServiceTest, VictimSpillEventsMatchStats) {
  std::filesystem::path spill_dir =
      std::filesystem::temp_directory_path() / "rowsort_telemetry_victim";
  std::filesystem::create_directories(spill_dir);

  Table input = MakeRandomTable(60000, 6);
  SortSpec spec = IntSpec();
  SortServiceConfig config;
  config.threads = 4;
  config.max_running = 4;
  config.express_slots = 0;
  // A budget well under two concurrent working sets forces the governor to
  // pick victims.
  config.memory_limit_bytes = input.row_count() * 24 / 2;
  SortService service(config);

  std::vector<std::thread> clients;
  for (uint64_t t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      SortRequest request;
      request.tenant = "tenant-" + std::to_string(t);
      request.engine.run_size_rows = 4096;
      request.engine.spill_directory = spill_dir.string();
      (void)service.Sort(input, spec, request);
    });
  }
  for (auto& c : clients) c.join();
  std::filesystem::remove_all(spill_dir);

  SortServiceStats stats = service.StatsSnapshot();
  uint64_t victim_events = 0;
  uint64_t victim_bytes = 0;
  for (const FlightEventView& event : service.flight_recorder()->Snapshot()) {
    if (event.kind != FlightEventKind::kVictimSpill) continue;
    ++victim_events;
    victim_bytes += event.bytes;
    EXPECT_GT(event.bytes, 0u);
    EXPECT_STREQ(event.cause, "memory_pressure");
    // The victim was attributed to a real service request.
    EXPECT_NE(event.query_id, 0u);
    EXPECT_NE(std::string(event.tenant), "");
  }
  EXPECT_EQ(victim_events, stats.victim_spills);
  EXPECT_EQ(victim_bytes, stats.victim_bytes_freed);
  // The victim counters also surfaced per-tenant in the registry.
  if (stats.victim_spills > 0) {
    EXPECT_NE(service.ExportMetricsText().find(
                  "rowsort_service_victim_spills_total{tenant="),
              std::string::npos);
  }
}

// Stitched cross-query tracing: one tracer attached to the service, several
// concurrent queries — the merged Chrome export must show each query as its
// own process ("query-<id>") with the service phase spans, instead of
// interleaving everything on shared thread tracks.
TEST(TelemetryServiceTest, StitchedTraceSeparatesConcurrentQueries) {
  Tracer tracer;
  SortServiceConfig config;
  config.threads = 4;
  config.trace = &tracer;
  SortService service(config);

  Table input = MakeRandomTable(20000, 8);
  SortSpec spec = IntSpec();
  constexpr uint64_t kConcurrent = 3;
  std::vector<std::thread> clients;
  for (uint64_t t = 0; t < kConcurrent; ++t) {
    clients.emplace_back([&] { ASSERT_TRUE(service.Sort(input, spec).ok()); });
  }
  for (auto& c : clients) c.join();

  const std::string json = tracer.ToChromeTraceJson();
  // One process per query, named "query-<scope>".
  EXPECT_EQ(CountOccurrences(json, "\"args\":{\"name\":\"query-"),
            kConcurrent);
  // The service phases bracket each query's engine spans.
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"service.queued\""),
            kConcurrent);
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"service.run\""), kConcurrent);
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"service.finalize\""),
            kConcurrent);
  // Engine spans inherited the query scopes: no governed span may land in
  // the shared scope-0 "engine" process.
  EXPECT_EQ(CountOccurrences(json, "\"args\":{\"name\":\"engine\"}"), 0u);
}

// Process-unique query ids: back-to-back and concurrent queries never share
// a scope, so spans of different queries cannot collide on one track.
TEST(TelemetryServiceTest, QueryIdsAreProcessUnique) {
  SortServiceConfig config;
  config.threads = 2;
  SortService service(config);
  Table input = MakeRandomTable(2000, 9);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service.Sort(input, IntSpec()).ok());
  }
  std::set<uint64_t> ids;
  for (const FlightEventView& event : service.flight_recorder()->Snapshot()) {
    ids.insert(event.query_id);
  }
  EXPECT_EQ(ids.size(), 3u);
}

}  // namespace
}  // namespace rowsort
