// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Offset-value coding (engine/offset_value.h): unit tests of the code
// derivation plus randomized property tests asserting that the OVC merge
// paths (loser-tree k-way merge and OVC Merge Path slices) produce output
// byte-identical — key rows *and* payload rows — to the comparator-based
// merges, across NULLs, DESC columns, and duplicate-heavy keys (the
// tie-break-by-run-index stability case).
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cerrno>
#include <cstring>

#include "common/random.h"
#include "engine/offset_value.h"
#include "engine/sort_engine.h"
#include "parallel/thread_pool.h"
#include "workload/tables.h"

namespace rowsort {
namespace {

SortedRun MakeKeyOnlyRun(const std::vector<std::vector<uint8_t>>& keys) {
  SortedRun run;
  run.count = keys.size();
  run.key_row_width = keys.empty() ? 0 : keys[0].size();
  for (const auto& key : keys) {
    run.key_rows.insert(run.key_rows.end(), key.begin(), key.end());
  }
  return run;
}

TEST(OffsetValueCodeTest, PackingIsOrderPreserving) {
  // Earlier differences and larger bytes must both produce larger codes.
  EXPECT_LT(MakeOvc(4, 3, 0x01), MakeOvc(4, 3, 0x02));
  EXPECT_LT(MakeOvc(4, 3, 0xFF), MakeOvc(4, 2, 0x01));
  EXPECT_LT(MakeOvc(4, 0, 0x01), MakeOvc(4, 0, 0xFF));
  EXPECT_LT(kOvcEqual, MakeOvc(4, 3, 0x01));
  EXPECT_LT(MakeOvc(4, 0, 0xFF), kOvcExhausted);
  EXPECT_EQ(OvcDiffIndex(4, MakeOvc(4, 1, 0x7F)), 1u);
}

TEST(OffsetValueCodeTest, DeriveRunOvcs) {
  SortedRun run = MakeKeyOnlyRun({{0x00, 0x00},
                                  {0x00, 0x00},
                                  {0x00, 0x01},
                                  {0x01, 0x00},
                                  {0x01, 0x01}});
  auto ovcs = DeriveRunOvcs(run, 2);
  ASSERT_EQ(ovcs.size(), 5u);
  EXPECT_EQ(ovcs[0], kOvcEqual);             // all-zero head vs -inf base
  EXPECT_EQ(ovcs[1], kOvcEqual);             // duplicate of predecessor
  EXPECT_EQ(ovcs[2], MakeOvc(2, 1, 0x01));   // differs at byte 1
  EXPECT_EQ(ovcs[3], MakeOvc(2, 0, 0x01));   // differs at byte 0
  EXPECT_EQ(ovcs[4], MakeOvc(2, 1, 0x01));
}

TEST(OffsetValueCodeTest, HeadCodeAnchorsToVirtualZeroKey) {
  SortedRun run = MakeKeyOnlyRun({{0x00, 0x7F, 0x00}});
  auto ovcs = DeriveRunOvcs(run, 3);
  EXPECT_EQ(ovcs[0], MakeOvc(3, 1, 0x7F));
}

TEST(OffsetValueCodeTest, CompareKeySuffixReportsFirstDifference) {
  const uint8_t a[] = {1, 2, 3, 4};
  const uint8_t b[] = {1, 2, 9, 4};
  uint64_t diff = 0;
  EXPECT_LT(CompareKeySuffix(a, b, 0, 4, &diff), 0);
  EXPECT_EQ(diff, 2u);
  EXPECT_EQ(CompareKeySuffix(a, b, 3, 4, &diff), 0);
}

// ---------------------------------------------------------------------------
// Property tests: OVC merges are byte-identical to comparator merges.

Value RandomDupHeavyValue(TypeId type, Random& rng, double null_prob,
                          uint64_t cardinality) {
  if (rng.Bernoulli(null_prob)) return Value::Null(type);
  switch (type) {
    case TypeId::kInt32:
      return Value::Int32(static_cast<int32_t>(rng.Uniform(cardinality)) -
                          static_cast<int32_t>(cardinality / 2));
    case TypeId::kInt64:
      return Value::Int64(static_cast<int64_t>(rng.Uniform(cardinality)));
    case TypeId::kDouble:
      return Value::Double(static_cast<double>(rng.Uniform(cardinality)) / 4);
    default:
      return Value::Null(type);
  }
}

/// Few distinct values per column so that duplicate full keys (the
/// stability-critical case) and long shared prefixes are frequent.
Table MakeDupHeavyTable(const std::vector<LogicalType>& types, uint64_t rows,
                        double null_prob, uint64_t cardinality,
                        uint64_t seed) {
  Random rng(seed);
  Table table(types);
  uint64_t produced = 0, serial = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = table.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      for (uint64_t c = 0; c + 1 < types.size(); ++c) {
        chunk.SetValue(
            c, r, RandomDupHeavyValue(types[c].id(), rng, null_prob,
                                      cardinality));
      }
      // Last column: a unique serial payload (never a sort key) that makes
      // any stability difference between merge strategies visible.
      chunk.SetValue(types.size() - 1, r,
                     Value::Int64(static_cast<int64_t>(serial++)));
    }
    chunk.SetSize(n);
    table.Append(std::move(chunk));
    produced += n;
  }
  return table;
}

/// Sorts \p input twice with \p config, once with OVC and once without, and
/// asserts the merged runs are byte-identical (keys and payload rows).
/// Single-threaded sink keeps run order deterministic; \p pool still
/// exercises the parallel Merge Path partitions + boundary fix-ups.
void ExpectOvcMergeMatchesComparatorMerge(const Table& input,
                                          const SortSpec& spec,
                                          SortEngineConfig config,
                                          ThreadPool* pool) {
  config.threads = 1;
  RelationalSort with_ovc(spec, input.types(), [&] {
    SortEngineConfig c = config;
    c.use_offset_value_codes = true;
    return c;
  }());
  RelationalSort without_ovc(spec, input.types(), [&] {
    SortEngineConfig c = config;
    c.use_offset_value_codes = false;
    return c;
  }());

  for (RelationalSort* sort : {&with_ovc, &without_ovc}) {
    auto local = sort->MakeLocalState();
    for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
      ROWSORT_CHECK_OK(sort->Sink(*local, input.chunk(c)));
    }
    ROWSORT_CHECK_OK(sort->CombineLocal(*local));
    ROWSORT_CHECK_OK(sort->Finalize(pool));
  }

  const SortedRun& a = with_ovc.result();
  const SortedRun& b = without_ovc.result();
  ASSERT_EQ(a.count, b.count);
  ASSERT_EQ(a.count, input.row_count());
  ASSERT_EQ(a.key_rows.size(), b.key_rows.size());
  ASSERT_EQ(std::memcmp(a.key_rows.data(), b.key_rows.data(),
                        a.key_rows.size()),
            0)
      << "key rows differ";
  const uint64_t prw = b.payload.layout().row_width();
  for (uint64_t i = 0; i < a.count; ++i) {
    ASSERT_EQ(std::memcmp(a.PayloadRow(i), b.PayloadRow(i), prw), 0)
        << "payload row " << i << " differs (stability mismatch?)";
  }
}

struct OvcCase {
  std::string name;
  double null_prob;
  uint64_t cardinality;
  std::vector<SortColumn> sort_columns;
};

class OffsetValueMergeTest : public ::testing::TestWithParam<OvcCase> {};

TEST_P(OffsetValueMergeTest, LoserTreeMatchesHeapMerge) {
  const auto& c = GetParam();
  LogicalType i32(TypeId::kInt32), i64(TypeId::kInt64), f64(TypeId::kDouble);
  Table input = MakeDupHeavyTable({i32, i64, f64, i64}, 20000, c.null_prob,
                                  c.cardinality, 7);
  SortEngineConfig config;
  config.use_kway_merge = true;
  for (uint64_t run_size : {512u, 3000u, 1u << 20}) {
    config.run_size_rows = run_size;
    ExpectOvcMergeMatchesComparatorMerge(input, SortSpec(c.sort_columns),
                                         config, nullptr);
  }
}

TEST_P(OffsetValueMergeTest, CascadedMergeMatches) {
  const auto& c = GetParam();
  LogicalType i32(TypeId::kInt32), i64(TypeId::kInt64), f64(TypeId::kDouble);
  Table input = MakeDupHeavyTable({i32, i64, f64, i64}, 20000, c.null_prob,
                                  c.cardinality, 11);
  SortEngineConfig config;
  config.use_kway_merge = false;
  ThreadPool pool(4);
  for (uint64_t run_size : {700u, 4096u}) {
    config.run_size_rows = run_size;
    // Serial merge and parallel Merge Path (with OVC boundary fix-ups).
    ExpectOvcMergeMatchesComparatorMerge(input, SortSpec(c.sort_columns),
                                         config, nullptr);
    ExpectOvcMergeMatchesComparatorMerge(input, SortSpec(c.sort_columns),
                                         config, &pool);
  }
}

std::vector<OvcCase> OvcCases() {
  LogicalType i32(TypeId::kInt32), i64(TypeId::kInt64), f64(TypeId::kDouble);
  std::vector<OvcCase> cases;
  cases.push_back({"dup_heavy_multicol", 0.0, 8,
                   {SortColumn(0, i32), SortColumn(1, i64),
                    SortColumn(2, f64)}});
  cases.push_back({"nulls_and_desc", 0.25, 16,
                   {SortColumn(0, i32, OrderType::kDescending,
                               NullOrder::kNullsFirst),
                    SortColumn(2, f64, OrderType::kAscending,
                               NullOrder::kNullsLast),
                    SortColumn(1, i64, OrderType::kDescending,
                               NullOrder::kNullsLast)}});
  cases.push_back({"near_constant_keys", 0.1, 2,
                   {SortColumn(0, i32), SortColumn(1, i64)}});
  cases.push_back({"high_cardinality", 0.0, 1000000,
                   {SortColumn(1, i64), SortColumn(0, i32)}});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Cases, OffsetValueMergeTest,
                         ::testing::ValuesIn(OvcCases()),
                         [](const auto& info) { return info.param.name; });

TEST(OffsetValueMergeTest, SpilledRunsMatch) {
  LogicalType i32(TypeId::kInt32), i64(TypeId::kInt64), f64(TypeId::kDouble);
  Table input = MakeDupHeavyTable({i32, i64, f64, i64}, 6000, 0.1, 8, 23);
  SortSpec spec({SortColumn(0, i32), SortColumn(1, i64)});
  for (bool ovc : {false, true}) {
    std::string dir =
        ::testing::TempDir() + "/ovc_spill_" + (ovc ? "on" : "off");
    ASSERT_EQ(mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST, true);
    SortEngineConfig config;
    config.run_size_rows = 1000;
    config.spill_directory = dir;
    config.use_offset_value_codes = ovc;
    SortMetrics metrics;
    Table output = RelationalSort::SortTable(input, spec, config, &metrics).ValueOrDie();
    ASSERT_EQ(output.row_count(), input.row_count());
    // Sorted-ness spot check on the leading key column per chunk pair.
    for (uint64_t ci = 0; ci + 1 < output.ChunkCount(); ++ci) {
      Value last = output.chunk(ci).GetValue(0, output.chunk(ci).size() - 1);
      Value first = output.chunk(ci + 1).GetValue(0, 0);
      if (!last.is_null() && !first.is_null()) {
        EXPECT_LE(last.Compare(first), 0);
      }
    }
    // The external merge streams spilled runs block by block with the plain
    // comparator (the spill format stores no codes), so no OVC activity is
    // expected here — only that the spill path actually ran.
    EXPECT_GT(metrics.runs_spilled, 0u);
  }
}

TEST(OffsetValueMergeTest, MetricsShowOvcDecidingMostComparisons) {
  // Duplicate-heavy multi-column keys: with OVC on, full key comparisons
  // (fallbacks) must be a small fraction of what the comparator merge pays.
  LogicalType i32(TypeId::kInt32), i64(TypeId::kInt64), f64(TypeId::kDouble);
  Table input = MakeDupHeavyTable({i32, i64, f64, i64}, 50000, 0.05, 16, 31);
  SortSpec spec({SortColumn(0, i32), SortColumn(1, i64), SortColumn(2, f64)});
  uint64_t full_compares[2] = {0, 0};
  for (bool ovc : {false, true}) {
    SortEngineConfig config;
    config.run_size_rows = 2000;
    config.use_kway_merge = true;
    config.count_comparisons = true;
    config.use_offset_value_codes = ovc;
    SortMetrics metrics;
    RelationalSort::SortTable(input, spec, config, &metrics).ValueOrDie();
    full_compares[ovc] = metrics.merge_compares;
    if (ovc) {
      EXPECT_EQ(metrics.merge_compares, metrics.ovc_fallback_compares);
      EXPECT_GT(metrics.ovc_decided, 0u);
    } else {
      EXPECT_EQ(metrics.ovc_decided, 0u);
      EXPECT_EQ(metrics.ovc_fallback_compares, 0u);
    }
  }
  // The acceptance bar for the merge-strategy bench, in miniature.
  EXPECT_GE(full_compares[0], 2 * full_compares[1]);
}

TEST(OffsetValueMergeTest, VarcharTiesBypassOvc) {
  // Truncated VARCHAR prefixes make key bytes non-decisive; the engine must
  // fall back to the comparator merge (and report no OVC activity) while
  // still sorting correctly.
  LogicalType str(TypeId::kVarchar), i64(TypeId::kInt64);
  Random rng(5);
  Table input = Table({str, i64});
  const uint64_t n = 500;
  // Several small chunks so the 100-row run threshold yields multiple runs
  // and the merge phase actually runs.
  for (uint64_t produced = 0; produced < n;) {
    DataChunk chunk = input.NewChunk();
    uint64_t rows = std::min<uint64_t>(50, n - produced);
    for (uint64_t r = 0; r < rows; ++r) {
      chunk.SetValue(0, r,
                     Value::Varchar("shared-prefix-beyond-twelve-" +
                                    std::to_string(rng.Uniform(20))));
      chunk.SetValue(1, r, Value::Int64(static_cast<int64_t>(produced + r)));
    }
    chunk.SetSize(rows);
    input.Append(std::move(chunk));
    produced += rows;
  }

  SortSpec spec({SortColumn(0, str)});
  SortEngineConfig config;
  config.run_size_rows = 100;
  config.use_kway_merge = true;
  config.count_comparisons = true;
  SortMetrics metrics;
  Table output = RelationalSort::SortTable(input, spec, config, &metrics).ValueOrDie();
  ASSERT_EQ(output.row_count(), n);
  EXPECT_EQ(metrics.ovc_decided, 0u);
  EXPECT_EQ(metrics.ovc_fallback_compares, 0u);
  EXPECT_GT(metrics.merge_compares, 0u);
  std::string prev;
  bool have_prev = false;
  for (uint64_t ci = 0; ci < output.ChunkCount(); ++ci) {
    for (uint64_t r = 0; r < output.chunk(ci).size(); ++r) {
      std::string cur = output.chunk(ci).GetValue(0, r).ToString();
      if (have_prev) EXPECT_LE(prev, cur);
      prev = std::move(cur);
      have_prev = true;
    }
  }
}

}  // namespace
}  // namespace rowsort
