// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Oracle tests: every from-scratch sorting algorithm must agree with
// std::sort / std::stable_sort on a matrix of adversarial distributions
// (the patterns pdqsort explicitly defends against).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "sortalgo/heap_sort.h"
#include "sortalgo/insertion_sort.h"
#include "sortalgo/intro_sort.h"
#include "sortalgo/merge_sort.h"
#include "sortalgo/pdq_sort.h"
#include "sortalgo/row_sort.h"

namespace rowsort {
namespace {

enum class Pattern {
  kRandom,
  kSorted,
  kReverse,
  kAllEqual,
  kFewUniques,
  kSawtooth,
  kOrganPipe,
  kNearlySorted,
  kRandomWithRuns,
};

const char* PatternName(Pattern p) {
  switch (p) {
    case Pattern::kRandom: return "Random";
    case Pattern::kSorted: return "Sorted";
    case Pattern::kReverse: return "Reverse";
    case Pattern::kAllEqual: return "AllEqual";
    case Pattern::kFewUniques: return "FewUniques";
    case Pattern::kSawtooth: return "Sawtooth";
    case Pattern::kOrganPipe: return "OrganPipe";
    case Pattern::kNearlySorted: return "NearlySorted";
    case Pattern::kRandomWithRuns: return "RandomWithRuns";
  }
  return "?";
}

std::vector<uint32_t> Generate(Pattern pattern, uint64_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<uint32_t> data(n);
  switch (pattern) {
    case Pattern::kRandom:
      for (auto& v : data) v = rng.Next32();
      break;
    case Pattern::kSorted:
      for (uint64_t i = 0; i < n; ++i) data[i] = static_cast<uint32_t>(i);
      break;
    case Pattern::kReverse:
      for (uint64_t i = 0; i < n; ++i) data[i] = static_cast<uint32_t>(n - i);
      break;
    case Pattern::kAllEqual:
      for (auto& v : data) v = 42;
      break;
    case Pattern::kFewUniques:
      for (auto& v : data) v = static_cast<uint32_t>(rng.Uniform(4));
      break;
    case Pattern::kSawtooth:
      for (uint64_t i = 0; i < n; ++i) data[i] = static_cast<uint32_t>(i % 16);
      break;
    case Pattern::kOrganPipe:
      for (uint64_t i = 0; i < n; ++i) {
        data[i] = static_cast<uint32_t>(i < n / 2 ? i : n - i);
      }
      break;
    case Pattern::kNearlySorted:
      for (uint64_t i = 0; i < n; ++i) data[i] = static_cast<uint32_t>(i);
      if (n > 0) {
        for (uint64_t s = 0; s < n / 20 + 1; ++s) {
          uint64_t a = rng.Uniform(n), b = rng.Uniform(n);
          std::swap(data[a], data[b]);
        }
      }
      break;
    case Pattern::kRandomWithRuns:
      for (uint64_t i = 0; i < n; ++i) {
        data[i] = (i / 64) % 2 == 0 ? static_cast<uint32_t>(i) : rng.Next32();
      }
      break;
  }
  return data;
}

struct SortCase {
  Pattern pattern;
  uint64_t size;
};

class SortAlgoTest : public ::testing::TestWithParam<SortCase> {};

TEST_P(SortAlgoTest, IntroSortMatchesOracle) {
  auto data = Generate(GetParam().pattern, GetParam().size, 17);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  IntroSort(data.begin(), data.end());
  EXPECT_EQ(data, expected);
}

TEST_P(SortAlgoTest, HeapSortMatchesOracle) {
  auto data = Generate(GetParam().pattern, GetParam().size, 18);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  HeapSort(data.begin(), data.end(),
           [](uint32_t a, uint32_t b) { return a < b; });
  EXPECT_EQ(data, expected);
}

TEST_P(SortAlgoTest, PdqSortMatchesOracle) {
  auto data = Generate(GetParam().pattern, GetParam().size, 19);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  PdqSort(data.begin(), data.end());
  EXPECT_EQ(data, expected);
}

TEST_P(SortAlgoTest, PdqSortBranchlessMatchesOracle) {
  auto data = Generate(GetParam().pattern, GetParam().size, 20);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  PdqSortBranchless(data.begin(), data.end(),
                    [](uint32_t a, uint32_t b) { return a < b; });
  EXPECT_EQ(data, expected);
}

TEST_P(SortAlgoTest, StableMergeSortMatchesOracle) {
  auto data = Generate(GetParam().pattern, GetParam().size, 21);
  auto expected = data;
  std::stable_sort(expected.begin(), expected.end());
  StableMergeSort(data.begin(), data.end());
  EXPECT_EQ(data, expected);
}

TEST_P(SortAlgoTest, DescendingComparatorWorks) {
  auto data = Generate(GetParam().pattern, GetParam().size, 22);
  auto expected = data;
  auto desc = [](uint32_t a, uint32_t b) { return a > b; };
  std::sort(expected.begin(), expected.end(), desc);
  PdqSortBranchless(data.begin(), data.end(), desc);
  EXPECT_EQ(data, expected);
}

std::vector<SortCase> AllCases() {
  std::vector<SortCase> cases;
  for (Pattern p :
       {Pattern::kRandom, Pattern::kSorted, Pattern::kReverse,
        Pattern::kAllEqual, Pattern::kFewUniques, Pattern::kSawtooth,
        Pattern::kOrganPipe, Pattern::kNearlySorted,
        Pattern::kRandomWithRuns}) {
    for (uint64_t n : {0ull, 1ull, 2ull, 23ull, 24ull, 25ull, 127ull, 128ull,
                       1000ull, 65536ull}) {
      cases.push_back({p, n});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, SortAlgoTest, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<SortCase>& info) {
      return std::string(PatternName(info.param.pattern)) + "_" +
             std::to_string(info.param.size);
    });

TEST(SortAlgoStabilityTest, MergeSortIsStable) {
  // Sort (key, sequence) pairs by key only; sequence must stay ordered
  // within equal keys.
  struct Item {
    uint32_t key;
    uint32_t seq;
  };
  Random rng(33);
  std::vector<Item> data(10000);
  for (uint32_t i = 0; i < data.size(); ++i) {
    data[i] = {static_cast<uint32_t>(rng.Uniform(50)), i};
  }
  StableMergeSort(data.begin(), data.end(),
                  [](const Item& a, const Item& b) { return a.key < b.key; });
  for (size_t i = 1; i < data.size(); ++i) {
    ASSERT_LE(data[i - 1].key, data[i].key);
    if (data[i - 1].key == data[i].key) {
      ASSERT_LT(data[i - 1].seq, data[i].seq) << "stability violated at " << i;
    }
  }
}

TEST(SortAlgoStabilityTest, InsertionSortIsStable) {
  struct Item {
    uint32_t key;
    uint32_t seq;
  };
  Random rng(34);
  std::vector<Item> data(500);
  for (uint32_t i = 0; i < data.size(); ++i) {
    data[i] = {static_cast<uint32_t>(rng.Uniform(10)), i};
  }
  InsertionSort(data.begin(), data.end(),
                [](const Item& a, const Item& b) { return a.key < b.key; });
  for (size_t i = 1; i < data.size(); ++i) {
    ASSERT_LE(data[i - 1].key, data[i].key);
    if (data[i - 1].key == data[i].key) {
      ASSERT_LT(data[i - 1].seq, data[i].seq);
    }
  }
}

TEST(SortAlgoTest64Bit, PdqSortSortsUint64) {
  Random rng(55);
  std::vector<uint64_t> data(100000);
  for (auto& v : data) v = rng.Next64();
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  PdqSortBranchless(data.begin(), data.end(),
                    [](uint64_t a, uint64_t b) { return a < b; });
  EXPECT_EQ(data, expected);
}

// --- PdqSortRows: fixed-width binary rows, dynamic memcmp comparator ---

class RowSortTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RowSortTest, SortsRowsByKeyPrefix) {
  const uint64_t row_width = GetParam();
  const uint64_t key_width = std::min<uint64_t>(row_width, 12);
  const uint64_t n = 20000;
  Random rng(77);
  std::vector<uint8_t> rows(n * row_width);
  for (auto& b : rows) b = static_cast<uint8_t>(rng.Uniform(8));

  // Oracle: sort copies of the rows as strings.
  std::vector<std::string> oracle(n);
  for (uint64_t i = 0; i < n; ++i) {
    oracle[i].assign(reinterpret_cast<char*>(rows.data() + i * row_width),
                     row_width);
  }
  std::sort(oracle.begin(), oracle.end(),
            [&](const std::string& a, const std::string& b) {
              return std::memcmp(a.data(), b.data(), key_width) < 0;
            });

  PdqSortRows(rows.data(), n, row_width, 0, key_width);

  // Keys must match the oracle's key sequence exactly.
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(std::memcmp(rows.data() + i * row_width, oracle[i].data(),
                          key_width),
              0)
        << "row " << i << " width " << row_width;
  }
  // And the full multiset of rows must be preserved.
  std::vector<std::string> sorted_rows(n);
  for (uint64_t i = 0; i < n; ++i) {
    sorted_rows[i].assign(
        reinterpret_cast<char*>(rows.data() + i * row_width), row_width);
  }
  std::sort(sorted_rows.begin(), sorted_rows.end());
  std::vector<std::string> oracle_sorted = oracle;
  std::sort(oracle_sorted.begin(), oracle_sorted.end());
  EXPECT_EQ(sorted_rows, oracle_sorted);
}

INSTANTIATE_TEST_SUITE_P(Widths, RowSortTest,
                         ::testing::Values(8, 16, 24, 32, 40, 64, 128,
                                           144,  // indirect fallback
                                           272), // > kMaxFixedRowWidth
                         ::testing::PrintToStringParamName());

TEST(RowOpsTest, RowSwapExchangesWideRows) {
  std::vector<uint8_t> a(300, 0xAA), b(300, 0xBB);
  RowSwap(a.data(), b.data(), 300);
  EXPECT_EQ(a[0], 0xBB);
  EXPECT_EQ(a[299], 0xBB);
  EXPECT_EQ(b[0], 0xAA);
  EXPECT_EQ(b[299], 0xAA);
}

// Regression tests for the kMaxFixedRowWidth boundary: width == 256 must
// take the single-pass stack-buffer path, width == 257 the chunked path with
// a 1-byte residual tail. Guard bytes around the rows catch overruns in
// either direction.
void CheckRowSwapAtWidth(uint64_t width) {
  SCOPED_TRACE(width);
  const uint64_t guard = 16;
  std::vector<uint8_t> a_buf(width + 2 * guard, 0xE1);
  std::vector<uint8_t> b_buf(width + 2 * guard, 0xE2);
  std::vector<uint8_t> a_row(width), b_row(width);
  for (uint64_t i = 0; i < width; ++i) {
    a_row[i] = static_cast<uint8_t>(i * 7 + 1);
    b_row[i] = static_cast<uint8_t>(i * 13 + 5);
  }
  std::copy(a_row.begin(), a_row.end(), a_buf.begin() + guard);
  std::copy(b_row.begin(), b_row.end(), b_buf.begin() + guard);

  RowSwap(a_buf.data() + guard, b_buf.data() + guard, width);

  EXPECT_TRUE(std::equal(b_row.begin(), b_row.end(), a_buf.begin() + guard));
  EXPECT_TRUE(std::equal(a_row.begin(), a_row.end(), b_buf.begin() + guard));
  for (uint64_t i = 0; i < guard; ++i) {
    ASSERT_EQ(a_buf[i], 0xE1) << "front guard clobbered at " << i;
    ASSERT_EQ(a_buf[guard + width + i], 0xE1) << "back guard clobbered at " << i;
    ASSERT_EQ(b_buf[i], 0xE2) << "front guard clobbered at " << i;
    ASSERT_EQ(b_buf[guard + width + i], 0xE2) << "back guard clobbered at " << i;
  }
}

TEST(RowOpsTest, RowSwapWidthExactlyAtFixedBufferBoundary) {
  static_assert(kMaxFixedRowWidth == 256,
                "update the boundary regression widths");
  CheckRowSwapAtWidth(256);
}

TEST(RowOpsTest, RowSwapWidthJustPastFixedBufferBoundary) {
  CheckRowSwapAtWidth(257);
  // A couple of other chunked-path shapes: exactly two chunks, and a
  // mid-sized residual.
  CheckRowSwapAtWidth(512);
  CheckRowSwapAtWidth(300);
}

TEST(RowOpsTest, RowInsertionSortSortsByOffsetRange) {
  // Rows: [2B ignored][2B key]; sort by the key bytes only.
  const uint64_t n = 100, width = 4;
  Random rng(3);
  std::vector<uint8_t> rows(n * width);
  for (auto& byte : rows) byte = static_cast<uint8_t>(rng.Next32());
  RowInsertionSort(rows.data(), n, width, 2, 2);
  EXPECT_TRUE(RowsAreSorted(rows.data(), n, width, 2, 2));
}

}  // namespace
}  // namespace rowsort
