// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include <gtest/gtest.h>

#include <set>

#include "common/bit_util.h"
#include "common/hardware.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"

namespace rowsort {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::IOError("short write");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(st.message(), "short write");
  EXPECT_EQ(st.ToString(), "IOError: short write");
}

TEST(StatusTest, ReturnNotOkPropagates) {
  auto fails = []() -> Status { return Status::InvalidArgument("bad"); };
  auto wrapper = [&]() -> Status {
    ROWSORT_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> ok_result(42);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result.value(), 42);

  StatusOr<int> err_result(Status::OutOfRange("too big"));
  ASSERT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.status().code(), StatusCode::kOutOfRange);
}

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformRespectsBound) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, UniformCoversAllResidues) {
  Random rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(5);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, ShuffleIsPermutation) {
  Random rng(11);
  std::vector<uint32_t> data(1000);
  for (uint32_t i = 0; i < 1000; ++i) data[i] = i;
  rng.Shuffle(data.data(), data.size());
  std::set<uint32_t> unique(data.begin(), data.end());
  EXPECT_EQ(unique.size(), 1000u);
}

TEST(BitUtilTest, ByteSwap32) {
  EXPECT_EQ(bit_util::ByteSwap(uint32_t{0x01020304}), 0x04030201u);
}

TEST(BitUtilTest, AlignValue) {
  EXPECT_EQ(bit_util::AlignValue(0), 0u);
  EXPECT_EQ(bit_util::AlignValue(1), 8u);
  EXPECT_EQ(bit_util::AlignValue(8), 8u);
  EXPECT_EQ(bit_util::AlignValue(9), 16u);
  EXPECT_EQ(bit_util::AlignValue(13, 4), 16u);
}

TEST(BitUtilTest, Log2Floor) {
  EXPECT_EQ(bit_util::Log2Floor(1), 0);
  EXPECT_EQ(bit_util::Log2Floor(2), 1);
  EXPECT_EQ(bit_util::Log2Floor(3), 1);
  EXPECT_EQ(bit_util::Log2Floor(1ull << 24), 24);
}

TEST(StringUtilTest, FormatCount) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(16777216), "16,777,216");
}

TEST(StringUtilTest, StringFormat) {
  EXPECT_EQ(StringFormat("%d-%s", 7, "x"), "7-x");
}

TEST(StringUtilTest, SplitString) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(HardwareTest, DetectsSomething) {
  HardwareInfo info = DetectHardware();
  EXPECT_GT(info.logical_cores, 0);
  EXPECT_GT(info.total_memory_bytes, 0u);
  EXPECT_FALSE(info.ToString().empty());
}

}  // namespace
}  // namespace rowsort
