// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include <gtest/gtest.h>

#include <set>

#include "common/bit_util.h"
#include "common/cancellation.h"
#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/retry.h"
#include "common/memory_tracker.h"
#include "common/hardware.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"

namespace rowsort {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::IOError("short write");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(st.message(), "short write");
  EXPECT_EQ(st.ToString(), "IOError: short write");
}

TEST(StatusTest, ReturnNotOkPropagates) {
  auto fails = []() -> Status { return Status::InvalidArgument("bad"); };
  auto wrapper = [&]() -> Status {
    ROWSORT_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> ok_result(42);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result.value(), 42);

  StatusOr<int> err_result(Status::OutOfRange("too big"));
  ASSERT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.status().code(), StatusCode::kOutOfRange);
}

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformRespectsBound) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, UniformCoversAllResidues) {
  Random rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(5);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, ShuffleIsPermutation) {
  Random rng(11);
  std::vector<uint32_t> data(1000);
  for (uint32_t i = 0; i < 1000; ++i) data[i] = i;
  rng.Shuffle(data.data(), data.size());
  std::set<uint32_t> unique(data.begin(), data.end());
  EXPECT_EQ(unique.size(), 1000u);
}

TEST(BitUtilTest, ByteSwap32) {
  EXPECT_EQ(bit_util::ByteSwap(uint32_t{0x01020304}), 0x04030201u);
}

TEST(BitUtilTest, AlignValue) {
  EXPECT_EQ(bit_util::AlignValue(0), 0u);
  EXPECT_EQ(bit_util::AlignValue(1), 8u);
  EXPECT_EQ(bit_util::AlignValue(8), 8u);
  EXPECT_EQ(bit_util::AlignValue(9), 16u);
  EXPECT_EQ(bit_util::AlignValue(13, 4), 16u);
}

TEST(BitUtilTest, Log2Floor) {
  EXPECT_EQ(bit_util::Log2Floor(1), 0);
  EXPECT_EQ(bit_util::Log2Floor(2), 1);
  EXPECT_EQ(bit_util::Log2Floor(3), 1);
  EXPECT_EQ(bit_util::Log2Floor(1ull << 24), 24);
}

TEST(StringUtilTest, FormatCount) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(16777216), "16,777,216");
}

TEST(StringUtilTest, StringFormat) {
  EXPECT_EQ(StringFormat("%d-%s", 7, "x"), "7-x");
}

TEST(StringUtilTest, SplitString) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(HardwareTest, DetectsSomething) {
  HardwareInfo info = DetectHardware();
  EXPECT_GT(info.logical_cores, 0);
  EXPECT_GT(info.total_memory_bytes, 0u);
  EXPECT_FALSE(info.ToString().empty());
}

TEST(MemoryTrackerTest, ReserveReleaseAndPeak) {
  MemoryTracker tracker(1000);
  EXPECT_EQ(tracker.limit(), 1000u);
  tracker.Reserve(400);
  EXPECT_EQ(tracker.reserved(), 400u);
  EXPECT_FALSE(tracker.WouldExceed(600));
  EXPECT_TRUE(tracker.WouldExceed(601));
  EXPECT_FALSE(tracker.OverLimit());
  tracker.Reserve(700);  // enforcement is the caller's job, not the tracker's
  EXPECT_TRUE(tracker.OverLimit());
  EXPECT_EQ(tracker.peak(), 1100u);
  tracker.Release(1100);
  EXPECT_EQ(tracker.reserved(), 0u);
  EXPECT_EQ(tracker.peak(), 1100u);  // high-water mark sticks
}

TEST(MemoryTrackerTest, UnlimitedNeverExceeds) {
  MemoryTracker tracker;  // limit 0 = unlimited, accounting only
  tracker.Reserve(1ull << 40);
  EXPECT_FALSE(tracker.WouldExceed(1ull << 40));
  EXPECT_FALSE(tracker.OverLimit());
  tracker.Release(1ull << 40);
}

TEST(MemoryReservationTest, ReleasesOnDestructionAndMovesSafely) {
  MemoryTracker tracker;
  {
    MemoryReservation a;
    a.Reset(&tracker, 100);
    EXPECT_EQ(tracker.reserved(), 100u);
    MemoryReservation b = std::move(a);  // transfer, no double release
    EXPECT_EQ(tracker.reserved(), 100u);
    b.Update(250);
    EXPECT_EQ(tracker.reserved(), 250u);
    b.Update(50);
    EXPECT_EQ(tracker.reserved(), 50u);
    MemoryReservation c;
    c.Reset(&tracker, 30);
    c = std::move(b);  // move-assign releases c's 30, adopts b's 50
    EXPECT_EQ(tracker.reserved(), 50u);
  }
  EXPECT_EQ(tracker.reserved(), 0u);
}

TEST(Crc32Test, KnownVectorAndIncrementalEquivalence) {
  // IEEE CRC-32 of "123456789" is the classic check value.
  const char* digits = "123456789";
  EXPECT_EQ(Crc32(0, digits, 9), 0xCBF43926u);
  // Chunked updates must equal one whole-buffer pass.
  uint32_t chunked = Crc32(0, digits, 4);
  chunked = Crc32(chunked, digits + 4, 5);
  EXPECT_EQ(chunked, 0xCBF43926u);
  // Sensitivity: any single-bit change moves the checksum.
  char tweaked[] = "123456780";
  EXPECT_NE(Crc32(0, tweaked, 9), 0xCBF43926u);
}

TEST(FailpointTest, ArmSkipFiresAndDisarm) {
  if (!failpoint::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  failpoint::DisarmAll();
  EXPECT_FALSE(failpoint::Evaluate("common_test_fp"));  // unarmed: never fires

  failpoint::Arm("common_test_fp", /*skip=*/2, /*fires=*/1);
  EXPECT_FALSE(failpoint::Evaluate("common_test_fp"));  // skipped
  EXPECT_FALSE(failpoint::Evaluate("common_test_fp"));  // skipped
  EXPECT_TRUE(failpoint::Evaluate("common_test_fp"));   // fires once
  EXPECT_FALSE(failpoint::Evaluate("common_test_fp"));  // exhausted
  EXPECT_EQ(failpoint::HitCount("common_test_fp"), 4u);

  failpoint::Arm("common_test_fp", /*skip=*/0, /*fires=*/0);  // 0 = forever
  EXPECT_TRUE(failpoint::Evaluate("common_test_fp"));
  EXPECT_TRUE(failpoint::Evaluate("common_test_fp"));
  failpoint::Disarm("common_test_fp");
  EXPECT_FALSE(failpoint::Evaluate("common_test_fp"));
  failpoint::DisarmAll();
}

TEST(FailpointTest, ProbabilisticFiresNearRateAndIsDeterministic) {
  if (!failpoint::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  failpoint::ArmProbabilistic("common_test_prob", 0.1, /*seed=*/7);
  int fires = 0;
  for (int i = 0; i < 10000; ++i) {
    if (failpoint::Evaluate("common_test_prob")) ++fires;
  }
  // ~10% +- generous slack (the draw is a deterministic xorshift stream).
  EXPECT_GT(fires, 700);
  EXPECT_LT(fires, 1300);

  // Re-arming with the same seed replays the identical decision sequence.
  failpoint::ArmProbabilistic("common_test_prob", 0.1, /*seed=*/7);
  int replay = 0;
  for (int i = 0; i < 10000; ++i) {
    if (failpoint::Evaluate("common_test_prob")) ++replay;
  }
  EXPECT_EQ(replay, fires);
  failpoint::DisarmAll();
}

TEST(CancellationTest, TokenLifecycleAndCauses) {
  CancellationToken none;  // default token: can never fire
  EXPECT_FALSE(none.CanBeCancelled());
  EXPECT_FALSE(none.IsCancelled());
  EXPECT_TRUE(none.CheckForCancellation().ok());

  CancellationSource source;
  CancellationToken token = source.token();
  EXPECT_TRUE(token.CanBeCancelled());
  EXPECT_FALSE(token.IsCancelled());
  source.RequestCancel();
  EXPECT_TRUE(token.IsCancelled());
  EXPECT_EQ(token.cause(), CancelCause::kUser);
  EXPECT_EQ(token.CheckForCancellation().code(), StatusCode::kCancelled);

  // First cause wins: a later error request does not overwrite the user
  // cancel.
  source.RequestCancel(CancelCause::kError);
  EXPECT_EQ(token.cause(), CancelCause::kUser);
}

TEST(CancellationTest, DeadlineExpiryLatchesDeadlineCause) {
  CancellationSource source(Deadline::AfterMicros(0));
  CancellationToken token = source.token();
  EXPECT_TRUE(token.IsCancelled());
  EXPECT_EQ(token.cause(), CancelCause::kDeadline);
  EXPECT_EQ(token.CheckForCancellation().code(),
            StatusCode::kDeadlineExceeded);

  CancellationSource far(Deadline::AfterMillis(60'000));
  EXPECT_FALSE(far.token().IsCancelled());
  EXPECT_FALSE(Deadline::Infinite().Expired());
}

TEST(CancellationTest, ThrowIfCancelledUnwindsWithStatus) {
  CancellationSource source;
  source.RequestCancel();
  try {
    source.token().ThrowIfCancelled();
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.ToStatus().code(), StatusCode::kCancelled);
  }
}

TEST(CancelCheckerTest, CountsChecksAndMeasuresObservationLatency) {
  CancellationSource source;
  CancelChecker checker;
  checker.Reset(source.token());
  EXPECT_TRUE(checker.enabled());
  EXPECT_FALSE(checker.Check());  // not cancelled yet -> keep going
  EXPECT_TRUE(checker.CheckStatus().ok());
  source.RequestCancel();
  EXPECT_TRUE(checker.Check());  // observed: latency recorded
  EXPECT_EQ(checker.checks(), 3u);
  // Observation happened promptly after the request on this thread.
  EXPECT_LT(checker.time_to_cancel_us(), 1'000'000u);

  CancelChecker disabled;
  disabled.Reset(CancellationToken());
  EXPECT_FALSE(disabled.enabled());
  EXPECT_FALSE(disabled.Check());  // untracked token: never fires
}

TEST(RetryTest, TransientErrorsBackOffThenGiveUp) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_us = 1;
  policy.max_backoff_us = 4;
  RetryStats stats;
  RetryState state(policy, &stats);
  Status transient = Status::IOError("interrupted (EINTR)");
  // Budget of 3: two zero-progress retries succeed, the third fails
  // permanently with the cause attached.
  EXPECT_TRUE(state.OnTransientError(transient, /*made_progress=*/false).ok());
  EXPECT_TRUE(state.OnTransientError(transient, /*made_progress=*/false).ok());
  Status final = state.OnTransientError(transient, /*made_progress=*/false);
  EXPECT_EQ(final.code(), StatusCode::kIOError);
  // The permanent error carries the give-up diagnostic.
  EXPECT_NE(final.message().find("still failing after"), std::string::npos);
  EXPECT_EQ(stats.count(), 3u);  // every transient event is counted
}

TEST(RetryTest, ProgressResetsTheAttemptBudget) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff_us = 1;
  policy.max_backoff_us = 2;
  RetryStats stats;
  RetryState state(policy, &stats);
  Status transient = Status::IOError("short write");
  // A stream that keeps making progress never exhausts the budget: only
  // consecutive zero-progress failures count against it.
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(
        state.OnTransientError(transient, /*made_progress=*/true).ok());
  }
  EXPECT_TRUE(state.OnTransientError(transient, /*made_progress=*/false).ok());
  EXPECT_FALSE(
      state.OnTransientError(transient, /*made_progress=*/false).ok());
}

TEST(RetryTest, CancellationCutsBackoffShort) {
  CancellationSource source;
  source.RequestCancel();
  CancellationToken token = source.token();
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_us = 50'000;  // would sleep 50ms without the token
  RetryStats stats;
  RetryState state(policy, &stats, &token);
  Status st = state.OnTransientError(Status::IOError("interrupted"),
                                     /*made_progress=*/false);
  // A cancelled token turns the retry into an immediate cancellation.
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace rowsort
