// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include <gtest/gtest.h>

#include <set>

#include "workload/microbench.h"
#include "workload/tables.h"
#include "workload/tpcds.h"

namespace rowsort {
namespace {

TEST(MicrobenchTest, RandomHasVirtuallyNoDuplicates) {
  MicroWorkload w;
  w.num_rows = 1 << 16;
  w.num_key_columns = 1;
  w.distribution = MicroDistribution::kRandom;
  auto columns = GenerateMicroColumns(w);
  std::set<uint32_t> unique(columns[0].begin(), columns[0].end());
  // Birthday bound: ~0.5 expected collisions at 2^16 draws from 2^32.
  EXPECT_GT(unique.size(), w.num_rows - 10);
}

TEST(MicrobenchTest, CorrelatedHas128UniqueValues) {
  MicroWorkload w;
  w.num_rows = 1 << 16;
  w.num_key_columns = 3;
  w.distribution = MicroDistribution::kCorrelated;
  w.correlation = 0.5;
  auto columns = GenerateMicroColumns(w);
  for (const auto& col : columns) {
    std::set<uint32_t> unique(col.begin(), col.end());
    EXPECT_LE(unique.size(), 128u);
    EXPECT_GT(unique.size(), 100u);  // essentially all present at this n
  }
}

TEST(MicrobenchTest, CorrelationOneMakesColumnsIdentical) {
  MicroWorkload w;
  w.num_rows = 10000;
  w.num_key_columns = 4;
  w.distribution = MicroDistribution::kCorrelated;
  w.correlation = 1.0;
  auto columns = GenerateMicroColumns(w);
  for (uint64_t c = 1; c < 4; ++c) {
    EXPECT_EQ(columns[c], columns[0]);
  }
}

TEST(MicrobenchTest, CorrelationIncreasesCrossColumnTies) {
  auto tie_rate = [](double p) {
    MicroWorkload w;
    w.num_rows = 20000;
    w.num_key_columns = 2;
    w.distribution = MicroDistribution::kCorrelated;
    w.correlation = p;
    auto columns = GenerateMicroColumns(w);
    uint64_t ties = 0;
    for (uint64_t r = 0; r < w.num_rows; ++r) {
      ties += columns[0][r] == columns[1][r] ? 1 : 0;
    }
    return double(ties) / double(w.num_rows);
  };
  double r0 = tie_rate(0.0), r5 = tie_rate(0.5), r9 = tie_rate(0.9);
  EXPECT_LT(r0, r5);
  EXPECT_LT(r5, r9);
}

TEST(MicrobenchTest, DeterministicInSeed) {
  MicroWorkload w;
  w.num_rows = 1000;
  w.num_key_columns = 2;
  w.distribution = MicroDistribution::kCorrelated;
  w.correlation = 0.5;
  auto a = GenerateMicroColumns(w);
  auto b = GenerateMicroColumns(w);
  EXPECT_EQ(a, b);
  w.seed += 1;
  auto c = GenerateMicroColumns(w);
  EXPECT_NE(a, c);
}

TEST(MicrobenchTest, LabelsMatchPaperNaming) {
  MicroWorkload w;
  EXPECT_EQ(w.Label(), "Random");
  w.distribution = MicroDistribution::kCorrelated;
  w.correlation = 0.5;
  EXPECT_EQ(w.Label(), "Correlated0.50");
}

TEST(MicrobenchTest, StandardSweepCoversAllAxes) {
  auto sweep = StandardMicroSweep(12, 20, 4);
  // 4 distributions x 4 column counts x 3 sizes (2^12, 2^16, 2^20).
  EXPECT_EQ(sweep.size(), 4u * 4u * 3u);
}

TEST(TablesTest, ShuffledIntegersArePermutationOfRange) {
  Table table = MakeShuffledIntegerTable(10000, 3);
  EXPECT_EQ(table.row_count(), 10000u);
  std::set<int32_t> seen;
  bool sorted = true;
  int32_t prev = -1;
  for (uint64_t c = 0; c < table.ChunkCount(); ++c) {
    const auto& chunk = table.chunk(c);
    for (uint64_t r = 0; r < chunk.size(); ++r) {
      int32_t v = chunk.GetValue(0, r).int32_value();
      seen.insert(v);
      if (v < prev) sorted = false;
      prev = v;
    }
  }
  EXPECT_EQ(seen.size(), 10000u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 9999);
  EXPECT_FALSE(sorted);  // shuffled
}

TEST(TablesTest, UniformFloatsWithinRange) {
  Table table = MakeUniformFloatTable(5000, 4);
  for (uint64_t c = 0; c < table.ChunkCount(); ++c) {
    const auto& chunk = table.chunk(c);
    for (uint64_t r = 0; r < chunk.size(); ++r) {
      float v = chunk.GetValue(0, r).float_value();
      EXPECT_GE(v, -1e9f);
      EXPECT_LT(v, 1e9f);
    }
  }
}

TEST(TablesTest, ProjectKeepsSelectedColumns) {
  TpcdsScale scale;
  scale.scale_factor = 1;
  scale.scale_divisor = 1000;
  Table customer = MakeCustomer(scale);
  Table projected = customer.Project({0, 4});
  ASSERT_EQ(projected.types().size(), 2u);
  EXPECT_EQ(projected.types()[0].id(), TypeId::kInt32);
  EXPECT_EQ(projected.types()[1].id(), TypeId::kVarchar);
  EXPECT_EQ(projected.row_count(), customer.row_count());
  EXPECT_EQ(projected.chunk(0).GetValue(0, 0),
            customer.chunk(0).GetValue(0, 0));
  EXPECT_EQ(projected.chunk(0).GetValue(1, 0),
            customer.chunk(0).GetValue(4, 0));
}

TEST(TpcdsTest, CardinalitiesMatchTableIV) {
  TpcdsScale sf10;
  sf10.scale_factor = 10;
  EXPECT_EQ(sf10.CatalogSalesRows(), 14401261u);
  TpcdsScale sf100;
  sf100.scale_factor = 100;
  EXPECT_EQ(sf100.CatalogSalesRows(), 143997065u);
  EXPECT_EQ(sf100.CustomerRows(), 2000000u);
  TpcdsScale sf300;
  sf300.scale_factor = 300;
  EXPECT_EQ(sf300.CustomerRows(), 5000000u);
}

TEST(TpcdsTest, ScaleDivisorShrinksRowCounts) {
  TpcdsScale scale;
  scale.scale_factor = 10;
  scale.scale_divisor = 100;
  EXPECT_EQ(scale.CatalogSalesRows(), 14401261u / 100);
}

TEST(TpcdsTest, CatalogSalesDomains) {
  TpcdsScale scale;
  scale.scale_factor = 10;
  scale.scale_divisor = 1000;
  Table t = MakeCatalogSales(scale);
  ASSERT_EQ(t.types().size(), 5u);
  uint64_t nulls = 0, rows = 0;
  for (uint64_t c = 0; c < t.ChunkCount(); ++c) {
    const auto& chunk = t.chunk(c);
    for (uint64_t r = 0; r < chunk.size(); ++r) {
      ++rows;
      Value wh = chunk.GetValue(0, r);
      if (wh.is_null()) {
        ++nulls;
      } else {
        EXPECT_GE(wh.int32_value(), 1);
        EXPECT_LE(wh.int32_value(), int32_t(scale.WarehouseCount()));
      }
      Value qty = chunk.GetValue(3, r);
      if (!qty.is_null()) {
        EXPECT_GE(qty.int32_value(), 1);
        EXPECT_LE(qty.int32_value(), 100);
      }
    }
  }
  EXPECT_EQ(rows, scale.CatalogSalesRows());
  // ~1.8% NULLs in the FK columns.
  EXPECT_GT(nulls, 0u);
  EXPECT_LT(double(nulls) / double(rows), 0.05);
}

TEST(TpcdsTest, CustomerBirthDatesAndNames) {
  TpcdsScale scale;
  scale.scale_factor = 1;
  scale.scale_divisor = 20;
  Table t = MakeCustomer(scale);
  ASSERT_EQ(t.types().size(), 6u);
  std::set<std::string> last_names;
  for (uint64_t c = 0; c < t.ChunkCount(); ++c) {
    const auto& chunk = t.chunk(c);
    for (uint64_t r = 0; r < chunk.size(); ++r) {
      Value year = chunk.GetValue(1, r);
      if (!year.is_null()) {
        EXPECT_GE(year.int32_value(), 1924);
        EXPECT_LE(year.int32_value(), 1992);
      }
      Value name = chunk.GetValue(4, r);
      if (!name.is_null()) last_names.insert(name.varchar_value());
    }
  }
  // Skewed draw over a ~100-name list: many duplicates, many distinct names.
  EXPECT_GT(last_names.size(), 30u);
  EXPECT_LT(last_names.size(), 150u);
}

TEST(TpcdsTest, DeterministicInSeed) {
  TpcdsScale scale;
  scale.scale_factor = 1;
  scale.scale_divisor = 500;
  Table a = MakeCatalogSales(scale);
  Table b = MakeCatalogSales(scale);
  ASSERT_EQ(a.row_count(), b.row_count());
  for (uint64_t r = 0; r < a.chunk(0).size(); ++r) {
    for (uint64_t c = 0; c < 5; ++c) {
      EXPECT_EQ(a.chunk(0).GetValue(c, r), b.chunk(0).GetValue(c, r));
    }
  }
}

}  // namespace
}  // namespace rowsort
