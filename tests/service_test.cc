// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// SortService behavior (docs/service.md): admission control and shed-fast
// paths, per-tenant fairness, priority ordering, cross-query victim
// spilling, tight-limit fail-fast, and an overload stress mix shared with
// the TSan CI job.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/random.h"
#include "engine/sort_engine.h"
#include "engine/top_n.h"
#include "service/sort_service.h"
#include "workload/tables.h"

namespace rowsort {
namespace {

Table MakeRandomTable(uint64_t rows, uint64_t seed) {
  Random rng(seed);
  std::vector<LogicalType> types = {LogicalType(TypeId::kInt32),
                                    LogicalType(TypeId::kInt64)};
  Table table(types);
  uint64_t produced = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = table.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      chunk.SetValue(0, r,
                     Value::Int32(static_cast<int32_t>(rng.Uniform(100000))));
      chunk.SetValue(1, r, Value::Int64(static_cast<int64_t>(rng.Next64())));
    }
    chunk.SetSize(n);
    table.Append(std::move(chunk));
    produced += n;
  }
  return table;
}

/// Sorts on both columns: rows are totally ordered, so any two correct
/// sorts of the same input agree byte for byte — which is what lets the
/// tests below compare fingerprints across thread counts and memory limits
/// (equal-key tie order would otherwise depend on run registration order).
SortSpec IntSpec() {
  SortColumn key;
  key.column_index = 0;
  key.type = LogicalType(TypeId::kInt32);
  SortColumn tiebreak;
  tiebreak.column_index = 1;
  tiebreak.type = LogicalType(TypeId::kInt64);
  return SortSpec({key, tiebreak});
}

/// Order-sensitive digest of a whole table; equal fingerprints mean
/// byte-identical row sequences at the Value level.
std::string TableFingerprint(const Table& t) {
  std::string fp;
  for (uint64_t ci = 0; ci < t.ChunkCount(); ++ci) {
    const DataChunk& chunk = t.chunk(ci);
    for (uint64_t r = 0; r < chunk.size(); ++r) {
      for (uint64_t c = 0; c < t.types().size(); ++c) {
        fp += chunk.GetValue(c, r).ToString();
        fp += '\x1f';
      }
      fp += '\n';
    }
  }
  return fp;
}

/// Spins until \p predicate holds or ~20s elapse (test-only sync with a
/// service running on other threads; generous for the sanitizer builds).
template <typename Pred>
bool WaitFor(Pred predicate) {
  for (int i = 0; i < 20000; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return predicate();
}

TEST(SortServiceTest, MatchesEngineOutput) {
  Table input = MakeRandomTable(20000, 1);
  SortSpec spec = IntSpec();
  Table expected =
      RelationalSort::SortTable(input, spec, SortEngineConfig{}).ValueOrDie();

  SortServiceConfig config;
  config.threads = 4;
  SortService service(config);
  auto result = service.Sort(input, spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(TableFingerprint(result.value()), TableFingerprint(expected));

  SortServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

// Holds one running slot with a deliberately large sort while the body
// runs; joins before returning. The hog table is built once, on the first
// constructing thread — rebuilding 4M rows per hog dominates sanitizer
// runs and starves the tests' WaitFor windows.
class SlotHog {
 public:
  static const Table& HogTable(uint64_t rows) {
    static const Table table = MakeRandomTable(rows, 7);
    ROWSORT_ASSERT(table.row_count() == rows);
    return table;
  }

  SlotHog(SortService* service, uint64_t rows, TaskPriority priority)
      : service_(service) {
    const Table& giant = HogTable(rows);
    thread_ = std::thread([this, &giant, priority] {
      SortRequest request;
      request.priority = priority;
      result_ = service_->Sort(giant, IntSpec(), request).ok();
    });
  }
  ~SlotHog() { thread_.join(); }
  bool ok() const { return result_; }

 private:
  SortService* service_;
  std::thread thread_;
  bool result_ = false;
};

TEST(SortServiceTest, QueueFullShedsImmediately) {
  SortServiceConfig config;
  config.threads = 2;
  config.express_slots = 0;  // this test counts general-lane slots exactly
  config.max_running = 1;
  config.max_queued = 0;  // run immediately or shed, never wait
  SortService service(config);
  {
    SlotHog hog(&service, 4 << 20, TaskPriority::kNormal);
    ASSERT_TRUE(WaitFor([&] { return service.current_running() == 1; }));
    Table small = MakeRandomTable(1000, 2);
    auto result = service.Sort(small, IntSpec());
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << result.status().ToString();
    EXPECT_EQ(service.StatsSnapshot().shed_queue_full, 1u);
  }
  EXPECT_EQ(service.StatsSnapshot().completed, 1u);
}

TEST(SortServiceTest, WaitBudgetShedsQueuedRequest) {
  SortServiceConfig config;
  config.threads = 2;
  config.express_slots = 0;  // this test counts general-lane slots exactly
  config.max_running = 1;
  config.queue_wait_limit_ms = 30;
  SortService service(config);
  {
    SlotHog hog(&service, 4 << 20, TaskPriority::kNormal);
    ASSERT_TRUE(WaitFor([&] { return service.current_running() == 1; }));
    Table small = MakeRandomTable(1000, 2);
    auto result = service.Sort(small, IntSpec());
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << result.status().ToString();
    EXPECT_EQ(service.StatsSnapshot().shed_wait_budget, 1u);
  }
}

TEST(SortServiceTest, DeadlineExpiresWhileQueued) {
  SortServiceConfig config;
  config.threads = 2;
  config.express_slots = 0;  // this test counts general-lane slots exactly
  config.max_running = 1;
  SortService service(config);
  {
    SlotHog hog(&service, 4 << 20, TaskPriority::kNormal);
    ASSERT_TRUE(WaitFor([&] { return service.current_running() == 1; }));
    SortRequest request;
    request.deadline = Deadline::AfterMillis(25);
    Table small = MakeRandomTable(1000, 2);
    auto result = service.Sort(small, IntSpec(), request);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
        << result.status().ToString();
    EXPECT_EQ(service.StatsSnapshot().shed_queued_cancel, 1u);
  }
}

TEST(SortServiceTest, HighPriorityAdmittedFirst) {
  SortServiceConfig config;
  config.threads = 2;
  config.express_slots = 0;  // this test counts general-lane slots exactly
  config.max_running = 1;
  SortService service(config);
  std::mutex order_mutex;
  std::vector<std::string> order;
  {
    SlotHog hog(&service, 4 << 20, TaskPriority::kNormal);
    ASSERT_TRUE(WaitFor([&] { return service.current_running() == 1; }));
    auto submit = [&](const char* name, TaskPriority priority) {
      return std::thread([&, name, priority] {
        SortRequest request;
        request.priority = priority;
        Table small = MakeRandomTable(1000, 3);
        ASSERT_TRUE(service.Sort(small, IntSpec(), request).ok());
        std::lock_guard<std::mutex> lock(order_mutex);
        order.push_back(name);
      });
    };
    // Low joins the queue first, high second; admission must pick high.
    std::thread low = submit("low", TaskPriority::kLow);
    ASSERT_TRUE(WaitFor([&] { return service.current_queue_depth() == 1; }));
    std::thread high = submit("high", TaskPriority::kHigh);
    ASSERT_TRUE(WaitFor([&] { return service.current_queue_depth() == 2; }));
    low.join();
    high.join();
  }
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "high");
  EXPECT_EQ(order[1], "low");
}

TEST(SortServiceTest, TenantCapLetsOtherTenantOvertake) {
  SortServiceConfig config;
  config.threads = 2;
  config.express_slots = 0;  // this test counts general-lane slots exactly
  config.max_running = 2;
  config.tenant_max_running = 1;
  SortService service(config);
  std::mutex order_mutex;
  std::vector<std::string> order;
  {
    // The hog runs as the default tenant and holds its (tenant) slot.
    SlotHog hog(&service, 4 << 20, TaskPriority::kNormal);
    ASSERT_TRUE(WaitFor([&] { return service.current_running() == 1; }));
    auto submit = [&](const char* name, std::string tenant) {
      return std::thread([&, name, tenant] {
        SortRequest request;
        request.tenant = tenant;
        Table small = MakeRandomTable(1000, 4);
        ASSERT_TRUE(service.Sort(small, IntSpec(), request).ok());
        std::lock_guard<std::mutex> lock(order_mutex);
        order.push_back(name);
      });
    };
    // Same tenant as the hog: must wait despite the free global slot. The
    // other tenant arrives later yet runs immediately.
    std::thread same = submit("same-tenant", "");
    ASSERT_TRUE(WaitFor([&] { return service.current_queue_depth() == 1; }));
    std::thread other = submit("other-tenant", "t2");
    other.join();
    {
      std::lock_guard<std::mutex> lock(order_mutex);
      ASSERT_EQ(order.size(), 1u);
      EXPECT_EQ(order[0], "other-tenant");
    }
    same.join();
  }
}

TEST(SortServiceTest, VictimSpillHookFreesResidentRuns) {
  Table input = MakeRandomTable(3 * 4096, 5);
  SortSpec spec = IntSpec();
  SortEngineConfig config;
  config.run_size_rows = 4096;  // three resident runs after the sinks
  RelationalSort sort(spec, input.types(), config);
  auto local = sort.MakeLocalState();
  for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
    ASSERT_TRUE(sort.Sink(*local, input.chunk(c)).ok());
  }
  ASSERT_TRUE(sort.CombineLocal(*local).ok());
  const uint64_t resident = sort.memory_tracker().reserved();
  ASSERT_GT(resident, 0u);

  // One byte of demand still evicts a whole (largest) run.
  uint64_t freed = sort.SpillResidentBytes(1);
  EXPECT_GT(freed, 0u);
  EXPECT_LT(sort.memory_tracker().reserved(), resident);
  EXPECT_EQ(sort.metrics().forced_spills, 1u);
  EXPECT_EQ(sort.metrics().runs_spilled, 1u);

  // Huge demand evicts everything evictable, then reports honestly.
  uint64_t freed_rest = sort.SpillResidentBytes(UINT64_MAX);
  EXPECT_GT(freed_rest, 0u);
  EXPECT_EQ(sort.metrics().forced_spills, 3u);
  EXPECT_EQ(sort.SpillResidentBytes(UINT64_MAX), 0u);

  // The spilled sort still merges to the right answer.
  ASSERT_TRUE(sort.Finalize(nullptr).ok());
  // And once the merge owns the runs, the hook declines.
  EXPECT_EQ(sort.SpillResidentBytes(UINT64_MAX), 0u);
  Table expected =
      RelationalSort::SortTable(input, spec, SortEngineConfig{}).ValueOrDie();
  Table output(input.types(), input.names());
  uint64_t offset = 0;
  while (offset < sort.row_count()) {
    DataChunk chunk = output.NewChunk();
    offset += sort.ScanChunk(offset, &chunk);
    output.Append(std::move(chunk));
  }
  EXPECT_EQ(TableFingerprint(output), TableFingerprint(expected));
}

TEST(SortServiceTest, TightLimitFailsFastNamingMinimum) {
  Table input = MakeRandomTable(60000, 6);
  SortSpec spec = IntSpec();
  RelationalSort probe(spec, input.types(), SortEngineConfig{});
  const uint64_t minimum = probe.MinSpillWorkingSetBytes();
  ASSERT_GT(minimum, 0u);

  // One spill block (half the minimum): the first spill attempt must fail
  // fast with OutOfMemory naming the floor, not thrash.
  SortEngineConfig tight;
  tight.memory_limit_bytes = minimum / 2;
  auto result = RelationalSort::SortTable(input, spec, tight);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfMemory)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("minimum workable limit"),
            std::string::npos)
      << result.status().message();
  EXPECT_NE(result.status().message().find(std::to_string(minimum)),
            std::string::npos)
      << result.status().message();

  // Limit zero = unlimited: always works.
  SortEngineConfig unlimited;
  unlimited.memory_limit_bytes = 0;
  EXPECT_TRUE(RelationalSort::SortTable(input, spec, unlimited).ok());

  // Exactly the minimum: tight, spills hard, but completes correctly.
  SortEngineConfig at_floor;
  at_floor.memory_limit_bytes = minimum;
  auto floor_result = RelationalSort::SortTable(input, spec, at_floor);
  ASSERT_TRUE(floor_result.ok()) << floor_result.status().ToString();
  Table expected =
      RelationalSort::SortTable(input, spec, SortEngineConfig{}).ValueOrDie();
  EXPECT_EQ(TableFingerprint(floor_result.value()),
            TableFingerprint(expected));
}

// The overload mix the TSan CI job runs: racing queries over one small
// global budget with victim spilling, transient I/O faults, deadline kills,
// and shed-fast admission. Every query must complete byte-identically to
// the unlimited baseline or fail cleanly; nothing may leak.
TEST(SortServiceTest, OverloadStressCompletesOrFailsCleanly) {
  const uint64_t kQueries = 24;
  const uint64_t kClients = 6;
  const uint64_t kInputs = 4;

  std::vector<Table> inputs;
  std::vector<std::string> baselines;
  SortSpec spec = IntSpec();
  uint64_t total_bytes = 0;
  for (uint64_t i = 0; i < kInputs; ++i) {
    inputs.push_back(MakeRandomTable(20000 + 10000 * i, 100 + i));
    baselines.push_back(TableFingerprint(
        RelationalSort::SortTable(inputs[i], spec, SortEngineConfig{})
            .ValueOrDie()));
    total_bytes += inputs[i].row_count() * 24;  // rough working-set share
  }

  std::filesystem::path spill_dir =
      std::filesystem::temp_directory_path() / "rowsort_service_stress";
  std::filesystem::create_directories(spill_dir);

  SortServiceConfig config;
  config.threads = 4;
  config.memory_limit_bytes = total_bytes / 8;
  config.max_running = 4;
  config.max_queued = 8;
  config.queue_wait_limit_ms = 2000;
  config.tenant_max_running = 3;
  config.pool_stats = true;
  SortService service(config);

  failpoint::ArmProbabilistic("external_run_read_eintr", 0.02, 11);
  failpoint::ArmProbabilistic("external_run_write_short", 0.02, 13);

  std::atomic<uint64_t> next{0};
  std::atomic<uint64_t> wrong{0};
  std::atomic<uint64_t> bad_failures{0};
  std::vector<std::thread> clients;
  for (uint64_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      while (true) {
        uint64_t q = next.fetch_add(1);
        if (q >= kQueries) break;
        SortRequest request;
        request.tenant = "tenant-" + std::to_string(q % 3);
        request.priority = static_cast<TaskPriority>(q % 3);
        request.engine.run_size_rows = 4096;
        request.engine.spill_directory = spill_dir.string();
        if (q % 5 == 4) request.deadline = Deadline::AfterMillis(1 + q % 7);
        const Table& input = inputs[q % kInputs];
        auto result = service.Sort(input, spec, request);
        if (result.ok()) {
          if (TableFingerprint(result.value()) != baselines[q % kInputs]) {
            wrong.fetch_add(1);
          }
        } else {
          switch (result.status().code()) {
            case StatusCode::kResourceExhausted:
            case StatusCode::kDeadlineExceeded:
            case StatusCode::kCancelled:
            case StatusCode::kIOError:
            case StatusCode::kOutOfMemory:
              break;  // clean failure classes under overload/faults
            default:
              bad_failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  failpoint::DisarmAll();

  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(bad_failures.load(), 0u);

  // Zero leaked reservations: every query released its memory.
  EXPECT_EQ(service.memory_tracker().reserved(), 0u);
  // Zero leaked temp files: engines clean their spill files even on error.
  uint64_t leftover = 0;
  for (auto it = std::filesystem::directory_iterator(spill_dir);
       it != std::filesystem::directory_iterator(); ++it) {
    ++leftover;
  }
  EXPECT_EQ(leftover, 0u);
  std::filesystem::remove_all(spill_dir);

  SortServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.requests, kQueries);
  EXPECT_EQ(stats.requests, stats.admitted + stats.shed_queue_full +
                                stats.shed_wait_budget +
                                stats.shed_queued_cancel);
  EXPECT_EQ(stats.admitted,
            stats.completed + stats.failed + stats.cancelled);
  EXPECT_GT(stats.completed, 0u);
  // The global budget was real: something spilled somewhere (victims or
  // requesters' own runs), and the tracker saw real pressure.
  EXPECT_GT(service.memory_tracker().peak(), 0u);
}

// ---------------------------------------------------------------------------
// The unified Submit() surface: operator routing, express lane, per-class
// stats, shed diagnostics, and the mixed-operator overload mix.
// ---------------------------------------------------------------------------

WindowSpec IntWindowSpec() {
  WindowSpec spec;
  spec.partition_by = {0};
  // Ordering by the random INT64 column makes the full window key a total
  // order, so direct and service-routed runs agree byte for byte.
  spec.order_by = {SortColumn(1, LogicalType(TypeId::kInt64))};
  return spec;
}

/// Order-insensitive digest: joins emit duplicate-key groups in run order,
/// which a total ordering of the *output* rows normalizes away.
std::string SortedFingerprint(const Table& t) {
  std::vector<std::string> lines;
  std::string fp = TableFingerprint(t);
  uint64_t start = 0;
  for (uint64_t i = 0; i < fp.size(); ++i) {
    if (fp[i] == '\n') {
      lines.push_back(fp.substr(start, i - start));
      start = i + 1;
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

TEST(SortServiceTest, SubmitTopNMatchesDirectInvocation) {
  Table input = MakeRandomTable(20000, 21);
  SortSpec spec = IntSpec();
  TopN direct(spec, input.types(), 100, SortEngineConfig{});
  for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
    ASSERT_TRUE(direct.Sink(input.chunk(c)).ok());
  }
  Table expected = direct.Finalize().ValueOrDie();

  SortServiceConfig config;
  config.threads = 2;
  SortService service(config);
  OperatorRequest request;
  request.op = OperatorKind::kTopN;
  request.spec = spec;
  request.limit = 100;
  auto result = service.Submit(input, request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(TableFingerprint(result.value()), TableFingerprint(expected));

  SortServiceStats stats = service.StatsSnapshot();
  const auto& oc =
      stats.op_class[static_cast<uint64_t>(OperatorKind::kTopN)];
  EXPECT_EQ(oc.requests, 1u);
  EXPECT_EQ(oc.admitted, 1u);
  EXPECT_EQ(oc.completed, 1u);
  // A Top-100 over narrow rows is comfortably under the express ceiling.
  EXPECT_EQ(stats.express_admitted, 1u);
  EXPECT_EQ(service.memory_tracker().reserved(), 0u);
}

TEST(SortServiceTest, SubmitWindowMatchesDirectInvocation) {
  Table input = MakeRandomTable(12000, 22);
  WindowSpec wspec = IntWindowSpec();
  std::vector<WindowFunction> functions = {WindowFunction::kRowNumber,
                                           WindowFunction::kRank};
  Table expected =
      ComputeWindow(input, wspec, functions, SortEngineConfig{}).ValueOrDie();

  SortServiceConfig config;
  config.threads = 2;
  SortService service(config);
  OperatorRequest request;
  request.op = OperatorKind::kWindow;
  request.window = wspec;
  request.functions = functions;
  auto result = service.Submit(input, request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(TableFingerprint(result.value()), TableFingerprint(expected));
  const auto stats = service.StatsSnapshot();
  EXPECT_EQ(
      stats.op_class[static_cast<uint64_t>(OperatorKind::kWindow)].completed,
      1u);
  EXPECT_EQ(service.memory_tracker().reserved(), 0u);
}

TEST(SortServiceTest, SubmitJoinsMatchDirectInvocation) {
  Table left = MakeRandomTable(4000, 23);
  Table right = MakeRandomTable(4000, 24);
  SortServiceConfig config;
  config.threads = 2;
  SortService service(config);

  {
    std::vector<JoinKey> keys = {{0, 0}};
    Table expected =
        SortMergeJoin(left, right, keys, SortEngineConfig{}).ValueOrDie();
    OperatorRequest request;
    request.op = OperatorKind::kMergeJoin;
    request.keys = keys;
    auto result = service.Submit(left, right, request);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(SortedFingerprint(result.value()), SortedFingerprint(expected));
  }
  {
    Table small_left = MakeRandomTable(400, 25);
    Table small_right = MakeRandomTable(400, 26);
    InequalityPredicate p1{0, 0, InequalityOp::kLess};
    InequalityPredicate p2{1, 1, InequalityOp::kGreater};
    Table expected =
        IEJoin(small_left, small_right, p1, p2, SortEngineConfig{})
            .ValueOrDie();
    OperatorRequest request;
    request.op = OperatorKind::kIEJoin;
    request.pred1 = p1;
    request.pred2 = p2;
    auto result = service.Submit(small_left, small_right, request);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(SortedFingerprint(result.value()), SortedFingerprint(expected));
  }
  const auto stats = service.StatsSnapshot();
  EXPECT_EQ(
      stats.op_class[static_cast<uint64_t>(OperatorKind::kMergeJoin)]
          .completed,
      1u);
  EXPECT_EQ(
      stats.op_class[static_cast<uint64_t>(OperatorKind::kIEJoin)].completed,
      1u);
  EXPECT_EQ(service.memory_tracker().reserved(), 0u);
}

TEST(SortServiceTest, SubmitValidatesOperatorShape) {
  Table input = MakeRandomTable(100, 27);
  SortServiceConfig config;
  config.threads = 1;
  SortService service(config);

  // Joins need two inputs; unary kinds refuse the binary overload.
  OperatorRequest join;
  join.op = OperatorKind::kMergeJoin;
  join.keys = {{0, 0}};
  EXPECT_TRUE(service.Submit(input, join).status().IsInvalidArgument());
  OperatorRequest unary;
  unary.op = OperatorKind::kSort;
  unary.spec = IntSpec();
  EXPECT_TRUE(
      service.Submit(input, input, unary).status().IsInvalidArgument());

  // Malformed payloads: empty specs, limit zero, no window functions.
  OperatorRequest top_n;
  top_n.op = OperatorKind::kTopN;
  top_n.spec = IntSpec();
  top_n.limit = 0;
  EXPECT_TRUE(service.Submit(input, top_n).status().IsInvalidArgument());
  OperatorRequest empty_sort;
  empty_sort.op = OperatorKind::kSort;
  EXPECT_TRUE(service.Submit(input, empty_sort).status().IsInvalidArgument());
  OperatorRequest window;
  window.op = OperatorKind::kWindow;
  EXPECT_TRUE(service.Submit(input, window).status().IsInvalidArgument());

  // Validation is the caller's bug, not load: nothing was counted or shed.
  SortServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_EQ(stats.admitted, 0u);
}

TEST(SortServiceTest, ExpressLaneAdmitsSmallRequestsPastGiants) {
  SortServiceConfig config;
  config.threads = 2;
  config.max_running = 1;
  config.max_queued = 0;  // run immediately or shed — no waiting
  config.express_slots = 1;
  SortService service(config);
  {
    SlotHog hog(&service, 4 << 20, TaskPriority::kNormal);
    ASSERT_TRUE(WaitFor([&] { return service.current_running() == 1; }));

    // The giant holds the only general slot and the queue takes nobody;
    // without the express lane this Top-N would be shed on arrival.
    Table small = MakeRandomTable(1000, 28);
    OperatorRequest request;
    request.op = OperatorKind::kTopN;
    request.spec = IntSpec();
    request.limit = 10;
    auto result = service.Submit(small, request);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // The giant is still in its general slot: the Top-N truly overtook it.
    EXPECT_EQ(service.current_running(), 1u);

    // A second giant is not express-eligible and sheds fast as before.
    auto shed = service.Sort(SlotHog::HogTable(4 << 20), IntSpec());
    ASSERT_FALSE(shed.ok());
    EXPECT_TRUE(shed.status().IsResourceExhausted())
        << shed.status().ToString();
  }
  SortServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.express_admitted, 1u);
  EXPECT_EQ(stats.max_express_running, 1u);
  EXPECT_EQ(stats.shed_queue_full, 1u);
  EXPECT_EQ(
      stats.op_class[static_cast<uint64_t>(OperatorKind::kTopN)].completed,
      1u);
}

TEST(SortServiceTest, ShedMessagesNameTenantDepthAndWaitBudget) {
  SortServiceConfig config;
  config.threads = 2;
  config.max_running = 1;
  config.max_queued = 0;
  config.express_slots = 0;
  SortService service(config);
  {
    SlotHog hog(&service, 4 << 20, TaskPriority::kNormal);
    ASSERT_TRUE(WaitFor([&] { return service.current_running() == 1; }));
    Table small = MakeRandomTable(1000, 29);
    SortRequest request;
    request.tenant = "acme";
    auto full = service.Sort(small, IntSpec(), request);
    ASSERT_TRUE(full.status().IsResourceExhausted());
    EXPECT_NE(full.status().message().find("tenant 'acme'"),
              std::string::npos)
        << full.status().message();
    EXPECT_NE(full.status().message().find("queued"), std::string::npos);
    EXPECT_NE(full.status().message().find("wait budget"), std::string::npos);
  }

  SortServiceConfig waitful = config;
  waitful.max_queued = 4;
  waitful.queue_wait_limit_ms = 30;
  SortService wait_service(waitful);
  {
    SlotHog hog(&wait_service, 4 << 20, TaskPriority::kNormal);
    ASSERT_TRUE(WaitFor([&] { return wait_service.current_running() == 1; }));
    Table small = MakeRandomTable(1000, 30);
    SortRequest request;
    request.tenant = "acme";
    auto spent = wait_service.Sort(small, IntSpec(), request);
    ASSERT_TRUE(spent.status().IsResourceExhausted());
    EXPECT_NE(spent.status().message().find("tenant 'acme'"),
              std::string::npos)
        << spent.status().message();
    EXPECT_NE(spent.status().message().find("wait budget spent"),
              std::string::npos);
    EXPECT_NE(spent.status().message().find("30 ms"), std::string::npos)
        << spent.status().message();
    EXPECT_NE(spent.status().message().find("queued"), std::string::npos);
  }
}

// The production-shaped mix the TSan CI job also runs: express Top-Ns,
// mid-tier windows and joins, and spilling sort giants racing over one
// small budget with 1% I/O faults and deadline kills. Success must be
// byte-identical to direct invocation; failure must be a clean class; the
// ledger must balance globally and per operator class; nothing may leak.
TEST(SortServiceTest, MixedOperatorOverloadStress) {
  const uint64_t kQueries = 32;
  const uint64_t kClients = 8;

  SortSpec spec = IntSpec();
  WindowSpec wspec = IntWindowSpec();
  std::vector<WindowFunction> functions = {WindowFunction::kRowNumber,
                                           WindowFunction::kDenseRank};
  std::vector<JoinKey> keys = {{0, 0}};

  std::vector<Table> sort_inputs;
  std::vector<std::string> sort_baselines;
  uint64_t total_bytes = 0;
  for (uint64_t i = 0; i < 3; ++i) {
    sort_inputs.push_back(MakeRandomTable(20000 + 10000 * i, 500 + i));
    sort_baselines.push_back(TableFingerprint(
        RelationalSort::SortTable(sort_inputs[i], spec, SortEngineConfig{})
            .ValueOrDie()));
    total_bytes += sort_inputs[i].row_count() * 24;
  }
  Table window_input = MakeRandomTable(12000, 510);
  std::string window_baseline = TableFingerprint(
      ComputeWindow(window_input, wspec, functions, SortEngineConfig{})
          .ValueOrDie());
  Table join_left = MakeRandomTable(4000, 520);
  Table join_right = MakeRandomTable(4000, 521);
  std::string join_baseline = SortedFingerprint(
      SortMergeJoin(join_left, join_right, keys, SortEngineConfig{})
          .ValueOrDie());
  Table topn_input = MakeRandomTable(20000, 530);
  std::string topn_baseline;
  {
    TopN direct(spec, topn_input.types(), 50, SortEngineConfig{});
    for (uint64_t c = 0; c < topn_input.ChunkCount(); ++c) {
      ASSERT_TRUE(direct.Sink(topn_input.chunk(c)).ok());
    }
    topn_baseline = TableFingerprint(direct.Finalize().ValueOrDie());
  }

  std::filesystem::path spill_dir =
      std::filesystem::temp_directory_path() / "rowsort_service_mixed";
  std::filesystem::create_directories(spill_dir);

  SortServiceConfig config;
  config.threads = 4;
  config.memory_limit_bytes = total_bytes / 8;
  config.max_running = 3;
  config.max_queued = 8;
  config.queue_wait_limit_ms = 2000;
  config.tenant_max_running = 3;
  config.express_slots = 2;
  SortService service(config);

  failpoint::ArmProbabilistic("external_run_read_eintr", 0.01, 41);
  failpoint::ArmProbabilistic("external_run_write_short", 0.01, 43);

  std::atomic<uint64_t> next{0};
  std::atomic<uint64_t> wrong{0};
  std::atomic<uint64_t> bad_failures{0};
  std::vector<std::thread> clients;
  for (uint64_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&] {
      while (true) {
        uint64_t q = next.fetch_add(1);
        if (q >= kQueries) break;
        OperatorRequest request;
        request.tenant = "tenant-" + std::to_string(q % 3);
        request.priority = static_cast<TaskPriority>(q % 3);
        request.engine.run_size_rows = 4096;
        request.engine.spill_directory = spill_dir.string();
        if (q % 7 == 6) request.deadline = Deadline::AfterMillis(1 + q % 5);

        StatusOr<Table> result = Status::Internal("not yet submitted");
        std::string baseline;
        bool sorted_compare = false;
        switch (q % 4) {
          case 0: {  // spilling sort giant
            request.op = OperatorKind::kSort;
            request.spec = spec;
            const Table& input = sort_inputs[q % sort_inputs.size()];
            baseline = sort_baselines[q % sort_inputs.size()];
            result = service.Submit(input, request);
            break;
          }
          case 1: {  // mid-tier window
            request.op = OperatorKind::kWindow;
            request.window = wspec;
            request.functions = functions;
            baseline = window_baseline;
            result = service.Submit(window_input, request);
            break;
          }
          case 2: {  // mid-tier merge join (binary)
            request.op = OperatorKind::kMergeJoin;
            request.keys = keys;
            baseline = join_baseline;
            sorted_compare = true;
            result = service.Submit(join_left, join_right, request);
            break;
          }
          default: {  // express Top-N
            request.op = OperatorKind::kTopN;
            request.spec = spec;
            request.limit = 50;
            baseline = topn_baseline;
            result = service.Submit(topn_input, request);
            break;
          }
        }
        if (result.ok()) {
          std::string fp = sorted_compare ? SortedFingerprint(result.value())
                                          : TableFingerprint(result.value());
          if (fp != baseline) wrong.fetch_add(1);
        } else {
          switch (result.status().code()) {
            case StatusCode::kResourceExhausted:
            case StatusCode::kDeadlineExceeded:
            case StatusCode::kCancelled:
            case StatusCode::kIOError:
            case StatusCode::kOutOfMemory:
              break;  // clean failure classes under overload/faults
            default:
              bad_failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  failpoint::DisarmAll();

  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(bad_failures.load(), 0u);

  // Zero leaked reservations and zero leaked temp files, same bar as the
  // sort-only stress.
  EXPECT_EQ(service.memory_tracker().reserved(), 0u);
  uint64_t leftover = 0;
  for (auto it = std::filesystem::directory_iterator(spill_dir);
       it != std::filesystem::directory_iterator(); ++it) {
    ++leftover;
  }
  EXPECT_EQ(leftover, 0u);
  std::filesystem::remove_all(spill_dir);

  SortServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.requests, kQueries);
  EXPECT_EQ(stats.requests, stats.admitted + stats.shed_queue_full +
                                stats.shed_wait_budget +
                                stats.shed_queued_cancel);
  EXPECT_EQ(stats.admitted,
            stats.completed + stats.failed + stats.cancelled);
  EXPECT_GT(stats.completed, 0u);
  // The per-operator ledgers balance individually and sum to the global one.
  uint64_t req_sum = 0, adm_sum = 0, shed_sum = 0;
  for (uint64_t i = 0; i < kOperatorKindCount; ++i) {
    const OperatorClassStats& oc = stats.op_class[i];
    EXPECT_EQ(oc.requests, oc.admitted + oc.shed) << OperatorKindName(
        static_cast<OperatorKind>(i));
    EXPECT_EQ(oc.admitted, oc.completed + oc.failed + oc.cancelled)
        << OperatorKindName(static_cast<OperatorKind>(i));
    req_sum += oc.requests;
    adm_sum += oc.admitted;
    shed_sum += oc.shed;
  }
  EXPECT_EQ(req_sum, stats.requests);
  EXPECT_EQ(adm_sum, stats.admitted);
  EXPECT_EQ(shed_sum, stats.shed_queue_full + stats.shed_wait_budget +
                          stats.shed_queued_cancel);
  // Narrow Top-Ns rode the express lane at least once.
  EXPECT_GT(stats.express_admitted, 0u);
  EXPECT_GT(service.memory_tracker().peak(), 0u);
}

}  // namespace
}  // namespace rowsort
