// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// SortService behavior (docs/service.md): admission control and shed-fast
// paths, per-tenant fairness, priority ordering, cross-query victim
// spilling, tight-limit fail-fast, and an overload stress mix shared with
// the TSan CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/random.h"
#include "engine/sort_engine.h"
#include "service/sort_service.h"
#include "workload/tables.h"

namespace rowsort {
namespace {

Table MakeRandomTable(uint64_t rows, uint64_t seed) {
  Random rng(seed);
  std::vector<LogicalType> types = {LogicalType(TypeId::kInt32),
                                    LogicalType(TypeId::kInt64)};
  Table table(types);
  uint64_t produced = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = table.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      chunk.SetValue(0, r,
                     Value::Int32(static_cast<int32_t>(rng.Uniform(100000))));
      chunk.SetValue(1, r, Value::Int64(static_cast<int64_t>(rng.Next64())));
    }
    chunk.SetSize(n);
    table.Append(std::move(chunk));
    produced += n;
  }
  return table;
}

/// Sorts on both columns: rows are totally ordered, so any two correct
/// sorts of the same input agree byte for byte — which is what lets the
/// tests below compare fingerprints across thread counts and memory limits
/// (equal-key tie order would otherwise depend on run registration order).
SortSpec IntSpec() {
  SortColumn key;
  key.column_index = 0;
  key.type = LogicalType(TypeId::kInt32);
  SortColumn tiebreak;
  tiebreak.column_index = 1;
  tiebreak.type = LogicalType(TypeId::kInt64);
  return SortSpec({key, tiebreak});
}

/// Order-sensitive digest of a whole table; equal fingerprints mean
/// byte-identical row sequences at the Value level.
std::string TableFingerprint(const Table& t) {
  std::string fp;
  for (uint64_t ci = 0; ci < t.ChunkCount(); ++ci) {
    const DataChunk& chunk = t.chunk(ci);
    for (uint64_t r = 0; r < chunk.size(); ++r) {
      for (uint64_t c = 0; c < t.types().size(); ++c) {
        fp += chunk.GetValue(c, r).ToString();
        fp += '\x1f';
      }
      fp += '\n';
    }
  }
  return fp;
}

/// Spins until \p predicate holds or ~20s elapse (test-only sync with a
/// service running on other threads; generous for the sanitizer builds).
template <typename Pred>
bool WaitFor(Pred predicate) {
  for (int i = 0; i < 20000; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return predicate();
}

TEST(SortServiceTest, MatchesEngineOutput) {
  Table input = MakeRandomTable(20000, 1);
  SortSpec spec = IntSpec();
  Table expected =
      RelationalSort::SortTable(input, spec, SortEngineConfig{}).ValueOrDie();

  SortServiceConfig config;
  config.threads = 4;
  SortService service(config);
  auto result = service.Sort(input, spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(TableFingerprint(result.value()), TableFingerprint(expected));

  SortServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

// Holds one running slot with a deliberately large sort while the body
// runs; joins before returning. The hog table is built once, on the first
// constructing thread — rebuilding 4M rows per hog dominates sanitizer
// runs and starves the tests' WaitFor windows.
class SlotHog {
 public:
  static const Table& HogTable(uint64_t rows) {
    static const Table table = MakeRandomTable(rows, 7);
    ROWSORT_ASSERT(table.row_count() == rows);
    return table;
  }

  SlotHog(SortService* service, uint64_t rows, TaskPriority priority)
      : service_(service) {
    const Table& giant = HogTable(rows);
    thread_ = std::thread([this, &giant, priority] {
      SortRequest request;
      request.priority = priority;
      result_ = service_->Sort(giant, IntSpec(), request).ok();
    });
  }
  ~SlotHog() { thread_.join(); }
  bool ok() const { return result_; }

 private:
  SortService* service_;
  std::thread thread_;
  bool result_ = false;
};

TEST(SortServiceTest, QueueFullShedsImmediately) {
  SortServiceConfig config;
  config.threads = 2;
  config.max_running = 1;
  config.max_queued = 0;  // run immediately or shed, never wait
  SortService service(config);
  {
    SlotHog hog(&service, 4 << 20, TaskPriority::kNormal);
    ASSERT_TRUE(WaitFor([&] { return service.current_running() == 1; }));
    Table small = MakeRandomTable(1000, 2);
    auto result = service.Sort(small, IntSpec());
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << result.status().ToString();
    EXPECT_EQ(service.StatsSnapshot().shed_queue_full, 1u);
  }
  EXPECT_EQ(service.StatsSnapshot().completed, 1u);
}

TEST(SortServiceTest, WaitBudgetShedsQueuedRequest) {
  SortServiceConfig config;
  config.threads = 2;
  config.max_running = 1;
  config.queue_wait_limit_ms = 30;
  SortService service(config);
  {
    SlotHog hog(&service, 4 << 20, TaskPriority::kNormal);
    ASSERT_TRUE(WaitFor([&] { return service.current_running() == 1; }));
    Table small = MakeRandomTable(1000, 2);
    auto result = service.Sort(small, IntSpec());
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << result.status().ToString();
    EXPECT_EQ(service.StatsSnapshot().shed_wait_budget, 1u);
  }
}

TEST(SortServiceTest, DeadlineExpiresWhileQueued) {
  SortServiceConfig config;
  config.threads = 2;
  config.max_running = 1;
  SortService service(config);
  {
    SlotHog hog(&service, 4 << 20, TaskPriority::kNormal);
    ASSERT_TRUE(WaitFor([&] { return service.current_running() == 1; }));
    SortRequest request;
    request.deadline = Deadline::AfterMillis(25);
    Table small = MakeRandomTable(1000, 2);
    auto result = service.Sort(small, IntSpec(), request);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
        << result.status().ToString();
    EXPECT_EQ(service.StatsSnapshot().shed_queued_cancel, 1u);
  }
}

TEST(SortServiceTest, HighPriorityAdmittedFirst) {
  SortServiceConfig config;
  config.threads = 2;
  config.max_running = 1;
  SortService service(config);
  std::mutex order_mutex;
  std::vector<std::string> order;
  {
    SlotHog hog(&service, 4 << 20, TaskPriority::kNormal);
    ASSERT_TRUE(WaitFor([&] { return service.current_running() == 1; }));
    auto submit = [&](const char* name, TaskPriority priority) {
      return std::thread([&, name, priority] {
        SortRequest request;
        request.priority = priority;
        Table small = MakeRandomTable(1000, 3);
        ASSERT_TRUE(service.Sort(small, IntSpec(), request).ok());
        std::lock_guard<std::mutex> lock(order_mutex);
        order.push_back(name);
      });
    };
    // Low joins the queue first, high second; admission must pick high.
    std::thread low = submit("low", TaskPriority::kLow);
    ASSERT_TRUE(WaitFor([&] { return service.current_queue_depth() == 1; }));
    std::thread high = submit("high", TaskPriority::kHigh);
    ASSERT_TRUE(WaitFor([&] { return service.current_queue_depth() == 2; }));
    low.join();
    high.join();
  }
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "high");
  EXPECT_EQ(order[1], "low");
}

TEST(SortServiceTest, TenantCapLetsOtherTenantOvertake) {
  SortServiceConfig config;
  config.threads = 2;
  config.max_running = 2;
  config.tenant_max_running = 1;
  SortService service(config);
  std::mutex order_mutex;
  std::vector<std::string> order;
  {
    // The hog runs as the default tenant and holds its (tenant) slot.
    SlotHog hog(&service, 4 << 20, TaskPriority::kNormal);
    ASSERT_TRUE(WaitFor([&] { return service.current_running() == 1; }));
    auto submit = [&](const char* name, std::string tenant) {
      return std::thread([&, name, tenant] {
        SortRequest request;
        request.tenant = tenant;
        Table small = MakeRandomTable(1000, 4);
        ASSERT_TRUE(service.Sort(small, IntSpec(), request).ok());
        std::lock_guard<std::mutex> lock(order_mutex);
        order.push_back(name);
      });
    };
    // Same tenant as the hog: must wait despite the free global slot. The
    // other tenant arrives later yet runs immediately.
    std::thread same = submit("same-tenant", "");
    ASSERT_TRUE(WaitFor([&] { return service.current_queue_depth() == 1; }));
    std::thread other = submit("other-tenant", "t2");
    other.join();
    {
      std::lock_guard<std::mutex> lock(order_mutex);
      ASSERT_EQ(order.size(), 1u);
      EXPECT_EQ(order[0], "other-tenant");
    }
    same.join();
  }
}

TEST(SortServiceTest, VictimSpillHookFreesResidentRuns) {
  Table input = MakeRandomTable(3 * 4096, 5);
  SortSpec spec = IntSpec();
  SortEngineConfig config;
  config.run_size_rows = 4096;  // three resident runs after the sinks
  RelationalSort sort(spec, input.types(), config);
  auto local = sort.MakeLocalState();
  for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
    ASSERT_TRUE(sort.Sink(*local, input.chunk(c)).ok());
  }
  ASSERT_TRUE(sort.CombineLocal(*local).ok());
  const uint64_t resident = sort.memory_tracker().reserved();
  ASSERT_GT(resident, 0u);

  // One byte of demand still evicts a whole (largest) run.
  uint64_t freed = sort.SpillResidentBytes(1);
  EXPECT_GT(freed, 0u);
  EXPECT_LT(sort.memory_tracker().reserved(), resident);
  EXPECT_EQ(sort.metrics().forced_spills, 1u);
  EXPECT_EQ(sort.metrics().runs_spilled, 1u);

  // Huge demand evicts everything evictable, then reports honestly.
  uint64_t freed_rest = sort.SpillResidentBytes(UINT64_MAX);
  EXPECT_GT(freed_rest, 0u);
  EXPECT_EQ(sort.metrics().forced_spills, 3u);
  EXPECT_EQ(sort.SpillResidentBytes(UINT64_MAX), 0u);

  // The spilled sort still merges to the right answer.
  ASSERT_TRUE(sort.Finalize(nullptr).ok());
  // And once the merge owns the runs, the hook declines.
  EXPECT_EQ(sort.SpillResidentBytes(UINT64_MAX), 0u);
  Table expected =
      RelationalSort::SortTable(input, spec, SortEngineConfig{}).ValueOrDie();
  Table output(input.types(), input.names());
  uint64_t offset = 0;
  while (offset < sort.row_count()) {
    DataChunk chunk = output.NewChunk();
    offset += sort.ScanChunk(offset, &chunk);
    output.Append(std::move(chunk));
  }
  EXPECT_EQ(TableFingerprint(output), TableFingerprint(expected));
}

TEST(SortServiceTest, TightLimitFailsFastNamingMinimum) {
  Table input = MakeRandomTable(60000, 6);
  SortSpec spec = IntSpec();
  RelationalSort probe(spec, input.types(), SortEngineConfig{});
  const uint64_t minimum = probe.MinSpillWorkingSetBytes();
  ASSERT_GT(minimum, 0u);

  // One spill block (half the minimum): the first spill attempt must fail
  // fast with OutOfMemory naming the floor, not thrash.
  SortEngineConfig tight;
  tight.memory_limit_bytes = minimum / 2;
  auto result = RelationalSort::SortTable(input, spec, tight);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfMemory)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("minimum workable limit"),
            std::string::npos)
      << result.status().message();
  EXPECT_NE(result.status().message().find(std::to_string(minimum)),
            std::string::npos)
      << result.status().message();

  // Limit zero = unlimited: always works.
  SortEngineConfig unlimited;
  unlimited.memory_limit_bytes = 0;
  EXPECT_TRUE(RelationalSort::SortTable(input, spec, unlimited).ok());

  // Exactly the minimum: tight, spills hard, but completes correctly.
  SortEngineConfig at_floor;
  at_floor.memory_limit_bytes = minimum;
  auto floor_result = RelationalSort::SortTable(input, spec, at_floor);
  ASSERT_TRUE(floor_result.ok()) << floor_result.status().ToString();
  Table expected =
      RelationalSort::SortTable(input, spec, SortEngineConfig{}).ValueOrDie();
  EXPECT_EQ(TableFingerprint(floor_result.value()),
            TableFingerprint(expected));
}

// The overload mix the TSan CI job runs: racing queries over one small
// global budget with victim spilling, transient I/O faults, deadline kills,
// and shed-fast admission. Every query must complete byte-identically to
// the unlimited baseline or fail cleanly; nothing may leak.
TEST(SortServiceTest, OverloadStressCompletesOrFailsCleanly) {
  const uint64_t kQueries = 24;
  const uint64_t kClients = 6;
  const uint64_t kInputs = 4;

  std::vector<Table> inputs;
  std::vector<std::string> baselines;
  SortSpec spec = IntSpec();
  uint64_t total_bytes = 0;
  for (uint64_t i = 0; i < kInputs; ++i) {
    inputs.push_back(MakeRandomTable(20000 + 10000 * i, 100 + i));
    baselines.push_back(TableFingerprint(
        RelationalSort::SortTable(inputs[i], spec, SortEngineConfig{})
            .ValueOrDie()));
    total_bytes += inputs[i].row_count() * 24;  // rough working-set share
  }

  std::filesystem::path spill_dir =
      std::filesystem::temp_directory_path() / "rowsort_service_stress";
  std::filesystem::create_directories(spill_dir);

  SortServiceConfig config;
  config.threads = 4;
  config.memory_limit_bytes = total_bytes / 8;
  config.max_running = 4;
  config.max_queued = 8;
  config.queue_wait_limit_ms = 2000;
  config.tenant_max_running = 3;
  config.pool_stats = true;
  SortService service(config);

  failpoint::ArmProbabilistic("external_run_read_eintr", 0.02, 11);
  failpoint::ArmProbabilistic("external_run_write_short", 0.02, 13);

  std::atomic<uint64_t> next{0};
  std::atomic<uint64_t> wrong{0};
  std::atomic<uint64_t> bad_failures{0};
  std::vector<std::thread> clients;
  for (uint64_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      while (true) {
        uint64_t q = next.fetch_add(1);
        if (q >= kQueries) break;
        SortRequest request;
        request.tenant = "tenant-" + std::to_string(q % 3);
        request.priority = static_cast<TaskPriority>(q % 3);
        request.engine.run_size_rows = 4096;
        request.engine.spill_directory = spill_dir.string();
        if (q % 5 == 4) request.deadline = Deadline::AfterMillis(1 + q % 7);
        const Table& input = inputs[q % kInputs];
        auto result = service.Sort(input, spec, request);
        if (result.ok()) {
          if (TableFingerprint(result.value()) != baselines[q % kInputs]) {
            wrong.fetch_add(1);
          }
        } else {
          switch (result.status().code()) {
            case StatusCode::kResourceExhausted:
            case StatusCode::kDeadlineExceeded:
            case StatusCode::kCancelled:
            case StatusCode::kIOError:
            case StatusCode::kOutOfMemory:
              break;  // clean failure classes under overload/faults
            default:
              bad_failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  failpoint::DisarmAll();

  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(bad_failures.load(), 0u);

  // Zero leaked reservations: every query released its memory.
  EXPECT_EQ(service.memory_tracker().reserved(), 0u);
  // Zero leaked temp files: engines clean their spill files even on error.
  uint64_t leftover = 0;
  for (auto it = std::filesystem::directory_iterator(spill_dir);
       it != std::filesystem::directory_iterator(); ++it) {
    ++leftover;
  }
  EXPECT_EQ(leftover, 0u);
  std::filesystem::remove_all(spill_dir);

  SortServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.requests, kQueries);
  EXPECT_EQ(stats.requests, stats.admitted + stats.shed_queue_full +
                                stats.shed_wait_budget +
                                stats.shed_queued_cancel);
  EXPECT_EQ(stats.admitted,
            stats.completed + stats.failed + stats.cancelled);
  EXPECT_GT(stats.completed, 0u);
  // The global budget was real: something spilled somewhere (victims or
  // requesters' own runs), and the tracker saw real pressure.
  EXPECT_GT(service.memory_tracker().peak(), 0u);
}

}  // namespace
}  // namespace rowsort
