// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// The five system stand-ins (paper §VII) must all produce valid sorted
// results on the paper's three end-to-end workloads; architectural
// differences may only change performance, never correctness.
#include <gtest/gtest.h>

#include <map>

#include "common/cancellation.h"
#include "engine/sort_engine.h"
#include "systems/system.h"
#include "workload/tables.h"
#include "workload/tpcds.h"

namespace rowsort {
namespace {

int OrderByCompare(const Value& a, const Value& b, const SortColumn& sc) {
  if (a.is_null() || b.is_null()) {
    if (a.is_null() && b.is_null()) return 0;
    bool nulls_first = sc.null_order == NullOrder::kNullsFirst;
    return a.is_null() ? (nulls_first ? -1 : 1) : (nulls_first ? 1 : -1);
  }
  int cmp = a.Compare(b);
  return sc.order == OrderType::kDescending ? -cmp : cmp;
}

void ExpectSorted(const Table& output, const SortSpec& spec,
                  const std::string& system) {
  std::vector<Value> prev;
  bool have_prev = false;
  for (uint64_t ci = 0; ci < output.ChunkCount(); ++ci) {
    const DataChunk& chunk = output.chunk(ci);
    for (uint64_t r = 0; r < chunk.size(); ++r) {
      std::vector<Value> cur;
      for (const auto& sc : spec.columns()) {
        cur.push_back(chunk.GetValue(sc.column_index, r));
      }
      if (have_prev) {
        int cmp = 0;
        for (uint64_t k = 0; k < spec.columns().size(); ++k) {
          cmp = OrderByCompare(prev[k], cur[k], spec.columns()[k]);
          if (cmp != 0) break;
        }
        ASSERT_LE(cmp, 0) << system << " out of order, chunk " << ci
                          << " row " << r;
      }
      prev = std::move(cur);
      have_prev = true;
    }
  }
}

void ExpectSameMultiset(const Table& input, const Table& output,
                        const std::string& system) {
  ASSERT_EQ(input.row_count(), output.row_count()) << system;
  std::map<std::string, int64_t> counts;
  auto fingerprint = [](const Table& t, uint64_t ci, uint64_t r) {
    std::string fp;
    for (uint64_t c = 0; c < t.types().size(); ++c) {
      fp += t.chunk(ci).GetValue(c, r).ToString();
      fp += '\x1f';
    }
    return fp;
  };
  for (uint64_t ci = 0; ci < input.ChunkCount(); ++ci) {
    for (uint64_t r = 0; r < input.chunk(ci).size(); ++r) {
      ++counts[fingerprint(input, ci, r)];
    }
  }
  for (uint64_t ci = 0; ci < output.ChunkCount(); ++ci) {
    for (uint64_t r = 0; r < output.chunk(ci).size(); ++r) {
      --counts[fingerprint(output, ci, r)];
    }
  }
  for (const auto& [fp, count] : counts) {
    ASSERT_EQ(count, 0) << system << " lost/invented row " << fp;
  }
}

void RunAllSystems(const Table& input, const SortSpec& spec) {
  for (auto& system : MakeAllSystems(/*threads=*/2)) {
    Table output = system->Sort(input, spec);
    ExpectSorted(output, spec, system->name());
    ExpectSameMultiset(input, output, system->name());
  }
}

TEST(SystemsTest, ShuffledIntegers) {
  Table input = MakeShuffledIntegerTable(20000, 11);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  RunAllSystems(input, spec);
}

TEST(SystemsTest, UniformFloats) {
  Table input = MakeUniformFloatTable(20000, 12);
  SortSpec spec({SortColumn(0, TypeId::kFloat)});
  RunAllSystems(input, spec);
}

TEST(SystemsTest, CatalogSalesMultiKey) {
  TpcdsScale scale;
  scale.scale_factor = 1;
  scale.scale_divisor = 100;  // ~14k rows
  Table input = MakeCatalogSales(scale);
  // Fig. 13's four key columns over the catalog_sales schema.
  SortSpec spec({SortColumn(0, TypeId::kInt32), SortColumn(1, TypeId::kInt32),
                 SortColumn(2, TypeId::kInt32), SortColumn(3, TypeId::kInt32)});
  RunAllSystems(input, spec);
}

TEST(SystemsTest, CustomerStringKeys) {
  TpcdsScale scale;
  scale.scale_factor = 1;
  scale.scale_divisor = 10;  // 10k rows
  Table input = MakeCustomer(scale);
  // Fig. 14's string sort: c_last_name, c_first_name.
  SortSpec spec({SortColumn(4, TypeId::kVarchar),
                 SortColumn(5, TypeId::kVarchar)});
  RunAllSystems(input, spec);
}

TEST(SystemsTest, CustomerIntegerKeysDescending) {
  TpcdsScale scale;
  scale.scale_factor = 1;
  scale.scale_divisor = 10;
  Table input = MakeCustomer(scale);
  SortSpec spec(
      {SortColumn(1, TypeId::kInt32, OrderType::kDescending,
                  NullOrder::kNullsFirst),
       SortColumn(2, TypeId::kInt32), SortColumn(3, TypeId::kInt32)});
  RunAllSystems(input, spec);
}

TEST(SystemsTest, SingleRowAndEmpty) {
  for (uint64_t n : {0ull, 1ull}) {
    Table input = MakeShuffledIntegerTable(n, 1);
    SortSpec spec({SortColumn(0, TypeId::kInt32)});
    for (auto& system : MakeAllSystems(2)) {
      Table output = system->Sort(input, spec);
      EXPECT_EQ(output.row_count(), n) << system->name();
    }
  }
}

TEST(SystemsTest, NamesAreDistinct) {
  auto systems = MakeAllSystems(1);
  ASSERT_EQ(systems.size(), 5u);
  std::set<std::string> names;
  for (auto& s : systems) names.insert(s->name());
  EXPECT_EQ(names.size(), 5u);
}

TEST(SystemsTest, DuckDBLikeTrySortHonoursBaseConfigCancellation) {
  Table input = MakeShuffledIntegerTable(20000, 3);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});

  // A base config carrying a cancelled token: TrySort must surface the
  // cancellation as a Status instead of aborting the process.
  CancellationSource source;
  source.RequestCancel();
  SortEngineConfig base;
  base.cancellation = source.token();
  auto cancelled_system = MakeDuckDBLike(2, base);
  auto cancelled = cancelled_system->TrySort(input, spec);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);

  // Without a token the same system sorts normally, and the base-config
  // result matches the plain constructor's.
  auto plain = MakeDuckDBLike(2)->TrySort(input, spec);
  ASSERT_TRUE(plain.ok());
  auto with_base = MakeDuckDBLike(2, SortEngineConfig{})->TrySort(input, spec);
  ASSERT_TRUE(with_base.ok());
  EXPECT_EQ(plain.value().row_count(), input.row_count());
  EXPECT_EQ(with_base.value().row_count(), input.row_count());
  ExpectSorted(plain.value(), spec, "DuckDB-like");
  ExpectSorted(with_base.value(), spec, "DuckDB-like (base config)");
}

TEST(SystemsTest, DuckDBLikeMetricsResetBetweenSorts) {
  Table input = MakeShuffledIntegerTable(30000, 9);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  // Serial so the run count is deterministic: with multiple threads the
  // morsel race makes runs_generated vary between identical sorts, which is
  // noise for what this test checks (reset, not accumulation).
  auto system = MakeDuckDBLike(1);

  ASSERT_TRUE(system->TrySort(input, spec).ok());
  const SortMetrics* metrics = system->last_metrics();
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->rows, 30000u);
  uint64_t first_runs = metrics->runs_generated;

  // The reused struct is reset per sort: the second sort reports 30k rows
  // again, not an accumulated 60k.
  ASSERT_TRUE(system->TrySort(input, spec).ok());
  EXPECT_EQ(metrics->rows, 30000u);
  EXPECT_EQ(metrics->runs_generated, first_runs);

  // Systems that do not collect metrics return nullptr.
  EXPECT_EQ(MakeMonetDBLike()->last_metrics(), nullptr);
}

}  // namespace
}  // namespace rowsort
