// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Fig. 11 is the paper's pipeline diagram (no measurements); this bench
// makes the realization measurable: per-phase timing of the pipeline —
// vector->row conversion + key normalization (sink), thread-local run sorts
// + payload reorder, and the cascaded merge — across run counts.
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "engine/profile.h"
#include "engine/sort_engine.h"
#include "workload/tables.h"

using namespace rowsort;

int main() {
  bench::PrintHeader(
      "Figure 11 (realization)", "pipeline phase breakdown",
      "conversion is a small, cache-resident fraction; run sorting "
      "dominates; merge cost grows with the number of runs (§II analysis) "
      "and shrinks with offset-value coding");

  const uint64_t n = bench::EnvRows("ROWSORT_FIG11_ROWS", 4'000'000);
  Table input = MakeShuffledIntegerTable(n, 41);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});

  std::printf("rows = %s, single int32 key, radix run sorts\n",
              FormatCount(n).c_str());
  std::printf("(merge timed with offset-value codes on and off)\n\n");
  std::printf("%8s %12s %12s %14s %14s %12s\n", "runs", "sink", "run sort",
              "merge (ovc)", "merge (cmp)", "total");
  for (uint64_t k : {1, 4, 16, 64}) {
    double merge_seconds[2];
    SortMetrics metrics;
    double total = 0;
    for (int ovc = 1; ovc >= 0; --ovc) {
      SortEngineConfig config;
      config.run_size_rows = (n + k - 1) / k;
      config.use_offset_value_codes = ovc == 1;
      SortMetrics m;
      Timer timer;
      RelationalSort::SortTable(input, spec, config, &m).ValueOrDie();
      if (ovc == 1) {
        total = timer.ElapsedSeconds();
        metrics = m;
      }
      merge_seconds[ovc] = m.merge_seconds;
    }
    std::printf("%8llu %11.3fs %11.3fs %13.3fs %13.3fs %11.3fs\n",
                (unsigned long long)metrics.runs_generated,
                metrics.sink_seconds, metrics.run_sort_seconds,
                merge_seconds[1], merge_seconds[0], total);
    std::fflush(stdout);
  }

  // ROWSORT_FIG11_PROFILE=<path>: re-run the largest configuration with the
  // hierarchical profile attached and dump it as JSON (used by
  // tools/run_profile_bench.sh and CI to validate the export end to end).
  if (const char* path = std::getenv("ROWSORT_FIG11_PROFILE")) {
    SortEngineConfig config;
    config.run_size_rows = (n + 63) / 64;
    SortProfile profile;
    RelationalSort::SortTable(input, spec, config, nullptr, &profile)
        .ValueOrDie();
    Status st = profile.WriteJson(path);
    if (!st.ok()) {
      std::fprintf(stderr, "profile export failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("\nprofile written to %s\n", path);
  }
  return 0;
}
