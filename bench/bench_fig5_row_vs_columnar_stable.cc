// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Fig. 5: as Fig. 4 but with the stable merge sort; the row format still
// wins, with slightly smaller margins than introsort.
#include "approach_timers.h"

using namespace rowsort;
using namespace rowsort::bench;

int main() {
  PrintHeader("Figure 5",
              "row (NSM) vs columnar (DSM) baseline, stable merge sort",
              "similar to Fig. 4 with slightly lower ratios; row subsort "
              "beats row tuple-at-a-time under merge sort");
  SweepAxes axes;
  PrintRelativeTable(axes, "row tuple-at-a-time", "columnar subsort",
                     TimeRowTupleStatic(BaseSortAlgo::kStableMergeSort),
                     TimeColumnarSubsort(BaseSortAlgo::kStableMergeSort));
  PrintRelativeTable(axes, "row subsort", "columnar subsort",
                     TimeRowSubsort(BaseSortAlgo::kStableMergeSort),
                     TimeColumnarSubsort(BaseSortAlgo::kStableMergeSort));
  return 0;
}
