// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// §II analysis: with k sorted runs of n/k rows each, run generation performs
// ~n·log(n/k) comparisons and the merge ~n·log(k); run generation dominates
// whenever k < sqrt(n). The paper's worked example: n = 1,000,000 and
// k = 16 puts ~80% of comparisons in run generation. This bench measures
// the actual comparator invocations of the pipeline against the analytic
// model.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "engine/sort_engine.h"
#include "workload/tables.h"

using namespace rowsort;

int main() {
  bench::PrintHeader(
      "Section II analysis", "run-generation vs merge comparison counts",
      "measured share of comparisons in run generation tracks "
      "n·log(n/k) / (n·log(n/k) + n·log(k)); ~80% for n=1M, k=16");

  const uint64_t n = bench::EnvRows("ROWSORT_SEC2_ROWS", 1'000'000);
  std::printf("n = %s rows, single int32 key, pdqsort runs (comparison "
              "counting forces the comparison-sort path)\n\n",
              FormatCount(n).c_str());
  std::printf("%6s %18s %18s %12s %12s\n", "k", "run-gen compares",
              "merge compares", "measured%", "model%");

  Table input = MakeShuffledIntegerTable(n, 77);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  for (uint64_t k : {2, 4, 8, 16, 64}) {
    SortEngineConfig config;
    config.run_size_rows = (n + k - 1) / k;
    config.algorithm = RunSortAlgorithm::kPdq;
    config.count_comparisons = true;
    SortMetrics metrics;
    RelationalSort::SortTable(input, spec, config, &metrics).ValueOrDie();

    double measured = 100.0 * double(metrics.run_generation_compares) /
                      double(metrics.run_generation_compares +
                             metrics.merge_compares);
    double model = 100.0 * std::log2(double(n) / double(k)) /
                   std::log2(double(n));
    std::printf("%6llu %18s %18s %11.1f%% %11.1f%%\n", (unsigned long long)k,
                FormatCount(metrics.run_generation_compares).c_str(),
                FormatCount(metrics.merge_compares).c_str(), measured, model);
  }
  std::printf("\n(model%% = log(n/k)/log(n); pdqsort performs fewer than "
              "n·log(n/k) comparisons in absolute terms, but the split "
              "between phases follows the model)\n");
  return 0;
}
