// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Ablation: merge strategy × offset-value coding. §VII's systems split on
// the strategy choice — DuckDB runs a 2-way cascaded merge (log k passes,
// each a cheap 1-vs-1 comparison, parallelizable with Merge Path);
// ClickHouse and HyPer/Umbra run one k-way merge (a single pass, but a
// log k tree comparison per output row). On top of both, offset-value
// coding (Graefe & Do, arXiv:2209.08420) caches each row's first key-byte
// difference against its run predecessor so that most merge comparisons
// become one integer compare: the k-way merge upgrades from a binary heap
// to an OVC loser tree, the cascade's Merge Path slices to code-first
// comparisons. This bench measures the 2x2 grid on identical runs across
// run counts, plus the §II comparison counts and the OVC counters.
//
// Set ROWSORT_BENCH_JSON=<path> to additionally emit the records as JSON
// (see tools/run_merge_bench.sh, which tracks BENCH_merge.json over PRs).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "engine/sort_engine.h"
#include "workload/tables.h"

using namespace rowsort;

namespace {

/// Multi-column duplicate-heavy workload: three key columns of small
/// cardinality (long shared key prefixes, frequent full-key duplicates —
/// where OVC saves the most) plus a unique payload column.
Table MakeDupHeavyTable(uint64_t rows, uint64_t seed) {
  LogicalType i32(TypeId::kInt32), i64(TypeId::kInt64);
  Random rng(seed);
  Table table({i32, i32, i64, i64});
  uint64_t produced = 0, serial = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = table.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      chunk.SetValue(0, r, Value::Int32(static_cast<int32_t>(rng.Uniform(90))));
      chunk.SetValue(1, r,
                     Value::Int32(static_cast<int32_t>(rng.Uniform(1000))));
      chunk.SetValue(2, r,
                     Value::Int64(static_cast<int64_t>(rng.Uniform(10000))));
      chunk.SetValue(3, r, Value::Int64(static_cast<int64_t>(serial++)));
    }
    chunk.SetSize(n);
    table.Append(std::move(chunk));
    produced += n;
  }
  return table;
}

struct Record {
  const char* workload;
  uint64_t runs;
  const char* strategy;  // "cascade" or "kway"
  bool ovc;
  double seconds;
  SortMetrics metrics;
};

void RunGrid(const char* workload, const Table& input, const SortSpec& spec,
             uint64_t n, std::vector<Record>* records) {
  std::printf("\n-- workload: %s (%s rows) --\n", workload,
              FormatCount(n).c_str());
  std::printf("%6s %9s %5s %10s %16s %14s %16s\n", "runs", "strategy", "ovc",
              "median", "full compares", "ovc decided", "ovc fallbacks");
  for (uint64_t k : {4, 16, 64}) {
    for (int strategy = 0; strategy < 2; ++strategy) {
      for (int ovc = 0; ovc < 2; ++ovc) {
        SortEngineConfig config;
        config.run_size_rows = (n + k - 1) / k;
        config.use_kway_merge = strategy == 1;
        config.use_offset_value_codes = ovc == 1;
        config.count_comparisons = true;  // forces the comparison-sort path
        SortMetrics metrics;
        double seconds = bench::MedianSeconds(
            [&] { RelationalSort::SortTable(input, spec, config, &metrics).ValueOrDie(); });
        const char* name = strategy == 1 ? "kway" : "cascade";
        std::printf("%6llu %9s %5s %9.3fs %16s %14s %16s\n",
                    (unsigned long long)k,
                    strategy == 1 ? (ovc ? "losertree" : "kway-heap") : name,
                    ovc ? "on" : "off", seconds,
                    FormatCount(metrics.merge_compares).c_str(),
                    FormatCount(metrics.ovc_decided).c_str(),
                    FormatCount(metrics.ovc_fallback_compares).c_str());
        std::fflush(stdout);
        records->push_back({workload, k, name, ovc == 1, seconds, metrics});
      }
    }
  }
}

void EmitJson(const std::vector<Record>& records, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (uint64_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(
        f,
        "  {\"workload\": \"%s\", \"runs\": %llu, \"strategy\": \"%s\", "
        "\"ovc\": %s, \"seconds\": %.6f, \"rows\": %llu, "
        "\"merge_compares\": %llu, \"ovc_decided\": %llu, "
        "\"ovc_fallback_compares\": %llu}%s\n",
        r.workload, (unsigned long long)r.runs, r.strategy,
        r.ovc ? "true" : "false", r.seconds,
        (unsigned long long)r.metrics.rows,
        (unsigned long long)r.metrics.merge_compares,
        (unsigned long long)r.metrics.ovc_decided,
        (unsigned long long)r.metrics.ovc_fallback_compares,
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: merge strategy x offset-value coding",
      "2-way cascade vs k-way merge, OVC on/off, on identical runs",
      "cascade wins as k grows on cheap keys; OVC removes most full key "
      "comparisons (>= 2x fewer on duplicate-heavy multi-column keys), "
      "turning the k-way heap into a loser tree of integer compares");

  std::vector<Record> records;

  const uint64_t n_int = bench::EnvRows("ROWSORT_MERGE_ABL_ROWS", 2'000'000);
  Table ints = MakeShuffledIntegerTable(n_int, 31);
  RunGrid("unique int32", ints, SortSpec({SortColumn(0, TypeId::kInt32)}),
          n_int, &records);

  const uint64_t n_dup = bench::EnvRows("ROWSORT_MERGE_DUP_ROWS", 1'000'000);
  LogicalType i32(TypeId::kInt32), i64(TypeId::kInt64);
  Table dups = MakeDupHeavyTable(n_dup, 47);
  RunGrid("dup-heavy 3-col", dups,
          SortSpec({SortColumn(0, i32), SortColumn(1, i32),
                    SortColumn(2, i64)}),
          n_dup, &records);

  std::printf("\n(times include run generation, identical within a run "
              "count; the difference is the merge phase. 'full compares' = "
              "comparator/key-byte comparisons; with OVC on these are only "
              "the fallbacks on tied codes)\n");

  const char* json_path = std::getenv("ROWSORT_BENCH_JSON");
  if (json_path != nullptr && json_path[0] != '\0') {
    EmitJson(records, json_path);
  }
  return 0;
}
