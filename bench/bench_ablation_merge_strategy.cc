// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Ablation: merge strategy. §VII's systems split on this design choice —
// DuckDB runs a 2-way cascaded merge (log k passes over the data, each pass
// a cheap 1-vs-1 comparison, parallelizable with Merge Path); ClickHouse
// and HyPer/Umbra run one k-way heap merge (a single pass, but a log k heap
// reorganization per output row). This bench measures both on the same runs
// across run counts, plus the §II comparison counts.
#include <cstdio>

#include "bench_util.h"
#include "engine/sort_engine.h"
#include "workload/tables.h"

using namespace rowsort;

int main() {
  bench::PrintHeader(
      "Ablation: 2-way cascaded merge vs k-way heap merge",
      "merge strategies of the §VII systems on identical runs",
      "cascade performs more row movement (log k passes) but cheaper "
      "comparisons; k-way touches rows once but pays heap comparisons — "
      "cascade wins as k grows on cheap keys");

  const uint64_t n = bench::EnvRows("ROWSORT_MERGE_ABL_ROWS", 2'000'000);
  Table input = MakeShuffledIntegerTable(n, 31);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});

  std::printf("rows = %s, single int32 key\n\n", FormatCount(n).c_str());
  std::printf("%6s %14s %14s %18s %18s\n", "runs", "cascade", "k-way",
              "cascade compares", "k-way compares");
  for (uint64_t k : {4, 16, 64, 256}) {
    double times[2];
    uint64_t compares[2];
    for (int strategy = 0; strategy < 2; ++strategy) {
      SortEngineConfig config;
      config.run_size_rows = (n + k - 1) / k;
      config.use_kway_merge = strategy == 1;
      config.count_comparisons = true;  // forces the comparison-sort path
      SortMetrics metrics;
      times[strategy] = bench::MedianSeconds(
          [&] { RelationalSort::SortTable(input, spec, config, &metrics); });
      compares[strategy] = metrics.merge_compares;
    }
    std::printf("%6llu %13.3fs %13.3fs %18s %18s\n", (unsigned long long)k,
                times[0], times[1], FormatCount(compares[0]).c_str(),
                FormatCount(compares[1]).c_str());
    std::fflush(stdout);
  }
  std::printf("\n(times include run generation, identical for both; the "
              "difference is the merge phase)\n");
  return 0;
}
