// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/timer.h"

namespace rowsort {
namespace bench {

/// Repetitions per measurement; the paper repeats each experiment five times
/// and reports the median (§III-B). Override with ROWSORT_BENCH_REPS.
inline int Repetitions() {
  const char* env = std::getenv("ROWSORT_BENCH_REPS");
  if (env != nullptr) return std::max(1, std::atoi(env));
  return 3;
}

/// Global size scale for the sweeps. The paper ran on a 48-core 384 GB
/// machine; defaults here target a small machine. Override the log2 of the
/// largest micro-benchmark row count with ROWSORT_BENCH_MAX_LOG2 (paper: 24).
inline uint64_t MaxRowsLog2(uint64_t default_log2 = 20) {
  const char* env = std::getenv("ROWSORT_BENCH_MAX_LOG2");
  if (env != nullptr) return std::max(12, std::atoi(env));
  return default_log2;
}

/// Row count override for the end-to-end benchmarks (Figs. 12-14).
inline uint64_t EnvRows(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) return std::strtoull(env, nullptr, 10);
  return fallback;
}

/// Times \p fn Repetitions() times and returns the median seconds.
template <typename Fn>
double MedianSeconds(Fn&& fn) {
  int reps = Repetitions();
  std::vector<double> times;
  times.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    fn();
    times.push_back(timer.ElapsedSeconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Prints the standard bench header naming the paper artifact.
inline void PrintHeader(const char* artifact, const char* description,
                        const char* expectation) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("Paper: \"These Rows Are Made for Sorting and That's Just What\n");
  std::printf("       We'll Do\" (Kuiper & Muehleisen, ICDE 2023)\n");
  std::printf("Expected shape: %s\n", expectation);
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace rowsort
