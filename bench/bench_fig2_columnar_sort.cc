// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Fig. 2: relative runtime (higher is better) of the subsort approach
// compared to the tuple-at-a-time approach on a columnar data format, with
// introsort (the paper's std::sort).
#include "approach_timers.h"

using namespace rowsort;
using namespace rowsort::bench;

int main() {
  PrintHeader("Figure 2",
              "columnar: subsort vs tuple-at-a-time (introsort)",
              "~1.0 for Random and 1 key column; subsort increasingly "
              "faster with more rows/columns on Correlated distributions");
  SweepAxes axes;
  PrintRelativeTable(axes, "subsort", "tuple-at-a-time",
                     TimeColumnarSubsort(BaseSortAlgo::kIntroSort),
                     TimeColumnarTuple(BaseSortAlgo::kIntroSort));
  return 0;
}
