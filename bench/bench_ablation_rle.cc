// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// §II background claim: sorting is used "implicitly for many purposes such
// as ... improving run-length encoding compression". Measures RLE run
// counts and hypothetical compressed sizes before/after sorting TPC-DS
// catalog_sales by its key columns.
#include <cstdio>

#include "bench_util.h"
#include "engine/sort_engine.h"
#include "workload/rle.h"
#include "workload/tpcds.h"

using namespace rowsort;

int main() {
  bench::PrintHeader(
      "Ablation: sorting for RLE compression (§II)",
      "run counts of catalog_sales key columns before/after ORDER BY",
      "sorted lead column collapses to one run per distinct value; later "
      "key columns improve progressively less");

  TpcdsScale scale;
  scale.scale_factor = 1;
  scale.scale_divisor = bench::EnvRows("ROWSORT_RLE_DIVISOR", 2);
  Table table = MakeCatalogSales(scale);
  SortSpec spec({SortColumn(0, TypeId::kInt32), SortColumn(1, TypeId::kInt32),
                 SortColumn(2, TypeId::kInt32),
                 SortColumn(3, TypeId::kInt32)});
  Table sorted = RelationalSort::SortTable(table, spec).ValueOrDie();

  std::printf("rows = %s, ORDER BY cs_warehouse_sk, cs_ship_mode_sk, "
              "cs_promo_sk, cs_quantity\n\n",
              FormatCount(table.row_count()).c_str());
  std::printf("%-18s %14s %14s %10s\n", "column", "runs before",
              "runs after", "ratio");
  const char* names[] = {"cs_warehouse_sk", "cs_ship_mode_sk", "cs_promo_sk",
                         "cs_quantity", "cs_item_sk"};
  for (uint64_t c = 0; c < 5; ++c) {
    uint64_t before = CountRuns(table, c);
    uint64_t after = CountRuns(sorted, c);
    std::printf("%-18s %14s %14s %9.1fx\n", names[c],
                FormatCount(before).c_str(), FormatCount(after).c_str(),
                double(before) / double(std::max<uint64_t>(after, 1)));
  }
  return 0;
}
