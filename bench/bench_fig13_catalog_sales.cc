// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Fig. 13: execution times (lower is better) of sorting 1 to 4 key columns
// (cs_warehouse_sk, cs_ship_mode_sk, cs_promo_sk, cs_quantity) of the
// TPC-DS catalog_sales table, selecting cs_item_sk, at scale factors 10 and
// 100 (row counts scaled down by ROWSORT_FIG13_DIVISOR, default 20).
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "systems/system.h"
#include "workload/tpcds.h"

using namespace rowsort;

int main() {
  bench::PrintHeader(
      "Figure 13", "end-to-end: TPC-DS catalog_sales, 1-4 key columns",
      "MonetDB-like ~3x slower at 4 keys vs 1; ClickHouse-like drops ~4x "
      "from 1 to 2 keys (loses its radix fast path); row-based systems "
      "degrade least, with Umbra-like degrading more than DuckDB/HyPer-like");

  const uint64_t divisor = bench::EnvRows("ROWSORT_FIG13_DIVISOR", 20);
  const uint64_t threads = bench::EnvRows(
      "ROWSORT_THREADS", std::max(1u, std::thread::hardware_concurrency()));
  auto systems = MakeAllSystems(threads);

  for (int sf : {10, 100}) {
    TpcdsScale scale;
    scale.scale_factor = sf;
    scale.scale_divisor = divisor;
    Table table = MakeCatalogSales(scale);
    std::printf("\n--- scale factor %d (%s rows, divisor %llu) ---\n", sf,
                FormatCount(table.row_count()).c_str(),
                (unsigned long long)divisor);
    std::printf("%10s", "key cols");
    for (auto& s : systems) std::printf(" %16s", s->name().c_str());
    std::printf("\n");
    for (uint64_t keys = 1; keys <= 4; ++keys) {
      std::vector<SortColumn> sort_columns;
      for (uint64_t k = 0; k < keys; ++k) {
        sort_columns.emplace_back(k, TypeId::kInt32);
      }
      SortSpec spec(sort_columns);
      std::printf("%10llu", (unsigned long long)keys);
      for (auto& s : systems) {
        double seconds = bench::MedianSeconds([&] { s->Sort(table, spec); });
        std::printf(" %15.3fs", seconds);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
