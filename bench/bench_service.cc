// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Multi-tenant SortService under a production-shaped mixed-operator profile
// (docs/service.md): an interactive fleet of small sorts and express-lane
// Top-Ns, a mid-tier of window and merge-join queries, and a handful of
// spilling sort giants — all racing over one shared ThreadPool and one
// global memory budget, with 1% transient spill-I/O faults armed and a
// slice of requests carrying deadlines tight enough to kill them. Reports
// per-operator-class p50/p99 latency, service throughput, admission-queue
// and express-lane pressure, victim-spill activity, and shed rates — the
// overload-graceful-degradation story in numbers. The number to watch:
// Top-N p99 stays bounded (express lane) no matter what the giants do.
//
// Set ROWSORT_BENCH_JSON=<path> to emit BENCH_service.json (see
// tools/run_service_stress.sh, which tracks and validates it).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/failpoint.h"
#include "common/histogram.h"
#include "common/random.h"
#include "service/sort_service.h"
#include "workload/tables.h"

using namespace rowsort;

namespace {

Table MakeWorkload(uint64_t rows, uint64_t key_range, uint64_t seed) {
  LogicalType i32(TypeId::kInt32), i64(TypeId::kInt64);
  Table table({i32, i64});
  Random rng(seed);
  uint64_t produced = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = table.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      chunk.SetValue(
          0, r, Value::Int32(static_cast<int32_t>(rng.Uniform(key_range))));
      chunk.SetValue(1, r,
                     Value::Int64(static_cast<int64_t>(produced + r)));
    }
    chunk.SetSize(n);
    table.Append(std::move(chunk));
    produced += n;
  }
  return table;
}

/// Outcome tally for one operator class of the mix.
struct ClassStats {
  std::mutex mutex;
  DurationHistogram latency_ns;  ///< wall time of OK requests
  uint64_t ok = 0;
  uint64_t shed = 0;      ///< ResourceExhausted
  uint64_t killed = 0;    ///< DeadlineExceeded / Cancelled
  uint64_t io_error = 0;  ///< transient-fault losses (IOError / OOM)

  void Record(const Status& status, uint64_t ns) {
    std::lock_guard<std::mutex> lock(mutex);
    if (status.ok()) {
      ok += 1;
      latency_ns.Record(ns);
    } else if (status.code() == StatusCode::kResourceExhausted) {
      shed += 1;
    } else if (status.IsCancellation()) {
      killed += 1;
    } else {
      io_error += 1;
    }
  }
};

void PrintClass(const char* name, ClassStats& c) {
  std::printf("%-7s %6llu ok %5llu shed %5llu killed %5llu io-err | "
              "p50 %8.3f ms  p99 %8.3f ms  max %8.3f ms\n",
              name, (unsigned long long)c.ok, (unsigned long long)c.shed,
              (unsigned long long)c.killed, (unsigned long long)c.io_error,
              c.latency_ns.QuantileUpperNs(0.5) * 1e-6,
              c.latency_ns.QuantileUpperNs(0.99) * 1e-6,
              c.latency_ns.max_ns() * 1e-6);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "BENCH_service",
      "multi-tenant SortService, mixed-operator mix: express Top-Ns and "
      "small sorts vs. window/join mid-tier vs. spilling sort giants under "
      "one global budget, with 1% I/O faults and deadline kills",
      "every request completes, sheds with ResourceExhausted, or dies on "
      "its deadline; Top-N p99 stays bounded via the express lane while "
      "giants spill");

  // Interactive fleet size; split 5:3:1:1 into small sorts, express
  // Top-Ns, windows, and merge joins.
  const uint64_t kInteractive =
      bench::EnvRows("ROWSORT_SERVICE_SMALL_SORTS", 1000);
  const uint64_t kGiants = bench::EnvRows("ROWSORT_SERVICE_GIANTS", 4);
  const uint64_t kSmallRows = 4000;
  const uint64_t kGiantRows =
      bench::EnvRows("ROWSORT_SERVICE_GIANT_ROWS", 400000);
  const uint64_t kClients = 8;

  Table small_input = MakeWorkload(kSmallRows, 1u << 30, 7);
  Table giant_input = MakeWorkload(kGiantRows, 1u << 30, 8);
  Table topn_input = MakeWorkload(100000, 1u << 30, 9);
  // Over the express ceiling by design: windows and joins are mid-tier
  // traffic and take general slots.
  Table window_input = MakeWorkload(100000, 1u << 10, 10);
  Table join_left = MakeWorkload(50000, 1u << 16, 11);
  Table join_right = MakeWorkload(50000, 1u << 16, 12);

  SortSpec spec({SortColumn(0, TypeId::kInt32)});
  WindowSpec wspec;
  wspec.partition_by = {0};
  wspec.order_by = {SortColumn(1, TypeId::kInt64)};

  std::filesystem::path spill_dir =
      std::filesystem::temp_directory_path() / "rowsort_bench_service";
  std::filesystem::create_directories(spill_dir);

  // Budget = one giant's rough footprint: the giants cannot all be resident,
  // so victim spilling must arbitrate between them while the interactive
  // fleet squeezes through underneath.
  SortServiceConfig config;
  config.memory_limit_bytes = kGiantRows * 24;
  // Fewer slots than clients: the admission queue is always in play, so
  // the queue-depth and queue-wait numbers below measure something real.
  // The express lane (default 2 slots) is where the Top-Ns ride.
  config.max_running = 6;
  config.max_queued = 128;
  config.queue_wait_limit_ms = 30000;
  config.tenant_max_running = 6;
  config.pool_stats = true;
  // ROWSORT_SERVICE_TELEMETRY=0 turns the registry/collector/flight
  // recorder off — tools/run_service_stress.sh runs both modes and compares
  // p50s to hold the disabled-telemetry overhead under its budget.
  const bool telemetry_on =
      bench::EnvRows("ROWSORT_SERVICE_TELEMETRY", 1) != 0;
  config.telemetry = telemetry_on;
  config.telemetry_sample_interval_ms = 50;
  // Sized so the storm below cannot wrap the ring: the flight-vs-ledger
  // cross-check wants every decision retained.
  config.flight_recorder_capacity = 1 << 16;
  SortService service(config);

  if (failpoint::Enabled()) {
    failpoint::ArmProbabilistic("external_run_read_eintr", 0.01, 11);
    failpoint::ArmProbabilistic("external_run_write_short", 0.01, 13);
  }

  ClassStats small_stats, topn_stats, window_stats, join_stats, giant_stats;
  std::atomic<uint64_t> next_interactive{0};
  std::atomic<uint64_t> next_giant{0};
  using Clock = std::chrono::steady_clock;
  const Clock::time_point bench_start = Clock::now();

  // A concurrent scraper at well over 10 Hz: the contention-free
  // StatsSnapshot must show monotone counters and balanced ledgers in every
  // mid-storm sample, and the Prometheus exposition must stay serviceable.
  std::atomic<bool> storm_done{false};
  std::atomic<uint64_t> scrapes{0};
  std::atomic<uint64_t> scrape_violations{0};
  std::thread scraper([&] {
    SortServiceStats last;
    while (!storm_done.load()) {
      const SortServiceStats now = service.StatsSnapshot();
      const uint64_t shed = now.shed_queue_full + now.shed_wait_budget +
                            now.shed_queued_cancel;
      if (now.requests < now.admitted + shed) scrape_violations.fetch_add(1);
      if (now.admitted < now.completed + now.failed + now.cancelled) {
        scrape_violations.fetch_add(1);
      }
      if (now.requests < last.requests || now.admitted < last.admitted ||
          now.completed < last.completed) {
        scrape_violations.fetch_add(1);
      }
      last = now;
      if (telemetry_on && scrapes.load() % 8 == 0 &&
          service.ExportMetricsText().empty()) {
        scrape_violations.fetch_add(1);
      }
      scrapes.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  std::vector<std::thread> clients;
  for (uint64_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      while (true) {
        // Giants drain first so they overlap the interactive fleet; two
        // client threads carry them, the rest stay on interactive traffic.
        const uint64_t g = t < 2 ? next_giant.fetch_add(1) : kGiants;
        if (g < kGiants) {
          OperatorRequest request;
          request.op = OperatorKind::kSort;
          request.spec = spec;
          request.tenant = "analytics";
          request.priority = TaskPriority::kLow;
          request.engine.run_size_rows = 1 << 15;
          request.engine.spill_directory = spill_dir.string();
          const Clock::time_point start = Clock::now();
          auto result = service.Submit(giant_input, request);
          giant_stats.Record(
              result.ok() ? Status::OK() : result.status(),
              static_cast<uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - start)
                      .count()));
          continue;
        }
        const uint64_t q = next_interactive.fetch_add(1);
        if (q >= kInteractive) break;
        OperatorRequest request;
        request.tenant = "tenant-" + std::to_string(q % 4);
        request.priority =
            q % 4 == 0 ? TaskPriority::kHigh : TaskPriority::kNormal;
        request.engine.run_size_rows = 1 << 15;
        request.engine.spill_directory = spill_dir.string();
        // A ~6% slice carries a deadline tight enough to die under load —
        // 17 is coprime with the operator-mix modulus, so the kills land
        // on every operator class, not just one residue.
        if (q % 17 == 13) request.deadline = Deadline::AfterMillis(2);

        ClassStats* cls = nullptr;
        const Clock::time_point start = Clock::now();
        StatusOr<Table> result = Status::Internal("not yet submitted");
        switch (q % 10) {
          case 5:
          case 6:
          case 7:  // express Top-N: bounded working set over a big input
            request.op = OperatorKind::kTopN;
            request.spec = spec;
            request.limit = 100;
            cls = &topn_stats;
            result = service.Submit(topn_input, request);
            break;
          case 8:  // mid-tier window
            request.op = OperatorKind::kWindow;
            request.window = wspec;
            request.functions = {WindowFunction::kRank};
            cls = &window_stats;
            result = service.Submit(window_input, request);
            break;
          case 9:  // mid-tier merge join (binary)
            request.op = OperatorKind::kMergeJoin;
            request.keys = {{0, 0}};
            cls = &join_stats;
            result = service.Submit(join_left, join_right, request);
            break;
          default:  // small interactive sort
            request.op = OperatorKind::kSort;
            request.spec = spec;
            cls = &small_stats;
            result = service.Submit(small_input, request);
            break;
        }
        cls->Record(result.ok() ? Status::OK() : result.status(),
                    static_cast<uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            Clock::now() - start)
                            .count()));
      }
    });
  }
  for (auto& c : clients) c.join();
  storm_done.store(true);
  scraper.join();
  failpoint::DisarmAll();
  const double wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(Clock::now() -
                                                                bench_start)
          .count();

  const SortServiceStats stats = service.StatsSnapshot();
  const ThreadPoolStatsSnapshot pool = service.PoolStatsSnapshot();
  const double throughput =
      (stats.completed) / (wall_seconds > 0 ? wall_seconds : 1.0);

  PrintClass("small", small_stats);
  PrintClass("topn", topn_stats);
  PrintClass("window", window_stats);
  PrintClass("join", join_stats);
  PrintClass("giant", giant_stats);
  std::printf(
      "service: %llu requests, %llu completed (%.0f/s), %llu shed "
      "(%llu queue-full, %llu wait-budget, %llu queued-cancel)\n",
      (unsigned long long)stats.requests,
      (unsigned long long)stats.completed, throughput,
      (unsigned long long)(stats.shed_queue_full + stats.shed_wait_budget +
                           stats.shed_queued_cancel),
      (unsigned long long)stats.shed_queue_full,
      (unsigned long long)stats.shed_wait_budget,
      (unsigned long long)stats.shed_queued_cancel);
  std::printf(
      "pressure: queue depth high-water %llu, running high-water %llu "
      "(+%llu express, %llu express admissions), queue wait p99 %.3f ms, "
      "victim spills %llu (%.1f MiB freed), pool queue high-water %llu\n",
      (unsigned long long)stats.max_queue_depth,
      (unsigned long long)stats.max_running,
      (unsigned long long)stats.max_express_running,
      (unsigned long long)stats.express_admitted,
      stats.queue_wait_ns.QuantileUpperNs(0.99) * 1e-6,
      (unsigned long long)stats.victim_spills,
      stats.victim_bytes_freed / (1024.0 * 1024.0),
      (unsigned long long)pool.max_queue_depth);
  for (uint64_t i = 0; i < kOperatorKindCount; ++i) {
    const OperatorClassStats& oc = stats.op_class[i];
    if (oc.requests == 0) continue;
    std::printf("op %-10s %5llu req %5llu adm %4llu shed | %5llu ok "
                "%4llu failed %4llu cancelled\n",
                OperatorKindName(static_cast<OperatorKind>(i)),
                (unsigned long long)oc.requests,
                (unsigned long long)oc.admitted, (unsigned long long)oc.shed,
                (unsigned long long)oc.completed,
                (unsigned long long)oc.failed,
                (unsigned long long)oc.cancelled);
  }

  // Flight-recorder reconstruction cross-check (telemetry on): every shed,
  // victim-spill, and admission decision the ledger counted must exist as a
  // structured event — the ring was sized not to wrap during the storm.
  uint64_t flight_recorded = 0, flight_dropped = 0;
  uint64_t flight_sheds = 0, flight_victims = 0, flight_admits = 0;
  uint64_t flight_victim_bytes = 0;
  uint64_t collector_samples = 0;
  bool flight_consistent = true;
  const uint64_t shed_total = stats.shed_queue_full + stats.shed_wait_budget +
                              stats.shed_queued_cancel;
  if (telemetry_on) {
    FlightRecorder* flight = service.flight_recorder();
    flight_recorded = flight->recorded();
    flight_dropped = flight->dropped();
    for (const FlightEventView& event : flight->Snapshot()) {
      switch (event.kind) {
        case FlightEventKind::kShed:
          ++flight_sheds;
          break;
        case FlightEventKind::kVictimSpill:
          ++flight_victims;
          // Victim events carry the bytes the governor freed; the sum must
          // reconcile with the ledger's victim_bytes_freed even when the
          // spilled runs themselves were compressed (freed bytes are
          // accounted at the MemoryTracker, not at the file).
          flight_victim_bytes += event.bytes;
          break;
        case FlightEventKind::kAdmit:
          ++flight_admits;
          break;
        default:
          break;
      }
    }
    collector_samples = service.metrics_registry()->samples_taken();
    flight_consistent = flight_dropped == 0 && flight_sheds == shed_total &&
                        flight_victims == stats.victim_spills &&
                        flight_victim_bytes == stats.victim_bytes_freed &&
                        flight_admits == stats.admitted;
    std::printf(
        "telemetry: %llu scrapes (%llu violations), %llu collector samples, "
        "flight %llu events (%llu dropped); shed/victim/admit "
        "reconstruction %s\n",
        (unsigned long long)scrapes.load(),
        (unsigned long long)scrape_violations.load(),
        (unsigned long long)collector_samples,
        (unsigned long long)flight_recorded,
        (unsigned long long)flight_dropped,
        flight_consistent ? "consistent" : "INCONSISTENT");
  } else {
    std::printf(
        "telemetry: disabled (ROWSORT_SERVICE_TELEMETRY=0); %llu scrapes "
        "(%llu violations)\n",
        (unsigned long long)scrapes.load(),
        (unsigned long long)scrape_violations.load());
  }
  if (scrape_violations.load() != 0 || !flight_consistent) {
    std::fprintf(stderr, "telemetry consistency check failed\n");
    return 1;
  }
  // ROWSORT_METRICS_TEXT=<path>: dump the final Prometheus exposition for
  // tools/check_prometheus.py (the stress script lints it).
  const char* metrics_path = std::getenv("ROWSORT_METRICS_TEXT");
  if (telemetry_on && metrics_path != nullptr && metrics_path[0] != '\0') {
    std::FILE* mf = std::fopen(metrics_path, "w");
    if (mf == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path);
      return 1;
    }
    const std::string text = service.ExportMetricsText();
    std::fwrite(text.data(), 1, text.size(), mf);
    std::fclose(mf);
    std::printf("wrote %s\n", metrics_path);
  }

  if (service.memory_tracker().reserved() != 0) {
    std::fprintf(stderr, "leaked reservations: %llu bytes\n",
                 (unsigned long long)service.memory_tracker().reserved());
    return 1;
  }
  uint64_t leftover = 0;
  for (auto it = std::filesystem::directory_iterator(spill_dir);
       it != std::filesystem::directory_iterator(); ++it) {
    ++leftover;
  }
  std::filesystem::remove_all(spill_dir);
  if (leftover != 0) {
    std::fprintf(stderr, "leaked spill files: %llu\n",
                 (unsigned long long)leftover);
    return 1;
  }

  const char* json_path = std::getenv("ROWSORT_BENCH_JSON");
  if (json_path != nullptr && json_path[0] != '\0') {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    auto emit_class = [&](const char* name, ClassStats& c, bool last) {
      std::fprintf(
          f,
          "    \"%s\": {\"ok\": %llu, \"shed\": %llu, \"killed\": %llu, "
          "\"io_error\": %llu, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
          "\"max_ms\": %.3f}%s\n",
          name, (unsigned long long)c.ok, (unsigned long long)c.shed,
          (unsigned long long)c.killed, (unsigned long long)c.io_error,
          c.latency_ns.QuantileUpperNs(0.5) * 1e-6,
          c.latency_ns.QuantileUpperNs(0.99) * 1e-6,
          c.latency_ns.max_ns() * 1e-6, last ? "" : ",");
    };
    std::fprintf(f, "{\n  \"classes\": {\n");
    emit_class("small", small_stats, false);
    emit_class("topn", topn_stats, false);
    emit_class("window", window_stats, false);
    emit_class("join", join_stats, false);
    emit_class("giant", giant_stats, true);
    std::fprintf(f, "  },\n  \"operators\": {\n");
    for (uint64_t i = 0; i < kOperatorKindCount; ++i) {
      const OperatorClassStats& oc = stats.op_class[i];
      std::fprintf(
          f,
          "    \"%s\": {\"requests\": %llu, \"admitted\": %llu, "
          "\"shed\": %llu, \"completed\": %llu, \"failed\": %llu, "
          "\"cancelled\": %llu}%s\n",
          OperatorKindName(static_cast<OperatorKind>(i)),
          (unsigned long long)oc.requests, (unsigned long long)oc.admitted,
          (unsigned long long)oc.shed, (unsigned long long)oc.completed,
          (unsigned long long)oc.failed, (unsigned long long)oc.cancelled,
          i + 1 == kOperatorKindCount ? "" : ",");
    }
    std::fprintf(
        f,
        "  },\n"
        "  \"service\": {\"requests\": %llu, \"admitted\": %llu, "
        "\"completed\": %llu, \"failed\": %llu, \"cancelled\": %llu, "
        "\"shed_queue_full\": %llu, \"shed_wait_budget\": %llu, "
        "\"shed_queued_cancel\": %llu, \"victim_spills\": %llu, "
        "\"victim_bytes_freed\": %llu, \"max_queue_depth\": %llu, "
        "\"max_running\": %llu, \"express_admitted\": %llu, "
        "\"max_express_running\": %llu, \"queue_wait_p99_ms\": %.3f, "
        "\"throughput_per_s\": %.1f, \"wall_seconds\": %.3f},\n",
        (unsigned long long)stats.requests,
        (unsigned long long)stats.admitted,
        (unsigned long long)stats.completed,
        (unsigned long long)stats.failed,
        (unsigned long long)stats.cancelled,
        (unsigned long long)stats.shed_queue_full,
        (unsigned long long)stats.shed_wait_budget,
        (unsigned long long)stats.shed_queued_cancel,
        (unsigned long long)stats.victim_spills,
        (unsigned long long)stats.victim_bytes_freed,
        (unsigned long long)stats.max_queue_depth,
        (unsigned long long)stats.max_running,
        (unsigned long long)stats.express_admitted,
        (unsigned long long)stats.max_express_running,
        stats.queue_wait_ns.QuantileUpperNs(0.99) * 1e-6, throughput,
        wall_seconds);
    std::fprintf(
        f,
        "  \"telemetry\": {\"enabled\": %s, \"scrapes\": %llu, "
        "\"scrape_violations\": %llu, \"collector_samples\": %llu, "
        "\"flight_recorded\": %llu, \"flight_dropped\": %llu, "
        "\"flight_sheds\": %llu, \"flight_victim_spills\": %llu, "
        "\"flight_victim_bytes\": %llu, "
        "\"flight_admits\": %llu, \"flight_consistent\": %s},\n",
        telemetry_on ? "true" : "false", (unsigned long long)scrapes.load(),
        (unsigned long long)scrape_violations.load(),
        (unsigned long long)collector_samples,
        (unsigned long long)flight_recorded,
        (unsigned long long)flight_dropped, (unsigned long long)flight_sheds,
        (unsigned long long)flight_victims,
        (unsigned long long)flight_victim_bytes,
        (unsigned long long)flight_admits,
        flight_consistent ? "true" : "false");
    std::fprintf(
        f,
        "  \"pool\": {\"tasks_executed\": %llu, \"tasks_skipped\": %llu, "
        "\"max_queue_depth\": %llu, \"tasks_high\": %llu, "
        "\"tasks_normal\": %llu, \"tasks_low\": %llu}\n}\n",
        (unsigned long long)pool.tasks_executed,
        (unsigned long long)pool.tasks_skipped,
        (unsigned long long)pool.max_queue_depth,
        (unsigned long long)pool.tasks_per_priority[0],
        (unsigned long long)pool.tasks_per_priority[1],
        (unsigned long long)pool.tasks_per_priority[2]);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  }
  return 0;
}
