// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Fig. 14: execution times (lower is better) of sorting the TPC-DS customer
// table by three INTEGER columns (c_birth_year, c_birth_month, c_birth_day)
// vs two VARCHAR columns (c_last_name, c_first_name), selecting
// c_customer_sk, at scale factors 100 and 300 (row counts scaled down by
// ROWSORT_FIG14_DIVISOR, default 4).
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "systems/system.h"
#include "workload/tpcds.h"

using namespace rowsort;

int main() {
  bench::PrintHeader(
      "Figure 14", "end-to-end: TPC-DS customer, integer vs string keys",
      "strings slower than integers for every system; ~3x for the columnar "
      "systems (ClickHouse/MonetDB-like), much smaller for the row-based "
      "ones");

  const uint64_t divisor = bench::EnvRows("ROWSORT_FIG14_DIVISOR", 4);
  const uint64_t threads = bench::EnvRows(
      "ROWSORT_THREADS", std::max(1u, std::thread::hardware_concurrency()));
  auto systems = MakeAllSystems(threads);

  for (int sf : {100, 300}) {
    TpcdsScale scale;
    scale.scale_factor = sf;
    scale.scale_divisor = divisor;
    Table table = MakeCustomer(scale);
    std::printf("\n--- scale factor %d (%s rows, divisor %llu) ---\n", sf,
                FormatCount(table.row_count()).c_str(),
                (unsigned long long)divisor);
    std::printf("%10s", "keys");
    for (auto& s : systems) std::printf(" %16s", s->name().c_str());
    std::printf("\n");

    SortSpec integer_spec({SortColumn(1, TypeId::kInt32),
                           SortColumn(2, TypeId::kInt32),
                           SortColumn(3, TypeId::kInt32)});
    SortSpec string_spec({SortColumn(4, TypeId::kVarchar),
                          SortColumn(5, TypeId::kVarchar)});
    for (const auto& [label, spec] :
         {std::pair<const char*, const SortSpec*>{"integer", &integer_spec},
          std::pair<const char*, const SortSpec*>{"string", &string_spec}}) {
      std::printf("%10s", label);
      for (auto& s : systems) {
        double seconds =
            bench::MedianSeconds([&] { s->Sort(table, *spec); });
        std::printf(" %15.3fs", seconds);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
