// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Table III: L1 cache misses and branch mispredictions of sorting the row
// (R) data format with the tuple-at-a-time (T) and subsort (S) approaches,
// Correlated0.5 distribution, 4 key columns, introsort — plus the columnar
// numbers for the order-of-magnitude comparison the paper draws in §IV-B.
#include <cstdio>

#include "bench_util.h"
#include "perfmodel/counters.h"

using namespace rowsort;

int main() {
  bench::PrintHeader(
      "Table III", "counters: row tuple-at-a-time vs subsort",
      "row format has ~an order of magnitude fewer cache misses than "
      "columnar; row subsort has fewer branch misses but slightly more "
      "cache misses than row tuple-at-a-time");

  const uint64_t log2 = bench::MaxRowsLog2(17);
  MicroWorkload w;
  w.num_rows = uint64_t(1) << log2;
  w.num_key_columns = 4;
  w.distribution = MicroDistribution::kCorrelated;
  w.correlation = 0.5;
  auto columns = GenerateMicroColumns(w);

  std::printf("rows = 2^%llu, 4 key columns, Correlated0.5\n\n",
              (unsigned long long)log2);
  std::printf("%-28s %16s %16s\n", "approach", "L1 misses", "branch misses");

  PerfCounters row_tuple = CountRowTupleAtATime(columns);
  std::printf("%-28s %16s %16s\n", "row tuple-at-a-time (RT)",
              FormatCount(row_tuple.cache_misses).c_str(),
              FormatCount(row_tuple.branch_misses).c_str());
  PerfCounters row_subsort = CountRowSubsort(columns);
  std::printf("%-28s %16s %16s\n", "row subsort (RS)",
              FormatCount(row_subsort.cache_misses).c_str(),
              FormatCount(row_subsort.branch_misses).c_str());
  PerfCounters col_tuple = CountColumnarTupleAtATime(columns);
  std::printf("%-28s %16s %16s   (Table II ref)\n",
              "columnar tuple-at-a-time",
              FormatCount(col_tuple.cache_misses).c_str(),
              FormatCount(col_tuple.branch_misses).c_str());

  std::printf("\ncolumnar/row cache-miss ratio: %.1fx (paper: ~an order of "
              "magnitude)\n",
              double(col_tuple.cache_misses) /
                  double(std::max<uint64_t>(row_tuple.cache_misses, 1)));
  return 0;
}
