// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Ablation (Future Work §IX ¶1): "pdqsort could be used within the
// recursive calls to MSD radix sort, which may improve sorting performance
// even further." Compares plain MSD (insertion sort for buckets <= 24)
// against MSD that hands buckets <= threshold to pdqsort-with-memcmp.
#include <cstdio>
#include <vector>

#include "approaches/approaches.h"
#include "bench_util.h"
#include "sortalgo/radix_sort.h"

using namespace rowsort;

namespace {

double TimeMsd(const NormalizedRows& prototype, bool with_pdq,
               uint64_t threshold) {
  return bench::MedianSeconds([&] {
    NormalizedRows rows = prototype;
    std::vector<uint8_t> aux(rows.buffer.size());
    RadixSortConfig config{rows.row_width, 0, rows.key_width};
    if (with_pdq) {
      RadixSortMsdWithPdq(rows.buffer.data(), aux.data(), rows.count, config,
                          threshold);
    } else {
      RadixSortMsd(rows.buffer.data(), aux.data(), rows.count, config);
    }
  });
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: pdqsort inside MSD radix recursion (Future Work §IX)",
      "MSD+insertion(24) vs MSD+pdqsort at several bucket thresholds",
      "larger pdqsort thresholds cut counting passes on small buckets; "
      "gains are workload-dependent");

  const uint64_t log2 = bench::MaxRowsLog2(20);
  std::printf("%-18s %5s %12s %12s %12s %12s\n", "distribution", "cols",
              "insertion24", "pdq@64", "pdq@512", "pdq@4096");
  struct Dist {
    MicroDistribution d;
    double p;
  };
  for (Dist dist : {Dist{MicroDistribution::kRandom, 0.0},
                    Dist{MicroDistribution::kCorrelated, 0.5},
                    Dist{MicroDistribution::kCorrelated, 1.0}}) {
    for (uint64_t cols : {2ull, 4ull}) {
      MicroWorkload w;
      w.num_rows = uint64_t(1) << log2;
      w.num_key_columns = cols;
      w.distribution = dist.d;
      w.correlation = dist.p;
      auto columns = GenerateMicroColumns(w);
      NormalizedRows prototype = BuildNormalizedRows(columns);
      std::printf("%-18s %5llu", w.Label().c_str(), (unsigned long long)cols);
      std::printf(" %11.4fs", TimeMsd(prototype, false, 0));
      for (uint64_t threshold : {64ull, 512ull, 4096ull}) {
        std::printf(" %11.4fs", TimeMsd(prototype, true, threshold));
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
