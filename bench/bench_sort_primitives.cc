// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// google-benchmark microbenchmarks of the from-scratch sorting primitives:
// a sanity layer under the figure-level harnesses (are the base algorithms
// in a healthy performance relationship to each other?).
#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "row/row_collection.h"
#include "sortalgo/intro_sort.h"
#include "sortalgo/merge_sort.h"
#include "sortalgo/pdq_sort.h"
#include "sortalgo/radix_sort.h"
#include "sortalgo/row_sort.h"
#include "sortkey/key_encoder.h"
#include "workload/microbench.h"

namespace rowsort {
namespace {

std::vector<uint32_t> RandomData(uint64_t n, uint64_t seed = 9) {
  Random rng(seed);
  std::vector<uint32_t> data(n);
  for (auto& v : data) v = rng.Next32();
  return data;
}

void BM_IntroSortU32(benchmark::State& state) {
  auto source = RandomData(state.range(0));
  for (auto _ : state) {
    auto data = source;
    IntroSort(data.begin(), data.end());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IntroSortU32)->Range(1 << 12, 1 << 20);

void BM_PdqSortU32(benchmark::State& state) {
  auto source = RandomData(state.range(0));
  for (auto _ : state) {
    auto data = source;
    PdqSortBranchless(data.begin(), data.end(),
                      [](uint32_t a, uint32_t b) { return a < b; });
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PdqSortU32)->Range(1 << 12, 1 << 20);

void BM_PdqSortU32AllEqual(benchmark::State& state) {
  std::vector<uint32_t> source(state.range(0), 42);
  for (auto _ : state) {
    auto data = source;
    PdqSortBranchless(data.begin(), data.end(),
                      [](uint32_t a, uint32_t b) { return a < b; });
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PdqSortU32AllEqual)->Range(1 << 12, 1 << 20);

void BM_StableMergeSortU32(benchmark::State& state) {
  auto source = RandomData(state.range(0));
  for (auto _ : state) {
    auto data = source;
    StableMergeSort(data.begin(), data.end());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StableMergeSortU32)->Range(1 << 12, 1 << 20);

void BM_RadixSortRows16(benchmark::State& state) {
  const uint64_t n = state.range(0);
  const uint64_t width = 16;
  Random rng(3);
  std::vector<uint8_t> source(n * width);
  for (auto& b : source) b = static_cast<uint8_t>(rng.Next32());
  std::vector<uint8_t> aux(source.size());
  RadixSortConfig config{width, 0, 8};
  for (auto _ : state) {
    auto rows = source;
    RadixSort(rows.data(), aux.data(), n, config);
    benchmark::DoNotOptimize(rows.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RadixSortRows16)->Range(1 << 12, 1 << 20);

void BM_PdqSortRows16Memcmp(benchmark::State& state) {
  const uint64_t n = state.range(0);
  const uint64_t width = 16;
  Random rng(3);
  std::vector<uint8_t> source(n * width);
  for (auto& b : source) b = static_cast<uint8_t>(rng.Next32());
  for (auto _ : state) {
    auto rows = source;
    PdqSortRows(rows.data(), n, width, 0, 8);
    benchmark::DoNotOptimize(rows.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PdqSortRows16Memcmp)->Range(1 << 12, 1 << 20);

// Key normalization throughput (paper §VI-A: the conversion "can be done
// efficiently ... one vector at a time, amortizing interpretation
// overhead").
void BM_NormalizeKeys4xInt32(benchmark::State& state) {
  DataChunk chunk;
  std::vector<LogicalType> types(4, LogicalType(TypeId::kInt32));
  chunk.Initialize(types);
  Random rng(5);
  for (uint64_t c = 0; c < 4; ++c) {
    auto* data = chunk.column(c).TypedData<int32_t>();
    for (uint64_t r = 0; r < kVectorSize; ++r) {
      data[r] = static_cast<int32_t>(rng.Next32());
    }
  }
  chunk.SetSize(kVectorSize);
  SortSpec spec({SortColumn(0, TypeId::kInt32), SortColumn(1, TypeId::kInt32),
                 SortColumn(2, TypeId::kInt32),
                 SortColumn(3, TypeId::kInt32)});
  NormalizedKeyEncoder encoder(spec);
  const uint64_t stride = 24;
  std::vector<uint8_t> keys(kVectorSize * stride);
  for (auto _ : state) {
    encoder.EncodeChunk(chunk, kVectorSize, keys.data(), stride);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(state.iterations() * kVectorSize);
}
BENCHMARK(BM_NormalizeKeys4xInt32);

// DSM -> NSM scatter throughput (Fig. 1 left half).
void BM_ScatterChunkToRows(benchmark::State& state) {
  std::vector<LogicalType> types = {TypeId::kInt32, TypeId::kInt64,
                                    TypeId::kDouble};
  DataChunk chunk;
  chunk.Initialize(types);
  Random rng(6);
  for (uint64_t r = 0; r < kVectorSize; ++r) {
    chunk.column(0).TypedData<int32_t>()[r] = static_cast<int32_t>(rng.Next32());
    chunk.column(1).TypedData<int64_t>()[r] = static_cast<int64_t>(rng.Next64());
    chunk.column(2).TypedData<double>()[r] = rng.NextDouble();
  }
  chunk.SetSize(kVectorSize);
  RowLayout layout(types);
  for (auto _ : state) {
    RowCollection rows(layout);
    rows.AppendChunk(chunk);
    benchmark::DoNotOptimize(rows.data());
  }
  state.SetItemsProcessed(state.iterations() * kVectorSize);
}
BENCHMARK(BM_ScatterChunkToRows);

// NSM -> DSM gather throughput (Fig. 1 right half).
void BM_GatherRowsToChunk(benchmark::State& state) {
  std::vector<LogicalType> types = {TypeId::kInt32, TypeId::kInt64,
                                    TypeId::kDouble};
  DataChunk chunk;
  chunk.Initialize(types);
  Random rng(7);
  for (uint64_t r = 0; r < kVectorSize; ++r) {
    chunk.column(0).TypedData<int32_t>()[r] = static_cast<int32_t>(rng.Next32());
    chunk.column(1).TypedData<int64_t>()[r] = static_cast<int64_t>(rng.Next64());
    chunk.column(2).TypedData<double>()[r] = rng.NextDouble();
  }
  chunk.SetSize(kVectorSize);
  RowLayout layout(types);
  RowCollection rows(layout);
  rows.AppendChunk(chunk);
  DataChunk out;
  out.Initialize(types);
  for (auto _ : state) {
    rows.GatherChunk(0, kVectorSize, &out);
    benchmark::DoNotOptimize(out.column(0).data());
  }
  state.SetItemsProcessed(state.iterations() * kVectorSize);
}
BENCHMARK(BM_GatherRowsToChunk);

}  // namespace
}  // namespace rowsort

BENCHMARK_MAIN();
