// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Fig. 10: cumulative L1 cache misses and branch mispredictions of sorting
// normalized keys (4 key columns, Correlated0.5) with a comparison sort
// using a dynamic memcmp comparator vs radix sort, via the software
// perf model (the paper used perf on 2^24 rows).
#include <cstdio>

#include "bench_util.h"
#include "perfmodel/counters.h"

using namespace rowsort;

int main() {
  bench::PrintHeader(
      "Figure 10", "counters: comparison sort vs radix on normalized keys",
      "radix sort: worse cache performance, far fewer branch "
      "mispredictions (mostly branchless algorithm)");

  const uint64_t log2 = bench::MaxRowsLog2(17);
  MicroWorkload w;
  w.num_rows = uint64_t(1) << log2;
  w.num_key_columns = 4;
  w.distribution = MicroDistribution::kCorrelated;
  w.correlation = 0.5;
  auto columns = GenerateMicroColumns(w);

  std::printf("rows = 2^%llu, 4 key columns, Correlated0.5 (paper: 2^24)\n",
              (unsigned long long)log2);
  std::printf("16-byte normalized key -> MSD radix sort selected\n\n");
  std::printf("%-32s %16s %16s\n", "algorithm", "L1 misses",
              "branch misses");

  PerfCounters cmp = CountNormalizedComparisonSort(columns);
  std::printf("%-32s %16s %16s\n", "comparison sort (dyn. memcmp)",
              FormatCount(cmp.cache_misses).c_str(),
              FormatCount(cmp.branch_misses).c_str());
  PerfCounters radix = CountNormalizedRadixSort(columns);
  std::printf("%-32s %16s %16s\n", "radix sort (MSD)",
              FormatCount(radix.cache_misses).c_str(),
              FormatCount(radix.branch_misses).c_str());

  std::printf("\ncache-miss ratio (radix/cmp):   %.2fx  (paper: radix worse)\n",
              double(radix.cache_misses) /
                  double(std::max<uint64_t>(cmp.cache_misses, 1)));
  std::printf("branch-miss ratio (cmp/radix):  %.2fx  (paper: radix much "
              "better)\n",
              double(cmp.branch_misses) /
                  double(std::max<uint64_t>(radix.branch_misses, 1)));
  return 0;
}
