// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Ablation (§VII-A): "ORDER BY ... LIMIT 1 will typically trigger a
// specialized top N operator rather than the 'normal' sort operator."
// Quantifies why: Top-N vs full sort across limits.
#include <cstdio>

#include "bench_util.h"
#include "engine/sort_engine.h"
#include "engine/top_n.h"
#include "workload/tables.h"

using namespace rowsort;

int main() {
  bench::PrintHeader(
      "Ablation: Top-N operator vs full sort (§VII-A)",
      "bounded-heap Top-N against the full pipeline",
      "Top-N wins by orders of magnitude at small N and converges to the "
      "full sort as N approaches n");

  const uint64_t n = bench::EnvRows("ROWSORT_TOPN_ROWS", 2'000'000);
  Table input = MakeShuffledIntegerTable(n, 23);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});

  double full_sort = bench::MedianSeconds(
      [&] { RelationalSort::SortTable(input, spec).ValueOrDie(); });
  std::printf("rows = %s, full sort: %.3fs\n\n", FormatCount(n).c_str(),
              full_sort);
  std::printf("%12s %12s %10s %18s\n", "limit", "top-n time", "speedup",
              "early rejected");

  for (uint64_t limit : {uint64_t(1), uint64_t(10), uint64_t(1000),
                         uint64_t(100000), n}) {
    uint64_t rejected = 0;
    double seconds = bench::MedianSeconds([&] {
      TopN top_n(spec, input.types(), limit);
      for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
        ROWSORT_CHECK_OK(top_n.Sink(input.chunk(c)));
      }
      Table result = top_n.Finalize().ValueOrDie();
      rejected = top_n.rows_rejected_early();
    });
    std::printf("%12s %11.4fs %9.1fx %18s\n", FormatCount(limit).c_str(),
                seconds, full_sort / seconds, FormatCount(rejected).c_str());
    std::fflush(stdout);
  }
  return 0;
}
