// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Table II: L1 cache misses and branch mispredictions of sorting the
// columnar (C) data format with the tuple-at-a-time (T) and subsort (S)
// approaches, Correlated0.5 distribution, 4 key columns, introsort.
//
// The paper measured hardware counters via perf on 2^24 rows; this harness
// replays the same approaches through the software cache/branch model
// (perfmodel/) at a configurable size.
#include <cstdio>

#include "bench_util.h"
#include "perfmodel/counters.h"

using namespace rowsort;

int main() {
  bench::PrintHeader(
      "Table II", "counters: columnar tuple-at-a-time vs subsort",
      "subsort incurs fewer cache misses AND fewer branch mispredictions "
      "than tuple-at-a-time on Correlated0.5");

  const uint64_t log2 = bench::MaxRowsLog2(17);
  MicroWorkload w;
  w.num_rows = uint64_t(1) << log2;
  w.num_key_columns = 4;
  w.distribution = MicroDistribution::kCorrelated;
  w.correlation = 0.5;
  auto columns = GenerateMicroColumns(w);

  std::printf("rows = 2^%llu, 4 key columns, Correlated0.5 (paper: 2^24)\n\n",
              (unsigned long long)log2);
  std::printf("%-28s %16s %16s\n", "approach", "L1 misses", "branch misses");

  PerfCounters tuple = CountColumnarTupleAtATime(columns);
  std::printf("%-28s %16s %16s\n", "columnar tuple-at-a-time (CT)",
              FormatCount(tuple.cache_misses).c_str(),
              FormatCount(tuple.branch_misses).c_str());

  PerfCounters subsort = CountColumnarSubsort(columns);
  std::printf("%-28s %16s %16s\n", "columnar subsort (CS)",
              FormatCount(subsort.cache_misses).c_str(),
              FormatCount(subsort.branch_misses).c_str());

  std::printf("\nratios (T/S): cache misses %.2fx, branch misses %.2fx\n",
              double(tuple.cache_misses) /
                  double(std::max<uint64_t>(subsort.cache_misses, 1)),
              double(tuple.branch_misses) /
                  double(std::max<uint64_t>(subsort.branch_misses, 1)));
  return 0;
}
