// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Fig. 12: execution times (lower is better) of sorting random integers and
// floats across the five systems. The paper sorts 10-100 million rows in
// increments of 10 million on 32 cores; defaults here are scaled to a small
// machine (override with ROWSORT_FIG12_MAX_ROWS, ROWSORT_THREADS).
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "systems/system.h"
#include "workload/tables.h"

using namespace rowsort;

int main() {
  bench::PrintHeader(
      "Figure 12", "end-to-end: random integers & floats, five systems",
      "MonetDB-like slowest by far (single-threaded, columnar); "
      "ClickHouse-like competitive at small sizes, degrades faster; "
      "DuckDB/HyPer/Umbra-like scale best; DuckDB-like sorts floats as fast "
      "as ints (normalized keys + radix)");

  const uint64_t max_rows =
      bench::EnvRows("ROWSORT_FIG12_MAX_ROWS", 5'000'000);
  const uint64_t step = std::max<uint64_t>(max_rows / 5, 1);
  const uint64_t threads = bench::EnvRows(
      "ROWSORT_THREADS", std::max(1u, std::thread::hardware_concurrency()));
  auto systems = MakeAllSystems(threads);

  std::printf("threads = %llu, sizes up to %s rows (paper: 10M..100M, 32 "
              "vCPU)\n",
              (unsigned long long)threads, FormatCount(max_rows).c_str());

  for (bool floats : {false, true}) {
    std::printf("\n--- %s ---\n", floats ? "32-bit floats, uniform [-1e9,1e9]"
                                         : "32-bit integers 0..n-1, shuffled");
    std::printf("%12s", "rows");
    for (auto& s : systems) std::printf(" %16s", s->name().c_str());
    std::printf("\n");
    for (uint64_t n = step; n <= max_rows; n += step) {
      Table input = floats ? MakeUniformFloatTable(n, 1912)
                           : MakeShuffledIntegerTable(n, 1912);
      SortSpec spec({SortColumn(0, input.types()[0])});
      std::printf("%12s", FormatCount(n).c_str());
      for (auto& s : systems) {
        double seconds = bench::MedianSeconds([&] { s->Sort(input, spec); });
        std::printf(" %15.3fs", seconds);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
