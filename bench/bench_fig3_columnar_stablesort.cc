// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Fig. 3: as Fig. 2 but with the stable merge sort (the paper's
// std::stable_sort), whose sequential access pattern narrows the gap —
// subsort is often slightly slower than tuple-at-a-time here.
#include "approach_timers.h"

using namespace rowsort;
using namespace rowsort::bench;

int main() {
  PrintHeader("Figure 3",
              "columnar: subsort vs tuple-at-a-time (stable merge sort)",
              "approaches much closer than Fig. 2; subsort often slightly "
              "below 1.0 (merge sort's sequential access hides the columnar "
              "cache penalty)");
  SweepAxes axes;
  PrintRelativeTable(axes, "subsort", "tuple-at-a-time",
                     TimeColumnarSubsort(BaseSortAlgo::kStableMergeSort),
                     TimeColumnarTuple(BaseSortAlgo::kStableMergeSort));
  return 0;
}
