// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.h"
#include "workload/microbench.h"

namespace rowsort {
namespace bench {

/// The micro-benchmark sweep axes of Figs. 2-9: distributions Random and
/// Correlated{0.0, 0.5, 1.0}, 1-4 key columns, row counts 2^12 .. 2^max in
/// factor-16 steps (the paper plots 2^12 .. 2^24).
struct SweepAxes {
  std::vector<std::pair<MicroDistribution, double>> distributions = {
      {MicroDistribution::kRandom, 0.0},
      {MicroDistribution::kCorrelated, 0.0},
      {MicroDistribution::kCorrelated, 0.5},
      {MicroDistribution::kCorrelated, 1.0},
  };
  std::vector<uint64_t> key_columns = {1, 2, 3, 4};
  std::vector<uint64_t> rows_log2;

  SweepAxes() {
    uint64_t max = MaxRowsLog2(20);
    for (uint64_t l = 12; l <= max; l += 4) {
      rows_log2.push_back(l);
    }
    if (rows_log2.back() != max) rows_log2.push_back(max);
  }
};

/// Returns the median time (seconds) of sorting freshly generated data; the
/// callback receives materialized columns and must perform any conversion
/// AND the sort — pass a conversion-free callback to time sorting alone.
using SortTimeFn = std::function<double(const MicroColumns&)>;

/// Prints one relative-runtime table: cell = baseline_time / variant_time,
/// so > 1.00 means the variant is faster (the paper's figures use the same
/// convention: "A relative runtime of 2.00 means that the subsort approach
/// is twice as fast").
inline void PrintRelativeTable(const SweepAxes& axes, const char* variant_name,
                               const char* baseline_name,
                               const SortTimeFn& variant,
                               const SortTimeFn& baseline) {
  std::printf("\nrelative runtime of %s vs %s (higher = %s faster)\n",
              variant_name, baseline_name, variant_name);
  std::printf("%-18s %5s", "distribution", "cols");
  for (uint64_t l : axes.rows_log2) {
    std::printf("    2^%-4llu", (unsigned long long)l);
  }
  std::printf("\n");
  for (const auto& [dist, corr] : axes.distributions) {
    for (uint64_t cols : axes.key_columns) {
      MicroWorkload w;
      w.distribution = dist;
      w.correlation = corr;
      w.num_key_columns = cols;
      std::printf("%-18s %5llu", w.Label().c_str(),
                  (unsigned long long)cols);
      for (uint64_t l : axes.rows_log2) {
        w.num_rows = uint64_t(1) << l;
        auto columns = GenerateMicroColumns(w);
        double tb = baseline(columns);
        double tv = variant(columns);
        std::printf("  %7.2f", tb / tv);
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
}

}  // namespace bench
}  // namespace rowsort
