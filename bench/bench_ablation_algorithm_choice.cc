// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Ablation (Future Work §IX ¶1): "A heuristic that takes these variables
// [key size, number of tuples, ...] into account could improve the
// algorithm choice." Compares forcing radix sort, forcing pdqsort, the
// paper's shipping rule (kAuto), and the proposed heuristic across row
// counts and key widths.
#include <cstdio>

#include "bench_util.h"
#include "engine/sort_engine.h"
#include "workload/tables.h"
#include "workload/tpcds.h"

using namespace rowsort;

namespace {

double TimeSort(const Table& input, const SortSpec& spec,
                RunSortAlgorithm algorithm) {
  SortEngineConfig config;
  config.algorithm = algorithm;
  return rowsort::bench::MedianSeconds(
      [&] { RelationalSort::SortTable(input, spec, config).ValueOrDie(); });
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: run-sort algorithm choice (Future Work §IX)",
      "radix vs pdqsort vs auto vs heuristic",
      "radix wins at large n / short keys; pdqsort wins at small n; the "
      "heuristic should track the better of the two");

  const uint64_t max_rows = bench::EnvRows("ROWSORT_ABL_ROWS", 2'000'000);
  std::printf("%12s %6s %10s %10s %10s %10s\n", "rows", "keys", "radix",
              "pdq", "auto", "heuristic");

  for (uint64_t n : {uint64_t(1024), uint64_t(65536), max_rows}) {
    for (uint64_t keys : {1ull, 4ull}) {
      TpcdsScale scale;
      scale.scale_factor = 10;
      scale.scale_divisor = std::max<uint64_t>(
          TpcdsScale{10}.CatalogSalesRows() / std::max<uint64_t>(n, 1), 1);
      Table table = MakeCatalogSales(scale);
      std::vector<SortColumn> cols;
      for (uint64_t k = 0; k < keys; ++k) cols.emplace_back(k, TypeId::kInt32);
      SortSpec spec(cols);

      std::printf("%12s %6llu", FormatCount(table.row_count()).c_str(),
                  (unsigned long long)keys);
      for (auto algo : {RunSortAlgorithm::kRadix, RunSortAlgorithm::kPdq,
                        RunSortAlgorithm::kAuto, RunSortAlgorithm::kHeuristic}) {
        std::printf(" %9.4fs", TimeSort(table, spec, algo));
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
