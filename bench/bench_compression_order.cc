// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Sort-for-compression workload (§II: sorting "improv[es] run-length
// encoding compression"): sorts the TPC-DS-like catalog_sales table under
// three column orderings and reports the post-sort per-column RLE and
// frame-of-reference compressed sizes:
//
//  * baseline      — the table as generated (unsorted);
//  * given-order   — ORDER BY the paper's Fig. 13 key columns in their
//                    given order (cs_warehouse_sk, cs_ship_mode_sk,
//                    cs_promo_sk, cs_quantity);
//  * low-card-first — the same key columns, reordered by ascending distinct
//                    count. Leading with the lowest-cardinality column
//                    maximizes run lengths across the whole key prefix, the
//                    classic column-ordering heuristic (Lemire & Kaser).
//
// With ROWSORT_BENCH_JSON=<path> the results are written as
// BENCH_compression.json: one record per ordering with per-column distinct
// counts, run counts, and RLE/FOR byte sizes (see
// tools/run_compression_bench.sh for the gates).
#include <cstdio>
#include <cstdlib>
#include <unordered_set>
#include <vector>

#include "bench_util.h"
#include "engine/sort_engine.h"
#include "workload/rle.h"
#include "workload/tpcds.h"

using namespace rowsort;

namespace {

constexpr const char* kColumnNames[] = {"cs_warehouse_sk", "cs_ship_mode_sk",
                                        "cs_promo_sk", "cs_quantity",
                                        "cs_item_sk"};
constexpr uint64_t kColumns = 5;
constexpr uint64_t kKeyColumns = 4;  // cs_item_sk stays payload-only

/// Distinct values in an INT32 column, counting NULL as one extra value.
uint64_t DistinctCount(const Table& table, uint64_t col) {
  std::unordered_set<int64_t> values;
  bool saw_null = false;
  for (uint64_t ci = 0; ci < table.ChunkCount(); ++ci) {
    const DataChunk& chunk = table.chunk(ci);
    for (uint64_t r = 0; r < chunk.size(); ++r) {
      Value v = chunk.GetValue(col, r);
      if (v.is_null()) {
        saw_null = true;
      } else {
        values.insert(v.int32_value());
      }
    }
  }
  return values.size() + (saw_null ? 1 : 0);
}

struct ColumnStats {
  uint64_t distinct = 0;
  uint64_t runs = 0;
  uint64_t rle_bytes = 0;
  uint64_t for_bytes = 0;
};

struct OrderingResult {
  std::string ordering;
  std::vector<uint64_t> key_order;  // empty for the unsorted baseline
  double sort_seconds = 0;
  std::vector<ColumnStats> columns;
  uint64_t rle_total = 0;
  uint64_t for_total = 0;
};

OrderingResult Measure(const std::string& ordering, const Table& table,
                       const std::vector<uint64_t>& key_order,
                       double sort_seconds,
                       const std::vector<uint64_t>& distinct) {
  OrderingResult res;
  res.ordering = ordering;
  res.key_order = key_order;
  res.sort_seconds = sort_seconds;
  for (uint64_t c = 0; c < kColumns; ++c) {
    ColumnStats stats;
    stats.distinct = distinct[c];
    stats.runs = CountRuns(table, c);
    stats.rle_bytes = RleBytes(table, c);
    stats.for_bytes = ForBytes(table, c);
    res.rle_total += stats.rle_bytes;
    res.for_total += stats.for_bytes;
    res.columns.push_back(stats);
  }
  return res;
}

void PrintResult(const OrderingResult& res, uint64_t raw_bytes) {
  std::printf("\n--- %s", res.ordering.c_str());
  if (!res.key_order.empty()) {
    std::printf(" (ORDER BY");
    for (uint64_t c : res.key_order) std::printf(" %s", kColumnNames[c]);
    std::printf(", sort %.3fs)", res.sort_seconds);
  }
  std::printf(" ---\n");
  std::printf("%-18s %10s %12s %12s %12s\n", "column", "distinct", "runs",
              "rle bytes", "for bytes");
  for (uint64_t c = 0; c < kColumns; ++c) {
    const ColumnStats& s = res.columns[c];
    std::printf("%-18s %10llu %12llu %12llu %12llu\n", kColumnNames[c],
                (unsigned long long)s.distinct, (unsigned long long)s.runs,
                (unsigned long long)s.rle_bytes,
                (unsigned long long)s.for_bytes);
  }
  std::printf("%-18s %10s %12s %12llu %12llu  (raw %llu: rle %.2fx, "
              "for %.2fx)\n",
              "total", "", "", (unsigned long long)res.rle_total,
              (unsigned long long)res.for_total,
              (unsigned long long)raw_bytes,
              double(raw_bytes) / double(res.rle_total),
              double(raw_bytes) / double(res.for_total));
}

void EmitJson(const std::vector<OrderingResult>& results, uint64_t rows,
              uint64_t raw_bytes, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "[\n");
  for (uint64_t i = 0; i < results.size(); ++i) {
    const OrderingResult& r = results[i];
    std::fprintf(f,
                 "  {\"ordering\": \"%s\", \"rows\": %llu, \"raw_bytes\": "
                 "%llu,\n   \"sort_seconds\": %.6f, \"key_order\": [",
                 r.ordering.c_str(), (unsigned long long)rows,
                 (unsigned long long)raw_bytes, r.sort_seconds);
    for (uint64_t k = 0; k < r.key_order.size(); ++k) {
      std::fprintf(f, "%s\"%s\"", k > 0 ? ", " : "",
                   kColumnNames[r.key_order[k]]);
    }
    std::fprintf(f, "],\n   \"columns\": [\n");
    for (uint64_t c = 0; c < kColumns; ++c) {
      const ColumnStats& s = r.columns[c];
      std::fprintf(f,
                   "     {\"name\": \"%s\", \"distinct\": %llu, \"runs\": "
                   "%llu, \"rle_bytes\": %llu, \"for_bytes\": %llu}%s\n",
                   kColumnNames[c], (unsigned long long)s.distinct,
                   (unsigned long long)s.runs,
                   (unsigned long long)s.rle_bytes,
                   (unsigned long long)s.for_bytes,
                   c + 1 < kColumns ? "," : "");
    }
    std::fprintf(f,
                 "   ],\n   \"rle_bytes_total\": %llu, \"for_bytes_total\": "
                 "%llu}%s\n",
                 (unsigned long long)r.rle_total,
                 (unsigned long long)r.for_total,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Sort-for-compression workload",
      "catalog_sales RLE/FOR sizes under different sort column orderings",
      "any sort beats the unsorted baseline; leading with the "
      "lowest-cardinality key column compresses best overall");

  TpcdsScale scale;
  scale.scale_factor = 10;
  scale.scale_divisor = bench::EnvRows("ROWSORT_COMPRESSION_DIVISOR", 20);
  Table table = MakeCatalogSales(scale);
  const uint64_t rows = table.row_count();
  const uint64_t raw_bytes = rows * kColumns * sizeof(int32_t);
  std::printf("rows = %s (scale factor %d, divisor %llu)\n",
              FormatCount(rows).c_str(), scale.scale_factor,
              (unsigned long long)scale.scale_divisor);

  std::vector<uint64_t> distinct(kColumns);
  for (uint64_t c = 0; c < kColumns; ++c) distinct[c] = DistinctCount(table, c);

  // The paper's given key order, and the same keys cheapest-first.
  std::vector<uint64_t> given_order = {0, 1, 2, 3};
  std::vector<uint64_t> low_card_first = given_order;
  std::sort(low_card_first.begin(), low_card_first.end(),
            [&](uint64_t a, uint64_t b) {
              if (distinct[a] != distinct[b]) return distinct[a] < distinct[b];
              return a < b;
            });

  std::vector<OrderingResult> results;
  results.push_back(Measure("baseline", table, {}, 0, distinct));

  auto sort_by = [&](const std::vector<uint64_t>& key_order) {
    std::vector<SortColumn> cols;
    for (uint64_t c : key_order) cols.emplace_back(c, TypeId::kInt32);
    SortSpec spec(cols);
    Table sorted;
    double seconds = bench::MedianSeconds(
        [&] { sorted = RelationalSort::SortTable(table, spec).ValueOrDie(); });
    return std::pair<Table, double>(std::move(sorted), seconds);
  };

  auto [given_sorted, given_seconds] = sort_by(given_order);
  results.push_back(Measure("given-order", given_sorted, given_order,
                            given_seconds, distinct));
  auto [low_sorted, low_seconds] = sort_by(low_card_first);
  results.push_back(Measure("low-card-first", low_sorted, low_card_first,
                            low_seconds, distinct));

  for (const OrderingResult& r : results) PrintResult(r, raw_bytes);

  if (const char* json_path = std::getenv("ROWSORT_BENCH_JSON")) {
    EmitJson(results, rows, raw_bytes, json_path);
  }
  return 0;
}
