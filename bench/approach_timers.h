// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include "approaches/approaches.h"
#include "bench_util.h"
#include "micro_sweep.h"

namespace rowsort {
namespace bench {

/// Timing closures for the micro-benchmark approaches (paper §IV-§VI).
/// Each times the *sort only*: format conversion happens before the clock
/// starts, mirroring the paper's assumption that "all input has been
/// materialized" (§IV).

inline SortTimeFn TimeColumnarTuple(BaseSortAlgo algo) {
  return [algo](const MicroColumns& columns) {
    return MedianSeconds([&] {
      auto idxs = MakeRowIndices(columns[0].size());
      SortIndicesTupleAtATime(columns, idxs, algo);
    });
  };
}

inline SortTimeFn TimeColumnarSubsort(BaseSortAlgo algo) {
  return [algo](const MicroColumns& columns) {
    return MedianSeconds([&] {
      auto idxs = MakeRowIndices(columns[0].size());
      SortIndicesSubsort(columns, idxs, algo);
    });
  };
}

inline SortTimeFn TimeRowTupleStatic(BaseSortAlgo algo) {
  return [algo](const MicroColumns& columns) {
    MicroRows prototype = BuildMicroRows(columns);
    return MedianSeconds([&] {
      MicroRows rows = prototype;  // fresh unsorted copy (cheap memcpy)
      SortMicroRowsTupleStatic(rows, algo);
    });
  };
}

inline SortTimeFn TimeRowTupleDynamic(BaseSortAlgo algo) {
  return [algo](const MicroColumns& columns) {
    MicroRows prototype = BuildMicroRows(columns);
    return MedianSeconds([&] {
      MicroRows rows = prototype;
      SortMicroRowsTupleDynamic(rows, algo);
    });
  };
}

inline SortTimeFn TimeRowSubsort(BaseSortAlgo algo) {
  return [algo](const MicroColumns& columns) {
    MicroRows prototype = BuildMicroRows(columns);
    return MedianSeconds([&] {
      MicroRows rows = prototype;
      SortMicroRowsSubsort(rows, algo);
    });
  };
}

inline SortTimeFn TimeNormalizedMemcmp(BaseSortAlgo algo) {
  return [algo](const MicroColumns& columns) {
    NormalizedRows prototype = BuildNormalizedRows(columns);
    return MedianSeconds([&] {
      NormalizedRows rows = prototype;
      SortNormalizedRowsMemcmp(rows, algo);
    });
  };
}

inline SortTimeFn TimeNormalizedPdq() {
  return [](const MicroColumns& columns) {
    NormalizedRows prototype = BuildNormalizedRows(columns);
    return MedianSeconds([&] {
      NormalizedRows rows = prototype;
      SortNormalizedRowsPdq(rows);
    });
  };
}

inline SortTimeFn TimeNormalizedRadix() {
  return [](const MicroColumns& columns) {
    NormalizedRows prototype = BuildNormalizedRows(columns);
    return MedianSeconds([&] {
      NormalizedRows rows = prototype;
      SortNormalizedRowsRadix(rows);
    });
  };
}

}  // namespace bench
}  // namespace rowsort
