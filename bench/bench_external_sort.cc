// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// External sort with overlapped spill I/O (docs/external_sort.md): in-memory
// vs. synchronous spilling vs. write-behind/readahead spilling at several
// memory limits. The overlapped path moves every spill fread/fwrite to a
// background thread, so the compute thread's measured I/O wait
// (SortMetrics::io_wait_us) should collapse — that counter, not wall time,
// is the robust signal on fast temp storage — while wall time drops by
// roughly the formerly-inline I/O time.
//
// Also reports the planner's merge fan-in: spilled runs merge in one k-way
// pass whenever the memory budget allows (merge_fan_in == runs spilled),
// instead of a pairwise cascade that rewrites rows O(log n) times.
//
// The compression section measures spill format v3 (per-section compressed
// blocks, docs/external_sort.md#format-v3): a duplicate-heavy workload where
// the codecs should cut spill bytes >= 2x, and a random workload where the
// adaptive raw fallback must keep the wall-time tax within noise.
//
// Set ROWSORT_BENCH_JSON=<path> to emit the records as JSON (an object with
// "overlap" and "compression" record arrays; see
// tools/run_external_bench.sh, which tracks BENCH_external.json).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "engine/sort_engine.h"
#include "workload/tables.h"

using namespace rowsort;

namespace {

Table MakeWorkload(uint64_t rows, uint64_t seed) {
  LogicalType i32(TypeId::kInt32), i64(TypeId::kInt64);
  Table table({i32, i64});
  Random rng(seed);
  uint64_t produced = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = table.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      chunk.SetValue(
          0, r, Value::Int32(static_cast<int32_t>(rng.Uniform(1u << 30))));
      chunk.SetValue(
          1, r, Value::Int64(static_cast<int64_t>(produced + r)));
    }
    chunk.SetSize(n);
    table.Append(std::move(chunk));
    produced += n;
  }
  return table;
}

struct Record {
  std::string variant;   // "in-memory" | "sync-spill" | "overlapped-spill"
  uint64_t limit_bytes;  // 0 = unlimited
  uint64_t rows;
  double seconds;
  SortMetrics metrics;  // from the median-defining final repetition
};

/// Duplicate-heavy workload for the compression section: a handful of
/// distinct key values and a skewed low-cardinality payload, the shape the
/// v3 codecs (RLE / shared-prefix / LZ) are built for.
Table MakeDupWorkload(uint64_t rows, uint64_t seed) {
  LogicalType i32(TypeId::kInt32), i64(TypeId::kInt64);
  Table table({i32, i64});
  Random rng(seed);
  uint64_t produced = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = table.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      chunk.SetValue(0, r,
                     Value::Int32(static_cast<int32_t>(rng.Uniform(16))));
      chunk.SetValue(1, r,
                     Value::Int64(static_cast<int64_t>(rng.Uniform(4))));
    }
    chunk.SetSize(n);
    table.Append(std::move(chunk));
    produced += n;
  }
  return table;
}

/// Fully random workload for the compression section's worst case: random
/// keys AND random payload bytes, so every codec fails and the adaptive
/// raw fallback must keep the wall-time tax within noise. (The overlap
/// section's workload has a sequential payload, which LZ happily — and
/// misleadingly — compresses.)
Table MakeIncompressibleWorkload(uint64_t rows, uint64_t seed) {
  LogicalType i32(TypeId::kInt32), i64(TypeId::kInt64);
  Table table({i32, i64});
  Random rng(seed);
  uint64_t produced = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = table.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      chunk.SetValue(0, r,
                     Value::Int32(static_cast<int32_t>(rng.Next32())));
      chunk.SetValue(1, r,
                     Value::Int64(static_cast<int64_t>(rng.Next64())));
    }
    chunk.SetSize(n);
    table.Append(std::move(chunk));
    produced += n;
  }
  return table;
}

struct CompressionRecord {
  std::string workload;  // "dup-heavy" | "random"
  bool compression;
  uint64_t limit_bytes;
  uint64_t rows;
  double seconds;
  SortMetrics metrics;
};

CompressionRecord RunCompressionCell(const Table& input, const SortSpec& spec,
                                     const std::string& workload,
                                     bool compression, uint64_t limit,
                                     uint64_t rows) {
  SortEngineConfig config;
  config.run_size_rows = 1 << 16;
  config.memory_limit_bytes = limit;
  config.spill_compression = compression;
  CompressionRecord rec;
  rec.workload = workload;
  rec.compression = compression;
  rec.limit_bytes = limit;
  rec.rows = rows;
  rec.seconds = bench::MedianSeconds([&] {
    SortMetrics metrics;
    auto sorted = RelationalSort::SortTable(input, spec, config, &metrics);
    if (!sorted.ok() || sorted.value().row_count() != rows) {
      std::fprintf(stderr, "sort failed: %s\n",
                   sorted.status().ToString().c_str());
      std::exit(1);
    }
    rec.metrics = metrics;
  });
  return rec;
}

Record RunSort(const Table& input, const SortSpec& spec,
               const std::string& variant, uint64_t limit, bool overlap,
               uint64_t rows) {
  SortEngineConfig config;
  config.run_size_rows = 1 << 16;
  config.memory_limit_bytes = limit;
  config.overlap_spill_io = overlap;
  Record rec;
  rec.variant = variant;
  rec.limit_bytes = limit;
  rec.rows = rows;
  rec.seconds = bench::MedianSeconds([&] {
    SortMetrics metrics;
    auto sorted = RelationalSort::SortTable(input, spec, config, &metrics);
    if (!sorted.ok() || sorted.value().row_count() != rows) {
      std::fprintf(stderr, "sort failed: %s\n",
                   sorted.status().ToString().c_str());
      std::exit(1);
    }
    rec.metrics = metrics;
  });
  return rec;
}

void EmitJson(const std::vector<Record>& records,
              const std::vector<CompressionRecord>& compression,
              const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"overlap\": [\n");
  for (uint64_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(
        f,
        "    {\"variant\": \"%s\", \"limit_bytes\": %llu, \"rows\": %llu, "
        "\"seconds\": %.6f, \"io_wait_us\": %llu, \"blocks_prefetched\": "
        "%llu, \"write_behind_stalls\": %llu, \"runs_spilled\": %llu, "
        "\"merge_fan_in\": %llu, \"peak_memory_bytes\": %llu}%s\n",
        r.variant.c_str(), (unsigned long long)r.limit_bytes,
        (unsigned long long)r.rows, r.seconds,
        (unsigned long long)r.metrics.io_wait_us,
        (unsigned long long)r.metrics.blocks_prefetched,
        (unsigned long long)r.metrics.write_behind_stalls,
        (unsigned long long)r.metrics.runs_spilled,
        (unsigned long long)r.metrics.merge_fan_in,
        (unsigned long long)r.metrics.peak_memory_bytes,
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"compression\": [\n");
  for (uint64_t i = 0; i < compression.size(); ++i) {
    const CompressionRecord& r = compression[i];
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"compression\": %s, \"limit_bytes\": "
        "%llu, \"rows\": %llu, \"seconds\": %.6f, \"runs_spilled\": %llu, "
        "\"spill_bytes_raw\": %llu, \"spill_bytes_compressed\": %llu, "
        "\"sections_raw\": %llu, \"sections_prefix\": %llu, "
        "\"sections_rle\": %llu, \"sections_lz\": %llu, "
        "\"compress_us\": %llu, \"decompress_us\": %llu}%s\n",
        r.workload.c_str(), r.compression ? "true" : "false",
        (unsigned long long)r.limit_bytes, (unsigned long long)r.rows,
        r.seconds, (unsigned long long)r.metrics.runs_spilled,
        (unsigned long long)r.metrics.spill_bytes_raw,
        (unsigned long long)r.metrics.spill_bytes_compressed,
        (unsigned long long)r.metrics.spill_sections_raw,
        (unsigned long long)r.metrics.spill_sections_prefix,
        (unsigned long long)r.metrics.spill_sections_rle,
        (unsigned long long)r.metrics.spill_sections_lz,
        (unsigned long long)r.metrics.compress_us,
        (unsigned long long)r.metrics.decompress_us,
        i + 1 < compression.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "BENCH_external", "external sort: overlapped vs. synchronous spill I/O",
      "overlapped-spill cuts compute-thread io_wait_us by >= 50% vs. "
      "sync-spill at every limit, at equal or lower wall time");

  const uint64_t rows = bench::EnvRows("ROWSORT_EXTERNAL_ROWS", 400000);
  Table input = MakeWorkload(rows, 4242);
  SortSpec spec({SortColumn(0, TypeId::kInt32)});

  std::vector<Record> records;
  Record in_memory = RunSort(input, spec, "in-memory", 0, true, rows);
  records.push_back(in_memory);
  const uint64_t footprint = in_memory.metrics.peak_memory_bytes;
  std::printf("%-17s %-10s %10s %12s %10s %8s\n", "variant", "limit",
              "seconds", "io_wait_us", "prefetched", "fan-in");
  std::printf("%-17s %-10s %10.4f %12llu %10llu %8llu\n", "in-memory", "-",
              in_memory.seconds,
              (unsigned long long)in_memory.metrics.io_wait_us,
              (unsigned long long)in_memory.metrics.blocks_prefetched,
              (unsigned long long)in_memory.metrics.merge_fan_in);

  // Limits as fractions of the sort's own in-memory footprint, so the spill
  // pressure (and the planned fan-in) scales with ROWSORT_EXTERNAL_ROWS.
  for (uint64_t divisor : {2, 4, 8}) {
    const uint64_t limit = footprint / divisor;
    Record sync = RunSort(input, spec, "sync-spill", limit, false, rows);
    Record overlapped =
        RunSort(input, spec, "overlapped-spill", limit, true, rows);
    records.push_back(sync);
    records.push_back(overlapped);
    std::string label = "1/" + std::to_string(divisor);
    std::printf("%-17s %-10s %10.4f %12llu %10llu %8llu\n", "sync-spill",
                label.c_str(), sync.seconds,
                (unsigned long long)sync.metrics.io_wait_us,
                (unsigned long long)sync.metrics.blocks_prefetched,
                (unsigned long long)sync.metrics.merge_fan_in);
    std::printf("%-17s %-10s %10.4f %12llu %10llu %8llu\n",
                "overlapped-spill", label.c_str(), overlapped.seconds,
                (unsigned long long)overlapped.metrics.io_wait_us,
                (unsigned long long)overlapped.metrics.blocks_prefetched,
                (unsigned long long)overlapped.metrics.merge_fan_in);
    const double wait_ratio =
        sync.metrics.io_wait_us > 0
            ? static_cast<double>(overlapped.metrics.io_wait_us) /
                  static_cast<double>(sync.metrics.io_wait_us)
            : 0.0;
    std::printf("  -> io_wait %.0f%% lower, wall %.2fx\n",
                (1.0 - wait_ratio) * 100.0,
                sync.seconds / overlapped.seconds);
  }

  // --- Spill compression (format v3) ---------------------------------------
  std::printf("\n%-10s %-12s %10s %14s %14s %8s\n", "workload", "compression",
              "seconds", "raw bytes", "stored bytes", "ratio");
  std::vector<CompressionRecord> compression;
  auto run_pair = [&](const std::string& workload, const Table& table,
                      const SortSpec& cspec) {
    SortEngineConfig probe;
    probe.run_size_rows = 1 << 16;
    SortMetrics probe_metrics;
    RelationalSort::SortTable(table, cspec, probe, &probe_metrics)
        .ValueOrDie();
    const uint64_t limit = probe_metrics.peak_memory_bytes / 4;
    CompressionRecord off = RunCompressionCell(
        table, cspec, workload, /*compression=*/false, limit,
        table.row_count());
    CompressionRecord on = RunCompressionCell(
        table, cspec, workload, /*compression=*/true, limit,
        table.row_count());
    compression.push_back(off);
    compression.push_back(on);
    std::printf("%-10s %-12s %10.4f %14s %14s %8s\n", workload.c_str(), "off",
                off.seconds, "-", "-", "-");
    const double ratio =
        on.metrics.spill_bytes_compressed > 0
            ? static_cast<double>(on.metrics.spill_bytes_raw) /
                  static_cast<double>(on.metrics.spill_bytes_compressed)
            : 0.0;
    std::printf("%-10s %-12s %10.4f %14llu %14llu %7.2fx\n", workload.c_str(),
                "on", on.seconds,
                (unsigned long long)on.metrics.spill_bytes_raw,
                (unsigned long long)on.metrics.spill_bytes_compressed, ratio);
    std::printf("  -> wall %.2fx, sections raw/prefix/rle/lz "
                "%llu/%llu/%llu/%llu\n",
                on.seconds / off.seconds,
                (unsigned long long)on.metrics.spill_sections_raw,
                (unsigned long long)on.metrics.spill_sections_prefix,
                (unsigned long long)on.metrics.spill_sections_rle,
                (unsigned long long)on.metrics.spill_sections_lz);
  };
  {
    Table dup = MakeDupWorkload(rows, 4343);
    Table random = MakeIncompressibleWorkload(rows, 4545);
    SortSpec two_col_spec(
        {SortColumn(0, TypeId::kInt32), SortColumn(1, TypeId::kInt64)});
    run_pair("dup-heavy", dup, two_col_spec);
    run_pair("random", random, two_col_spec);
  }

  const char* json_path = std::getenv("ROWSORT_BENCH_JSON");
  if (json_path != nullptr && json_path[0] != '\0') {
    EmitJson(records, compression, json_path);
  }
  return 0;
}
