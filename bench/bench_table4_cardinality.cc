// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Table IV: cardinality of the TPC-DS tables used in the end-to-end
// benchmarks, per scale factor, plus the scaled-down row counts the
// reproduction actually sorts (see EXPERIMENTS.md).
#include <cstdio>

#include "bench_util.h"
#include "workload/tpcds.h"

using namespace rowsort;

int main() {
  bench::PrintHeader("Table IV", "TPC-DS table cardinality",
                     "matches the TPC-DS specification row counts");
  std::printf("%-16s %6s %18s %14s\n", "table", "SF", "rows (spec)",
              "rows (scaled)");
  uint64_t catalog_div = bench::EnvRows("ROWSORT_FIG13_DIVISOR", 20);
  uint64_t customer_div = bench::EnvRows("ROWSORT_FIG14_DIVISOR", 4);
  for (int sf : {10, 100}) {
    TpcdsScale scale;
    scale.scale_factor = sf;
    TpcdsScale scaled = scale;
    scaled.scale_divisor = catalog_div;
    std::printf("%-16s %6d %18s %14s\n", "catalog_sales", sf,
                FormatCount(scale.CatalogSalesRows()).c_str(),
                FormatCount(scaled.CatalogSalesRows()).c_str());
  }
  for (int sf : {100, 300}) {
    TpcdsScale scale;
    scale.scale_factor = sf;
    TpcdsScale scaled = scale;
    scaled.scale_divisor = customer_div;
    std::printf("%-16s %6d %18s %14s\n", "customer", sf,
                FormatCount(scale.CustomerRows()).c_str(),
                FormatCount(scaled.CustomerRows()).c_str());
  }
  return 0;
}
