// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Fig. 9: relative runtime (higher is better) of sorting normalized keys
// with radix sort compared to pdqsort with a dynamic memcmp comparator.
// LSD radix is used for keys <= 4 bytes, MSD otherwise (§VI-B).
#include "approach_timers.h"

using namespace rowsort;
using namespace rowsort::bench;

int main() {
  PrintHeader("Figure 9",
              "normalized keys: radix sort vs pdqsort(memcmp)",
              "radix wins on Random (by a wide margin at 1 key column) and "
              "on most Correlated inputs; pdqsort wins some highly "
              "correlated ones where its pattern detection shines");
  SweepAxes axes;
  PrintRelativeTable(axes, "radix sort", "pdqsort(dynamic memcmp)",
                     TimeNormalizedRadix(), TimeNormalizedPdq());
  return 0;
}
