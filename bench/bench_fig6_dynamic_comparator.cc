// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Fig. 6: relative runtime (higher is better) of a tuple-at-a-time approach
// with a dynamic comparator compared to a static tuple-at-a-time comparator
// on data in row format, with introsort. This quantifies the function-call
// overhead an interpreted engine pays on every value comparison (§V-B).
#include "approach_timers.h"

using namespace rowsort;
using namespace rowsort::bench;

int main() {
  PrintHeader("Figure 6",
              "row format: dynamic vs static comparator (introsort)",
              "dynamic always below 1.0 — roughly 2x slower than the "
              "statically compiled comparator, worse with more key columns");
  SweepAxes axes;
  PrintRelativeTable(axes, "dynamic comparator", "static comparator",
                     TimeRowTupleDynamic(BaseSortAlgo::kIntroSort),
                     TimeRowTupleStatic(BaseSortAlgo::kIntroSort));
  return 0;
}
