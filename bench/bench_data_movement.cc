// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Data-movement kernels: the DSM<->NSM conversion cost at both ends of the
// sort pipeline (Fig. 11's "sink" and "gather" phases), isolated from
// sorting. Measures RowCollection's scatter (AppendChunk), sequential gather
// (GatherChunk), and random-access gather (GatherRows) with the
// width-specialized kernels of row/row_kernels.h against the scalar per-row
// baseline (SetRowKernelsEnabled(false)), across validity patterns: the
// all-valid fast path is the headline number, sparse and alternating NULLs
// show the word-at-a-time degradation, all-NULL the floor.
//
// Set ROWSORT_BENCH_JSON=<path> to additionally emit the records as JSON
// (see tools/run_movement_bench.sh, which tracks BENCH_movement.json).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "row/row_collection.h"
#include "row/row_kernels.h"
#include "workload/tables.h"

using namespace rowsort;

namespace {

/// The acceptance workload: four fixed-width columns (i32, i64, i16, i64),
/// NULL with probability \p null_fraction per value (0 = all valid).
Table MakeMovementTable(uint64_t rows, double null_fraction, uint64_t seed) {
  LogicalType i16(TypeId::kInt16), i32(TypeId::kInt32), i64(TypeId::kInt64);
  Table table({i32, i64, i16, i64});
  Random rng(seed);
  const uint64_t null_cut =
      static_cast<uint64_t>(null_fraction * 1000000.0);
  uint64_t produced = 0, serial = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = table.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      auto value_or_null = [&](Value v, LogicalType t) {
        return rng.Uniform(1000000) < null_cut ? Value::Null(t) : v;
      };
      chunk.SetValue(0, r,
                     value_or_null(Value::Int32(static_cast<int32_t>(
                                       rng.Uniform(1u << 30))),
                                   i32));
      chunk.SetValue(1, r,
                     value_or_null(Value::Int64(static_cast<int64_t>(
                                       rng.Uniform(1ull << 40))),
                                   i64));
      chunk.SetValue(2, r,
                     value_or_null(Value::Int16(static_cast<int16_t>(
                                       rng.Uniform(1u << 14))),
                                   i16));
      chunk.SetValue(3, r, Value::Int64(static_cast<int64_t>(serial++)));
    }
    chunk.SetSize(n);
    table.Append(std::move(chunk));
    produced += n;
  }
  return table;
}

/// All-NULL variant: every value of every column NULL (validity floor).
Table MakeAllNullTable(uint64_t rows) {
  LogicalType i16(TypeId::kInt16), i32(TypeId::kInt32), i64(TypeId::kInt64);
  Table table({i32, i64, i16, i64});
  uint64_t produced = 0;
  while (produced < rows) {
    uint64_t n = std::min(kVectorSize, rows - produced);
    DataChunk chunk = table.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      chunk.SetValue(0, r, Value::Null(i32));
      chunk.SetValue(1, r, Value::Null(i64));
      chunk.SetValue(2, r, Value::Null(i16));
      chunk.SetValue(3, r, Value::Null(i64));
    }
    chunk.SetSize(n);
    table.Append(std::move(chunk));
    produced += n;
  }
  return table;
}

/// Scatter: DSM -> NSM, the sink phase's payload conversion.
double TimeScatter(const Table& input) {
  return bench::MedianSeconds([&] {
    RowCollection rows(RowLayout(input.types()));
    for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
      rows.AppendChunk(input.chunk(c));
    }
  });
}

/// Sequential gather: NSM -> DSM, the scan phase's reconversion.
double TimeGatherSeq(const RowCollection& rows, const Table& schema) {
  return bench::MedianSeconds([&] {
    DataChunk out = schema.NewChunk();
    uint64_t start = 0;
    while (start < rows.row_count()) {
      uint64_t n = std::min(kVectorSize, rows.row_count() - start);
      rows.GatherChunk(start, n, &out);
      start += n;
    }
  });
}

/// Random-access gather: the Top-N / selection shape (prefetched kernels).
double TimeGatherRandom(const RowCollection& rows, const Table& schema,
                        const std::vector<uint64_t>& indices) {
  return bench::MedianSeconds([&] {
    DataChunk out = schema.NewChunk();
    uint64_t start = 0;
    while (start < indices.size()) {
      uint64_t n = std::min(kVectorSize, indices.size() - start);
      rows.GatherRows(indices.data() + start, n, &out);
      start += n;
    }
  });
}

struct Record {
  const char* op;       // "scatter", "gather_seq", "gather_random"
  const char* variant;  // validity pattern
  double scalar_seconds;
  double kernel_seconds;
  uint64_t rows;
};

void RunVariant(const char* variant, const Table& input, uint64_t n,
                std::vector<Record>* records) {
  // The gather sources are built with kernels ON; the bytes are identical
  // either way (verified in tests/row_test.cc), so both timings read the
  // same collection.
  RowCollection rows(RowLayout(input.types()));
  for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
    rows.AppendChunk(input.chunk(c));
  }
  std::vector<uint64_t> indices(n);
  Random rng(7);
  for (uint64_t i = 0; i < n; ++i) indices[i] = i;
  for (uint64_t i = n; i > 1; --i) {
    std::swap(indices[i - 1], indices[rng.Uniform(i)]);
  }

  struct Op {
    const char* name;
    double scalar;
    double kernel;
  } ops[3];

  // Untimed warmup: faults in the freshly built collection and lets the
  // clock governor settle before the first measured pass (the first variant
  // otherwise reads systematically slow).
  {
    RowCollection warm(RowLayout(input.types()));
    for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
      warm.AppendChunk(input.chunk(c));
    }
    DataChunk out = input.NewChunk();
    uint64_t start = 0;
    while (start < rows.row_count()) {
      uint64_t count = std::min(kVectorSize, rows.row_count() - start);
      rows.GatherChunk(start, count, &out);
      start += count;
    }
  }

  const bool prev = SetRowKernelsEnabled(false);
  ops[0] = {"scatter", TimeScatter(input), 0};
  ops[1] = {"gather_seq", TimeGatherSeq(rows, input), 0};
  ops[2] = {"gather_random", TimeGatherRandom(rows, input, indices), 0};
  SetRowKernelsEnabled(true);
  ops[0].kernel = TimeScatter(input);
  ops[1].kernel = TimeGatherSeq(rows, input);
  ops[2].kernel = TimeGatherRandom(rows, input, indices);
  SetRowKernelsEnabled(prev);

  for (const Op& op : ops) {
    std::printf("%14s %12s %9.1f %9.1f %8.2fx\n", op.name, variant,
                n / op.scalar / 1e6, n / op.kernel / 1e6,
                op.scalar / op.kernel);
    std::fflush(stdout);
    records->push_back({op.name, variant, op.scalar, op.kernel, n});
  }
}

void EmitJson(const std::vector<Record>& records, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (uint64_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    std::fprintf(f,
                 "  {\"op\": \"%s\", \"variant\": \"%s\", \"rows\": %llu, "
                 "\"scalar_seconds\": %.6f, \"kernel_seconds\": %.6f, "
                 "\"speedup\": %.3f}%s\n",
                 r.op, r.variant, (unsigned long long)r.rows, r.scalar_seconds,
                 r.kernel_seconds, r.scalar_seconds / r.kernel_seconds,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Data-movement kernels: scatter/gather DSM<->NSM",
      "width-specialized kernels + all-valid fast path vs scalar baseline",
      "all-valid scatter+gather >= 1.3x over the per-row scalar loops; "
      "sparse NULLs keep most of the win via word-at-a-time validity; "
      "random gather gains from software prefetching");

  const uint64_t n = bench::EnvRows("ROWSORT_MOVEMENT_ROWS", 2'000'000);
  std::printf("\n4 fixed-width columns (i32, i64, i16, i64), %s rows\n\n",
              FormatCount(n).c_str());
  std::printf("%14s %12s %9s %9s %9s\n", "op", "validity", "scalar",
              "kernels", "speedup");
  std::printf("%14s %12s %9s %9s\n", "", "", "(Mrow/s)", "(Mrow/s)");

  std::vector<Record> records;
  {
    Table all_valid = MakeMovementTable(n, 0.0, 11);
    RunVariant("all-valid", all_valid, n, &records);
  }
  {
    Table sparse = MakeMovementTable(n, 0.01, 13);
    RunVariant("sparse-nulls", sparse, n, &records);
  }
  {
    Table half = MakeMovementTable(n, 0.5, 17);
    RunVariant("half-nulls", half, n, &records);
  }
  {
    Table all_null = MakeAllNullTable(n);
    RunVariant("all-null", all_null, n, &records);
  }

  std::printf(
      "\n(scalar = SetRowKernelsEnabled(false): per-row memcpy with a "
      "validity branch per value; kernels = width-templated copy loops, "
      "word-at-a-time validity, software prefetch on random gathers)\n");

  const char* json_path = std::getenv("ROWSORT_BENCH_JSON");
  if (json_path != nullptr && json_path[0] != '\0') {
    EmitJson(records, json_path);
  }
  return 0;
}
