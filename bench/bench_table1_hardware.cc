// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Table I: specification of the hardware used in the experiments. The paper
// lists the AWS m5d.metal / m5d.8xlarge instances; this binary reports the
// machine the reproduction actually ran on (recorded in EXPERIMENTS.md).
#include <cstdio>

#include "bench_util.h"
#include "common/hardware.h"

int main() {
  rowsort::bench::PrintHeader(
      "Table I", "hardware specification",
      "documents the reproduction machine (paper: Xeon Platinum 8259CL, "
      "48C/96T, 384 GB)");
  rowsort::HardwareInfo info = rowsort::DetectHardware();
  std::printf("%s\n", info.ToString().c_str());
  return 0;
}
