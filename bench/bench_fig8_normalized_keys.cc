// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Fig. 8: relative runtime (higher is better) of the normalized-key approach
// with a dynamic (memcmp) comparator compared to a static tuple-at-a-time
// comparator on row format, with introsort. Directly comparable to Fig. 6:
// key normalization recovers — and often beats — compiled-comparator
// performance without compilation (§VI-A).
#include "approach_timers.h"

using namespace rowsort;
using namespace rowsort::bench;

int main() {
  PrintHeader("Figure 8",
              "normalized keys + dynamic memcmp vs static comparator",
              "much better than Fig. 6's dynamic comparator; matches or "
              "beats the static comparator with more key columns and higher "
              "correlation");
  SweepAxes axes;
  PrintRelativeTable(axes, "normalized-key memcmp", "static comparator",
                     TimeNormalizedMemcmp(BaseSortAlgo::kIntroSort),
                     TimeRowTupleStatic(BaseSortAlgo::kIntroSort));
  return 0;
}
