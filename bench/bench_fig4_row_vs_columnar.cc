// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Fig. 4: relative runtime (higher is better) of the tuple-at-a-time and
// subsort approaches on the row data format compared to the subsort approach
// on the columnar data format, with introsort.
#include "approach_timers.h"

using namespace rowsort;
using namespace rowsort::bench;

int main() {
  PrintHeader("Figure 4",
              "row (NSM) vs columnar (DSM) baseline, introsort",
              "> 1.0 almost everywhere: sorting rows beats sorting columns, "
              "especially at large row counts where the columns no longer "
              "fit in cache");
  SweepAxes axes;
  PrintRelativeTable(axes, "row tuple-at-a-time", "columnar subsort",
                     TimeRowTupleStatic(BaseSortAlgo::kIntroSort),
                     TimeColumnarSubsort(BaseSortAlgo::kIntroSort));
  PrintRelativeTable(axes, "row subsort", "columnar subsort",
                     TimeRowSubsort(BaseSortAlgo::kIntroSort),
                     TimeColumnarSubsort(BaseSortAlgo::kIntroSort));
  return 0;
}
