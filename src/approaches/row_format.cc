// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Row-format (NSM) sorting approaches (paper §IV-B, §V). Rows look like the
// paper's OrderKey struct: K uint32 keys followed by a row id; sorting
// physically moves whole rows, which is what gives NSM its cache locality.
#include "approaches/approaches.h"

#include <cstring>

#include "common/bit_util.h"
#include "common/macros.h"
#include "sortalgo/intro_sort.h"
#include "sortalgo/merge_sort.h"

namespace rowsort {

namespace {

/// The generated data type a compiling engine would emit (§V-A): "an array
/// of such structs is essentially relational data in row data format".
template <int K>
struct MicroRow {
  uint32_t keys[K];
  uint64_t row_id;
};
static_assert(sizeof(MicroRow<1>) == 16);
static_assert(sizeof(MicroRow<2>) == 16);
static_assert(sizeof(MicroRow<3>) == 24);
static_assert(sizeof(MicroRow<4>) == 24);

template <typename It, typename Compare>
void RunBaseSort(BaseSortAlgo algo, It begin, It end, Compare comp) {
  if (algo == BaseSortAlgo::kIntroSort) {
    IntroSort(begin, end, comp);
  } else {
    StableMergeSort(begin, end, comp);
  }
}

/// Statically compiled comparator: fully inlined, branches only on key
/// equality. This is the "compiled engine" reference point of Fig. 6.
template <int K>
struct StaticLess {
  bool operator()(const MicroRow<K>& a, const MicroRow<K>& b) const {
    for (int c = 0; c < K; ++c) {
      if (a.keys[c] != b.keys[c]) return a.keys[c] < b.keys[c];
    }
    return false;
  }
};

/// One dynamic value comparison. Defined out-of-line and called through a
/// function pointer so the compiler cannot inline it: every key comparison
/// pays a real function call, modelling the per-value callback overhead of
/// an interpreted engine (§V-B).
__attribute__((noinline)) int CompareValueU32(const uint8_t* a,
                                              const uint8_t* b) {
  uint32_t va, vb;
  std::memcpy(&va, a, sizeof(va));
  std::memcpy(&vb, b, sizeof(vb));
  return va < vb ? -1 : (va > vb ? 1 : 0);
}

using ValueComparator = int (*)(const uint8_t*, const uint8_t*);

/// Comparator state an interpreted engine would build once per query: one
/// (function pointer, offset) pair per key column.
struct DynamicComparator {
  ValueComparator compare_fns[4];
  uint64_t offsets[4];
  int num_keys;

  template <int K>
  bool Less(const MicroRow<K>& a, const MicroRow<K>& b) const {
    const uint8_t* pa = reinterpret_cast<const uint8_t*>(&a);
    const uint8_t* pb = reinterpret_cast<const uint8_t*>(&b);
    for (int c = 0; c < num_keys; ++c) {
      int cmp = compare_fns[c](pa + offsets[c], pb + offsets[c]);
      if (cmp != 0) return cmp < 0;
    }
    return false;
  }
};

template <int K>
void SortStatic(MicroRows& rows, BaseSortAlgo algo) {
  auto* data = reinterpret_cast<MicroRow<K>*>(rows.buffer.data());
  RunBaseSort(algo, data, data + rows.count, StaticLess<K>{});
}

template <int K>
void SortDynamic(MicroRows& rows, BaseSortAlgo algo) {
  DynamicComparator cmp;
  cmp.num_keys = K;
  for (int c = 0; c < K; ++c) {
    cmp.compare_fns[c] = &CompareValueU32;
    cmp.offsets[c] = c * sizeof(uint32_t);
  }
  auto* data = reinterpret_cast<MicroRow<K>*>(rows.buffer.data());
  RunBaseSort(algo, data, data + rows.count,
              [&cmp](const MicroRow<K>& a, const MicroRow<K>& b) {
                return cmp.Less<K>(a, b);
              });
}

/// Subsort over rows: sort [begin, end) by key column `col` only (no
/// branches in the comparator), recurse into tied runs.
template <int K>
void SubsortRows(MicroRow<K>* data, uint64_t begin, uint64_t end, int col,
                 BaseSortAlgo algo) {
  RunBaseSort(algo, data + begin, data + end,
              [col](const MicroRow<K>& a, const MicroRow<K>& b) {
                return a.keys[col] < b.keys[col];
              });
  if (col + 1 == K) return;
  uint64_t run_start = begin;
  for (uint64_t i = begin + 1; i <= end; ++i) {
    if (i == end || data[i].keys[col] != data[run_start].keys[col]) {
      if (i - run_start > 1) {
        SubsortRows<K>(data, run_start, i, col + 1, algo);
      }
      run_start = i;
    }
  }
}

template <int K>
void SortSubsort(MicroRows& rows, BaseSortAlgo algo) {
  auto* data = reinterpret_cast<MicroRow<K>*>(rows.buffer.data());
  if (rows.count == 0) return;
  SubsortRows<K>(data, 0, rows.count, 0, algo);
}

#define ROWSORT_DISPATCH_K(fn, rows, ...)            \
  switch (rows.num_keys) {                           \
    case 1:                                          \
      fn<1>(rows, ##__VA_ARGS__);                    \
      break;                                         \
    case 2:                                          \
      fn<2>(rows, ##__VA_ARGS__);                    \
      break;                                         \
    case 3:                                          \
      fn<3>(rows, ##__VA_ARGS__);                    \
      break;                                         \
    case 4:                                          \
      fn<4>(rows, ##__VA_ARGS__);                    \
      break;                                         \
    default:                                         \
      ROWSORT_ASSERT(false && "1..4 key columns");   \
  }

}  // namespace

uint32_t MicroRows::Key(uint64_t row, uint64_t k) const {
  return bit_util::LoadUnaligned<uint32_t>(buffer.data() + row * row_width +
                                           k * sizeof(uint32_t));
}

uint64_t MicroRows::RowId(uint64_t row) const {
  return bit_util::LoadUnaligned<uint64_t>(buffer.data() + row * row_width +
                                           row_id_offset);
}

MicroRows BuildMicroRows(const MicroColumns& columns) {
  ROWSORT_ASSERT(columns.size() >= 1 && columns.size() <= 4);
  MicroRows rows;
  rows.count = columns[0].size();
  rows.num_keys = columns.size();
  rows.row_id_offset = bit_util::AlignValue(rows.num_keys * sizeof(uint32_t));
  rows.row_width = rows.row_id_offset + sizeof(uint64_t);
  rows.buffer.assign(rows.count * rows.row_width, 0);

  // DSM -> NSM scatter, one column at a time (Fig. 1).
  for (uint64_t c = 0; c < columns.size(); ++c) {
    uint8_t* dest = rows.buffer.data() + c * sizeof(uint32_t);
    const uint32_t* src = columns[c].data();
    for (uint64_t r = 0; r < rows.count; ++r) {
      std::memcpy(dest + r * rows.row_width, &src[r], sizeof(uint32_t));
    }
  }
  uint8_t* id_dest = rows.buffer.data() + rows.row_id_offset;
  for (uint64_t r = 0; r < rows.count; ++r) {
    bit_util::StoreUnaligned<uint64_t>(id_dest + r * rows.row_width, r);
  }
  return rows;
}

void SortMicroRowsTupleStatic(MicroRows& rows, BaseSortAlgo algo) {
  ROWSORT_DISPATCH_K(SortStatic, rows, algo);
}

void SortMicroRowsTupleDynamic(MicroRows& rows, BaseSortAlgo algo) {
  ROWSORT_DISPATCH_K(SortDynamic, rows, algo);
}

void SortMicroRowsSubsort(MicroRows& rows, BaseSortAlgo algo) {
  ROWSORT_DISPATCH_K(SortSubsort, rows, algo);
}

std::vector<uint64_t> ExtractOrder(const MicroRows& rows) {
  std::vector<uint64_t> order(rows.count);
  for (uint64_t i = 0; i < rows.count; ++i) order[i] = rows.RowId(i);
  return order;
}

}  // namespace rowsort
