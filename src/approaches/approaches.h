// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <vector>

#include "sortalgo/radix_sort.h"
#include "workload/microbench.h"

namespace rowsort {

/// \file approaches.h
/// The relational-sorting approaches compared by the paper's
/// micro-benchmarks (§IV DSM vs. NSM, §V engines, §VI techniques), in one
/// place so benches and tests can pit them against each other:
///
///  columnar (DSM), sorts row indices:
///   * tuple-at-a-time — one comparator walking the key columns (Listing §IV-A)
///   * subsort         — sort by column 1, recurse into ties on column 2, ...
///
///  row (NSM), physically moves rows:
///   * tuple-at-a-time, static comparator  — inlined, "compiled engine"
///   * tuple-at-a-time, dynamic comparator — per-value function calls,
///     "interpreted engine" overhead (Fig. 6)
///   * subsort
///
///  normalized keys (NSM rows whose key bytes memcmp-order correctly, §VI):
///   * introsort/mergesort with dynamic memcmp (Fig. 8)
///   * pdqsort with dynamic memcmp (Fig. 9 baseline)
///   * radix sort, LSD/MSD dispatch (Fig. 9)
///
/// Every sorter works on data "already materialized" in its format (§IV),
/// so builders are separate from sorters and benches can time each phase.

/// Underlying general-purpose algorithm: the paper compares each approach
/// under std::sort (introsort) and std::stable_sort (merge sort), each
/// "only against itself" (§III). Ours are the from-scratch equivalents.
enum class BaseSortAlgo : uint8_t { kIntroSort, kStableMergeSort };

// --------------------------- columnar (DSM) ---------------------------

/// Identity permutation [0, n), the starting point of columnar sorts.
std::vector<uint32_t> MakeRowIndices(uint64_t count);

/// Sorts \p idxs so that columns[c][idxs[i]] is lexicographically ordered,
/// with the tuple-at-a-time comparator of §IV-A.
void SortIndicesTupleAtATime(const MicroColumns& columns,
                             std::vector<uint32_t>& idxs, BaseSortAlgo algo);

/// Same result via the subsort approach: one column at a time, recursing
/// into tied ranges.
void SortIndicesSubsort(const MicroColumns& columns,
                        std::vector<uint32_t>& idxs, BaseSortAlgo algo);

// ----------------------------- row (NSM) ------------------------------

/// Row-format micro-benchmark data: fixed-width rows laid out like the
/// paper's OrderKey struct — K uint32 keys then an 8-byte row id, 8-aligned.
struct MicroRows {
  std::vector<uint8_t> buffer;
  uint64_t count = 0;
  uint64_t num_keys = 0;
  uint64_t row_width = 0;      ///< 16 for K<=2, 24 for K<=4
  uint64_t row_id_offset = 0;  ///< byte offset of the row id

  uint32_t Key(uint64_t row, uint64_t k) const;
  uint64_t RowId(uint64_t row) const;
};

/// DSM -> NSM conversion (Fig. 1 left half) for the micro-benchmark rows.
MicroRows BuildMicroRows(const MicroColumns& columns);

/// Tuple-at-a-time with a statically compiled (inlined) comparator — what a
/// compiling query engine generates (§V-A).
void SortMicroRowsTupleStatic(MicroRows& rows, BaseSortAlgo algo);

/// Tuple-at-a-time where every value comparison goes through a function
/// pointer — the interpretation/function-call overhead of a vectorized
/// interpreted engine (§V-B, Fig. 6).
void SortMicroRowsTupleDynamic(MicroRows& rows, BaseSortAlgo algo);

/// Subsort on the row format (§IV-B).
void SortMicroRowsSubsort(MicroRows& rows, BaseSortAlgo algo);

// -------------------------- normalized keys ---------------------------

/// Rows of [normalized key bytes | padding | 8-byte row id]; memcmp of the
/// first key_width bytes gives the sort order (§VI-A).
struct NormalizedRows {
  std::vector<uint8_t> buffer;
  uint64_t count = 0;
  uint64_t key_width = 0;  ///< 4 bytes per key column (big-endian uint32)
  uint64_t row_width = 0;
  uint64_t row_id_offset = 0;

  uint64_t RowId(uint64_t row) const;
};

/// Encodes the micro columns into normalized-key rows.
NormalizedRows BuildNormalizedRows(const MicroColumns& columns);

/// Introsort/mergesort with a dynamic memcmp comparator (Fig. 8's
/// "normalized key approach with a dynamic comparator").
void SortNormalizedRowsMemcmp(NormalizedRows& rows, BaseSortAlgo algo);

/// pdqsort with dynamic memcmp (Fig. 9's comparison-sort contender).
void SortNormalizedRowsPdq(NormalizedRows& rows);

/// Byte-wise radix sort, LSD/MSD dispatched on key width (Fig. 9).
void SortNormalizedRowsRadix(NormalizedRows& rows,
                             RadixSortStats* stats = nullptr);

// ----------------------------- verification ---------------------------

/// True when \p order (row ids) lists the rows of \p columns in
/// lexicographically non-decreasing order and is a permutation of [0, n).
bool IsSortedOrder(const MicroColumns& columns,
                   const std::vector<uint64_t>& order);

/// Extracts row ids from sorted row formats / index vectors for verification.
std::vector<uint64_t> ExtractOrder(const MicroRows& rows);
std::vector<uint64_t> ExtractOrder(const NormalizedRows& rows);
std::vector<uint64_t> ExtractOrder(const std::vector<uint32_t>& idxs);

}  // namespace rowsort
