// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Normalized-key sorting approaches (paper §VI). The micro-benchmark keys
// are uint32 columns with no NULLs, so the normalized key is simply the
// big-endian concatenation of the key values; memcmp over it yields the
// lexicographic tuple order, and so does byte-wise radix sort.
#include "approaches/approaches.h"

#include <cstring>

#include "common/bit_util.h"
#include "common/macros.h"
#include "sortalgo/intro_sort.h"
#include "sortalgo/merge_sort.h"
#include "sortalgo/row_sort.h"

namespace rowsort {

namespace {

template <uint64_t W>
struct KeyRow {
  uint8_t bytes[W];
};

/// memcmp with a runtime size parameter: "pdqsort uses memcmp dynamically,
/// i.e., with a size parameter that is known at runtime, to get a fair
/// estimation of how well these algorithms would perform in an interpreted
/// execution engine" (§VI-B).
template <uint64_t W>
struct DynamicMemcmpLess {
  uint64_t key_width;
  bool operator()(const KeyRow<W>& a, const KeyRow<W>& b) const {
    return std::memcmp(a.bytes, b.bytes, key_width) < 0;
  }
};

template <uint64_t W>
void SortMemcmpFixed(NormalizedRows& rows, BaseSortAlgo algo) {
  auto* data = reinterpret_cast<KeyRow<W>*>(rows.buffer.data());
  DynamicMemcmpLess<W> less{rows.key_width};
  if (algo == BaseSortAlgo::kIntroSort) {
    IntroSort(data, data + rows.count, less);
  } else {
    StableMergeSort(data, data + rows.count, less);
  }
}

}  // namespace

uint64_t NormalizedRows::RowId(uint64_t row) const {
  return bit_util::LoadUnaligned<uint64_t>(buffer.data() + row * row_width +
                                           row_id_offset);
}

NormalizedRows BuildNormalizedRows(const MicroColumns& columns) {
  ROWSORT_ASSERT(!columns.empty());
  NormalizedRows rows;
  rows.count = columns[0].size();
  rows.key_width = columns.size() * sizeof(uint32_t);
  rows.row_id_offset = bit_util::AlignValue(rows.key_width);
  rows.row_width = rows.row_id_offset + sizeof(uint64_t);
  rows.buffer.assign(rows.count * rows.row_width, 0);

  // Key normalization, one column at a time: uint32 ascending needs only a
  // byte swap to big-endian (Fig. 7's integer rule, no sign bit for uint32).
  for (uint64_t c = 0; c < columns.size(); ++c) {
    uint8_t* dest = rows.buffer.data() + c * sizeof(uint32_t);
    const uint32_t* src = columns[c].data();
    for (uint64_t r = 0; r < rows.count; ++r) {
      bit_util::StoreUnaligned<uint32_t>(dest + r * rows.row_width,
                                         bit_util::ByteSwap(src[r]));
    }
  }
  uint8_t* id_dest = rows.buffer.data() + rows.row_id_offset;
  for (uint64_t r = 0; r < rows.count; ++r) {
    bit_util::StoreUnaligned<uint64_t>(id_dest + r * rows.row_width, r);
  }
  return rows;
}

void SortNormalizedRowsMemcmp(NormalizedRows& rows, BaseSortAlgo algo) {
  switch (rows.row_width) {
    case 16:
      SortMemcmpFixed<16>(rows, algo);
      break;
    case 24:
      SortMemcmpFixed<24>(rows, algo);
      break;
    default:
      ROWSORT_ASSERT(false && "unexpected normalized row width");
  }
}

void SortNormalizedRowsPdq(NormalizedRows& rows) {
  PdqSortRows(rows.buffer.data(), rows.count, rows.row_width, 0,
              rows.key_width);
}

void SortNormalizedRowsRadix(NormalizedRows& rows, RadixSortStats* stats) {
  std::vector<uint8_t> aux(rows.buffer.size());
  RadixSortConfig config;
  config.row_width = rows.row_width;
  config.key_offset = 0;
  config.key_width = rows.key_width;
  RadixSort(rows.buffer.data(), aux.data(), rows.count, config, stats);
}

std::vector<uint64_t> ExtractOrder(const NormalizedRows& rows) {
  std::vector<uint64_t> order(rows.count);
  for (uint64_t i = 0; i < rows.count; ++i) order[i] = rows.RowId(i);
  return order;
}

}  // namespace rowsort
