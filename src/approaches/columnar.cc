// Copyright 2026 the rowsort authors. Licensed under the MIT license.
//
// Columnar (DSM) sorting approaches (paper §IV-A). Sorting columnar data
// sorts row indices, never the column data itself: "we need to use the
// indices to access the data in the columns".
#include "approaches/approaches.h"

#include "common/macros.h"
#include "sortalgo/intro_sort.h"
#include "sortalgo/merge_sort.h"

namespace rowsort {

namespace {

template <typename It, typename Compare>
void RunBaseSort(BaseSortAlgo algo, It begin, It end, Compare comp) {
  if (algo == BaseSortAlgo::kIntroSort) {
    IntroSort(begin, end, comp);
  } else {
    StableMergeSort(begin, end, comp);
  }
}

/// Recursive subsort: sort [begin, end) of idxs by column `col` only, then
/// find runs of equal values and sort each run by the next column.
void SubsortRange(const MicroColumns& columns, uint32_t* idxs, uint64_t begin,
                  uint64_t end, uint64_t col, BaseSortAlgo algo) {
  const uint32_t* data = columns[col].data();
  // Branch-free single-column comparator (the whole point of subsort).
  RunBaseSort(algo, idxs + begin, idxs + end,
              [data](uint32_t a, uint32_t b) { return data[a] < data[b]; });
  if (col + 1 == columns.size()) return;

  // Identify tied tuples and recurse (paper §IV-A).
  uint64_t run_start = begin;
  for (uint64_t i = begin + 1; i <= end; ++i) {
    if (i == end || data[idxs[i]] != data[idxs[run_start]]) {
      if (i - run_start > 1) {
        SubsortRange(columns, idxs, run_start, i, col + 1, algo);
      }
      run_start = i;
    }
  }
}

}  // namespace

std::vector<uint32_t> MakeRowIndices(uint64_t count) {
  std::vector<uint32_t> idxs(count);
  for (uint64_t i = 0; i < count; ++i) idxs[i] = static_cast<uint32_t>(i);
  return idxs;
}

void SortIndicesTupleAtATime(const MicroColumns& columns,
                             std::vector<uint32_t>& idxs, BaseSortAlgo algo) {
  ROWSORT_ASSERT(!columns.empty() && columns.size() <= 4);
  // The paper's listing: compare indices through the columns, falling
  // through to the next key column on ties. Each access is a random access
  // into a (potentially cache-cold) column. The column count is dispatched
  // to a compile-time constant so the measured cost is the data access
  // pattern, not comparator loop overhead (the row-format approaches get the
  // same treatment, keeping the §IV comparison apples-to-apples).
  const uint32_t* col_ptrs[4] = {};
  for (uint64_t c = 0; c < columns.size(); ++c) {
    col_ptrs[c] = columns[c].data();
  }
  auto sort_with = [&](auto key_count) {
    constexpr uint64_t kKeys = decltype(key_count)::value;
    RunBaseSort(algo, idxs.begin(), idxs.end(),
                [&col_ptrs](uint32_t a, uint32_t b) {
                  for (uint64_t c = 0; c < kKeys; ++c) {
                    uint32_t va = col_ptrs[c][a];
                    uint32_t vb = col_ptrs[c][b];
                    if (va != vb) return va < vb;
                  }
                  return false;
                });
  };
  switch (columns.size()) {
    case 1:
      sort_with(std::integral_constant<uint64_t, 1>());
      break;
    case 2:
      sort_with(std::integral_constant<uint64_t, 2>());
      break;
    case 3:
      sort_with(std::integral_constant<uint64_t, 3>());
      break;
    default:
      sort_with(std::integral_constant<uint64_t, 4>());
      break;
  }
}

void SortIndicesSubsort(const MicroColumns& columns,
                        std::vector<uint32_t>& idxs, BaseSortAlgo algo) {
  ROWSORT_ASSERT(!columns.empty());
  if (idxs.empty()) return;
  SubsortRange(columns, idxs.data(), 0, idxs.size(), 0, algo);
}

std::vector<uint64_t> ExtractOrder(const std::vector<uint32_t>& idxs) {
  return {idxs.begin(), idxs.end()};
}

bool IsSortedOrder(const MicroColumns& columns,
                   const std::vector<uint64_t>& order) {
  const uint64_t n = columns[0].size();
  if (order.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (uint64_t id : order) {
    if (id >= n || seen[id]) return false;
    seen[id] = true;
  }
  for (uint64_t i = 1; i < n; ++i) {
    for (uint64_t c = 0; c < columns.size(); ++c) {
      uint32_t prev = columns[c][order[i - 1]];
      uint32_t cur = columns[c][order[i]];
      if (prev < cur) break;
      if (prev > cur) return false;
    }
  }
  return true;
}

}  // namespace rowsort
