// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "sortkey/sort_spec.h"

#include <sstream>

namespace rowsort {

uint64_t SortColumn::EncodedWidth() const {
  constexpr uint64_t kNullByte = 1;
  if (type.id() == TypeId::kVarchar) {
    return kNullByte + string_prefix_length;
  }
  return kNullByte + static_cast<uint64_t>(type.FixedSize());
}

uint64_t SortSpec::KeyWidth() const {
  uint64_t width = 0;
  for (const auto& col : columns_) width += col.EncodedWidth();
  return width;
}

bool SortSpec::NeedsTieResolution() const {
  for (const auto& col : columns_) {
    if (col.type.id() == TypeId::kVarchar && !col.prefix_covers_full_string) {
      return true;
    }
  }
  return false;
}

std::string SortSpec::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out << ", ";
    const auto& col = columns_[i];
    out << "col" << col.column_index << " "
        << (col.order == OrderType::kAscending ? "ASC" : "DESC") << " "
        << (col.null_order == NullOrder::kNullsFirst ? "NULLS FIRST"
                                                     : "NULLS LAST");
  }
  return out.str();
}

}  // namespace rowsort
