// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "sortkey/key_encoder.h"

#include <cmath>
#include <cstring>

#include "common/bit_util.h"
#include "common/macros.h"
#include "types/string_t.h"

namespace rowsort {

namespace {

constexpr uint8_t kNullFirstNull = 0x00;
constexpr uint8_t kNullFirstValid = 0x01;
constexpr uint8_t kNullLastNull = 0xFF;
constexpr uint8_t kNullLastValid = 0x00;

uint8_t NullByte(bool is_valid, NullOrder null_order) {
  if (null_order == NullOrder::kNullsFirst) {
    return is_valid ? kNullFirstValid : kNullFirstNull;
  }
  return is_valid ? kNullLastValid : kNullLastNull;
}

// --- order-preserving scalar encodings (big-endian output) ---

void EncodeU8(uint8_t v, uint8_t* out) { out[0] = v; }
void EncodeI8(int8_t v, uint8_t* out) {
  out[0] = static_cast<uint8_t>(v) ^ 0x80;
}
void EncodeU16(uint16_t v, uint8_t* out) {
  bit_util::StoreUnaligned(out, bit_util::ByteSwap(v));
}
void EncodeI16(int16_t v, uint8_t* out) {
  EncodeU16(static_cast<uint16_t>(v) ^ 0x8000u, out);
}
void EncodeU32(uint32_t v, uint8_t* out) {
  bit_util::StoreUnaligned(out, bit_util::ByteSwap(v));
}
void EncodeI32(int32_t v, uint8_t* out) {
  EncodeU32(static_cast<uint32_t>(v) ^ 0x80000000u, out);
}
void EncodeU64(uint64_t v, uint8_t* out) {
  bit_util::StoreUnaligned(out, bit_util::ByteSwap(v));
}
void EncodeI64(int64_t v, uint8_t* out) {
  EncodeU64(static_cast<uint64_t>(v) ^ 0x8000000000000000ull, out);
}

// IEEE float total order: negative -> flip all bits, non-negative -> flip
// sign bit; NaN canonicalized to a positive quiet NaN so every NaN compares
// equal and after +inf.
void EncodeF32(float v, uint8_t* out) {
  uint32_t bits;
  if (std::isnan(v)) {
    bits = 0x7FC00000u;
  } else {
    if (v == 0.0f) v = 0.0f;  // canonicalize -0.0 so it ties with +0.0
    std::memcpy(&bits, &v, sizeof(bits));
  }
  if (bits & 0x80000000u) {
    bits = ~bits;
  } else {
    bits ^= 0x80000000u;
  }
  EncodeU32(bits, out);
}
void EncodeF64(double v, uint8_t* out) {
  uint64_t bits;
  if (std::isnan(v)) {
    bits = 0x7FF8000000000000ull;
  } else {
    if (v == 0.0) v = 0.0;  // canonicalize -0.0 so it ties with +0.0
    std::memcpy(&bits, &v, sizeof(bits));
  }
  if (bits & 0x8000000000000000ull) {
    bits = ~bits;
  } else {
    bits ^= 0x8000000000000000ull;
  }
  EncodeU64(bits, out);
}

void EncodeStringPrefix(const string_t& str, uint64_t prefix_len,
                        Collation collation, uint8_t* out) {
  uint64_t copy = std::min<uint64_t>(str.size(), prefix_len);
  if (collation == Collation::kCaseInsensitive) {
    // Evaluate the collation before encoding the prefix (paper §VI-A).
    const char* src = str.data();
    for (uint64_t i = 0; i < copy; ++i) {
      char c = src[i];
      out[i] = static_cast<uint8_t>(c >= 'A' && c <= 'Z' ? c + 32 : c);
    }
  } else {
    std::memcpy(out, str.data(), copy);
  }
  if (copy < prefix_len) {
    std::memset(out + copy, 0, prefix_len - copy);
  }
}

void InvertBytes(uint8_t* bytes, uint64_t width) {
  for (uint64_t i = 0; i < width; ++i) bytes[i] = ~bytes[i];
}

/// Encodes one column of \p count rows (vector-at-a-time hot loop).
void EncodeColumn(const Vector& input, uint64_t count,
                  const SortColumn& col_spec, uint8_t* out, uint64_t stride) {
  const auto& validity = input.validity();
  const uint64_t value_width = col_spec.EncodedWidth() - 1;
  const bool desc = col_spec.order == OrderType::kDescending;

  for (uint64_t row = 0; row < count; ++row) {
    uint8_t* dest = out + row * stride;
    bool valid = validity.RowIsValid(row);
    dest[0] = NullByte(valid, col_spec.null_order);
    uint8_t* value_dest = dest + 1;
    if (!valid) {
      // Deterministic content so equal NULLs tie cleanly under memcmp.
      std::memset(value_dest, 0, value_width);
      continue;
    }
    switch (input.type().id()) {
      case TypeId::kBool:
        EncodeU8(static_cast<uint8_t>(input.TypedData<int8_t>()[row] != 0),
                 value_dest);
        break;
      case TypeId::kInt8:
        EncodeI8(input.TypedData<int8_t>()[row], value_dest);
        break;
      case TypeId::kInt16:
        EncodeI16(input.TypedData<int16_t>()[row], value_dest);
        break;
      case TypeId::kInt32:
      case TypeId::kDate:
        EncodeI32(input.TypedData<int32_t>()[row], value_dest);
        break;
      case TypeId::kInt64:
        EncodeI64(input.TypedData<int64_t>()[row], value_dest);
        break;
      case TypeId::kUint32:
        EncodeU32(input.TypedData<uint32_t>()[row], value_dest);
        break;
      case TypeId::kUint64:
        EncodeU64(input.TypedData<uint64_t>()[row], value_dest);
        break;
      case TypeId::kFloat:
        EncodeF32(input.TypedData<float>()[row], value_dest);
        break;
      case TypeId::kDouble:
        EncodeF64(input.TypedData<double>()[row], value_dest);
        break;
      case TypeId::kVarchar:
        EncodeStringPrefix(input.TypedData<string_t>()[row],
                           col_spec.string_prefix_length, col_spec.collation,
                           value_dest);
        break;
      case TypeId::kInvalid:
        ROWSORT_ASSERT(false && "encode of invalid type");
    }
    if (desc) InvertBytes(value_dest, value_width);
  }
}

}  // namespace

NormalizedKeyEncoder::NormalizedKeyEncoder(SortSpec spec)
    : spec_(std::move(spec)) {
  key_width_ = spec_.KeyWidth();
  needs_tie_resolution_ = spec_.NeedsTieResolution();
}

void NormalizedKeyEncoder::EncodeChunk(const DataChunk& chunk, uint64_t count,
                                       uint8_t* out, uint64_t stride,
                                       uint64_t offset) const {
  ROWSORT_ASSERT(stride >= offset + key_width_);
  uint64_t column_offset = offset;
  // One column (vector) at a time: the interpretation of type/order happens
  // once per column, not once per value (paper §VI-A).
  for (const auto& col_spec : spec_.columns()) {
    ROWSORT_ASSERT(col_spec.column_index < chunk.ColumnCount());
    const Vector& input = chunk.column(col_spec.column_index);
    ROWSORT_ASSERT(input.type() == col_spec.type);
    EncodeColumn(input, count, col_spec, out + column_offset, stride);
    column_offset += col_spec.EncodedWidth();
  }
}

void NormalizedKeyEncoder::EncodeValue(const Value& value,
                                       const SortColumn& col_spec,
                                       uint8_t* out) {
  ROWSORT_ASSERT(value.type() == col_spec.type);
  // Route through a one-row vector so the slow path shares the hot-path code.
  Vector vec(value.type(), 1);
  vec.SetValue(0, value);
  EncodeColumn(vec, 1, col_spec, out, col_spec.EncodedWidth());
}

}  // namespace rowsort
