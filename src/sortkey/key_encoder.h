// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>

#include "sortkey/sort_spec.h"
#include "types/value.h"
#include "vector/data_chunk.h"

namespace rowsort {

/// \brief Normalized-key encoder (paper §VI-A, Fig. 7).
///
/// Produces a single order-preserving byte string per row such that memcmp on
/// the encoded keys yields exactly the ORDER BY order — which also makes the
/// keys byte-wise radix-sortable (§VI-B). Encoding rules:
///  * every column is prefixed with a NULL byte implementing
///    NULLS FIRST (null = 0x00, valid = 0x01) or
///    NULLS LAST  (null = 0xFF, valid = 0x00);
///  * unsigned integers: big-endian byte order;
///  * signed integers: big-endian with the sign bit flipped;
///  * floats/doubles: big-endian; negative values have all bits flipped,
///    non-negative have the sign bit flipped; NaNs canonicalized to sort
///    after +infinity;
///  * VARCHAR: the first string_prefix_length bytes, zero-padded — ties past
///    the prefix are resolved by the caller comparing full strings;
///  * DESC columns have their value bytes inverted (the NULL byte is not
///    inverted: NULLS FIRST/LAST placement is absolute, as in SQL).
class NormalizedKeyEncoder {
 public:
  explicit NormalizedKeyEncoder(SortSpec spec);

  const SortSpec& spec() const { return spec_; }

  /// Total encoded key width in bytes (sum of per-column widths).
  uint64_t key_width() const { return key_width_; }

  /// True when memcmp on the key cannot break every tie (VARCHAR prefixes).
  bool needs_tie_resolution() const { return needs_tie_resolution_; }

  /// True when the encoding is exact under memcmp, which additionally makes
  /// the keys offset-value-codable (engine/offset_value.h): the first
  /// differing byte between two keys then fully determines their order.
  bool SupportsOffsetValueCoding() const { return !needs_tie_resolution_; }

  /// Encodes rows [0, count) of \p chunk. Row r's key is written at
  /// \p out + r * stride + \p offset. \p stride must be >= offset + key_width.
  /// Vector-at-a-time inner loops amortize interpretation overhead exactly as
  /// the paper prescribes ("one vector at a time").
  void EncodeChunk(const DataChunk& chunk, uint64_t count, uint8_t* out,
                   uint64_t stride, uint64_t offset = 0) const;

  /// Encodes a single Value (tests and slow paths). \p out must hold the
  /// column's EncodedWidth() bytes. \p col_spec must be one of spec's columns.
  static void EncodeValue(const Value& value, const SortColumn& col_spec,
                          uint8_t* out);

 private:
  SortSpec spec_;
  uint64_t key_width_ = 0;
  bool needs_tie_resolution_ = false;
};

}  // namespace rowsort
