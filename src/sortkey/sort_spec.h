// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "types/logical_type.h"

namespace rowsort {

/// ASC / DESC of one ORDER BY term.
enum class OrderType : uint8_t { kAscending, kDescending };

/// NULLS FIRST / NULLS LAST of one ORDER BY term.
enum class NullOrder : uint8_t { kNullsFirst, kNullsLast };

/// String collation of one ORDER BY term (paper §VI-A: "String collations
/// ... are handled by evaluating the collation before encoding the string
/// prefix"). kBinary compares raw bytes; kCaseInsensitive folds ASCII case
/// before encoding and during tie resolution (NOCASE).
enum class Collation : uint8_t { kBinary, kCaseInsensitive };

/// \brief One term of an ORDER BY clause: which column, its type, direction,
/// and NULL placement (paper §II example query).
struct SortColumn {
  uint64_t column_index = 0;
  LogicalType type;
  OrderType order = OrderType::kAscending;
  NullOrder null_order = NullOrder::kNullsLast;

  /// Number of string bytes encoded into the normalized key for VARCHAR
  /// columns (paper §VII: "we encode the first n bytes ... at most 12").
  /// Ties beyond the prefix are resolved by comparing the full strings.
  uint64_t string_prefix_length = 12;

  /// Collation applied to VARCHAR values before encoding and during tie
  /// resolution; ignored for other types.
  Collation collation = Collation::kBinary;

  /// Statistics-proven guarantee that every (collated) string fits within
  /// string_prefix_length and contains no NUL byte, so equal encoded
  /// prefixes imply equal strings: no tie resolution is needed and the
  /// radix-sort fast path becomes legal even for VARCHAR keys. Set by
  /// TuneStringPrefixes (paper §VII: prefix length "chosen at runtime based
  /// on the available statistics"). Ignored for other types.
  bool prefix_covers_full_string = false;

  SortColumn() = default;
  SortColumn(uint64_t column_index, LogicalType type,
             OrderType order = OrderType::kAscending,
             NullOrder null_order = NullOrder::kNullsLast)
      : column_index(column_index), type(type), order(order),
        null_order(null_order) {}

  /// Bytes this column contributes to the normalized key: one NULL byte plus
  /// the encoded value (fixed width, or the string prefix).
  uint64_t EncodedWidth() const;
};

/// \brief A full ORDER BY specification over the columns of a DataChunk.
class SortSpec {
 public:
  SortSpec() = default;
  explicit SortSpec(std::vector<SortColumn> columns)
      : columns_(std::move(columns)) {}

  const std::vector<SortColumn>& columns() const { return columns_; }
  uint64_t ColumnCount() const { return columns_.size(); }

  /// Total width in bytes of the normalized key for one row.
  uint64_t KeyWidth() const;

  /// True when memcmp on the normalized key alone cannot break every tie
  /// (some VARCHAR column may exceed its encoded prefix), so a comparison
  /// sort with explicit tie resolution must be used instead of radix sort.
  bool NeedsTieResolution() const;

  /// Human-readable form, e.g. "col1 DESC NULLS LAST, col0 ASC NULLS FIRST".
  std::string ToString() const;

 private:
  std::vector<SortColumn> columns_;
};

}  // namespace rowsort
