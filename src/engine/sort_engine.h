// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "engine/sorted_run.h"
#include "engine/tuple_comparator.h"
#include "parallel/thread_pool.h"
#include "row/row_collection.h"
#include "sortkey/key_encoder.h"
#include "sortkey/sort_spec.h"
#include "workload/tables.h"

namespace rowsort {

/// Which algorithm sorts the thread-local runs.
enum class RunSortAlgorithm : uint8_t {
  /// The paper's rule (§VII): radix sort on the normalized keys, pdqsort
  /// when VARCHAR prefixes may tie (strings present).
  kAuto,
  /// Always byte-wise radix sort (only valid without VARCHAR key columns).
  kRadix,
  /// Always pdqsort with the (memcmp + tie resolution) comparator.
  kPdq,
  /// Future-work heuristic (§IX): consider key size and row count — radix
  /// only where distribution sort actually wins (large n, short keys).
  kHeuristic,
};

/// Configuration of the sorting pipeline.
struct SortEngineConfig {
  uint64_t threads = 1;            ///< worker threads (1 = serial)
  uint64_t run_size_rows = 1 << 20;  ///< thread-local run generation threshold
  RunSortAlgorithm algorithm = RunSortAlgorithm::kAuto;
  /// Future-work ablation (§IX): use pdqsort inside MSD radix recursion for
  /// small buckets instead of insertion sort.
  bool pdq_inside_msd = false;
  /// Count comparator invocations during run generation and merging (for the
  /// §II comparison-count analysis); small overhead when enabled.
  bool count_comparisons = false;
  /// Future-work graceful degradation (§IX): when non-empty, every sorted
  /// run is spilled to this directory after run generation and the cascaded
  /// merge streams runs back two at a time, bounding resident memory by a
  /// few runs instead of the whole input.
  std::string spill_directory;
  /// Merge strategy ablation: false = DuckDB's 2-way cascaded merge with
  /// Merge Path parallelism (the paper's design); true = a single k-way
  /// merge over all runs at once, the strategy §VII attributes to
  /// ClickHouse and HyPer/Umbra. The k-way merge touches each row once but
  /// pays a log(k) tree comparison per output row and is one serial pass.
  bool use_kway_merge = false;
  /// Offset-value coding (Graefe & Do, arXiv:2209.08420): cache per row the
  /// offset+value of the first key byte differing from the run predecessor,
  /// so merge comparisons are usually a single integer compare instead of a
  /// full-key memcmp. Upgrades the k-way merge from a binary heap to a
  /// tournament loser tree that repairs codes incrementally, and the 2-way
  /// Merge Path slices to code-first comparisons. Automatically bypassed
  /// (full comparator merge) when truncated VARCHAR prefixes make key bytes
  /// non-decisive (TupleComparator::needs_tie_resolution()).
  bool use_offset_value_codes = true;
};

/// Measurements the pipeline records per sort (bench/§II support).
struct SortMetrics {
  uint64_t rows = 0;
  uint64_t runs_generated = 0;
  uint64_t run_generation_compares = 0;  ///< 0 when radix sort was used
  uint64_t merge_compares = 0;
  /// Merge comparisons settled by the offset-value codes alone (one integer
  /// compare, no key bytes touched). 0 when OVC is off or bypassed.
  uint64_t ovc_decided = 0;
  /// Merge comparisons that fell back to key bytes: equal codes resolved by
  /// a suffix scan past the cached offset, plus the per-slice seed and
  /// partition-boundary comparisons. The OVC analogue of merge_compares.
  uint64_t ovc_fallback_compares = 0;
  double sink_seconds = 0;      ///< DSM->NSM conversion + key normalization
  double run_sort_seconds = 0;  ///< thread-local sorts + payload reorder
  double merge_seconds = 0;     ///< cascaded merge
};

/// \brief The paper's primary contribution: a fully parallel row-based
/// relational sort for a vectorized interpreted engine (Fig. 11).
///
/// Pipeline: incoming vectors are converted to two 8-byte-aligned row
/// formats — normalized key rows and payload rows. When a thread has
/// collected run_size_rows, it sorts the key rows with radix sort (or
/// pdqsort with memcmp when strings are present), reorders the payload, and
/// publishes a fully sorted run. After all input is consumed, runs are
/// merged by a 2-way cascaded merge sort whose final merges are parallelized
/// with Merge Path partitioning. The result converts back to vectors.
///
/// Usage:
///   RelationalSort sort(spec, input_types, config);
///   auto local = sort.MakeLocalState();
///   for (chunk : input) sort.Sink(*local, chunk);   // per-thread
///   sort.CombineLocal(*local);                      // per-thread
///   sort.Finalize(&pool);                           // once
///   sort.ScanChunk(offset, &out);                   // read sorted output
class RelationalSort {
 public:
  /// \p spec's column indices refer to \p input_types; every input column is
  /// carried as payload (the sort returns complete rows).
  RelationalSort(SortSpec spec, std::vector<LogicalType> input_types,
                 SortEngineConfig config = {});
  ROWSORT_DISALLOW_COPY_AND_MOVE(RelationalSort);

  /// Thread-local sink state (one per producing thread).
  class LocalState {
   public:
    explicit LocalState(const RelationalSort& sort);

   private:
    friend class RelationalSort;
    std::vector<uint8_t> key_rows_;
    RowCollection payload_;
    uint64_t count_ = 0;
    double sink_seconds_ = 0;  ///< folded into SortMetrics at CombineLocal
  };

  std::unique_ptr<LocalState> MakeLocalState() const {
    return std::make_unique<LocalState>(*this);
  }

  /// Materializes \p chunk into \p local (key normalization + payload
  /// scatter); emits a sorted run when the local threshold is reached.
  void Sink(LocalState& local, const DataChunk& chunk);

  /// Flushes \p local's remaining rows as a final (smaller) sorted run.
  void CombineLocal(LocalState& local);

  /// Runs the cascaded merge; \p pool may be null (serial merge).
  void Finalize(ThreadPool* pool = nullptr);

  /// Total sorted rows (valid after Finalize).
  uint64_t row_count() const { return result_.count; }

  /// Gathers sorted rows [start, start + out->capacity()) into \p out;
  /// returns the number of rows produced (0 at the end).
  uint64_t ScanChunk(uint64_t start, DataChunk* out) const;

  /// The merged run (valid after Finalize).
  const SortedRun& result() const { return result_; }

  const SortMetrics& metrics() const { return metrics_; }
  const TupleComparator& comparator() const { return comparator_; }
  uint64_t key_row_width() const { return key_row_width_; }

  /// Convenience single-call API: sorts \p input with \p config.threads
  /// workers (morsel-driven: chunks are distributed across local states) and
  /// returns the sorted table. \p metrics_out is optional.
  static Table SortTable(const Table& input, const SortSpec& spec,
                         const SortEngineConfig& config = {},
                         SortMetrics* metrics_out = nullptr);

 private:
  void SortLocalRun(LocalState& local);
  SortedRun MergePair(const SortedRun& left, const SortedRun& right,
                      ThreadPool* pool);
  SortedRun MergeKWay(std::vector<SortedRun>& runs);
  SortedRun MergeKWayHeap(std::vector<SortedRun>& runs);
  SortedRun MergeKWayLoserTree(std::vector<SortedRun>& runs);
  void MergeSlice(const SortedRun& left, const SortedRun& right,
                  uint64_t left_begin, uint64_t left_end, uint64_t right_begin,
                  uint64_t right_end, SortedRun* out, uint64_t out_begin);
  void MergeSliceOvc(const SortedRun& left, const SortedRun& right,
                     uint64_t left_begin, uint64_t left_end,
                     uint64_t right_begin, uint64_t right_end, SortedRun* out,
                     uint64_t out_begin);
  bool UseRadix(uint64_t count) const;
  /// OVC merge paths are sound only when memcmp on key bytes is the total
  /// order (no truncated VARCHAR prefixes to resolve from payloads).
  bool UseOvc() const {
    return config_.use_offset_value_codes &&
           comparator_.SupportsOffsetValueCoding();
  }

  SortSpec spec_;
  std::vector<LogicalType> input_types_;
  SortEngineConfig config_;
  NormalizedKeyEncoder encoder_;
  RowLayout payload_layout_;
  TupleComparator comparator_;
  uint64_t key_row_width_ = 0;   ///< aligned key + 8-byte row id
  uint64_t row_id_offset_ = 0;

  std::mutex runs_mutex_;
  std::vector<SortedRun> runs_;
  std::vector<std::string> spilled_files_;
  uint64_t spill_counter_ = 0;
  SortedRun result_;
  SortMetrics metrics_;
  std::atomic<uint64_t> run_compares_{0};
  std::atomic<uint64_t> merge_compares_{0};
  std::atomic<uint64_t> ovc_decided_{0};
  std::atomic<uint64_t> ovc_fallback_{0};
};

}  // namespace rowsort
