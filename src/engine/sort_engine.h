// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "common/cancellation.h"
#include "common/memory_tracker.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/trace.h"
#include "engine/external_run.h"
#include "engine/memory_governor.h"
#include "engine/profile.h"
#include "engine/sorted_run.h"
#include "engine/tuple_comparator.h"
#include "parallel/thread_pool.h"
#include "row/row_collection.h"
#include "sortkey/key_encoder.h"
#include "sortkey/sort_spec.h"
#include "workload/tables.h"

namespace rowsort {

/// Which algorithm sorts the thread-local runs.
enum class RunSortAlgorithm : uint8_t {
  /// The paper's rule (§VII): radix sort on the normalized keys, pdqsort
  /// when VARCHAR prefixes may tie (strings present).
  kAuto,
  /// Always byte-wise radix sort (only valid without VARCHAR key columns).
  kRadix,
  /// Always pdqsort with the (memcmp + tie resolution) comparator.
  kPdq,
  /// Future-work heuristic (§IX): consider key size and row count — radix
  /// only where distribution sort actually wins (large n, short keys).
  kHeuristic,
};

/// Configuration of the sorting pipeline.
struct SortEngineConfig {
  uint64_t threads = 1;            ///< worker threads (1 = serial)
  uint64_t run_size_rows = 1 << 20;  ///< thread-local run generation threshold
  RunSortAlgorithm algorithm = RunSortAlgorithm::kAuto;
  /// Future-work ablation (§IX): use pdqsort inside MSD radix recursion for
  /// small buckets instead of insertion sort.
  bool pdq_inside_msd = false;
  /// Count comparator invocations during run generation and merging (for the
  /// §II comparison-count analysis); small overhead when enabled.
  bool count_comparisons = false;
  /// Directory for spill files. With memory_limit_bytes == 0 and this set,
  /// every sorted run is spilled after run generation (the pre-adaptive
  /// all-or-nothing behavior, kept for ablations). With a memory limit it
  /// is where adaptive spills land; when empty, a private directory under
  /// the system temp path is created on first spill and removed with the
  /// engine.
  std::string spill_directory;
  /// Graceful degradation (§IX): bound on the sort's tracked working set
  /// (key rows, payload rows, string heaps, OVC arrays of local state and
  /// resident runs). 0 = unlimited. When a reservation would exceed the
  /// limit, the engine spills the largest resident runs until it fits, and
  /// the merge phase streams spilled runs block by block instead of loading
  /// them whole. The materialized result handed back to the caller is not
  /// counted against the limit (see docs/robustness.md).
  uint64_t memory_limit_bytes = 0;
  /// Service integration (docs/service.md): nests this sort's tracker under
  /// \p parent_tracker, so reservations propagate to a global budget and
  /// WouldExceed() responds to fleet-wide pressure, not just this sort's
  /// own limit. Null = standalone. Must outlive the sort.
  MemoryTracker* parent_tracker = nullptr;
  /// Cross-query victim spilling: consulted (holding no engine lock) before
  /// the working set grows past a limit, giving a service the chance to
  /// free global memory held by *other* queries first. Best-effort — the
  /// engine still spills its own runs for whatever pressure remains. Null
  /// (default) = no governor. Must outlive the sort.
  MemoryGovernor* governor = nullptr;
  /// Admission priority this query runs at, forwarded to
  /// MemoryGovernor::RegisterSort so victim selection can prefer
  /// lower-priority queries. Ignored without a governor.
  TaskPriority governor_priority = TaskPriority::kNormal;
  /// Merge strategy ablation: false = DuckDB's 2-way cascaded merge with
  /// Merge Path parallelism (the paper's design); true = a single k-way
  /// merge over all runs at once, the strategy §VII attributes to
  /// ClickHouse and HyPer/Umbra. The k-way merge touches each row once but
  /// pays a log(k) tree comparison per output row and is one serial pass.
  /// Ignored (cascade is used) once any run has spilled.
  bool use_kway_merge = false;
  /// Offset-value coding (Graefe & Do, arXiv:2209.08420): cache per row the
  /// offset+value of the first key byte differing from the run predecessor,
  /// so merge comparisons are usually a single integer compare instead of a
  /// full-key memcmp. Upgrades the k-way merge from a binary heap to a
  /// tournament loser tree that repairs codes incrementally, and the 2-way
  /// Merge Path slices to code-first comparisons. Automatically bypassed
  /// (full comparator merge) when truncated VARCHAR prefixes make key bytes
  /// non-decisive (TupleComparator::needs_tie_resolution()).
  bool use_offset_value_codes = true;
  /// Data-movement ablation (docs/architecture.md, "Data movement"): true
  /// (default) = the merge inner loops emit run-length streaks — consecutive
  /// rows taken from the same input run — with one wide memcpy per streak,
  /// and the hot loops issue software prefetches; false = the per-row memcpy
  /// baseline. Output bytes are identical either way. The row-layer
  /// scatter/gather kernels have their own process-wide switch
  /// (SetRowKernelsEnabled, row/row_kernels.h).
  bool use_movement_kernels = true;
  /// Overlapped spill I/O (docs/external_sort.md): true (default) = spill
  /// writes are double-buffered write-behind (the sort thread encodes block
  /// k+1 while a per-sort background I/O thread writes block k) and external
  /// merge readers keep one block of readahead in flight; false = every
  /// fread/fwrite happens inline on the compute thread. The bytes on disk
  /// and the sorted output are byte-identical either way; only where the
  /// blocking happens changes (SortMetrics::io_wait_us shows the residual).
  bool overlap_spill_io = true;
  /// Compressed spill blocks (docs/external_sort.md#format-v3): true
  /// (default) = runs are written in the v3 format with per-section
  /// lightweight compression (prefix-delta keys, RLE/LZ payloads, raw when
  /// nothing pays), halving-or-better spill bandwidth on compressible data;
  /// false = the byte-identical v2 format of PR 6. The sorted *output* is
  /// identical either way — only the bytes on disk differ. Readers always
  /// auto-detect the format from the file magic.
  bool spill_compression = true;
  /// Cooperative cancellation / deadline for the whole pipeline. Every
  /// long-running loop (sink scatter, run sorts, merge inner loops, spill
  /// streaming) polls this token at block granularity (kCancelCheckRows) and
  /// unwinds with Status::Cancelled or Status::DeadlineExceeded through the
  /// sticky-error path — sibling threads stop promptly, spill files are
  /// still removed. Default token = never cancelled, near-zero overhead.
  CancellationToken cancellation;
  /// Span tracer for the whole pipeline (docs/observability.md): sink
  /// chunks, block sorts, radix passes, merge slices/rounds, and spill
  /// blocks record Chrome/Perfetto spans on their executing thread's track.
  /// Null (default) = no tracing; a pointer test per instrumented site. An
  /// attached-but-disabled tracer costs one relaxed load per site. The
  /// tracer must outlive the sort.
  Tracer* trace = nullptr;
  /// Trace scope (query id) this sort's spans belong to, for the merged
  /// multi-query Chrome/Perfetto export (docs/observability.md): every
  /// entry point installs the scope on its calling thread, and pool tasks /
  /// spill I/O jobs inherit it at submit time. 0 (default) = inherit the
  /// caller's current scope, or — when no scope is active and a tracer is
  /// attached — take a fresh process-unique scope so standalone sorts still
  /// export as their own "query-N" process group. A service passes the
  /// query's scope here so nested operator sorts stitch under one query.
  uint64_t trace_scope = 0;
};

/// Measurements the pipeline records per sort (bench/§II support).
struct SortMetrics {
  uint64_t rows = 0;
  uint64_t runs_generated = 0;
  uint64_t run_generation_compares = 0;  ///< 0 when radix sort was used
  uint64_t merge_compares = 0;
  /// Merge comparisons settled by the offset-value codes alone (one integer
  /// compare, no key bytes touched). 0 when OVC is off or bypassed.
  uint64_t ovc_decided = 0;
  /// Merge comparisons that fell back to key bytes: equal codes resolved by
  /// a suffix scan past the cached offset, plus the per-slice seed and
  /// partition-boundary comparisons. The OVC analogue of merge_compares.
  uint64_t ovc_fallback_compares = 0;
  /// Spill events: runs written to disk (adaptive or all-or-nothing),
  /// including intermediate external-merge outputs.
  uint64_t runs_spilled = 0;
  /// Runs this sort spilled on *another query's* behalf — a governor picked
  /// it as the victim and called SpillResidentBytes (docs/service.md).
  /// Subset of runs_spilled.
  uint64_t forced_spills = 0;
  /// High-water mark of the MemoryTracker over the sort's lifetime.
  uint64_t peak_memory_bytes = 0;
  /// Transient spill-I/O failures recovered by retry (short reads/writes,
  /// EINTR) — nonzero means the sort healed itself; see common/retry.h.
  uint64_t io_retries = 0;
  /// Cooperative cancellation checks performed (0 when no token was set).
  uint64_t cancel_checks = 0;
  /// Rows the merge paths emitted through run-length batched copies (streaks
  /// of >= 2 consecutive rows from one input flushed with a single wide
  /// memcpy). 0 with use_movement_kernels off.
  uint64_t rows_bulk_copied = 0;
  /// Column gathers (NSM -> DSM, counted per column x chunk) that took the
  /// no-NULL fast path — no per-row validity branch (row/row_kernels.h).
  /// Scan-time counters: refreshed into metrics() by SortTable and
  /// FoldRuntimeIntoProfile, not by Finalize (scans happen after it).
  uint64_t gather_fast_path = 0;
  /// Column scatters (DSM -> NSM) that took the all-valid fast path.
  uint64_t scatter_fast_path = 0;
  /// Microseconds between a cancel request and the pipeline's first
  /// observation of it; 0 unless the sort was cancelled.
  uint64_t time_to_cancel_us = 0;
  /// Microseconds compute threads spent blocked on spill I/O: the full
  /// inline fread/fwrite time with overlap_spill_io off, only the residual
  /// waits on the background worker when it is on.
  uint64_t io_wait_us = 0;
  /// Spill blocks whose background read completed before the merge asked
  /// for them (readahead fully hid the I/O). 0 with overlap off.
  uint64_t blocks_prefetched = 0;
  /// Write-behind submissions that found the previous block still in
  /// flight and had to wait (I/O slower than encode). 0 with overlap off.
  uint64_t write_behind_stalls = 0;
  /// Fan-in of the final merge pass over registered runs (the k in the
  /// closing k-way merge). Equal to runs_generated when the planner fit
  /// every run into a single pass; 0 until Finalize.
  uint64_t merge_fan_in = 0;
  /// Spill section bytes before / after v3 compression. Equal when every
  /// section degraded to raw; both 0 with spill_compression off or nothing
  /// spilled. The ratio is the spill-bandwidth saving.
  uint64_t spill_bytes_raw = 0;
  uint64_t spill_bytes_compressed = 0;
  /// v3 block sections written per codec (3 sections per block: keys,
  /// payload, strings; common/compress.h).
  uint64_t spill_sections_raw = 0;
  uint64_t spill_sections_prefix = 0;
  uint64_t spill_sections_rle = 0;
  uint64_t spill_sections_lz = 0;
  /// Microseconds spent compressing / decompressing spill sections (sort
  /// thread; overlapped with the background fwrite / fread).
  uint64_t compress_us = 0;
  uint64_t decompress_us = 0;
  double sink_seconds = 0;      ///< DSM->NSM conversion + key normalization
  double run_sort_seconds = 0;  ///< thread-local sorts + payload reorder
  double merge_seconds = 0;     ///< cascaded merge

  /// Returns every field to its default. SortTable() calls this on the
  /// caller's metrics_out before sorting, so a SortMetrics struct reused
  /// across sorts never carries counters from the previous one.
  void Reset() { *this = SortMetrics(); }
};

/// \brief The paper's primary contribution: a fully parallel row-based
/// relational sort for a vectorized interpreted engine (Fig. 11).
///
/// Pipeline: incoming vectors are converted to two 8-byte-aligned row
/// formats — normalized key rows and payload rows. When a thread has
/// collected run_size_rows, it sorts the key rows with radix sort (or
/// pdqsort with memcmp when strings are present), reorders the payload, and
/// publishes a fully sorted run. After all input is consumed, runs are
/// merged by a 2-way cascaded merge sort whose final merges are parallelized
/// with Merge Path partitioning. The result converts back to vectors.
///
/// Failure handling: every pipeline entry point returns a Status.
/// Allocation failure surfaces as Status::OutOfMemory, spill I/O failure
/// and corrupted spill files as Status::IOError; the first error is sticky
/// (subsequent calls return it) and all spill files are removed on error or
/// destruction. With SortEngineConfig::memory_limit_bytes set, the engine
/// degrades gracefully by spilling runs instead of failing (§IX). With
/// SortEngineConfig::cancellation set, a cancel request or expired deadline
/// stops every stage at block granularity (Status::Cancelled /
/// Status::DeadlineExceeded) with the same cleanup guarantees; transient
/// spill-I/O hiccups are retried with bounded backoff before they become
/// IOErrors (docs/robustness.md).
///
/// Usage:
///   RelationalSort sort(spec, input_types, config);
///   auto local = sort.MakeLocalState();
///   for (chunk : input) st = sort.Sink(*local, chunk);   // per-thread
///   st = sort.CombineLocal(*local);                      // per-thread
///   st = sort.Finalize(&pool);                           // once
///   sort.ScanChunk(offset, &out);                        // read output
class RelationalSort {
 public:
  /// \p spec's column indices refer to \p input_types; every input column is
  /// carried as payload (the sort returns complete rows).
  RelationalSort(SortSpec spec, std::vector<LogicalType> input_types,
                 SortEngineConfig config = {});
  /// Removes every live spill file (and the private spill directory, when
  /// one was created), whether the pipeline completed, failed, or was
  /// abandoned mid-flight.
  ~RelationalSort();
  ROWSORT_DISALLOW_COPY_AND_MOVE(RelationalSort);

  /// Thread-local sink state (one per producing thread).
  class LocalState {
   public:
    explicit LocalState(const RelationalSort& sort);

   private:
    friend class RelationalSort;
    std::vector<uint8_t> key_rows_;
    RowCollection payload_;
    uint64_t count_ = 0;
    /// Everything this thread measures (sink time, block-sort time, per-call
    /// latencies) lands here with no synchronization; CombineLocal folds it
    /// into SortMetrics and the SortProfile exactly once — the pipeline's
    /// single timing-aggregation path.
    ThreadProfile profile_;
    uint64_t ordinal_ = 0;    ///< stable thread slot in the profile tree
    bool combined_ = false;   ///< guards the one-time fold
    MemoryReservation key_memory_;  ///< accounts key_rows_
  };

  std::unique_ptr<LocalState> MakeLocalState() const {
    return std::make_unique<LocalState>(*this);
  }

  /// Materializes \p chunk into \p local (key normalization + payload
  /// scatter); emits a sorted run when the local threshold is reached.
  /// Spills resident runs first when the reservation would exceed the
  /// memory limit.
  Status Sink(LocalState& local, const DataChunk& chunk);

  /// Flushes \p local's remaining rows as a final (smaller) sorted run.
  Status CombineLocal(LocalState& local);

  /// Runs the cascaded merge; \p pool may be null (serial merge). Spilled
  /// runs are merged by a streaming external merge that holds O(block)
  /// memory per input.
  Status Finalize(ThreadPool* pool = nullptr);

  /// First error recorded by any pipeline stage (OK while healthy). Errors
  /// are sticky: once set, every subsequent entry point returns it.
  Status status() const;

  /// Total sorted rows (valid after Finalize).
  uint64_t row_count() const { return result_.count; }

  /// Gathers sorted rows [start, start + out->capacity()) into \p out;
  /// returns the number of rows produced (0 at the end).
  uint64_t ScanChunk(uint64_t start, DataChunk* out) const;

  /// The merged run (valid after Finalize).
  const SortedRun& result() const { return result_; }

  const SortMetrics& metrics() const { return metrics_; }

  /// The sort's hierarchical profile (docs/observability.md). Complete
  /// after a successful Finalize; after an error or cancellation it is the
  /// *partial* profile — active phase, per-thread timings folded so far,
  /// spill I/O and retry-backoff histograms. Read after the pipeline entry
  /// points have returned.
  const SortProfile& profile() const { return profile_; }

  const TupleComparator& comparator() const { return comparator_; }
  const MemoryTracker& memory_tracker() const { return tracker_; }
  uint64_t key_row_width() const { return key_row_width_; }

  /// Cross-query victim spilling (docs/service.md): writes this sort's
  /// largest resident runs to disk until at least \p target_bytes of
  /// tracked memory has been freed (or nothing evictable remains); returns
  /// the bytes actually freed. Thread-safe — a governor may call it while
  /// the owner is sinking on other threads. Declines (returns 0) once the
  /// merge phase has begun: Finalize owns the run memory from then on. A
  /// spill failure stops the eviction with the victim entry intact and does
  /// NOT poison this sort's sticky error — being a poor victim is not a
  /// failure of this query.
  uint64_t SpillResidentBytes(uint64_t target_bytes);

  /// Smallest memory_limit_bytes under which spilling can make forward
  /// progress: one spill block — min(run_size_rows, kDefaultSpillBlockRows)
  /// rows at this sort's row widths, the unit the writer encodes and the
  /// merge reader decodes. A spill attempt under a smaller nonzero limit
  /// fails fast with Status::OutOfMemory naming this value instead of
  /// thrashing.
  uint64_t MinSpillWorkingSetBytes() const;

  /// Convenience single-call API: sorts \p input with \p config.threads
  /// workers (morsel-driven: chunks are distributed across local states) and
  /// returns the sorted table. \p metrics_out and \p profile_out are
  /// optional and filled even on error (\p metrics_out is Reset() first, so
  /// reusing one struct across sorts starts each from zero; \p profile_out
  /// additionally receives the thread-pool stats of the internal pool).
  static StatusOr<Table> SortTable(const Table& input, const SortSpec& spec,
                                   const SortEngineConfig& config = {},
                                   SortMetrics* metrics_out = nullptr,
                                   SortProfile* profile_out = nullptr);

 private:
  /// One unit of the merge phase: a sorted run that is either resident in
  /// memory or spilled to a file (never both).
  struct RunEntry {
    SortedRun run;     ///< valid iff !spilled
    std::string path;  ///< valid iff spilled
    uint64_t rows = 0;
    bool spilled = false;
  };

  Status SinkImpl(LocalState& local, const DataChunk& chunk);
  Status SortLocalRun(LocalState& local);
  Status FinalizeImpl(ThreadPool* pool);
  /// Fan-in (number of simultaneous merge inputs) the external planner
  /// allows, from memory_limit_bytes and the per-input block buffering
  /// cost. Unlimited memory plans a single pass over all inputs.
  uint64_t PlanMergeFanIn(uint64_t input_count) const;
  /// Streaming k-way merge of entries_[begin, begin + count) through one
  /// OVC loser tree; resident memory is O(block) per spilled input, not
  /// O(run). to_memory == false: emits block-by-block into a fresh spill
  /// file described by *out. to_memory == true: emits straight into
  /// *result (the materialized result, not charged against the limit).
  /// Consumed inputs are released — resident memory freed, spill files
  /// deleted — as the merge completes, so peak disk stays at most input
  /// plus one output level.
  Status MergeEntryRange(uint64_t begin, uint64_t count, bool to_memory,
                         RunEntry* out, SortedRun* result);
  /// Spills the largest resident runs until reserving \p incoming_bytes
  /// more would fit under the limit (or nothing resident remains).
  Status SpillToFit(uint64_t incoming_bytes);
  Status SpillToFitLocked(uint64_t incoming_bytes);
  /// Writes \p entry's run to a fresh spill file and frees its memory.
  Status SpillEntryLocked(RunEntry& entry);
  Status EnsureSpillDirLocked();
  std::string NextSpillPathLocked();
  /// Records the first pipeline error (thread-safe; later errors are
  /// dropped) and returns the sticky status.
  Status RecordError(Status status);
  /// Rebuilds the profile's derived nodes (phase seconds, root counters,
  /// merge slices, spill I/O, retry backoff) from the engine's runtime
  /// state. Idempotent — called from both Finalize and RecordError, so a
  /// failed sort leaves a valid partial profile behind.
  void FoldRuntimeIntoProfile();
  /// Lazily starts the per-sort background spill I/O thread (first spill
  /// with overlap_spill_io on); thread-safe.
  IoWorker* EnsureIoWorker();
  /// The spill paths' shared accounting/cancellation/tracing bundle. With
  /// overlap_spill_io on it also wires the background worker, the tracker
  /// that the overlap buffers are charged against, and the shared overlap
  /// counters, turning on write-behind and readahead in every writer /
  /// reader the engine opens.
  SpillIoOptions IoOptions() {
    SpillIoOptions io;
    io.retry_stats = &io_retry_stats_;
    io.cancellation = config_.cancellation;
    io.io_profile = &spill_io_profile_;
    io.trace = config_.trace;
    // Always wired: with overlap off (or gated off), the inline fread/fwrite
    // time lands in io_wait_us, making sync vs. overlapped stalls comparable.
    io.overlap_stats = &overlap_stats_;
    // Compression stats likewise stay wired even with compression off: the
    // reader side may still decode pre-existing v3 runs.
    io.compression = config_.spill_compression;
    io.compression_stats = &compression_stats_;
    if (config_.overlap_spill_io) {
      io.worker = EnsureIoWorker();
      io.buffer_tracker = &tracker_;
    }
    return io;
  }

  SortedRun MergePair(const SortedRun& left, const SortedRun& right,
                      ThreadPool* pool);
  SortedRun MergeKWay(std::vector<SortedRun>& runs);
  SortedRun MergeKWayHeap(std::vector<SortedRun>& runs);
  SortedRun MergeKWayLoserTree(std::vector<SortedRun>& runs);
  void MergeSlice(const SortedRun& left, const SortedRun& right,
                  uint64_t left_begin, uint64_t left_end, uint64_t right_begin,
                  uint64_t right_end, SortedRun* out, uint64_t out_begin);
  void MergeSliceOvc(const SortedRun& left, const SortedRun& right,
                     uint64_t left_begin, uint64_t left_end,
                     uint64_t right_begin, uint64_t right_end, SortedRun* out,
                     uint64_t out_begin);
  bool UseRadix(uint64_t count) const;
  /// OVC merge paths are sound only when memcmp on key bytes is the total
  /// order (no truncated VARCHAR prefixes to resolve from payloads).
  bool UseOvc() const {
    return config_.use_offset_value_codes &&
           comparator_.SupportsOffsetValueCoding();
  }

  SortSpec spec_;
  std::vector<LogicalType> input_types_;
  SortEngineConfig config_;
  NormalizedKeyEncoder encoder_;
  RowLayout payload_layout_;
  TupleComparator comparator_;
  uint64_t key_row_width_ = 0;   ///< aligned key + 8-byte row id
  uint64_t row_id_offset_ = 0;
  /// Resolved trace scope (see SortEngineConfig::trace_scope): fixed at
  /// construction, installed by every pipeline entry point.
  uint64_t trace_scope_ = 0;

  /// Tracks the pipeline's resident working set; limit from
  /// config_.memory_limit_bytes (0 = account only). Mutable because const
  /// paths (MakeLocalState) hand it to thread-local state.
  mutable MemoryTracker tracker_;

  mutable std::mutex runs_mutex_;
  std::vector<RunEntry> entries_;
  std::string resolved_spill_dir_;
  bool created_spill_dir_ = false;
  /// Process-unique engine id baked into spill file names: many engines may
  /// share one spill_directory (the SortService does), so a per-engine
  /// counter alone would collide across concurrent queries.
  uint64_t spill_instance_ = 0;
  uint64_t spill_counter_ = 0;
  Status first_error_;  ///< sticky pipeline error (guarded by runs_mutex_)
  /// Latched by FinalizeImpl (guarded by runs_mutex_): the merge phase
  /// reads entries_ without the lock, so SpillResidentBytes must decline
  /// from then on.
  bool merge_active_ = false;
  SortedRun result_;
  SortMetrics metrics_;
  /// Shared by all pipeline threads; counts checks and stamps the first
  /// observation of a cancellation (SortMetrics::time_to_cancel_us).
  CancelChecker cancel_;
  /// Recovered transient spill-I/O failures (SortMetrics::io_retries).
  RetryStats io_retry_stats_;
  /// Hierarchical profile of this sort (docs/observability.md). Mutable
  /// because spill paths reachable from const-flavored accounting record
  /// into spill_io_profile_, and both live for the engine's lifetime.
  SortProfile profile_;
  /// Per-block spill write/read accounting, shared by every writer/reader
  /// this sort opens (folded into profile_'s spill node).
  mutable SpillIoProfile spill_io_profile_;
  /// Background spill I/O thread (overlap_spill_io), started on first use
  /// and shared by every writer/reader of this sort. Declared after the
  /// spill accounting it feeds and destroyed before it (reverse member
  /// order), so in-flight jobs drain while their sinks are still alive.
  std::unique_ptr<IoWorker> io_worker_;
  std::once_flag io_worker_once_;
  /// Overlap counters shared by all spill streams; folded into SortMetrics
  /// (io_wait_us / blocks_prefetched / write_behind_stalls) and the
  /// profile's spill node.
  SpillOverlapStats overlap_stats_;
  /// v3 compression counters shared by all spill streams; folded into
  /// SortMetrics (spill_bytes_raw / spill_bytes_compressed / per-codec
  /// section counts) and the profile's spill/compression node.
  SpillCompressionStats compression_stats_;
  /// Hands each LocalState a stable thread slot in the profile tree.
  mutable std::atomic<uint64_t> next_local_ordinal_{0};
  /// Fast-path scatter/gather counters from the row-kernel layer. Mutable:
  /// ScanChunk (const) gathers through it; the atomics make concurrent
  /// sinks safe.
  mutable RowKernelStats kernel_stats_;
  /// Rows emitted via run-length batched merge copies (streak length >= 2).
  std::atomic<uint64_t> rows_bulk_copied_{0};
  std::atomic<uint64_t> run_compares_{0};
  std::atomic<uint64_t> merge_compares_{0};
  std::atomic<uint64_t> ovc_decided_{0};
  std::atomic<uint64_t> ovc_fallback_{0};
};

}  // namespace rowsort
