// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/sorted_run.h"

namespace rowsort {

/// \file offset_value.h
/// Offset-value coding (OVC) for the merge phase (Graefe & Do,
/// arXiv:2209.08420 / arXiv:2210.00034). Each row of a sorted run caches, as
/// one integer, the offset of the first normalized-key byte that differs
/// from the run predecessor plus the value of that byte. During merging,
/// whenever two candidate rows carry codes relative to the *same* earlier
/// row (their shared "base"), a single integer comparison of the codes
/// decides their order; only equal codes require touching key bytes again,
/// and then only the suffix past the cached offset.
///
/// Encoding, for a normalized key of \c key_width bytes compared ascending
/// with memcmp: let \c k be the index of the first byte where row R differs
/// from its base B (R >= B, so R[k] > B[k]). Then
///
///   code(R | B) = ((key_width - k) << 8) | R[k]
///
/// and code(R | B) == kOvcEqual (0) when R's key equals B's. Packing the
/// *descending* offset before the value byte makes codes order-preserving:
/// a row that deviates from the shared base earlier deviates upward with a
/// larger byte, so a larger code always means a larger key.
///
/// Soundness requires that memcmp on the normalized key decides the total
/// order, i.e. NormalizedKeyEncoder::needs_tie_resolution() is false
/// (truncated VARCHAR prefixes would make equal key bytes ambiguous). The
/// engine gates the OVC merge paths on exactly that predicate.

/// Code of a row whose key equals its base's key.
constexpr uint64_t kOvcEqual = 0;

/// Sentinel ordering above every valid code; used for exhausted merge
/// cursors (a valid code is at most ((key_width) << 8) | 0xFF).
constexpr uint64_t kOvcExhausted = ~uint64_t{0};

/// Packs the code of a row differing from its base at byte \p diff_index
/// (0-based) with row byte \p value there.
inline uint64_t MakeOvc(uint64_t key_width, uint64_t diff_index,
                        uint8_t value) {
  return ((key_width - diff_index) << 8) | value;
}

/// Index of the first differing byte cached in a non-equal \p ovc.
inline uint64_t OvcDiffIndex(uint64_t key_width, uint64_t ovc) {
  return key_width - (ovc >> 8);
}

/// Compares key bytes [\p begin, \p key_width) of \p a and \p b; on the
/// first difference stores its index in \p diff_index and returns <0/>0.
/// Returns 0 (diff_index untouched) when the suffixes are equal.
int CompareKeySuffix(const uint8_t* a, const uint8_t* b, uint64_t begin,
                     uint64_t key_width, uint64_t* diff_index);

/// Code of a run's first row, taken relative to the virtual "minus
/// infinity" key of key_width zero bytes (<= every key under memcmp). With
/// this convention the leading rows of all runs share one base, so merge
/// initialization needs no special-cased full comparisons.
uint64_t DeriveHeadOvc(const uint8_t* key, uint64_t key_width);

/// Code of \p key relative to its in-run predecessor \p prev (prev <= key).
uint64_t DeriveSuccessorOvc(const uint8_t* prev, const uint8_t* key,
                            uint64_t key_width);

/// Derives the full per-row code vector of a sorted run: row 0 via
/// DeriveHeadOvc, row i via DeriveSuccessorOvc against row i-1. O(n) with
/// early-exit byte scans (duplicate-heavy runs scan whole keys).
std::vector<uint64_t> DeriveRunOvcs(const SortedRun& run, uint64_t key_width);

}  // namespace rowsort
