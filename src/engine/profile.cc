// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "engine/profile.h"

#include <cstdio>

#include "common/string_util.h"

namespace rowsort {

const char* SortPhaseName(SortPhase phase) {
  switch (phase) {
    case SortPhase::kIdle:
      return "idle";
    case SortPhase::kSink:
      return "sink";
    case SortPhase::kRunSort:
      return "run_sort";
    case SortPhase::kMerge:
      return "merge";
    case SortPhase::kDone:
      return "done";
  }
  return "unknown";
}

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StringFormat("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

ProfileNode* ProfileNode::Child(const std::string& child_name) {
  for (auto& child : children) {
    if (child->name == child_name) return child.get();
  }
  children.push_back(std::make_unique<ProfileNode>(child_name));
  return children.back().get();
}

const ProfileNode* ProfileNode::FindChild(const std::string& child_name) const {
  for (const auto& child : children) {
    if (child->name == child_name) return child.get();
  }
  return nullptr;
}

void ProfileNode::SetCounter(const std::string& counter_name, uint64_t value) {
  for (auto& kv : counters) {
    if (kv.first == counter_name) {
      kv.second = value;
      return;
    }
  }
  counters.emplace_back(counter_name, value);
}

uint64_t ProfileNode::counter(const std::string& counter_name) const {
  for (const auto& kv : counters) {
    if (kv.first == counter_name) return kv.second;
  }
  return 0;
}

double ProfileNode::ChildSeconds() const {
  double total = 0;
  for (const auto& child : children) total += child->seconds;
  return total;
}

std::unique_ptr<ProfileNode> ProfileNode::Clone() const {
  auto copy = std::make_unique<ProfileNode>(name);
  copy->invocations = invocations;
  copy->rows = rows;
  copy->seconds = seconds;
  copy->latencies = latencies;
  copy->counters = counters;
  copy->children.reserve(children.size());
  for (const auto& child : children) copy->children.push_back(child->Clone());
  return copy;
}

void ProfileNode::AppendJson(std::string* out) const {
  *out += "{\"name\":";
  AppendJsonString(out, name);
  *out += StringFormat(",\"invocations\":%llu,\"rows\":%llu,\"seconds\":%.9f",
                       (unsigned long long)invocations,
                       (unsigned long long)rows, seconds);
  if (!counters.empty()) {
    *out += ",\"counters\":{";
    bool first = true;
    for (const auto& kv : counters) {
      if (!first) *out += ",";
      first = false;
      AppendJsonString(out, kv.first);
      *out += StringFormat(":%llu", (unsigned long long)kv.second);
    }
    *out += "}";
  }
  if (latencies.count() > 0) {
    *out += ",\"latency_ns\":";
    *out += latencies.ToJson();
  }
  if (!children.empty()) {
    *out += ",\"children\":[";
    for (size_t i = 0; i < children.size(); ++i) {
      if (i > 0) *out += ",";
      children[i]->AppendJson(out);
    }
    *out += "]";
  }
  *out += "}";
}

void ProfileNode::AppendPretty(std::string* out, const std::string& prefix,
                               bool last, bool is_root) const {
  if (is_root) {
    *out += name;
  } else {
    *out += prefix + (last ? "└── " : "├── ") + name;
  }
  std::string detail;
  if (seconds > 0) detail += "  " + FormatDuration(seconds);
  if (rows > 0) detail += "  rows=" + FormatCount(rows);
  if (invocations > 0) {
    detail += StringFormat("  calls=%llu", (unsigned long long)invocations);
  }
  if (latencies.count() > 0) {
    detail += StringFormat(
        "  lat[mean=%s p99<=%s max=%s]",
        FormatDuration(latencies.mean_ns() * 1e-9).c_str(),
        FormatDuration(latencies.QuantileUpperNs(0.99) * 1e-9).c_str(),
        FormatDuration(latencies.max_ns() * 1e-9).c_str());
  }
  for (const auto& kv : counters) {
    detail += StringFormat("  %s=%s", kv.first.c_str(),
                           FormatCount(kv.second).c_str());
  }
  *out += detail + "\n";
  std::string child_prefix =
      is_root ? "" : prefix + (last ? "    " : "│   ");
  for (size_t i = 0; i < children.size(); ++i) {
    children[i]->AppendPretty(out, child_prefix, i + 1 == children.size(),
                              /*is_root=*/false);
  }
}

SortProfile::SortProfile() { root_.name = "sort"; }

void SortProfile::FoldThread(uint64_t ordinal, const ThreadProfile& thread) {
  std::string label = StringFormat("thread-%llu", (unsigned long long)ordinal);
  std::lock_guard<std::mutex> lock(mutex_);
  ProfileNode* sink =
      root_.Child("sink")->Child(label);
  sink->invocations = thread.chunks;
  sink->rows = thread.rows;
  sink->seconds = thread.sink_seconds;
  sink->latencies = thread.sink_chunk_ns;
  ProfileNode* run_sort = root_.Child("run_sort")->Child(label);
  run_sort->invocations = thread.runs;
  run_sort->rows = thread.rows;
  run_sort->seconds = thread.run_sort_seconds;
  run_sort->latencies = thread.block_sort_ns;
}

void SortProfile::SetMergeRound(uint64_t round, uint64_t merges, uint64_t rows,
                                double seconds) {
  std::string label = StringFormat("round-%llu", (unsigned long long)round);
  std::lock_guard<std::mutex> lock(mutex_);
  ProfileNode* node = root_.Child("merge")->Child(label);
  node->invocations = merges;
  node->rows = rows;
  node->seconds = seconds;
}

void SortProfile::SetPhaseSeconds(double sink, double run_sort, double merge) {
  std::lock_guard<std::mutex> lock(mutex_);
  root_.Child("sink")->seconds = sink;
  root_.Child("run_sort")->seconds = run_sort;
  root_.Child("merge")->seconds = merge;
  root_.seconds = sink + run_sort + merge;
}

void SortProfile::SetRows(uint64_t rows) {
  std::lock_guard<std::mutex> lock(mutex_);
  root_.rows = rows;
  root_.invocations = 1;
}

void SortProfile::SetRootCounter(const std::string& name, uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  root_.SetCounter(name, value);
}

void SortProfile::FoldSpillIo(const SpillIoProfile& io) {
  // Snapshot outside the lock; the atomics never block.
  uint64_t blocks_written = io.blocks_written();
  uint64_t blocks_read = io.blocks_read();
  if (blocks_written == 0 && blocks_read == 0) return;
  DurationHistogram writes = io.write_latencies();
  DurationHistogram reads = io.read_latencies();
  std::lock_guard<std::mutex> lock(mutex_);
  ProfileNode* spill = root_.Child("spill");
  ProfileNode* write = spill->Child("write");
  write->invocations = blocks_written;
  write->rows = io.rows_written();
  write->seconds = writes.total_seconds();
  write->latencies = writes;
  write->SetCounter("bytes", io.bytes_written());
  ProfileNode* read = spill->Child("read");
  read->invocations = blocks_read;
  read->rows = io.rows_read();
  read->seconds = reads.total_seconds();
  read->latencies = reads;
  read->SetCounter("bytes", io.bytes_read());
  spill->seconds = write->seconds + read->seconds +
                   spill->Child("retry_backoff")->seconds;
}

void SortProfile::FoldRetryBackoff(uint64_t io_retries,
                                   const DurationHistogram& backoff_waits) {
  if (io_retries == 0 && backoff_waits.count() == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ProfileNode* spill = root_.Child("spill");
  ProfileNode* node = spill->Child("retry_backoff");
  node->invocations = backoff_waits.count();
  node->seconds = backoff_waits.total_seconds();
  node->latencies = backoff_waits;
  node->SetCounter("io_retries", io_retries);
  const ProfileNode* write = spill->FindChild("write");
  const ProfileNode* read = spill->FindChild("read");
  spill->seconds = node->seconds + (write ? write->seconds : 0) +
                   (read ? read->seconds : 0);
}

void SortProfile::FoldSpillOverlap(const SpillOverlapStats& overlap,
                                   const IoWorkerStatsSnapshot& worker) {
  const uint64_t io_wait_us =
      overlap.io_wait_us.load(std::memory_order_relaxed);
  const uint64_t prefetched =
      overlap.blocks_prefetched.load(std::memory_order_relaxed);
  const uint64_t stalls =
      overlap.write_behind_stalls.load(std::memory_order_relaxed);
  if (io_wait_us == 0 && prefetched == 0 && stalls == 0 &&
      worker.jobs_executed == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ProfileNode* spill = root_.Child("spill");
  spill->SetCounter("io_wait_us", io_wait_us);
  spill->SetCounter("blocks_prefetched", prefetched);
  spill->SetCounter("write_behind_stalls", stalls);
  if (worker.jobs_executed > 0) {
    // Mirrors the parallel node's queue-wait/run split for the single spill
    // I/O thread.
    ProfileNode* node = spill->Child("io_worker");
    node->invocations = worker.jobs_executed;
    node->seconds = worker.busy_seconds;
    node->latencies = worker.run_ns;
    node->SetCounter("max_queue_depth", worker.max_queue_depth);
    node->SetCounter("submit_blocked", worker.submit_blocked);
    node->SetCounter("queue_wait_us",
                     static_cast<uint64_t>(worker.queue_wait_ns.total_ns() /
                                           1000));
  }
}

void SortProfile::FoldSpillCompression(const SpillCompressionStats& compression) {
  const uint64_t bytes_raw =
      compression.bytes_raw.load(std::memory_order_relaxed);
  const uint64_t bytes_compressed =
      compression.bytes_compressed.load(std::memory_order_relaxed);
  if (bytes_raw == 0 && bytes_compressed == 0) return;
  DurationHistogram compress = compression.compress_ns.Snapshot();
  DurationHistogram decompress = compression.decompress_ns.Snapshot();
  std::lock_guard<std::mutex> lock(mutex_);
  ProfileNode* node = root_.Child("spill")->Child("compression");
  node->invocations = compress.count() + decompress.count();
  node->seconds = compress.total_seconds() + decompress.total_seconds();
  node->SetCounter("bytes_raw", bytes_raw);
  node->SetCounter("bytes_compressed", bytes_compressed);
  node->SetCounter(
      "sections_raw", compression.sections_raw.load(std::memory_order_relaxed));
  node->SetCounter(
      "sections_prefix",
      compression.sections_prefix.load(std::memory_order_relaxed));
  node->SetCounter(
      "sections_rle", compression.sections_rle.load(std::memory_order_relaxed));
  node->SetCounter(
      "sections_lz", compression.sections_lz.load(std::memory_order_relaxed));
  ProfileNode* enc = node->Child("compress");
  enc->invocations = compress.count();
  enc->seconds = compress.total_seconds();
  enc->latencies = compress;
  ProfileNode* dec = node->Child("decompress");
  dec->invocations = decompress.count();
  dec->seconds = decompress.total_seconds();
  dec->latencies = decompress;
}

void SortProfile::FoldMergeSlices() {
  DurationHistogram slices = merge_slice_ns_.Snapshot();
  if (slices.count() == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ProfileNode* node = root_.Child("merge")->Child("slices");
  node->invocations = slices.count();
  node->rows = merge_slice_rows_.load(std::memory_order_relaxed);
  node->seconds = slices.total_seconds();
  node->latencies = slices;
}

void SortProfile::FoldPool(const ThreadPoolStatsSnapshot& pool) {
  std::lock_guard<std::mutex> lock(mutex_);
  ProfileNode* node = root_.Child("parallel");
  node->invocations = pool.tasks_executed;
  node->SetCounter("tasks_skipped", pool.tasks_skipped);
  node->SetCounter("batches", pool.batches);
  node->SetCounter("max_queue_depth", pool.max_queue_depth);
  for (uint64_t p = 0; p < kTaskPriorityCount; ++p) {
    node->SetCounter(
        StringFormat("tasks_%s",
                     TaskPriorityName(static_cast<TaskPriority>(p))),
        pool.tasks_per_priority[p]);
  }
  ProfileNode* wait = node->Child("queue_wait");
  wait->invocations = pool.queue_wait_ns.count();
  wait->seconds = pool.queue_wait_ns.total_seconds();
  wait->latencies = pool.queue_wait_ns;
  ProfileNode* run = node->Child("task_run");
  run->invocations = pool.run_ns.count();
  run->seconds = pool.run_ns.total_seconds();
  run->latencies = pool.run_ns;
  double busy = 0;
  for (size_t i = 0; i < pool.thread_busy_seconds.size(); ++i) {
    ProfileNode* worker =
        node->Child(StringFormat("thread-%llu", (unsigned long long)i));
    worker->seconds = pool.thread_busy_seconds[i];
    busy += pool.thread_busy_seconds[i];
  }
  node->seconds = busy;
}

void SortProfile::CopyFrom(const SortProfile& other) {
  // Lock ordering: other first, then this. CopyFrom is only called with
  // `other` = the engine's internal profile and `this` = a caller-owned
  // output, so there is no lock-cycle risk.
  std::unique_ptr<ProfileNode> copy;
  uint8_t phase;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    copy = other.root_.Clone();
    phase = other.active_phase_.load(std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  root_ = std::move(*copy);
  active_phase_.store(phase, std::memory_order_relaxed);
}

double SortProfile::PhaseSeconds(const std::string& phase_name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const ProfileNode* node = root_.FindChild(phase_name);
  return node == nullptr ? 0.0 : node->seconds;
}

std::string SortProfile::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"schema\":\"rowsort.profile.v1\",\"active_phase\":";
  AppendJsonString(&out, SortPhaseName(active_phase()));
  out += ",\"profile\":";
  root_.AppendJson(&out);
  out += "}";
  return out;
}

std::string SortProfile::ToString() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out += StringFormat("-- sort profile (phase: %s) --\n",
                      SortPhaseName(active_phase()));
  root_.AppendPretty(&out, "", true);
  return out;
}

Status SortProfile::WriteJson(const std::string& path) const {
  std::string json = ToJson();
  json += "\n";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError(
        StringFormat("cannot open profile output '%s'", path.c_str()));
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IOError(
        StringFormat("short write to profile output '%s'", path.c_str()));
  }
  return Status::OK();
}

}  // namespace rowsort
