// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/sort_engine.h"
#include "workload/tables.h"

namespace rowsort {

/// One equi-join predicate: left.columns[left_column] =
/// right.columns[right_column]; both sides must have the same type.
struct JoinKey {
  uint64_t left_column = 0;
  uint64_t right_column = 0;
};

/// \brief Sort-merge inner equi-join built on the sorting pipeline.
///
/// The paper motivates cheap full-tuple comparisons with exactly this
/// operator (§V-B: "merge joins ... iterate sequentially over sorted runs
/// and compare tuples. ... the decision of incrementing either the left or
/// right iterator relies on a full tuple comparison"). Both inputs are
/// sorted by their join keys with the row-based pipeline; the merge then
/// compares *normalized keys* across the two tables with a single memcmp
/// per step — the interpreted engine pays no per-column interpretation in
/// the join loop, which is the paper's point.
///
/// Semantics: SQL inner join — rows with a NULL in any join key never match.
/// Output columns are the left table's columns followed by the right
/// table's; row order follows the sorted key order (groups of duplicate
/// keys produce their cross product).
///
/// Failures from the sorting pipeline (OOM, spill I/O, cancellation or an
/// expired deadline via \p config.cancellation) surface as the returned
/// Status; the join loop itself also polls the token at block granularity.
StatusOr<Table> SortMergeJoin(const Table& left, const Table& right,
                              const std::vector<JoinKey>& keys,
                              const SortEngineConfig& config = {});

}  // namespace rowsort
