// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>

#include "parallel/thread_pool.h"

namespace rowsort {

class RelationalSort;

/// \brief Cross-query memory arbitration hook (docs/service.md).
///
/// A sort configured with SortEngineConfig::governor consults it right
/// before growing its tracked working set past a limit — its own or an
/// ancestor's in the MemoryTracker chain. The implementation (typically a
/// SortService) may free global memory by forcing *other* queries to write
/// their resident runs to disk (RelationalSort::SpillResidentBytes), so
/// that fleet-wide pressure lands on the cheapest victim instead of on
/// whoever happened to allocate last.
///
/// The call is best-effort: the engine re-checks its tracker afterwards and
/// falls back to spilling its own runs for whatever pressure remains.
class MemoryGovernor {
 public:
  virtual ~MemoryGovernor() = default;

  /// Invoked by \p requester from its sink path, holding no engine lock,
  /// when reserving \p bytes more would exceed a limit. Implementations may
  /// call back into other RelationalSort instances (victim spilling) but
  /// must not call back into \p requester. \p requester may be null when the
  /// caller is an operator without spillable state of its own (Top-N, window
  /// rank vectors, join match lists) — such callers can never be picked as
  /// victims but still want pressure shed onto registered sorts.
  virtual void EnsureCapacity(uint64_t bytes, RelationalSort* requester) = 0;

  /// Victim registry. A RelationalSort whose config names a governor calls
  /// RegisterSort from its constructor and UnregisterSort from the top of
  /// its destructor, so every engine under governance — including sorts
  /// nested inside window/join operators — is a candidate victim for
  /// EnsureCapacity. \p priority is the query's admission priority
  /// (SortEngineConfig::governor_priority); lower-priority queries are
  /// preferred victims. UnregisterSort must not return while the governor
  /// still holds a pinned reference to \p sort (it blocks until any
  /// in-flight victim spill against it drains). Default no-ops keep
  /// standalone governors (tests) source-compatible.
  virtual void RegisterSort(RelationalSort* sort, TaskPriority priority) {
    (void)sort;
    (void)priority;
  }
  virtual void UnregisterSort(RelationalSort* sort) { (void)sort; }
};

}  // namespace rowsort
