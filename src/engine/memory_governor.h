// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>

namespace rowsort {

class RelationalSort;

/// \brief Cross-query memory arbitration hook (docs/service.md).
///
/// A sort configured with SortEngineConfig::governor consults it right
/// before growing its tracked working set past a limit — its own or an
/// ancestor's in the MemoryTracker chain. The implementation (typically a
/// SortService) may free global memory by forcing *other* queries to write
/// their resident runs to disk (RelationalSort::SpillResidentBytes), so
/// that fleet-wide pressure lands on the cheapest victim instead of on
/// whoever happened to allocate last.
///
/// The call is best-effort: the engine re-checks its tracker afterwards and
/// falls back to spilling its own runs for whatever pressure remains.
class MemoryGovernor {
 public:
  virtual ~MemoryGovernor() = default;

  /// Invoked by \p requester from its sink path, holding no engine lock,
  /// when reserving \p bytes more would exceed a limit. Implementations may
  /// call back into other RelationalSort instances (victim spilling) but
  /// must not call back into \p requester.
  virtual void EnsureCapacity(uint64_t bytes, RelationalSort* requester) = 0;
};

}  // namespace rowsort
