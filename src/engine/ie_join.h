// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>

#include "engine/sort_engine.h"
#include "workload/tables.h"

namespace rowsort {

/// Inequality predicate operators.
enum class InequalityOp : uint8_t {
  kLess,          ///< left.col <  right.col
  kLessEqual,     ///< left.col <= right.col
  kGreater,       ///< left.col >  right.col
  kGreaterEqual,  ///< left.col >= right.col
};

/// \brief Inequality join built on sorted runs (paper §II: "other operations
/// such as index construction, merge joins, and inequality joins may
/// implicitly rely on sorting", citing Khayyat et al.'s IEJoin).
///
/// Both inputs are sorted by their join column with the row-based pipeline;
/// the join then binary-searches the right run's *normalized keys* once per
/// left row (a memcmp-based bound search over the sorted key rows) and emits
/// the qualifying suffix/prefix. Complexity O(n log n + output).
///
/// Semantics: SQL inner join; NULL keys never match. Fixed-width key types
/// only (inequalities over VARCHAR prefixes cannot be decided by the
/// normalized key alone). Output columns: left's then right's.
///
/// Pipeline failures (OOM, spill I/O, cancellation / deadline via
/// \p config.cancellation) surface as the returned Status; the join's own
/// loops poll the token at block granularity.
StatusOr<Table> InequalityJoin(const Table& left, const Table& right,
                               uint64_t left_column, uint64_t right_column,
                               InequalityOp op,
                               const SortEngineConfig& config = {});

/// One inequality predicate of a two-predicate IEJoin.
struct InequalityPredicate {
  uint64_t left_column = 0;
  uint64_t right_column = 0;
  InequalityOp op = InequalityOp::kLess;
};

/// \brief Two-predicate inequality join (IEJoin, Khayyat et al., cited by
/// the paper as an implicit consumer of sorting):
///
///   left JOIN right ON (l.a op1 r.a') AND (l.b op2 r.b')
///
/// Structure of the algorithm (the sorted-array + bitmap core of IEJoin):
/// both inputs are sorted by the first predicate's column so that, scanning
/// the left rows in that order, the right rows satisfying predicate 1 grow
/// monotonically; each newly qualifying right row sets a bit at its *rank in
/// the second column's order*; predicate 2 then selects a contiguous rank
/// range, emitted by scanning the bitmap with word-skipping. Complexity
/// O(n log n + n·m/64 + output), versus O(n·m) nested loops.
///
/// Semantics: SQL inner join; NULL keys never match; fixed-width key types
/// only. Output columns: left's then right's. Cancellation as in
/// InequalityJoin.
StatusOr<Table> IEJoin(const Table& left, const Table& right,
                       const InequalityPredicate& pred1,
                       const InequalityPredicate& pred2,
                       const SortEngineConfig& config = {});

}  // namespace rowsort
