// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "engine/window.h"

#include "common/macros.h"
#include "engine/tuple_comparator.h"

namespace rowsort {

StatusOr<Table> ComputeWindow(const Table& input, const WindowSpec& spec,
                              const std::vector<WindowFunction>& functions,
                              const SortEngineConfig& config) {
  ROWSORT_ASSERT(!functions.empty());
  ROWSORT_ASSERT(!spec.partition_by.empty() || !spec.order_by.empty());

  // Combined sort: partition columns first (ASC NULLS FIRST groups NULL
  // partitions together), then the ORDER BY columns.
  std::vector<SortColumn> sort_columns;
  for (uint64_t col : spec.partition_by) {
    ROWSORT_ASSERT(col < input.types().size());
    sort_columns.emplace_back(col, input.types()[col], OrderType::kAscending,
                              NullOrder::kNullsFirst);
  }
  for (const auto& order_col : spec.order_by) {
    sort_columns.push_back(order_col);
  }
  SortSpec full_spec(sort_columns);
  SortSpec partition_spec(std::vector<SortColumn>(
      sort_columns.begin(),
      sort_columns.begin() + spec.partition_by.size()));

  RelationalSort sort(full_spec, input.types(), config);
  auto local = sort.MakeLocalState();
  for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
    ROWSORT_RETURN_NOT_OK(sort.Sink(*local, input.chunk(c)));
  }
  ROWSORT_RETURN_NOT_OK(sort.CombineLocal(*local));
  ROWSORT_RETURN_NOT_OK(sort.Finalize());
  const SortedRun& run = sort.result();

  // Partition boundaries compare only the leading key segments; peer groups
  // compare the full key. Both comparators read the same key rows (the
  // partition segments are a prefix of the full key).
  RowLayout payload_layout(input.types());
  TupleComparator partition_cmp(partition_spec, payload_layout);
  const TupleComparator& full_cmp = sort.comparator();

  // The rank scratch vectors are the operator's own working set (3 words per
  // row on top of the sorted run). Charge them to the caller's budget chain
  // and let a governor shed the pressure onto spillable victims first, so a
  // service sees every byte this operator holds (docs/service.md).
  MemoryTracker scratch_tracker(0, config.parent_tracker);
  const uint64_t rank_bytes = 3 * sizeof(int64_t) * run.count;
  if (config.governor != nullptr && scratch_tracker.WouldExceed(rank_bytes)) {
    config.governor->EnsureCapacity(rank_bytes, nullptr);
  }
  MemoryReservation rank_memory;
  rank_memory.Reset(&scratch_tracker, rank_bytes);
  std::vector<int64_t> row_number(run.count), rank(run.count),
      dense_rank(run.count);
  int64_t current_row = 0, current_rank = 0, current_dense = 0;
  for (uint64_t i = 0; i < run.count; ++i) {
    if ((i & (kCancelCheckRows - 1)) == 0) {
      ROWSORT_RETURN_NOT_OK(config.cancellation.CheckForCancellation());
    }
    bool new_partition =
        i == 0 ||
        (!spec.partition_by.empty() &&
         partition_cmp.Compare(run.KeyRow(i - 1), run.PayloadRow(i - 1),
                               run.KeyRow(i), run.PayloadRow(i)) != 0);
    bool new_peer_group =
        new_partition ||
        full_cmp.Compare(run.KeyRow(i - 1), run.PayloadRow(i - 1),
                         run.KeyRow(i), run.PayloadRow(i)) != 0;
    if (new_partition) {
      current_row = 0;
      current_rank = 0;
      current_dense = 0;
    }
    ++current_row;
    if (new_peer_group) {
      current_rank = current_row;
      ++current_dense;
    }
    row_number[i] = current_row;
    rank[i] = current_rank;
    dense_rank[i] = current_dense;
  }

  // Assemble output: payload columns + one INT64 column per function.
  std::vector<LogicalType> out_types = input.types();
  std::vector<std::string> out_names = input.names();
  for (WindowFunction fn : functions) {
    out_types.push_back(LogicalType(TypeId::kInt64));
    if (!out_names.empty()) {
      switch (fn) {
        case WindowFunction::kRowNumber:
          out_names.push_back("row_number");
          break;
        case WindowFunction::kRank:
          out_names.push_back("rank");
          break;
        case WindowFunction::kDenseRank:
          out_names.push_back("dense_rank");
          break;
      }
    }
  }
  Table out(out_types, out_names);
  const uint64_t payload_cols = input.types().size();
  uint64_t offset = 0;
  while (offset < run.count) {
    ROWSORT_RETURN_NOT_OK(config.cancellation.CheckForCancellation());
    uint64_t n = std::min(kVectorSize, run.count - offset);
    DataChunk payload_chunk;
    payload_chunk.Initialize(input.types());
    run.payload.GatherChunk(offset, n, &payload_chunk);

    DataChunk out_chunk = out.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      for (uint64_t c = 0; c < payload_cols; ++c) {
        out_chunk.SetValue(c, r, payload_chunk.GetValue(c, r));
      }
      for (uint64_t f = 0; f < functions.size(); ++f) {
        int64_t value = 0;
        switch (functions[f]) {
          case WindowFunction::kRowNumber:
            value = row_number[offset + r];
            break;
          case WindowFunction::kRank:
            value = rank[offset + r];
            break;
          case WindowFunction::kDenseRank:
            value = dense_rank[offset + r];
            break;
        }
        out_chunk.SetValue(payload_cols + f, r, Value::Int64(value));
      }
    }
    out_chunk.SetSize(n);
    out.Append(std::move(out_chunk));
    offset += n;
  }
  return out;
}

}  // namespace rowsort
