// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "engine/merge_path.h"

#include "common/macros.h"

namespace rowsort {

uint64_t MergePathSearch(const SortedRun& left, const SortedRun& right,
                         const TupleComparator& comparator,
                         uint64_t diagonal) {
  ROWSORT_ASSERT(diagonal <= left.count + right.count);
  // Search i in [low, high]: i elements from left, diagonal - i from right.
  uint64_t low = diagonal > right.count ? diagonal - right.count : 0;
  uint64_t high = std::min(diagonal, left.count);
  while (low < high) {
    uint64_t mid = low + (high - low) / 2;
    uint64_t j = diagonal - mid - 1;  // right element compared against L[mid]
    // Stable merge takes R[j] before L[mid] only when strictly smaller.
    int cmp = comparator.Compare(right.KeyRow(j), right.PayloadRow(j),
                                 left.KeyRow(mid), left.PayloadRow(mid));
    if (cmp < 0) {
      high = mid;  // R[j] precedes L[mid]: take fewer from left
    } else {
      low = mid + 1;  // L[mid] precedes (or ties): take more from left
    }
  }
  return low;
}

}  // namespace rowsort
