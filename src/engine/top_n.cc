// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "engine/top_n.h"

#include <cstring>
#include <new>

#include "common/bit_util.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "sortalgo/pdq_sort.h"

namespace rowsort {

TopN::TopN(SortSpec spec, std::vector<LogicalType> input_types, uint64_t limit,
           SortEngineConfig config)
    : spec_(std::move(spec)), input_types_(std::move(input_types)),
      limit_(limit), config_(config), encoder_(spec_),
      payload_layout_(input_types_), comparator_(spec_, payload_layout_),
      tracker_(config.memory_limit_bytes, config.parent_tracker) {
  ROWSORT_ASSERT(limit_ > 0);
  key_width_ = encoder_.key_width();
  payload_ = RowCollection(payload_layout_);
  payload_.SetMemoryTracker(&tracker_);
  key_memory_.Reset(&tracker_, 0);
  heap_memory_.Reset(&tracker_, 0);
  cancel_.Reset(config_.cancellation);
  heap_.reserve(limit_);
  UpdateReservations();
}

Status TopN::RecordError(Status status) {
  if (!status.ok() && first_error_.ok()) first_error_ = status;
  return status;
}

void TopN::UpdateReservations() {
  key_memory_.Update(key_rows_.capacity());
  heap_memory_.Update(heap_.capacity() * sizeof(uint64_t));
}

bool TopN::HeapLess(uint64_t a, uint64_t b) const {
  // Max-heap by sort order: the root is the *worst* of the current top N.
  return comparator_.Compare(key_rows_.data() + a * key_width_,
                             payload_.GetRow(a),
                             key_rows_.data() + b * key_width_,
                             payload_.GetRow(b)) < 0;
}

void TopN::HeapSiftDown(uint64_t root) {
  uint64_t size = heap_.size();
  while (true) {
    uint64_t child = 2 * root + 1;
    if (child >= size) break;
    if (child + 1 < size && HeapLess(heap_[child], heap_[child + 1])) {
      ++child;
    }
    if (!HeapLess(heap_[root], heap_[child])) break;
    std::swap(heap_[root], heap_[child]);
    root = child;
  }
}

void TopN::HeapSiftUp(uint64_t pos) {
  while (pos > 0) {
    uint64_t parent = (pos - 1) / 2;
    if (!HeapLess(heap_[parent], heap_[pos])) break;
    std::swap(heap_[parent], heap_[pos]);
    pos = parent;
  }
}

void TopN::Compact() {
  // Rewrite storage to hold only the slots the heap references. Keeps the
  // operator's memory bounded at O(N) regardless of input size.
  std::vector<uint8_t> new_keys(heap_.size() * key_width_);
  RowCollection new_payload(payload_layout_);
  new_payload.SetMemoryTracker(&tracker_);
  new_payload.AppendUninitialized(heap_.size());
  const uint64_t width = payload_layout_.row_width();
  for (uint64_t i = 0; i < heap_.size(); ++i) {
    uint64_t slot = heap_[i];
    std::memcpy(new_keys.data() + i * key_width_,
                key_rows_.data() + slot * key_width_, key_width_);
    std::memcpy(new_payload.GetRow(i), payload_.GetRow(slot), width);
    heap_[i] = i;
  }
  // Re-own surviving string payloads in the fresh arena so strings of
  // rejected rows are actually freed (true O(N) residency).
  if (payload_layout_.HasVariableSize()) {
    for (uint64_t col = 0; col < payload_layout_.ColumnCount(); ++col) {
      if (payload_layout_.types()[col].id() != TypeId::kVarchar) continue;
      uint64_t offset = payload_layout_.ColumnOffset(col);
      for (uint64_t i = 0; i < heap_.size(); ++i) {
        uint8_t* row = new_payload.GetRow(i);
        if (!RowLayout::IsValid(row, col)) continue;
        string_t value = bit_util::LoadUnaligned<string_t>(row + offset);
        if (value.IsInlined()) continue;
        string_t owned = new_payload.string_heap().AddString(value);
        bit_util::StoreUnaligned(row + offset, owned);
      }
    }
  }
  key_rows_ = std::move(new_keys);
  payload_ = std::move(new_payload);
  UpdateReservations();
}

Status TopN::Sink(const DataChunk& chunk) {
  if (finalized_) {
    return Status::InvalidArgument("TopN::Sink called after Finalize");
  }
  ROWSORT_RETURN_NOT_OK(first_error_);
  try {
    return RecordError(SinkImpl(chunk));
  } catch (const std::bad_alloc&) {
    return RecordError(Status::OutOfMemory("top-n sink: allocation failed"));
  } catch (const CancelledError& e) {
    return RecordError(e.ToStatus());
  }
}

Status TopN::SinkImpl(const DataChunk& chunk) {
  const uint64_t count = chunk.size();
  if (count == 0) return Status::OK();
  // Chunk-granularity cooperative cancellation: one relaxed load per ~1-2k
  // rows, the same cadence the sort sink pays.
  ROWSORT_RETURN_NOT_OK(cancel_.CheckStatus());
  if (ROWSORT_FAILPOINT("top_n_alloc")) throw std::bad_alloc();
  rows_seen_ += count;

  // Worst case this chunk admits every row; under chain pressure (a service
  // global budget squeezed by other queries) give the governor a chance to
  // shed the pressure onto spillable victims before we grow.
  const uint64_t projected =
      count * (key_width_ + payload_layout_.row_width());
  if (config_.governor != nullptr && tracker_.WouldExceed(projected)) {
    config_.governor->EnsureCapacity(projected, nullptr);
  }

  // Encode this chunk's keys into scratch space (vector-at-a-time). Payload
  // is NOT materialized yet: rows that cannot beat the current worst are
  // rejected on their key alone and never copied.
  std::vector<uint8_t> chunk_keys(count * key_width_);
  encoder_.EncodeChunk(chunk, count, chunk_keys.data(), key_width_);

  for (uint64_t r = 0; r < count; ++r) {
    const uint8_t* key = chunk_keys.data() + r * key_width_;
    if (heap_.size() >= limit_) {
      // One key comparison against the current worst rejects most rows.
      // (Key ties are admitted conservatively: with VARCHAR prefixes a tie
      // may still win after full-string resolution.)
      uint64_t worst = heap_[0];
      int cmp = std::memcmp(key, key_rows_.data() + worst * key_width_,
                            key_width_);
      if (cmp > 0 || (cmp == 0 && !comparator_.needs_tie_resolution())) {
        ++rows_rejected_early_;
        continue;
      }
    }
    // Candidate: materialize this row.
    uint64_t slot = payload_.AppendRow(chunk, r);
    key_rows_.resize(key_rows_.size() + key_width_);
    std::memcpy(key_rows_.data() + slot * key_width_, key, key_width_);
    if (heap_.size() < limit_) {
      heap_.push_back(slot);
      HeapSiftUp(heap_.size() - 1);
      continue;
    }
    if (!HeapLess(slot, heap_[0])) {
      // Lost the full (tie-resolved) comparison after all.
      ++rows_rejected_early_;
      continue;
    }
    heap_[0] = slot;
    HeapSiftDown(0);
  }
  UpdateReservations();

  // Garbage-collect candidate storage when it outgrows the heap 4x, or
  // eagerly when the working set breaches this operator's own limit.
  bool over_own_limit =
      tracker_.limit() != 0 && tracker_.reserved() > tracker_.limit();
  if (over_own_limit ||
      payload_.row_count() > 4 * limit_ + 2 * kVectorSize) {
    Compact();
  }
  // Even fully compacted, O(N) candidates may not fit a hostile limit —
  // Top-N has nothing to spill, so that is a hard failure, named precisely.
  if (tracker_.limit() != 0 && tracker_.reserved() > tracker_.limit()) {
    return Status::OutOfMemory(StringFormat(
        "top-n working set (%llu bytes for limit=%llu) exceeds "
        "memory_limit_bytes=%llu even after compaction",
        (unsigned long long)tracker_.reserved(), (unsigned long long)limit_,
        (unsigned long long)tracker_.limit()));
  }
  return Status::OK();
}

StatusOr<Table> TopN::Finalize() {
  if (finalized_) {
    return Status::InvalidArgument("TopN::Finalize called twice");
  }
  finalized_ = true;
  ROWSORT_RETURN_NOT_OK(first_error_);
  try {
    StatusOr<Table> result = FinalizeImpl();
    if (!result.ok()) return RecordError(result.status());
    return result;
  } catch (const std::bad_alloc&) {
    return RecordError(
        Status::OutOfMemory("top-n finalize: allocation failed"));
  } catch (const CancelledError& e) {
    return RecordError(e.ToStatus());
  }
}

StatusOr<Table> TopN::FinalizeImpl() {
  ROWSORT_RETURN_NOT_OK(cancel_.CheckStatus());
  // Sort the surviving slots ascending and gather.
  std::vector<uint64_t> slots = heap_;
  PdqSort(slots.begin(), slots.end(), [this](uint64_t a, uint64_t b) {
    return HeapLess(a, b);
  });

  Table out(input_types_);
  uint64_t offset = 0;
  while (offset < slots.size()) {
    ROWSORT_RETURN_NOT_OK(cancel_.CheckStatus());
    uint64_t n = std::min(kVectorSize, slots.size() - offset);
    DataChunk chunk = out.NewChunk();
    payload_.GatherRows(slots.data() + offset, n, &chunk);
    out.Append(std::move(chunk));
    offset += n;
  }
  return out;
}

}  // namespace rowsort
