// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include "sortkey/sort_spec.h"
#include "workload/tables.h"

namespace rowsort {

/// String statistics gathered for normalized-key tuning.
struct StringColumnStats {
  uint64_t max_length = 0;   ///< longest non-NULL value
  bool has_nul_byte = false; ///< any value contains '\0'
};

/// \brief Statistics-driven normalized-key tuning (paper §VII: "we encode
/// the first n bytes, with n chosen at runtime based on the available
/// statistics on string length, but at most 12").
///
/// Scans the VARCHAR sort columns of \p input and, per column:
///  * shrinks string_prefix_length to min(max observed length, current
///    value) — shorter keys mean cheaper memcmp and fewer radix passes;
///  * when the prefix provably covers every string (max length fits and no
///    value embeds a NUL byte, which would collide with key padding), sets
///    prefix_covers_full_string, removing tie resolution entirely and
///    re-enabling the radix-sort fast path for string keys.
void TuneStringPrefixes(const Table& input, SortSpec* spec);

/// Scans column \p col of \p input (must be VARCHAR).
StringColumnStats ScanStringColumn(const Table& input, uint64_t col);

/// Maximum VARCHAR length observed in \p input's column \p col.
uint64_t MaxStringLength(const Table& input, uint64_t col);

}  // namespace rowsort
