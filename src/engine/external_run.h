// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdio>
#include <string>

#include "common/cancellation.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/trace.h"
#include "engine/profile.h"
#include "engine/sorted_run.h"

namespace rowsort {

/// \file external_run.h
/// Spillable sorted runs — the paper's Future Work §IX: blocking operators
/// "risk running out of memory because they must materialize their input
/// ... Utilizing DuckDB's row format to be able to offload the data to
/// secondary storage in a unified way could enable this."
///
/// Format v2 (one file per run):
///   header:  [magic u64 "ROWSORT2"][version u32][flags u32][count u64]
///            [key_row_width u64][payload_row_width u64][header crc32 u32]
///   blocks*: [block magic u32][rows u64][key rows][payload rows]
///            [nstrings u64][(row u32, col u32, len u32, bytes)*]
///            [block crc32 u32]
///
/// Robustness properties (docs/robustness.md):
///  - Every section carries a CRC32; bit flips and swapped sectors surface
///    as Status::IOError on load, never as garbage rows or a crash.
///  - Writers write to "<path>.tmp" and rename on Finish(), so a partially
///    written file (crash, disk full) is never picked up by a reader.
///  - Data is written and read in bounded blocks, so the external merge
///    holds O(block) memory per input instead of whole runs.
///  - Transient I/O hiccups self-heal: short reads/writes and interrupted
///    syscalls (EINTR/EAGAIN) are resumed where they stopped, with bounded
///    exponential backoff when the stream makes no progress (common/retry.h).
///    Corruption (CRC mismatch, bad framing) and true truncation stay
///    permanent IOErrors — retrying cannot un-corrupt a file.
///  - Block-granular cancellation: give the writer/reader a
///    CancellationToken and long spills stop between blocks (and inside
///    backoff naps) with Status::Cancelled / Status::DeadlineExceeded.
///
/// Non-inlined VARCHAR payloads are appended per block in a string section
/// and re-pointered into the block's own heap on load.

/// Rows per block used by the whole-run convenience writer and the engine's
/// default spill granularity.
constexpr uint64_t kDefaultSpillBlockRows = 4096;

/// Shared knobs for the spill I/O paths: where recovered transient failures
/// are counted (SortMetrics::io_retries), which token interrupts long
/// streams, and where per-block latencies/bytes land (the sort profile's
/// spill node) and spans are traced. All optional; default = no accounting,
/// never cancelled, no tracing.
struct SpillIoOptions {
  RetryStats* retry_stats = nullptr;  ///< unowned; may be shared by threads
  CancellationToken cancellation;
  SpillIoProfile* io_profile = nullptr;  ///< unowned; shared by threads
  Tracer* trace = nullptr;               ///< unowned; null = no spans
};

/// \brief Streaming writer for a spill file; append blocks, then Finish().
///
/// The destructor abandons an unfinished file (closes and removes the temp),
/// so error paths leak neither memory nor files.
class ExternalRunWriter {
 public:
  /// \p payload_layout must outlive the writer; data lands at "<path>.tmp"
  /// until Finish() renames it to \p path.
  ExternalRunWriter(const RowLayout& payload_layout, std::string path);
  ~ExternalRunWriter();
  ROWSORT_DISALLOW_COPY_AND_MOVE(ExternalRunWriter);

  /// Opens the temp file and writes a placeholder header (the final row
  /// count is patched in by Finish()).
  Status Open(uint64_t key_row_width);

  /// Writes rows [begin, end) of \p run as one checksummed block. The rows'
  /// string payloads are resolved through \p run's heap, so the run must be
  /// alive and unmodified during the call (no copies are made).
  Status WriteSlice(const SortedRun& run, uint64_t begin, uint64_t end);

  /// Writes all rows of \p block as one checksummed block.
  Status WriteBlock(const SortedRun& block) {
    return WriteSlice(block, 0, block.count);
  }

  /// Patches the header with the final row count, flushes, closes (both
  /// checked — a failed close after buffered writes is an IOError, not
  /// silent success) and renames the temp file onto the target path.
  Status Finish();

  /// Closes and removes the temp file; the target path is left untouched.
  /// Safe to call at any point (idempotent, also run by the destructor).
  void Abandon();

  /// Installs retry accounting / cancellation for subsequent operations.
  void SetIoOptions(SpillIoOptions options) { io_ = std::move(options); }

  uint64_t rows_written() const { return rows_written_; }
  const std::string& path() const { return path_; }

 private:
  const RowLayout& layout_;
  std::string path_;
  std::string temp_path_;
  std::FILE* file_ = nullptr;
  uint64_t key_row_width_ = 0;
  uint64_t rows_written_ = 0;
  bool finished_ = false;
  SpillIoOptions io_;
};

/// \brief Streaming reader over a spill file written by ExternalRunWriter.
///
/// Blocks are validated (magic, bounds, CRC32) before they are handed out;
/// any corruption or truncation yields a non-OK Status.
class ExternalRunReader {
 public:
  /// \p payload_layout must outlive the reader.
  ExternalRunReader(const RowLayout& payload_layout, std::string path);
  ~ExternalRunReader();
  ROWSORT_DISALLOW_COPY_AND_MOVE(ExternalRunReader);

  /// Opens the file and validates the header.
  Status Open();

  /// Reads the next block into \p block (replacing its contents; string
  /// payloads are rebuilt into the block's own heap). Sets block->count = 0
  /// at a clean end of file.
  Status ReadBlock(SortedRun* block);

  /// Installs retry accounting / cancellation for subsequent operations.
  void SetIoOptions(SpillIoOptions options) { io_ = std::move(options); }

  uint64_t row_count() const { return count_; }
  uint64_t key_row_width() const { return key_row_width_; }
  uint64_t rows_read() const { return rows_read_; }
  const std::string& path() const { return path_; }

 private:
  const RowLayout& layout_;
  std::string path_;
  std::FILE* file_ = nullptr;
  uint64_t count_ = 0;
  uint64_t key_row_width_ = 0;
  uint64_t rows_read_ = 0;
  SpillIoOptions io_;
};

/// Writes \p run to \p path (atomically, in kDefaultSpillBlockRows blocks);
/// \p payload_layout describes the payload rows.
Status WriteRunToFile(const SortedRun& run, const RowLayout& payload_layout,
                      const std::string& path,
                      const SpillIoOptions& options = {});

/// Reads a run written by WriteRunToFile back into memory. String payloads
/// are rebuilt into the run's own heap.
StatusOr<SortedRun> ReadRunFromFile(const RowLayout& payload_layout,
                                    const std::string& path,
                                    const SpillIoOptions& options = {});

}  // namespace rowsort
