// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/io_worker.h"
#include "common/memory_tracker.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/trace.h"
#include "engine/profile.h"
#include "engine/sorted_run.h"

namespace rowsort {

/// \file external_run.h
/// Spillable sorted runs — the paper's Future Work §IX: blocking operators
/// "risk running out of memory because they must materialize their input
/// ... Utilizing DuckDB's row format to be able to offload the data to
/// secondary storage in a unified way could enable this."
///
/// Format v2 (one file per run):
///   header:  [magic u64 "ROWSORT2"][version u32][flags u32][count u64]
///            [key_row_width u64][payload_row_width u64][header crc32 u32]
///   blocks*: [block magic u32][rows u64][key rows][payload rows]
///            [nstrings u64][(row u32, col u32, len u32, bytes)*]
///            [block crc32 u32]
///
/// Format v3 (SpillIoOptions::compression; docs/external_sort.md#format-v3):
/// same header with magic "ROWSORT3" / version 3; each block carries three
/// independently compressed column sections (keys, payload, strings):
///   blocks*: [block magic u32 "BLK3"][rows u64][body size u64]
///            3 x ([codec u8][raw size u64][stored size u64][stored bytes])
///            [block crc32 u32]
/// The CRC covers the *compressed* bytes (framing + section headers +
/// stored bytes), so corruption is caught before any decompressor runs.
/// Codecs are chosen per section at encode time and independently degrade
/// to raw passthrough when they do not pay (common/compress.h). Readers
/// auto-detect the version from the magic; v2 files stay readable forever.
///
/// Robustness properties (docs/robustness.md):
///  - Every section carries a CRC32; bit flips and swapped sectors surface
///    as Status::IOError on load, never as garbage rows or a crash.
///  - Writers write to "<path>.tmp" and rename on Finish(), so a partially
///    written file (crash, disk full) is never picked up by a reader.
///  - Data is written and read in bounded blocks, so the external merge
///    holds O(block) memory per input instead of whole runs.
///  - Transient I/O hiccups self-heal: short reads/writes and interrupted
///    syscalls (EINTR/EAGAIN) are resumed where they stopped, with bounded
///    exponential backoff when the stream makes no progress (common/retry.h).
///    Corruption (CRC mismatch, bad framing) and true truncation stay
///    permanent IOErrors — retrying cannot un-corrupt a file.
///  - Block-granular cancellation: give the writer/reader a
///    CancellationToken and long spills stop between blocks (and inside
///    backoff naps) with Status::Cancelled / Status::DeadlineExceeded.
///
/// Overlapped I/O (docs/external_sort.md): when SpillIoOptions::worker is
/// set, the writer becomes double-buffered write-behind (the sort thread
/// encodes block k+1 while the worker writes block k) and the reader gains
/// one block of readahead (the merge decodes block k while the worker reads
/// the raw bytes of block k+1). The bytes on disk and the rows handed out
/// are identical to the synchronous path; only the thread doing the fread /
/// fwrite changes. Background failures surface on the next call through the
/// same sticky-Status path, and Abandon() still deletes the temp file.
///
/// Non-inlined VARCHAR payloads are appended per block in a string section
/// and re-pointered into the block's own heap on load.

/// Rows per block used by the whole-run convenience writer and the engine's
/// default spill granularity.
constexpr uint64_t kDefaultSpillBlockRows = 4096;

/// Shared knobs for the spill I/O paths: where recovered transient failures
/// are counted (SortMetrics::io_retries), which token interrupts long
/// streams, and where per-block latencies/bytes land (the sort profile's
/// spill node) and spans are traced. All optional; default = no accounting,
/// never cancelled, no tracing, fully synchronous I/O.
struct SpillIoOptions {
  RetryStats* retry_stats = nullptr;  ///< unowned; may be shared by threads
  CancellationToken cancellation;
  SpillIoProfile* io_profile = nullptr;  ///< unowned; shared by threads
  Tracer* trace = nullptr;               ///< unowned; null = no spans
  /// Background spill thread; non-null turns on write-behind in
  /// ExternalRunWriter and block readahead in ExternalRunReader. Unowned;
  /// must outlive every writer/reader it is installed on.
  IoWorker* worker = nullptr;
  /// Tracker charged for the overlap buffers (double write buffer /
  /// readahead block). Optional; unowned.
  MemoryTracker* buffer_tracker = nullptr;
  SpillOverlapStats* overlap_stats = nullptr;  ///< unowned; shared
  /// Write runs in the compressed v3 format (readers always auto-detect the
  /// version from the file magic, so this only affects writers). Off keeps
  /// the byte-identical v2 path.
  bool compression = false;
  /// Raw-vs-stored bytes, per-codec section counts and encode/decode
  /// latencies for the v3 path. Optional; unowned; shared by threads.
  SpillCompressionStats* compression_stats = nullptr;
};

/// \brief Streaming writer for a spill file; append blocks, then Finish().
///
/// The destructor abandons an unfinished file (closes and removes the temp),
/// so error paths leak neither memory nor files.
class ExternalRunWriter {
 public:
  /// \p payload_layout must outlive the writer; data lands at "<path>.tmp"
  /// until Finish() renames it to \p path.
  ExternalRunWriter(const RowLayout& payload_layout, std::string path);
  ~ExternalRunWriter();
  ROWSORT_DISALLOW_COPY_AND_MOVE(ExternalRunWriter);

  /// Opens the temp file and writes a placeholder header (the final row
  /// count is patched in by Finish()).
  Status Open(uint64_t key_row_width);

  /// Writes rows [begin, end) of \p run as one checksummed block. The rows'
  /// string payloads are resolved through \p run's heap and copied into the
  /// encode buffer before the call returns, so with write-behind enabled the
  /// run may be freed as soon as WriteSlice returns.
  Status WriteSlice(const SortedRun& run, uint64_t begin, uint64_t end);

  /// Writes all rows of \p block as one checksummed block.
  Status WriteBlock(const SortedRun& block) {
    return WriteSlice(block, 0, block.count);
  }

  /// Waits for any in-flight background block, patches the header with the
  /// final row count, flushes, closes (both checked — a failed close after
  /// buffered writes is an IOError, not silent success) and renames the
  /// temp file onto the target path.
  Status Finish();

  /// Closes and removes the temp file (after draining any in-flight
  /// background write); the target path is left untouched. Safe to call at
  /// any point (idempotent, also run by the destructor).
  void Abandon();

  /// Installs retry accounting / cancellation / overlap for subsequent
  /// operations. Call before Open().
  void SetIoOptions(SpillIoOptions options) { io_ = std::move(options); }

  uint64_t rows_written() const { return rows_written_; }
  const std::string& path() const { return path_; }
  /// On-disk format chosen at Open(): 3 when SpillIoOptions::compression is
  /// set, 2 otherwise.
  uint32_t format_version() const { return version_; }

 private:
  /// Waits for the in-flight background block, folding the wait into the
  /// overlap counters (\p count_stall: the wait delayed the fill pipeline).
  Status WaitForInflight(bool count_stall);

  const RowLayout& layout_;
  std::string path_;
  std::string temp_path_;
  std::FILE* file_ = nullptr;
  uint64_t key_row_width_ = 0;
  uint64_t rows_written_ = 0;
  uint32_t version_ = 2;
  bool finished_ = false;
  SpillIoOptions io_;
  Status error_;  ///< sticky first failure (incl. background writes)
  std::vector<uint8_t> encode_buf_;    ///< block being encoded (compute)
  std::vector<uint8_t> inflight_buf_;  ///< block owned by the worker job
  IoTicket inflight_;
  MemoryReservation buffer_memory_;
  /// v3 per-section encode scratch (string gather + one buffer per codec
  /// attempt), reused across blocks so steady-state encoding allocates
  /// nothing. Counted into buffer_memory_ alongside the double buffer.
  std::vector<std::vector<uint8_t>> v3_scratch_;
  /// Consecutive blocks whose payload / string section compressed worse
  /// than raw; after a few misses the LZ attempt is only retried
  /// periodically so incompressible data pays (almost) no compression tax.
  uint32_t payload_raw_streak_ = 0;
  uint32_t string_raw_streak_ = 0;
};

/// \brief Streaming reader over a spill file written by ExternalRunWriter.
///
/// Blocks are validated (magic, bounds, CRC32) before they are handed out;
/// any corruption or truncation yields a non-OK Status.
class ExternalRunReader {
 public:
  /// \p payload_layout must outlive the reader.
  ExternalRunReader(const RowLayout& payload_layout, std::string path);
  ~ExternalRunReader();
  ROWSORT_DISALLOW_COPY_AND_MOVE(ExternalRunReader);

  /// Opens the file and validates the header. With readahead enabled the
  /// background fetch of the first block is started here.
  Status Open();

  /// Reads the next block into \p block (replacing its contents; string
  /// payloads are rebuilt into the block's own heap). Sets block->count = 0
  /// at a clean end of file. With readahead enabled, decoding the returned
  /// block overlaps the background read of the next one.
  Status ReadBlock(SortedRun* block);

  /// Installs retry accounting / cancellation / readahead for subsequent
  /// operations. Call before Open().
  void SetIoOptions(SpillIoOptions options) { io_ = std::move(options); }

  uint64_t row_count() const { return count_; }
  uint64_t key_row_width() const { return key_row_width_; }
  uint64_t rows_read() const { return rows_read_; }
  const std::string& path() const { return path_; }
  /// On-disk format detected from the file magic by Open(): 2 or 3.
  uint32_t format_version() const { return version_; }

 private:
  /// Submits the background fetch of the next raw block (no-op when
  /// everything has been fetched or readahead is off).
  void StartPrefetch();
  /// Waits for the in-flight prefetch, swallowing its status (error and
  /// destructor paths — the file must not be closed under a running job).
  void DrainPrefetch();

  const RowLayout& layout_;
  std::string path_;
  std::FILE* file_ = nullptr;
  uint64_t count_ = 0;
  uint64_t key_row_width_ = 0;
  uint32_t version_ = 0;       ///< detected by Open() from the magic
  uint64_t rows_read_ = 0;     ///< rows handed out via ReadBlock
  uint64_t rows_fetched_ = 0;  ///< rows pulled off the file (>= rows_read_)
  SpillIoOptions io_;
  std::vector<uint8_t> raw_;           ///< raw bytes of the current block
  uint64_t raw_rows_ = 0;              ///< rows framed in raw_
  std::vector<uint8_t> prefetch_raw_;  ///< owned by the worker job
  uint64_t prefetch_rows_ = 0;
  IoTicket prefetch_;
  MemoryReservation buffer_memory_;
};

/// Writes \p run to \p path (atomically, in kDefaultSpillBlockRows blocks);
/// \p payload_layout describes the payload rows.
Status WriteRunToFile(const SortedRun& run, const RowLayout& payload_layout,
                      const std::string& path,
                      const SpillIoOptions& options = {});

/// Reads a run written by WriteRunToFile back into memory. String payloads
/// are rebuilt into the run's own heap.
StatusOr<SortedRun> ReadRunFromFile(const RowLayout& payload_layout,
                                    const std::string& path,
                                    const SpillIoOptions& options = {});

}  // namespace rowsort
