// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <string>

#include "common/status.h"
#include "engine/sorted_run.h"

namespace rowsort {

/// \file external_run.h
/// Spillable sorted runs — the paper's Future Work §IX: blocking operators
/// "risk running out of memory because they must materialize their input
/// ... Utilizing DuckDB's row format to be able to offload the data to
/// secondary storage in a unified way could enable this."
///
/// The unified row format makes the spill format trivial: fixed-size key and
/// payload rows are written verbatim; the only fix-up needed is for
/// non-inlined VARCHAR payloads, whose bytes are appended in a string
/// section and re-pointered on load.
///
/// File layout:
///   [magic u64][count u64][key_row_width u64][payload_row_width u64]
///   [key rows][payload rows][string section: (row u64, col u64, len u32,
///   bytes)* for every non-inlined string]

/// Writes \p run to \p path; \p payload_layout describes the payload rows.
Status WriteRunToFile(const SortedRun& run, const RowLayout& payload_layout,
                      const std::string& path);

/// Reads a run written by WriteRunToFile back into memory. String payloads
/// are rebuilt into the run's own heap.
StatusOr<SortedRun> ReadRunFromFile(const RowLayout& payload_layout,
                                    const std::string& path);

}  // namespace rowsort
