// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <vector>

#include "row/row_layout.h"
#include "sortkey/key_encoder.h"
#include "sortkey/sort_spec.h"

namespace rowsort {

/// \brief Compares tuples of the sorting pipeline: memcmp on normalized keys
/// plus full-string tie resolution for VARCHAR prefixes (paper §VII: "we
/// encode only a prefix ... we compare the rest of the string only if the
/// prefixes are equal").
///
/// For specs without VARCHAR columns, Compare() is a single dynamic memcmp —
/// no interpretation, no function-call overhead per column (§VI-A). With
/// VARCHAR columns, the key is compared segment by segment so that a tied
/// string prefix is resolved from the payload row *before* later key columns
/// are consulted (a tied prefix makes the remaining key bytes meaningless).
class TupleComparator {
 public:
  TupleComparator(const SortSpec& spec, const RowLayout& payload_layout);

  uint64_t key_width() const { return key_width_; }
  bool needs_tie_resolution() const { return needs_ties_; }

  /// True when memcmp on the key bytes alone decides the total order, which
  /// is exactly the precondition for offset-value coding in the merge phase
  /// (offset_value.h): a cached first-difference offset is only meaningful
  /// when equal key bytes imply equal tuples.
  bool SupportsOffsetValueCoding() const { return !needs_ties_; }

  /// Pure key comparison; exact iff !needs_tie_resolution().
  int CompareKeys(const uint8_t* key_a, const uint8_t* key_b) const {
    return std::memcmp(key_a, key_b, key_width_);
  }

  /// Full tuple comparison. \p payload_a / \p payload_b are the payload rows
  /// of the two tuples (may be null when !needs_tie_resolution()).
  int Compare(const uint8_t* key_a, const uint8_t* payload_a,
              const uint8_t* key_b, const uint8_t* payload_b) const;

 private:
  struct Segment {
    uint64_t key_offset;      ///< offset of this column's bytes in the key
    uint64_t width;           ///< encoded width (incl. NULL byte)
    bool is_varchar;
    bool descending;
    uint8_t null_marker;      ///< key byte value that denotes NULL
    Collation collation = Collation::kBinary;
    uint64_t payload_column;  ///< column index in the payload layout
    uint64_t payload_offset;  ///< byte offset of the string_t in payload rows
  };

  int CompareVarcharTie(const Segment& seg, const uint8_t* payload_a,
                        const uint8_t* payload_b) const;

  std::vector<Segment> segments_;
  uint64_t key_width_ = 0;
  bool needs_ties_ = false;
};

}  // namespace rowsort
