// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "engine/tuple_comparator.h"

#include "common/bit_util.h"
#include "common/macros.h"
#include "types/string_t.h"

namespace rowsort {

TupleComparator::TupleComparator(const SortSpec& spec,
                                 const RowLayout& payload_layout) {
  uint64_t offset = 0;
  for (const auto& col : spec.columns()) {
    Segment seg;
    seg.key_offset = offset;
    seg.width = col.EncodedWidth();
    // Segments whose prefix provably covers the whole string never need
    // resolution: encoded equality is value equality.
    seg.is_varchar = col.type.id() == TypeId::kVarchar &&
                     !col.prefix_covers_full_string;
    seg.descending = col.order == OrderType::kDescending;
    seg.null_marker = col.null_order == NullOrder::kNullsFirst ? 0x00 : 0xFF;
    seg.collation = col.collation;
    seg.payload_column = col.column_index;
    seg.payload_offset = payload_layout.ColumnOffset(col.column_index);
    segments_.push_back(seg);
    offset += seg.width;
    if (seg.is_varchar) needs_ties_ = true;
  }
  key_width_ = offset;
}

namespace {

/// Case-insensitive byte comparison (ASCII NOCASE collation); equal-under-
/// collation strings are a genuine tie, matching the encoded prefixes.
int CompareCaseInsensitive(const string_t& a, const string_t& b) {
  uint32_t min_size = std::min(a.size(), b.size());
  const char* pa = a.data();
  const char* pb = b.data();
  for (uint32_t i = 0; i < min_size; ++i) {
    uint8_t ca = static_cast<uint8_t>(
        pa[i] >= 'A' && pa[i] <= 'Z' ? pa[i] + 32 : pa[i]);
    uint8_t cb = static_cast<uint8_t>(
        pb[i] >= 'A' && pb[i] <= 'Z' ? pb[i] + 32 : pb[i]);
    if (ca != cb) return ca < cb ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

}  // namespace

int TupleComparator::CompareVarcharTie(const Segment& seg,
                                       const uint8_t* payload_a,
                                       const uint8_t* payload_b) const {
  string_t a =
      bit_util::LoadUnaligned<string_t>(payload_a + seg.payload_offset);
  string_t b =
      bit_util::LoadUnaligned<string_t>(payload_b + seg.payload_offset);
  int cmp = seg.collation == Collation::kCaseInsensitive
                ? CompareCaseInsensitive(a, b)
                : a.Compare(b);
  return seg.descending ? -cmp : cmp;
}

int TupleComparator::Compare(const uint8_t* key_a, const uint8_t* payload_a,
                             const uint8_t* key_b,
                             const uint8_t* payload_b) const {
  if (!needs_ties_) {
    return CompareKeys(key_a, key_b);
  }
  ROWSORT_DASSERT(payload_a != nullptr && payload_b != nullptr);
  for (const auto& seg : segments_) {
    int cmp = std::memcmp(key_a + seg.key_offset, key_b + seg.key_offset,
                          seg.width);
    if (cmp != 0) return cmp;
    if (seg.is_varchar && key_a[seg.key_offset] != seg.null_marker) {
      // Equal prefixes of two non-NULL strings: the prefix may be truncated,
      // resolve from the full strings in the payload rows.
      cmp = CompareVarcharTie(seg, payload_a, payload_b);
      if (cmp != 0) return cmp;
    }
  }
  return 0;
}

}  // namespace rowsort
