// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <vector>

#include "common/cancellation.h"
#include "common/memory_tracker.h"
#include "common/status.h"
#include "engine/sort_engine.h"
#include "engine/tuple_comparator.h"
#include "row/row_collection.h"
#include "sortkey/key_encoder.h"
#include "workload/tables.h"

namespace rowsort {

/// \brief Specialized Top-N operator (paper §VII-A: "ORDER BY ... LIMIT 1
/// will typically trigger a specialized top N operator rather than the
/// 'normal' sort operator").
///
/// Maintains the current N best rows in a bounded max-heap ordered by the
/// same normalized keys the sort operator uses, so heap comparisons are a
/// single memcmp (plus string tie resolution). Rows that cannot enter the
/// top N are rejected with one comparison against the heap root, making the
/// operator O(n log N) with a working set of O(N) instead of materializing
/// all input.
///
/// Speaks the engine's robustness contract (docs/service.md): candidate
/// storage (key rows + RowCollection payload) is charged to a MemoryTracker
/// nested under SortEngineConfig::parent_tracker, Sink polls the config's
/// cancellation token per chunk, a governor is consulted before growth under
/// chain pressure, and errors are sticky — after a failed Sink every later
/// call returns the first error.
class TopN {
 public:
  /// Keeps the first \p limit rows of the \p spec ordering over rows with
  /// \p input_types columns. Only the memory/cancellation/governor fields of
  /// \p config apply; thread and spill knobs are ignored (the working set is
  /// bounded, nothing ever spills).
  TopN(SortSpec spec, std::vector<LogicalType> input_types, uint64_t limit,
       SortEngineConfig config = {});
  ROWSORT_DISALLOW_COPY_AND_MOVE(TopN);

  /// Feeds one chunk of input. Fails with Status::Cancelled /
  /// DeadlineExceeded on cooperative cancellation, OutOfMemory when even the
  /// compacted O(N) working set cannot fit the memory limit, and
  /// InvalidArgument once Finalize has run.
  Status Sink(const DataChunk& chunk);

  /// Returns the top N rows in sorted order. Call once, after all Sinks —
  /// a second call returns Status::InvalidArgument, as does any later Sink.
  StatusOr<Table> Finalize();

  /// Heap statistics for tests/benches.
  uint64_t rows_seen() const { return rows_seen_; }
  uint64_t rows_rejected_early() const { return rows_rejected_early_; }

  /// Tracker charged with the candidate working set (nested under
  /// config.parent_tracker when one was given).
  const MemoryTracker& memory_tracker() const { return tracker_; }

  /// Cooperative-cancellation poll count (tests assert responsiveness).
  uint64_t cancel_checks() const { return cancel_.checks(); }

 private:
  Status SinkImpl(const DataChunk& chunk);
  StatusOr<Table> FinalizeImpl();
  Status RecordError(Status status);
  bool HeapLess(uint64_t a, uint64_t b) const;
  void HeapSiftDown(uint64_t root);
  void HeapSiftUp(uint64_t pos);
  void Compact();
  void UpdateReservations();

  SortSpec spec_;
  std::vector<LogicalType> input_types_;
  uint64_t limit_;
  SortEngineConfig config_;
  NormalizedKeyEncoder encoder_;
  RowLayout payload_layout_;
  TupleComparator comparator_;
  uint64_t key_width_ = 0;

  /// Candidate storage: key rows + payload rows, indexed by slot id; slots
  /// not referenced by the heap are garbage collected by Compact().
  std::vector<uint8_t> key_rows_;
  RowCollection payload_;
  std::vector<uint64_t> heap_;  ///< slot ids, max-heap by the sort order

  MemoryTracker tracker_;
  MemoryReservation key_memory_;   ///< key_rows_ capacity
  MemoryReservation heap_memory_;  ///< heap_ capacity
  CancelChecker cancel_;
  Status first_error_;
  bool finalized_ = false;

  uint64_t rows_seen_ = 0;
  uint64_t rows_rejected_early_ = 0;
};

}  // namespace rowsort
