// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/tuple_comparator.h"
#include "row/row_collection.h"
#include "sortkey/key_encoder.h"
#include "workload/tables.h"

namespace rowsort {

/// \brief Specialized Top-N operator (paper §VII-A: "ORDER BY ... LIMIT 1
/// will typically trigger a specialized top N operator rather than the
/// 'normal' sort operator").
///
/// Maintains the current N best rows in a bounded max-heap ordered by the
/// same normalized keys the sort operator uses, so heap comparisons are a
/// single memcmp (plus string tie resolution). Rows that cannot enter the
/// top N are rejected with one comparison against the heap root, making the
/// operator O(n log N) with a working set of O(N) instead of materializing
/// all input.
class TopN {
 public:
  /// Keeps the first \p limit rows of the \p spec ordering over rows with
  /// \p input_types columns.
  TopN(SortSpec spec, std::vector<LogicalType> input_types, uint64_t limit);
  ROWSORT_DISALLOW_COPY_AND_MOVE(TopN);

  /// Feeds one chunk of input.
  void Sink(const DataChunk& chunk);

  /// Returns the top N rows in sorted order (call once, after all Sinks).
  Table Finalize();

  /// Heap statistics for tests/benches.
  uint64_t rows_seen() const { return rows_seen_; }
  uint64_t rows_rejected_early() const { return rows_rejected_early_; }

 private:
  bool HeapLess(uint64_t a, uint64_t b) const;
  void HeapSiftDown(uint64_t root);
  void HeapSiftUp(uint64_t pos);
  void Compact();

  SortSpec spec_;
  std::vector<LogicalType> input_types_;
  uint64_t limit_;
  NormalizedKeyEncoder encoder_;
  RowLayout payload_layout_;
  TupleComparator comparator_;
  uint64_t key_width_ = 0;

  /// Candidate storage: key rows + payload rows, indexed by slot id; slots
  /// not referenced by the heap are garbage collected by Compact().
  std::vector<uint8_t> key_rows_;
  RowCollection payload_;
  std::vector<uint64_t> heap_;  ///< slot ids, max-heap by the sort order

  uint64_t rows_seen_ = 0;
  uint64_t rows_rejected_early_ = 0;
};

}  // namespace rowsort
