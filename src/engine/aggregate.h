// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/sort_engine.h"
#include "row/row_collection.h"
#include "workload/tables.h"

namespace rowsort {

/// Aggregate functions supported by HashAggregate.
enum class AggregateFunction : uint8_t {
  kCount,  ///< COUNT(col): non-NULL count (INT64)
  kSum,    ///< SUM(col): numeric sum (INT64 for ints, DOUBLE for floats)
  kMin,    ///< MIN(col): same type as input
  kMax,    ///< MAX(col): same type as input
};

/// One aggregate expression: function applied to an input column.
struct AggregateExpr {
  AggregateFunction function = AggregateFunction::kCount;
  uint64_t column = 0;
};

/// \brief GROUP BY hash aggregation materialized in the unified row format.
///
/// The paper's Future Work (§IX ¶2) observes that "the aggregate, join, and
/// window operators are also blocking operators. ... In DuckDB, these
/// operators use a unified row format." This operator follows that design:
/// group keys and aggregate states live in fixed-size NSM rows (a
/// RowCollection) addressed by an open-addressing hash table, so an
/// aggregate chained after a sort can consume and produce the same row
/// representation the sort uses.
///
/// Output schema: the group-by columns (input types) followed by one column
/// per aggregate.
class HashAggregate {
 public:
  HashAggregate(std::vector<uint64_t> group_by,
                std::vector<AggregateExpr> aggregates,
                std::vector<LogicalType> input_types);
  ROWSORT_DISALLOW_COPY_AND_MOVE(HashAggregate);

  /// Feeds one chunk of input.
  void Sink(const DataChunk& chunk);

  /// Returns one row per group (group order unspecified; sort the result
  /// with RelationalSort for deterministic output).
  Table Finalize();

  uint64_t group_count() const { return group_count_; }

 private:
  uint64_t HashGroup(const DataChunk& chunk, uint64_t row) const;
  bool GroupEquals(const uint8_t* group_row, const DataChunk& chunk,
                   uint64_t row) const;
  uint64_t FindOrCreateGroup(const DataChunk& chunk, uint64_t row,
                             uint64_t hash);
  void UpdateStates(uint64_t group_index, const DataChunk& chunk,
                    uint64_t row);
  void Grow();

  std::vector<uint64_t> group_by_;
  std::vector<AggregateExpr> aggregates_;
  std::vector<LogicalType> input_types_;
  std::vector<LogicalType> group_types_;
  std::vector<LogicalType> state_types_;  ///< output type per aggregate

  /// Group rows: [group key columns | per-aggregate state | count-valid
  /// slots], in one RowLayout.
  RowLayout group_layout_;
  RowCollection groups_;
  uint64_t group_count_ = 0;

  /// Open-addressing table of (group index + 1); 0 = empty.
  std::vector<uint64_t> table_;
  uint64_t table_mask_ = 0;
};

}  // namespace rowsort
