// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>

#include "engine/sorted_run.h"
#include "engine/tuple_comparator.h"

namespace rowsort {

/// \brief Merge Path (Green, Odeh & Birk 2014): computes, for a given output
/// diagonal, how many elements each of two sorted runs contributes to the
/// first \p diagonal merged elements. The resulting partitions can be merged
/// independently, which is how the pipeline parallelizes the *last* merges
/// when there are fewer run pairs than threads (paper §VII: "The partition
/// boundaries are efficiently computed with a binary search").
///
/// The split is stable: ties are taken from \p left first.
///
/// \return i = elements taken from left; the right contribution is
/// diagonal - i.
uint64_t MergePathSearch(const SortedRun& left, const SortedRun& right,
                         const TupleComparator& comparator, uint64_t diagonal);

}  // namespace rowsort
