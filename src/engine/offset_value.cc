// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "engine/offset_value.h"

#include "common/macros.h"

namespace rowsort {

int CompareKeySuffix(const uint8_t* a, const uint8_t* b, uint64_t begin,
                     uint64_t key_width, uint64_t* diff_index) {
  for (uint64_t i = begin; i < key_width; ++i) {
    if (a[i] != b[i]) {
      *diff_index = i;
      return a[i] < b[i] ? -1 : 1;
    }
  }
  return 0;
}

uint64_t DeriveHeadOvc(const uint8_t* key, uint64_t key_width) {
  for (uint64_t i = 0; i < key_width; ++i) {
    if (key[i] != 0) return MakeOvc(key_width, i, key[i]);
  }
  return kOvcEqual;  // the all-zero key equals the virtual -inf base
}

uint64_t DeriveSuccessorOvc(const uint8_t* prev, const uint8_t* key,
                            uint64_t key_width) {
  uint64_t diff = 0;
  int cmp = CompareKeySuffix(prev, key, 0, key_width, &diff);
  if (cmp == 0) return kOvcEqual;
  ROWSORT_DASSERT(cmp < 0 && "run must be sorted ascending by key bytes");
  return MakeOvc(key_width, diff, key[diff]);
}

std::vector<uint64_t> DeriveRunOvcs(const SortedRun& run, uint64_t key_width) {
  ROWSORT_DASSERT(key_width <= run.key_row_width);
  std::vector<uint64_t> ovcs(run.count);
  if (run.count == 0) return ovcs;
  ovcs[0] = DeriveHeadOvc(run.KeyRow(0), key_width);
  for (uint64_t i = 1; i < run.count; ++i) {
    ovcs[i] = DeriveSuccessorOvc(run.KeyRow(i - 1), run.KeyRow(i), key_width);
  }
  return ovcs;
}

}  // namespace rowsort
