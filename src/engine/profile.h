// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/compress.h"
#include "common/histogram.h"
#include "common/io_worker.h"
#include "common/macros.h"
#include "common/status.h"
#include "parallel/thread_pool.h"

namespace rowsort {

/// \file profile.h
/// Hierarchical per-sort profiles (docs/observability.md).
///
/// SortMetrics answers "how long did each phase take" with three doubles;
/// this file answers the questions the paper argues from — Fig. 11's phase
/// decomposition, Tables II–III's counters — for a *live* sort:
///
///   sort
///   ├── sink        per-thread children (chunks, rows, per-chunk latency)
///   ├── run_sort    per-thread children (runs, per-block-sort latency)
///   ├── merge       per-round children + a merge-slice latency histogram
///   ├── spill       write/read block latencies, bytes, retry backoff waits
///   └── parallel    thread-pool stats (queue wait vs run time, busy time)
///
/// Aggregation is race-free by construction: threads record into local
/// ThreadProfile structs folded once at CombineLocal (under the engine's
/// run mutex), cross-thread histograms (merge slices, spill I/O) use relaxed
/// atomics, and everything else is written by the single Finalize thread.
/// All engine-side folds are assignment-style, so a profile rebuilt after an
/// error (partial profile) is identical to one rebuilt at success — nothing
/// double-counts.

/// Pipeline stage a sort is currently executing; recorded with a relaxed
/// atomic so a profile retrieved after Status::Cancelled / DeadlineExceeded
/// / IOError still tells *where* the pipeline was (docs/observability.md).
enum class SortPhase : uint8_t {
  kIdle = 0,   ///< constructed, no input yet
  kSink,       ///< DSM->NSM conversion + key normalization
  kRunSort,    ///< thread-local block sorts + payload reorder
  kMerge,      ///< cascaded / k-way / external merge
  kDone,       ///< Finalize completed
};

const char* SortPhaseName(SortPhase phase);

/// \brief One node of the profile tree. Plain data; synchronization is the
/// owning SortProfile's concern.
struct ProfileNode {
  ProfileNode() = default;
  explicit ProfileNode(std::string n) : name(std::move(n)) {}

  std::string name;
  uint64_t invocations = 0;  ///< chunks sunk, runs sorted, merges played...
  uint64_t rows = 0;         ///< rows that flowed through this node
  double seconds = 0;        ///< wall time attributed to this node
  DurationHistogram latencies;  ///< per-invocation durations (log2 buckets)
  /// Named counters in insertion order (stable JSON output).
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::unique_ptr<ProfileNode>> children;

  /// Finds or creates the child named \p child_name.
  ProfileNode* Child(const std::string& child_name);
  const ProfileNode* FindChild(const std::string& child_name) const;
  /// Sets (not adds — folds must be idempotent) a named counter.
  void SetCounter(const std::string& counter_name, uint64_t value);
  uint64_t counter(const std::string& counter_name) const;
  /// Sum of \p field over the direct children (reconciliation checks).
  double ChildSeconds() const;

  std::unique_ptr<ProfileNode> Clone() const;
  /// {"name":...,"invocations":N,"rows":N,"seconds":S[,"counters":{...}]
  ///  [,"latency_ns":{...}][,"children":[...]]}
  void AppendJson(std::string* out) const;
  /// One EXPLAIN-ANALYZE-style tree line per node. The root call passes
  /// is_root = true (no connector); recursion handles the rest.
  void AppendPretty(std::string* out, const std::string& prefix, bool last,
                    bool is_root = true) const;
};

/// \brief Per-thread slice of the profile. Recorded with no synchronization
/// whatsoever by the thread that owns the LocalState, then folded exactly
/// once into the SortProfile at CombineLocal — the same single aggregation
/// path the phase timings use, so TSan has nothing to object to.
struct ThreadProfile {
  uint64_t chunks = 0;
  uint64_t rows = 0;
  uint64_t runs = 0;
  double sink_seconds = 0;
  double run_sort_seconds = 0;
  DurationHistogram sink_chunk_ns;  ///< one recording per Sink() chunk
  DurationHistogram block_sort_ns;  ///< one recording per sorted run
};

/// \brief Thread-safe accounting sink for spill I/O, shared by every writer
/// and reader a sort opens (SpillIoOptions::io_profile). Relaxed atomics
/// only — spill blocks are ~4096 rows, so the accounting cost vanishes next
/// to the I/O itself.
class SpillIoProfile {
 public:
  void RecordWrite(uint64_t ns, uint64_t bytes, uint64_t rows) {
    blocks_written_.fetch_add(1, std::memory_order_relaxed);
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
    rows_written_.fetch_add(rows, std::memory_order_relaxed);
    write_ns_.Record(ns);
  }
  void RecordRead(uint64_t ns, uint64_t bytes, uint64_t rows) {
    blocks_read_.fetch_add(1, std::memory_order_relaxed);
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    rows_read_.fetch_add(rows, std::memory_order_relaxed);
    read_ns_.Record(ns);
  }

  uint64_t blocks_written() const {
    return blocks_written_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  uint64_t rows_written() const {
    return rows_written_.load(std::memory_order_relaxed);
  }
  uint64_t blocks_read() const {
    return blocks_read_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  uint64_t rows_read() const {
    return rows_read_.load(std::memory_order_relaxed);
  }
  DurationHistogram write_latencies() const { return write_ns_.Snapshot(); }
  DurationHistogram read_latencies() const { return read_ns_.Snapshot(); }

 private:
  std::atomic<uint64_t> blocks_written_{0}, bytes_written_{0},
      rows_written_{0};
  std::atomic<uint64_t> blocks_read_{0}, bytes_read_{0}, rows_read_{0};
  AtomicDurationHistogram write_ns_;
  AtomicDurationHistogram read_ns_;
};

/// \brief Counters for the overlapped spill path (SpillIoOptions::
/// overlap_stats), shared by every writer/reader of one sort and folded into
/// SortMetrics and the profile's spill node (docs/observability.md).
struct SpillOverlapStats {
  /// Microseconds a *compute* thread spent blocked on spill I/O: the full
  /// fread/fwrite time on the synchronous path, only the residual ticket
  /// waits when overlap is on. The >= 50% drop of this counter under
  /// overlap is the headline number of bench_external_sort.
  std::atomic<uint64_t> io_wait_us{0};
  /// Blocks whose background read had already completed when the consumer
  /// asked for them (the readahead fully hid the I/O).
  std::atomic<uint64_t> blocks_prefetched{0};
  /// WriteSlice calls that had to wait for the previous block's background
  /// write (the double buffer was still in flight — I/O slower than encode).
  std::atomic<uint64_t> write_behind_stalls{0};
};

/// \brief Counters for the v3 compressed spill path (SpillIoOptions::
/// compression_stats), shared by every writer/reader of one sort and folded
/// into SortMetrics and the profile's spill/compression node. Relaxed
/// atomics — one update per block section.
struct SpillCompressionStats {
  /// Section bytes before / after encoding. The ratio bytes_compressed /
  /// bytes_raw is the headline spill-bandwidth saving.
  std::atomic<uint64_t> bytes_raw{0};
  std::atomic<uint64_t> bytes_compressed{0};
  /// Sections written with each codec (3 sections per block: keys, payload,
  /// strings), indexed by SpillCodec value.
  std::atomic<uint64_t> sections_raw{0};
  std::atomic<uint64_t> sections_prefix{0};
  std::atomic<uint64_t> sections_rle{0};
  std::atomic<uint64_t> sections_lz{0};
  /// Per-block encode / decode latency (sort-thread side in both cases:
  /// compression runs before the write-behind submit, decompression after
  /// the prefetch completes).
  AtomicDurationHistogram compress_ns;
  AtomicDurationHistogram decompress_ns;

  void RecordSection(SpillCodec codec, uint64_t raw, uint64_t stored) {
    bytes_raw.fetch_add(raw, std::memory_order_relaxed);
    bytes_compressed.fetch_add(stored, std::memory_order_relaxed);
    switch (codec) {
      case SpillCodec::kRaw:
        sections_raw.fetch_add(1, std::memory_order_relaxed);
        break;
      case SpillCodec::kPrefix:
        sections_prefix.fetch_add(1, std::memory_order_relaxed);
        break;
      case SpillCodec::kRle:
        sections_rle.fetch_add(1, std::memory_order_relaxed);
        break;
      case SpillCodec::kLz:
        sections_lz.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
};

/// \brief The hierarchical profile of one sort. Owned by RelationalSort;
/// retrievable (complete or partial) after success, error, or cancellation.
///
/// All mutators are thread-safe. Tree readers (root(), ToJson(), ToString())
/// take the same lock for the structure, but must not race ThreadProfile
/// folds for *content* freshness — in practice: read after the pipeline
/// entry points have returned.
class SortProfile {
 public:
  SortProfile();
  ROWSORT_DISALLOW_COPY_AND_MOVE(SortProfile);

  /// -- live recording -------------------------------------------------
  void EnterPhase(SortPhase phase) {
    active_phase_.store(static_cast<uint8_t>(phase),
                        std::memory_order_relaxed);
  }
  SortPhase active_phase() const {
    return static_cast<SortPhase>(
        active_phase_.load(std::memory_order_relaxed));
  }

  /// One merge-slice (or streamed external-merge block span) duration;
  /// callable from any pool thread.
  void RecordMergeSlice(uint64_t ns, uint64_t rows) {
    merge_slice_ns_.Record(ns);
    merge_slice_rows_.fetch_add(rows, std::memory_order_relaxed);
  }

  /// -- folds (all idempotent / assignment-style) ----------------------
  /// Folds one thread's locally recorded slice; called once per LocalState
  /// at CombineLocal. Re-folding the same ordinal replaces, not adds.
  void FoldThread(uint64_t ordinal, const ThreadProfile& thread);

  /// Describes merge level \p round of the cascade (1-based).
  void SetMergeRound(uint64_t round, uint64_t merges, uint64_t rows,
                     double seconds);

  /// Phase wall-clock totals (assigned from SortMetrics so profile and
  /// metrics reconcile exactly).
  void SetPhaseSeconds(double sink, double run_sort, double merge);

  void SetRows(uint64_t rows);
  void SetRootCounter(const std::string& name, uint64_t value);
  /// Rebuilds the spill node from the shared I/O accounting.
  void FoldSpillIo(const SpillIoProfile& io);
  /// Rebuilds the spill/retry_backoff node (io_retries + wait histogram).
  void FoldRetryBackoff(uint64_t io_retries,
                        const DurationHistogram& backoff_waits);
  /// Rebuilds the spill node's overlap counters (compute-side I/O wait,
  /// prefetch hits, write-behind stalls) and the spill/io_worker child from
  /// the background worker's snapshot. No-op when nothing was recorded.
  void FoldSpillOverlap(const SpillOverlapStats& overlap,
                        const IoWorkerStatsSnapshot& worker);
  /// Rebuilds the spill/compression node (raw vs. stored bytes, per-codec
  /// section counts, encode/decode latency histograms). No-op when no
  /// section was ever recorded (compression off or nothing spilled).
  void FoldSpillCompression(const SpillCompressionStats& compression);
  /// Rebuilds the merge/slices node from the atomic slice histogram.
  void FoldMergeSlices();
  /// Rebuilds the parallel node from a pool snapshot.
  void FoldPool(const ThreadPoolStatsSnapshot& pool);

  /// Deep copy (for SortTable's profile_out, filled even on error).
  void CopyFrom(const SortProfile& other);

  /// -- export ---------------------------------------------------------
  /// Root of the tree. Tree structure is stable under the internal lock;
  /// read after the sort's entry points returned for consistent contents.
  const ProfileNode& root() const { return root_; }
  /// Convenience: seconds attributed to a top-level phase node.
  double PhaseSeconds(const std::string& phase_name) const;

  /// {"schema":"rowsort.profile.v1","active_phase":...,<root node>}
  std::string ToJson() const;
  /// EXPLAIN-ANALYZE-style pretty tree.
  std::string ToString() const;
  Status WriteJson(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  ProfileNode root_;
  std::atomic<uint8_t> active_phase_{0};
  AtomicDurationHistogram merge_slice_ns_;
  std::atomic<uint64_t> merge_slice_rows_{0};
};

}  // namespace rowsort
