// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/sort_engine.h"
#include "workload/tables.h"

namespace rowsort {

/// Ranking window functions supported by ComputeWindow.
enum class WindowFunction : uint8_t {
  kRowNumber,  ///< 1, 2, 3, ... within the partition
  kRank,       ///< equal ORDER BY peers share a rank; gaps after ties
  kDenseRank,  ///< equal peers share a rank; no gaps
};

/// \brief OVER (PARTITION BY ... ORDER BY ...) specification.
struct WindowSpec {
  std::vector<uint64_t> partition_by;  ///< column indices
  std::vector<SortColumn> order_by;    ///< ordering within each partition
};

/// \brief Window operator built on the sorting pipeline (paper §II: "The
/// ORDER BY and WINDOW operators explicitly invoke sorting"; §IX lists
/// window among the blocking operators sharing the unified row format).
///
/// Sorts the input by (partition columns, order columns) using the
/// row-based pipeline, then computes the requested ranking functions in one
/// scan over the sorted run: partition boundaries and ORDER BY peer groups
/// are both detected by memcmp on the corresponding normalized-key segments
/// (plus VARCHAR tie resolution) — no per-row interpretation.
///
/// Returns the input columns followed by one INT64 column per requested
/// function, rows ordered by (partition, order). Pipeline failures (OOM,
/// spill I/O, cancellation / deadline via \p config.cancellation) surface
/// as the returned Status; the rank scan and output assembly also poll the
/// token at block granularity.
StatusOr<Table> ComputeWindow(const Table& input, const WindowSpec& spec,
                              const std::vector<WindowFunction>& functions,
                              const SortEngineConfig& config = {});

}  // namespace rowsort
