// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <vector>

#include "row/row_collection.h"

namespace rowsort {

/// \brief One fully sorted run of the pipeline (paper Fig. 11): normalized
/// key rows and payload rows, position-aligned (key i belongs to payload
/// row i). Runs are produced by thread-local run generation and consumed by
/// the cascaded merge.
struct SortedRun {
  std::vector<uint8_t> key_rows;  ///< count * key_row_width bytes
  RowCollection payload;
  uint64_t count = 0;
  uint64_t key_row_width = 0;

  /// Per-row offset-value codes relative to the run predecessor (see
  /// offset_value.h); empty when the engine runs with OVC disabled. Derived
  /// after run generation and propagated through OVC-aware merges.
  std::vector<uint64_t> ovcs;

  const uint8_t* KeyRow(uint64_t i) const {
    return key_rows.data() + i * key_row_width;
  }
  const uint8_t* PayloadRow(uint64_t i) const { return payload.GetRow(i); }
};

}  // namespace rowsort
