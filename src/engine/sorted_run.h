// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#pragma once

#include <cstdint>
#include <vector>

#include "common/memory_tracker.h"
#include "row/row_collection.h"

namespace rowsort {

/// \brief One fully sorted run of the pipeline (paper Fig. 11): normalized
/// key rows and payload rows, position-aligned (key i belongs to payload
/// row i). Runs are produced by thread-local run generation and consumed by
/// the cascaded merge.
struct SortedRun {
  std::vector<uint8_t> key_rows;  ///< count * key_row_width bytes
  RowCollection payload;
  uint64_t count = 0;
  uint64_t key_row_width = 0;

  /// Per-row offset-value codes relative to the run predecessor (see
  /// offset_value.h); empty when the engine runs with OVC disabled. Derived
  /// after run generation and propagated through OVC-aware merges.
  std::vector<uint64_t> ovcs;

  /// Reservation for key_rows + ovcs against the engine's MemoryTracker
  /// (the payload self-accounts through RowCollection). Follows moves,
  /// releases on destruction, so a spilled or merged-away run gives its
  /// bytes back automatically.
  MemoryReservation key_memory;

  const uint8_t* KeyRow(uint64_t i) const {
    return key_rows.data() + i * key_row_width;
  }
  const uint8_t* PayloadRow(uint64_t i) const { return payload.GetRow(i); }

  /// Resident bytes of the key-side buffers.
  uint64_t KeyBytes() const {
    return key_rows.capacity() + ovcs.capacity() * sizeof(uint64_t);
  }

  /// Total resident bytes (keys + codes + payload rows + string heap).
  uint64_t MemoryBytes() const {
    return KeyBytes() + payload.MemoryBytes();
  }

  /// Accounts this run's resident bytes against \p tracker (nullptr stops
  /// accounting — e.g. when the run is handed out as the final result).
  void TrackMemory(MemoryTracker* tracker) {
    key_memory.Reset(tracker, KeyBytes());
    payload.SetMemoryTracker(tracker);
  }
};

}  // namespace rowsort
