// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "engine/analyze.h"

#include <cstring>

#include "common/macros.h"
#include "types/string_t.h"

namespace rowsort {

StringColumnStats ScanStringColumn(const Table& input, uint64_t col) {
  ROWSORT_ASSERT(col < input.types().size());
  ROWSORT_ASSERT(input.types()[col].id() == TypeId::kVarchar);
  StringColumnStats stats;
  for (uint64_t ci = 0; ci < input.ChunkCount(); ++ci) {
    const Vector& vec = input.chunk(ci).column(col);
    const string_t* strings = vec.TypedData<string_t>();
    for (uint64_t r = 0; r < input.chunk(ci).size(); ++r) {
      if (!vec.validity().RowIsValid(r)) continue;
      const string_t& s = strings[r];
      stats.max_length = std::max<uint64_t>(stats.max_length, s.size());
      if (!stats.has_nul_byte && s.size() > 0 &&
          std::memchr(s.data(), '\0', s.size()) != nullptr) {
        stats.has_nul_byte = true;
      }
    }
  }
  return stats;
}

uint64_t MaxStringLength(const Table& input, uint64_t col) {
  return ScanStringColumn(input, col).max_length;
}

void TuneStringPrefixes(const Table& input, SortSpec* spec) {
  std::vector<SortColumn> columns = spec->columns();
  for (auto& col : columns) {
    if (col.type.id() != TypeId::kVarchar) continue;
    StringColumnStats stats = ScanStringColumn(input, col.column_index);
    // Never grow beyond the configured cap; shrink to the actual maximum
    // (at least 1 so the key always distinguishes empty vs non-empty).
    bool covers = stats.max_length <= col.string_prefix_length &&
                  !stats.has_nul_byte;
    col.string_prefix_length = std::max<uint64_t>(
        1, std::min(col.string_prefix_length, stats.max_length));
    col.prefix_covers_full_string = covers;
  }
  *spec = SortSpec(std::move(columns));
}

}  // namespace rowsort
