// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "engine/aggregate.h"

#include <cstring>

#include "common/bit_util.h"
#include "types/string_t.h"

namespace rowsort {

namespace {

/// Output/state type of an aggregate over an input type.
LogicalType StateType(AggregateFunction fn, LogicalType input) {
  switch (fn) {
    case AggregateFunction::kCount:
      return LogicalType(TypeId::kInt64);
    case AggregateFunction::kSum:
      switch (input.id()) {
        case TypeId::kFloat:
        case TypeId::kDouble:
          return LogicalType(TypeId::kDouble);
        default:
          return LogicalType(TypeId::kInt64);
      }
    case AggregateFunction::kMin:
    case AggregateFunction::kMax:
      return input;
  }
  return LogicalType(TypeId::kInvalid);
}

uint64_t MixHash(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

uint64_t HashBytes(const void* data, uint64_t size, uint64_t seed) {
  // FNV-1a over the value bytes.
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t h = seed ^ 0xCBF29CE484222325ull;
  for (uint64_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

HashAggregate::HashAggregate(std::vector<uint64_t> group_by,
                             std::vector<AggregateExpr> aggregates,
                             std::vector<LogicalType> input_types)
    : group_by_(std::move(group_by)), aggregates_(std::move(aggregates)),
      input_types_(std::move(input_types)) {
  ROWSORT_ASSERT(!group_by_.empty());
  for (uint64_t col : group_by_) {
    ROWSORT_ASSERT(col < input_types_.size());
    group_types_.push_back(input_types_[col]);
  }
  std::vector<LogicalType> row_types = group_types_;
  for (const auto& agg : aggregates_) {
    ROWSORT_ASSERT(agg.column < input_types_.size());
    LogicalType state = StateType(agg.function, input_types_[agg.column]);
    ROWSORT_ASSERT(state.id() != TypeId::kInvalid);
    state_types_.push_back(state);
    row_types.push_back(state);
  }
  group_layout_ = RowLayout(row_types);
  groups_ = RowCollection(group_layout_);
  table_.assign(1024, 0);
  table_mask_ = table_.size() - 1;
}

uint64_t HashAggregate::HashGroup(const DataChunk& chunk, uint64_t row) const {
  uint64_t h = 0;
  for (uint64_t col : group_by_) {
    const Vector& vec = chunk.column(col);
    if (!vec.validity().RowIsValid(row)) {
      h = MixHash(h, 0x6E756C6Cull);  // "null"
      continue;
    }
    if (vec.type().id() == TypeId::kVarchar) {
      const string_t& s = vec.TypedData<string_t>()[row];
      h = MixHash(h, HashBytes(s.data(), s.size(), 7));
    } else {
      h = MixHash(h, HashBytes(vec.data() + row * vec.type().FixedSize(),
                               vec.type().FixedSize(), 7));
    }
  }
  return h;
}

bool HashAggregate::GroupEquals(const uint8_t* group_row,
                                const DataChunk& chunk, uint64_t row) const {
  for (uint64_t g = 0; g < group_by_.size(); ++g) {
    uint64_t col = group_by_[g];
    const Vector& vec = chunk.column(col);
    bool chunk_valid = vec.validity().RowIsValid(row);
    bool group_valid = RowLayout::IsValid(group_row, g);
    // SQL GROUP BY: NULLs group together.
    if (chunk_valid != group_valid) return false;
    if (!chunk_valid) continue;
    const uint8_t* slot = group_row + group_layout_.ColumnOffset(g);
    if (vec.type().id() == TypeId::kVarchar) {
      string_t stored = bit_util::LoadUnaligned<string_t>(slot);
      if (!(stored == vec.TypedData<string_t>()[row])) return false;
    } else {
      if (std::memcmp(slot, vec.data() + row * vec.type().FixedSize(),
                      vec.type().FixedSize()) != 0) {
        return false;
      }
    }
  }
  return true;
}

void HashAggregate::Grow() {
  std::vector<uint64_t> old = std::move(table_);
  table_.assign(old.size() * 2, 0);
  table_mask_ = table_.size() - 1;
  for (uint64_t entry : old) {
    if (entry == 0) continue;
    // Rehash the stored group row.
    const uint8_t* row = groups_.GetRow(entry - 1);
    uint64_t h = 0;
    for (uint64_t g = 0; g < group_by_.size(); ++g) {
      if (!RowLayout::IsValid(row, g)) {
        h = MixHash(h, 0x6E756C6Cull);
        continue;
      }
      const uint8_t* slot = row + group_layout_.ColumnOffset(g);
      if (group_types_[g].id() == TypeId::kVarchar) {
        string_t s = bit_util::LoadUnaligned<string_t>(slot);
        h = MixHash(h, HashBytes(s.data(), s.size(), 7));
      } else {
        h = MixHash(h, HashBytes(slot, group_types_[g].FixedSize(), 7));
      }
    }
    uint64_t idx = h & table_mask_;
    while (table_[idx] != 0) idx = (idx + 1) & table_mask_;
    table_[idx] = entry;
  }
}

uint64_t HashAggregate::FindOrCreateGroup(const DataChunk& chunk, uint64_t row,
                                          uint64_t hash) {
  uint64_t idx = hash & table_mask_;
  while (true) {
    uint64_t entry = table_[idx];
    if (entry == 0) break;
    if (GroupEquals(groups_.GetRow(entry - 1), chunk, row)) {
      return entry - 1;
    }
    idx = (idx + 1) & table_mask_;
  }

  // New group: scatter the key columns and initialize aggregate states.
  uint64_t group_index = groups_.AppendUninitialized(1);
  uint8_t* dest = groups_.GetRow(group_index);
  std::memset(dest, 0xFF, group_layout_.ValidityBytes());
  for (uint64_t g = 0; g < group_by_.size(); ++g) {
    uint64_t col = group_by_[g];
    const Vector& vec = chunk.column(col);
    uint8_t* slot = dest + group_layout_.ColumnOffset(g);
    if (!vec.validity().RowIsValid(row)) {
      RowLayout::SetValid(dest, g, false);
      std::memset(slot, 0, vec.type().FixedSize());
      continue;
    }
    if (vec.type().id() == TypeId::kVarchar) {
      string_t owned =
          groups_.string_heap().AddString(vec.TypedData<string_t>()[row]);
      std::memcpy(slot, &owned, sizeof(string_t));
    } else {
      std::memcpy(slot, vec.data() + row * vec.type().FixedSize(),
                  vec.type().FixedSize());
    }
  }
  for (uint64_t a = 0; a < aggregates_.size(); ++a) {
    uint64_t state_col = group_by_.size() + a;
    uint8_t* slot = dest + group_layout_.ColumnOffset(state_col);
    std::memset(slot, 0, state_types_[a].FixedSize());
    if (aggregates_[a].function == AggregateFunction::kCount) {
      // COUNT starts at a valid 0; SUM/MIN/MAX stay NULL until a value.
    } else {
      RowLayout::SetValid(dest, state_col, false);
    }
  }

  ++group_count_;
  table_[idx] = group_index + 1;
  if (group_count_ * 2 > table_.size()) Grow();
  return group_index;
}

void HashAggregate::UpdateStates(uint64_t group_index, const DataChunk& chunk,
                                 uint64_t row) {
  uint8_t* group_row = groups_.GetRow(group_index);
  for (uint64_t a = 0; a < aggregates_.size(); ++a) {
    const AggregateExpr& agg = aggregates_[a];
    const Vector& vec = chunk.column(agg.column);
    if (!vec.validity().RowIsValid(row)) continue;  // NULLs are ignored
    uint64_t state_col = group_by_.size() + a;
    uint8_t* slot = group_row + group_layout_.ColumnOffset(state_col);
    bool state_valid = RowLayout::IsValid(group_row, state_col);

    switch (agg.function) {
      case AggregateFunction::kCount: {
        int64_t count = bit_util::LoadUnaligned<int64_t>(slot);
        bit_util::StoreUnaligned<int64_t>(slot, count + 1);
        break;
      }
      case AggregateFunction::kSum: {
        Value v = vec.GetValue(row);
        if (state_types_[a].id() == TypeId::kDouble) {
          double addend = v.type().id() == TypeId::kFloat
                              ? static_cast<double>(v.float_value())
                              : v.double_value();
          double sum =
              state_valid ? bit_util::LoadUnaligned<double>(slot) : 0.0;
          bit_util::StoreUnaligned<double>(slot, sum + addend);
        } else {
          int64_t addend = 0;
          switch (v.type().id()) {
            case TypeId::kInt8:
              addend = v.int8_value();
              break;
            case TypeId::kInt16:
              addend = v.int16_value();
              break;
            case TypeId::kInt32:
            case TypeId::kDate:
              addend = v.int32_value();
              break;
            case TypeId::kInt64:
              addend = v.int64_value();
              break;
            case TypeId::kUint32:
              addend = v.uint32_value();
              break;
            case TypeId::kUint64:
              addend = static_cast<int64_t>(v.uint64_value());
              break;
            default:
              ROWSORT_ASSERT(false && "SUM over non-numeric type");
          }
          int64_t sum =
              state_valid ? bit_util::LoadUnaligned<int64_t>(slot) : 0;
          bit_util::StoreUnaligned<int64_t>(slot, sum + addend);
        }
        RowLayout::SetValid(group_row, state_col, true);
        break;
      }
      case AggregateFunction::kMin:
      case AggregateFunction::kMax: {
        Value v = vec.GetValue(row);
        bool take = !state_valid;
        if (state_valid) {
          // Read the stored value back as a Value for comparison.
          Vector tmp(state_types_[a], 1);
          std::memcpy(tmp.data(), slot, state_types_[a].FixedSize());
          if (state_types_[a].id() == TypeId::kVarchar) {
            // string_t copied verbatim; it points into our heap.
          }
          Value stored = tmp.GetValue(0);
          int cmp = v.Compare(stored);
          take = agg.function == AggregateFunction::kMin ? cmp < 0 : cmp > 0;
        }
        if (take) {
          if (state_types_[a].id() == TypeId::kVarchar) {
            string_t owned = groups_.string_heap().AddString(
                vec.TypedData<string_t>()[row]);
            std::memcpy(slot, &owned, sizeof(string_t));
          } else {
            std::memcpy(slot, vec.data() + row * vec.type().FixedSize(),
                        vec.type().FixedSize());
          }
          RowLayout::SetValid(group_row, state_col, true);
        }
        break;
      }
    }
  }
}

void HashAggregate::Sink(const DataChunk& chunk) {
  for (uint64_t row = 0; row < chunk.size(); ++row) {
    uint64_t hash = HashGroup(chunk, row);
    uint64_t group = FindOrCreateGroup(chunk, row, hash);
    UpdateStates(group, chunk, row);
  }
}

Table HashAggregate::Finalize() {
  std::vector<LogicalType> out_types = group_types_;
  out_types.insert(out_types.end(), state_types_.begin(), state_types_.end());
  Table out(out_types);
  uint64_t offset = 0;
  while (offset < group_count_) {
    uint64_t n = std::min(kVectorSize, group_count_ - offset);
    DataChunk chunk;
    chunk.Initialize(out_types);
    groups_.GatherChunk(offset, n, &chunk);
    out.Append(std::move(chunk));
    offset += n;
  }
  return out;
}

}  // namespace rowsort
