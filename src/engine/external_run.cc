// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "engine/external_run.h"

#include <cstdio>
#include <memory>

#include "common/bit_util.h"
#include "common/string_util.h"
#include "types/string_t.h"

namespace rowsort {

namespace {

constexpr uint64_t kRunFileMagic = 0x524F57534F525431ull;  // "ROWSORT1"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status WriteAll(std::FILE* f, const void* data, uint64_t size) {
  if (size == 0) return Status::OK();
  if (std::fwrite(data, 1, size, f) != size) {
    return Status::IOError("short write");
  }
  return Status::OK();
}

Status ReadAll(std::FILE* f, void* data, uint64_t size) {
  if (size == 0) return Status::OK();
  if (std::fread(data, 1, size, f) != size) {
    return Status::IOError("short read");
  }
  return Status::OK();
}

template <typename T>
Status WriteScalar(std::FILE* f, T value) {
  return WriteAll(f, &value, sizeof(T));
}

template <typename T>
Status ReadScalar(std::FILE* f, T* value) {
  return ReadAll(f, value, sizeof(T));
}

/// Columns of the layout that may hold non-inlined strings.
std::vector<uint64_t> VarcharColumns(const RowLayout& layout) {
  std::vector<uint64_t> cols;
  for (uint64_t c = 0; c < layout.ColumnCount(); ++c) {
    if (layout.types()[c].id() == TypeId::kVarchar) cols.push_back(c);
  }
  return cols;
}

}  // namespace

Status WriteRunToFile(const SortedRun& run, const RowLayout& payload_layout,
                      const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (!file) return Status::IOError("cannot open " + path + " for writing");
  std::FILE* f = file.get();

  ROWSORT_RETURN_NOT_OK(WriteScalar<uint64_t>(f, kRunFileMagic));
  ROWSORT_RETURN_NOT_OK(WriteScalar<uint64_t>(f, run.count));
  ROWSORT_RETURN_NOT_OK(WriteScalar<uint64_t>(f, run.key_row_width));
  ROWSORT_RETURN_NOT_OK(
      WriteScalar<uint64_t>(f, payload_layout.row_width()));
  ROWSORT_RETURN_NOT_OK(
      WriteAll(f, run.key_rows.data(), run.count * run.key_row_width));
  ROWSORT_RETURN_NOT_OK(WriteAll(f, run.payload.data(),
                                 run.count * payload_layout.row_width()));

  // String section: every valid non-inlined string payload.
  for (uint64_t col : VarcharColumns(payload_layout)) {
    uint64_t offset = payload_layout.ColumnOffset(col);
    for (uint64_t row = 0; row < run.count; ++row) {
      const uint8_t* row_ptr = run.payload.GetRow(row);
      if (!RowLayout::IsValid(row_ptr, col)) continue;
      string_t value = bit_util::LoadUnaligned<string_t>(row_ptr + offset);
      if (value.IsInlined()) continue;
      ROWSORT_RETURN_NOT_OK(WriteScalar<uint64_t>(f, row));
      ROWSORT_RETURN_NOT_OK(WriteScalar<uint64_t>(f, col));
      ROWSORT_RETURN_NOT_OK(WriteScalar<uint32_t>(f, value.size()));
      ROWSORT_RETURN_NOT_OK(WriteAll(f, value.data(), value.size()));
    }
  }
  if (std::fflush(f) != 0) return Status::IOError("flush failed");
  return Status::OK();
}

StatusOr<SortedRun> ReadRunFromFile(const RowLayout& payload_layout,
                                    const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (!file) return Status::IOError("cannot open " + path + " for reading");
  std::FILE* f = file.get();

  uint64_t magic = 0, count = 0, key_row_width = 0, payload_width = 0;
  ROWSORT_RETURN_NOT_OK(ReadScalar(f, &magic));
  if (magic != kRunFileMagic) {
    return Status::InvalidArgument(path + " is not a rowsort run file");
  }
  ROWSORT_RETURN_NOT_OK(ReadScalar(f, &count));
  ROWSORT_RETURN_NOT_OK(ReadScalar(f, &key_row_width));
  ROWSORT_RETURN_NOT_OK(ReadScalar(f, &payload_width));
  if (payload_width != payload_layout.row_width()) {
    return Status::InvalidArgument(StringFormat(
        "payload width mismatch: file has %llu, layout has %llu",
        static_cast<unsigned long long>(payload_width),
        static_cast<unsigned long long>(payload_layout.row_width())));
  }

  SortedRun run;
  run.count = count;
  run.key_row_width = key_row_width;
  run.key_rows.resize(count * key_row_width);
  ROWSORT_RETURN_NOT_OK(ReadAll(f, run.key_rows.data(), run.key_rows.size()));
  run.payload = RowCollection(payload_layout);
  run.payload.AppendUninitialized(count);
  ROWSORT_RETURN_NOT_OK(
      ReadAll(f, run.payload.data(), count * payload_width));

  // Rebuild non-inlined strings into the fresh heap.
  while (true) {
    uint64_t row = 0, col = 0;
    uint32_t len = 0;
    if (std::fread(&row, 1, sizeof(row), f) != sizeof(row)) {
      if (std::feof(f)) break;
      return Status::IOError("short read in string section");
    }
    ROWSORT_RETURN_NOT_OK(ReadScalar(f, &col));
    ROWSORT_RETURN_NOT_OK(ReadScalar(f, &len));
    if (row >= count || col >= payload_layout.ColumnCount()) {
      return Status::InvalidArgument("corrupt string section");
    }
    char* dest = run.payload.string_heap().Allocate(len);
    ROWSORT_RETURN_NOT_OK(ReadAll(f, dest, len));
    string_t value(dest, len);
    bit_util::StoreUnaligned(
        run.payload.GetRow(row) + payload_layout.ColumnOffset(col), value);
  }
  return run;
}

}  // namespace rowsort
