// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "engine/external_run.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/bit_util.h"
#include "common/compress.h"
#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "types/string_t.h"

namespace rowsort {

namespace {

constexpr uint64_t kRunFileMagic = 0x524F57534F525432ull;    // "ROWSORT2"
constexpr uint64_t kRunFileMagicV3 = 0x524F57534F525433ull;  // "ROWSORT3"
constexpr uint32_t kRunFileVersion = 2;
constexpr uint32_t kRunFileVersionV3 = 3;
constexpr uint32_t kBlockMagic = 0x424C4B32u;    // "BLK2"
constexpr uint32_t kBlockMagicV3 = 0x424C4B33u;  // "BLK3"
constexpr uint64_t kHeaderSize = 8 + 4 + 4 + 8 + 8 + 8 + 4;
/// v3 block framing: [magic u32][rows u64][body size u64].
constexpr uint64_t kBlockFramingV3 = 4 + 8 + 8;
/// v3 section header: [codec u8][raw size u64][stored size u64].
constexpr uint64_t kSectionHeaderSize = 1 + 8 + 8;
/// Upper bound on a single string payload; a larger length can only come
/// from corruption and must not drive an allocation.
constexpr uint32_t kMaxStringLength = 1u << 30;
/// Upper bound on one decompressed v3 section; real sections are a few MB
/// (kDefaultSpillBlockRows rows), so anything near this is corruption.
constexpr uint64_t kMaxSectionRawBytes = 1ull << 31;
/// A corrupt v3 body size must not drive one huge allocation: the body is
/// fetched in bounded chunks, so a lying length dies on a truncation error
/// after at most one chunk past the real end of file.
constexpr uint64_t kFetchChunkBytes = 16ull << 20;
/// After this many consecutive sections where a codec attempt lost to raw,
/// retry only every kCodecRetryPeriod-th block (incompressible payloads pay
/// almost no compression tax).
constexpr uint32_t kCodecGiveUpAfter = 4;
constexpr uint32_t kCodecRetryPeriod = 16;

/// A codec is only chosen over raw when it saves at least 1/8th of the
/// section. Marginal wins (row padding and validity bytes on otherwise
/// random data shave a few percent) are not worth the decompress cost on
/// every future read of the block — and accepting them would keep the
/// expensive LZ probe engaged forever instead of letting the raw-streak
/// give-up kick in.
bool CodecPays(uint64_t stored, uint64_t raw) {
  return stored <= raw - raw / 8;
}

/// Prefix for corruption/truncation statuses: every spill I/O error names
/// the run file and its format version, so a bad run in a many-run merge is
/// attributable from the message alone.
std::string RunContext(const std::string& path, uint32_t version) {
  return StringFormat("%s (run format v%u)", path.c_str(),
                      static_cast<unsigned>(version));
}

/// Backoff budget for one stuck spill operation: 5 zero-progress attempts,
/// 100us..20ms exponential — a few tens of milliseconds before a hiccup is
/// declared permanent.
constexpr RetryPolicy kSpillRetryPolicy{};

/// True for errno values a retry can plausibly outlast. EINTR/EAGAIN are
/// the classic resumable interruptions; 0 covers libc short writes that set
/// no errno. Everything else (ENOSPC, EIO, EBADF, ...) still gets the
/// bounded retry budget — "ENOSPC after retries" is the permanent verdict,
/// not the first ENOSPC — but is reported by name when the budget runs out.
const char* ErrnoLabel(int err) {
  switch (err) {
    case 0: return "short transfer";
    case EINTR: return "EINTR";
    case EAGAIN: return "EAGAIN";
    case ENOSPC: return "ENOSPC";
    case EIO: return "EIO";
    default: return "I/O error";
  }
}

/// Writes \p size bytes, resuming short writes where they stopped. A write
/// that advances resets the retry budget; one that is stuck backs off
/// exponentially and eventually fails with a permanent IOError. Runs on the
/// spill I/O worker when write-behind is enabled, so the failpoints and the
/// retry machinery fire on the background thread.
Status WriteAll(std::FILE* f, const void* data, uint64_t size,
                const SpillIoOptions& io) {
  if (ROWSORT_FAILPOINT("external_run_write")) {
    return Status::IOError("injected spill write failure (failpoint)");
  }
  if (size == 0) return Status::OK();
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t done = 0;
  RetryState retry(kSpillRetryPolicy, io.retry_stats, &io.cancellation);
  while (done < size) {
    uint64_t want = size - done;
    // Transient failpoint: the stream accepts only part of the buffer, the
    // way an interrupted or pressured write(2) would.
    if (want > 1 && ROWSORT_FAILPOINT("external_run_write_short")) {
      want = (want + 1) / 2;
    }
    errno = 0;
    size_t n = std::fwrite(bytes + done, 1, want, f);
    done += n;
    if (done == size) break;
    int err = errno;
    std::clearerr(f);  // a stream error flag would fail every later call
    ROWSORT_RETURN_NOT_OK(retry.OnTransientError(
        Status::IOError(StringFormat("short write (%s)", ErrnoLabel(err))),
        /*made_progress=*/n > 0));
  }
  return Status::OK();
}

/// Reads \p size bytes, resuming short reads. End-of-file is the one
/// non-retryable shortfall: the bytes are not there and waiting will not
/// materialize them (truncation => permanent IOError).
Status ReadAll(std::FILE* f, void* data, uint64_t size,
               const SpillIoOptions& io) {
  if (size == 0) return Status::OK();
  uint8_t* bytes = static_cast<uint8_t*>(data);
  uint64_t done = 0;
  RetryState retry(kSpillRetryPolicy, io.retry_stats, &io.cancellation);
  while (done < size) {
    uint64_t want = size - done;
    // Transient failpoint: the read comes back short, as if interrupted by
    // a signal mid-transfer.
    if (want > 1 && ROWSORT_FAILPOINT("external_run_read_eintr")) {
      want = (want + 1) / 2;
    }
    errno = 0;
    size_t n = std::fread(bytes + done, 1, want, f);
    done += n;
    if (done == size) break;
    if (n < want && std::feof(f)) {
      return Status::IOError("short read");
    }
    int err = errno;
    std::clearerr(f);
    ROWSORT_RETURN_NOT_OK(retry.OnTransientError(
        Status::IOError(StringFormat("short read (%s)", ErrnoLabel(err))),
        /*made_progress=*/n > 0));
  }
  return Status::OK();
}

/// Serialization buffer that accumulates scalars and tracks their CRC so
/// header and block framing are written (and checksummed) identically.
struct ScalarBuffer {
  uint8_t bytes[64];
  uint64_t size = 0;

  template <typename T>
  void Add(T value) {
    ROWSORT_DASSERT(size + sizeof(T) <= sizeof(bytes));
    std::memcpy(bytes + size, &value, sizeof(T));
    size += sizeof(T);
  }
  uint32_t Crc(uint32_t crc = 0) const { return Crc32(crc, bytes, size); }
};

/// Columns of the layout that may hold non-inlined strings.
std::vector<uint64_t> VarcharColumns(const RowLayout& layout) {
  std::vector<uint64_t> cols;
  for (uint64_t c = 0; c < layout.ColumnCount(); ++c) {
    if (layout.types()[c].id() == TypeId::kVarchar) cols.push_back(c);
  }
  return cols;
}

/// Builds the 44-byte file header (count patched in by Finish()). v2 and v3
/// share the layout; only magic and version differ.
ScalarBuffer BuildHeader(uint32_t version, uint64_t count,
                         uint64_t key_row_width, uint64_t payload_row_width) {
  ScalarBuffer buf;
  buf.Add<uint64_t>(version == kRunFileVersionV3 ? kRunFileMagicV3
                                                 : kRunFileMagic);
  buf.Add<uint32_t>(version);
  buf.Add<uint32_t>(0);  // flags
  buf.Add<uint64_t>(count);
  buf.Add<uint64_t>(key_row_width);
  buf.Add<uint64_t>(payload_row_width);
  buf.Add<uint32_t>(buf.Crc());
  ROWSORT_DASSERT(buf.size == kHeaderSize);
  return buf;
}

void AppendBytes(std::vector<uint8_t>* out, const void* data, uint64_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  out->insert(out->end(), bytes, bytes + size);
}

/// Serializes rows [begin, end) of \p run into \p out: block framing, key
/// rows, payload rows, string section, trailing CRC32 over everything
/// before it. Byte-for-byte the block format that the synchronous writer
/// has always produced — encoding is separated from writing so the write
/// can happen behind the sort thread's back.
void EncodeSlice(const RowLayout& layout, const SortedRun& run, uint64_t begin,
                 uint64_t end, std::vector<uint8_t>* out) {
  out->clear();
  const uint64_t rows = end - begin;
  const uint64_t krw = run.key_row_width;
  const uint64_t prw = layout.row_width();

  // Collect the block's non-inlined strings first: the section length is
  // part of the framing.
  struct StringRef {
    uint32_t row;
    uint32_t col;
    string_t value;
  };
  std::vector<StringRef> strings;
  for (uint64_t col : VarcharColumns(layout)) {
    uint64_t offset = layout.ColumnOffset(col);
    for (uint64_t row = begin; row < end; ++row) {
      const uint8_t* row_ptr = run.payload.GetRow(row);
      if (!RowLayout::IsValid(row_ptr, col)) continue;
      string_t value = bit_util::LoadUnaligned<string_t>(row_ptr + offset);
      if (value.IsInlined()) continue;
      strings.push_back({static_cast<uint32_t>(row - begin),
                         static_cast<uint32_t>(col), value});
    }
  }

  ScalarBuffer framing;
  framing.Add<uint32_t>(kBlockMagic);
  framing.Add<uint64_t>(rows);
  AppendBytes(out, framing.bytes, framing.size);
  AppendBytes(out, run.key_rows.data() + begin * krw, rows * krw);
  AppendBytes(out, run.payload.GetRow(begin), rows * prw);

  ScalarBuffer nstrings;
  nstrings.Add<uint64_t>(strings.size());
  AppendBytes(out, nstrings.bytes, nstrings.size);
  for (const StringRef& s : strings) {
    ScalarBuffer entry;
    entry.Add<uint32_t>(s.row);
    entry.Add<uint32_t>(s.col);
    entry.Add<uint32_t>(s.value.size());
    AppendBytes(out, entry.bytes, entry.size);
    AppendBytes(out, s.value.data(), s.value.size());
  }
  uint32_t crc = Crc32(0, out->data(), out->size());
  AppendBytes(out, &crc, sizeof(crc));
}

/// Serializes the non-inlined strings of rows [begin, end) into \p out in
/// the v2 string-section layout ([nstrings u64][(row,col,len,bytes)*]) —
/// that layout is the *raw* form of the v3 string section, so the v2 decode
/// logic applies verbatim after decompression.
void BuildStringSectionRaw(const RowLayout& layout, const SortedRun& run,
                           uint64_t begin, uint64_t end,
                           std::vector<uint8_t>* out) {
  out->clear();
  out->resize(sizeof(uint64_t), 0);  // nstrings, patched below
  uint64_t nstrings = 0;
  for (uint64_t col : VarcharColumns(layout)) {
    uint64_t offset = layout.ColumnOffset(col);
    for (uint64_t row = begin; row < end; ++row) {
      const uint8_t* row_ptr = run.payload.GetRow(row);
      if (!RowLayout::IsValid(row_ptr, col)) continue;
      string_t value = bit_util::LoadUnaligned<string_t>(row_ptr + offset);
      if (value.IsInlined()) continue;
      ScalarBuffer entry;
      entry.Add<uint32_t>(static_cast<uint32_t>(row - begin));
      entry.Add<uint32_t>(static_cast<uint32_t>(col));
      entry.Add<uint32_t>(value.size());
      AppendBytes(out, entry.bytes, entry.size);
      AppendBytes(out, value.data(), value.size());
      ++nstrings;
    }
  }
  std::memcpy(out->data(), &nstrings, sizeof(nstrings));
}

/// Appends one v3 section ([codec u8][raw u64][stored u64][bytes]) and
/// records it into \p stats.
void AppendV3Section(SpillCodec codec, const uint8_t* stored,
                     uint64_t stored_size, uint64_t raw_size,
                     SpillCompressionStats* stats, std::vector<uint8_t>* out) {
  ScalarBuffer header;
  header.Add<uint8_t>(static_cast<uint8_t>(codec));
  header.Add<uint64_t>(raw_size);
  header.Add<uint64_t>(stored_size);
  AppendBytes(out, header.bytes, header.size);
  AppendBytes(out, stored, stored_size);
  if (stats != nullptr) stats->RecordSection(codec, raw_size, stored_size);
}

/// True when an LZ attempt on an incompressible stream is due: always while
/// the streak is short, then only periodically (the streak keeps counting
/// through skipped blocks, so every kCodecRetryPeriod-th block re-probes).
bool LzAttemptDue(uint32_t raw_streak) {
  return raw_streak < kCodecGiveUpAfter ||
         raw_streak % kCodecRetryPeriod == 0;
}

/// Attempts LZ on a section, cheaply: a prefix sample is compressed first,
/// and only if the sample pays is the full section compressed. On
/// incompressible data the probe — not a full-section compress — is the
/// only cost, which keeps the wall-time tax of `spill_compression=on` in
/// the noise for random workloads. Returns true (with \p buf holding the
/// full encoding) when LZ should be chosen over raw.
bool LzWorthIt(const uint8_t* data, uint64_t size, std::vector<uint8_t>* buf) {
  constexpr uint64_t kLzProbeBytes = 16 << 10;
  if (size > 2 * kLzProbeBytes) {
    buf->clear();
    LzCompress(data, kLzProbeBytes, buf);
    if (!CodecPays(buf->size(), kLzProbeBytes)) return false;
  }
  buf->clear();
  LzCompress(data, size, buf);
  return CodecPays(buf->size(), size);
}

/// Sampled probe for the row-structured codecs (prefix, RLE), same idea as
/// LzWorthIt: encode the first few hundred rows, and only encode the full
/// section when the sample pays. Sorted blocks are statistically uniform,
/// so the head predicts the whole section well; the final decision is still
/// made on the full encoding.
template <typename CompressFn>
bool RowCodecWorthIt(CompressFn compress, const uint8_t* data, uint64_t rows,
                     uint64_t width, std::vector<uint8_t>* buf) {
  constexpr uint64_t kProbeRows = 512;
  if (rows > 2 * kProbeRows) {
    buf->clear();
    compress(data, kProbeRows, width, buf);
    if (!CodecPays(buf->size(), kProbeRows * width)) return false;
  }
  buf->clear();
  compress(data, rows, width, buf);
  return CodecPays(buf->size(), rows * width);
}

/// Serializes rows [begin, end) of \p run as one v3 compressed block: BLK3
/// framing, three independently compressed sections (keys, payload,
/// strings), trailing CRC32 over the compressed bytes. Codec choice is
/// empirical — each candidate is encoded and kept only if it is actually
/// smaller than raw, so every section independently degrades to
/// passthrough. Runs on the sort thread; with write-behind enabled the
/// fwrite of the previous block proceeds underneath it.
void EncodeSliceV3(const RowLayout& layout, const SortedRun& run,
                   uint64_t begin, uint64_t end,
                   std::vector<std::vector<uint8_t>>* scratch,
                   uint32_t* payload_raw_streak, uint32_t* string_raw_streak,
                   SpillCompressionStats* stats, std::vector<uint8_t>* out) {
  Timer timer;
  out->clear();
  scratch->resize(4);
  std::vector<uint8_t>& strings_raw = (*scratch)[0];
  std::vector<uint8_t>& enc_a = (*scratch)[1];
  std::vector<uint8_t>& enc_b = (*scratch)[2];
  std::vector<uint8_t>& strings_enc = (*scratch)[3];
  const uint64_t rows = end - begin;
  const uint64_t krw = run.key_row_width;
  const uint64_t prw = layout.row_width();
  const uint8_t* keys = run.key_rows.data() + begin * krw;
  const uint8_t* payload = run.payload.GetRow(begin);
  BuildStringSectionRaw(layout, run, begin, end, &strings_raw);

  // Keys: normalized sort keys are memcmp-sorted within the block, so
  // adjacent rows share long prefixes; frame-of-reference/delta against the
  // previous row exploits exactly that. Keys embed a unique row id, so RLE
  // can never apply to them.
  enc_a.clear();
  SpillCodec key_codec = SpillCodec::kRaw;
  if (rows > 1 && krw > 0 &&
      RowCodecWorthIt(PrefixCompress, keys, rows, krw, &enc_a)) {
    key_codec = SpillCodec::kPrefix;
  }

  // Payload: RLE for duplicate-heavy row streams (one memcmp pass, always
  // attempted), LZ as the general-purpose fallback with give-up adaptivity
  // so random payloads stop paying for doomed attempts.
  enc_b.clear();
  SpillCodec payload_codec = SpillCodec::kRaw;
  if (rows > 1 && prw > 0) {
    if (RowCodecWorthIt(RleCompress, payload, rows, prw, &enc_b)) {
      payload_codec = SpillCodec::kRle;
    } else if (LzAttemptDue(*payload_raw_streak) &&
               LzWorthIt(payload, rows * prw, &enc_b)) {
      payload_codec = SpillCodec::kLz;
    }
    *payload_raw_streak =
        payload_codec == SpillCodec::kRaw ? *payload_raw_streak + 1 : 0;
  }

  // Strings: byte-oriented LZ or nothing; the section is dominated by the
  // string bytes themselves, which have no row structure to exploit.
  strings_enc.clear();
  SpillCodec string_codec = SpillCodec::kRaw;
  if (strings_raw.size() > 64 && LzAttemptDue(*string_raw_streak) &&
      LzWorthIt(strings_raw.data(), strings_raw.size(), &strings_enc)) {
    string_codec = SpillCodec::kLz;
  }
  if (strings_raw.size() > 64) {
    *string_raw_streak =
        string_codec == SpillCodec::kRaw ? *string_raw_streak + 1 : 0;
  }

  const uint64_t key_stored =
      key_codec == SpillCodec::kRaw ? rows * krw : enc_a.size();
  const uint64_t payload_stored =
      payload_codec == SpillCodec::kRaw ? rows * prw : enc_b.size();
  const uint64_t string_stored = string_codec == SpillCodec::kRaw
                                     ? strings_raw.size()
                                     : strings_enc.size();
  const uint64_t body =
      3 * kSectionHeaderSize + key_stored + payload_stored + string_stored;

  out->reserve(kBlockFramingV3 + body + sizeof(uint32_t));
  ScalarBuffer framing;
  framing.Add<uint32_t>(kBlockMagicV3);
  framing.Add<uint64_t>(rows);
  framing.Add<uint64_t>(body);
  AppendBytes(out, framing.bytes, framing.size);
  AppendV3Section(key_codec,
                  key_codec == SpillCodec::kRaw ? keys : enc_a.data(),
                  key_stored, rows * krw, stats, out);
  AppendV3Section(payload_codec,
                  payload_codec == SpillCodec::kRaw ? payload : enc_b.data(),
                  payload_stored, rows * prw, stats, out);
  AppendV3Section(string_codec,
                  string_codec == SpillCodec::kRaw ? strings_raw.data()
                                                   : strings_enc.data(),
                  string_stored, strings_raw.size(), stats, out);
  // CRC over the compressed bytes: corruption is caught on read before any
  // decompressor sees the data.
  uint32_t crc = Crc32(0, out->data(), out->size());
  AppendBytes(out, &crc, sizeof(crc));
  if (stats != nullptr) stats->compress_ns.Record(timer.ElapsedNanos());
}

/// Reads the raw bytes of the next block (framing included, trailing CRC
/// included) from \p f into \p raw. Framing fields are validated as they
/// are read — a corrupt length must not drive a huge allocation — but the
/// CRC and string placement are checked later by DecodeRawBlock, so this
/// function can run on the I/O worker while the compute thread decodes the
/// previous block. \p remaining_rows bounds the plausible row count.
Status FetchRawBlock(std::FILE* f, const std::string& path,
                     const RowLayout& layout, uint64_t key_row_width,
                     uint64_t remaining_rows, std::vector<uint8_t>* raw,
                     uint64_t* rows_out, const SpillIoOptions& io) {
  raw->clear();
  *rows_out = 0;
  if (io.cancellation.IsCancelled()) {
    return CancellationToken::StatusForCause(io.cancellation.cause());
  }
  TraceSpan span(io.trace, "spill.read_block", "spill");
  Timer timer;
  const std::string ctx = RunContext(path, kRunFileVersion);
  uint64_t pos = 0;
  auto read_into = [&](uint64_t n) -> Status {
    raw->resize(pos + n);
    Status s = ReadAll(f, raw->data() + pos, n, io);
    if (s.ok()) pos += n;
    return s;
  };

  raw->resize(sizeof(uint32_t));
  if (std::fread(raw->data(), 1, sizeof(uint32_t), f) != sizeof(uint32_t)) {
    std::clearerr(f);
    return Status::IOError(ctx + ": truncated (missing block)");
  }
  pos = sizeof(uint32_t);
  if (bit_util::LoadUnaligned<uint32_t>(raw->data()) != kBlockMagic) {
    return Status::IOError(ctx + ": corrupt block header");
  }
  ROWSORT_RETURN_NOT_OK(read_into(sizeof(uint64_t)));
  const uint64_t rows = bit_util::LoadUnaligned<uint64_t>(raw->data() + 4);
  if (rows == 0 || rows > remaining_rows) {
    return Status::IOError(ctx + ": corrupt block row count");
  }
  ROWSORT_RETURN_NOT_OK(
      read_into(rows * (key_row_width + layout.row_width())));
  ROWSORT_RETURN_NOT_OK(read_into(sizeof(uint64_t)));
  const uint64_t nstrings =
      bit_util::LoadUnaligned<uint64_t>(raw->data() + pos - sizeof(uint64_t));
  if (nstrings > rows * layout.ColumnCount()) {
    return Status::IOError(ctx + ": corrupt string section length");
  }
  for (uint64_t i = 0; i < nstrings; ++i) {
    ROWSORT_RETURN_NOT_OK(read_into(3 * sizeof(uint32_t)));
    const uint32_t len =
        bit_util::LoadUnaligned<uint32_t>(raw->data() + pos - sizeof(uint32_t));
    if (len > kMaxStringLength) {
      return Status::IOError(ctx + ": corrupt string section");
    }
    ROWSORT_RETURN_NOT_OK(read_into(len));
  }
  ROWSORT_RETURN_NOT_OK(read_into(sizeof(uint32_t)));  // stored block CRC
  *rows_out = rows;
  if (io.io_profile != nullptr) {
    io.io_profile->RecordRead(timer.ElapsedNanos(), pos, rows);
  }
  return Status::OK();
}

/// v3 counterpart of FetchRawBlock: the framing carries an explicit body
/// size, so the fetch is two reads (framing, then body + CRC) instead of a
/// walk over the string entries. The body is pulled in bounded chunks so a
/// corrupt length dies on a truncation error, never a huge allocation. The
/// CRC and all section validation happen later in DecodeRawBlockV3.
Status FetchRawBlockV3(std::FILE* f, const std::string& path,
                       uint64_t remaining_rows, std::vector<uint8_t>* raw,
                       uint64_t* rows_out, const SpillIoOptions& io) {
  raw->clear();
  *rows_out = 0;
  if (io.cancellation.IsCancelled()) {
    return CancellationToken::StatusForCause(io.cancellation.cause());
  }
  TraceSpan span(io.trace, "spill.read_block", "spill");
  Timer timer;
  const std::string ctx = RunContext(path, kRunFileVersionV3);
  uint64_t pos = 0;
  auto read_into = [&](uint64_t n) -> Status {
    raw->resize(pos + n);
    Status s = ReadAll(f, raw->data() + pos, n, io);
    if (s.ok()) {
      pos += n;
      return s;
    }
    // Name the file and format in truncation/corruption reports; retry
    // exhaustion and cancellation keep their own shapes.
    if (s.code() == StatusCode::kIOError) {
      return Status::IOError(ctx + ": " + s.message());
    }
    return s;
  };

  raw->resize(sizeof(uint32_t));
  if (std::fread(raw->data(), 1, sizeof(uint32_t), f) != sizeof(uint32_t)) {
    std::clearerr(f);
    return Status::IOError(ctx + ": truncated (missing block)");
  }
  pos = sizeof(uint32_t);
  if (bit_util::LoadUnaligned<uint32_t>(raw->data()) != kBlockMagicV3) {
    return Status::IOError(ctx + ": corrupt block header");
  }
  ROWSORT_RETURN_NOT_OK(read_into(2 * sizeof(uint64_t)));
  const uint64_t rows = bit_util::LoadUnaligned<uint64_t>(raw->data() + 4);
  const uint64_t body = bit_util::LoadUnaligned<uint64_t>(raw->data() + 12);
  if (rows == 0 || rows > remaining_rows) {
    return Status::IOError(ctx + ": corrupt block row count");
  }
  if (body < 3 * kSectionHeaderSize) {
    return Status::IOError(ctx + ": corrupt block length");
  }
  uint64_t left = body;
  while (left > 0) {
    const uint64_t chunk = std::min(left, kFetchChunkBytes);
    ROWSORT_RETURN_NOT_OK(read_into(chunk));
    left -= chunk;
  }
  ROWSORT_RETURN_NOT_OK(read_into(sizeof(uint32_t)));  // stored block CRC
  *rows_out = rows;
  if (io.io_profile != nullptr) {
    io.io_profile->RecordRead(timer.ElapsedNanos(), pos, rows);
  }
  return Status::OK();
}

/// Bounds-checked cursor over a fetched raw block.
struct RawCursor {
  const uint8_t* data;
  uint64_t size;
  uint64_t pos = 0;

  const uint8_t* Take(uint64_t n) {
    if (pos + n > size) return nullptr;
    const uint8_t* p = data + pos;
    pos += n;
    return p;
  }
  template <typename T>
  bool TakeScalar(T* out) {
    const uint8_t* p = Take(sizeof(T));
    if (p == nullptr) return false;
    *out = bit_util::LoadUnaligned<T>(p);
    return true;
  }
};

/// Decodes a raw block fetched by FetchRawBlock into \p block: verifies the
/// trailing CRC over the whole buffer, then rebuilds rows and re-pointers
/// non-inlined strings into the block's own heap. Pure CPU — this is the
/// half that overlaps the next block's background read.
Status DecodeRawBlock(const RowLayout& layout, const std::string& path,
                      const std::vector<uint8_t>& raw, uint64_t key_row_width,
                      SortedRun* block, Tracer* trace) {
  TraceSpan span(trace, "spill.decode_block", "spill");
  const std::string ctx = RunContext(path, kRunFileVersion);
  if (raw.size() < sizeof(uint32_t) + sizeof(uint64_t) + sizeof(uint64_t) +
                       sizeof(uint32_t)) {
    return Status::IOError(ctx + ": truncated block");
  }
  const uint32_t stored_crc =
      bit_util::LoadUnaligned<uint32_t>(raw.data() + raw.size() - 4);
  if (Crc32(0, raw.data(), raw.size() - 4) != stored_crc) {
    return Status::IOError(ctx + ": block checksum mismatch");
  }

  RawCursor cur{raw.data(), raw.size() - 4};
  uint32_t magic = 0;
  uint64_t rows = 0;
  if (!cur.TakeScalar(&magic) || !cur.TakeScalar(&rows) ||
      magic != kBlockMagic || rows == 0) {
    return Status::IOError(ctx + ": corrupt block header");
  }
  const uint64_t krw = key_row_width;
  const uint64_t prw = layout.row_width();
  const uint8_t* keys = cur.Take(rows * krw);
  const uint8_t* payload = cur.Take(rows * prw);
  if (keys == nullptr || payload == nullptr) {
    return Status::IOError(ctx + ": truncated block");
  }
  block->key_rows.resize(rows * krw);
  std::memcpy(block->key_rows.data(), keys, rows * krw);
  block->payload.AppendUninitialized(rows);
  std::memcpy(block->payload.data(), payload, rows * prw);

  uint64_t nstrings = 0;
  if (!cur.TakeScalar(&nstrings) ||
      nstrings > rows * layout.ColumnCount()) {
    return Status::IOError(ctx + ": corrupt string section length");
  }
  for (uint64_t i = 0; i < nstrings; ++i) {
    uint32_t row = 0, col = 0, len = 0;
    if (!cur.TakeScalar(&row) || !cur.TakeScalar(&col) ||
        !cur.TakeScalar(&len)) {
      return Status::IOError(ctx + ": truncated block");
    }
    if (row >= rows || col >= layout.ColumnCount() ||
        layout.types()[col].id() != TypeId::kVarchar ||
        len > kMaxStringLength) {
      return Status::IOError(ctx + ": corrupt string section");
    }
    const uint8_t* bytes = cur.Take(len);
    if (bytes == nullptr) {
      return Status::IOError(ctx + ": truncated block");
    }
    char* dest = block->payload.string_heap().Allocate(len);
    std::memcpy(dest, bytes, len);
    string_t value(dest, len);
    bit_util::StoreUnaligned(
        block->payload.GetRow(row) + layout.ColumnOffset(col), value);
  }
  if (cur.pos != cur.size) {
    return Status::IOError(ctx + ": corrupt block length");
  }
  block->count = rows;
  block->key_row_width = key_row_width;
  return Status::OK();
}

/// Reads one v3 section header off \p cur and decompresses the stored bytes
/// into [out, out + raw_size). \p expect_raw pins the section's raw size to
/// what the block geometry implies (rows x width); 0 means variable (the
/// string section). Every mismatch — unknown codec, stored bytes that do
/// not decode to exactly the declared raw size, a raw section whose stored
/// size lies — is a permanent IOError naming the section.
Status DecodeV3Section(RawCursor* cur, const std::string& ctx,
                       const char* name, uint64_t expect_raw, uint64_t rows,
                       uint64_t width, uint64_t raw_size_limit,
                       std::vector<uint8_t>* var_out, uint8_t* out,
                       uint64_t* raw_size_out) {
  uint8_t codec_byte = 0;
  uint64_t raw_size = 0, stored = 0;
  if (!cur->TakeScalar(&codec_byte) || !cur->TakeScalar(&raw_size) ||
      !cur->TakeScalar(&stored)) {
    return Status::IOError(StringFormat("%s: truncated %s section header",
                                        ctx.c_str(), name));
  }
  if (out != nullptr && raw_size != expect_raw) {
    return Status::IOError(StringFormat(
        "%s: %s section declares %llu raw bytes, block geometry implies %llu",
        ctx.c_str(), name, static_cast<unsigned long long>(raw_size),
        static_cast<unsigned long long>(expect_raw)));
  }
  if (raw_size > raw_size_limit) {
    return Status::IOError(StringFormat("%s: corrupt %s section length",
                                        ctx.c_str(), name));
  }
  const uint8_t* bytes = cur->Take(stored);
  if (bytes == nullptr) {
    return Status::IOError(StringFormat("%s: truncated %s section",
                                        ctx.c_str(), name));
  }
  if (out == nullptr) {
    var_out->resize(raw_size);
    out = var_out->data();
    // Variable-size section: the row-structured codecs must fill exactly
    // raw_size bytes, so treat it as raw_size one-byte rows (a corrupt tag
    // must not leave part of the buffer unwritten).
    rows = raw_size;
    width = 1;
  }
  if (raw_size_out != nullptr) *raw_size_out = raw_size;
  bool decoded = false;
  switch (static_cast<SpillCodec>(codec_byte)) {
    case SpillCodec::kRaw:
      if (stored != raw_size) {
        return Status::IOError(StringFormat(
            "%s: raw %s section stores %llu bytes for %llu declared",
            ctx.c_str(), name, static_cast<unsigned long long>(stored),
            static_cast<unsigned long long>(raw_size)));
      }
      std::memcpy(out, bytes, stored);
      decoded = true;
      break;
    case SpillCodec::kPrefix:
      decoded = PrefixDecompress(bytes, stored, rows, width, out);
      break;
    case SpillCodec::kRle:
      decoded = RleDecompress(bytes, stored, rows, width, out);
      break;
    case SpillCodec::kLz:
      decoded = LzDecompress(bytes, stored, out, raw_size);
      break;
    default:
      return Status::IOError(StringFormat("%s: unknown codec tag %u in %s section",
                                          ctx.c_str(),
                                          static_cast<unsigned>(codec_byte),
                                          name));
  }
  if (!decoded) {
    return Status::IOError(StringFormat(
        "%s: %s section does not decode to its declared size", ctx.c_str(),
        name));
  }
  return Status::OK();
}

/// v3 counterpart of DecodeRawBlock: verifies the trailing CRC over the
/// *compressed* bytes, then decompresses the three sections (keys straight
/// into the block's key rows, payload into its row collection, strings into
/// a scratch buffer that is parsed with the v2 string-section logic). Pure
/// CPU — overlaps the next block's background read, and its cost lands in
/// SpillCompressionStats::decompress_ns.
Status DecodeRawBlockV3(const RowLayout& layout, const std::string& path,
                        const std::vector<uint8_t>& raw,
                        uint64_t key_row_width, SortedRun* block,
                        Tracer* trace, SpillCompressionStats* stats) {
  TraceSpan span(trace, "spill.decode_block", "spill");
  Timer timer;
  const std::string ctx = RunContext(path, kRunFileVersionV3);
  if (raw.size() <
      kBlockFramingV3 + 3 * kSectionHeaderSize + sizeof(uint32_t)) {
    return Status::IOError(ctx + ": truncated block");
  }
  const uint32_t stored_crc =
      bit_util::LoadUnaligned<uint32_t>(raw.data() + raw.size() - 4);
  if (Crc32(0, raw.data(), raw.size() - 4) != stored_crc) {
    return Status::IOError(ctx + ": block checksum mismatch");
  }

  RawCursor cur{raw.data(), raw.size() - 4};
  uint32_t magic = 0;
  uint64_t rows = 0, body = 0;
  if (!cur.TakeScalar(&magic) || !cur.TakeScalar(&rows) ||
      !cur.TakeScalar(&body) || magic != kBlockMagicV3 || rows == 0) {
    return Status::IOError(ctx + ": corrupt block header");
  }
  if (body != cur.size - cur.pos) {
    return Status::IOError(ctx + ": corrupt block length");
  }
  const uint64_t krw = key_row_width;
  const uint64_t prw = layout.row_width();

  block->key_rows.resize(rows * krw);
  ROWSORT_RETURN_NOT_OK(DecodeV3Section(
      &cur, ctx, "key", rows * krw, rows, krw, kMaxSectionRawBytes,
      /*var_out=*/nullptr, block->key_rows.data(), /*raw_size_out=*/nullptr));
  block->payload.AppendUninitialized(rows);
  ROWSORT_RETURN_NOT_OK(DecodeV3Section(
      &cur, ctx, "payload", rows * prw, rows, prw, kMaxSectionRawBytes,
      /*var_out=*/nullptr, block->payload.data(), /*raw_size_out=*/nullptr));
  std::vector<uint8_t> strings_raw;
  uint64_t strings_size = 0;
  ROWSORT_RETURN_NOT_OK(DecodeV3Section(
      &cur, ctx, "string", /*expect_raw=*/0, rows, /*width=*/1,
      kMaxSectionRawBytes, &strings_raw, /*out=*/nullptr, &strings_size));
  if (cur.pos != cur.size) {
    return Status::IOError(ctx + ": corrupt block length");
  }

  // The decompressed string section is the v2 layout; parse it with the
  // same validation rules.
  RawCursor scur{strings_raw.data(), strings_size};
  uint64_t nstrings = 0;
  if (!scur.TakeScalar(&nstrings) ||
      nstrings > rows * layout.ColumnCount()) {
    return Status::IOError(ctx + ": corrupt string section length");
  }
  for (uint64_t i = 0; i < nstrings; ++i) {
    uint32_t row = 0, col = 0, len = 0;
    if (!scur.TakeScalar(&row) || !scur.TakeScalar(&col) ||
        !scur.TakeScalar(&len)) {
      return Status::IOError(ctx + ": truncated string section");
    }
    if (row >= rows || col >= layout.ColumnCount() ||
        layout.types()[col].id() != TypeId::kVarchar ||
        len > kMaxStringLength) {
      return Status::IOError(ctx + ": corrupt string section");
    }
    const uint8_t* bytes = scur.Take(len);
    if (bytes == nullptr) {
      return Status::IOError(ctx + ": truncated string section");
    }
    char* dest = block->payload.string_heap().Allocate(len);
    std::memcpy(dest, bytes, len);
    string_t value(dest, len);
    bit_util::StoreUnaligned(
        block->payload.GetRow(row) + layout.ColumnOffset(col), value);
  }
  if (scur.pos != scur.size) {
    return Status::IOError(ctx + ": corrupt string section length");
  }
  block->count = rows;
  block->key_row_width = key_row_width;
  if (stats != nullptr) stats->decompress_ns.Record(timer.ElapsedNanos());
  return Status::OK();
}

}  // namespace

ExternalRunWriter::ExternalRunWriter(const RowLayout& payload_layout,
                                     std::string path)
    : layout_(payload_layout), path_(std::move(path)),
      temp_path_(path_ + ".tmp") {}

ExternalRunWriter::~ExternalRunWriter() { Abandon(); }

void ExternalRunWriter::Abandon() {
  // An in-flight background block still references file_ and inflight_buf_;
  // never close the file under it.
  if (inflight_.valid()) (void)inflight_.Wait();
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (!finished_) {
    std::remove(temp_path_.c_str());
  }
  buffer_memory_.Reset();
}

Status ExternalRunWriter::Open(uint64_t key_row_width) {
  ROWSORT_ASSERT(file_ == nullptr && !finished_);
  if (ROWSORT_FAILPOINT("external_run_open")) {
    return Status::IOError("injected spill open failure (failpoint)");
  }
  file_ = std::fopen(temp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IOError("cannot open " + temp_path_ + " for writing");
  }
  key_row_width_ = key_row_width;
  version_ = io_.compression ? kRunFileVersionV3 : kRunFileVersion;
  if (io_.worker != nullptr && io_.buffer_tracker != nullptr) {
    buffer_memory_.Reset(io_.buffer_tracker, 0);
  }
  // Placeholder header; Finish() seeks back and patches the row count.
  ScalarBuffer header =
      BuildHeader(version_, 0, key_row_width_, layout_.row_width());
  return WriteAll(file_, header.bytes, header.size, io_);
}

Status ExternalRunWriter::WaitForInflight(bool count_stall) {
  if (!inflight_.valid()) return Status::OK();
  if (inflight_.done()) return inflight_.Wait();
  TraceSpan span(io_.trace, "spill.write_wait", "spill");
  Timer timer;
  Status s = inflight_.Wait();
  if (io_.overlap_stats != nullptr) {
    io_.overlap_stats->io_wait_us.fetch_add(timer.ElapsedNanos() / 1000,
                                            std::memory_order_relaxed);
    if (count_stall) {
      io_.overlap_stats->write_behind_stalls.fetch_add(
          1, std::memory_order_relaxed);
    }
  }
  return s;
}

Status ExternalRunWriter::WriteSlice(const SortedRun& run, uint64_t begin,
                                     uint64_t end) {
  ROWSORT_ASSERT(file_ != nullptr && !finished_);
  ROWSORT_ASSERT(begin <= end && end <= run.count);
  ROWSORT_ASSERT(run.key_row_width == key_row_width_);
  if (!error_.ok()) return error_;
  if (begin == end) return Status::OK();
  // Block-granular cancellation: a multi-gigabyte spill stops between
  // blocks, never mid-framing (the temp file is abandoned whole).
  if (io_.cancellation.IsCancelled()) {
    return CancellationToken::StatusForCause(io_.cancellation.cause());
  }
  const uint64_t rows = end - begin;
  // v3 compresses on the sort thread (here), v2 serializes verbatim; with
  // write-behind enabled either way overlaps the previous block's fwrite.
  auto encode = [&](std::vector<uint8_t>* out) {
    if (version_ == kRunFileVersionV3) {
      EncodeSliceV3(layout_, run, begin, end, &v3_scratch_,
                    &payload_raw_streak_, &string_raw_streak_,
                    io_.compression_stats, out);
    } else {
      EncodeSlice(layout_, run, begin, end, out);
    }
  };
  if (io_.worker != nullptr) {
    // Write-behind: encode into the free half of the double buffer, wait
    // for the previous block's background write (normally already done),
    // then hand the new block to the worker and return to sorting.
    TraceSpan span(io_.trace, "spill.write_submit", "spill");
    encode(&encode_buf_);
    Status s = WaitForInflight(/*count_stall=*/true);
    if (!s.ok()) {
      error_ = s;
      return error_;
    }
    std::swap(encode_buf_, inflight_buf_);
    uint64_t scratch_bytes = 0;
    for (const std::vector<uint8_t>& buf : v3_scratch_) {
      scratch_bytes += buf.capacity();
    }
    buffer_memory_.Update(encode_buf_.capacity() + inflight_buf_.capacity() +
                          scratch_bytes);
    std::FILE* f = file_;
    const std::vector<uint8_t>* buf = &inflight_buf_;
    SpillIoOptions io = io_;
    inflight_ = io_.worker->Submit([f, buf, rows, io]() {
      TraceSpan write_span(io.trace, "spill.write_block", "spill");
      Timer timer;
      Status ws = WriteAll(f, buf->data(), buf->size(), io);
      if (ws.ok() && io.io_profile != nullptr) {
        io.io_profile->RecordWrite(timer.ElapsedNanos(), buf->size(), rows);
      }
      return ws;
    });
  } else {
    TraceSpan span(io_.trace, "spill.write_block", "spill");
    encode(&encode_buf_);
    Timer timer;
    Status s = WriteAll(file_, encode_buf_.data(), encode_buf_.size(), io_);
    const uint64_t ns = timer.ElapsedNanos();
    if (io_.overlap_stats != nullptr) {
      io_.overlap_stats->io_wait_us.fetch_add(ns / 1000,
                                              std::memory_order_relaxed);
    }
    if (!s.ok()) {
      error_ = s;
      return error_;
    }
    if (io_.io_profile != nullptr) {
      io_.io_profile->RecordWrite(ns, encode_buf_.size(), rows);
    }
  }
  rows_written_ += rows;
  return Status::OK();
}

Status ExternalRunWriter::Finish() {
  ROWSORT_ASSERT(file_ != nullptr && !finished_);
  if (!error_.ok()) return error_;
  // The header patch below seeks; the in-flight block must land first.
  Status s = WaitForInflight(/*count_stall=*/false);
  if (!s.ok()) {
    error_ = s;
    return error_;
  }
  if (ROWSORT_FAILPOINT("external_run_finish")) {
    return Status::IOError("injected spill finish failure (failpoint)");
  }
  // Patch the real row count into the header.
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::IOError("seek failed on " + temp_path_);
  }
  ScalarBuffer header = BuildHeader(version_, rows_written_, key_row_width_,
                                    layout_.row_width());
  ROWSORT_RETURN_NOT_OK(WriteAll(file_, header.bytes, header.size, io_));
  // A failed flush or close after buffered writes means the data may not be
  // on disk; surface it instead of reporting success.
  if (std::fflush(file_) != 0) {
    return Status::IOError("flush failed for " + temp_path_);
  }
  std::FILE* f = file_;
  file_ = nullptr;
  if (std::fclose(f) != 0) {
    return Status::IOError("close failed for " + temp_path_);
  }
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    return Status::IOError("cannot rename " + temp_path_ + " to " + path_);
  }
  finished_ = true;
  buffer_memory_.Reset();
  return Status::OK();
}

ExternalRunReader::ExternalRunReader(const RowLayout& payload_layout,
                                     std::string path)
    : layout_(payload_layout), path_(std::move(path)) {}

ExternalRunReader::~ExternalRunReader() {
  DrainPrefetch();
  if (file_ != nullptr) std::fclose(file_);
}

void ExternalRunReader::DrainPrefetch() {
  if (prefetch_.valid()) (void)prefetch_.Wait();
}

Status ExternalRunReader::Open() {
  ROWSORT_ASSERT(file_ == nullptr);
  file_ = std::fopen(path_.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::IOError("cannot open " + path_ + " for reading");
  }
  // Check the magic before requiring a full header, so "not a run file at
  // all" is reported as InvalidArgument rather than a truncation IOError.
  uint8_t header[kHeaderSize];
  if (std::fread(header, 1, sizeof(uint64_t), file_) != sizeof(uint64_t)) {
    return Status::IOError(path_ + ": short header");
  }
  uint64_t magic = bit_util::LoadUnaligned<uint64_t>(header);
  if (magic != kRunFileMagic && magic != kRunFileMagicV3) {
    return Status::InvalidArgument(path_ + " is not a rowsort run file");
  }
  const uint32_t magic_version =
      magic == kRunFileMagicV3 ? kRunFileVersionV3 : kRunFileVersion;
  constexpr uint64_t kRest = kHeaderSize - sizeof(uint64_t);
  if (std::fread(header + sizeof(uint64_t), 1, kRest, file_) != kRest) {
    return Status::IOError(RunContext(path_, magic_version) +
                           ": short header");
  }
  uint32_t version = bit_util::LoadUnaligned<uint32_t>(header + 8);
  if (version != magic_version) {
    return Status::InvalidArgument(StringFormat(
        "%s: unsupported run file version %u (magic says v%u)", path_.c_str(),
        static_cast<unsigned>(version),
        static_cast<unsigned>(magic_version)));
  }
  version_ = version;
  uint32_t stored_crc =
      bit_util::LoadUnaligned<uint32_t>(header + kHeaderSize - 4);
  if (Crc32(0, header, kHeaderSize - 4) != stored_crc) {
    return Status::IOError(RunContext(path_, version_) +
                           ": header checksum mismatch");
  }
  count_ = bit_util::LoadUnaligned<uint64_t>(header + 16);
  key_row_width_ = bit_util::LoadUnaligned<uint64_t>(header + 24);
  uint64_t payload_width = bit_util::LoadUnaligned<uint64_t>(header + 32);
  if (payload_width != layout_.row_width()) {
    return Status::InvalidArgument(StringFormat(
        "%s: payload width mismatch: file has %llu, layout has %llu",
        RunContext(path_, version_).c_str(),
        static_cast<unsigned long long>(payload_width),
        static_cast<unsigned long long>(layout_.row_width())));
  }
  if (io_.worker != nullptr && io_.buffer_tracker != nullptr) {
    buffer_memory_.Reset(io_.buffer_tracker, 0);
  }
  // Readahead: get the first block's bytes moving before the first
  // ReadBlock call (the merge still has k-1 other cursors to open).
  StartPrefetch();
  return Status::OK();
}

void ExternalRunReader::StartPrefetch() {
  if (io_.worker == nullptr || prefetch_.valid()) return;
  if (rows_fetched_ >= count_) return;
  const uint64_t remaining = count_ - rows_fetched_;
  std::FILE* f = file_;
  std::vector<uint8_t>* raw = &prefetch_raw_;
  uint64_t* rows_out = &prefetch_rows_;
  const RowLayout* layout = &layout_;
  const std::string* path = &path_;
  const uint64_t krw = key_row_width_;
  const uint32_t version = version_;
  SpillIoOptions io = io_;
  prefetch_ = io_.worker->Submit(
      [f, raw, rows_out, layout, path, krw, remaining, version, io]() {
        if (version == kRunFileVersionV3) {
          return FetchRawBlockV3(f, *path, remaining, raw, rows_out, io);
        }
        return FetchRawBlock(f, *path, *layout, krw, remaining, raw, rows_out,
                             io);
      });
}

Status ExternalRunReader::ReadBlock(SortedRun* block) {
  ROWSORT_ASSERT(file_ != nullptr);
  block->count = 0;
  block->key_row_width = key_row_width_;
  block->key_rows.clear();
  block->ovcs.clear();
  block->payload = RowCollection(layout_);
  if (rows_read_ >= count_) return Status::OK();  // clean end of data
  // Block-granular cancellation, mirroring the writer side.
  if (io_.cancellation.IsCancelled()) {
    DrainPrefetch();
    return CancellationToken::StatusForCause(io_.cancellation.cause());
  }
  if (io_.worker != nullptr) {
    StartPrefetch();  // no-op unless an earlier error consumed the ticket
    const bool ready = prefetch_.done();
    Status s;
    if (ready) {
      s = prefetch_.Wait();
      if (s.ok() && io_.overlap_stats != nullptr) {
        io_.overlap_stats->blocks_prefetched.fetch_add(
            1, std::memory_order_relaxed);
      }
    } else {
      TraceSpan span(io_.trace, "spill.read_wait", "spill");
      Timer timer;
      s = prefetch_.Wait();
      if (io_.overlap_stats != nullptr) {
        io_.overlap_stats->io_wait_us.fetch_add(timer.ElapsedNanos() / 1000,
                                                std::memory_order_relaxed);
      }
    }
    ROWSORT_RETURN_NOT_OK(s);
    std::swap(raw_, prefetch_raw_);
    raw_rows_ = prefetch_rows_;
    rows_fetched_ += raw_rows_;
    buffer_memory_.Update(raw_.capacity() + prefetch_raw_.capacity());
    // The worker reads block k+1 while we decode block k below.
    StartPrefetch();
  } else {
    Timer timer;
    Status s = version_ == kRunFileVersionV3
                   ? FetchRawBlockV3(file_, path_, count_ - rows_fetched_,
                                     &raw_, &raw_rows_, io_)
                   : FetchRawBlock(file_, path_, layout_, key_row_width_,
                                   count_ - rows_fetched_, &raw_, &raw_rows_,
                                   io_);
    if (io_.overlap_stats != nullptr) {
      io_.overlap_stats->io_wait_us.fetch_add(timer.ElapsedNanos() / 1000,
                                              std::memory_order_relaxed);
    }
    ROWSORT_RETURN_NOT_OK(s);
    rows_fetched_ += raw_rows_;
  }
  if (version_ == kRunFileVersionV3) {
    ROWSORT_RETURN_NOT_OK(DecodeRawBlockV3(layout_, path_, raw_,
                                           key_row_width_, block, io_.trace,
                                           io_.compression_stats));
  } else {
    ROWSORT_RETURN_NOT_OK(DecodeRawBlock(layout_, path_, raw_,
                                         key_row_width_, block, io_.trace));
  }
  rows_read_ += block->count;
  return Status::OK();
}

Status WriteRunToFile(const SortedRun& run, const RowLayout& payload_layout,
                      const std::string& path, const SpillIoOptions& options) {
  ExternalRunWriter writer(payload_layout, path);
  writer.SetIoOptions(options);
  ROWSORT_RETURN_NOT_OK(writer.Open(run.key_row_width));
  for (uint64_t begin = 0; begin < run.count;
       begin += kDefaultSpillBlockRows) {
    uint64_t end = std::min(run.count, begin + kDefaultSpillBlockRows);
    ROWSORT_RETURN_NOT_OK(writer.WriteSlice(run, begin, end));
  }
  return writer.Finish();
}

StatusOr<SortedRun> ReadRunFromFile(const RowLayout& payload_layout,
                                    const std::string& path,
                                    const SpillIoOptions& options) {
  ExternalRunReader reader(payload_layout, path);
  reader.SetIoOptions(options);
  ROWSORT_RETURN_NOT_OK(reader.Open());
  SortedRun run;
  run.count = reader.row_count();
  run.key_row_width = reader.key_row_width();
  run.key_rows.resize(run.count * run.key_row_width);
  run.payload = RowCollection(payload_layout);

  const uint64_t prw = payload_layout.row_width();
  uint64_t filled = 0;
  SortedRun block;
  while (true) {
    ROWSORT_RETURN_NOT_OK(reader.ReadBlock(&block));
    if (block.count == 0) break;
    std::memcpy(run.key_rows.data() + filled * run.key_row_width,
                block.key_rows.data(), block.count * run.key_row_width);
    uint64_t first = run.payload.AppendUninitialized(block.count);
    std::memcpy(run.payload.GetRow(first), block.payload.data(),
                block.count * prw);
    // Adopting the block heap keeps the copied string_t pointers valid.
    run.payload.AdoptHeap(std::move(block.payload));
    filled += block.count;
  }
  if (filled != run.count) {
    return Status::IOError(path + ": truncated run file");
  }
  return run;
}

}  // namespace rowsort
