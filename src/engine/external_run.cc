// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "engine/external_run.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/bit_util.h"
#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "types/string_t.h"

namespace rowsort {

namespace {

constexpr uint64_t kRunFileMagic = 0x524F57534F525432ull;  // "ROWSORT2"
constexpr uint32_t kRunFileVersion = 2;
constexpr uint32_t kBlockMagic = 0x424C4B32u;  // "BLK2"
constexpr uint64_t kHeaderSize = 8 + 4 + 4 + 8 + 8 + 8 + 4;
/// Upper bound on a single string payload; a larger length can only come
/// from corruption and must not drive an allocation.
constexpr uint32_t kMaxStringLength = 1u << 30;

/// Backoff budget for one stuck spill operation: 5 zero-progress attempts,
/// 100us..20ms exponential — a few tens of milliseconds before a hiccup is
/// declared permanent.
constexpr RetryPolicy kSpillRetryPolicy{};

/// True for errno values a retry can plausibly outlast. EINTR/EAGAIN are
/// the classic resumable interruptions; 0 covers libc short writes that set
/// no errno. Everything else (ENOSPC, EIO, EBADF, ...) still gets the
/// bounded retry budget — "ENOSPC after retries" is the permanent verdict,
/// not the first ENOSPC — but is reported by name when the budget runs out.
const char* ErrnoLabel(int err) {
  switch (err) {
    case 0: return "short transfer";
    case EINTR: return "EINTR";
    case EAGAIN: return "EAGAIN";
    case ENOSPC: return "ENOSPC";
    case EIO: return "EIO";
    default: return "I/O error";
  }
}

/// Writes \p size bytes, resuming short writes where they stopped. A write
/// that advances resets the retry budget; one that is stuck backs off
/// exponentially and eventually fails with a permanent IOError.
Status WriteAll(std::FILE* f, const void* data, uint64_t size,
                const SpillIoOptions& io) {
  if (ROWSORT_FAILPOINT("external_run_write")) {
    return Status::IOError("injected spill write failure (failpoint)");
  }
  if (size == 0) return Status::OK();
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t done = 0;
  RetryState retry(kSpillRetryPolicy, io.retry_stats, &io.cancellation);
  while (done < size) {
    uint64_t want = size - done;
    // Transient failpoint: the stream accepts only part of the buffer, the
    // way an interrupted or pressured write(2) would.
    if (want > 1 && ROWSORT_FAILPOINT("external_run_write_short")) {
      want = (want + 1) / 2;
    }
    errno = 0;
    size_t n = std::fwrite(bytes + done, 1, want, f);
    done += n;
    if (done == size) break;
    int err = errno;
    std::clearerr(f);  // a stream error flag would fail every later call
    ROWSORT_RETURN_NOT_OK(retry.OnTransientError(
        Status::IOError(StringFormat("short write (%s)", ErrnoLabel(err))),
        /*made_progress=*/n > 0));
  }
  return Status::OK();
}

/// Reads \p size bytes, resuming short reads. End-of-file is the one
/// non-retryable shortfall: the bytes are not there and waiting will not
/// materialize them (truncation => permanent IOError).
Status ReadAll(std::FILE* f, void* data, uint64_t size,
               const SpillIoOptions& io) {
  if (size == 0) return Status::OK();
  uint8_t* bytes = static_cast<uint8_t*>(data);
  uint64_t done = 0;
  RetryState retry(kSpillRetryPolicy, io.retry_stats, &io.cancellation);
  while (done < size) {
    uint64_t want = size - done;
    // Transient failpoint: the read comes back short, as if interrupted by
    // a signal mid-transfer.
    if (want > 1 && ROWSORT_FAILPOINT("external_run_read_eintr")) {
      want = (want + 1) / 2;
    }
    errno = 0;
    size_t n = std::fread(bytes + done, 1, want, f);
    done += n;
    if (done == size) break;
    if (n < want && std::feof(f)) {
      return Status::IOError("short read");
    }
    int err = errno;
    std::clearerr(f);
    ROWSORT_RETURN_NOT_OK(retry.OnTransientError(
        Status::IOError(StringFormat("short read (%s)", ErrnoLabel(err))),
        /*made_progress=*/n > 0));
  }
  return Status::OK();
}

/// Reads \p size bytes and folds them into \p crc.
Status ReadAllCrc(std::FILE* f, void* data, uint64_t size, uint32_t* crc,
                  const SpillIoOptions& io) {
  ROWSORT_RETURN_NOT_OK(ReadAll(f, data, size, io));
  *crc = Crc32(*crc, data, size);
  return Status::OK();
}

template <typename T>
Status ReadScalarCrc(std::FILE* f, T* value, uint32_t* crc,
                     const SpillIoOptions& io) {
  return ReadAllCrc(f, value, sizeof(T), crc, io);
}

/// Serialization buffer that accumulates scalars and tracks their CRC so
/// header and block framing are written (and checksummed) identically.
struct ScalarBuffer {
  uint8_t bytes[64];
  uint64_t size = 0;

  template <typename T>
  void Add(T value) {
    ROWSORT_DASSERT(size + sizeof(T) <= sizeof(bytes));
    std::memcpy(bytes + size, &value, sizeof(T));
    size += sizeof(T);
  }
  uint32_t Crc(uint32_t crc = 0) const { return Crc32(crc, bytes, size); }
};

/// Columns of the layout that may hold non-inlined strings.
std::vector<uint64_t> VarcharColumns(const RowLayout& layout) {
  std::vector<uint64_t> cols;
  for (uint64_t c = 0; c < layout.ColumnCount(); ++c) {
    if (layout.types()[c].id() == TypeId::kVarchar) cols.push_back(c);
  }
  return cols;
}

/// Builds the 44-byte file header (count patched in by Finish()).
ScalarBuffer BuildHeader(uint64_t count, uint64_t key_row_width,
                         uint64_t payload_row_width) {
  ScalarBuffer buf;
  buf.Add<uint64_t>(kRunFileMagic);
  buf.Add<uint32_t>(kRunFileVersion);
  buf.Add<uint32_t>(0);  // flags
  buf.Add<uint64_t>(count);
  buf.Add<uint64_t>(key_row_width);
  buf.Add<uint64_t>(payload_row_width);
  buf.Add<uint32_t>(buf.Crc());
  ROWSORT_DASSERT(buf.size == kHeaderSize);
  return buf;
}

}  // namespace

ExternalRunWriter::ExternalRunWriter(const RowLayout& payload_layout,
                                     std::string path)
    : layout_(payload_layout), path_(std::move(path)),
      temp_path_(path_ + ".tmp") {}

ExternalRunWriter::~ExternalRunWriter() { Abandon(); }

void ExternalRunWriter::Abandon() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (!finished_) {
    std::remove(temp_path_.c_str());
  }
}

Status ExternalRunWriter::Open(uint64_t key_row_width) {
  ROWSORT_ASSERT(file_ == nullptr && !finished_);
  if (ROWSORT_FAILPOINT("external_run_open")) {
    return Status::IOError("injected spill open failure (failpoint)");
  }
  file_ = std::fopen(temp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IOError("cannot open " + temp_path_ + " for writing");
  }
  key_row_width_ = key_row_width;
  // Placeholder header; Finish() seeks back and patches the row count.
  ScalarBuffer header = BuildHeader(0, key_row_width_, layout_.row_width());
  return WriteAll(file_, header.bytes, header.size, io_);
}

Status ExternalRunWriter::WriteSlice(const SortedRun& run, uint64_t begin,
                                     uint64_t end) {
  ROWSORT_ASSERT(file_ != nullptr && !finished_);
  ROWSORT_ASSERT(begin <= end && end <= run.count);
  ROWSORT_ASSERT(run.key_row_width == key_row_width_);
  if (begin == end) return Status::OK();
  // Block-granular cancellation: a multi-gigabyte spill stops between
  // blocks, never mid-framing (the temp file is abandoned whole).
  if (io_.cancellation.IsCancelled()) {
    return CancellationToken::StatusForCause(io_.cancellation.cause());
  }
  TraceSpan span(io_.trace, "spill.write_block", "spill");
  Timer timer;
  const long block_start = std::ftell(file_);
  const uint64_t rows = end - begin;
  const uint64_t krw = key_row_width_;
  const uint64_t prw = layout_.row_width();
  const uint8_t* keys = run.key_rows.data() + begin * krw;
  const uint8_t* payload = run.payload.GetRow(begin);

  // Collect the block's non-inlined strings first: the section length is
  // part of the framing.
  struct StringRef {
    uint32_t row;
    uint32_t col;
    string_t value;
  };
  std::vector<StringRef> strings;
  for (uint64_t col : VarcharColumns(layout_)) {
    uint64_t offset = layout_.ColumnOffset(col);
    for (uint64_t row = begin; row < end; ++row) {
      const uint8_t* row_ptr = run.payload.GetRow(row);
      if (!RowLayout::IsValid(row_ptr, col)) continue;
      string_t value = bit_util::LoadUnaligned<string_t>(row_ptr + offset);
      if (value.IsInlined()) continue;
      strings.push_back({static_cast<uint32_t>(row - begin),
                         static_cast<uint32_t>(col), value});
    }
  }

  ScalarBuffer framing;
  framing.Add<uint32_t>(kBlockMagic);
  framing.Add<uint64_t>(rows);
  uint32_t crc = framing.Crc();
  ROWSORT_RETURN_NOT_OK(WriteAll(file_, framing.bytes, framing.size, io_));
  ROWSORT_RETURN_NOT_OK(WriteAll(file_, keys, rows * krw, io_));
  crc = Crc32(crc, keys, rows * krw);
  ROWSORT_RETURN_NOT_OK(WriteAll(file_, payload, rows * prw, io_));
  crc = Crc32(crc, payload, rows * prw);

  ScalarBuffer nstrings;
  nstrings.Add<uint64_t>(strings.size());
  crc = nstrings.Crc(crc);
  ROWSORT_RETURN_NOT_OK(WriteAll(file_, nstrings.bytes, nstrings.size, io_));
  for (const StringRef& s : strings) {
    ScalarBuffer entry;
    entry.Add<uint32_t>(s.row);
    entry.Add<uint32_t>(s.col);
    entry.Add<uint32_t>(s.value.size());
    crc = entry.Crc(crc);
    ROWSORT_RETURN_NOT_OK(WriteAll(file_, entry.bytes, entry.size, io_));
    ROWSORT_RETURN_NOT_OK(WriteAll(file_, s.value.data(), s.value.size(), io_));
    crc = Crc32(crc, s.value.data(), s.value.size());
  }
  ROWSORT_RETURN_NOT_OK(WriteAll(file_, &crc, sizeof(crc), io_));
  rows_written_ += rows;
  if (io_.io_profile != nullptr) {
    const long block_end = std::ftell(file_);
    const uint64_t bytes = (block_start >= 0 && block_end >= block_start)
                               ? static_cast<uint64_t>(block_end - block_start)
                               : 0;
    io_.io_profile->RecordWrite(timer.ElapsedNanos(), bytes, rows);
  }
  return Status::OK();
}

Status ExternalRunWriter::Finish() {
  ROWSORT_ASSERT(file_ != nullptr && !finished_);
  if (ROWSORT_FAILPOINT("external_run_finish")) {
    return Status::IOError("injected spill finish failure (failpoint)");
  }
  // Patch the real row count into the header.
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::IOError("seek failed on " + temp_path_);
  }
  ScalarBuffer header =
      BuildHeader(rows_written_, key_row_width_, layout_.row_width());
  ROWSORT_RETURN_NOT_OK(WriteAll(file_, header.bytes, header.size, io_));
  // A failed flush or close after buffered writes means the data may not be
  // on disk; surface it instead of reporting success.
  if (std::fflush(file_) != 0) {
    return Status::IOError("flush failed for " + temp_path_);
  }
  std::FILE* f = file_;
  file_ = nullptr;
  if (std::fclose(f) != 0) {
    return Status::IOError("close failed for " + temp_path_);
  }
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    return Status::IOError("cannot rename " + temp_path_ + " to " + path_);
  }
  finished_ = true;
  return Status::OK();
}

ExternalRunReader::ExternalRunReader(const RowLayout& payload_layout,
                                     std::string path)
    : layout_(payload_layout), path_(std::move(path)) {}

ExternalRunReader::~ExternalRunReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status ExternalRunReader::Open() {
  ROWSORT_ASSERT(file_ == nullptr);
  file_ = std::fopen(path_.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::IOError("cannot open " + path_ + " for reading");
  }
  // Check the magic before requiring a full header, so "not a run file at
  // all" is reported as InvalidArgument rather than a truncation IOError.
  uint8_t header[kHeaderSize];
  if (std::fread(header, 1, sizeof(uint64_t), file_) != sizeof(uint64_t)) {
    return Status::IOError(path_ + ": short header");
  }
  uint64_t magic = bit_util::LoadUnaligned<uint64_t>(header);
  if (magic != kRunFileMagic) {
    return Status::InvalidArgument(path_ + " is not a rowsort run file");
  }
  constexpr uint64_t kRest = kHeaderSize - sizeof(uint64_t);
  if (std::fread(header + sizeof(uint64_t), 1, kRest, file_) != kRest) {
    return Status::IOError(path_ + ": short header");
  }
  uint32_t version = bit_util::LoadUnaligned<uint32_t>(header + 8);
  if (version != kRunFileVersion) {
    return Status::InvalidArgument(
        StringFormat("%s: unsupported run file version %u", path_.c_str(),
                     static_cast<unsigned>(version)));
  }
  uint32_t stored_crc =
      bit_util::LoadUnaligned<uint32_t>(header + kHeaderSize - 4);
  if (Crc32(0, header, kHeaderSize - 4) != stored_crc) {
    return Status::IOError(path_ + ": header checksum mismatch");
  }
  count_ = bit_util::LoadUnaligned<uint64_t>(header + 16);
  key_row_width_ = bit_util::LoadUnaligned<uint64_t>(header + 24);
  uint64_t payload_width = bit_util::LoadUnaligned<uint64_t>(header + 32);
  if (payload_width != layout_.row_width()) {
    return Status::InvalidArgument(StringFormat(
        "payload width mismatch: file has %llu, layout has %llu",
        static_cast<unsigned long long>(payload_width),
        static_cast<unsigned long long>(layout_.row_width())));
  }
  return Status::OK();
}

Status ExternalRunReader::ReadBlock(SortedRun* block) {
  ROWSORT_ASSERT(file_ != nullptr);
  block->count = 0;
  block->key_row_width = key_row_width_;
  block->key_rows.clear();
  block->ovcs.clear();
  block->payload = RowCollection(layout_);
  if (rows_read_ >= count_) return Status::OK();  // clean end of data
  // Block-granular cancellation, mirroring the writer side.
  if (io_.cancellation.IsCancelled()) {
    return CancellationToken::StatusForCause(io_.cancellation.cause());
  }
  TraceSpan span(io_.trace, "spill.read_block", "spill");
  Timer timer;
  const long block_start = std::ftell(file_);

  uint32_t crc = 0;
  uint32_t magic = 0;
  uint64_t rows = 0;
  if (std::fread(&magic, 1, sizeof(magic), file_) != sizeof(magic)) {
    return Status::IOError(path_ + ": truncated (missing block)");
  }
  crc = Crc32(crc, &magic, sizeof(magic));
  if (magic != kBlockMagic) {
    return Status::IOError(path_ + ": corrupt block header");
  }
  ROWSORT_RETURN_NOT_OK(ReadScalarCrc(file_, &rows, &crc, io_));
  if (rows == 0 || rows > count_ - rows_read_) {
    return Status::IOError(path_ + ": corrupt block row count");
  }

  const uint64_t krw = key_row_width_;
  const uint64_t prw = layout_.row_width();
  block->key_rows.resize(rows * krw);
  ROWSORT_RETURN_NOT_OK(
      ReadAllCrc(file_, block->key_rows.data(), rows * krw, &crc, io_));
  block->payload.AppendUninitialized(rows);
  ROWSORT_RETURN_NOT_OK(
      ReadAllCrc(file_, block->payload.data(), rows * prw, &crc, io_));

  // Rebuild non-inlined strings into the block's own heap.
  uint64_t nstrings = 0;
  ROWSORT_RETURN_NOT_OK(ReadScalarCrc(file_, &nstrings, &crc, io_));
  if (nstrings > rows * layout_.ColumnCount()) {
    return Status::IOError(path_ + ": corrupt string section length");
  }
  for (uint64_t i = 0; i < nstrings; ++i) {
    uint32_t row = 0, col = 0, len = 0;
    ROWSORT_RETURN_NOT_OK(ReadScalarCrc(file_, &row, &crc, io_));
    ROWSORT_RETURN_NOT_OK(ReadScalarCrc(file_, &col, &crc, io_));
    ROWSORT_RETURN_NOT_OK(ReadScalarCrc(file_, &len, &crc, io_));
    if (row >= rows || col >= layout_.ColumnCount() ||
        layout_.types()[col].id() != TypeId::kVarchar ||
        len > kMaxStringLength) {
      return Status::IOError(path_ + ": corrupt string section");
    }
    char* dest = block->payload.string_heap().Allocate(len);
    ROWSORT_RETURN_NOT_OK(ReadAllCrc(file_, dest, len, &crc, io_));
    string_t value(dest, len);
    bit_util::StoreUnaligned(
        block->payload.GetRow(row) + layout_.ColumnOffset(col), value);
  }

  uint32_t stored_crc = 0;
  ROWSORT_RETURN_NOT_OK(ReadAll(file_, &stored_crc, sizeof(stored_crc), io_));
  if (stored_crc != crc) {
    return Status::IOError(path_ + ": block checksum mismatch");
  }
  block->count = rows;
  rows_read_ += rows;
  if (io_.io_profile != nullptr) {
    const long block_end = std::ftell(file_);
    const uint64_t bytes = (block_start >= 0 && block_end >= block_start)
                               ? static_cast<uint64_t>(block_end - block_start)
                               : 0;
    io_.io_profile->RecordRead(timer.ElapsedNanos(), bytes, rows);
  }
  return Status::OK();
}

Status WriteRunToFile(const SortedRun& run, const RowLayout& payload_layout,
                      const std::string& path, const SpillIoOptions& options) {
  ExternalRunWriter writer(payload_layout, path);
  writer.SetIoOptions(options);
  ROWSORT_RETURN_NOT_OK(writer.Open(run.key_row_width));
  for (uint64_t begin = 0; begin < run.count;
       begin += kDefaultSpillBlockRows) {
    uint64_t end = std::min(run.count, begin + kDefaultSpillBlockRows);
    ROWSORT_RETURN_NOT_OK(writer.WriteSlice(run, begin, end));
  }
  return writer.Finish();
}

StatusOr<SortedRun> ReadRunFromFile(const RowLayout& payload_layout,
                                    const std::string& path,
                                    const SpillIoOptions& options) {
  ExternalRunReader reader(payload_layout, path);
  reader.SetIoOptions(options);
  ROWSORT_RETURN_NOT_OK(reader.Open());
  SortedRun run;
  run.count = reader.row_count();
  run.key_row_width = reader.key_row_width();
  run.key_rows.resize(run.count * run.key_row_width);
  run.payload = RowCollection(payload_layout);

  const uint64_t prw = payload_layout.row_width();
  uint64_t filled = 0;
  SortedRun block;
  while (true) {
    ROWSORT_RETURN_NOT_OK(reader.ReadBlock(&block));
    if (block.count == 0) break;
    std::memcpy(run.key_rows.data() + filled * run.key_row_width,
                block.key_rows.data(), block.count * run.key_row_width);
    uint64_t first = run.payload.AppendUninitialized(block.count);
    std::memcpy(run.payload.GetRow(first), block.payload.data(),
                block.count * prw);
    // Adopting the block heap keeps the copied string_t pointers valid.
    run.payload.AdoptHeap(std::move(block.payload));
    filled += block.count;
  }
  if (filled != run.count) {
    return Status::IOError(path + ": truncated run file");
  }
  return run;
}

}  // namespace rowsort
