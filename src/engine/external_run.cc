// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "engine/external_run.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/bit_util.h"
#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "types/string_t.h"

namespace rowsort {

namespace {

constexpr uint64_t kRunFileMagic = 0x524F57534F525432ull;  // "ROWSORT2"
constexpr uint32_t kRunFileVersion = 2;
constexpr uint32_t kBlockMagic = 0x424C4B32u;  // "BLK2"
constexpr uint64_t kHeaderSize = 8 + 4 + 4 + 8 + 8 + 8 + 4;
/// Upper bound on a single string payload; a larger length can only come
/// from corruption and must not drive an allocation.
constexpr uint32_t kMaxStringLength = 1u << 30;

/// Backoff budget for one stuck spill operation: 5 zero-progress attempts,
/// 100us..20ms exponential — a few tens of milliseconds before a hiccup is
/// declared permanent.
constexpr RetryPolicy kSpillRetryPolicy{};

/// True for errno values a retry can plausibly outlast. EINTR/EAGAIN are
/// the classic resumable interruptions; 0 covers libc short writes that set
/// no errno. Everything else (ENOSPC, EIO, EBADF, ...) still gets the
/// bounded retry budget — "ENOSPC after retries" is the permanent verdict,
/// not the first ENOSPC — but is reported by name when the budget runs out.
const char* ErrnoLabel(int err) {
  switch (err) {
    case 0: return "short transfer";
    case EINTR: return "EINTR";
    case EAGAIN: return "EAGAIN";
    case ENOSPC: return "ENOSPC";
    case EIO: return "EIO";
    default: return "I/O error";
  }
}

/// Writes \p size bytes, resuming short writes where they stopped. A write
/// that advances resets the retry budget; one that is stuck backs off
/// exponentially and eventually fails with a permanent IOError. Runs on the
/// spill I/O worker when write-behind is enabled, so the failpoints and the
/// retry machinery fire on the background thread.
Status WriteAll(std::FILE* f, const void* data, uint64_t size,
                const SpillIoOptions& io) {
  if (ROWSORT_FAILPOINT("external_run_write")) {
    return Status::IOError("injected spill write failure (failpoint)");
  }
  if (size == 0) return Status::OK();
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t done = 0;
  RetryState retry(kSpillRetryPolicy, io.retry_stats, &io.cancellation);
  while (done < size) {
    uint64_t want = size - done;
    // Transient failpoint: the stream accepts only part of the buffer, the
    // way an interrupted or pressured write(2) would.
    if (want > 1 && ROWSORT_FAILPOINT("external_run_write_short")) {
      want = (want + 1) / 2;
    }
    errno = 0;
    size_t n = std::fwrite(bytes + done, 1, want, f);
    done += n;
    if (done == size) break;
    int err = errno;
    std::clearerr(f);  // a stream error flag would fail every later call
    ROWSORT_RETURN_NOT_OK(retry.OnTransientError(
        Status::IOError(StringFormat("short write (%s)", ErrnoLabel(err))),
        /*made_progress=*/n > 0));
  }
  return Status::OK();
}

/// Reads \p size bytes, resuming short reads. End-of-file is the one
/// non-retryable shortfall: the bytes are not there and waiting will not
/// materialize them (truncation => permanent IOError).
Status ReadAll(std::FILE* f, void* data, uint64_t size,
               const SpillIoOptions& io) {
  if (size == 0) return Status::OK();
  uint8_t* bytes = static_cast<uint8_t*>(data);
  uint64_t done = 0;
  RetryState retry(kSpillRetryPolicy, io.retry_stats, &io.cancellation);
  while (done < size) {
    uint64_t want = size - done;
    // Transient failpoint: the read comes back short, as if interrupted by
    // a signal mid-transfer.
    if (want > 1 && ROWSORT_FAILPOINT("external_run_read_eintr")) {
      want = (want + 1) / 2;
    }
    errno = 0;
    size_t n = std::fread(bytes + done, 1, want, f);
    done += n;
    if (done == size) break;
    if (n < want && std::feof(f)) {
      return Status::IOError("short read");
    }
    int err = errno;
    std::clearerr(f);
    ROWSORT_RETURN_NOT_OK(retry.OnTransientError(
        Status::IOError(StringFormat("short read (%s)", ErrnoLabel(err))),
        /*made_progress=*/n > 0));
  }
  return Status::OK();
}

/// Serialization buffer that accumulates scalars and tracks their CRC so
/// header and block framing are written (and checksummed) identically.
struct ScalarBuffer {
  uint8_t bytes[64];
  uint64_t size = 0;

  template <typename T>
  void Add(T value) {
    ROWSORT_DASSERT(size + sizeof(T) <= sizeof(bytes));
    std::memcpy(bytes + size, &value, sizeof(T));
    size += sizeof(T);
  }
  uint32_t Crc(uint32_t crc = 0) const { return Crc32(crc, bytes, size); }
};

/// Columns of the layout that may hold non-inlined strings.
std::vector<uint64_t> VarcharColumns(const RowLayout& layout) {
  std::vector<uint64_t> cols;
  for (uint64_t c = 0; c < layout.ColumnCount(); ++c) {
    if (layout.types()[c].id() == TypeId::kVarchar) cols.push_back(c);
  }
  return cols;
}

/// Builds the 44-byte file header (count patched in by Finish()).
ScalarBuffer BuildHeader(uint64_t count, uint64_t key_row_width,
                         uint64_t payload_row_width) {
  ScalarBuffer buf;
  buf.Add<uint64_t>(kRunFileMagic);
  buf.Add<uint32_t>(kRunFileVersion);
  buf.Add<uint32_t>(0);  // flags
  buf.Add<uint64_t>(count);
  buf.Add<uint64_t>(key_row_width);
  buf.Add<uint64_t>(payload_row_width);
  buf.Add<uint32_t>(buf.Crc());
  ROWSORT_DASSERT(buf.size == kHeaderSize);
  return buf;
}

void AppendBytes(std::vector<uint8_t>* out, const void* data, uint64_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  out->insert(out->end(), bytes, bytes + size);
}

/// Serializes rows [begin, end) of \p run into \p out: block framing, key
/// rows, payload rows, string section, trailing CRC32 over everything
/// before it. Byte-for-byte the block format that the synchronous writer
/// has always produced — encoding is separated from writing so the write
/// can happen behind the sort thread's back.
void EncodeSlice(const RowLayout& layout, const SortedRun& run, uint64_t begin,
                 uint64_t end, std::vector<uint8_t>* out) {
  out->clear();
  const uint64_t rows = end - begin;
  const uint64_t krw = run.key_row_width;
  const uint64_t prw = layout.row_width();

  // Collect the block's non-inlined strings first: the section length is
  // part of the framing.
  struct StringRef {
    uint32_t row;
    uint32_t col;
    string_t value;
  };
  std::vector<StringRef> strings;
  for (uint64_t col : VarcharColumns(layout)) {
    uint64_t offset = layout.ColumnOffset(col);
    for (uint64_t row = begin; row < end; ++row) {
      const uint8_t* row_ptr = run.payload.GetRow(row);
      if (!RowLayout::IsValid(row_ptr, col)) continue;
      string_t value = bit_util::LoadUnaligned<string_t>(row_ptr + offset);
      if (value.IsInlined()) continue;
      strings.push_back({static_cast<uint32_t>(row - begin),
                         static_cast<uint32_t>(col), value});
    }
  }

  ScalarBuffer framing;
  framing.Add<uint32_t>(kBlockMagic);
  framing.Add<uint64_t>(rows);
  AppendBytes(out, framing.bytes, framing.size);
  AppendBytes(out, run.key_rows.data() + begin * krw, rows * krw);
  AppendBytes(out, run.payload.GetRow(begin), rows * prw);

  ScalarBuffer nstrings;
  nstrings.Add<uint64_t>(strings.size());
  AppendBytes(out, nstrings.bytes, nstrings.size);
  for (const StringRef& s : strings) {
    ScalarBuffer entry;
    entry.Add<uint32_t>(s.row);
    entry.Add<uint32_t>(s.col);
    entry.Add<uint32_t>(s.value.size());
    AppendBytes(out, entry.bytes, entry.size);
    AppendBytes(out, s.value.data(), s.value.size());
  }
  uint32_t crc = Crc32(0, out->data(), out->size());
  AppendBytes(out, &crc, sizeof(crc));
}

/// Reads the raw bytes of the next block (framing included, trailing CRC
/// included) from \p f into \p raw. Framing fields are validated as they
/// are read — a corrupt length must not drive a huge allocation — but the
/// CRC and string placement are checked later by DecodeRawBlock, so this
/// function can run on the I/O worker while the compute thread decodes the
/// previous block. \p remaining_rows bounds the plausible row count.
Status FetchRawBlock(std::FILE* f, const std::string& path,
                     const RowLayout& layout, uint64_t key_row_width,
                     uint64_t remaining_rows, std::vector<uint8_t>* raw,
                     uint64_t* rows_out, const SpillIoOptions& io) {
  raw->clear();
  *rows_out = 0;
  if (io.cancellation.IsCancelled()) {
    return CancellationToken::StatusForCause(io.cancellation.cause());
  }
  TraceSpan span(io.trace, "spill.read_block", "spill");
  Timer timer;
  uint64_t pos = 0;
  auto read_into = [&](uint64_t n) -> Status {
    raw->resize(pos + n);
    Status s = ReadAll(f, raw->data() + pos, n, io);
    if (s.ok()) pos += n;
    return s;
  };

  raw->resize(sizeof(uint32_t));
  if (std::fread(raw->data(), 1, sizeof(uint32_t), f) != sizeof(uint32_t)) {
    std::clearerr(f);
    return Status::IOError(path + ": truncated (missing block)");
  }
  pos = sizeof(uint32_t);
  if (bit_util::LoadUnaligned<uint32_t>(raw->data()) != kBlockMagic) {
    return Status::IOError(path + ": corrupt block header");
  }
  ROWSORT_RETURN_NOT_OK(read_into(sizeof(uint64_t)));
  const uint64_t rows = bit_util::LoadUnaligned<uint64_t>(raw->data() + 4);
  if (rows == 0 || rows > remaining_rows) {
    return Status::IOError(path + ": corrupt block row count");
  }
  ROWSORT_RETURN_NOT_OK(
      read_into(rows * (key_row_width + layout.row_width())));
  ROWSORT_RETURN_NOT_OK(read_into(sizeof(uint64_t)));
  const uint64_t nstrings =
      bit_util::LoadUnaligned<uint64_t>(raw->data() + pos - sizeof(uint64_t));
  if (nstrings > rows * layout.ColumnCount()) {
    return Status::IOError(path + ": corrupt string section length");
  }
  for (uint64_t i = 0; i < nstrings; ++i) {
    ROWSORT_RETURN_NOT_OK(read_into(3 * sizeof(uint32_t)));
    const uint32_t len =
        bit_util::LoadUnaligned<uint32_t>(raw->data() + pos - sizeof(uint32_t));
    if (len > kMaxStringLength) {
      return Status::IOError(path + ": corrupt string section");
    }
    ROWSORT_RETURN_NOT_OK(read_into(len));
  }
  ROWSORT_RETURN_NOT_OK(read_into(sizeof(uint32_t)));  // stored block CRC
  *rows_out = rows;
  if (io.io_profile != nullptr) {
    io.io_profile->RecordRead(timer.ElapsedNanos(), pos, rows);
  }
  return Status::OK();
}

/// Bounds-checked cursor over a fetched raw block.
struct RawCursor {
  const uint8_t* data;
  uint64_t size;
  uint64_t pos = 0;

  const uint8_t* Take(uint64_t n) {
    if (pos + n > size) return nullptr;
    const uint8_t* p = data + pos;
    pos += n;
    return p;
  }
  template <typename T>
  bool TakeScalar(T* out) {
    const uint8_t* p = Take(sizeof(T));
    if (p == nullptr) return false;
    *out = bit_util::LoadUnaligned<T>(p);
    return true;
  }
};

/// Decodes a raw block fetched by FetchRawBlock into \p block: verifies the
/// trailing CRC over the whole buffer, then rebuilds rows and re-pointers
/// non-inlined strings into the block's own heap. Pure CPU — this is the
/// half that overlaps the next block's background read.
Status DecodeRawBlock(const RowLayout& layout, const std::string& path,
                      const std::vector<uint8_t>& raw, uint64_t key_row_width,
                      SortedRun* block, Tracer* trace) {
  TraceSpan span(trace, "spill.decode_block", "spill");
  if (raw.size() < sizeof(uint32_t) + sizeof(uint64_t) + sizeof(uint64_t) +
                       sizeof(uint32_t)) {
    return Status::IOError(path + ": truncated block");
  }
  const uint32_t stored_crc =
      bit_util::LoadUnaligned<uint32_t>(raw.data() + raw.size() - 4);
  if (Crc32(0, raw.data(), raw.size() - 4) != stored_crc) {
    return Status::IOError(path + ": block checksum mismatch");
  }

  RawCursor cur{raw.data(), raw.size() - 4};
  uint32_t magic = 0;
  uint64_t rows = 0;
  if (!cur.TakeScalar(&magic) || !cur.TakeScalar(&rows) ||
      magic != kBlockMagic || rows == 0) {
    return Status::IOError(path + ": corrupt block header");
  }
  const uint64_t krw = key_row_width;
  const uint64_t prw = layout.row_width();
  const uint8_t* keys = cur.Take(rows * krw);
  const uint8_t* payload = cur.Take(rows * prw);
  if (keys == nullptr || payload == nullptr) {
    return Status::IOError(path + ": truncated block");
  }
  block->key_rows.resize(rows * krw);
  std::memcpy(block->key_rows.data(), keys, rows * krw);
  block->payload.AppendUninitialized(rows);
  std::memcpy(block->payload.data(), payload, rows * prw);

  uint64_t nstrings = 0;
  if (!cur.TakeScalar(&nstrings) ||
      nstrings > rows * layout.ColumnCount()) {
    return Status::IOError(path + ": corrupt string section length");
  }
  for (uint64_t i = 0; i < nstrings; ++i) {
    uint32_t row = 0, col = 0, len = 0;
    if (!cur.TakeScalar(&row) || !cur.TakeScalar(&col) ||
        !cur.TakeScalar(&len)) {
      return Status::IOError(path + ": truncated block");
    }
    if (row >= rows || col >= layout.ColumnCount() ||
        layout.types()[col].id() != TypeId::kVarchar ||
        len > kMaxStringLength) {
      return Status::IOError(path + ": corrupt string section");
    }
    const uint8_t* bytes = cur.Take(len);
    if (bytes == nullptr) {
      return Status::IOError(path + ": truncated block");
    }
    char* dest = block->payload.string_heap().Allocate(len);
    std::memcpy(dest, bytes, len);
    string_t value(dest, len);
    bit_util::StoreUnaligned(
        block->payload.GetRow(row) + layout.ColumnOffset(col), value);
  }
  if (cur.pos != cur.size) {
    return Status::IOError(path + ": corrupt block length");
  }
  block->count = rows;
  block->key_row_width = key_row_width;
  return Status::OK();
}

}  // namespace

ExternalRunWriter::ExternalRunWriter(const RowLayout& payload_layout,
                                     std::string path)
    : layout_(payload_layout), path_(std::move(path)),
      temp_path_(path_ + ".tmp") {}

ExternalRunWriter::~ExternalRunWriter() { Abandon(); }

void ExternalRunWriter::Abandon() {
  // An in-flight background block still references file_ and inflight_buf_;
  // never close the file under it.
  if (inflight_.valid()) (void)inflight_.Wait();
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (!finished_) {
    std::remove(temp_path_.c_str());
  }
  buffer_memory_.Reset();
}

Status ExternalRunWriter::Open(uint64_t key_row_width) {
  ROWSORT_ASSERT(file_ == nullptr && !finished_);
  if (ROWSORT_FAILPOINT("external_run_open")) {
    return Status::IOError("injected spill open failure (failpoint)");
  }
  file_ = std::fopen(temp_path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IOError("cannot open " + temp_path_ + " for writing");
  }
  key_row_width_ = key_row_width;
  if (io_.worker != nullptr && io_.buffer_tracker != nullptr) {
    buffer_memory_.Reset(io_.buffer_tracker, 0);
  }
  // Placeholder header; Finish() seeks back and patches the row count.
  ScalarBuffer header = BuildHeader(0, key_row_width_, layout_.row_width());
  return WriteAll(file_, header.bytes, header.size, io_);
}

Status ExternalRunWriter::WaitForInflight(bool count_stall) {
  if (!inflight_.valid()) return Status::OK();
  if (inflight_.done()) return inflight_.Wait();
  TraceSpan span(io_.trace, "spill.write_wait", "spill");
  Timer timer;
  Status s = inflight_.Wait();
  if (io_.overlap_stats != nullptr) {
    io_.overlap_stats->io_wait_us.fetch_add(timer.ElapsedNanos() / 1000,
                                            std::memory_order_relaxed);
    if (count_stall) {
      io_.overlap_stats->write_behind_stalls.fetch_add(
          1, std::memory_order_relaxed);
    }
  }
  return s;
}

Status ExternalRunWriter::WriteSlice(const SortedRun& run, uint64_t begin,
                                     uint64_t end) {
  ROWSORT_ASSERT(file_ != nullptr && !finished_);
  ROWSORT_ASSERT(begin <= end && end <= run.count);
  ROWSORT_ASSERT(run.key_row_width == key_row_width_);
  if (!error_.ok()) return error_;
  if (begin == end) return Status::OK();
  // Block-granular cancellation: a multi-gigabyte spill stops between
  // blocks, never mid-framing (the temp file is abandoned whole).
  if (io_.cancellation.IsCancelled()) {
    return CancellationToken::StatusForCause(io_.cancellation.cause());
  }
  const uint64_t rows = end - begin;
  if (io_.worker != nullptr) {
    // Write-behind: encode into the free half of the double buffer, wait
    // for the previous block's background write (normally already done),
    // then hand the new block to the worker and return to sorting.
    TraceSpan span(io_.trace, "spill.write_submit", "spill");
    EncodeSlice(layout_, run, begin, end, &encode_buf_);
    Status s = WaitForInflight(/*count_stall=*/true);
    if (!s.ok()) {
      error_ = s;
      return error_;
    }
    std::swap(encode_buf_, inflight_buf_);
    buffer_memory_.Update(encode_buf_.capacity() + inflight_buf_.capacity());
    std::FILE* f = file_;
    const std::vector<uint8_t>* buf = &inflight_buf_;
    SpillIoOptions io = io_;
    inflight_ = io_.worker->Submit([f, buf, rows, io]() {
      TraceSpan write_span(io.trace, "spill.write_block", "spill");
      Timer timer;
      Status ws = WriteAll(f, buf->data(), buf->size(), io);
      if (ws.ok() && io.io_profile != nullptr) {
        io.io_profile->RecordWrite(timer.ElapsedNanos(), buf->size(), rows);
      }
      return ws;
    });
  } else {
    TraceSpan span(io_.trace, "spill.write_block", "spill");
    EncodeSlice(layout_, run, begin, end, &encode_buf_);
    Timer timer;
    Status s = WriteAll(file_, encode_buf_.data(), encode_buf_.size(), io_);
    const uint64_t ns = timer.ElapsedNanos();
    if (io_.overlap_stats != nullptr) {
      io_.overlap_stats->io_wait_us.fetch_add(ns / 1000,
                                              std::memory_order_relaxed);
    }
    if (!s.ok()) {
      error_ = s;
      return error_;
    }
    if (io_.io_profile != nullptr) {
      io_.io_profile->RecordWrite(ns, encode_buf_.size(), rows);
    }
  }
  rows_written_ += rows;
  return Status::OK();
}

Status ExternalRunWriter::Finish() {
  ROWSORT_ASSERT(file_ != nullptr && !finished_);
  if (!error_.ok()) return error_;
  // The header patch below seeks; the in-flight block must land first.
  Status s = WaitForInflight(/*count_stall=*/false);
  if (!s.ok()) {
    error_ = s;
    return error_;
  }
  if (ROWSORT_FAILPOINT("external_run_finish")) {
    return Status::IOError("injected spill finish failure (failpoint)");
  }
  // Patch the real row count into the header.
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::IOError("seek failed on " + temp_path_);
  }
  ScalarBuffer header =
      BuildHeader(rows_written_, key_row_width_, layout_.row_width());
  ROWSORT_RETURN_NOT_OK(WriteAll(file_, header.bytes, header.size, io_));
  // A failed flush or close after buffered writes means the data may not be
  // on disk; surface it instead of reporting success.
  if (std::fflush(file_) != 0) {
    return Status::IOError("flush failed for " + temp_path_);
  }
  std::FILE* f = file_;
  file_ = nullptr;
  if (std::fclose(f) != 0) {
    return Status::IOError("close failed for " + temp_path_);
  }
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    return Status::IOError("cannot rename " + temp_path_ + " to " + path_);
  }
  finished_ = true;
  buffer_memory_.Reset();
  return Status::OK();
}

ExternalRunReader::ExternalRunReader(const RowLayout& payload_layout,
                                     std::string path)
    : layout_(payload_layout), path_(std::move(path)) {}

ExternalRunReader::~ExternalRunReader() {
  DrainPrefetch();
  if (file_ != nullptr) std::fclose(file_);
}

void ExternalRunReader::DrainPrefetch() {
  if (prefetch_.valid()) (void)prefetch_.Wait();
}

Status ExternalRunReader::Open() {
  ROWSORT_ASSERT(file_ == nullptr);
  file_ = std::fopen(path_.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::IOError("cannot open " + path_ + " for reading");
  }
  // Check the magic before requiring a full header, so "not a run file at
  // all" is reported as InvalidArgument rather than a truncation IOError.
  uint8_t header[kHeaderSize];
  if (std::fread(header, 1, sizeof(uint64_t), file_) != sizeof(uint64_t)) {
    return Status::IOError(path_ + ": short header");
  }
  uint64_t magic = bit_util::LoadUnaligned<uint64_t>(header);
  if (magic != kRunFileMagic) {
    return Status::InvalidArgument(path_ + " is not a rowsort run file");
  }
  constexpr uint64_t kRest = kHeaderSize - sizeof(uint64_t);
  if (std::fread(header + sizeof(uint64_t), 1, kRest, file_) != kRest) {
    return Status::IOError(path_ + ": short header");
  }
  uint32_t version = bit_util::LoadUnaligned<uint32_t>(header + 8);
  if (version != kRunFileVersion) {
    return Status::InvalidArgument(
        StringFormat("%s: unsupported run file version %u", path_.c_str(),
                     static_cast<unsigned>(version)));
  }
  uint32_t stored_crc =
      bit_util::LoadUnaligned<uint32_t>(header + kHeaderSize - 4);
  if (Crc32(0, header, kHeaderSize - 4) != stored_crc) {
    return Status::IOError(path_ + ": header checksum mismatch");
  }
  count_ = bit_util::LoadUnaligned<uint64_t>(header + 16);
  key_row_width_ = bit_util::LoadUnaligned<uint64_t>(header + 24);
  uint64_t payload_width = bit_util::LoadUnaligned<uint64_t>(header + 32);
  if (payload_width != layout_.row_width()) {
    return Status::InvalidArgument(StringFormat(
        "payload width mismatch: file has %llu, layout has %llu",
        static_cast<unsigned long long>(payload_width),
        static_cast<unsigned long long>(layout_.row_width())));
  }
  if (io_.worker != nullptr && io_.buffer_tracker != nullptr) {
    buffer_memory_.Reset(io_.buffer_tracker, 0);
  }
  // Readahead: get the first block's bytes moving before the first
  // ReadBlock call (the merge still has k-1 other cursors to open).
  StartPrefetch();
  return Status::OK();
}

void ExternalRunReader::StartPrefetch() {
  if (io_.worker == nullptr || prefetch_.valid()) return;
  if (rows_fetched_ >= count_) return;
  const uint64_t remaining = count_ - rows_fetched_;
  std::FILE* f = file_;
  std::vector<uint8_t>* raw = &prefetch_raw_;
  uint64_t* rows_out = &prefetch_rows_;
  const RowLayout* layout = &layout_;
  const std::string* path = &path_;
  const uint64_t krw = key_row_width_;
  SpillIoOptions io = io_;
  prefetch_ = io_.worker->Submit(
      [f, raw, rows_out, layout, path, krw, remaining, io]() {
        return FetchRawBlock(f, *path, *layout, krw, remaining, raw, rows_out,
                             io);
      });
}

Status ExternalRunReader::ReadBlock(SortedRun* block) {
  ROWSORT_ASSERT(file_ != nullptr);
  block->count = 0;
  block->key_row_width = key_row_width_;
  block->key_rows.clear();
  block->ovcs.clear();
  block->payload = RowCollection(layout_);
  if (rows_read_ >= count_) return Status::OK();  // clean end of data
  // Block-granular cancellation, mirroring the writer side.
  if (io_.cancellation.IsCancelled()) {
    DrainPrefetch();
    return CancellationToken::StatusForCause(io_.cancellation.cause());
  }
  if (io_.worker != nullptr) {
    StartPrefetch();  // no-op unless an earlier error consumed the ticket
    const bool ready = prefetch_.done();
    Status s;
    if (ready) {
      s = prefetch_.Wait();
      if (s.ok() && io_.overlap_stats != nullptr) {
        io_.overlap_stats->blocks_prefetched.fetch_add(
            1, std::memory_order_relaxed);
      }
    } else {
      TraceSpan span(io_.trace, "spill.read_wait", "spill");
      Timer timer;
      s = prefetch_.Wait();
      if (io_.overlap_stats != nullptr) {
        io_.overlap_stats->io_wait_us.fetch_add(timer.ElapsedNanos() / 1000,
                                                std::memory_order_relaxed);
      }
    }
    ROWSORT_RETURN_NOT_OK(s);
    std::swap(raw_, prefetch_raw_);
    raw_rows_ = prefetch_rows_;
    rows_fetched_ += raw_rows_;
    buffer_memory_.Update(raw_.capacity() + prefetch_raw_.capacity());
    // The worker reads block k+1 while we decode block k below.
    StartPrefetch();
  } else {
    Timer timer;
    Status s = FetchRawBlock(file_, path_, layout_, key_row_width_,
                             count_ - rows_fetched_, &raw_, &raw_rows_, io_);
    if (io_.overlap_stats != nullptr) {
      io_.overlap_stats->io_wait_us.fetch_add(timer.ElapsedNanos() / 1000,
                                              std::memory_order_relaxed);
    }
    ROWSORT_RETURN_NOT_OK(s);
    rows_fetched_ += raw_rows_;
  }
  ROWSORT_RETURN_NOT_OK(
      DecodeRawBlock(layout_, path_, raw_, key_row_width_, block, io_.trace));
  rows_read_ += block->count;
  return Status::OK();
}

Status WriteRunToFile(const SortedRun& run, const RowLayout& payload_layout,
                      const std::string& path, const SpillIoOptions& options) {
  ExternalRunWriter writer(payload_layout, path);
  writer.SetIoOptions(options);
  ROWSORT_RETURN_NOT_OK(writer.Open(run.key_row_width));
  for (uint64_t begin = 0; begin < run.count;
       begin += kDefaultSpillBlockRows) {
    uint64_t end = std::min(run.count, begin + kDefaultSpillBlockRows);
    ROWSORT_RETURN_NOT_OK(writer.WriteSlice(run, begin, end));
  }
  return writer.Finish();
}

StatusOr<SortedRun> ReadRunFromFile(const RowLayout& payload_layout,
                                    const std::string& path,
                                    const SpillIoOptions& options) {
  ExternalRunReader reader(payload_layout, path);
  reader.SetIoOptions(options);
  ROWSORT_RETURN_NOT_OK(reader.Open());
  SortedRun run;
  run.count = reader.row_count();
  run.key_row_width = reader.key_row_width();
  run.key_rows.resize(run.count * run.key_row_width);
  run.payload = RowCollection(payload_layout);

  const uint64_t prw = payload_layout.row_width();
  uint64_t filled = 0;
  SortedRun block;
  while (true) {
    ROWSORT_RETURN_NOT_OK(reader.ReadBlock(&block));
    if (block.count == 0) break;
    std::memcpy(run.key_rows.data() + filled * run.key_row_width,
                block.key_rows.data(), block.count * run.key_row_width);
    uint64_t first = run.payload.AppendUninitialized(block.count);
    std::memcpy(run.payload.GetRow(first), block.payload.data(),
                block.count * prw);
    // Adopting the block heap keeps the copied string_t pointers valid.
    run.payload.AdoptHeap(std::move(block.payload));
    filled += block.count;
  }
  if (filled != run.count) {
    return Status::IOError(path + ": truncated run file");
  }
  return run;
}

}  // namespace rowsort
