// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "engine/ie_join.h"

#include <cstring>

#include "common/macros.h"
#include "row/row_collection.h"
#include "sortalgo/pdq_sort.h"
#include "sortkey/key_encoder.h"

namespace rowsort {

namespace {

/// Sorts \p table by \p column ascending (NULLS LAST) and returns the sort;
/// pipeline failures (including cancellation) propagate as the Status.
StatusOr<std::unique_ptr<RelationalSort>> SortByColumn(
    const Table& table, uint64_t column, const SortEngineConfig& config) {
  SortSpec spec({SortColumn(column, table.types()[column],
                            OrderType::kAscending, NullOrder::kNullsLast)});
  auto sort = std::make_unique<RelationalSort>(spec, table.types(), config);
  auto local = sort->MakeLocalState();
  for (uint64_t c = 0; c < table.ChunkCount(); ++c) {
    ROWSORT_RETURN_NOT_OK(sort->Sink(*local, table.chunk(c)));
  }
  ROWSORT_RETURN_NOT_OK(sort->CombineLocal(*local));
  ROWSORT_RETURN_NOT_OK(sort->Finalize());
  return sort;
}

/// First index i in [0, run.count) with key(run[i]) > key (strict upper
/// bound by memcmp over \p width bytes).
uint64_t UpperBound(const SortedRun& run, const uint8_t* key, uint64_t width) {
  uint64_t lo = 0, hi = run.count;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (std::memcmp(run.KeyRow(mid), key, width) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// First index i with key(run[i]) >= key (lower bound).
uint64_t LowerBound(const SortedRun& run, const uint8_t* key, uint64_t width) {
  uint64_t lo = 0, hi = run.count;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (std::memcmp(run.KeyRow(mid), key, width) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

StatusOr<Table> InequalityJoin(const Table& left, const Table& right,
                               uint64_t left_column, uint64_t right_column,
                               InequalityOp op,
                               const SortEngineConfig& config) {
  ROWSORT_ASSERT(left_column < left.types().size());
  ROWSORT_ASSERT(right_column < right.types().size());
  ROWSORT_ASSERT(left.types()[left_column] == right.types()[right_column]);
  ROWSORT_ASSERT(left.types()[left_column].id() != TypeId::kVarchar &&
                 "inequality join keys must be fixed-width");

  auto left_sorted = SortByColumn(left, left_column, config);
  ROWSORT_RETURN_NOT_OK(left_sorted.status());
  auto right_sorted = SortByColumn(right, right_column, config);
  ROWSORT_RETURN_NOT_OK(right_sorted.status());
  std::unique_ptr<RelationalSort>& left_sort = left_sorted.value();
  std::unique_ptr<RelationalSort>& right_sort = right_sorted.value();
  const SortedRun& lrun = left_sort->result();
  const SortedRun& rrun = right_sort->result();
  const uint64_t key_width = left_sort->comparator().key_width();
  ROWSORT_ASSERT(key_width == right_sort->comparator().key_width());

  // With ASC + NULLS LAST, valid keys form a prefix of each run: the first
  // byte of a NULL key is the 0xFF marker. Find the end of the valid prefix.
  auto valid_count = [key_width](const SortedRun& run) {
    uint64_t lo = 0, hi = run.count;
    while (lo < hi) {
      uint64_t mid = lo + (hi - lo) / 2;
      if (run.KeyRow(mid)[0] == 0xFF) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  };
  const uint64_t l_valid = valid_count(lrun);
  const uint64_t r_valid = valid_count(rrun);

  // For each (non-NULL) left row, the qualifying right rows form a
  // contiguous suffix (for < / <=) or prefix (for > / >=) of the valid
  // right rows; the boundary is a binary search over normalized keys. The
  // match lists (potentially O(|L|x|R|)) are charged to the caller's budget
  // chain at cancel-check granularity (docs/service.md).
  MemoryTracker scratch_tracker(0, config.parent_tracker);
  MemoryReservation match_memory;
  match_memory.Reset(&scratch_tracker, 0);
  std::vector<uint64_t> left_matches, right_matches;
  auto account_matches = [&]() {
    uint64_t bytes =
        (left_matches.capacity() + right_matches.capacity()) * sizeof(uint64_t);
    if (bytes > match_memory.bytes() && config.governor != nullptr &&
        scratch_tracker.WouldExceed(bytes - match_memory.bytes())) {
      config.governor->EnsureCapacity(bytes - match_memory.bytes(), nullptr);
    }
    match_memory.Update(bytes);
  };
  for (uint64_t i = 0; i < l_valid; ++i) {
    if ((i & (kCancelCheckRows - 1)) == 0) {
      ROWSORT_RETURN_NOT_OK(config.cancellation.CheckForCancellation());
      account_matches();
    }
    const uint8_t* key = lrun.KeyRow(i);
    uint64_t begin = 0, end = 0;
    switch (op) {
      case InequalityOp::kLess:
        begin = UpperBound(rrun, key, key_width);
        end = r_valid;
        break;
      case InequalityOp::kLessEqual:
        begin = LowerBound(rrun, key, key_width);
        end = r_valid;
        break;
      case InequalityOp::kGreater:
        begin = 0;
        end = std::min(LowerBound(rrun, key, key_width), r_valid);
        break;
      case InequalityOp::kGreaterEqual:
        begin = 0;
        end = std::min(UpperBound(rrun, key, key_width), r_valid);
        break;
    }
    for (uint64_t j = begin; j < end; ++j) {
      left_matches.push_back(i);
      right_matches.push_back(j);
    }
  }
  account_matches();

  // Gather output: left columns then right columns.
  std::vector<LogicalType> out_types = left.types();
  out_types.insert(out_types.end(), right.types().begin(),
                   right.types().end());
  std::vector<std::string> out_names = left.names();
  out_names.insert(out_names.end(), right.names().begin(),
                   right.names().end());
  Table out(out_types, out_names);
  const uint64_t lcols = left.types().size();
  uint64_t offset = 0;
  while (offset < left_matches.size()) {
    ROWSORT_RETURN_NOT_OK(config.cancellation.CheckForCancellation());
    uint64_t n = std::min(kVectorSize, left_matches.size() - offset);
    DataChunk lchunk;
    lchunk.Initialize(left.types());
    lrun.payload.GatherRows(left_matches.data() + offset, n, &lchunk);
    DataChunk rchunk;
    rchunk.Initialize(right.types());
    rrun.payload.GatherRows(right_matches.data() + offset, n, &rchunk);
    DataChunk out_chunk = out.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      for (uint64_t c = 0; c < lcols; ++c) {
        out_chunk.SetValue(c, r, lchunk.GetValue(c, r));
      }
      for (uint64_t c = 0; c < right.types().size(); ++c) {
        out_chunk.SetValue(lcols + c, r, rchunk.GetValue(c, r));
      }
    }
    out_chunk.SetSize(n);
    out.Append(std::move(out_chunk));
    offset += n;
  }
  return out;
}

namespace {

/// Encodes one column of \p table as ascending NULLS LAST normalized keys
/// (NULL rows start with 0xFF) into a flat array; returns the key width.
std::vector<uint8_t> EncodeColumnKeys(const Table& table, uint64_t col,
                                      uint64_t* width_out) {
  SortSpec spec({SortColumn(col, table.types()[col], OrderType::kAscending,
                            NullOrder::kNullsLast)});
  NormalizedKeyEncoder encoder(spec);
  const uint64_t width = encoder.key_width();
  *width_out = width;
  std::vector<uint8_t> keys(table.row_count() * width);
  uint64_t offset = 0;
  for (uint64_t ci = 0; ci < table.ChunkCount(); ++ci) {
    const DataChunk& chunk = table.chunk(ci);
    encoder.EncodeChunk(chunk, chunk.size(), keys.data() + offset * width,
                        width);
    offset += chunk.size();
  }
  return keys;
}

/// Simple fixed-size bitmap with range iteration.
class Bitmap {
 public:
  explicit Bitmap(uint64_t bits) : words_((bits + 63) / 64, 0) {}

  void Set(uint64_t i) { words_[i / 64] |= uint64_t(1) << (i % 64); }

  /// Calls \p fn(i) for every set bit in [begin, end), skipping zero words.
  template <typename Fn>
  void ForEachSet(uint64_t begin, uint64_t end, Fn&& fn) const {
    if (begin >= end) return;
    uint64_t word_idx = begin / 64;
    uint64_t last_word = (end - 1) / 64;
    for (; word_idx <= last_word; ++word_idx) {
      uint64_t word = words_[word_idx];
      if (word == 0) continue;
      // Mask bits outside [begin, end).
      if (word_idx == begin / 64) {
        word &= ~uint64_t(0) << (begin % 64);
      }
      if (word_idx == last_word && (end % 64) != 0) {
        word &= (uint64_t(1) << (end % 64)) - 1;
      }
      while (word != 0) {
        uint64_t bit = static_cast<uint64_t>(__builtin_ctzll(word));
        fn(word_idx * 64 + bit);
        word &= word - 1;
      }
    }
  }

 private:
  std::vector<uint64_t> words_;
};

bool OpIsLess(InequalityOp op) {
  return op == InequalityOp::kLess || op == InequalityOp::kLessEqual;
}
bool OpIsStrict(InequalityOp op) {
  return op == InequalityOp::kLess || op == InequalityOp::kGreater;
}

/// First index i in the sorted key array with keys[i] >= key (lower bound).
uint64_t LowerBoundKeys(const std::vector<const uint8_t*>& sorted_keys,
                        const uint8_t* key, uint64_t width) {
  uint64_t lo = 0, hi = sorted_keys.size();
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (std::memcmp(sorted_keys[mid], key, width) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// First index i with keys[i] > key (upper bound).
uint64_t UpperBoundKeys(const std::vector<const uint8_t*>& sorted_keys,
                        const uint8_t* key, uint64_t width) {
  uint64_t lo = 0, hi = sorted_keys.size();
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (std::memcmp(sorted_keys[mid], key, width) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

StatusOr<Table> IEJoin(const Table& left, const Table& right,
                       const InequalityPredicate& pred1,
                       const InequalityPredicate& pred2,
                       const SortEngineConfig& config) {
  ROWSORT_ASSERT(left.types()[pred1.left_column] ==
                 right.types()[pred1.right_column]);
  ROWSORT_ASSERT(left.types()[pred2.left_column] ==
                 right.types()[pred2.right_column]);
  ROWSORT_ASSERT(left.types()[pred1.left_column].id() != TypeId::kVarchar &&
                 left.types()[pred2.left_column].id() != TypeId::kVarchar &&
                 "IEJoin keys must be fixed-width");

  // Encode both predicate columns on both sides (ascending, NULLS LAST:
  // a leading 0xFF byte marks NULL, which never matches).
  uint64_t xw = 0, yw = 0;
  std::vector<uint8_t> lx = EncodeColumnKeys(left, pred1.left_column, &xw);
  std::vector<uint8_t> ly = EncodeColumnKeys(left, pred2.left_column, &yw);
  std::vector<uint8_t> rx = EncodeColumnKeys(right, pred1.right_column, &xw);
  std::vector<uint8_t> ry = EncodeColumnKeys(right, pred2.right_column, &yw);

  // IEJoin materializes both inputs as encoded keys plus rank/order arrays;
  // make that working set visible to the caller's budget chain and give a
  // governor the chance to shed pressure before we hold it all.
  MemoryTracker scratch_tracker(0, config.parent_tracker);
  MemoryReservation key_memory;
  {
    uint64_t key_bytes =
        lx.capacity() + ly.capacity() + rx.capacity() + ry.capacity();
    if (config.governor != nullptr && scratch_tracker.WouldExceed(key_bytes)) {
      config.governor->EnsureCapacity(key_bytes, nullptr);
    }
    key_memory.Reset(&scratch_tracker, key_bytes);
  }

  auto is_null = [](const std::vector<uint8_t>& keys, uint64_t width,
                    uint64_t row) { return keys[row * width] == 0xFF; };

  std::vector<uint64_t> left_rows, right_rows;  // valid original row indices
  for (uint64_t i = 0; i < left.row_count(); ++i) {
    if (!is_null(lx, xw, i) && !is_null(ly, yw, i)) left_rows.push_back(i);
  }
  for (uint64_t i = 0; i < right.row_count(); ++i) {
    if (!is_null(rx, xw, i) && !is_null(ry, yw, i)) right_rows.push_back(i);
  }
  const uint64_t m = right_rows.size();

  // Right side, ordered by the second predicate's column: ranks index the
  // bitmap; the sorted key pointers drive the predicate-2 bound search.
  std::vector<uint64_t> right_by_y = right_rows;
  PdqSort(right_by_y.begin(), right_by_y.end(),
          [&](uint64_t a, uint64_t b) {
            return std::memcmp(ry.data() + a * yw, ry.data() + b * yw, yw) <
                   0;
          });
  std::vector<const uint8_t*> y_sorted_keys(m);
  std::vector<uint64_t> rank_of_right(right.row_count());
  for (uint64_t rank = 0; rank < m; ++rank) {
    y_sorted_keys[rank] = ry.data() + right_by_y[rank] * yw;
    rank_of_right[right_by_y[rank]] = rank;
  }

  // Processing orders for the sweep over predicate 1. For l.x < r.x the
  // qualifying right set grows as l.x decreases: process both sides in
  // descending x order. For > the mirror image.
  const bool descending = OpIsLess(pred1.op);
  auto x_less = [&](const std::vector<uint8_t>& keys, uint64_t a,
                    uint64_t b) {
    return std::memcmp(keys.data() + a * xw, keys.data() + b * xw, xw) < 0;
  };
  std::vector<uint64_t> left_order = left_rows;
  std::vector<uint64_t> right_order = right_rows;
  PdqSort(left_order.begin(), left_order.end(), [&](uint64_t a, uint64_t b) {
    return descending ? x_less(lx, b, a) : x_less(lx, a, b);
  });
  PdqSort(right_order.begin(), right_order.end(),
          [&](uint64_t a, uint64_t b) {
            return descending ? x_less(rx, b, a) : x_less(rx, a, b);
          });

  // Sweep: insert right rows into the bitmap while predicate 1 holds for
  // the current left row, then emit the predicate-2 rank range. Match lists
  // can reach O(|L|x|R|); settle their ledger at cancel-check granularity.
  Bitmap bitmap(m);
  MemoryReservation match_memory;
  match_memory.Reset(&scratch_tracker, 0);
  std::vector<uint64_t> left_matches, right_matches;
  auto account_matches = [&]() {
    uint64_t bytes =
        (left_matches.capacity() + right_matches.capacity()) * sizeof(uint64_t);
    if (bytes > match_memory.bytes() && config.governor != nullptr &&
        scratch_tracker.WouldExceed(bytes - match_memory.bytes())) {
      config.governor->EnsureCapacity(bytes - match_memory.bytes(), nullptr);
    }
    match_memory.Update(bytes);
  };
  uint64_t inserted = 0;
  const bool strict = OpIsStrict(pred1.op);
  uint64_t until_check = kCancelCheckRows;
  for (uint64_t li : left_order) {
    if (--until_check == 0) {
      until_check = kCancelCheckRows;
      ROWSORT_RETURN_NOT_OK(config.cancellation.CheckForCancellation());
      account_matches();
    }
    const uint8_t* l_x = lx.data() + li * xw;
    while (inserted < m) {
      uint64_t ri = right_order[inserted];
      int cmp = std::memcmp(rx.data() + ri * xw, l_x, xw);
      // descending (op <): insert while r.x > l.x (or >= for <=);
      // ascending (op >): insert while r.x < l.x (or <= for >=).
      bool qualifies = descending ? (strict ? cmp > 0 : cmp >= 0)
                                  : (strict ? cmp < 0 : cmp <= 0);
      if (!qualifies) break;
      bitmap.Set(rank_of_right[ri]);
      ++inserted;
    }
    const uint8_t* l_y = ly.data() + li * yw;
    uint64_t begin = 0, end = m;
    switch (pred2.op) {
      case InequalityOp::kGreater:  // l.y > r.y
        end = LowerBoundKeys(y_sorted_keys, l_y, yw);
        break;
      case InequalityOp::kGreaterEqual:
        end = UpperBoundKeys(y_sorted_keys, l_y, yw);
        break;
      case InequalityOp::kLess:  // l.y < r.y
        begin = UpperBoundKeys(y_sorted_keys, l_y, yw);
        break;
      case InequalityOp::kLessEqual:
        begin = LowerBoundKeys(y_sorted_keys, l_y, yw);
        break;
    }
    bitmap.ForEachSet(begin, end, [&](uint64_t rank) {
      left_matches.push_back(li);
      right_matches.push_back(right_by_y[rank]);
    });
  }
  account_matches();

  // Gather output rows from the original (unsorted) tables; both gather
  // collections report their bytes to the same budget chain.
  RowLayout left_layout(left.types());
  RowCollection left_coll(left_layout);
  left_coll.SetMemoryTracker(&scratch_tracker);
  for (uint64_t c = 0; c < left.ChunkCount(); ++c) {
    left_coll.AppendChunk(left.chunk(c));
  }
  RowLayout right_layout(right.types());
  RowCollection right_coll(right_layout);
  right_coll.SetMemoryTracker(&scratch_tracker);
  for (uint64_t c = 0; c < right.ChunkCount(); ++c) {
    right_coll.AppendChunk(right.chunk(c));
  }

  std::vector<LogicalType> out_types = left.types();
  out_types.insert(out_types.end(), right.types().begin(),
                   right.types().end());
  std::vector<std::string> out_names = left.names();
  out_names.insert(out_names.end(), right.names().begin(),
                   right.names().end());
  Table out(out_types, out_names);
  const uint64_t lcols = left.types().size();
  uint64_t offset = 0;
  while (offset < left_matches.size()) {
    ROWSORT_RETURN_NOT_OK(config.cancellation.CheckForCancellation());
    uint64_t n = std::min(kVectorSize, left_matches.size() - offset);
    DataChunk lchunk;
    lchunk.Initialize(left.types());
    left_coll.GatherRows(left_matches.data() + offset, n, &lchunk);
    DataChunk rchunk;
    rchunk.Initialize(right.types());
    right_coll.GatherRows(right_matches.data() + offset, n, &rchunk);
    DataChunk out_chunk = out.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      for (uint64_t c = 0; c < lcols; ++c) {
        out_chunk.SetValue(c, r, lchunk.GetValue(c, r));
      }
      for (uint64_t c = 0; c < right.types().size(); ++c) {
        out_chunk.SetValue(lcols + c, r, rchunk.GetValue(c, r));
      }
    }
    out_chunk.SetSize(n);
    out.Append(std::move(out_chunk));
    offset += n;
  }
  return out;
}

}  // namespace rowsort
