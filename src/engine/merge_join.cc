// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "engine/merge_join.h"

#include <cstring>

#include "common/bit_util.h"
#include "common/macros.h"
#include "types/string_t.h"

namespace rowsort {

namespace {

/// Compares tuples *across* two sorted tables: identical key encodings on
/// both sides make the hot path one memcmp; VARCHAR prefix ties are resolved
/// from the respective payload rows (which live in different layouts).
class CrossComparator {
 public:
  CrossComparator(const SortSpec& left_spec, const RowLayout& left_layout,
                  const SortSpec& right_spec, const RowLayout& right_layout) {
    ROWSORT_ASSERT(left_spec.columns().size() == right_spec.columns().size());
    uint64_t offset = 0;
    for (uint64_t k = 0; k < left_spec.columns().size(); ++k) {
      const SortColumn& lc = left_spec.columns()[k];
      const SortColumn& rc = right_spec.columns()[k];
      ROWSORT_ASSERT(lc.type == rc.type);
      ROWSORT_ASSERT(lc.EncodedWidth() == rc.EncodedWidth());
      Segment seg;
      seg.key_offset = offset;
      seg.width = lc.EncodedWidth();
      seg.is_varchar = lc.type.id() == TypeId::kVarchar;
      seg.null_marker = lc.null_order == NullOrder::kNullsFirst ? 0x00 : 0xFF;
      seg.left_offset = left_layout.ColumnOffset(lc.column_index);
      seg.right_offset = right_layout.ColumnOffset(rc.column_index);
      segments_.push_back(seg);
      offset += seg.width;
    }
    key_width_ = offset;
  }

  uint64_t key_width() const { return key_width_; }

  /// Three-way comparison; \p a_right / \p b_right select which table's
  /// payload layout each argument's string slots are read with.
  int CompareWith(const uint8_t* key_a, const uint8_t* payload_a, bool a_right,
                  const uint8_t* key_b, const uint8_t* payload_b,
                  bool b_right) const {
    for (const auto& seg : segments_) {
      int cmp = std::memcmp(key_a + seg.key_offset, key_b + seg.key_offset,
                            seg.width);
      if (cmp != 0) return cmp;
      if (seg.is_varchar && key_a[seg.key_offset] != seg.null_marker) {
        string_t a = bit_util::LoadUnaligned<string_t>(
            payload_a + (a_right ? seg.right_offset : seg.left_offset));
        string_t b = bit_util::LoadUnaligned<string_t>(
            payload_b + (b_right ? seg.right_offset : seg.left_offset));
        cmp = a.Compare(b);
        if (cmp != 0) return cmp;
      }
    }
    return 0;
  }

  /// Left tuple vs right tuple (the join-loop hot path).
  int Compare(const uint8_t* key_l, const uint8_t* payload_l,
              const uint8_t* key_r, const uint8_t* payload_r) const {
    return CompareWith(key_l, payload_l, false, key_r, payload_r, true);
  }

  /// True when the row's key contains a NULL in any join column (SQL: such
  /// rows never join).
  bool HasNullKey(const uint8_t* key) const {
    for (const auto& seg : segments_) {
      if (key[seg.key_offset] == seg.null_marker) return true;
    }
    return false;
  }

 private:
  struct Segment {
    uint64_t key_offset;
    uint64_t width;
    bool is_varchar;
    uint8_t null_marker;
    uint64_t left_offset;
    uint64_t right_offset;
  };
  std::vector<Segment> segments_;
  uint64_t key_width_ = 0;
};

SortSpec JoinSpec(const Table& table, const std::vector<JoinKey>& keys,
                  bool left_side) {
  std::vector<SortColumn> columns;
  for (const auto& key : keys) {
    uint64_t col = left_side ? key.left_column : key.right_column;
    ROWSORT_ASSERT(col < table.types().size());
    columns.emplace_back(col, table.types()[col], OrderType::kAscending,
                         NullOrder::kNullsLast);
  }
  return SortSpec(std::move(columns));
}

/// Compares a run tuple against its successor (same side); used to find the
/// end of a duplicate-key group.
bool SameKey(const CrossComparator& cmp, const SortedRun& run, uint64_t a,
             uint64_t b, bool left_side) {
  bool is_right = !left_side;
  return cmp.CompareWith(run.KeyRow(a), run.PayloadRow(a), is_right,
                         run.KeyRow(b), run.PayloadRow(b), is_right) == 0;
}

}  // namespace

StatusOr<Table> SortMergeJoin(const Table& left, const Table& right,
                              const std::vector<JoinKey>& keys,
                              const SortEngineConfig& config) {
  ROWSORT_ASSERT(!keys.empty());
  SortSpec left_spec = JoinSpec(left, keys, /*left_side=*/true);
  SortSpec right_spec = JoinSpec(right, keys, /*left_side=*/false);

  // Sort both inputs with the row-based pipeline.
  RelationalSort left_sort(left_spec, left.types(), config);
  {
    auto local = left_sort.MakeLocalState();
    for (uint64_t c = 0; c < left.ChunkCount(); ++c) {
      ROWSORT_RETURN_NOT_OK(left_sort.Sink(*local, left.chunk(c)));
    }
    ROWSORT_RETURN_NOT_OK(left_sort.CombineLocal(*local));
    ROWSORT_RETURN_NOT_OK(left_sort.Finalize());
  }
  RelationalSort right_sort(right_spec, right.types(), config);
  {
    auto local = right_sort.MakeLocalState();
    for (uint64_t c = 0; c < right.ChunkCount(); ++c) {
      ROWSORT_RETURN_NOT_OK(right_sort.Sink(*local, right.chunk(c)));
    }
    ROWSORT_RETURN_NOT_OK(right_sort.CombineLocal(*local));
    ROWSORT_RETURN_NOT_OK(right_sort.Finalize());
  }

  const SortedRun& lrun = left_sort.result();
  const SortedRun& rrun = right_sort.result();
  RowLayout left_layout(left.types());
  RowLayout right_layout(right.types());
  CrossComparator cmp(left_spec, left_layout, right_spec, right_layout);

  // Merge: advance the smaller side; on key equality, find both duplicate
  // groups and emit their cross product. The match lists are the operator's
  // own working set — a skewed cross product can dwarf both inputs — so
  // their capacity is charged to the caller's budget chain at cancel-check
  // granularity, with the governor consulted under chain pressure
  // (docs/service.md).
  MemoryTracker scratch_tracker(0, config.parent_tracker);
  MemoryReservation match_memory;
  match_memory.Reset(&scratch_tracker, 0);
  std::vector<uint64_t> left_matches, right_matches;
  auto account_matches = [&]() {
    uint64_t bytes =
        (left_matches.capacity() + right_matches.capacity()) * sizeof(uint64_t);
    if (bytes > match_memory.bytes() && config.governor != nullptr &&
        scratch_tracker.WouldExceed(bytes - match_memory.bytes())) {
      config.governor->EnsureCapacity(bytes - match_memory.bytes(), nullptr);
    }
    match_memory.Update(bytes);
  };
  uint64_t i = 0, j = 0;
  uint64_t until_check = kCancelCheckRows;
  while (i < lrun.count && j < rrun.count) {
    if (--until_check == 0) {
      until_check = kCancelCheckRows;
      ROWSORT_RETURN_NOT_OK(config.cancellation.CheckForCancellation());
      account_matches();
    }
    if (cmp.HasNullKey(lrun.KeyRow(i))) {
      ++i;
      continue;
    }
    if (cmp.HasNullKey(rrun.KeyRow(j))) {
      ++j;
      continue;
    }
    int c = cmp.Compare(lrun.KeyRow(i), lrun.PayloadRow(i), rrun.KeyRow(j),
                        rrun.PayloadRow(j));
    if (c < 0) {
      ++i;
    } else if (c > 0) {
      ++j;
    } else {
      uint64_t i_end = i + 1;
      while (i_end < lrun.count && SameKey(cmp, lrun, i, i_end, true)) {
        ++i_end;
      }
      uint64_t j_end = j + 1;
      while (j_end < rrun.count && SameKey(cmp, rrun, j, j_end, false)) {
        ++j_end;
      }
      for (uint64_t li = i; li < i_end; ++li) {
        for (uint64_t rj = j; rj < j_end; ++rj) {
          left_matches.push_back(li);
          right_matches.push_back(rj);
        }
      }
      // A single skewed duplicate group can grow the lists by |L|x|R| rows;
      // settle the ledger per group, not just per cancel check.
      account_matches();
      i = i_end;
      j = j_end;
    }
  }
  account_matches();

  // Gather the matched rows: left columns then right columns.
  std::vector<LogicalType> out_types = left.types();
  out_types.insert(out_types.end(), right.types().begin(),
                   right.types().end());
  std::vector<std::string> out_names = left.names();
  out_names.insert(out_names.end(), right.names().begin(),
                   right.names().end());
  Table out(out_types, out_names);
  uint64_t offset = 0;
  const uint64_t lcols = left.types().size();
  while (offset < left_matches.size()) {
    // One check per output chunk: large cross products stay cancellable.
    ROWSORT_RETURN_NOT_OK(config.cancellation.CheckForCancellation());
    uint64_t n = std::min(kVectorSize, left_matches.size() - offset);
    DataChunk lchunk;
    lchunk.Initialize(left.types());
    lrun.payload.GatherRows(left_matches.data() + offset, n, &lchunk);
    DataChunk rchunk;
    rchunk.Initialize(right.types());
    rrun.payload.GatherRows(right_matches.data() + offset, n, &rchunk);

    DataChunk out_chunk = out.NewChunk();
    for (uint64_t r = 0; r < n; ++r) {
      for (uint64_t c = 0; c < lcols; ++c) {
        out_chunk.SetValue(c, r, lchunk.GetValue(c, r));
      }
      for (uint64_t c = 0; c < right.types().size(); ++c) {
        out_chunk.SetValue(lcols + c, r, rchunk.GetValue(c, r));
      }
    }
    out_chunk.SetSize(n);
    out.Append(std::move(out_chunk));
    offset += n;
  }
  return out;
}

}  // namespace rowsort
