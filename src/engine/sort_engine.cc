// Copyright 2026 the rowsort authors. Licensed under the MIT license.
#include "engine/sort_engine.h"

#include <atomic>
#include <cstring>

#include "common/bit_util.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "engine/external_run.h"
#include "engine/merge_path.h"
#include "engine/offset_value.h"
#include "sortalgo/radix_sort.h"
#include "sortalgo/row_sort.h"

namespace rowsort {

RelationalSort::RelationalSort(SortSpec spec,
                               std::vector<LogicalType> input_types,
                               SortEngineConfig config)
    : spec_(std::move(spec)), input_types_(std::move(input_types)),
      config_(config), encoder_(spec_), payload_layout_(input_types_),
      comparator_(spec_, payload_layout_) {
  ROWSORT_ASSERT(!spec_.columns().empty());
  for (const auto& col : spec_.columns()) {
    ROWSORT_ASSERT(col.column_index < input_types_.size());
    ROWSORT_ASSERT(col.type == input_types_[col.column_index]);
  }
  ROWSORT_ASSERT(!(config_.algorithm == RunSortAlgorithm::kRadix &&
                   comparator_.needs_tie_resolution()) &&
                 "radix sort cannot resolve VARCHAR prefix ties");
  row_id_offset_ = bit_util::AlignValue(encoder_.key_width());
  key_row_width_ = row_id_offset_ + sizeof(uint64_t);
}

RelationalSort::LocalState::LocalState(const RelationalSort& sort)
    : payload_(sort.payload_layout_) {}

void RelationalSort::Sink(LocalState& local, const DataChunk& chunk) {
  if (chunk.size() == 0) return;
  Timer timer;
  const uint64_t count = chunk.size();
  const uint64_t old_count = local.count_;

  // Key rows: [normalized key | padding | row id], one block of vectors at a
  // time so the conversion stays cache-resident (paper §VII).
  local.key_rows_.resize((old_count + count) * key_row_width_);
  uint8_t* key_base = local.key_rows_.data() + old_count * key_row_width_;
  encoder_.EncodeChunk(chunk, count, key_base, key_row_width_);
  for (uint64_t i = 0; i < count; ++i) {
    bit_util::StoreUnaligned<uint64_t>(
        key_base + i * key_row_width_ + row_id_offset_, old_count + i);
  }

  // Payload rows: every input column, scattered column by column.
  local.payload_.AppendChunk(chunk);
  local.count_ += count;
  local.sink_seconds_ += timer.ElapsedSeconds();

  if (local.count_ >= config_.run_size_rows) {
    SortLocalRun(local);
  }
}

void RelationalSort::CombineLocal(LocalState& local) {
  if (local.count_ > 0) {
    SortLocalRun(local);
  }
  std::lock_guard<std::mutex> lock(runs_mutex_);
  metrics_.sink_seconds += local.sink_seconds_;
  local.sink_seconds_ = 0;
}

bool RelationalSort::UseRadix(uint64_t count) const {
  switch (config_.algorithm) {
    case RunSortAlgorithm::kRadix:
      return true;
    case RunSortAlgorithm::kPdq:
      return false;
    case RunSortAlgorithm::kAuto:
      // Paper §VII: radix sort, "or pdqsort if there are strings".
      return !comparator_.needs_tie_resolution() &&
             !config_.count_comparisons;
    case RunSortAlgorithm::kHeuristic:
      // Future work (§IX): distribution sort only where it wins — enough
      // rows to amortize the counting passes and a short enough key.
      return !comparator_.needs_tie_resolution() &&
             !config_.count_comparisons && count >= 4096 &&
             encoder_.key_width() <= 32;
  }
  return false;
}

void RelationalSort::SortLocalRun(LocalState& local) {
  Timer timer;
  const uint64_t count = local.count_;
  const uint64_t krw = key_row_width_;
  uint8_t* keys = local.key_rows_.data();

  if (UseRadix(count)) {
    std::vector<uint8_t> aux(count * krw);
    RadixSortConfig config;
    config.row_width = krw;
    config.key_offset = 0;
    config.key_width = encoder_.key_width();
    if (config_.pdq_inside_msd) {
      RadixSortMsdWithPdq(keys, aux.data(), count, config);
    } else {
      RadixSort(keys, aux.data(), count, config);
    }
  } else if (comparator_.needs_tie_resolution()) {
    // pdqsort with memcmp; tied VARCHAR prefixes resolved from the (still
    // unsorted) payload rows via the row id carried in each key row.
    const RowCollection& payload = local.payload_;
    const uint64_t id_offset = row_id_offset_;
    const TupleComparator& cmp = comparator_;
    std::atomic<uint64_t>* counter =
        config_.count_comparisons ? &run_compares_ : nullptr;
    PdqSortRowsWith(keys, count, krw,
                    [&payload, id_offset, &cmp, counter](const uint8_t* a,
                                                         const uint8_t* b) {
                      if (counter) counter->fetch_add(1, std::memory_order_relaxed);
                      uint64_t id_a = bit_util::LoadUnaligned<uint64_t>(a + id_offset);
                      uint64_t id_b = bit_util::LoadUnaligned<uint64_t>(b + id_offset);
                      return cmp.Compare(a, payload.GetRow(id_a), b,
                                         payload.GetRow(id_b)) < 0;
                    });
  } else {
    const uint64_t key_width = encoder_.key_width();
    std::atomic<uint64_t>* counter =
        config_.count_comparisons ? &run_compares_ : nullptr;
    if (counter) {
      PdqSortRowsWith(keys, count, krw,
                      [key_width, counter](const uint8_t* a, const uint8_t* b) {
                        counter->fetch_add(1, std::memory_order_relaxed);
                        return std::memcmp(a, b, key_width) < 0;
                      });
    } else {
      PdqSortRows(keys, count, krw, 0, key_width);
    }
  }

  // Reorder the payload into sorted order ("Then, we reorder the payload,
  // creating fully sorted runs", §VII). String payloads stay put: the new
  // collection adopts the old heap, so only fixed-size rows move.
  SortedRun run;
  run.count = count;
  run.key_row_width = krw;
  run.key_rows = std::move(local.key_rows_);
  run.payload = RowCollection(payload_layout_);
  run.payload.AppendUninitialized(count);
  const uint64_t width = payload_layout_.row_width();
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t row_id = bit_util::LoadUnaligned<uint64_t>(
        run.key_rows.data() + i * krw + row_id_offset_);
    std::memcpy(run.payload.GetRow(i), local.payload_.GetRow(row_id), width);
  }
  run.payload.AdoptHeap(std::move(local.payload_));

  if (UseOvc()) {
    // Cache each row's first-difference offset+value against its run
    // predecessor; the merge phase compares these codes instead of key bytes.
    run.ovcs = DeriveRunOvcs(run, comparator_.key_width());
  }

  // Reset the local state for the next run.
  local.key_rows_ = {};
  local.payload_ = RowCollection(payload_layout_);
  local.count_ = 0;

  {
    std::lock_guard<std::mutex> lock(runs_mutex_);
    metrics_.run_sort_seconds += timer.ElapsedSeconds();
    metrics_.runs_generated += 1;
    metrics_.rows += count;
    if (!config_.spill_directory.empty()) {
      // Graceful degradation (§IX): offload the run in the unified row
      // format and release its memory.
      std::string path = StringFormat("%s/run_%llu.rsrun",
                                      config_.spill_directory.c_str(),
                                      (unsigned long long)spill_counter_++);
      ROWSORT_CHECK_OK(WriteRunToFile(run, payload_layout_, path));
      spilled_files_.push_back(std::move(path));
    } else {
      runs_.push_back(std::move(run));
    }
  }
}

void RelationalSort::MergeSlice(const SortedRun& left, const SortedRun& right,
                                uint64_t left_begin, uint64_t left_end,
                                uint64_t right_begin, uint64_t right_end,
                                SortedRun* out, uint64_t out_begin) {
  const uint64_t krw = key_row_width_;
  const uint64_t prw = payload_layout_.row_width();
  uint64_t l = left_begin, r = right_begin, o = out_begin;
  uint8_t* out_keys = out->key_rows.data();
  std::atomic<uint64_t>* counter =
      config_.count_comparisons ? &merge_compares_ : nullptr;

  while (l < left_end && r < right_end) {
    // Full tuple comparison with memcmp (+ string ties), §VII.
    if (counter) counter->fetch_add(1, std::memory_order_relaxed);
    int cmp = comparator_.Compare(left.KeyRow(l), left.PayloadRow(l),
                                  right.KeyRow(r), right.PayloadRow(r));
    if (cmp <= 0) {  // stable: left wins ties
      std::memcpy(out_keys + o * krw, left.KeyRow(l), krw);
      std::memcpy(out->payload.GetRow(o), left.PayloadRow(l), prw);
      ++l;
    } else {
      std::memcpy(out_keys + o * krw, right.KeyRow(r), krw);
      std::memcpy(out->payload.GetRow(o), right.PayloadRow(r), prw);
      ++r;
    }
    ++o;
  }
  for (; l < left_end; ++l, ++o) {
    std::memcpy(out_keys + o * krw, left.KeyRow(l), krw);
    std::memcpy(out->payload.GetRow(o), left.PayloadRow(l), prw);
  }
  for (; r < right_end; ++r, ++o) {
    std::memcpy(out_keys + o * krw, right.KeyRow(r), krw);
    std::memcpy(out->payload.GetRow(o), right.PayloadRow(r), prw);
  }
}

/// OVC 2-way merge of one Merge Path partition. Invariant maintained after
/// the seed comparison: both heads' codes are relative to the last emitted
/// row. A comparison then needs key bytes only when the codes are equal and
/// non-zero, and the suffix scan it performs yields the loser's new code
/// relative to the winner for free (offset-value coding's merge logic,
/// arXiv:2209.08420 §3).
void RelationalSort::MergeSliceOvc(const SortedRun& left,
                                   const SortedRun& right, uint64_t left_begin,
                                   uint64_t left_end, uint64_t right_begin,
                                   uint64_t right_end, SortedRun* out,
                                   uint64_t out_begin) {
  const uint64_t krw = key_row_width_;
  const uint64_t prw = payload_layout_.row_width();
  const uint64_t kw = comparator_.key_width();
  uint64_t l = left_begin, r = right_begin, o = out_begin;
  uint8_t* out_keys = out->key_rows.data();
  uint64_t* out_ovcs = out->ovcs.data();
  uint64_t decided = 0, fallback = 0;

  // Head codes; until the seed comparison establishes the shared base these
  // are relative to each run's own predecessor and only land in the first
  // output slot, which MergePair re-derives at every partition boundary.
  uint64_t ovc_l = l < left_end ? left.ovcs[l] : kOvcEqual;
  uint64_t ovc_r = r < right_end ? right.ovcs[r] : kOvcEqual;
  bool have_base = false;

  while (l < left_end && r < right_end) {
    bool take_left;
    if (!have_base) {
      // Slices start mid-run: the heads' stored codes are relative to
      // different predecessors, so seed with one full comparison that also
      // produces the loser's code relative to the winner.
      uint64_t diff = 0;
      int cmp = CompareKeySuffix(left.KeyRow(l), right.KeyRow(r), 0, kw, &diff);
      ++fallback;
      take_left = cmp <= 0;  // stable: left wins ties
      if (cmp == 0) {
        if (take_left) ovc_r = kOvcEqual;
      } else if (take_left) {
        ovc_r = MakeOvc(kw, diff, right.KeyRow(r)[diff]);
      } else {
        ovc_l = MakeOvc(kw, diff, left.KeyRow(l)[diff]);
      }
      have_base = true;
    } else if (ovc_l != ovc_r) {
      // Different codes against the same base decide the order outright; the
      // loser's code stays valid relative to the winner.
      ++decided;
      take_left = ovc_l < ovc_r;
    } else if (ovc_l == kOvcEqual) {
      // Both heads equal the last emitted row, hence each other.
      ++decided;
      take_left = true;
    } else {
      // Equal non-zero codes: same first difference from the base, order
      // decided by the bytes past the cached offset.
      uint64_t begin = OvcDiffIndex(kw, ovc_l) + 1;
      uint64_t diff = 0;
      int cmp = begin >= kw
                    ? 0
                    : CompareKeySuffix(left.KeyRow(l), right.KeyRow(r), begin,
                                       kw, &diff);
      ++fallback;
      take_left = cmp <= 0;
      if (cmp == 0) {
        if (take_left) ovc_r = kOvcEqual;
      } else if (take_left) {
        ovc_r = MakeOvc(kw, diff, right.KeyRow(r)[diff]);
      } else {
        ovc_l = MakeOvc(kw, diff, left.KeyRow(l)[diff]);
      }
    }
    if (take_left) {
      out_ovcs[o] = ovc_l;  // the winner's code is relative to the previous
                            // output row — exactly the output run's code
      std::memcpy(out_keys + o * krw, left.KeyRow(l), krw);
      std::memcpy(out->payload.GetRow(o), left.PayloadRow(l), prw);
      if (++l < left_end) ovc_l = left.ovcs[l];  // run code vs just-emitted
    } else {
      out_ovcs[o] = ovc_r;
      std::memcpy(out_keys + o * krw, right.KeyRow(r), krw);
      std::memcpy(out->payload.GetRow(o), right.PayloadRow(r), prw);
      if (++r < right_end) ovc_r = right.ovcs[r];
    }
    ++o;
  }
  // One side exhausted: the first copied row's code relative to the last
  // emitted row is its current head code (invariant), the rest are
  // run-consecutive so their stored codes carry over.
  if (l < left_end) {
    out_ovcs[o] = ovc_l;
    std::memcpy(out_keys + o * krw, left.KeyRow(l), krw);
    std::memcpy(out->payload.GetRow(o), left.PayloadRow(l), prw);
    ++l, ++o;
    for (; l < left_end; ++l, ++o) {
      out_ovcs[o] = left.ovcs[l];
      std::memcpy(out_keys + o * krw, left.KeyRow(l), krw);
      std::memcpy(out->payload.GetRow(o), left.PayloadRow(l), prw);
    }
  }
  if (r < right_end) {
    out_ovcs[o] = ovc_r;
    std::memcpy(out_keys + o * krw, right.KeyRow(r), krw);
    std::memcpy(out->payload.GetRow(o), right.PayloadRow(r), prw);
    ++r, ++o;
    for (; r < right_end; ++r, ++o) {
      out_ovcs[o] = right.ovcs[r];
      std::memcpy(out_keys + o * krw, right.KeyRow(r), krw);
      std::memcpy(out->payload.GetRow(o), right.PayloadRow(r), prw);
    }
  }

  ovc_decided_.fetch_add(decided, std::memory_order_relaxed);
  ovc_fallback_.fetch_add(fallback, std::memory_order_relaxed);
  if (config_.count_comparisons) {
    // In the OVC path the fallbacks are the full key comparisons.
    merge_compares_.fetch_add(fallback, std::memory_order_relaxed);
  }
}

SortedRun RelationalSort::MergePair(const SortedRun& left,
                                    const SortedRun& right, ThreadPool* pool) {
  SortedRun out;
  out.count = left.count + right.count;
  out.key_row_width = key_row_width_;
  out.key_rows.resize(out.count * key_row_width_);
  out.payload = RowCollection(payload_layout_);
  out.payload.AppendUninitialized(out.count);
  const bool ovc = UseOvc();
  if (ovc) out.ovcs.resize(out.count);

  const uint64_t partitions =
      pool != nullptr ? std::max<uint64_t>(pool->thread_count(), 1) : 1;
  std::vector<uint64_t> boundaries{0};
  if (partitions <= 1 || out.count < 2 * kVectorSize) {
    if (ovc) {
      MergeSliceOvc(left, right, 0, left.count, 0, right.count, &out, 0);
    } else {
      MergeSlice(left, right, 0, left.count, 0, right.count, &out, 0);
    }
  } else {
    // Merge Path: cut both runs at evenly spaced output diagonals; each
    // partition merges independently (§VII).
    std::vector<uint64_t> left_cuts(partitions + 1), right_cuts(partitions + 1);
    left_cuts[0] = right_cuts[0] = 0;
    left_cuts[partitions] = left.count;
    right_cuts[partitions] = right.count;
    for (uint64_t p = 1; p < partitions; ++p) {
      uint64_t diagonal = out.count * p / partitions;
      uint64_t i = MergePathSearch(left, right, comparator_, diagonal);
      left_cuts[p] = i;
      right_cuts[p] = diagonal - i;
      boundaries.push_back(diagonal);
    }
    std::vector<std::function<void()>> tasks;
    for (uint64_t p = 0; p < partitions; ++p) {
      uint64_t out_begin = left_cuts[p] + right_cuts[p];
      tasks.push_back([this, &left, &right, &left_cuts, &right_cuts, &out,
                       out_begin, ovc, p] {
        if (ovc) {
          MergeSliceOvc(left, right, left_cuts[p], left_cuts[p + 1],
                        right_cuts[p], right_cuts[p + 1], &out, out_begin);
        } else {
          MergeSlice(left, right, left_cuts[p], left_cuts[p + 1],
                     right_cuts[p], right_cuts[p + 1], &out, out_begin);
        }
      });
    }
    pool->RunBatch(std::move(tasks));
  }
  if (ovc && out.count > 0) {
    // Each slice's first output row precedes rows another slice produced, so
    // its code could not be derived in parallel; re-derive at the cuts (and
    // re-anchor row 0 to the virtual -inf base).
    const uint64_t kw = comparator_.key_width();
    uint64_t fixups = 0;
    for (uint64_t b : boundaries) {
      if (b >= out.count) continue;  // empty tail partition
      out.ovcs[b] = b == 0 ? DeriveHeadOvc(out.KeyRow(0), kw)
                           : DeriveSuccessorOvc(out.KeyRow(b - 1),
                                                out.KeyRow(b), kw);
      ++fixups;
    }
    ovc_fallback_.fetch_add(fixups, std::memory_order_relaxed);
    if (config_.count_comparisons) {
      merge_compares_.fetch_add(fixups, std::memory_order_relaxed);
    }
  }
  return out;
}

SortedRun RelationalSort::MergeKWay(std::vector<SortedRun>& runs) {
  return UseOvc() ? MergeKWayLoserTree(runs) : MergeKWayHeap(runs);
}

SortedRun RelationalSort::MergeKWayHeap(std::vector<SortedRun>& runs) {
  SortedRun out;
  out.key_row_width = key_row_width_;
  out.payload = RowCollection(payload_layout_);
  uint64_t total = 0;
  for (const auto& run : runs) total += run.count;
  out.count = total;
  out.key_rows.resize(total * key_row_width_);
  out.payload.AppendUninitialized(total);

  // Binary min-heap of run cursors; ties break toward the lower run index.
  struct Cursor {
    const SortedRun* run;
    uint64_t pos;
    uint64_t index;
  };
  std::vector<Cursor> heap;
  for (uint64_t r = 0; r < runs.size(); ++r) {
    if (runs[r].count > 0) heap.push_back({&runs[r], 0, r});
  }
  std::atomic<uint64_t>* counter =
      config_.count_comparisons ? &merge_compares_ : nullptr;
  auto greater = [&](const Cursor& a, const Cursor& b) {
    if (counter) counter->fetch_add(1, std::memory_order_relaxed);
    int cmp = comparator_.Compare(a.run->KeyRow(a.pos),
                                  a.run->PayloadRow(a.pos),
                                  b.run->KeyRow(b.pos),
                                  b.run->PayloadRow(b.pos));
    if (cmp != 0) return cmp > 0;
    return a.index > b.index;
  };
  auto sift_down = [&](uint64_t root) {
    uint64_t size = heap.size();
    while (true) {
      uint64_t child = 2 * root + 1;
      if (child >= size) break;
      if (child + 1 < size && greater(heap[child], heap[child + 1])) ++child;
      if (!greater(heap[root], heap[child])) break;
      std::swap(heap[root], heap[child]);
      root = child;
    }
  };
  for (uint64_t i = heap.size(); i-- > 0;) sift_down(i);

  const uint64_t krw = key_row_width_;
  const uint64_t prw = payload_layout_.row_width();
  uint64_t o = 0;
  while (!heap.empty()) {
    Cursor& top = heap[0];
    std::memcpy(out.key_rows.data() + o * krw, top.run->KeyRow(top.pos), krw);
    std::memcpy(out.payload.GetRow(o), top.run->PayloadRow(top.pos), prw);
    ++o;
    if (++top.pos == top.run->count) {
      heap[0] = heap.back();
      heap.pop_back();
    }
    if (!heap.empty()) sift_down(0);
  }

  for (auto& run : runs) {
    out.payload.AdoptHeap(std::move(run.payload));
  }
  return out;
}

/// Tournament loser tree over all runs with offset-value codes at the nodes
/// (Graefe & Do, arXiv:2209.08420; arXiv:2210.00034 §4). Every run cursor
/// carries a code relative to the most recently emitted row; replacement
/// keys enter with their precomputed run code (their run predecessor *is*
/// the emitted row) and ascend the same leaf-to-root path the winner took,
/// meeting losers whose codes are relative to that same row — so a node
/// comparison is one integer compare unless the codes tie, and the rare
/// suffix scan repairs the loser's code in passing.
SortedRun RelationalSort::MergeKWayLoserTree(std::vector<SortedRun>& runs) {
  SortedRun out;
  out.key_row_width = key_row_width_;
  out.payload = RowCollection(payload_layout_);
  uint64_t total = 0;
  for (const auto& run : runs) total += run.count;
  out.count = total;
  out.key_rows.resize(total * key_row_width_);
  out.payload.AppendUninitialized(total);

  const uint64_t kw = comparator_.key_width();
  // Leaves padded to a power of two; virtual leaves are exhausted cursors.
  uint64_t leaves = 1;
  while (leaves < runs.size() || leaves < 2) leaves <<= 1;
  struct Cursor {
    const SortedRun* run = nullptr;
    uint64_t pos = 0;
    uint64_t ovc = kOvcExhausted;
  };
  std::vector<Cursor> cursors(leaves);
  for (uint64_t r = 0; r < runs.size(); ++r) {
    if (runs[r].count == 0) continue;
    ROWSORT_DASSERT(runs[r].ovcs.size() == runs[r].count);
    cursors[r] = {&runs[r], 0, runs[r].ovcs[0]};  // code vs the -inf base
  }
  uint64_t decided = 0, fallback = 0;

  // True iff leaf a's key precedes leaf b's. Both codes are relative to the
  // same base row; the loser's code is left (or repaired) relative to the
  // winner, preserving the tree invariant for the next visit of this node.
  auto precedes = [&](uint32_t a, uint32_t b) -> bool {
    Cursor& ca = cursors[a];
    Cursor& cb = cursors[b];
    if (ca.ovc == kOvcExhausted || cb.ovc == kOvcExhausted) {
      return ca.ovc != kOvcExhausted;
    }
    if (ca.ovc != cb.ovc) {
      ++decided;
      return ca.ovc < cb.ovc;
    }
    if (ca.ovc == kOvcEqual) {
      // Both equal the emitted base row: stable tie-break by run index.
      ++decided;
      return a < b;
    }
    const uint8_t* ka = ca.run->KeyRow(ca.pos);
    const uint8_t* kb = cb.run->KeyRow(cb.pos);
    uint64_t begin = OvcDiffIndex(kw, ca.ovc) + 1;
    uint64_t diff = 0;
    ++fallback;
    int cmp = begin >= kw ? 0 : CompareKeySuffix(ka, kb, begin, kw, &diff);
    if (cmp == 0) {
      bool a_first = a < b;
      (a_first ? cb : ca).ovc = kOvcEqual;  // loser equals the winner
      return a_first;
    }
    if (cmp < 0) {
      cb.ovc = MakeOvc(kw, diff, kb[diff]);
      return true;
    }
    ca.ovc = MakeOvc(kw, diff, ka[diff]);
    return false;
  };

  // tree[n] (1 <= n < leaves) holds the loser leaf of node n's last
  // comparison; initial build plays every node bottom-up.
  std::vector<uint32_t> tree(leaves, 0);
  auto build = [&](auto&& self, uint64_t node) -> uint32_t {
    if (node >= leaves) return static_cast<uint32_t>(node - leaves);
    uint32_t wl = self(self, 2 * node);
    uint32_t wr = self(self, 2 * node + 1);
    if (precedes(wl, wr)) {
      tree[node] = wr;
      return wl;
    }
    tree[node] = wl;
    return wr;
  };
  uint32_t winner = build(build, 1);

  const uint64_t krw = key_row_width_;
  const uint64_t prw = payload_layout_.row_width();
  for (uint64_t o = 0; o < total; ++o) {
    Cursor& cw = cursors[winner];
    std::memcpy(out.key_rows.data() + o * krw, cw.run->KeyRow(cw.pos), krw);
    std::memcpy(out.payload.GetRow(o), cw.run->PayloadRow(cw.pos), prw);
    if (++cw.pos == cw.run->count) {
      cw.ovc = kOvcExhausted;
    } else {
      cw.ovc = cw.run->ovcs[cw.pos];  // code vs the row just emitted
    }
    // Replay the winner's path; each stored loser's code is relative to the
    // emitted row, like the replacement's.
    uint32_t candidate = winner;
    for (uint64_t node = (leaves + winner) >> 1; node >= 1; node >>= 1) {
      if (precedes(tree[node], candidate)) std::swap(tree[node], candidate);
    }
    winner = candidate;
  }

  for (auto& run : runs) {
    out.payload.AdoptHeap(std::move(run.payload));
  }
  ovc_decided_.fetch_add(decided, std::memory_order_relaxed);
  ovc_fallback_.fetch_add(fallback, std::memory_order_relaxed);
  if (config_.count_comparisons) {
    merge_compares_.fetch_add(fallback, std::memory_order_relaxed);
  }
  return out;
}

void RelationalSort::Finalize(ThreadPool* pool) {
  Timer timer;
  metrics_.run_generation_compares =
      run_compares_.load(std::memory_order_relaxed);

  if (!spilled_files_.empty()) {
    // External cascaded merge: two runs resident at a time; merged results
    // go back to disk until one remains.
    while (spilled_files_.size() > 1) {
      std::string left_path = spilled_files_[0];
      std::string right_path = spilled_files_[1];
      spilled_files_.erase(spilled_files_.begin(), spilled_files_.begin() + 2);
      auto left = ReadRunFromFile(payload_layout_, left_path);
      auto right = ReadRunFromFile(payload_layout_, right_path);
      ROWSORT_CHECK_OK(left.status());
      ROWSORT_CHECK_OK(right.status());
      if (UseOvc()) {
        // The spill format stores no codes; re-derive on load.
        left.value().ovcs = DeriveRunOvcs(left.value(), comparator_.key_width());
        right.value().ovcs =
            DeriveRunOvcs(right.value(), comparator_.key_width());
      }
      SortedRun merged = MergePair(left.value(), right.value(), pool);
      merged.payload.AdoptHeap(std::move(left.value().payload));
      merged.payload.AdoptHeap(std::move(right.value().payload));
      std::remove(left_path.c_str());
      std::remove(right_path.c_str());
      std::string out_path = StringFormat("%s/run_%llu.rsrun",
                                          config_.spill_directory.c_str(),
                                          (unsigned long long)spill_counter_++);
      ROWSORT_CHECK_OK(WriteRunToFile(merged, payload_layout_, out_path));
      spilled_files_.push_back(std::move(out_path));
    }
    auto final_run = ReadRunFromFile(payload_layout_, spilled_files_[0]);
    ROWSORT_CHECK_OK(final_run.status());
    std::remove(spilled_files_[0].c_str());
    spilled_files_.clear();
    result_ = std::move(final_run.value());
    metrics_.merge_seconds += timer.ElapsedSeconds();
    metrics_.merge_compares = merge_compares_.load(std::memory_order_relaxed);
    metrics_.ovc_decided = ovc_decided_.load(std::memory_order_relaxed);
    metrics_.ovc_fallback_compares = ovc_fallback_.load(std::memory_order_relaxed);
    return;
  }

  if (runs_.empty()) {
    result_ = SortedRun();
    result_.key_row_width = key_row_width_;
    result_.payload = RowCollection(payload_layout_);
    return;
  }

  if (config_.use_kway_merge) {
    // Merge-strategy ablation: one k-way heap pass (ClickHouse/HyPer style).
    result_ = MergeKWay(runs_);
    runs_.clear();
    metrics_.merge_seconds += timer.ElapsedSeconds();
    metrics_.merge_compares = merge_compares_.load(std::memory_order_relaxed);
    metrics_.ovc_decided = ovc_decided_.load(std::memory_order_relaxed);
    metrics_.ovc_fallback_compares = ovc_fallback_.load(std::memory_order_relaxed);
    return;
  }

  // 2-way cascaded merge sort: trivially parallel across pairs while many
  // runs remain; Merge Path parallelizes within pairs as runs get large.
  std::vector<SortedRun> current = std::move(runs_);
  runs_.clear();
  while (current.size() > 1) {
    std::vector<SortedRun> next((current.size() + 1) / 2);
    if (pool != nullptr && current.size() >= 4) {
      std::vector<std::function<void()>> tasks;
      for (uint64_t p = 0; p + 1 < current.size(); p += 2) {
        tasks.push_back([this, &current, &next, p] {
          // Many pairs: no intra-pair partitioning needed yet.
          next[p / 2] = MergePair(current[p], current[p + 1], nullptr);
        });
      }
      pool->RunBatch(std::move(tasks));
    } else {
      for (uint64_t p = 0; p + 1 < current.size(); p += 2) {
        next[p / 2] = MergePair(current[p], current[p + 1], pool);
      }
    }
    // Adopt string heaps of merged inputs so descriptors stay valid.
    for (uint64_t p = 0; p + 1 < current.size(); p += 2) {
      next[p / 2].payload.AdoptHeap(std::move(current[p].payload));
      next[p / 2].payload.AdoptHeap(std::move(current[p + 1].payload));
    }
    if (current.size() % 2 == 1) {
      next.back() = std::move(current.back());
    }
    current = std::move(next);
  }
  result_ = std::move(current.front());
  metrics_.merge_seconds += timer.ElapsedSeconds();
  metrics_.merge_compares = merge_compares_.load(std::memory_order_relaxed);
  metrics_.ovc_decided = ovc_decided_.load(std::memory_order_relaxed);
  metrics_.ovc_fallback_compares = ovc_fallback_.load(std::memory_order_relaxed);
}

uint64_t RelationalSort::ScanChunk(uint64_t start, DataChunk* out) const {
  if (start >= result_.count) {
    out->SetSize(0);
    return 0;
  }
  uint64_t count = std::min(out->capacity(), result_.count - start);
  result_.payload.GatherChunk(start, count, out);
  return count;
}

Table RelationalSort::SortTable(const Table& input, const SortSpec& spec,
                                const SortEngineConfig& config,
                                SortMetrics* metrics_out) {
  RelationalSort sort(spec, input.types(), config);
  uint64_t threads = std::max<uint64_t>(config.threads, 1);

  if (threads <= 1) {
    auto local = sort.MakeLocalState();
    for (uint64_t c = 0; c < input.ChunkCount(); ++c) {
      sort.Sink(*local, input.chunk(c));
    }
    sort.CombineLocal(*local);
    sort.Finalize(nullptr);
  } else {
    ThreadPool pool(threads);
    // Morsel-driven: threads grab chunks from a shared counter (§VII /
    // Leis et al.), each filling its own local state.
    std::atomic<uint64_t> next_chunk{0};
    std::vector<std::function<void()>> tasks;
    for (uint64_t t = 0; t < threads; ++t) {
      tasks.push_back([&sort, &input, &next_chunk] {
        auto local = sort.MakeLocalState();
        while (true) {
          uint64_t c = next_chunk.fetch_add(1);
          if (c >= input.ChunkCount()) break;
          sort.Sink(*local, input.chunk(c));
        }
        sort.CombineLocal(*local);
      });
    }
    pool.RunBatch(std::move(tasks));
    sort.Finalize(&pool);
  }

  Table output(input.types(), input.names());
  uint64_t offset = 0;
  while (offset < sort.row_count()) {
    DataChunk chunk = output.NewChunk();
    uint64_t produced = sort.ScanChunk(offset, &chunk);
    offset += produced;
    output.Append(std::move(chunk));
  }
  if (metrics_out != nullptr) {
    *metrics_out = sort.metrics();
  }
  return output;
}

}  // namespace rowsort
